(** Blocking synchronisation primitives for processes. *)

module Semaphore : sig
  (** Counting semaphore with FIFO wake-up order. *)

  type t

  val create : Sim.t -> int -> t
  (** [create sim n] has [n] initial permits; requires [n >= 0]. *)

  val acquire : t -> unit
  (** Take a permit, blocking the calling process if none is available. *)

  val try_acquire : t -> bool
  (** Non-blocking variant; callable from any context. *)

  val release : t -> unit
  (** Return a permit, waking the longest-waiting process if any. Callable
      from any context. *)

  val available : t -> int
  val waiting : t -> int
end

module Mutex : sig
  type t

  val create : Sim.t -> t
  val lock : t -> unit
  val unlock : t -> unit

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Runs the function holding the lock; releases it on any exit,
      including {!Process.Cancelled}. *)
end

module Latch : sig
  (** Countdown latch: waiters block until the count reaches zero. Used
      to join fan-out work (e.g. a striped volume waiting for all of a
      request's segments). *)

  type t

  val create : Sim.t -> int -> t
  (** Requires a positive initial count. *)

  val count_down : t -> unit
  (** Callable from any context; counting below zero is an error. *)

  val wait : t -> unit
  (** Block the calling process until the count is zero; returns
      immediately if it already is. *)

  val pending : t -> int
end

module Condition : sig
  (** Broadcast-style condition: waiters block until someone signals. *)

  type t

  val create : Sim.t -> t
  val wait : t -> unit
  val broadcast : t -> unit

  val signal : t -> unit
  (** Wake exactly one waiter (FIFO), if any. *)

  val waiting : t -> int
end
