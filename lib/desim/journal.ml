(* The durable-write journal behind the crash-surface sweep's
   incremental reconstruction path.

   During one reference run of a scenario, every mutation of durable
   media (device transfer start/complete), every trusted-buffer push and
   pop, every virtio write submission and every commit acknowledgement
   is appended here, stamped with the simulation's executed-event index
   and clock. The sweep then replays these deltas onto a single evolving
   media image instead of re-executing the whole simulation per crash
   point.

   Storage discipline matches {!Event_queue}: records live in flat
   parallel int arrays and payload bytes in one shared arena, both grown
   by doubling, so an append in the hot path allocates nothing on the
   minor heap. *)

(* Record kinds, stored as small ints in [kinds]. The meaning of the
   [a]/[b]/[c] operand slots per kind:
     Write_start     a=endpoint  b=lba  c=sectors
     Write_complete  a=endpoint  b=lba  c=sectors   payload=data
     Push            a=endpoint  b=lba  c=bytes     payload=data
     Pop             a=endpoint  b=lba  c=bytes
     Submit          a=endpoint  b=lba  c=sectors
     Ack             a=txid      b=0    c=0         payload=encoded writes *)
type kind = Write_start | Write_complete | Push | Pop | Submit | Ack

let kind_code = function
  | Write_start -> 0
  | Write_complete -> 1
  | Push -> 2
  | Pop -> 3
  | Submit -> 4
  | Ack -> 5

let kind_of_code = function
  | 0 -> Write_start
  | 1 -> Write_complete
  | 2 -> Push
  | 3 -> Pop
  | 4 -> Submit
  | 5 -> Ack
  | _ -> assert false

type endpoint = {
  ep_model : string;
  ep_is_port : bool;
  ep_sector_size : int;
  ep_capacity_sectors : int;
  ep_rng : Rng.t option;
      (* a pristine copy of the device's tear rng, taken at creation —
         the reconstruction replays torn-write draws from copies of this *)
}

type t = {
  mutable kinds : int array;
  mutable indices : int array;
  mutable times : int array;
  mutable opa : int array;
  mutable opb : int array;
  mutable opc : int array;
  mutable offs : int array;
  mutable lens : int array;
  mutable count : int;
  mutable arena : Bytes.t;
  mutable arena_used : int;
  mutable endpoints : endpoint list;  (* reversed; length = next id *)
  mutable endpoint_count : int;
}

let initial_records = 4096
let initial_arena = 1 lsl 20

let create () =
  {
    kinds = Array.make initial_records 0;
    indices = Array.make initial_records 0;
    times = Array.make initial_records 0;
    opa = Array.make initial_records 0;
    opb = Array.make initial_records 0;
    opc = Array.make initial_records 0;
    offs = Array.make initial_records 0;
    lens = Array.make initial_records 0;
    count = 0;
    arena = Bytes.create initial_arena;
    arena_used = 0;
    endpoints = [];
    endpoint_count = 0;
  }

(* The ambient recording slot. Recording is only ever enabled around the
   serial enumeration run of a journal sweep (and cleared before any
   worker domain is spawned, so domains observe it unset through the
   spawn's happens-before edge). *)
let current : t option ref = ref None

let recording () = !current
let start_recording t = current := Some t
let stop_recording () = current := None

let register t ep =
  t.endpoints <- ep :: t.endpoints;
  let id = t.endpoint_count in
  t.endpoint_count <- id + 1;
  id

let register_device t ~model ~sector_size ~capacity_sectors ~rng =
  register t
    {
      ep_model = model;
      ep_is_port = false;
      ep_sector_size = sector_size;
      ep_capacity_sectors = capacity_sectors;
      ep_rng = Some (Rng.copy rng);
    }

let register_port t ~model =
  register t
    {
      ep_model = model;
      ep_is_port = true;
      ep_sector_size = 0;
      ep_capacity_sectors = 0;
      ep_rng = None;
    }

let endpoint t id =
  if id < 0 || id >= t.endpoint_count then invalid_arg "Journal.endpoint";
  List.nth t.endpoints (t.endpoint_count - 1 - id)

let grow_records t =
  let cap = Array.length t.kinds in
  let extend a = let b = Array.make (2 * cap) 0 in Array.blit a 0 b 0 cap; b in
  t.kinds <- extend t.kinds;
  t.indices <- extend t.indices;
  t.times <- extend t.times;
  t.opa <- extend t.opa;
  t.opb <- extend t.opb;
  t.opc <- extend t.opc;
  t.offs <- extend t.offs;
  t.lens <- extend t.lens

let reserve_arena t len =
  let cap = Bytes.length t.arena in
  if t.arena_used + len > cap then begin
    let target = ref (2 * cap) in
    while t.arena_used + len > !target do target := 2 * !target done;
    let arena = Bytes.create !target in
    Bytes.blit t.arena 0 arena 0 t.arena_used;
    t.arena <- arena
  end

let append t sim k ~a ~b ~c ~data =
  if t.count = Array.length t.kinds then grow_records t;
  let i = t.count in
  t.kinds.(i) <- kind_code k;
  t.indices.(i) <- Sim.events_executed sim;
  t.times.(i) <- Time.to_ns (Sim.now sim);
  t.opa.(i) <- a;
  t.opb.(i) <- b;
  t.opc.(i) <- c;
  (match data with
  | None ->
      t.offs.(i) <- 0;
      t.lens.(i) <- -1
  | Some s ->
      let len = String.length s in
      reserve_arena t len;
      Bytes.blit_string s 0 t.arena t.arena_used len;
      t.offs.(i) <- t.arena_used;
      t.lens.(i) <- len;
      t.arena_used <- t.arena_used + len);
  t.count <- i + 1

let write_start t sim ~device ~lba ~sectors =
  append t sim Write_start ~a:device ~b:lba ~c:sectors ~data:None

let write_complete t sim ~device ~lba ~sectors ~data =
  append t sim Write_complete ~a:device ~b:lba ~c:sectors ~data:(Some data)

let push t sim ~device ~lba ~data =
  append t sim Push ~a:device ~b:lba ~c:(String.length data) ~data:(Some data)

let pop t sim ~device ~lba ~bytes =
  append t sim Pop ~a:device ~b:lba ~c:bytes ~data:None

let submit t sim ~port ~lba ~sectors =
  append t sim Submit ~a:port ~b:lba ~c:sectors ~data:None

let ack t sim ~txid ~writes =
  append t sim Ack ~a:txid ~b:0 ~c:0 ~data:(Some writes)

let length t = t.count

let check t i = if i < 0 || i >= t.count then invalid_arg "Journal: record index"

let kind t i = check t i; kind_of_code t.kinds.(i)
let index t i = check t i; t.indices.(i)
let time_ns t i = check t i; t.times.(i)
let a t i = check t i; t.opa.(i)
let b t i = check t i; t.opb.(i)
let c t i = check t i; t.opc.(i)

let payload t i =
  check t i;
  if t.lens.(i) < 0 then invalid_arg "Journal.payload: record has no payload";
  Bytes.sub_string t.arena t.offs.(i) t.lens.(i)
