examples/observability.ml: Desim Format Hypervisor List Power Printf Rapilog Sim Storage String Time Trace
