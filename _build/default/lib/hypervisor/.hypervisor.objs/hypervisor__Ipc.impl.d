lib/hypervisor/ipc.ml: Desim Process Time
