(* fig13-commit-path: the commit-path latency war. Three levers on the
   sync commit path — batching policy (serial / fixed gather / adaptive),
   the log device (rotational, SATA flash, NVMe zoned-append) and the
   number of parallel WAL streams — swept as a grid. The shape to look
   for: on the hdd, fixed batching buys throughput by paying p99 (every
   committer waits out the gather quantum); on the nvme the device is so
   fast that the gather wait *is* the latency, and the adaptive policy
   wins p99 by refusing to batch when the EWMA of device latency is
   already under target. Extra streams help only when the single-stream
   append mutex is the bottleneck. *)

open Harness
open Bench_support

let policies =
  [
    Dbms.Commit_policy.Fixed 1;
    Dbms.Commit_policy.Fixed 8;
    Dbms.Commit_policy.Adaptive { target_ns = 100_000; max_batch = 16 };
  ]

let fig13 =
  {
    id = "fig13-commit-path";
    title = "Fig 13: commit policy x device x WAL streams";
    description =
      "p99/throughput grid: serial, fixed and adaptive batching on hdd/ssd/nvme at 1-4 WAL streams";
    run =
      (fun ~quick ->
        Report.section
          "Fig 13: commit-path latency (native-sync, micro workload, 16 clients)";
        let devices =
          if quick then
            [ ("hdd", Scenario.Disk Storage.Hdd.default_7200rpm);
              ("nvme", Scenario.Nvme Storage.Nvme.default) ]
          else
            [ ("hdd", Scenario.Disk Storage.Hdd.default_7200rpm);
              ("ssd", Scenario.Flash Storage.Ssd.default);
              ("nvme", Scenario.Nvme Storage.Nvme.default) ]
        in
        let streams = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
        let rows =
          List.concat_map
            (fun (dev_name, device) ->
              List.concat_map
                (fun s ->
                  List.map
                    (fun policy ->
                      let config =
                        {
                          (base_config ~quick) with
                          Scenario.mode = Scenario.Native_sync;
                          device;
                          log_streams = s;
                          clients = 16;
                          workload =
                            Scenario.Micro Workload.Microbench.default_config;
                          profile =
                            Dbms.Engine_profile.with_commit_policy
                              Dbms.Engine_profile.postgres_like policy;
                        }
                      in
                      let r = steady config in
                      [
                        dev_name;
                        string_of_int s;
                        Dbms.Commit_policy.to_string policy;
                        Printf.sprintf "%.0f" r.Experiment.throughput;
                        Printf.sprintf "%.0f" r.Experiment.latency_p50_us;
                        Printf.sprintf "%.0f" r.Experiment.latency_p99_us;
                      ])
                    policies)
                streams)
            devices
        in
        Report.table
          ~columns:[ "device"; "streams"; "policy"; "txn/s"; "p50 us"; "p99 us" ]
          ~rows;
        Report.note
          "shape targets: fixed-8 trades p99 for throughput on the hdd; adaptive matches";
        Report.note
          "fixed-1 p99 on nvme while keeping the batch upside when the device slows down");
  }

let experiments = [ fig13 ]
