(* Since PR 8 the event queue is the hierarchical timer wheel; the
   binary-heap implementation that lived here through PR 7 survives as
   [Binary_heap], the model-test oracle and microbench baseline. The
   wheel preserves the (time, insertion-sequence) pop order exactly —
   certified by the wheel-vs-heap qcheck model test — so simulation
   traces are unchanged. *)

include Timer_wheel
