lib/workload/tpcc_lite.ml: Dbms Desim Engine Hashtbl List Option Printf Rng Value_gen
