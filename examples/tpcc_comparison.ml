(* Compare every system configuration on the TPC-C-lite workload: the
   safe baselines (native and virtualised synchronous logging, and the
   flush-barrier-over-write-cache variant), RapiLog, and the two classic
   unsafe shortcuts it makes unnecessary (trusting the disk's write
   cache, asynchronous commit).

   Run with: dune exec examples/tpcc_comparison.exe [-- clients] *)

open Harness

let clients =
  if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8

let run mode =
  let config =
    {
      Scenario.default with
      Scenario.mode;
      clients;
      duration = Desim.Time.sec 2;
      warmup = Desim.Time.ms 300;
    }
  in
  Experiment.run_steady config

let () =
  Printf.printf "TPC-C-lite, pg-like engine, 7200 rpm log disk, %d clients\n\n"
    clients;
  let results = List.map (fun mode -> (mode, run mode)) Scenario.all_modes in
  let baseline =
    match List.assoc_opt Scenario.Native_sync results with
    | Some r -> r.Experiment.throughput
    | None -> assert false
  in
  Report.table
    ~columns:
      [ "config"; "txn/s"; "vs native"; "p50 us"; "p99 us"; "log writes"; "durable?" ]
    ~rows:
      (List.map
         (fun (mode, r) ->
           [
             Scenario.mode_name mode;
             Printf.sprintf "%.0f" r.Experiment.throughput;
             Printf.sprintf "%.2fx" (r.Experiment.throughput /. baseline);
             Printf.sprintf "%.0f" r.Experiment.latency_p50_us;
             Printf.sprintf "%.0f" r.Experiment.latency_p99_us;
             string_of_int r.Experiment.physical_log_writes;
             (match Scenario.mode_is_durable mode with
             | `Always -> "yes"
             | `Machine_loss_too -> "yes + machine loss"
             | `Minority_loss_too -> "yes + minority loss"
             | `Os_crash_only -> "power-unsafe"
             | `Never -> "no");
           ])
         results);
  print_newline ();
  print_endline
    "RapiLog should match or beat native-sync while keeping full durability;";
  print_endline
    "the unsafe configurations show the performance that used to require";
  print_endline "giving the guarantee up."
