lib/desim/trace.mli: Format Sim Time
