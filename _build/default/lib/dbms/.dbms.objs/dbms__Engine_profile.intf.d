lib/dbms/engine_profile.mli: Desim Format
