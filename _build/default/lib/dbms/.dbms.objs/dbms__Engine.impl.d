lib/dbms/engine.ml: Buffer_pool Desim Engine_profile Hashtbl Hypervisor Int List Lock_table Log_record Lsn Option Page Process Resource Sim Stats String Time Txn Wal
