(* rapilog_sim: command-line driver for the simulated RapiLog system.

   Subcommands:
     run         steady-state run of one configuration, print metrics
     crash       inject a guest-OS crash, audit durability
     power-cut   inject a mains power cut, audit durability
     modes       list configurations and their durability promises *)

open Cmdliner
open Harness

(* -- shared options ------------------------------------------------------ *)

let mode_conv =
  let parse s =
    match Scenario.mode_of_name s with
    | Some mode -> Ok mode
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown mode %S (one of: %s)" s
               (String.concat ", " (List.map Scenario.mode_name Scenario.all_modes))))
  in
  Arg.conv (parse, fun fmt mode -> Format.pp_print_string fmt (Scenario.mode_name mode))

let mode_arg =
  let doc = "System configuration under test." in
  Arg.(value & opt mode_conv Scenario.Rapilog & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let clients_arg =
  Arg.(value & opt int 8 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Closed-loop clients.")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed; runs are bit-reproducible from it.")

let duration_arg =
  Arg.(value & opt float 2.0 & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc:"Measurement window in simulated seconds.")

let device_arg =
  let doc = "Log/data device: 'hdd' (7200 rpm), 'hdd:RPM', 'ssd', or 'nvme'." in
  Arg.(value & opt string "hdd" & info [ "device" ] ~docv:"DEV" ~doc)

let workload_arg =
  let doc = "Workload: 'tpcc', 'micro', 'ycsb' or 'ycsb:READFRAC'." in
  Arg.(value & opt string "tpcc" & info [ "w"; "workload" ] ~docv:"WL" ~doc)

let single_disk_arg =
  Arg.(value & flag & info [ "single-disk" ] ~doc:"Log and data share one physical device.")

let data_spindles_arg =
  Arg.(value & opt int 4 & info [ "data-spindles" ] ~docv:"N" ~doc:"Disks striped into the data volume.")

let engine_arg =
  let doc = "Engine profile: pg-like, innodb-like or commercial-like." in
  Arg.(value & opt string "pg-like" & info [ "engine" ] ~docv:"PROFILE" ~doc)

let buffer_kib_arg =
  Arg.(value & opt int 8192 & info [ "buffer-kib" ] ~docv:"KIB" ~doc:"Trusted-logger buffer size (KiB).")

let holdup_ms_arg =
  Arg.(value & opt int 300 & info [ "holdup-ms" ] ~docv:"MS" ~doc:"PSU hold-up window (ms).")

let log_streams_arg =
  Arg.(
    value & opt int 1
    & info [ "log-streams" ] ~docv:"N"
        ~doc:"Parallel WAL streams (requires the dedicated-log-device layout).")

let replicas_arg =
  Arg.(
    value & opt int 3
    & info [ "replicas" ] ~docv:"N"
        ~doc:"Replica machines in the rapilog-quorum cluster.")

let quorum_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quorum" ] ~docv:"K"
        ~doc:
          "Replica acks required to commit in rapilog-quorum mode \
           (default: a majority of the replicas).")

let parse_device s =
  match String.split_on_char ':' s with
  | [ "hdd" ] -> Ok (Scenario.Disk Storage.Hdd.default_7200rpm)
  | [ "hdd"; rpm ] -> (
      match int_of_string_opt rpm with
      | Some rpm when rpm > 0 ->
          Ok (Scenario.Disk (Storage.Hdd.config_with_rpm Storage.Hdd.default_7200rpm rpm))
      | Some _ | None -> Error (Printf.sprintf "bad rpm in %S" s))
  | [ "ssd" ] -> Ok (Scenario.Flash Storage.Ssd.default)
  | [ "nvme" ] -> Ok (Scenario.Nvme Storage.Nvme.default)
  | _ -> Error (Printf.sprintf "unknown device %S (hdd, hdd:RPM, ssd or nvme)" s)

let parse_workload s =
  match String.split_on_char ':' s with
  | [ "tpcc" ] -> Ok (Scenario.Tpcc Workload.Tpcc_lite.default_config)
  | [ "micro" ] -> Ok (Scenario.Micro Workload.Microbench.default_config)
  | [ "ycsb" ] -> Ok (Scenario.Ycsb Workload.Ycsb_lite.default_config)
  | [ "ycsb"; frac ] -> (
      match float_of_string_opt frac with
      | Some read_fraction when read_fraction >= 0. && read_fraction <= 1. ->
          Ok
            (Scenario.Ycsb
               { Workload.Ycsb_lite.default_config with Workload.Ycsb_lite.read_fraction })
      | Some _ | None -> Error (Printf.sprintf "bad read fraction in %S" s))
  | _ -> Error (Printf.sprintf "unknown workload %S (tpcc, micro, ycsb[:FRAC])" s)

let parse_engine s =
  match Dbms.Engine_profile.by_name s with
  | Some profile -> Ok profile
  | None -> Error (Printf.sprintf "unknown engine profile %S" s)

let build_config mode clients seed duration device workload engine buffer_kib holdup_ms
    single_disk data_spindles log_streams replicas quorum =
  let ( let* ) = Result.bind in
  let* device = parse_device device in
  let* workload = parse_workload workload in
  let* profile = parse_engine engine in
  let* () =
    if log_streams < 1 then Error "log-streams must be at least 1"
    else if log_streams > 1 && single_disk then
      Error "log-streams requires a dedicated log device (drop --single-disk)"
    else Ok ()
  in
  let* () = if replicas >= 1 then Ok () else Error "replicas must be at least 1" in
  let quorum_k =
    match quorum with Some k -> k | None -> Net.Quorum.majority replicas
  in
  let* () =
    if quorum_k >= 1 && quorum_k <= replicas then Ok ()
    else Error "quorum must satisfy 1 <= K <= replicas"
  in
  Ok
    {
      Scenario.default with
      Scenario.mode;
      single_disk;
      data_spindles;
      log_streams;
      quorum = { Net.Quorum.default with Net.Quorum.replicas; quorum = quorum_k };
      clients;
      seed;
      duration = Desim.Time.span_of_float_sec duration;
      device;
      workload;
      profile;
      logger =
        {
          Rapilog.Trusted_logger.default_config with
          Rapilog.Trusted_logger.buffer_bytes = buffer_kib * 1024;
        };
      psu = Power.Psu.of_window (Desim.Time.ms holdup_ms);
    }

let config_term =
  let open Term in
  const build_config $ mode_arg $ clients_arg $ seed_arg $ duration_arg
  $ device_arg $ workload_arg $ engine_arg $ buffer_kib_arg $ holdup_ms_arg
  $ single_disk_arg $ data_spindles_arg $ log_streams_arg $ replicas_arg
  $ quorum_arg

let or_exit = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("rapilog_sim: " ^ msg);
      exit 2

(* -- run ------------------------------------------------------------------- *)

let print_steady config (r : Experiment.steady_result) =
  Report.section "steady-state run";
  Report.kv "mode" (Scenario.mode_name config.Scenario.mode);
  Report.kv "device" (Scenario.device_name config.Scenario.device);
  Report.kv "engine" config.Scenario.profile.Dbms.Engine_profile.name;
  Report.kvf "clients" "%d" r.Experiment.clients;
  Report.kvf "seed" "%Ld" config.Scenario.seed;
  Report.kvf "throughput" "%.0f txn/s" r.Experiment.throughput;
  Report.kvf "latency mean/p50/p95/p99" "%.0f / %.0f / %.0f / %.0f us"
    r.Experiment.latency_mean_us r.Experiment.latency_p50_us
    r.Experiment.latency_p95_us r.Experiment.latency_p99_us;
  Report.kvf "physical log writes" "%d (%d sectors)" r.Experiment.physical_log_writes
    r.Experiment.physical_log_sectors;
  Report.kvf "wal forces" "%d (mean batch %.0f B)" r.Experiment.wal_forces
    r.Experiment.force_mean_bytes;
  Report.kvf "log bytes per txn" "%.0f" r.Experiment.log_bytes_per_txn;
  match r.Experiment.logger_stats with
  | None -> ()
  | Some stats ->
      Report.kvf "logger acked writes" "%d" stats.Experiment.acked_writes;
      Report.kvf "logger drain writes" "%d (%.1fx coalescing)"
        stats.Experiment.drain_writes
        (float_of_int stats.Experiment.acked_writes
        /. float_of_int (max 1 stats.Experiment.drain_writes));
      Report.kvf "logger high-water mark" "%d KiB" (stats.Experiment.max_buffered / 1024);
      Report.kvf "backpressure stalls" "%d" stats.Experiment.stalls

let run_cmd =
  let action config_result =
    let config = or_exit config_result in
    print_steady config (Experiment.run_steady config)
  in
  Cmd.v (Cmd.info "run" ~doc:"Steady-state run; print throughput and latency.")
    Term.(const action $ config_term)

(* -- failures ----------------------------------------------------------------- *)

let after_arg =
  Arg.(value & opt float 0.5 & info [ "after" ] ~docv:"SECONDS" ~doc:"Inject the failure this long after the load phase.")

let print_failure config (r : Experiment.failure_result) =
  Report.section (Experiment.failure_name r.Experiment.kind ^ " injection");
  Report.kv "mode" (Scenario.mode_name config.Scenario.mode);
  Report.kvf "acked commits" "%d" r.Experiment.acked;
  Report.kvf "recovered" "%d" r.Experiment.audit.Audit.durability.Rapilog.Durability.recovered;
  Report.kvf "lost" "%d"
    (List.length r.Experiment.audit.Audit.durability.Rapilog.Durability.lost);
  Report.kvf "state exact" "%b" r.Experiment.audit.Audit.state_exact;
  Report.kvf "durable log records" "%d" r.Experiment.durable_records;
  Report.kvf "redo / undo applied" "%d / %d" r.Experiment.redo_applied
    r.Experiment.undo_applied;
  (match r.Experiment.buffered_at_cut with
  | Some b -> Report.kvf "buffered at cut" "%d KiB" (b / 1024)
  | None -> ());
  (match r.Experiment.holdup_window with
  | Some w -> Report.kvf "hold-up window" "%a" Desim.Time.pp_span w
  | None -> ());
  Report.kvf "runtime invariant violations" "%d" r.Experiment.invariant_violations;
  if Experiment.durability_ok r then
    Report.kv "verdict"
      (if r.Experiment.audit.Audit.durability.Rapilog.Durability.lost = [] then
         "durability held"
       else "lossy, as this configuration's promise allows")
  else begin
    Report.kv "verdict" "DURABILITY GUARANTEE VIOLATED";
    exit 1
  end

let failure_cmd name kind doc =
  let action config_result after =
    let config = or_exit config_result in
    print_failure config
      (Experiment.run_failure config ~kind ~after:(Desim.Time.span_of_float_sec after))
  in
  Cmd.v (Cmd.info name ~doc) Term.(const action $ config_term $ after_arg)

(* -- modes ---------------------------------------------------------------------- *)

let modes_cmd =
  let action () =
    Report.table
      ~columns:[ "mode"; "durability promise" ]
      ~rows:
        (List.map
           (fun mode ->
             [
               Scenario.mode_name mode;
               (match Scenario.mode_is_durable mode with
               | `Always -> "survives OS crashes and power cuts"
               | `Machine_loss_too ->
                   "survives OS crashes, power cuts and primary machine loss"
               | `Minority_loss_too ->
                   "survives OS crashes, power cuts, partitions, and loss of \
                    the primary plus any minority of replicas"
               | `Os_crash_only -> "survives OS crashes; loses on power cuts"
               | `Never -> "can lose recent commits on any crash");
             ])
           Scenario.all_modes)
  in
  Cmd.v (Cmd.info "modes" ~doc:"List configurations and durability promises.")
    Term.(const action $ const ())

let () =
  let info =
    Cmd.info "rapilog_sim" ~version:"1.0.0"
      ~doc:"Simulated RapiLog: durable logging through a verified hypervisor"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            failure_cmd "crash" Experiment.Os_crash
              "Inject a guest-OS crash and audit durability.";
            failure_cmd "power-cut" Experiment.Power_cut
              "Cut mains power and audit durability.";
            modes_cmd;
          ]))
