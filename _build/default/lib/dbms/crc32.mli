(** CRC-32 (IEEE 802.3 polynomial, the zlib/ethernet variant).

    Used to detect torn log records and corrupt page images after a
    crash. *)

val digest : string -> pos:int -> len:int -> int32
val digest_string : string -> int32
val digest_bytes : bytes -> pos:int -> len:int -> int32
