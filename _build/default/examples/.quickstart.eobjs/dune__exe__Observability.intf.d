examples/observability.mli:
