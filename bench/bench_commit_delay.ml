(* fig11-commit-delay: the tuning dance RapiLog makes unnecessary.

   PostgreSQL's commit_delay deliberately stalls a committer before
   forcing, hoping to gather a larger group — a win at high concurrency,
   a pure latency tax at low concurrency, and the right value depends on
   the workload, the disk, and the moon phase. RapiLog sidesteps the
   whole trade-off: acknowledge from the buffer, no knob. *)

open Desim
open Harness
open Bench_support

let fig11 =
  {
    id = "fig11-commit-delay";
    title = "Fig 11: commit_delay tuning vs RapiLog";
    description =
      "tunes PostgreSQL-style commit_delay and shows rapilog needs no such knob";
    run =
      (fun ~quick ->
        Report.section
          "Fig 11: sync logging with commit_delay tuning (7200 rpm disk, TPC-C-lite)";
        let clients_list = if quick then [ 2; 16 ] else [ 1; 2; 4; 16; 64 ] in
        let delays = [ 0; 1; 3; 6 ] in
        let run ~clients ~delay_ms =
          steady
            {
              (base_config ~quick) with
              Scenario.mode = Scenario.Native_sync;
              clients;
              profile =
                {
                  Dbms.Engine_profile.postgres_like with
                  Dbms.Engine_profile.commit_delay = Time.ms delay_ms;
                };
            }
        in
        let rapilog ~clients =
          steady { (base_config ~quick) with Scenario.mode = Scenario.Rapilog; clients }
        in
        List.iter
          (fun clients ->
            let rows =
              List.map
                (fun delay_ms ->
                  let r = run ~clients ~delay_ms in
                  [
                    Printf.sprintf "sync, delay %dms" delay_ms;
                    Report.float_cell r.Experiment.throughput;
                    Report.float_cell r.Experiment.latency_p50_us;
                  ])
                delays
              @ [
                  (let r = rapilog ~clients in
                   [
                     "rapilog (no knob)";
                     Report.float_cell r.Experiment.throughput;
                     Report.float_cell r.Experiment.latency_p50_us;
                   ]);
                ]
            in
            Report.subsection (Printf.sprintf "%d clients" clients);
            Report.table ~columns:[ "config"; "txn/s"; "p50 us" ] ~rows)
          clients_list;
        Report.note
          "shape target: on a disk the delay hides inside the rotational wait (no tax";
        Report.note
          "at 1 client, ~2x at higher concurrency by gathering one force per rotation);";
        Report.note
          "yet even the tuned optimum stays 10-40x below rapilog, which has no knob");
  }

let experiments = [ fig11 ]
