lib/storage/ssd.ml: Block Desim Disk_stats Fun Process Resource Rng Sim String Time
