lib/desim/stats.ml: Array Float Stdlib Time
