bench/bench_buffer_size.ml: Bench_support Desim Experiment Harness List Option Power Printf Rapilog Report Scenario Time
