lib/hypervisor/domain.ml: Desim List Process Sim
