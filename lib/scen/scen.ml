module Scenario = Harness.Scenario
module Crash_surface = Harness.Crash_surface
module Time = Desim.Time

type fault = { f_kind : Crash_surface.kind; f_rate : float }

let stride_of_rate rate = max 1 (int_of_float (Float.round (1.0 /. rate)))

type key_space =
  | Uniform_keys of int
  | Zipf_keys of { n : int; theta : float }

(* The single consistency check every front end shares: collect every
   violation, not just the first, so one rejection names everything the
   user has to fix. *)
let validate (c : Scenario.config) =
  let errs = ref [] in
  let reject fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if c.Scenario.clients < 1 then
    reject "clients: %d; need at least 1 (the worker-pool size under open loop)"
      c.Scenario.clients;
  if c.Scenario.data_spindles < 1 then
    reject "spindles: %d; the data volume needs at least one device"
      c.Scenario.data_spindles;
  if c.Scenario.log_streams < 1 then
    reject "log-streams: %d; need at least one WAL stream" c.Scenario.log_streams;
  if c.Scenario.single_disk && c.Scenario.log_streams > 1 then
    reject
      "log-streams: %d on the shared single-disk layout; parallel WAL streams \
       need a dedicated log device (drop single-disk or use one stream)"
      c.Scenario.log_streams;
  if
    c.Scenario.log_streams > 1
    && c.Scenario.profile.Dbms.Engine_profile.commit_policy
       = Dbms.Commit_policy.Serial
  then
    reject
      "log-streams: %d under a Serial commit policy; serialised commits \
       cannot feed parallel streams — pick a Fixed or Adaptive policy"
      c.Scenario.log_streams;
  (match c.Scenario.mode with
  | Scenario.Rapilog_sharded ->
      if c.Scenario.single_disk then
        reject
          "mode rapilog-sharded shares shard 0's dedicated log device with \
           the DBMS; drop single-disk";
      if c.Scenario.log_streams > 1 then
        reject
          "mode rapilog-sharded requires log-streams = 1 (got %d); stream \
           parallelism lives inside the tier (streams_per_shard)"
          c.Scenario.log_streams;
      if c.Scenario.shard.Shard.Tier.shards < 1 then
        reject "shards: %d; the tier needs at least one logger shard"
          c.Scenario.shard.Shard.Tier.shards;
      if c.Scenario.shard.Shard.Tier.tenants < 1 then
        reject "tenants: %d; the tier needs at least one tenant"
          c.Scenario.shard.Shard.Tier.tenants
  | _ ->
      if c.Scenario.shard <> Shard.Tier.default_config then
        reject
          "shard tier configured but mode is %s; the multi-tenant tier only \
           runs under rapilog-sharded"
          (Scenario.mode_name c.Scenario.mode));
  (match c.Scenario.mode with
  | Scenario.Rapilog_quorum ->
      let q = c.Scenario.quorum in
      if q.Net.Quorum.replicas < 1 then
        reject "quorum: %d replicas; the cluster needs at least one"
          q.Net.Quorum.replicas
      else if q.Net.Quorum.quorum < 1 || q.Net.Quorum.quorum > q.Net.Quorum.replicas
      then
        reject
          "quorum: %d of %d replicas; need 1 <= quorum <= replicas (majority \
           is %d)"
          q.Net.Quorum.quorum q.Net.Quorum.replicas
          (Net.Quorum.majority q.Net.Quorum.replicas)
  | _ ->
      if c.Scenario.quorum <> Net.Quorum.default then
        reject
          "quorum cluster configured but mode is %s; quorum replication only \
           runs under rapilog-quorum"
          (Scenario.mode_name c.Scenario.mode));
  (match c.Scenario.mode with
  | Scenario.Rapilog_replicated -> ()
  | _ ->
      if c.Scenario.net <> Net.Replication.default then
        reject
          "replication (net) configured but mode is %s; the replica link only \
           runs under rapilog-replicated"
          (Scenario.mode_name c.Scenario.mode));
  (match c.Scenario.workload with
  | Scenario.Micro m ->
      if m.Workload.Microbench.keys < 1 then
        reject "keys: %d; the Micro key space must be non-empty"
          m.Workload.Microbench.keys;
      if m.Workload.Microbench.value_bytes < 1 then
        reject "values: %d bytes; rows need at least one byte"
          m.Workload.Microbench.value_bytes;
      if m.Workload.Microbench.zipf_theta < 0.0 then
        reject "keys: zipf theta %g; must be >= 0 (0 = uniform)"
          m.Workload.Microbench.zipf_theta;
      if m.Workload.Microbench.updates_per_txn < 1 then
        reject "workload: %d updates per txn; need at least one"
          m.Workload.Microbench.updates_per_txn;
      if
        m.Workload.Microbench.delete_fraction < 0.0
        || m.Workload.Microbench.delete_fraction > 1.0
      then
        reject "workload: delete fraction %g; must be in [0, 1]"
          m.Workload.Microbench.delete_fraction
  | Scenario.Ycsb y ->
      if y.Workload.Ycsb_lite.keys < 1 then
        reject "keys: %d; the YCSB key space must be non-empty"
          y.Workload.Ycsb_lite.keys;
      if y.Workload.Ycsb_lite.value_bytes < 1 then
        reject "values: %d bytes; rows need at least one byte"
          y.Workload.Ycsb_lite.value_bytes;
      if y.Workload.Ycsb_lite.zipf_theta < 0.0 then
        reject "keys: zipf theta %g; must be >= 0 (0 = uniform)"
          y.Workload.Ycsb_lite.zipf_theta;
      if
        y.Workload.Ycsb_lite.read_fraction < 0.0
        || y.Workload.Ycsb_lite.read_fraction > 1.0
      then
        reject "read-fraction: %g; must be in [0, 1]"
          y.Workload.Ycsb_lite.read_fraction;
      if y.Workload.Ycsb_lite.ops_per_txn < 1 then
        reject "workload: %d ops per txn; need at least one"
          y.Workload.Ycsb_lite.ops_per_txn
  | Scenario.Tpcc t ->
      if t.Workload.Tpcc_lite.warehouses < 1 then
        reject "workload: %d warehouses; TPC-C-lite needs at least one"
          t.Workload.Tpcc_lite.warehouses;
      if t.Workload.Tpcc_lite.value_bytes < 1 then
        reject "values: %d bytes; rows need at least one byte"
          t.Workload.Tpcc_lite.value_bytes);
  (match c.Scenario.arrival with
  | Workload.Arrival.Closed_loop -> ()
  | Workload.Arrival.Open_loop shape -> (
      (match Workload.Arrival.validate_shape shape with
      | Ok () -> ()
      | Error m -> reject "arrival: %s" m);
      match c.Scenario.churn with
      | None -> ()
      | Some _ ->
          reject
            "churn combined with an open-loop arrival process; open-loop \
             load has no closed-loop clients to gate — drop one axis"));
  (match c.Scenario.churn with
  | None -> ()
  | Some s -> (
      match Workload.Churn.validate s with
      | Ok () -> ()
      | Error m -> reject "churn: %s" m));
  if Time.span_to_ns c.Scenario.warmup < 0 then reject "warmup: must be >= 0";
  if Time.span_to_ns c.Scenario.duration <= 0 then
    reject "duration: the measurement window must be > 0";
  if Time.span_to_ns c.Scenario.think_time < 0 then reject "think: must be >= 0";
  match List.rev !errs with
  | [] -> Ok c
  | errs -> Error (String.concat "; " errs)

let validate_exn c =
  match validate c with
  | Ok c -> c
  | Error msg -> invalid_arg ("scenario: " ^ msg)

let validate_or_exit c =
  match validate c with
  | Ok c -> c
  | Error msg ->
      Printf.eprintf "invalid scenario: %s\n%!" msg;
      exit 2

(* A config is pure data all the way down (no closures anywhere in the
   nested device/logger/net/shard records), so its marshalled bytes are
   a faithful structural fingerprint. *)
let digest (c : Scenario.config) =
  Digest.to_hex (Digest.string (Marshal.to_string c []))

module Builder = struct
  type t = {
    config : Scenario.config;
    faults : fault list;  (* newest first; [faults] reverses *)
    errs : string list;  (* newest first; [errors] reverses *)
  }

  let start ?(base = Scenario.default) () =
    { config = base; faults = []; errs = [] }

  let set f b = { b with config = f b.config }
  let err msg b = { b with errs = msg :: b.errs }
  let mode m = set (fun c -> { c with Scenario.mode = m })
  let device d = set (fun c -> { c with Scenario.device = d })
  let hdd b = device (Scenario.Disk Storage.Hdd.default_7200rpm) b
  let ssd b = device (Scenario.Flash Storage.Ssd.default) b
  let nvme b = device (Scenario.Nvme Storage.Nvme.default) b

  let device_of_name name b =
    match name with
    | "hdd" -> hdd b
    | "ssd" -> ssd b
    | "nvme" -> nvme b
    | _ ->
        err
          (Printf.sprintf
             "device: unknown name %S; the named devices are hdd, ssd and \
              nvme (use the [device] combinator for a custom config)"
             name)
          b

  let profile p = set (fun c -> { c with Scenario.profile = p })

  let commit_policy policy =
    set (fun c ->
        {
          c with
          Scenario.profile =
            Dbms.Engine_profile.with_commit_policy c.Scenario.profile policy;
        })

  let streams n = set (fun c -> { c with Scenario.log_streams = n })
  let clients n = set (fun c -> { c with Scenario.clients = n })
  let think t = set (fun c -> { c with Scenario.think_time = t })
  let seed s = set (fun c -> { c with Scenario.seed = s })
  let warmup t = set (fun c -> { c with Scenario.warmup = t })
  let duration t = set (fun c -> { c with Scenario.duration = t })
  let single_disk v = set (fun c -> { c with Scenario.single_disk = v })
  let spindles n = set (fun c -> { c with Scenario.data_spindles = n })

  let checkpoint interval =
    set (fun c -> { c with Scenario.checkpoint_interval = interval })

  let workload w = set (fun c -> { c with Scenario.workload = w })

  let keys ks b =
    let n, theta =
      match ks with
      | Uniform_keys n -> (n, 0.0)
      | Zipf_keys { n; theta } -> (n, theta)
    in
    match b.config.Scenario.workload with
    | Scenario.Micro m ->
        workload
          (Scenario.Micro
             { m with Workload.Microbench.keys = n; zipf_theta = theta })
          b
    | Scenario.Ycsb y ->
        workload
          (Scenario.Ycsb
             { y with Workload.Ycsb_lite.keys = n; zipf_theta = theta })
          b
    | Scenario.Tpcc _ ->
        err
          "keys: TPC-C-lite derives its key population from the schema \
           (warehouses, districts, customers); select a Micro or Ycsb \
           workload before setting a key space"
          b

  let values bytes b =
    match b.config.Scenario.workload with
    | Scenario.Micro m ->
        workload (Scenario.Micro { m with Workload.Microbench.value_bytes = bytes }) b
    | Scenario.Ycsb y ->
        workload (Scenario.Ycsb { y with Workload.Ycsb_lite.value_bytes = bytes }) b
    | Scenario.Tpcc t ->
        workload (Scenario.Tpcc { t with Workload.Tpcc_lite.value_bytes = bytes }) b

  let read_fraction f b =
    match b.config.Scenario.workload with
    | Scenario.Ycsb y ->
        workload (Scenario.Ycsb { y with Workload.Ycsb_lite.read_fraction = f }) b
    | Scenario.Micro _ ->
        err
          "read-fraction: the Micro workload is update-only; select a Ycsb \
           workload to mix reads in"
          b
    | Scenario.Tpcc _ ->
        err
          "read-fraction: TPC-C-lite's transaction mix is fixed (45/43/4/4/4); \
           select a Ycsb workload to sweep the read fraction"
          b

  let arrival a = set (fun c -> { c with Scenario.arrival = a })
  let open_loop shape b = arrival (Workload.Arrival.Open_loop shape) b
  let churn schedule = set (fun c -> { c with Scenario.churn = schedule })

  let fault ~rate ~kind b =
    if rate <= 0.0 || rate > 1.0 then
      err
        (Printf.sprintf
           "fault: rate %g out of range; the rate is the fraction of crash \
            boundaries to explore and must be in (0, 1]"
           rate)
        b
    else { b with faults = { f_kind = kind; f_rate = rate } :: b.faults }

  let net n = set (fun c -> { c with Scenario.net = n })

  let quorum ~replicas ~quorum:q =
    set (fun c ->
        {
          c with
          Scenario.quorum =
            { c.Scenario.quorum with Net.Quorum.replicas; quorum = q };
        })

  let shards n =
    set (fun c ->
        { c with Scenario.shard = { c.Scenario.shard with Shard.Tier.shards = n } })

  let tenants n =
    set (fun c ->
        { c with Scenario.shard = { c.Scenario.shard with Shard.Tier.tenants = n } })

  let peek b = b.config
  let faults b = List.rev b.faults
  let errors b = List.rev b.errs

  let build b =
    match errors b with
    | [] -> validate_exn b.config
    | errs -> invalid_arg ("scenario builder: " ^ String.concat "; " errs)

  let build_or_exit b =
    match errors b with
    | [] -> validate_or_exit b.config
    | errs ->
        Printf.eprintf "invalid scenario: %s\n%!" (String.concat "; " errs);
        exit 2

  let grid ~axes base =
    List.fold_left
      (fun builders axis ->
        List.concat_map (fun b -> List.map (fun f -> f b) axis) builders)
      [ base ] axes
end

let preset_names = List.map Scenario.mode_name Scenario.all_modes

let preset name =
  match Scenario.mode_of_name name with
  | Some m -> Builder.mode m (Builder.start ())
  | None ->
      invalid_arg
        (Printf.sprintf "unknown preset %S; the presets are the mode names: %s"
           name
           (String.concat ", " preset_names))

module Workloads = struct
  (* One small update per transaction over a modest key space: the
     commit-latency stress, so arrival shaping shows up undiluted. *)
  let micro_small =
    Scenario.Micro
      {
        Workload.Microbench.default_config with
        Workload.Microbench.keys = 512;
        value_bytes = 64;
      }

  let base_rate = 400.0
  let pool = 16

  let flash_crowd b =
    let c = Builder.peek b in
    b |> Builder.workload micro_small |> Builder.clients pool
    |> Builder.open_loop
         (Workload.Arrival.Flash_crowd
            {
              base = base_rate;
              mult = 8.0;
              at = Time.add_span c.Scenario.warmup (Time.div_span c.Scenario.duration 4);
              decay = Time.div_span c.Scenario.duration 5;
            })

  let diurnal b =
    let c = Builder.peek b in
    let horizon = Time.add_span c.Scenario.warmup c.Scenario.duration in
    b |> Builder.workload micro_small |> Builder.clients pool
    |> Builder.open_loop
         (Workload.Arrival.Diurnal
            { mean = base_rate; amplitude = 0.8; period = Time.div_span horizon 2 })

  let client_churn b =
    let c = Builder.peek b in
    b |> Builder.workload micro_small |> Builder.clients pool
    |> Builder.arrival Workload.Arrival.Closed_loop
    |> Builder.churn
         (Some
            {
              Workload.Churn.period = Time.div_span c.Scenario.duration 2;
              active_fraction = 0.5;
              staggered = true;
            })

  let hot_key b =
    b
    |> Builder.workload
         (Scenario.Ycsb
            {
              Workload.Ycsb_lite.default_config with
              Workload.Ycsb_lite.keys = 4096;
              zipf_theta = 1.2;
              read_fraction = 0.2;
              value_bytes = 64;
            })
    |> Builder.clients pool
    |> Builder.open_loop (Workload.Arrival.Poisson { rate = base_rate })

  let steady_twin b =
    let c = Builder.peek b in
    let b =
      match c.Scenario.arrival with
      | Workload.Arrival.Closed_loop -> b
      | Workload.Arrival.Open_loop shape ->
          let rate =
            match shape with
            | Workload.Arrival.Poisson { rate } -> rate
            | Workload.Arrival.Flash_crowd { base; _ } -> base
            | Workload.Arrival.Diurnal { mean; _ } -> mean
          in
          Builder.open_loop (Workload.Arrival.Poisson { rate }) b
    in
    Builder.churn None b

  let all =
    [
      ("flash-crowd", flash_crowd);
      ("diurnal", diurnal);
      ("client-churn", client_churn);
      ("hot-key", hot_key);
    ]
end
