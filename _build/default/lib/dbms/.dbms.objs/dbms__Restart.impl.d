lib/dbms/restart.ml: Buffer_pool Engine Hashtbl Hypervisor List Log_record Lsn Page Recovery Storage String Wal
