open Effect
open Effect.Deep

type handle = { hname : string; mutable alive : bool }

exception Cancelled
exception Not_in_process

type 'a resumer = 'a -> unit

type _ Effect.t +=
  | Sleep : Time.span -> unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t
  | Self : handle Effect.t

let name h = h.hname
let is_alive h = h.alive
let cancel h = h.alive <- false

let spawn sim ?(name = "proc") body =
  let h = { hname = name; alive = true } in
  let resume_unit (k : (unit, unit) continuation) =
    if h.alive then continue k () else discontinue k Cancelled
  in
  let run () =
    match_with body ()
      {
        retc = (fun () -> h.alive <- false);
        exnc =
          (fun e ->
            h.alive <- false;
            match e with Cancelled -> () | e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sleep d ->
                Some
                  (fun (k : (a, _) continuation) ->
                    Sim.schedule_after sim d (fun () -> resume_unit k))
            | Suspend register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    let fired = ref false in
                    let resumer v =
                      if not !fired then begin
                        fired := true;
                        if h.alive then continue k v
                        else discontinue k Cancelled
                      end
                    in
                    register resumer)
            | Self -> Some (fun (k : (a, _) continuation) -> continue k h)
            | _ -> None);
      }
  in
  Sim.schedule_now sim run;
  h

let in_process : 'a. 'a Effect.t -> 'a =
 fun eff -> try perform eff with Effect.Unhandled _ -> raise Not_in_process

let sleep d =
  assert (Time.compare_span d Time.zero_span >= 0);
  in_process (Sleep d)

let yield () = in_process (Sleep Time.zero_span)
let self () = in_process Self
let suspend register = in_process (Suspend register)
