(** Unbounded FIFO mailbox between processes.

    [send] never blocks and is callable from any context; [recv] blocks the
    calling process while the channel is empty. *)

type 'a t

val create : Sim.t -> 'a t
(** An empty channel. *)

val send : 'a t -> 'a -> unit
(** Enqueue a message, waking the longest-waiting receiver if any.
    Never blocks. *)

val recv : 'a t -> 'a
(** Dequeue the oldest message, blocking the calling process while the
    channel is empty. *)

val recv_opt : 'a t -> 'a option
(** Non-blocking receive, callable from any context. *)

val length : 'a t -> int
(** Number of queued (unreceived) messages. *)
