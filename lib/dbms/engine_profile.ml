open Desim

type t = {
  name : string;
  txn_base_cpu : Time.span;
  op_cpu : Time.span;
  update_meta_bytes : int;
  commit_policy : Commit_policy.t;
  commit_delay : Time.span;
}

let postgres_like =
  {
    name = "pg-like";
    txn_base_cpu = Time.us 80;
    op_cpu = Time.us 15;
    update_meta_bytes = 48;
    commit_policy = Commit_policy.Fixed 1;
    commit_delay = Time.zero_span;
  }

let innodb_like =
  {
    name = "innodb-like";
    txn_base_cpu = Time.us 60;
    op_cpu = Time.us 12;
    update_meta_bytes = 140;
    commit_policy = Commit_policy.Fixed 1;
    commit_delay = Time.zero_span;
  }

let commercial_like =
  {
    name = "commercial-like";
    txn_base_cpu = Time.us 45;
    op_cpu = Time.us 8;
    update_meta_bytes = 90;
    commit_policy = Commit_policy.Fixed 1;
    commit_delay = Time.zero_span;
  }

let all = [ postgres_like; innodb_like; commercial_like ]

let by_name name = List.find_opt (fun t -> String.equal t.name name) all

let with_commit_policy t commit_policy = { t with commit_policy }

let with_group_commit t group_commit =
  {
    t with
    commit_policy = (if group_commit then Commit_policy.Fixed 1 else Commit_policy.Serial);
  }

let pp fmt t =
  Format.fprintf fmt
    "%s (base=%a op=%a meta=%dB commit=%a)" t.name Time.pp_span
    t.txn_base_cpu Time.pp_span t.op_cpu t.update_meta_bytes Commit_policy.pp
    t.commit_policy
