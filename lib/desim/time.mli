(** Simulated time.

    Time is an absolute instant measured in integer nanoseconds since the
    start of the simulation; {!span} is a signed duration with the same
    resolution. A 63-bit nanosecond count overflows after roughly 292
    simulated years, far beyond any experiment in this repository. *)

type t
(** Absolute simulated instant. *)

type span
(** Signed duration in nanoseconds. *)

val zero : t
(** Start of the simulation. *)

val ns : int -> span
(** Span constructors from an integer count of the named unit; {!us},
    {!ms} and {!sec} scale accordingly. *)

val us : int -> span
val ms : int -> span
val sec : int -> span

val span_of_float_sec : float -> span
(** [span_of_float_sec s] rounds [s] seconds to the nearest nanosecond. *)

val span_of_float_us : float -> span

val add : t -> span -> t
(** Advance an instant by a duration. *)

val diff : t -> t -> span
(** [diff a b] is [a - b]. *)

val add_span : span -> span -> span
(** Exact integer span arithmetic; {!sub_span}, {!mul_span} and
    {!div_span} follow suit ([div_span] truncates). *)

val sub_span : span -> span -> span
val mul_span : span -> int -> span
val div_span : span -> int -> span

val scale_span : span -> float -> span
(** Multiply by a float factor, rounding to the nearest nanosecond. *)

val zero_span : span

val compare : t -> t -> int
(** Total orders matching the nanosecond counts, with the operator and
    {!min}/{!max} conveniences below. *)

val compare_span : span -> span -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val to_float_sec : t -> float
(** Float conversions of instants and spans to the named unit, for
    statistics and report formatting. *)

val to_float_us : t -> float
val to_float_ms : t -> float
val span_to_float_sec : span -> float
val span_to_float_us : span -> float
val span_to_float_ms : span -> float

val span_to_ns : span -> int
(** The exact nanosecond count. *)

val of_ns : int -> t
(** [of_ns n] is the instant [n] nanoseconds after {!zero}; used by tests. *)

val to_ns : t -> int

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit, e.g. ["1.250ms"]. *)

val pp_span : Format.formatter -> span -> unit
