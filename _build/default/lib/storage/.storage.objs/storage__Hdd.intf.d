lib/storage/hdd.mli: Block Desim
