(* Scenario-grid harness (PR 10): machine-readable evidence that the
   Scen DSL's workload library composes with the full verification
   harness.

   The claims, with teeth:

   - presets: the nine canonical mode configurations re-expressed as
     [Scen.preset] pipelines are digest-identical to the legacy
     hand-rolled records — the DSL is a front door, not a fork.
   - grid: [Scen.Builder.grid] enumerates exactly the cartesian product
     of its axes, in row-major order, digest-identical to the nested
     loops a bench would otherwise hand-roll.
   - coverage: every cell of the workload grid (flash-crowd, diurnal,
     client-churn, hot-key skew x rapilog, native-sync x hdd, nvme)
     runs both steady metrics and a strided crash-surface sweep, and
     the sweep reports {e zero} contract breaks at every explored
     boundary — open-loop arrivals, churn gates and hot keys inherit
     the durability audit unchanged.
   - offered load: open-loop arrivals are honoured — each rapilog
     steady-twin cell commits within tolerance of its offered rate.
   - the flash-crowd asymmetry: on the disk, RapiLog's p99 under the
     burst stays within a small factor of its steady twin, while
     native-sync's p99 blows up by a large factor (the backlog of an
     open-loop burst against synchronous commit latency). That
     asymmetry is the open-loop library's reason to exist: a
     closed-loop client would have politely slowed down instead.

   Writes a JSON report (default BENCH_PR10.json). With --check it
   self-validates so `dune runtest` keeps the harness honest.

   Usage: scenarios.exe [--quick] [--check] [--jobs N] [--device NAME]
                        [--streams N] [--output PATH] *)

open Desim
open Harness
open Harness.Json
module B = Scen.Builder

(* -- the cell grid ----------------------------------------------------- *)

let modes = [ Scenario.Rapilog; Scenario.Native_sync ]
let all_devices = [ "hdd"; "nvme" ]

(* Steady cells measure the arrival shapes over a real window; sweep
   cells rerun the same composed workload on a short clock so every
   crash-point replay stays cheap. The shapes read warmup/duration, so
   timing goes first in both pipelines. *)
let steady_base ~quick ~streams:n =
  B.(
    start () |> seed 100_001L
    |> warmup (if quick then Time.ms 100 else Time.ms 200)
    |> duration (if quick then Time.ms 500 else Time.sec 1)
    |> streams n)

let sweep_base ~quick ~streams:n ~fault_rate =
  B.(
    start () |> seed 100_002L |> warmup (Time.ms 2)
    |> duration (if quick then Time.ms 25 else Time.ms 40)
    |> streams n
    |> fault ~rate:fault_rate ~kind:Crash_surface.Os_crash
    |> fault ~rate:fault_rate ~kind:Crash_surface.Power_cut)

(* The fault rate is a coverage fraction, so it scales to the cell's
   boundary density: the open-loop cells put a few dozen boundaries in
   the sweep window (explore a large fraction), while the closed-loop
   churn cells put thousands there (stride over them). *)
let fault_rate ~quick = function
  | "client-churn" -> if quick then 0.01 else 0.02
  | _ -> if quick then 0.25 else 0.5

type cell = {
  cl_name : string;  (* workload/mode/device *)
  cl_workload : string;
  cl_mode : Scenario.mode;
  cl_device : string;
  cl_steady : Scenario.config;
  cl_twin : Scenario.config option;
      (* the steady control the degradation gates compare against;
         [None] when the shape already is its own twin (hot-key) *)
  cl_sweep : Crash_surface.config;
}

let sweep_config_of builder ~quick =
  let scenario = B.build_or_exit builder in
  let faults = B.faults builder in
  let kinds = List.map (fun f -> f.Scen.f_kind) faults in
  let stride =
    match faults with
    | [] -> 1
    | f :: _ -> Scen.stride_of_rate f.Scen.f_rate
  in
  {
    (Crash_surface.default scenario) with
    Crash_surface.kinds;
    stride;
    window_start = Time.ms 1;
    window_length = (if quick then Time.ms 4 else Time.ms 12);
  }

let cells ~quick ~devices ~streams =
  List.concat_map
    (fun (wname, shape) ->
      List.concat_map
        (fun mode ->
          List.map
            (fun dev ->
              let compose b =
                b |> shape |> B.mode mode |> B.device_of_name dev
              in
              let fault_rate = fault_rate ~quick wname in
              let steady_b = compose (steady_base ~quick ~streams) in
              let steady = B.build_or_exit steady_b in
              let twin = B.build_or_exit (Scen.Workloads.steady_twin steady_b) in
              {
                cl_name =
                  Printf.sprintf "%s/%s/%s" wname (Scenario.mode_name mode) dev;
                cl_workload = wname;
                cl_mode = mode;
                cl_device = dev;
                cl_steady = steady;
                cl_twin = (if twin = steady then None else Some twin);
                cl_sweep =
                  sweep_config_of ~quick
                    (compose (sweep_base ~quick ~streams ~fault_rate));
              })
            devices)
        modes)
    Scen.Workloads.all

(* -- JSON --------------------------------------------------------------- *)

let steady_json (r : Experiment.steady_result) =
  Obj
    [
      ("committed_in_window", Num (float_of_int r.Experiment.committed_in_window));
      ("throughput", Num r.Experiment.throughput);
      ("p50_us", Num r.Experiment.latency_p50_us);
      ("p99_us", Num r.Experiment.latency_p99_us);
    ]

let sweep_json (r : Crash_surface.result) =
  Obj
    [
      ("stride", Num (float_of_int r.Crash_surface.r_stride));
      ("total_boundaries", Num (float_of_int r.Crash_surface.r_total_boundaries));
      ("explored", Num (float_of_int r.Crash_surface.r_explored));
      ("contract_breaks", Num (float_of_int r.Crash_surface.r_contract_breaks));
      ("lost_total", Num (float_of_int r.Crash_surface.r_lost_total));
      ( "kinds",
        Arr
          (List.map
             (fun (k : Crash_surface.kind_summary) ->
               Obj
                 [
                   ("kind", Str (Crash_surface.kind_name k.Crash_surface.k_kind));
                   ("boundaries", Num (float_of_int k.Crash_surface.k_boundaries));
                   ("explored", Num (float_of_int k.Crash_surface.k_explored));
                   ( "contract_breaks",
                     Num (float_of_int k.Crash_surface.k_contract_breaks) );
                 ])
             r.Crash_surface.r_kinds) );
    ]

(* -- main --------------------------------------------------------------- *)

let usage () =
  print_endline
    "usage: scenarios.exe [--quick] [--check] [--jobs N] [--device NAME] \
     [--streams N] [--output PATH]";
  exit 2

let () =
  let quick = ref false in
  let check = ref false in
  let jobs = ref (Parallel.default_jobs ()) in
  let device = ref None in
  let streams = ref 1 in
  let output = ref "BENCH_PR10.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--check" :: rest -> check := true; parse rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n; parse rest
        | _ -> usage ())
    | "--device" :: name :: rest -> device := Some name; parse rest
    | "--streams" :: n :: rest -> (
        (* Deliberately unchecked here: the value flows into the DSL so
           that Scen.validate — not ad-hoc flag parsing — rejects
           nonsense like 0 streams or streams on a Serial policy. *)
        match int_of_string_opt n with
        | Some n -> streams := n; parse rest
        | None -> usage ())
    | "--output" :: path :: rest -> output := path; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick in
  let devices =
    match !device with None -> all_devices | Some d -> [ d ]
  in
  let failures = ref [] in
  let fail msg = failures := msg :: !failures in

  (* -- presets: DSL == legacy records, by digest ---------------------- *)
  let presets =
    List.map
      (fun name ->
        let legacy =
          match Scenario.mode_of_name name with
          | Some mode -> { Scenario.default with Scenario.mode }
          | None -> assert false
        in
        let dsl = B.build (Scen.preset name) in
        (name, Scen.digest dsl, Scen.digest legacy))
      Scen.preset_names
  in
  let presets_ok = List.for_all (fun (_, d, l) -> d = l) presets in
  Printf.printf "scenarios: %d presets digest-identical to legacy configs: %b\n%!"
    (List.length presets) presets_ok;

  (* -- the grid ------------------------------------------------------- *)
  let grid = cells ~quick ~devices ~streams:!streams in

  (* The same grid through Scen.Builder.grid: the combinator must
     enumerate exactly the nested loops above, row-major, so bench
     tables and this harness agree on what "cell i" means. *)
  let combinator_grid =
    B.grid
      ~axes:
        [
          List.map snd Scen.Workloads.all;
          List.map B.mode modes;
          List.map B.device_of_name devices;
        ]
      (steady_base ~quick ~streams:!streams)
  in
  let grid_digests = List.map (fun c -> Scen.digest c.cl_steady) grid in
  let combinator_digests =
    List.map (fun b -> Scen.digest (B.build_or_exit b)) combinator_grid
  in
  let grid_ok = grid_digests = combinator_digests in
  Printf.printf
    "scenarios: grid of %d cells (%d workloads x %d modes x %d devices); \
     Builder.grid enumeration digest-identical: %b\n%!"
    (List.length grid) (List.length Scen.Workloads.all) (List.length modes)
    (List.length devices) grid_ok;

  (* -- steady metrics, cells and twins in one parallel batch ---------- *)
  let twins = List.filter_map (fun c -> c.cl_twin) grid in
  let t0 = Unix.gettimeofday () in
  let steady_results =
    Experiment.run_steady_batch ~jobs:!jobs
      (List.map (fun c -> c.cl_steady) grid @ twins)
  in
  let steady_s = Unix.gettimeofday () -. t0 in
  let cell_steady = List.filteri (fun i _ -> i < List.length grid) steady_results in
  let twin_steady =
    let rest = List.filteri (fun i _ -> i >= List.length grid) steady_results in
    let tbl = Hashtbl.create 8 in
    List.iter2
      (fun config result -> Hashtbl.replace tbl (Scen.digest config) result)
      twins rest;
    fun (c : cell) ->
      match c.cl_twin with
      | None -> None
      | Some twin -> Hashtbl.find_opt tbl (Scen.digest twin)
  in
  List.iter2
    (fun c (r : Experiment.steady_result) ->
      let twin_note =
        match twin_steady c with
        | Some (t : Experiment.steady_result) ->
            Printf.sprintf " (steady twin p99 %8.0f us, x%.2f)"
              t.Experiment.latency_p99_us
              (r.Experiment.latency_p99_us /. t.Experiment.latency_p99_us)
        | None -> ""
      in
      Printf.printf
        "scenarios: %-28s %6d committed, %8.0f txn/s, p99 %8.0f us%s\n%!"
        c.cl_name r.Experiment.committed_in_window r.Experiment.throughput
        r.Experiment.latency_p99_us twin_note)
    grid cell_steady;
  Printf.printf "scenarios: steady batch done in %.2fs\n%!" steady_s;

  (* -- the crash sweeps: every cell, every enumerated boundary -------- *)
  let t1 = Unix.gettimeofday () in
  let sweeps =
    List.map (fun c -> Crash_surface.sweep ~jobs:!jobs c.cl_sweep) grid
  in
  let sweep_s = Unix.gettimeofday () -. t1 in
  let total_explored =
    List.fold_left (fun acc s -> acc + s.Crash_surface.r_explored) 0 sweeps
  in
  let total_breaks =
    List.fold_left (fun acc s -> acc + s.Crash_surface.r_contract_breaks) 0 sweeps
  in
  List.iter2
    (fun c (s : Crash_surface.result) ->
      Printf.printf
        "scenarios: sweep %-28s %5d boundaries, stride %4d, %3d explored, %d \
         contract breaks\n%!"
        c.cl_name s.Crash_surface.r_total_boundaries s.Crash_surface.r_stride
        s.Crash_surface.r_explored s.Crash_surface.r_contract_breaks)
    grid sweeps;
  Printf.printf
    "scenarios: crash sweeps done in %.2fs: %d points explored, %d contract \
     breaks\n%!"
    sweep_s total_explored total_breaks;

  (* -- the flash-crowd asymmetry -------------------------------------- *)
  let p99_ratio workload mode dev =
    let rec find cs rs =
      match (cs, rs) with
      | c :: cs, (r : Experiment.steady_result) :: rs ->
          if c.cl_workload = workload && c.cl_mode = mode && c.cl_device = dev
          then
            match twin_steady c with
            | Some t ->
                Some (r.Experiment.latency_p99_us /. t.Experiment.latency_p99_us)
            | None -> None
          else find cs rs
      | _ -> None
    in
    find grid cell_steady
  in
  let flash_ratios =
    List.concat_map
      (fun dev ->
        List.map
          (fun mode ->
            (Scenario.mode_name mode, dev, p99_ratio "flash-crowd" mode dev))
          modes)
      devices
  in
  List.iter
    (fun (mode, dev, ratio) ->
      match ratio with
      | Some r ->
          Printf.printf "scenarios: flash-crowd p99 degradation %s/%s: x%.2f\n%!"
            mode dev r
      | None -> ())
    flash_ratios;

  (* -- offered-load fidelity ------------------------------------------ *)
  let rapilog_twin_rates =
    List.filter_map
      (fun c ->
        if c.cl_mode = Scenario.Rapilog then
          match (c.cl_steady.Scenario.arrival, twin_steady c) with
          | Workload.Arrival.Open_loop shape, Some t ->
              let offered =
                match shape with
                | Workload.Arrival.Poisson { rate } -> rate
                | Workload.Arrival.Flash_crowd { base; _ } -> base
                | Workload.Arrival.Diurnal { mean; _ } -> mean
              in
              Some (c.cl_name, offered, t.Experiment.throughput)
          | _ -> None
        else None)
      grid
  in

  let report =
    Obj
      [
        ("pr", Num 10.);
        ("harness", Str "scenarios.exe");
        ("quick", Bool quick);
        ("jobs", Num (float_of_int !jobs));
        ( "presets",
          Arr
            (List.map
               (fun (name, dsl, legacy) ->
                 Obj
                   [
                     ("name", Str name);
                     ("dsl_digest", Str dsl);
                     ("legacy_digest", Str legacy);
                     ("identical", Bool (dsl = legacy));
                   ])
               presets) );
        ( "grid",
          Obj
            [
              ("cells", Num (float_of_int (List.length grid)));
              ("combinator_enumeration_identical", Bool grid_ok);
              ("steady_seconds", Num steady_s);
              ("sweep_seconds", Num sweep_s);
            ] );
        ( "cells",
          Arr
            (List.map2
               (fun (c, r) s ->
                 Obj
                   ([
                      ("name", Str c.cl_name);
                      ("workload", Str c.cl_workload);
                      ("mode", Str (Scenario.mode_name c.cl_mode));
                      ("device", Str c.cl_device);
                      ("digest", Str (Scen.digest c.cl_steady));
                      ("steady", steady_json r);
                      ("sweep", sweep_json s);
                    ]
                   @
                   match twin_steady c with
                   | Some t ->
                       [
                         ("twin", steady_json t);
                         ( "p99_vs_twin",
                           Num
                             (r.Experiment.latency_p99_us
                             /. t.Experiment.latency_p99_us) );
                       ]
                   | None -> []))
               (List.combine grid cell_steady)
               sweeps) );
        ( "offered_load",
          Arr
            (List.map
               (fun (name, offered, measured) ->
                 Obj
                   [
                     ("cell_twin", Str name);
                     ("offered_per_s", Num offered);
                     ("committed_per_s", Num measured);
                   ])
               rapilog_twin_rates) );
      ]
  in
  let text = Json.to_string report in
  let oc = open_out !output in
  output_string oc text;
  close_out oc;
  Printf.printf "scenarios: wrote %s\n%!" !output;

  if !check then begin
    (match Json.of_string text with
    | exception Json.Parse_error msg -> fail ("report is not valid JSON: " ^ msg)
    | _ -> ());
    if not presets_ok then
      fail "a DSL preset is not digest-identical to its legacy config";
    if not grid_ok then
      fail "Builder.grid enumeration differs from the nested-loop grid";
    List.iter2
      (fun c (s : Crash_surface.result) ->
        if s.Crash_surface.r_explored = 0 then
          fail (Printf.sprintf "sweep %s explored zero boundaries" c.cl_name);
        if s.Crash_surface.r_contract_breaks > 0 then
          fail
            (Printf.sprintf "sweep %s: %d contract breaks (%d commits lost)"
               c.cl_name s.Crash_surface.r_contract_breaks
               s.Crash_surface.r_lost_total))
      grid sweeps;
    List.iter
      (fun c ->
        match Scen.validate c.cl_steady with
        | Ok _ -> ()
        | Error msg -> fail (Printf.sprintf "cell %s invalid: %s" c.cl_name msg))
      grid;
    (* The asymmetry gate only speaks on the disk with both modes
       present (a --device/--streams override changes the question). *)
    if !streams = 1 && List.mem "hdd" devices then begin
      (match p99_ratio "flash-crowd" Scenario.Rapilog "hdd" with
      | Some r when r > 3.0 ->
          fail
            (Printf.sprintf
               "flash crowd degrades rapilog/hdd p99 x%.2f (> x3): the \
                trusted buffer should absorb the burst"
               r)
      | Some _ -> ()
      | None -> fail "flash-crowd rapilog/hdd ratio missing");
      match p99_ratio "flash-crowd" Scenario.Native_sync "hdd" with
      | Some r when r < 5.0 ->
          fail
            (Printf.sprintf
               "flash crowd degrades native-sync/hdd p99 only x%.2f (< x5): \
                the open-loop burst should overwhelm synchronous commits — \
                no asymmetry, no teeth"
               r)
      | Some _ -> ()
      | None -> fail "flash-crowd native-sync/hdd ratio missing"
    end;
    List.iter
      (fun (name, offered, measured) ->
        if abs_float (measured -. offered) /. offered > 0.25 then
          fail
            (Printf.sprintf
               "%s: steady twin committed %.0f/s against %.0f/s offered \
                (>25%% off): open-loop arrivals are not being honoured"
               name measured offered))
      rapilog_twin_rates;
    match List.rev !failures with
    | [] -> Printf.printf "scenarios: all checks passed\n%!"
    | fs ->
        List.iter (fun f -> Printf.printf "scenarios: CHECK FAILED: %s\n%!" f) fs;
        exit 1
  end
