test/test_desim.ml: Alcotest Array Channel Desim Event_queue Float Format Fun Int64 List Option Printf Process QCheck2 Resource Rng Sim Stats String Testu Time Trace
