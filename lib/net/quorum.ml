open Desim

(* ------------------------------------------------------------------ *)
(* The message-level state machine                                     *)
(* ------------------------------------------------------------------ *)

module Protocol = struct
  type entry = { e_term : int; e_seq : int }

  type msg =
    | Append of { lterm : int; entry : entry }
    | Ack of { acker : int; aterm : int; seq : int }
    | Elect of { cterm : int; candidate : int; wm_term : int; wm_seq : int }
    | Adopt of { adopter : int; aterm : int }

  type lead = Primary | Replica_leader of int | Candidate of int | No_leader

  type node = {
    mutable alive : bool;
    mutable nterm : int;
    mutable log : entry list;  (* newest first; always seqs len..1 *)
    mutable inbox : msg list;  (* oldest first *)
    mutable outbox : msg list;  (* oldest first *)
  }

  type t = {
    n : int;
    k : int;
    nodes : node array;
    mutable prim_alive : bool;
    mutable primary_log : entry list;  (* newest first *)
    mutable leadership : lead;
    mutable term : int;
    mutable adopt_count : int;
    mutable acks : (int * int) list;  (* seq -> distinct acks this leadership *)
    mutable commit : int;
    mutable committed_rev : entry list;  (* ghost: the committed prefix *)
    mutable flagged : string list;  (* violations recorded along the way *)
  }

  let create ~replicas ~quorum =
    if replicas < 1 || quorum < 1 || quorum > replicas then
      invalid_arg "Quorum.Protocol.create: need 1 <= quorum <= replicas";
    {
      n = replicas;
      k = quorum;
      nodes =
        Array.init replicas (fun _ ->
            { alive = true; nterm = 1; log = []; inbox = []; outbox = [] });
      prim_alive = true;
      primary_log = [];
      leadership = Primary;
      term = 1;
      adopt_count = 0;
      acks = [];
      commit = 0;
      committed_rev = [];
      flagged = [];
    }

  let copy t =
    {
      t with
      nodes = Array.map (fun node -> { node with alive = node.alive }) t.nodes;
    }

  let mk_log len = List.init len (fun i -> { e_term = 1; e_seq = len - i })

  let seed t ~primary_len ~prefixes ~committed ~term =
    if Array.length prefixes <> t.n then
      invalid_arg "Quorum.Protocol.seed: one prefix per replica";
    t.primary_log <- mk_log primary_len;
    Array.iteri
      (fun r node ->
        node.log <- mk_log prefixes.(r);
        node.nterm <- 1;
        node.inbox <- [];
        node.outbox <- [])
      t.nodes;
    t.committed_rev <- mk_log committed;
    t.commit <- committed;
    t.term <- max 1 term;
    t.leadership <- Primary;
    t.prim_alive <- true;
    t.adopt_count <- 0;
    t.acks <- [];
    t.flagged <- []

  (* -- observers -------------------------------------------------- *)

  let lead t = t.leadership
  let term t = t.term
  let commit_watermark t = t.commit
  let committed t = List.rev t.committed_rev
  let adopts t = t.adopt_count
  let adoption_quorum t = t.n - t.k + 1
  let primary_alive t = t.prim_alive
  let node_alive t r = t.nodes.(r).alive
  let node_term t r = t.nodes.(r).nterm
  let node_log t r = List.rev t.nodes.(r).log
  let inbox t r = t.nodes.(r).inbox
  let outbox t r = t.nodes.(r).outbox

  let log_watermark log =
    match log with [] -> (0, 0) | e :: _ -> (e.e_term, e.e_seq)

  let watermark t r = log_watermark t.nodes.(r).log

  let best_candidate t =
    let best = ref None in
    Array.iteri
      (fun r node ->
        if node.alive then
          let wm = log_watermark node.log in
          match !best with
          | None -> best := Some (r, wm)
          | Some (_, bwm) -> if compare wm bwm > 0 then best := Some (r, wm))
      t.nodes;
    Option.map fst !best

  let flag t msg = t.flagged <- msg :: t.flagged

  let leader_log t =
    match t.leadership with
    | Primary when t.prim_alive -> Some t.primary_log
    | Replica_leader c when t.nodes.(c).alive -> Some t.nodes.(c).log
    | _ -> None

  (* -- operations ------------------------------------------------- *)

  let require ok op = if not ok then invalid_arg ("Quorum.Protocol." ^ op)

  let clear_all_channels t =
    Array.iter
      (fun node ->
        node.inbox <- [];
        node.outbox <- [])
      t.nodes

  let can_append t = leader_log t <> None

  let append t =
    require (can_append t) "append: no live leader";
    let log, set_log =
      match t.leadership with
      | Primary -> (t.primary_log, fun l -> t.primary_log <- l)
      | Replica_leader c -> (t.nodes.(c).log, fun l -> t.nodes.(c).log <- l)
      | Candidate _ | No_leader -> assert false
    in
    let _, len = log_watermark log in
    let entry = { e_term = t.term; e_seq = len + 1 } in
    set_log (entry :: log);
    let leader_id =
      match t.leadership with Replica_leader c -> c | _ -> -1
    in
    Array.iteri
      (fun r node ->
        if r <> leader_id && node.alive then
          node.inbox <- node.inbox @ [ Append { lterm = t.term; entry } ])
      t.nodes;
    entry

  let can_deliver t r = t.nodes.(r).alive && t.nodes.(r).inbox <> []

  let log_nth log len s = List.nth log (len - s)

  let deliver t r =
    require (can_deliver t r) "deliver: disabled";
    let node = t.nodes.(r) in
    match node.inbox with
    | [] -> assert false
    | m :: rest -> (
        node.inbox <- rest;
        match m with
        | Append { lterm; entry } ->
            if lterm >= node.nterm then begin
              node.nterm <- lterm;
              let len = List.length node.log in
              if entry.e_seq = len + 1 then node.log <- entry :: node.log
              else if entry.e_seq <= len then begin
                if log_nth node.log len entry.e_seq <> entry then begin
                  (* Truncate-and-replace the conflicting suffix. A
                     committed entry in the dropped suffix is a safety
                     violation — record it, don't hide it. *)
                  let rec split dropped = function
                    | e :: tl when e.e_seq >= entry.e_seq ->
                        split (e :: dropped) tl
                    | kept -> (dropped, kept)
                  in
                  let dropped, kept = split [] node.log in
                  List.iter
                    (fun e ->
                      if List.mem e t.committed_rev then
                        flag t
                          (Printf.sprintf
                             "truncated committed entry (term %d, seq %d) on \
                              node %d"
                             e.e_term e.e_seq r))
                    dropped;
                  node.log <- entry :: kept
                end
                (* else: duplicate of what we already hold — drop. *)
              end
              else flag t "append gap: link reordered or fabricated";
              node.outbox <-
                node.outbox @ [ Ack { acker = r; aterm = lterm; seq = entry.e_seq } ]
            end
        | Elect { cterm; candidate = _; wm_term; wm_seq } ->
            (* The vote rule: adopt only a newer term whose watermark is
               not behind ours — a candidate missing a committed entry
               is refused by every replica holding it, and there are at
               least k of those, so at most n - k < n - k + 1 can
               adopt it. *)
            if cterm > node.nterm && (wm_term, wm_seq) >= log_watermark node.log
            then begin
              node.nterm <- cterm;
              node.outbox <- node.outbox @ [ Adopt { adopter = r; aterm = cterm } ]
            end
        | Ack _ | Adopt _ ->
            (* Responses travel on the outbox, never here. *)
            assert false)

  let can_collect t r =
    t.nodes.(r).outbox <> []
    &&
    match t.leadership with
    | Primary -> t.prim_alive
    | Replica_leader c | Candidate c -> t.nodes.(c).alive
    | No_leader -> false

  let commit_to t log seq =
    let len = List.length log in
    for s = t.commit + 1 to seq do
      let e = log_nth log len s in
      match List.find_opt (fun c -> c.e_seq = s) t.committed_rev with
      | Some c when c <> e ->
          flag t (Printf.sprintf "committed seq %d rewritten" s)
      | Some _ -> ()
      | None -> t.committed_rev <- e :: t.committed_rev
    done;
    t.commit <- seq

  let record_ack t seq =
    match leader_log t with
    | None -> ()
    | Some log ->
        let count =
          (match List.assoc_opt seq t.acks with Some c -> c | None -> 0) + 1
        in
        t.acks <- (seq, count) :: List.remove_assoc seq t.acks;
        if count = t.k then
          if seq > t.commit then begin
            (* Prefix closure: per-link FIFO means each of the k ackers
               acked every earlier seq first, so those quorums completed
               before this one. *)
            if seq <> t.commit + 1 then
              flag t (Printf.sprintf "ack quorum out of order at seq %d" seq);
            commit_to t log seq
          end
          else begin
            (* Re-commit under a new leadership: the identity at seq
               must match the ghost. *)
            let len = List.length log in
            let ghost =
              List.find_opt (fun c -> c.e_seq = seq) t.committed_rev
            in
            match ghost with
            | Some g when g <> log_nth log len seq ->
                flag t (Printf.sprintf "committed seq %d rewritten" seq)
            | _ -> ()
          end

  let become_leader t c =
    t.leadership <- Replica_leader c;
    t.acks <- [];
    clear_all_channels t;
    (* Full-log catch-up on the fresh channels: prefix matching is
       re-established wholesale, replicas truncate-and-replace any
       divergent suffix (which can never include a committed entry —
       the vote rule made sure the winner holds them all). *)
    let catch_up = List.rev t.nodes.(c).log in
    Array.iteri
      (fun r node ->
        if r <> c && node.alive then
          node.inbox <-
            node.inbox
            @ List.map (fun entry -> Append { lterm = t.term; entry }) catch_up)
      t.nodes

  let collect t r =
    require (can_collect t r) "collect: disabled";
    let node = t.nodes.(r) in
    match node.outbox with
    | [] -> assert false
    | m :: rest -> (
        node.outbox <- rest;
        match m with
        | Ack { aterm; seq; _ } -> if aterm = t.term then record_ack t seq
        | Adopt { aterm; _ } -> (
            match t.leadership with
            | Candidate c when aterm = t.term ->
                t.adopt_count <- t.adopt_count + 1;
                if t.adopt_count >= adoption_quorum t then become_leader t c
            | _ -> ())
        | Append _ | Elect _ -> assert false)

  let can_lose_primary t = t.prim_alive

  let lose_primary t =
    require (can_lose_primary t) "lose_primary: already dead";
    t.prim_alive <- false;
    if t.leadership = Primary then t.leadership <- No_leader;
    (* The wire is not a durability domain: the dead machine was an
       endpoint of every channel. *)
    clear_all_channels t

  let can_lose t r = t.nodes.(r).alive

  let lose t r =
    require (can_lose t r) "lose: already dead";
    let node = t.nodes.(r) in
    node.alive <- false;
    node.inbox <- [];
    node.outbox <- [];
    match t.leadership with
    | Replica_leader c | Candidate c when c = r ->
        t.leadership <- No_leader;
        clear_all_channels t
    | _ -> ()

  let can_campaign t r = t.leadership = No_leader && t.nodes.(r).alive

  let campaign t r =
    require (can_campaign t r) "campaign: disabled";
    let term =
      1
      + Array.fold_left
          (fun acc node -> if node.alive then max acc node.nterm else acc)
          t.term t.nodes
    in
    t.term <- term;
    t.leadership <- Candidate r;
    t.adopt_count <- 1;
    t.acks <- [];
    clear_all_channels t;
    let cand = t.nodes.(r) in
    cand.nterm <- term;
    let wm_term, wm_seq = log_watermark cand.log in
    Array.iteri
      (fun i node ->
        if i <> r && node.alive then
          node.inbox <-
            node.inbox @ [ Elect { cterm = term; candidate = r; wm_term; wm_seq } ])
      t.nodes;
    if t.adopt_count >= adoption_quorum t then become_leader t r

  let check t =
    let issues = ref (List.rev t.flagged) in
    let add msg = issues := msg :: !issues in
    let holds log e = List.mem e log in
    List.iter
      (fun e ->
        let held =
          (t.prim_alive && holds t.primary_log e)
          || Array.exists (fun node -> node.alive && holds node.log e) t.nodes
        in
        if not held then
          add
            (Printf.sprintf "committed entry (term %d, seq %d) on no live node"
               e.e_term e.e_seq))
      t.committed_rev;
    (match leader_log t with
    | Some log ->
        List.iter
          (fun e ->
            if not (holds log e) then
              add
                (Printf.sprintf
                   "leader log missing committed entry (term %d, seq %d)"
                   e.e_term e.e_seq))
          t.committed_rev
    | None -> ());
    List.rev !issues
end

(* ------------------------------------------------------------------ *)
(* The simulated runtime                                               *)
(* ------------------------------------------------------------------ *)

type config = { replicas : int; quorum : int; links : Link.config list }

let majority n = (n / 2) + 1
let default = { replicas = 3; quorum = majority 3; links = [ Link.default ] }

let merge_prefix per_node_entries =
  let by_seq = Hashtbl.create 64 in
  List.iter
    (fun entries ->
      let next = ref 1 in
      List.iter
        (fun ((seq, _, _) as entry) ->
          if seq = !next then begin
            if not (Hashtbl.mem by_seq seq) then Hashtbl.add by_seq seq entry;
            incr next
          end)
        entries)
    per_node_entries;
  let rec walk acc seq =
    match Hashtbl.find_opt by_seq seq with
    | Some entry -> walk (entry :: acc) (seq + 1)
    | None -> List.rev acc
  in
  walk [] 1

type election = {
  el_term : int;
  el_leader : int;
  el_adopters : int;
  el_quorum : bool;
}

type message = { m_seq : int; m_lba : int; m_data : string }

(* On-wire framing overhead charged against link bandwidth; the append
   header also carries the leader term. *)
let header_bytes = 32
let ack_bytes = 16

type node = {
  id : int;
  replica : Replica.t;
  data_link : message Link.t;
  ack_link : int Link.t;
  mutable alive : bool;
}

type t = {
  sim : Sim.t;
  config : config;
  nodes : node array;
  (* Writers parked until their seq reaches the quorum. *)
  waiters : (int, unit Process.resumer) Hashtbl.t;
  ack_counts : (int, int) Hashtbl.t;
  mutable commit : int;
  mutable n_sent : int;
  mutable n_acks : int;
  mutable prim_alive : bool;
  mutable term : int;
  mutable last_election : election option;
  m_replicate : Metrics.Histogram.t option;
  m_quorum_wait : Metrics.Histogram.t option;
}

let on_ack t seq =
  t.n_acks <- t.n_acks + 1;
  (* Acks beyond the k-th for an already-committed seq carry no new
     information — without this guard they would restart the counter
     and re-trigger the quorum path. *)
  if t.prim_alive && seq > t.commit then begin
    let count =
      (match Hashtbl.find_opt t.ack_counts seq with Some c -> c | None -> 0) + 1
    in
    if count >= t.config.quorum then begin
      (* Per-link FIFO in both directions makes quorums complete in seq
         order (each acker acked every earlier seq first). *)
      assert (seq = t.commit + 1);
      Hashtbl.remove t.ack_counts seq;
      t.commit <- seq;
      match Hashtbl.find_opt t.waiters seq with
      | Some resume ->
          Hashtbl.remove t.waiters seq;
          resume ()
      | None -> ()
    end
    else Hashtbl.replace t.ack_counts seq count
  end

let on_data node msg =
  Replica.receive node.replica ~seq:msg.m_seq ~lba:msg.m_lba ~data:msg.m_data;
  (* The replica's buffer is its durability domain: ack on receipt, off
     the replica's own drain path. *)
  Link.send node.ack_link ~bytes:ack_bytes msg.m_seq

(* Runs in the admitting writer's process, straight after the ring push.
   Sends never block; the writer parks until the k-th ack. No link pump
   can fire between the sends and the suspend (no yield), so an ack
   cannot race a missing waiter. *)
let replicate_hook t ~seq ~lba ~data =
  let started =
    match t.m_replicate with Some _ -> Metrics.Span.start t.sim | None -> 0
  in
  t.n_sent <- t.n_sent + 1;
  let bytes = String.length data + header_bytes in
  Array.iter
    (fun node ->
      if node.alive then
        Link.send node.data_link ~bytes { m_seq = seq; m_lba = lba; m_data = data })
    t.nodes;
  let wait_started =
    match t.m_quorum_wait with Some _ -> Metrics.Span.start t.sim | None -> 0
  in
  if t.commit < seq then
    Process.suspend (fun resume -> Hashtbl.replace t.waiters seq resume);
  (match t.m_quorum_wait with
  | Some hist -> Metrics.Span.finish hist t.sim wait_started
  | None -> ());
  match t.m_replicate with
  | Some hist -> Metrics.Span.finish hist t.sim started
  | None -> ()

let link_config config i =
  match config.links with
  | [] -> Link.default
  | links -> List.nth links (i mod List.length links)

let attach sim (config : config) ~logger ~make_device =
  if config.replicas < 1 || config.quorum < 1 || config.quorum > config.replicas
  then invalid_arg "Quorum.attach: need 1 <= quorum <= replicas";
  let self = ref None in
  let the t = match !t with Some t -> t | None -> assert false in
  let dummy_message = { m_seq = 0; m_lba = 0; m_data = "" } in
  let nodes =
    Array.init config.replicas (fun i ->
        let replica = Replica.create sim ~device:(make_device i) () in
        (* Per node: ack link first, then data link — rng split order is
           fixed by construction order, part of the deterministic
           schedule (same convention as Net.Replication). *)
        let lc = link_config config i in
        let ack_link =
          Link.create sim
            ~name:(Printf.sprintf "quorum-ack-%d" i)
            lc ~dummy:0
            ~deliver:(fun seq -> on_ack (the self) seq)
        in
        let data_link =
          Link.create sim
            ~name:(Printf.sprintf "quorum-data-%d" i)
            lc ~dummy:dummy_message
            ~deliver:(fun msg ->
              let t = the self in
              on_data t.nodes.(i) msg)
        in
        { id = i; replica; data_link; ack_link; alive = true })
  in
  let metrics = Metrics.recording () in
  let t =
    {
      sim;
      config;
      nodes;
      waiters = Hashtbl.create 64;
      ack_counts = Hashtbl.create 64;
      commit = 0;
      n_sent = 0;
      n_acks = 0;
      prim_alive = true;
      term = 1;
      last_election = None;
      m_replicate =
        Option.map (fun reg -> Metrics.histogram reg "logger.replicate") metrics;
      m_quorum_wait =
        Option.map (fun reg -> Metrics.histogram reg "logger.quorum_wait") metrics;
    }
  in
  self := Some t;
  Rapilog.Trusted_logger.set_replication logger (replicate_hook t);
  t

let config t = t.config
let node_replica t i = t.nodes.(i).replica

let live_nodes t =
  Array.to_list t.nodes
  |> List.filter_map (fun node -> if node.alive then Some node.id else None)

let commit_seq t = t.commit
let sent t = t.n_sent
let acks t = t.n_acks

let wire_in_flight t =
  Array.fold_left
    (fun acc node ->
      acc + Link.in_flight node.data_link + Link.in_flight node.ack_link)
    0 t.nodes

let sever_node_links node =
  Link.sever node.data_link;
  Link.sever node.ack_link

let primary_lost t =
  t.prim_alive <- false;
  Array.iter sever_node_links t.nodes

let node_lost t i =
  let node = t.nodes.(i) in
  node.alive <- false;
  sever_node_links node

let partition_node t i =
  let node = t.nodes.(i) in
  Link.partition node.data_link;
  Link.partition node.ack_link

let heal_node t i =
  let node = t.nodes.(i) in
  Link.heal node.data_link;
  Link.heal node.ack_link

let node_partitioned t i =
  Link.partitioned t.nodes.(i).data_link
  || Link.partitioned t.nodes.(i).ack_link

let handoff t =
  (* Run the real protocol state machine over the live cluster's
     watermarks: what the model checker proves is what executes here. *)
  let p =
    Protocol.create ~replicas:t.config.replicas ~quorum:t.config.quorum
  in
  Protocol.seed p ~primary_len:t.n_sent
    ~prefixes:(Array.map (fun node -> Replica.prefix node.replica) t.nodes)
    ~committed:t.commit ~term:t.term;
  Protocol.lose_primary p;
  Array.iter (fun node -> if not node.alive then Protocol.lose p node.id) t.nodes;
  let election =
    match Protocol.best_candidate p with
    | None ->
        { el_term = t.term; el_leader = -1; el_adopters = 0; el_quorum = false }
    | Some c ->
        Protocol.campaign p c;
        for r = 0 to t.config.replicas - 1 do
          while Protocol.can_deliver p r do
            Protocol.deliver p r
          done
        done;
        for r = 0 to t.config.replicas - 1 do
          while Protocol.can_collect p r do
            Protocol.collect p r
          done
        done;
        let quorate =
          match Protocol.lead p with
          | Protocol.Replica_leader c' -> c' = c
          | _ -> false
        in
        if quorate then begin
          match Protocol.check p with
          | [] -> ()
          | issues ->
              failwith
                ("Quorum.handoff: quorate election violated an invariant: "
                ^ String.concat "; " issues)
        end;
        {
          el_term = Protocol.term p;
          el_leader = c;
          el_adopters = Protocol.adopts p;
          el_quorum = quorate;
        }
  in
  t.term <- election.el_term;
  t.last_election <- Some election;
  election

let last_election t = t.last_election

let recovery_log_device t ~primary =
  if not t.prim_alive then ignore (handoff t);
  let info = Storage.Block.info primary in
  let media =
    Storage.Block.Media.create ~sector_size:info.Storage.Block.sector_size
      ~capacity_sectors:info.Storage.Block.capacity_sectors
  in
  (* Frozen copy of the primary's durable media, chunked. *)
  let extent = Storage.Block.durable_extent primary in
  let chunk = 256 in
  let lba = ref 0 in
  while !lba < extent do
    let sectors = min chunk (extent - !lba) in
    Storage.Block.Media.write media ~lba:!lba
      ~data:(Storage.Block.durable_read primary ~lba:!lba ~sectors);
    lba := !lba + sectors
  done;
  (* Overlay the cluster's longest recoverable prefix: every quorum-
     acked seq lives in >= quorum consecutive prefixes, so it survives
     the primary plus any (quorum - 1) replica losses. Applied in seq
     order so a later rewrite of the same sectors wins, exactly as on
     the primary. *)
  let live_entries =
    Array.to_list t.nodes
    |> List.filter_map (fun node ->
           if node.alive then Some (Replica.entries node.replica) else None)
  in
  List.iter
    (fun (_seq, lba, data) -> Storage.Block.Media.write media ~lba ~data)
    (merge_prefix live_entries);
  Storage.Block.of_media ~model:"quorum-log" media
