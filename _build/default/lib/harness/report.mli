(** Plain-text report formatting for the benchmark harness.

    All output goes to [stdout] in a stable, diffable layout: a section
    banner per experiment, aligned tables, and gnuplot-friendly series
    blocks. *)

val section : string -> unit
val subsection : string -> unit
val kv : string -> string -> unit
val kvf : string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val table : columns:string list -> rows:string list list -> unit
(** Column-aligned table with a header rule. *)

val series : title:string -> x_label:string -> columns:string list ->
  rows:(float * float list) list -> unit
(** One x value and one y per column per row; NaNs print as ["-"]. *)

val bars : title:string -> unit_label:string -> rows:(string * float) list -> unit
(** Horizontal ASCII bars scaled to the largest value; negative and NaN
    values render as empty bars. *)

val note : string -> unit

val float_cell : float -> string
(** Compact numeric formatting: integers without decimals, large values
    with thousands grouping kept plain, NaN as ["-"]. *)
