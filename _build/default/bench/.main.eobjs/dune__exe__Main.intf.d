bench/main.mli:
