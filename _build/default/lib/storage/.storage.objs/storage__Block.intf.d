lib/storage/block.mli: Desim Disk_stats
