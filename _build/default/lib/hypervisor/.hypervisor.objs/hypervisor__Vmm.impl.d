lib/hypervisor/vmm.ml: Desim Domain Fun Ipc Process Resource Sim Storage Time Virtio_blk
