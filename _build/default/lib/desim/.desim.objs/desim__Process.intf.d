lib/desim/process.mli: Sim Time
