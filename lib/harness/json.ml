type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

let rec write buf = function
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "%S: " k);
          write buf v)
        fields;
      Buffer.add_char buf '}'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Str s -> Buffer.add_string buf (Printf.sprintf "%S" s)
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Null -> Buffer.add_string buf "null"

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

exception Parse_error of string

let of_string text =
  let pos = ref 0 in
  let len = String.length text in
  let peek () = if !pos < len then text.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          let c = peek () in
          advance ();
          (match c with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'u' ->
              (* four hex digits; validity only, keep them raw *)
              for _ = 1 to 4 do
                (match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> fail "bad unicode escape");
                advance ()
              done
          | ('"' | '\\' | '/') as c -> Buffer.add_char buf c
          | _ -> fail "bad escape");
          loop ()
      | '\000' -> fail "unterminated string"
      | c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while is_num_char (peek ()) do advance () done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let parse_literal lit value =
    if !pos + String.length lit <= len && String.sub text !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      value
    end
    else fail "bad literal"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); fields ((key, v) :: acc)
            | '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Arr [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); items (v :: acc)
            | ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (items [])
        end
    | '"' -> Str (parse_string ())
    | 't' -> parse_literal "true" (Bool true)
    | 'f' -> parse_literal "false" (Bool false)
    | 'n' -> parse_literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Arr _ | Str _ | Num _ | Bool _ | Null -> None

let to_num = function Num f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
