open Desim

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable flushes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable busy : Time.span;
  write_service : Stats.Sample.t;
}

let create () =
  {
    reads = 0;
    writes = 0;
    flushes = 0;
    sectors_read = 0;
    sectors_written = 0;
    busy = Time.zero_span;
    write_service = Stats.Sample.create ();
  }

let record_read t ~sectors ~service =
  t.reads <- t.reads + 1;
  t.sectors_read <- t.sectors_read + sectors;
  t.busy <- Time.add_span t.busy service

let record_write t ~sectors ~service =
  t.writes <- t.writes + 1;
  t.sectors_written <- t.sectors_written + sectors;
  t.busy <- Time.add_span t.busy service;
  Stats.Sample.add_span t.write_service service

let record_flush t ~service =
  t.flushes <- t.flushes + 1;
  t.busy <- Time.add_span t.busy service

let reads t = t.reads
let writes t = t.writes
let flushes t = t.flushes
let sectors_read t = t.sectors_read
let sectors_written t = t.sectors_written
let busy t = t.busy
let write_service t = t.write_service

(* Device metrics used to be named by model alone, so two instances of
   the same model (e.g. the members of a stripe, or a future mixed
   stripe) merged their [device.write:*] histograms into one row. A
   registry-scoped counter hands out per-instance suffixes instead: the
   first instance keeps the bare model name (back-compatible with every
   existing report and document), later ones get [model#2], [model#3]…
   The counter lives in the metrics registry itself, so numbering is
   deterministic per run and resets with the registry. *)
let instance_name model =
  match Metrics.recording () with
  | None -> model
  | Some reg ->
      let c = Metrics.counter reg ("device.instances:" ^ model) in
      Metrics.Counter.incr c;
      let n = Metrics.Counter.get c in
      if n = 1 then model else Printf.sprintf "%s#%d" model n

let pp fmt t =
  Format.fprintf fmt
    "reads=%d (%d sectors) writes=%d (%d sectors) flushes=%d busy=%a" t.reads
    t.sectors_read t.writes t.sectors_written t.flushes Time.pp_span t.busy
