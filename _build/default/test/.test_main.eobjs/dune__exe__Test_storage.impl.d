test/test_storage.ml: Alcotest Array Char Desim Int64 List Printf Process QCheck2 Rng Sim Storage String Testu Time
