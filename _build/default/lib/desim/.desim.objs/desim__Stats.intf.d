lib/desim/stats.mli: Time
