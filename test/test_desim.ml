(* Tests for the discrete-event simulation engine. *)

open Desim
open Testu

(* -- Time ---------------------------------------------------------- *)

let time_units () =
  check_span "us" (Time.ns 1_000) (Time.us 1);
  check_span "ms" (Time.us 1_000) (Time.ms 1);
  check_span "sec" (Time.ms 1_000) (Time.sec 1)

let time_arithmetic () =
  let t = Time.add Time.zero (Time.ms 5) in
  check_span "diff" (Time.ms 5) (Time.diff t Time.zero);
  check_span "add_span" (Time.ms 7) (Time.add_span (Time.ms 5) (Time.ms 2));
  check_span "sub_span" (Time.ms 3) (Time.sub_span (Time.ms 5) (Time.ms 2));
  check_span "mul" (Time.ms 10) (Time.mul_span (Time.ms 5) 2);
  check_span "div" (Time.us 500) (Time.div_span (Time.ms 5) 10);
  check_span "scale" (Time.ms 6) (Time.scale_span (Time.ms 4) 1.5)

let time_float_conversions () =
  check_near "to_sec" 0.005 (Time.span_to_float_sec (Time.ms 5));
  check_near "to_us" 5000. (Time.span_to_float_us (Time.ms 5));
  check_span "of_sec" (Time.ms 5) (Time.span_of_float_sec 0.005);
  check_span "of_us" (Time.us 3) (Time.span_of_float_us 3.0)

let time_compare () =
  let a = Time.of_ns 10 and b = Time.of_ns 20 in
  Alcotest.(check bool) "lt" true Time.(a < b);
  Alcotest.(check bool) "le" true Time.(a <= a);
  Alcotest.(check bool) "min" true (Time.equal (Time.min a b) a);
  Alcotest.(check bool) "max" true (Time.equal (Time.max a b) b)

let time_pp () =
  let show span = Format.asprintf "%a" Time.pp_span span in
  Alcotest.(check string) "ns" "999ns" (show (Time.ns 999));
  Alcotest.(check string) "us" "1.500us" (show (Time.ns 1_500));
  Alcotest.(check string) "ms" "2.000ms" (show (Time.ms 2));
  Alcotest.(check string) "s" "3.000s" (show (Time.sec 3))

(* -- Event queue ----------------------------------------------------

   [Event_queue] is the hierarchical timer wheel since PR 8;
   [Binary_heap] is the O(log n) reference backend it must agree with.
   Directed cases run against the wheel. Arbitrary-order interleavings
   run against the heap — the wheel's contract is monotone adds (at or
   after the last popped time, which [Sim] guarantees) — and the
   model-equivalence property drives both backends with one monotone op
   stream and demands identical pop order, same-instant bursts and
   far-future overflow cascades included. *)

let drain_queue q =
  let rec go acc =
    if Event_queue.is_empty q then List.rev acc
    else
      let t = Time.to_ns (Event_queue.min_time q) in
      go ((t, Event_queue.pop_min q) :: acc)
  in
  go []

let queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:(Time.of_ns 30) 3;
  Event_queue.add q ~time:(Time.of_ns 10) 1;
  Event_queue.add q ~time:(Time.of_ns 20) 2;
  Alcotest.(check (list (pair int int)))
    "sorted"
    [ (10, 1); (20, 2); (30, 3) ]
    (drain_queue q);
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let queue_fifo_same_time () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.add q ~time:(Time.of_ns 5) v) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4 ]
    (List.map snd (drain_queue q))

let queue_peek_and_length () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "starts empty" true (Event_queue.is_empty q);
  Event_queue.add q ~time:(Time.of_ns 42) ();
  Alcotest.(check int) "len" 1 (Event_queue.length q);
  Alcotest.(check int) "peek time" 42 (Time.to_ns (Event_queue.min_time q));
  Alcotest.(check int) "peek does not pop" 1 (Event_queue.length q)

(* Deliberate coverage of the deprecated conveniences: they must stay
   functional (and ordered) until removed, even though new callers get a
   deprecation alert. *)
let queue_deprecated_conveniences () =
  let q = Event_queue.create () in
  Alcotest.(check (option reject)) "peek empty" None
    (Option.map ignore (Event_queue.peek_time q));
  Alcotest.(check bool) "pop empty" true (Event_queue.pop q = None);
  Event_queue.add q ~time:(Time.of_ns 7) "a";
  Event_queue.add q ~time:(Time.of_ns 7) "b";
  (match Event_queue.peek_time q with
  | Some t -> Alcotest.(check int) "peek time" 7 (Time.to_ns t)
  | None -> Alcotest.fail "expected event");
  (match Event_queue.pop q with
  | Some (t, v) ->
      Alcotest.(check int) "pop time" 7 (Time.to_ns t);
      Alcotest.(check string) "pop fifo" "a" v
  | None -> Alcotest.fail "expected event");
  Alcotest.(check int) "one left" 1 (Event_queue.length q)
[@@alert "-deprecated"]

let queue_growth () =
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    Event_queue.add q ~time:(Time.of_ns i) i
  done;
  Alcotest.(check int) "length" 1000 (Event_queue.length q);
  let sorted = ref true and prev = ref (-1) in
  List.iter
    (fun (_, v) ->
      if v < !prev then sorted := false;
      prev := v)
    (drain_queue q);
  Alcotest.(check bool) "order maintained across growth" true !sorted

(* Far-future events take the overflow path (they differ from the wheel
   clock beyond the wheel span) and must still interleave exactly with
   near events, insertion order preserved at equal instants. *)
let queue_far_future_overflow () =
  let far = 3 * Timer_wheel.wheel_span in
  let q = Event_queue.create () in
  Event_queue.add q ~time:(Time.of_ns far) 10;
  Event_queue.add q ~time:(Time.of_ns 5) 1;
  Event_queue.add q ~time:(Time.of_ns far) 11;
  Event_queue.add q ~time:(Time.of_ns (far + 1)) 12;
  Event_queue.add q ~time:(Time.of_ns 6) 2;
  Alcotest.(check (list (pair int int)))
    "near events first, far events in insertion order"
    [ (5, 1); (6, 2); (far, 10); (far, 11); (far + 1, 12) ]
    (drain_queue q)

let queue_monotone_contract () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:(Time.of_ns 1000) ();
  ignore (Event_queue.pop_min q);
  Alcotest.check_raises "below-horizon add refused"
    (Invalid_argument "Timer_wheel.add: time precedes the last popped time")
    (fun () -> Event_queue.add q ~time:(Time.of_ns 10) ())

let queue_pop_sorted_prop =
  prop "event queue pops in nondecreasing time order"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.add q ~time:(Time.of_ns t) t) times;
      let rec check prev = function
        | [] -> true
        | (t, _) :: rest -> t >= prev && check t rest
      in
      check (-1) (drain_queue q))

(* The full determinism contract: pop order is exactly the stable sort
   of the inserted events by time — ties resolved by insertion order. *)
let queue_stable_sort_prop =
  prop "pop order equals stable sort by (time, insertion seq)"
    QCheck2.Gen.(list_size (int_range 0 300) (int_range 0 20))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.add q ~time:(Time.of_ns t) (t, i)) times;
      let expected =
        List.stable_sort
          (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.mapi (fun i t -> (t, i)) times)
      in
      List.map snd (drain_queue q) = expected)

(* Interleaved add/pop against a sorted-list reference model, on the
   backend that accepts arbitrary-order inserts: whatever the heap's
   internal layout after arbitrary interleavings, it must keep serving
   the (time, seq) minimum. *)
let heap_interleaved_model_prop =
  prop "binary heap: interleaved add/pop matches a reference model"
    QCheck2.Gen.(
      list_size (int_range 0 300)
        (oneof [ map (fun t -> `Add t) (int_range 0 50); return `Pop ]))
    (fun ops ->
      let q = Binary_heap.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Add t ->
              Binary_heap.add q ~time:(Time.of_ns t) (t, !seq);
              model :=
                List.merge
                  (fun (t1, s1) (t2, s2) -> compare (t1, s1) (t2, s2))
                  !model
                  [ (t, !seq) ];
              incr seq
          | `Pop -> (
              match (Binary_heap.is_empty q, !model) with
              | true, [] -> ()
              | true, _ :: _ | false, [] -> ok := false
              | false, expected :: rest ->
                  if Binary_heap.min_time q <> Time.of_ns (fst expected) then
                    ok := false;
                  if Binary_heap.pop_min q <> expected then ok := false;
                  model := rest))
        ops;
      !ok
      && List.length !model = Binary_heap.length q
      && (let rec drain acc =
            if Binary_heap.is_empty q then List.rev acc
            else drain (Binary_heap.pop_min q :: acc)
          in
          drain [] = !model))

(* The PR 8 model-equivalence gate: the timer wheel and the binary heap,
   driven by one monotone op stream, must agree on every observation —
   emptiness, length, minimum time and the exact (time, seq) pop order.
   The delta generator mixes same-instant bursts (delta 0), everyday
   short and medium horizons (level 0-2 slots), multi-ms jumps that
   force multi-level cascades, and beyond-span jumps that exercise the
   overflow heap and its re-merge with the wheel. *)
let wheel_vs_heap_prop =
  let delta_gen =
    QCheck2.Gen.(
      frequency
        [
          (3, return 0);
          (4, int_range 1 255);
          (3, int_range 256 65_535);
          (2, int_range 65_536 16_777_215);
          (2, int_range 16_777_216 (1 lsl 33));
          (1, int_range (2 * Timer_wheel.wheel_span) (8 * Timer_wheel.wheel_span));
        ])
  in
  prop "timer wheel pops identically to the binary heap" ~count:300
    QCheck2.Gen.(
      list_size (int_range 0 400)
        (frequency [ (3, map (fun d -> `Add d) delta_gen); (2, return `Pop) ]))
    (fun ops ->
      let wheel = Event_queue.create () in
      let heap = Binary_heap.create () in
      let low = ref 0 in
      (* adds are relative to the last popped time, so both backends see
         a stream the wheel's monotone contract admits *)
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Add d ->
              let t = Time.of_ns (!low + d) in
              Event_queue.add wheel ~time:t !seq;
              Binary_heap.add heap ~time:t !seq;
              incr seq
          | `Pop ->
              if Event_queue.is_empty wheel <> Binary_heap.is_empty heap then
                ok := false
              else if not (Binary_heap.is_empty heap) then begin
                let wt = Time.to_ns (Event_queue.min_time wheel) in
                let ht = Time.to_ns (Binary_heap.min_time heap) in
                if wt <> ht then ok := false;
                if Event_queue.pop_min wheel <> Binary_heap.pop_min heap then
                  ok := false;
                low := ht
              end)
        ops;
      !ok
      && Event_queue.length wheel = Binary_heap.length heap
      && (let rec drain acc =
            if Binary_heap.is_empty heap then List.rev acc
            else begin
              let t = Time.to_ns (Binary_heap.min_time heap) in
              let v = Binary_heap.pop_min heap in
              drain ((t, v) :: acc)
            end
          in
          drain [] = drain_queue wheel))

(* -- Sim ------------------------------------------------------------ *)

let sim_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule_after sim (Time.ms 2) (fun () -> log := 2 :: !log);
  Sim.schedule_after sim (Time.ms 1) (fun () -> log := 1 :: !log);
  Sim.schedule_after sim (Time.ms 3) (fun () -> log := 3 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "in time order" [ 1; 2; 3 ] (List.rev !log)

let sim_clock_advances () =
  let sim = Sim.create () in
  let seen = ref Time.zero in
  Sim.schedule_after sim (Time.ms 7) (fun () -> seen := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "clock at event" (Time.to_ns (Time.add Time.zero (Time.ms 7)))
    (Time.to_ns !seen)

let sim_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  Sim.schedule_after sim (Time.ms 1) (fun () -> fired := 1 :: !fired);
  Sim.schedule_after sim (Time.ms 10) (fun () -> fired := 10 :: !fired);
  Sim.run ~until:(Time.add Time.zero (Time.ms 5)) sim;
  Alcotest.(check (list int)) "only early event" [ 1 ] !fired;
  Alcotest.(check int) "clock parked at limit"
    (Time.to_ns (Time.add Time.zero (Time.ms 5)))
    (Time.to_ns (Sim.now sim));
  Alcotest.(check int) "late event still queued" 1 (Sim.pending sim)

let sim_step () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.schedule_now sim (fun () -> incr count);
  Sim.schedule_now sim (fun () -> incr count);
  Alcotest.(check bool) "step 1" true (Sim.step sim);
  Alcotest.(check int) "one ran" 1 !count;
  Alcotest.(check bool) "step 2" true (Sim.step sim);
  Alcotest.(check bool) "step empty" false (Sim.step sim)

let sim_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule_after sim (Time.ms 1) (fun () ->
      log := "outer" :: !log;
      Sim.schedule_after sim (Time.ms 1) (fun () -> log := "inner" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let sim_seed_exposed () =
  let sim = Sim.create ~seed:99L () in
  Alcotest.(check int64) "seed" 99L (Sim.seed sim)

(* -- Rng ------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  let sa = List.init 16 (fun _ -> Rng.bits64 a) in
  let sb = List.init 16 (fun _ -> Rng.bits64 b) in
  Alcotest.(check (list int64)) "same seed, same stream" sa sb

let rng_seeds_differ () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different" true (Rng.bits64 a <> Rng.bits64 b)

let rng_split_independent () =
  let parent = Rng.create 3L in
  let child = Rng.split parent in
  let child_vals = List.init 8 (fun _ -> Rng.bits64 child) in
  let parent_vals = List.init 8 (fun _ -> Rng.bits64 parent) in
  Alcotest.(check bool) "streams differ" true (child_vals <> parent_vals)

let rng_copy () =
  let a = Rng.create 5L in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Rng.bits64 a) (Rng.bits64 b)

let rng_int_bounds_prop =
  prop "Rng.int stays in [0, n)"
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 1000))
    (fun (n, salt) ->
      let rng = Rng.create (Int64.of_int salt) in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let rng_float_bounds_prop =
  prop "Rng.float stays in [0, 1)" QCheck2.Gen.(int_range 0 100_000) (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.float rng in
      v >= 0. && v < 1.)

let rng_int_in () =
  let rng = Rng.create 11L in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 5 9 in
    if v < 5 || v > 9 then Alcotest.fail "out of range"
  done

let rng_uniformity_rough () =
  let rng = Rng.create 13L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun count ->
      let frac = float_of_int count /. float_of_int n in
      if frac < 0.08 || frac > 0.12 then Alcotest.failf "bucket fraction %g" frac)
    buckets

let rng_exponential_mean () =
  let rng = Rng.create 17L in
  let n = 50_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng ~mean:4.0
  done;
  check_near "mean" ~tolerance:0.15 4.0 (!total /. float_of_int n)

let rng_normal_moments () =
  let rng = Rng.create 19L in
  let n = 50_000 in
  let s = Stats.Summary.create () in
  for _ = 1 to n do
    Stats.Summary.add s (Rng.normal rng ~mu:10. ~sigma:2.)
  done;
  check_near "mu" ~tolerance:0.1 10. (Stats.Summary.mean s);
  check_near "sigma" ~tolerance:0.1 2. (Stats.Summary.stddev s)

let rng_shuffle_permutation_prop =
  prop "shuffle is a permutation" QCheck2.Gen.(list_size (int_range 0 50) int)
    (fun items ->
      let arr = Array.of_list items in
      let rng = Rng.create 23L in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare items)

let rng_pick () =
  let rng = Rng.create 29L in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng arr in
    if not (Array.exists (String.equal v) arr) then Alcotest.fail "pick outside"
  done

let zipf_bounds_and_skew () =
  let rng = Rng.create 31L in
  let dist = Rng.Zipf.create ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Rng.Zipf.sample rng dist in
    if v < 0 || v >= 100 then Alcotest.fail "zipf out of range";
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 beats rank 50" true (counts.(0) > counts.(50))

let zipf_theta_zero_uniform () =
  let rng = Rng.create 37L in
  let dist = Rng.Zipf.create ~n:10 ~theta:0. in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Rng.Zipf.sample rng dist in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun count ->
      let frac = float_of_int count /. float_of_int n in
      if frac < 0.08 || frac > 0.12 then Alcotest.failf "not uniform: %g" frac)
    counts

let rng_span () =
  let rng = Rng.create 41L in
  for _ = 1 to 1000 do
    let s = Rng.span rng (Time.ms 2) in
    let ns = Time.span_to_ns s in
    if ns < 0 || ns >= 2_000_000 then Alcotest.fail "span out of range"
  done

(* -- Process -------------------------------------------------------- *)

let process_runs () =
  let ran = run_in_sim (fun _sim -> true) in
  Alcotest.(check bool) "body executed" true ran

let process_sleep_advances_clock () =
  let elapsed =
    run_in_sim (fun sim ->
        let before = Sim.now sim in
        Process.sleep (Time.ms 3);
        Time.diff (Sim.now sim) before)
  in
  check_span "slept" (Time.ms 3) elapsed

let process_sleeps_accumulate () =
  let elapsed =
    run_in_sim (fun sim ->
        Process.sleep (Time.ms 1);
        Process.sleep (Time.ms 2);
        Process.sleep (Time.us 500);
        Time.diff (Sim.now sim) Time.zero)
  in
  check_span "total" (Time.us 3500) elapsed

let process_self_name () =
  let name =
    with_sim (fun sim ->
        let result = ref "" in
        ignore
          (Process.spawn sim ~name:"alpha" (fun () ->
               result := Process.name (Process.self ())));
        fun () -> !result)
  in
  Alcotest.(check string) "name" "alpha" name

let process_cancel_pending_sleep () =
  let sim = Sim.create () in
  let reached = ref false in
  let h =
    Process.spawn sim ~name:"victim" (fun () ->
        Process.sleep (Time.ms 10);
        reached := true)
  in
  Sim.schedule_after sim (Time.ms 1) (fun () -> Process.cancel h);
  Sim.run sim;
  Alcotest.(check bool) "never resumed past cancel" false !reached;
  Alcotest.(check bool) "dead" false (Process.is_alive h)

let process_cancel_runs_finalisers () =
  let sim = Sim.create () in
  let cleaned = ref false in
  let h =
    Process.spawn sim (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> Process.sleep (Time.ms 10)))
  in
  Sim.schedule_after sim (Time.ms 1) (fun () -> Process.cancel h);
  Sim.run sim;
  Alcotest.(check bool) "finaliser ran on cancellation" true !cleaned

let process_suspend_resume_value () =
  let sim = Sim.create () in
  let got = ref 0 in
  let resume_slot = ref None in
  ignore
    (Process.spawn sim (fun () ->
         got := Process.suspend (fun resume -> resume_slot := Some resume)));
  Sim.schedule_after sim (Time.ms 1) (fun () ->
      match !resume_slot with
      | Some resume -> resume 42
      | None -> Alcotest.fail "not registered");
  Sim.run sim;
  Alcotest.(check int) "value delivered" 42 !got

let process_resume_twice_ignored () =
  let sim = Sim.create () in
  let count = ref 0 in
  let resume_slot = ref None in
  ignore
    (Process.spawn sim (fun () ->
         ignore (Process.suspend (fun resume -> resume_slot := Some resume) : int);
         incr count));
  Sim.schedule_after sim (Time.ms 1) (fun () ->
      let resume = Option.get !resume_slot in
      resume 1;
      resume 2);
  Sim.run sim;
  Alcotest.(check int) "resumed exactly once" 1 !count

let process_yield_interleaves () =
  let sim = Sim.create () in
  let log = ref [] in
  let worker tag () =
    for i = 1 to 2 do
      log := Printf.sprintf "%s%d" tag i :: !log;
      Process.yield ()
    done
  in
  ignore (Process.spawn sim (worker "a"));
  ignore (Process.spawn sim (worker "b"));
  Sim.run sim;
  Alcotest.(check (list string)) "round robin" [ "a1"; "b1"; "a2"; "b2" ]
    (List.rev !log)

let process_blocking_outside_raises () =
  Alcotest.check_raises "sleep outside process" Process.Not_in_process (fun () ->
      Process.sleep (Time.ms 1))

let process_exception_propagates () =
  let sim = Sim.create () in
  ignore (Process.spawn sim (fun () -> failwith "boom"));
  Alcotest.check_raises "escapes run" (Failure "boom") (fun () -> Sim.run sim)

let process_spawn_from_process () =
  let total =
    with_sim (fun sim ->
        let count = ref 0 in
        ignore
          (Process.spawn sim (fun () ->
               for _ = 1 to 3 do
                 ignore (Process.spawn sim (fun () -> incr count))
               done));
        fun () -> !count)
  in
  Alcotest.(check int) "children ran" 3 total

(* -- Resource -------------------------------------------------------- *)

let semaphore_counting () =
  with_sim (fun sim ->
      let sem = Resource.Semaphore.create sim 2 in
      Alcotest.(check int) "initial" 2 (Resource.Semaphore.available sem);
      Alcotest.(check bool) "try 1" true (Resource.Semaphore.try_acquire sem);
      Alcotest.(check bool) "try 2" true (Resource.Semaphore.try_acquire sem);
      Alcotest.(check bool) "exhausted" false (Resource.Semaphore.try_acquire sem);
      Resource.Semaphore.release sem;
      Alcotest.(check int) "released" 1 (Resource.Semaphore.available sem);
      fun () -> ())

let semaphore_blocking_fifo () =
  let sim = Sim.create () in
  let sem = Resource.Semaphore.create sim 1 in
  let order = ref [] in
  let contender tag delay () =
    Process.sleep delay;
    Resource.Semaphore.acquire sem;
    order := tag :: !order;
    Process.sleep (Time.ms 5);
    Resource.Semaphore.release sem
  in
  ignore (Process.spawn sim (contender "a" (Time.ms 0)));
  ignore (Process.spawn sim (contender "b" (Time.ms 1)));
  ignore (Process.spawn sim (contender "c" (Time.ms 2)));
  Sim.run sim;
  Alcotest.(check (list string)) "FIFO grant order" [ "a"; "b"; "c" ]
    (List.rev !order)

let semaphore_waiting_count () =
  let sim = Sim.create () in
  let sem = Resource.Semaphore.create sim 1 in
  ignore
    (Process.spawn sim (fun () ->
         Resource.Semaphore.acquire sem;
         Process.sleep (Time.ms 10);
         Resource.Semaphore.release sem));
  ignore (Process.spawn sim (fun () -> Resource.Semaphore.acquire sem));
  Sim.schedule_after sim (Time.ms 5) (fun () ->
      Alcotest.(check int) "one waiter" 1 (Resource.Semaphore.waiting sem));
  Sim.run sim

let mutex_exclusion () =
  let sim = Sim.create () in
  let mutex = Resource.Mutex.create sim in
  let inside = ref 0 and max_inside = ref 0 in
  let worker () =
    Resource.Mutex.with_lock mutex (fun () ->
        incr inside;
        max_inside := max !max_inside !inside;
        Process.sleep (Time.ms 1);
        decr inside)
  in
  for _ = 1 to 4 do
    ignore (Process.spawn sim worker)
  done;
  Sim.run sim;
  Alcotest.(check int) "never two holders" 1 !max_inside

let mutex_releases_on_exception () =
  let sim = Sim.create () in
  let mutex = Resource.Mutex.create sim in
  let second_ran = ref false in
  ignore
    (Process.spawn sim (fun () ->
         try Resource.Mutex.with_lock mutex (fun () -> failwith "inner")
         with Failure _ -> ()));
  ignore
    (Process.spawn sim (fun () ->
         Resource.Mutex.with_lock mutex (fun () -> second_ran := true)));
  Sim.run sim;
  Alcotest.(check bool) "lock recovered after exception" true !second_ran

let condition_signal_wakes_one () =
  let sim = Sim.create () in
  let cond = Resource.Condition.create sim in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Process.spawn sim (fun () ->
           Resource.Condition.wait cond;
           incr woken))
  done;
  Sim.schedule_after sim (Time.ms 1) (fun () -> Resource.Condition.signal cond);
  Sim.schedule_after sim (Time.ms 2) (fun () ->
      Alcotest.(check int) "exactly one" 1 !woken;
      Alcotest.(check int) "two still waiting" 2 (Resource.Condition.waiting cond));
  Sim.run sim

let condition_broadcast_wakes_all () =
  let sim = Sim.create () in
  let cond = Resource.Condition.create sim in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Process.spawn sim (fun () ->
           Resource.Condition.wait cond;
           incr woken))
  done;
  Sim.schedule_after sim (Time.ms 1) (fun () -> Resource.Condition.broadcast cond);
  Sim.run sim;
  Alcotest.(check int) "all woken" 3 !woken

let condition_rewait_not_double_woken () =
  let sim = Sim.create () in
  let cond = Resource.Condition.create sim in
  let wakes = ref 0 in
  ignore
    (Process.spawn sim (fun () ->
         Resource.Condition.wait cond;
         incr wakes;
         (* Re-arm during the broadcast: must not fire again from the
            same broadcast. *)
         Resource.Condition.wait cond;
         incr wakes));
  Sim.schedule_after sim (Time.ms 1) (fun () -> Resource.Condition.broadcast cond);
  Sim.run sim;
  Alcotest.(check int) "woken once" 1 !wakes

(* -- Channel -------------------------------------------------------- *)

let channel_send_then_recv () =
  let got =
    run_in_sim (fun sim ->
        let ch = Channel.create sim in
        Channel.send ch 7;
        Channel.recv ch)
  in
  Alcotest.(check int) "value" 7 got

let channel_recv_blocks_until_send () =
  let sim = Sim.create () in
  let got = ref 0 and when_got = ref Time.zero in
  let ch = Channel.create sim in
  ignore
    (Process.spawn sim (fun () ->
         got := Channel.recv ch;
         when_got := Sim.now sim));
  Sim.schedule_after sim (Time.ms 4) (fun () -> Channel.send ch 9);
  Sim.run sim;
  Alcotest.(check int) "value" 9 !got;
  check_span "blocked until send" (Time.ms 4) (Time.diff !when_got Time.zero)

let channel_fifo () =
  let order =
    run_in_sim (fun sim ->
        let ch = Channel.create sim in
        List.iter (Channel.send ch) [ 1; 2; 3 ];
        let first = Channel.recv ch in
        let second = Channel.recv ch in
        let third = Channel.recv ch in
        [ first; second; third ])
  in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] order

let channel_recv_opt_and_length () =
  let sim = Sim.create () in
  let ch = Channel.create sim in
  Alcotest.(check (option int)) "empty" None (Channel.recv_opt ch);
  Channel.send ch 1;
  Channel.send ch 2;
  Alcotest.(check int) "length" 2 (Channel.length ch);
  Alcotest.(check (option int)) "first" (Some 1) (Channel.recv_opt ch)

(* -- Stats ----------------------------------------------------------- *)

let summary_known_values () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.Summary.count s);
  check_near "mean" 5.0 (Stats.Summary.mean s);
  check_near "variance" ~tolerance:1e-9 4.571428571428571 (Stats.Summary.variance s);
  check_near "min" 2.0 (Stats.Summary.min s);
  check_near "max" 9.0 (Stats.Summary.max s)

let summary_empty () =
  let s = Stats.Summary.create () in
  check_near "mean of empty" 0. (Stats.Summary.mean s);
  Alcotest.(check bool) "min nan" true (Float.is_nan (Stats.Summary.min s))

let sample_percentiles () =
  let s = Stats.Sample.create () in
  for i = 1 to 100 do
    Stats.Sample.add s (float_of_int i)
  done;
  check_near "p0" 1.0 (Stats.Sample.percentile s 0.);
  check_near "p100" 100.0 (Stats.Sample.percentile s 100.);
  check_near "median" 50.5 (Stats.Sample.median s);
  check_near "p25" 25.75 (Stats.Sample.percentile s 25.)

let sample_interpolation () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 10.; 20. ];
  check_near "p50 interpolates" 15.0 (Stats.Sample.percentile s 50.)

let sample_growth_and_sort () =
  let s = Stats.Sample.create () in
  for i = 1000 downto 1 do
    Stats.Sample.add s (float_of_int i)
  done;
  let arr = Stats.Sample.to_array s in
  Alcotest.(check int) "size" 1000 (Array.length arr);
  check_near "sorted first" 1.0 arr.(0);
  check_near "sorted last" 1000.0 arr.(999)

let sample_empty_nan () =
  let s = Stats.Sample.create () in
  Alcotest.(check bool) "nan" true (Float.is_nan (Stats.Sample.percentile s 50.))

(* Welford's streaming moments against the direct two-pass formulas. *)
let summary_matches_direct_prop =
  prop "summary mean/stddev/min/max match direct computation"
    QCheck2.Gen.(list_size (int_range 1 300) (float_range (-1e6) 1e6))
    (fun values ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) values;
      let n = List.length values in
      let mean = List.fold_left ( +. ) 0. values /. float_of_int n in
      let var =
        if n < 2 then 0.
        else
          List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. values
          /. float_of_int (n - 1)
      in
      let scale = Float.max 1. (Float.abs mean) in
      near ~tolerance:(1e-9 *. scale) mean (Stats.Summary.mean s)
      && near ~tolerance:(1e-6 *. Float.max 1. var) var (Stats.Summary.variance s)
      && near (sqrt var) ~tolerance:(1e-6 *. Float.max 1. (sqrt var))
           (Stats.Summary.stddev s)
      && Stats.Summary.min s = List.fold_left Float.min infinity values
      && Stats.Summary.max s = List.fold_left Float.max neg_infinity values
      && Stats.Summary.count s = n)

(* The exact-percentile contract, against an independent sort + linear
   interpolation oracle. *)
let percentile_oracle values p =
  let arr = Array.of_list values in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  let frac = rank -. float_of_int lo in
  (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)

let sample_percentile_oracle_prop =
  prop "sample percentiles match a sort-based oracle"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 400) (float_range (-1e3) 1e3))
        (float_range 0. 100.))
    (fun (values, p) ->
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) values;
      let expected = percentile_oracle values p in
      near ~tolerance:(1e-9 *. Float.max 1. (Float.abs expected)) expected
        (Stats.Sample.percentile s p))

(* The collector starts with 256 slots; exercise sizes that straddle the
   growth boundary so a resize bug (dropped slot, stale tail) shows up. *)
let sample_growth_boundary_prop =
  prop "sample survives the 256-slot growth boundary"
    QCheck2.Gen.(int_range 254 515)
    (fun n ->
      let s = Stats.Sample.create () in
      for i = n downto 1 do
        Stats.Sample.add s (float_of_int i)
      done;
      let arr = Stats.Sample.to_array s in
      Array.length arr = n
      && arr.(0) = 1.
      && arr.(n - 1) = float_of_int n
      && Stats.Sample.median s = percentile_oracle (Array.to_list arr) 50.)

(* Percentile queries sort in place and flip a [sorted] flag; adds after
   a query must re-invalidate it or later queries read a stale order. *)
let sample_add_after_query_prop =
  prop "adds after a percentile query are not lost to the sort cache"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 50) (float_range 0. 100.))
        (list_size (int_range 1 50) (float_range 0. 100.)))
    (fun (first, second) ->
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) first;
      let _ = Stats.Sample.percentile s 50. in
      List.iter (Stats.Sample.add s) second;
      let all = first @ second in
      Stats.Sample.count s = List.length all
      && near
           (percentile_oracle all 75.)
           ~tolerance:1e-9
           (Stats.Sample.percentile s 75.)
      && near
           (List.fold_left ( +. ) 0. all /. float_of_int (List.length all))
           ~tolerance:1e-9 (Stats.Sample.mean s))

let histogram_quantiles () =
  let h = Stats.Histogram.create () in
  for _ = 1 to 90 do
    Stats.Histogram.add h 100.
  done;
  for _ = 1 to 10 do
    Stats.Histogram.add h 10_000.
  done;
  Alcotest.(check int) "count" 100 (Stats.Histogram.count h);
  let p50 = Stats.Histogram.quantile h 0.5 in
  let p99 = Stats.Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p50 near 100us" true (p50 >= 90. && p50 <= 130.);
  Alcotest.(check bool) "p99 near 10ms" true (p99 >= 9_000. && p99 <= 13_000.)

let histogram_quantile_monotone_prop =
  prop "histogram quantiles are monotone"
    QCheck2.Gen.(list_size (int_range 1 100) (float_range 0.5 1e6))
    (fun values ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) values;
      Stats.Histogram.quantile h 0.25 <= Stats.Histogram.quantile h 0.75)

let histogram_buckets_sum () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 0.5; 3.; 3.; 900.; 1e6 ];
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Stats.Histogram.buckets h) in
  Alcotest.(check int) "buckets account for all" 5 total

let counter_ops () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Stats.Counter.get c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.get c)

let rate_per_sec () =
  check_near "rate" 500. (Stats.rate_per_sec 1000 (Time.sec 2));
  check_near "zero duration" 0. (Stats.rate_per_sec 1000 Time.zero_span)

(* -- Trace ----------------------------------------------------------- *)

let trace_collector () =
  let sim = Sim.create () in
  let trace = Trace.collector () in
  Trace.emit trace sim ~tag:"io" "wrote %d sectors" 8;
  Trace.emit trace sim ~tag:"commit" "txid=%d" 3;
  Alcotest.(check int) "count" 2 (Trace.count trace);
  match Trace.records trace with
  | [ first; second ] ->
      Alcotest.(check string) "tag" "io" first.Trace.tag;
      Alcotest.(check string) "message" "wrote 8 sectors" first.Trace.message;
      Alcotest.(check string) "second" "txid=3" second.Trace.message
  | records -> Alcotest.failf "expected 2 records, got %d" (List.length records)

let trace_capacity_eviction () =
  let sim = Sim.create () in
  let trace = Trace.collector ~capacity:3 () in
  for i = 1 to 5 do
    Trace.emit trace sim ~tag:"t" "%d" i
  done;
  Alcotest.(check int) "emitted total" 5 (Trace.count trace);
  Alcotest.(check (list string)) "keeps newest" [ "3"; "4"; "5" ]
    (List.map (fun r -> r.Trace.message) (Trace.records trace))

let trace_null_discards () =
  let sim = Sim.create () in
  Trace.emit Trace.null sim ~tag:"x" "ignored";
  Alcotest.(check (list reject)) "no records" []
    (List.map ignore (Trace.records Trace.null))

let suites =
  [
    ( "desim.time",
      [
        case "units" time_units;
        case "arithmetic" time_arithmetic;
        case "float conversions" time_float_conversions;
        case "comparisons" time_compare;
        case "pretty printing" time_pp;
      ] );
    ( "desim.event_queue",
      [
        case "pops in time order" queue_ordering;
        case "same-time events are FIFO" queue_fifo_same_time;
        case "peek and length" queue_peek_and_length;
        case "deprecated conveniences still function"
          queue_deprecated_conveniences;
        case "growth beyond initial capacity" queue_growth;
        case "far-future events via overflow" queue_far_future_overflow;
        case "monotone-add contract enforced" queue_monotone_contract;
        queue_pop_sorted_prop;
        queue_stable_sort_prop;
        heap_interleaved_model_prop;
        wheel_vs_heap_prop;
      ] );
    ( "desim.sim",
      [
        case "events run in schedule order" sim_schedule_order;
        case "clock advances to event time" sim_clock_advances;
        case "run ~until stops and parks clock" sim_run_until;
        case "single stepping" sim_step;
        case "nested scheduling" sim_nested_scheduling;
        case "seed exposed" sim_seed_exposed;
      ] );
    ( "desim.rng",
      [
        case "deterministic from seed" rng_deterministic;
        case "different seeds differ" rng_seeds_differ;
        case "split gives independent stream" rng_split_independent;
        case "copy preserves state" rng_copy;
        rng_int_bounds_prop;
        rng_float_bounds_prop;
        case "int_in inclusive bounds" rng_int_in;
        case "int is roughly uniform" rng_uniformity_rough;
        case "exponential has requested mean" rng_exponential_mean;
        case "normal has requested moments" rng_normal_moments;
        rng_shuffle_permutation_prop;
        case "pick stays in array" rng_pick;
        case "zipf bounds and skew" zipf_bounds_and_skew;
        case "zipf theta=0 is uniform" zipf_theta_zero_uniform;
        case "span in range" rng_span;
      ] );
    ( "desim.process",
      [
        case "spawned body runs" process_runs;
        case "sleep advances the clock" process_sleep_advances_clock;
        case "sleeps accumulate" process_sleeps_accumulate;
        case "self and name" process_self_name;
        case "cancel kills at next resume" process_cancel_pending_sleep;
        case "cancel runs finalisers" process_cancel_runs_finalisers;
        case "suspend delivers resumed value" process_suspend_resume_value;
        case "double resume is ignored" process_resume_twice_ignored;
        case "yield interleaves fairly" process_yield_interleaves;
        case "blocking outside a process raises" process_blocking_outside_raises;
        case "exceptions escape the run loop" process_exception_propagates;
        case "processes can spawn processes" process_spawn_from_process;
      ] );
    ( "desim.resource",
      [
        case "semaphore counts permits" semaphore_counting;
        case "semaphore blocks and wakes FIFO" semaphore_blocking_fifo;
        case "semaphore waiting count" semaphore_waiting_count;
        case "mutex provides exclusion" mutex_exclusion;
        case "mutex releases on exception" mutex_releases_on_exception;
        case "condition signal wakes one" condition_signal_wakes_one;
        case "condition broadcast wakes all" condition_broadcast_wakes_all;
        case "re-wait during broadcast not double-woken"
          condition_rewait_not_double_woken;
      ] );
    ( "desim.channel",
      [
        case "send then recv" channel_send_then_recv;
        case "recv blocks until send" channel_recv_blocks_until_send;
        case "fifo ordering" channel_fifo;
        case "recv_opt and length" channel_recv_opt_and_length;
      ] );
    ( "desim.stats",
      [
        case "summary on known data" summary_known_values;
        case "summary when empty" summary_empty;
        case "sample percentiles" sample_percentiles;
        case "sample interpolation" sample_interpolation;
        case "sample growth and sorting" sample_growth_and_sort;
        case "sample empty gives nan" sample_empty_nan;
        summary_matches_direct_prop;
        sample_percentile_oracle_prop;
        sample_growth_boundary_prop;
        sample_add_after_query_prop;
        case "histogram quantiles" histogram_quantiles;
        histogram_quantile_monotone_prop;
        case "histogram buckets sum to count" histogram_buckets_sum;
        case "counter" counter_ops;
        case "rate_per_sec" rate_per_sec;
      ] );
    ( "desim.trace",
      [
        case "collector records" trace_collector;
        case "capacity eviction" trace_capacity_eviction;
        case "null discards" trace_null_discards;
      ] );
  ]

(* -- Latch (appended) ----------------------------------------------------------- *)

let latch_blocks_until_zero () =
  let sim = Sim.create () in
  let latch = Resource.Latch.create sim 3 in
  let released_at = ref None in
  ignore
    (Process.spawn sim (fun () ->
         Resource.Latch.wait latch;
         released_at := Some (Sim.now sim)));
  for i = 1 to 3 do
    Sim.schedule_after sim (Time.ms i) (fun () -> Resource.Latch.count_down latch)
  done;
  Sim.run sim;
  match !released_at with
  | Some at -> check_span "released at the third count-down" (Time.ms 3) (Time.diff at Time.zero)
  | None -> Alcotest.fail "never released"

let latch_wait_after_zero_is_immediate () =
  let elapsed =
    run_in_sim (fun sim ->
        let latch = Resource.Latch.create sim 1 in
        Resource.Latch.count_down latch;
        let before = Sim.now sim in
        Resource.Latch.wait latch;
        Time.diff (Sim.now sim) before)
  in
  check_span "no wait" Time.zero_span elapsed

let latch_multiple_waiters () =
  let sim = Sim.create () in
  let latch = Resource.Latch.create sim 1 in
  let woken = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Process.spawn sim (fun () ->
           Resource.Latch.wait latch;
           incr woken))
  done;
  Sim.schedule_after sim (Time.ms 1) (fun () -> Resource.Latch.count_down latch);
  Sim.run sim;
  Alcotest.(check int) "all released" 4 !woken

let latch_pending () =
  let sim = Sim.create () in
  let latch = Resource.Latch.create sim 2 in
  Alcotest.(check int) "initial" 2 (Resource.Latch.pending latch);
  Resource.Latch.count_down latch;
  Alcotest.(check int) "after one" 1 (Resource.Latch.pending latch)

let latch_suite =
  ( "desim.latch",
    [
      case "blocks until the count reaches zero" latch_blocks_until_zero;
      case "wait after zero returns immediately" latch_wait_after_zero_is_immediate;
      case "releases every waiter" latch_multiple_waiters;
      case "pending count" latch_pending;
    ] )

let suites = suites @ [ latch_suite ]
