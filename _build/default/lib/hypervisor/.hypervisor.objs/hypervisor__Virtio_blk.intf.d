lib/hypervisor/virtio_blk.mli: Desim Domain Ipc Storage
