(** Durable-write journal for the crash-surface sweep.

    One reference run of a scenario, executed with recording enabled,
    appends every durable-media mutation (device transfer start and
    completion), every trusted-buffer push/pop, every virtio write
    submission and every commit acknowledgement — each stamped with the
    executed-event index and clock at the instant it happened. The
    crash-surface sweep then reconstructs the post-crash state at any
    event boundary by replaying these deltas incrementally, instead of
    re-executing the whole simulation per crash point.

    Appends store into flat preallocated parallel arrays (payload bytes
    in one shared arena), so the hot path allocates nothing on the minor
    heap; arrays grow by doubling. *)

type t

type kind = Write_start | Write_complete | Push | Pop | Submit | Ack

type endpoint = {
  ep_model : string;
  ep_is_port : bool;
  ep_sector_size : int;
  ep_capacity_sectors : int;
  ep_rng : Rng.t option;
      (** devices only: a pristine copy of the tear rng taken at
          creation, from which reconstruction replays torn-write draws *)
}

val create : unit -> t

(** {2 Ambient recording}

    Devices and ports consult {!recording} at creation time and keep the
    journal handle (plus their registered endpoint id) if one is active.
    Recording is enabled only around the serial enumeration run of a
    journal sweep and cleared before any worker domain is spawned. *)

val recording : unit -> t option
(** The ambient journal, if one is installed. *)

val start_recording : t -> unit
val stop_recording : unit -> unit

(** {2 Endpoint registry} *)

val register_device :
  t -> model:string -> sector_size:int -> capacity_sectors:int -> rng:Rng.t -> int
(** Register a physical device; returns its endpoint id for the append
    calls below. *)

val register_port : t -> model:string -> int
(** Register a software port (a virtio frontend); returns its endpoint
    id. *)

val endpoint : t -> int -> endpoint

(** {2 Appends} — stamped with [Sim.events_executed] / [Sim.now]. *)

val write_start : t -> Sim.t -> device:int -> lba:int -> sectors:int -> unit
(** The device began transferring to media (a tear at power loss now
    persists a prefix). *)

val write_complete :
  t -> Sim.t -> device:int -> lba:int -> sectors:int -> data:string -> unit
(** The device persisted [data] at [lba]. *)

val push : t -> Sim.t -> device:int -> lba:int -> data:string -> unit
(** The trusted logger accepted [data] into its buffer. *)

val pop : t -> Sim.t -> device:int -> lba:int -> bytes:int -> unit
(** The drainer popped a coalesced batch and is writing it out. *)

val submit : t -> Sim.t -> port:int -> lba:int -> sectors:int -> unit
(** A virtio write request crossed into the backend queue (the instant
    from which it survives a guest crash). *)

val ack : t -> Sim.t -> txid:int -> writes:string -> unit
(** A commit with non-empty writes was acknowledged to a client;
    [writes] is the harness's encoding of its key/value updates. *)

(** {2 Read side} *)

val length : t -> int
(** Number of journalled records. *)

val kind : t -> int -> kind

val index : t -> int -> int
(** The [Sim.events_executed] stamp of record [i]. *)

val time_ns : t -> int -> int
(** The clock stamp of record [i], in nanoseconds. *)

val a : t -> int -> int
(** Endpoint id, or txid for [Ack]. *)

val b : t -> int -> int
(** LBA. *)

val c : t -> int -> int
(** Sectors or bytes, per the record kind. *)

val payload : t -> int -> string
(** The stored payload; raises [Invalid_argument] for kinds without
    one. *)
