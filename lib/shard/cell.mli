(** Self-contained tier cells: one simulated machine running one
    {!Tier} to completion, then auditing every tenant.

    This is the unit the scale benches fan out over a worker pool
    ([Harness.Parallel] at the bench layer): each cell owns its
    simulation, so cells are independent and a parallel sweep is
    bit-identical to a serial one. A cell builds VMM + power domain +
    tier over fresh 7200 rpm disks, runs until the arrival horizon and
    every queue drains, optionally injects a mid-run power cut and/or a
    shard split, quiesces (when power survived) and audits. *)

type fault = {
  f_cut_at : Desim.Time.span option;
      (** mains power cut at this simulated time *)
  f_split_at : (Desim.Time.span * int * int) option;
      (** rebalance: at the given time, split shard [source] into
          [target] — [(at, source, target)] *)
}

val no_fault : fault

type config = {
  c_name : string;
  c_tier : Tier.config;
  c_seed : int64;
  c_fault : fault;
}

type result = {
  r_name : string;
  r_seed : int64;
  r_submitted : int;
  r_acked : int;
  r_stats : Tier.stats;
  r_audit : Recover.tenant_audit;
  r_buckets_moved : int;  (** 0 unless the fault schedule split a shard *)
  r_events : int;  (** simulation events executed — the determinism witness *)
  r_clock_ns : int;  (** final simulated clock *)
}

val run : config -> result
(** Build, run to quiescence, audit. Deterministic: the result is a
    pure function of the config (fan it out over any number of jobs
    and the records compare equal). *)

val digest : result -> string
(** A compact fingerprint of every deterministic field — what the
    jobs=1 ≡ jobs=N identity gate compares. *)
