lib/power/psu.ml: Desim
