lib/desim/rng.mli: Time
