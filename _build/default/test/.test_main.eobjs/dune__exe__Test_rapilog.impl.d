test/test_rapilog.ml: Alcotest Char Dbms Desim Harness Hashtbl Hypervisor List Option Power Printf Process QCheck2 Rapilog Sim Storage String Testu Time Trace
