(** Power-supply residual-energy model.

    RapiLog's tolerance of electrical power cuts rests on the observation
    that a PSU's output capacitors (plus, in the paper's setup, the rest
    of the supply chain) keep the machine running for a short hold-up
    window after mains power is cut. The trusted logger uses that window
    to drain its buffer to disk. We model the window as stored energy
    divided by system draw, so experiments can sweep either. *)

type config = {
  energy_joules : float;  (** usable stored energy at the moment of the cut *)
  system_draw_watts : float;  (** draw while flushing (CPU + disk) *)
}

val default : config
(** 30 J at 100 W: a 300 ms hold-up window, of the order the paper's
    measurements support for a lightly loaded server. *)

val of_window : Desim.Time.span -> config
(** A config whose hold-up window is exactly the given span. *)

val window : config -> Desim.Time.span
(** Hold-up window: [energy / draw]. *)

val flushable_bytes : config -> bandwidth:float -> int
(** Upper bound on bytes a drain at [bandwidth] (bytes/s) can persist
    within the window. *)
