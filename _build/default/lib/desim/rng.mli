(** Deterministic pseudo-random number generation.

    The core generator is xoshiro256++ seeded via splitmix64, which gives
    high-quality streams from any 64-bit seed and supports cheap stream
    splitting. All simulation randomness must flow from one of these so that
    an experiment is reproducible bit-for-bit from its seed. *)

type t

val create : int64 -> t
(** [create seed] builds a generator; any seed (including 0) is fine. *)

val split : t -> t
(** [split t] derives an independent stream and advances [t]. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]; requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive; requires
    [lo <= hi]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample (Box–Muller). *)

val span : t -> Time.span -> Time.span
(** [span t d] is a uniform duration in [\[0, d)]; requires [d > 0]. *)

val exponential_span : t -> mean:Time.span -> Time.span

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

module Zipf : sig
  (** Zipf-distributed integers over [\[0, n)], used for skewed key
      popularity in workloads. Sampling is by inverse transform over a
      precomputed CDF: O(n) setup, O(log n) per sample. *)

  type dist

  val create : n:int -> theta:float -> dist
  (** Requires [n > 0] and [theta >= 0.]; [theta = 0.] is uniform. *)

  val sample : t -> dist -> int
end
