(* The machine-readable performance harness: the trajectory gate that
   later PRs must not regress.

   Measures, with fixed seeds:
   - the desim core: event-queue add/pop throughput and the Sim.step
     hot path's allocation rate (Gc.minor_words per event — the
     acceptance bar is zero);
   - the PR 8 engine refactor head-to-head: the timer-wheel event
     queue against the binary heap it replaced, both driven by one
     deterministic mixed-horizon op stream — the wheel must match the
     heap's pop order exactly (fingerprint) and must not be slower;
     and the fork-based crash sweep against the journal engine over
     the full single-node surface — bit-identical verdicts (media
     digests on) and no slower;
   - the commit-path hot paths this PR fights over: the NVMe submission
     arithmetic (service time + zone accounting), the WAL stream append
     (one record encoded straight into a warm stream buffer), and the
     adaptive group-commit decision — all gated allocation-free;
   - the commit-path grid: throughput and p50/p99 commit latency across
     device (hdd/ssd/nvme) × WAL stream count × commit policy × client
     count, with the adaptive policy required to beat fixed batching on
     p99 at every nvme cell;
   - the journal crash sweep over the new configurations: a
     multi-stream rapilog config and an nvme rapilog config must report
     zero contract breaks and zero acknowledged commits lost at every
     explored boundary;
   - the experiment sweep: wall-clock for a fixed scenario grid
     (including nvme, multi-stream and adaptive-policy cells) at jobs=1
     and jobs=N, asserting the parallel results are bit-identical to
     serial;
   - the observability layer: the same scenarios with and without the
     metrics registry installed, asserting the steady results are
     bit-identical (instrumentation only reads the clock) and emitting
     the per-stage commit-latency histograms as the "metrics" section.

   Writes a JSON report (default BENCH_PR8.json). With --check it also
   self-validates — the gates above plus JSON well-formedness — so
   `dune runtest` keeps this harness honest.

   Usage: perf.exe [--quick] [--check] [--jobs N] [--output PATH] *)

open Desim
open Harness
open Harness.Json

(* ---- desim microbenchmarks ----------------------------------------- *)

(* Raw queue churn: keep a standing population and cycle add+pop. *)
let bench_event_queue ~events =
  let q = Event_queue.create () in
  for i = 0 to 1023 do
    Event_queue.add q ~time:(Time.of_ns i) i
  done;
  (* warm the arrays past any growth before measuring *)
  Gc.minor ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to events - 1 do
    Event_queue.add q ~time:(Time.of_ns (1024 + i)) i;
    ignore (Event_queue.pop_min q)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  ( float_of_int events /. elapsed,
    words /. float_of_int events,
    elapsed )

(* ---- heap vs wheel head-to-head (PR 8) ------------------------------ *)

(* Both queue backends driven by one deterministic op stream. The
   stream is monotone — every add lands at or after the last popped
   instant, the timer wheel's contract, which {!Sim.schedule_at}
   guarantees in production — and its deltas mix every horizon the
   wheel distinguishes: same-instant bursts (slot FIFO), each of the
   four wheel levels (cascade depth 0-3), and far-future times past
   the wheel span (the overflow heap). The popped (time, payload)
   stream folds into a fingerprint; the two backends must produce the
   same one, or the wheel broke the (time, seq) order. *)

module type QUEUE = sig
  type 'a t

  val create : unit -> 'a t
  val add : 'a t -> time:Time.t -> 'a -> unit
  val min_time : 'a t -> Time.t
  val pop_min : 'a t -> 'a
end

let mix_lcg s = ((s * 2685821657736338717) + 1442695040888963407) land max_int

(* Horizon mix, driven off the upper LCG bits: 30% same-instant, 25%
   level 0, 20% level 1, 15% level 2, 8% level 3, 2% overflow. *)
let mix_delta s =
  let r = (s lsr 33) mod 100 in
  let v = s lsr 13 in
  if r < 30 then 0
  else if r < 55 then 1 + (v mod 0xFF)
  else if r < 75 then 0x100 + (v mod 0xFF00)
  else if r < 90 then 0x1_0000 + (v mod 0xFF_0000)
  else if r < 98 then 0x100_0000 + (v mod 0xFF00_0000)
  else Timer_wheel.wheel_span * (1 + (v mod 4))

module Queue_mix (Q : QUEUE) = struct
  (* Standing population of 4096, then [events] monotone add+pop pairs
     on the mixed-horizon stream. Returns (pairs/s, minor words per
     pair, order fingerprint). *)
  let run ~events =
    let q = Q.create () in
    let state = ref 0x9E3779B9 in
    let low = ref 0 in
    let fp = ref 0 in
    for i = 0 to 4095 do
      state := mix_lcg !state;
      Q.add q ~time:(Time.of_ns (mix_delta !state)) i
    done;
    Gc.minor ();
    let words0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for i = 0 to events - 1 do
      state := mix_lcg !state;
      Q.add q ~time:(Time.of_ns (!low + mix_delta !state)) i;
      let t = Time.to_ns (Q.min_time q) in
      let v = Q.pop_min q in
      low := t;
      fp := mix_lcg (!fp lxor t lxor (v * 0x1000003))
    done;
    let elapsed = Unix.gettimeofday () -. t0 in
    let words = Gc.minor_words () -. words0 in
    (float_of_int events /. elapsed, words /. float_of_int events, !fp)
end

module Wheel_mix = Queue_mix (Event_queue)
module Heap_mix = Queue_mix (Binary_heap)

(* Throughput comparisons on a shared machine take the best of [n]
   runs — the minimum-noise estimate of each backend's capability. The
   allocation figure and fingerprint come from the last run (they are
   deterministic across runs). *)
let best_of n f =
  let rate = ref 0. and words = ref 0. and fp = ref 0 in
  for _ = 1 to n do
    let r, w, p = f () in
    if r > !rate then rate := r;
    words := w;
    fp := p
  done;
  (!rate, !words, !fp)

let bench_wheel_vs_heap ~quick ~events =
  let n = if quick then 2 else 3 in
  let wheel = best_of n (fun () -> Wheel_mix.run ~events) in
  let heap = best_of n (fun () -> Heap_mix.run ~events) in
  (wheel, heap)

(* ---- fork-based vs journal-based crash sweep (PR 8) ----------------- *)

(* The whole single-node crash surface, reconstructed twice: the
   journal engine pays a from-scratch journal replay per chunk (~8.5
   full folds at 16 chunks), the fork engine folds once and snapshots
   COW forks at chunk boundaries (~2 folds). With media digests on,
   every per-boundary verdict — digest included — must be
   bit-identical; the fork engine must not be slower. *)
let bench_fork_sweep ~quick ~jobs =
  let scenario =
    {
      Scenario.default with
      Scenario.mode = Scenario.Rapilog;
      workload =
        Scenario.Micro
          {
            Workload.Microbench.default_config with
            Workload.Microbench.keys = 64;
            value_bytes = 32;
          };
      clients = 2;
      seed = 99L;
    }
  in
  let config =
    {
      (Crash_surface.default scenario) with
      Crash_surface.window_start = Time.ms 2;
      window_length = Time.ms 2;
      stride = (if quick then 5 else 1);
      tight_window = Time.ms 20;
      tight_buffer_bytes = 64 * 1024;
      media_digests = true;
    }
  in
  let t0 = Unix.gettimeofday () in
  let journal = Crash_surface.sweep_journal ~jobs config in
  let journal_s = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let fork = Crash_surface.sweep_fork ~jobs config in
  let fork_s = Unix.gettimeofday () -. t1 in
  (config.Crash_surface.stride, journal, journal_s, fork, fork_s)

(* The Sim.step hot path: one self-rescheduling closure, so every
   simulated event exercises schedule_after + step + pop with no
   per-event closure construction. The minor-words delta across the run
   is the per-event allocation of the engine itself. *)
let bench_sim_step ~events =
  let sim = Sim.create ~seed:7L () in
  let remaining = ref events in
  let rec tick () =
    if !remaining > 0 then begin
      decr remaining;
      Sim.schedule_after sim (Time.ns 100) tick
    end
  in
  Sim.schedule_now sim tick;
  (* run the first few events, then measure the steady state *)
  for _ = 1 to 8 do
    ignore (Sim.step sim)
  done;
  Gc.minor ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Sim.run sim;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  let measured = float_of_int (events - 8) in
  (measured /. elapsed, words /. measured, elapsed)

(* The Link hot path: a preallocated self-rescheduling sender, constant
   latency (no rng), zero drop probability (no rng), int payloads in the
   flat ring, the preallocated pump delivering each message. The
   minor-words delta per message is the link's own allocation. *)
let bench_net_link ~events =
  let sim = Sim.create ~seed:9L () in
  let delivered = ref 0 in
  let config =
    {
      Net.Link.latency = Net.Link.Constant (Time.ns 100);
      bandwidth = 0.;
      drop_probability = 0.;
    }
  in
  let link =
    Net.Link.create sim config ~dummy:0 ~deliver:(fun _ -> incr delivered)
  in
  let remaining = ref events in
  let rec tick () =
    if !remaining > 0 then begin
      decr remaining;
      Net.Link.send link 1;
      Sim.schedule_after sim (Time.ns 100) tick
    end
  in
  Sim.schedule_now sim tick;
  (* run the first events to warm the ring past any growth, then measure *)
  for _ = 1 to 64 do
    ignore (Sim.step sim)
  done;
  Gc.minor ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Sim.run sim;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  let measured = float_of_int (events - 33) in
  (measured /. elapsed, words /. measured, elapsed)

(* ---- commit-path microbenchmarks ----------------------------------- *)

(* The NVMe submission hot path: the pure service-time arithmetic every
   request performs plus the per-write zone accounting. Both run on the
   live request path at queue-depth concurrency, so they must not
   allocate. *)
let bench_nvme_submit ~events =
  let config = Storage.Nvme.default in
  let zones = Storage.Nvme.Zones.create config in
  let span = config.Storage.Nvme.capacity_sectors - 16 in
  let sink = ref 0 in
  Gc.minor ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to events - 1 do
    sink := !sink + Storage.Nvme.service_ns config ~sectors:16;
    Storage.Nvme.Zones.note_write zones ~lba:(i * 16 mod span) ~sectors:16
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  ignore (Sys.opaque_identity !sink);
  (float_of_int events /. elapsed, words /. float_of_int events, elapsed)

(* The WAL stream-append hot path: one update record encoded straight
   into a warm stream buffer (the incremental-CRC single-pass encoder —
   no intermediate record buffer). The buffer is recycled the way
   truncation recycles a live stream's, so growth never charges the
   measurement. *)
let bench_log_append ~events =
  let buf = Buffer.create (1 lsl 20) in
  let record =
    Dbms.Log_record.Update
      { txid = 7; key = 42; before = String.make 16 'b'; after = String.make 16 'a' }
  in
  let limit = 1 lsl 19 in
  while Buffer.length buf < limit do
    Dbms.Log_record.encode_into record buf
  done;
  Buffer.clear buf;
  Gc.minor ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to events do
    if Buffer.length buf > limit then Buffer.clear buf;
    Dbms.Log_record.encode_into record buf
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  (float_of_int events /. elapsed, words /. float_of_int events, elapsed)

(* The adaptive group-commit decision: pure integer arithmetic a
   committer runs between a clock read and a sleep, plus the EWMA
   update the WAL folds in after every device write. *)
let bench_commit_policy ~events =
  let policy = Dbms.Commit_policy.Adaptive { target_ns = 100_000; max_batch = 16 } in
  let ewma = ref 0 in
  let sink = ref 0 in
  Gc.minor ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to events - 1 do
    ewma := Dbms.Commit_policy.ewma_update ~prev:!ewma ~obs:(8_000_000 - (i land 0xFFFFF));
    sink :=
      !sink
      + Dbms.Commit_policy.decide policy ~ewma_ns:!ewma ~pending:(i land 7)
          ~waited_ns:(i land 0x3FFFF)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  ignore (Sys.opaque_identity !sink);
  (float_of_int events /. elapsed, words /. float_of_int events, elapsed)

(* ---- shared PR6 axis ------------------------------------------------ *)

let nvme_device = Scenario.Nvme Storage.Nvme.default

let adaptive_policy =
  Dbms.Commit_policy.Adaptive { target_ns = 100_000; max_batch = 16 }

let with_policy config policy =
  {
    config with
    Scenario.profile =
      Dbms.Engine_profile.with_commit_policy config.Scenario.profile policy;
  }

(* ---- sweep wall-clock at jobs=1 vs jobs=N -------------------------- *)

let sweep_grid ~quick =
  let config =
    {
      Scenario.default with
      Scenario.warmup = Time.ms 100;
      duration = (if quick then Time.ms 300 else Time.ms 800);
      seed = 4242L;
    }
  in
  let clients = if quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let modes =
    if quick then
      [
        Scenario.Native_sync; Scenario.Rapilog; Scenario.Rapilog_replicated;
        Scenario.Rapilog_sharded;
      ]
    else Scenario.all_modes
  in
  let classic =
    List.concat_map
      (fun n ->
        List.map (fun mode -> { config with Scenario.mode; clients = n }) modes)
      clients
  in
  (* One representative per new axis, so the parallel-identity gate
     covers the nvme device, multi-stream WAL and adaptive policy. *)
  let axis =
    [
      { config with Scenario.mode = Scenario.Rapilog; device = nvme_device; clients = 4 };
      with_policy
        { config with Scenario.mode = Scenario.Native_sync; device = nvme_device; clients = 4 }
        adaptive_policy;
      { config with Scenario.mode = Scenario.Rapilog; log_streams = 2; clients = 4 };
      {
        config with
        Scenario.mode = Scenario.Rapilog;
        device = nvme_device;
        log_streams = 2;
        clients = 4;
      };
    ]
  in
  classic @ axis

let steady_fingerprint (r : Experiment.steady_result) =
  (* Every scalar the sweep reports; identical records ⇒ identical runs. *)
  Obj
    [
      ("mode", Str (Scenario.mode_name r.Experiment.mode));
      ("clients", Num (float_of_int r.Experiment.clients));
      ("committed", Num (float_of_int r.Experiment.committed_in_window));
      ("throughput", Num r.Experiment.throughput);
      ("p50_us", Num r.Experiment.latency_p50_us);
      ("p99_us", Num r.Experiment.latency_p99_us);
      ("log_writes", Num (float_of_int r.Experiment.physical_log_writes));
      ("wal_forces", Num (float_of_int r.Experiment.wal_forces));
    ]

let bench_sweep ~quick ~jobs ~cores =
  let grid = sweep_grid ~quick in
  let t0 = Unix.gettimeofday () in
  let serial = Experiment.run_steady_batch ~jobs:1 grid in
  let serial_s = Unix.gettimeofday () -. t0 in
  (* Parallel-vs-serial is a real measurement only with real cores; on a
     single-core host it would time domain overhead, so the timing is
     skipped and the identity asserted with the serial result reused. *)
  let parallel, parallel_timing =
    if cores > 1 then begin
      let t1 = Unix.gettimeofday () in
      let parallel = Experiment.run_steady_batch ~jobs grid in
      let parallel_s = Unix.gettimeofday () -. t1 in
      (parallel, Some parallel_s)
    end
    else (Experiment.run_steady_batch ~jobs:4 grid, None)
  in
  let identical = serial = parallel in
  (List.length grid, serial, serial_s, parallel_timing, identical)

(* ---- the commit-path grid ------------------------------------------ *)

(* The headline table of this PR: throughput and p50/p99 commit latency
   across device × WAL stream count × commit policy × client count, in
   native-sync mode so the device's write latency sits on the commit
   path and the policies have something to fight over. Run twice
   (serial, then the worker pool) so the new configurations are covered
   by the parallel-identity gate too. *)
type commit_cell = {
  cc_device : string;
  cc_streams : int;
  cc_policy : Dbms.Commit_policy.t;
  cc_clients : int;
}

let commit_path_cells ~quick =
  let devices =
    if quick then
      [ ("hdd", Scenario.Disk Storage.Hdd.default_7200rpm); ("nvme", nvme_device) ]
    else
      [
        ("hdd", Scenario.Disk Storage.Hdd.default_7200rpm);
        ("ssd", Scenario.Flash Storage.Ssd.default);
        ("nvme", nvme_device);
      ]
  in
  let streams = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let clients = if quick then [ 16 ] else [ 8; 32 ] in
  let policies =
    [ Dbms.Commit_policy.Fixed 1; Dbms.Commit_policy.Fixed 8; adaptive_policy ]
  in
  List.concat_map
    (fun (cc_device, _) ->
      List.concat_map
        (fun cc_streams ->
          List.concat_map
            (fun cc_clients ->
              List.map
                (fun cc_policy -> { cc_device; cc_streams; cc_policy; cc_clients })
                policies)
            clients)
        streams)
    devices
  |> fun cells ->
  let device_of name = List.assoc name devices in
  let config cell =
    with_policy
      {
        Scenario.default with
        Scenario.mode = Scenario.Native_sync;
        device = device_of cell.cc_device;
        log_streams = cell.cc_streams;
        clients = cell.cc_clients;
        warmup = Time.ms 100;
        duration = (if quick then Time.ms 300 else Time.ms 800);
        seed = 4242L;
      }
      cell.cc_policy
  in
  (cells, List.map config cells)

let bench_commit_path ~quick ~jobs =
  let cells, configs = commit_path_cells ~quick in
  let serial = Experiment.run_steady_batch ~jobs:1 configs in
  let parallel = Experiment.run_steady_batch ~jobs configs in
  let identical = serial = parallel in
  (List.combine cells serial, identical)

(* The gate: at every nvme cell, the adaptive policy's p99 must be no
   worse than fixed batching's (same device, streams and clients). On a
   device already at µs latency, holding commits to gather a batch
   cannot pay for itself — the adaptive policy is supposed to know
   that. *)
let commit_path_gate rows ~fail =
  List.iter
    (fun (cell, r) ->
      match cell.cc_policy with
      | Dbms.Commit_policy.Fixed n when n > 1 && cell.cc_device = "nvme" ->
          let adaptive =
            List.find_opt
              (fun (c, _) ->
                c.cc_device = cell.cc_device
                && c.cc_streams = cell.cc_streams
                && c.cc_clients = cell.cc_clients
                && c.cc_policy = adaptive_policy)
              rows
          in
          (match adaptive with
          | None -> fail "commit-path grid has no adaptive row for an nvme cell"
          | Some (_, a) ->
              if a.Experiment.latency_p99_us > r.Experiment.latency_p99_us then
                fail
                  (Printf.sprintf
                     "nvme s=%d c=%d: adaptive p99 %.0fus worse than %s p99 \
                      %.0fus"
                     cell.cc_streams cell.cc_clients a.Experiment.latency_p99_us
                     (Dbms.Commit_policy.to_string cell.cc_policy)
                     r.Experiment.latency_p99_us))
      | _ -> ())
    rows

(* ---- journal crash sweep over the new configurations ---------------- *)

(* The verification half of the latency war: the journal-reconstruction
   sweep over a multi-stream rapilog config and an nvme rapilog config.
   Every explored boundary must keep the always-durable contract — no
   acknowledged commit lost, recovered state exact — or the new commit
   path bought its latency with correctness. *)
let journal_cells ~quick ~jobs =
  let scenario =
    {
      Scenario.default with
      Scenario.mode = Scenario.Rapilog;
      workload =
        Scenario.Micro
          {
            Workload.Microbench.default_config with
            Workload.Microbench.keys = 64;
            value_bytes = 32;
          };
      clients = 2;
      seed = 99L;
    }
  in
  let tiny scenario =
    {
      (Crash_surface.default scenario) with
      Crash_surface.window_start = Time.ms 2;
      window_length = Time.ms 2;
      stride = (if quick then 25 else 5);
      tight_window = Time.ms 20;
      tight_buffer_bytes = 64 * 1024;
    }
  in
  List.map
    (fun (name, sc) -> (name, Crash_surface.sweep_journal ~jobs (tiny sc)))
    [
      ("rapilog-hdd-s2", { scenario with Scenario.log_streams = 2 });
      ("rapilog-nvme", { scenario with Scenario.device = nvme_device });
    ]

(* ---- metrics-on vs metrics-off ------------------------------------- *)

(* The poles of the design space — low and high concurrency in each
   mode, plus the new nvme / multi-stream / adaptive configurations:
   the per-stage breakdowns EXPERIMENTS.md quotes, and the gate that
   instrumentation does not perturb the simulation. *)
let metrics_cells ~quick =
  let base =
    {
      Scenario.default with
      Scenario.warmup = Time.ms 100;
      duration = (if quick then Time.ms 300 else Time.ms 800);
      seed = 4242L;
    }
  in
  [
    ("native-sync/1", { base with Scenario.mode = Scenario.Native_sync; clients = 1 });
    ("native-sync/32", { base with Scenario.mode = Scenario.Native_sync; clients = 32 });
    ("rapilog/1", { base with Scenario.mode = Scenario.Rapilog; clients = 1 });
    ("rapilog/32", { base with Scenario.mode = Scenario.Rapilog; clients = 32 });
    ( "rapilog-replicated/1",
      { base with Scenario.mode = Scenario.Rapilog_replicated; clients = 1 } );
    ( "rapilog-replicated/32",
      { base with Scenario.mode = Scenario.Rapilog_replicated; clients = 32 } );
    ( "rapilog-nvme/16",
      { base with Scenario.mode = Scenario.Rapilog; device = nvme_device; clients = 16 } );
    ( "native-sync-nvme-adaptive/16",
      with_policy
        {
          base with
          Scenario.mode = Scenario.Native_sync;
          device = nvme_device;
          clients = 16;
        }
        adaptive_policy );
    ( "rapilog-s2/16",
      { base with Scenario.mode = Scenario.Rapilog; log_streams = 2; clients = 16 } );
  ]

let bench_metrics ~quick =
  List.map
    (fun (label, config) ->
      let plain = Experiment.run_steady config in
      let instrumented, registry = Experiment.run_steady_metrics config in
      (label, config, plain = instrumented, registry))
    (metrics_cells ~quick)

(* ---- main ----------------------------------------------------------- *)

let usage () =
  print_endline "usage: perf.exe [--quick] [--check] [--jobs N] [--output PATH]";
  exit 2

let () =
  let quick = ref false in
  let check = ref false in
  let jobs = ref (Parallel.default_jobs ()) in
  let output = ref "BENCH_PR8.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--check" :: rest -> check := true; parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | "--output" :: path :: rest -> output := path; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick and jobs = !jobs in
  let micro_events = if quick then 200_000 else 2_000_000 in

  Printf.printf "perf: event-queue microbench (%d events)...\n%!" micro_events;
  let eq_rate, eq_words, _ = bench_event_queue ~events:micro_events in
  Printf.printf "perf: sim-step microbench (%d events)...\n%!" micro_events;
  let step_rate, step_words, _ = bench_sim_step ~events:micro_events in
  Printf.printf "perf: net-link microbench (%d messages)...\n%!" micro_events;
  let link_rate, link_words, _ = bench_net_link ~events:micro_events in
  Printf.printf "perf: nvme-submit microbench (%d writes)...\n%!" micro_events;
  let nvme_rate, nvme_words, _ = bench_nvme_submit ~events:micro_events in
  Printf.printf "perf: log-append microbench (%d records)...\n%!" micro_events;
  let append_rate, append_words, _ = bench_log_append ~events:micro_events in
  Printf.printf "perf: commit-policy microbench (%d decisions)...\n%!" micro_events;
  let policy_rate, policy_words, _ = bench_commit_policy ~events:micro_events in
  Printf.printf "perf: wheel-vs-heap standard mix (%d pairs per run)...\n%!"
    micro_events;
  let ( (wheel_rate, wheel_words, wheel_fp),
        (heap_rate, heap_words, heap_fp) ) =
    bench_wheel_vs_heap ~quick ~events:micro_events
  in
  Printf.printf "perf: scenario sweep at jobs=1 then jobs=%d...\n%!" jobs;
  let cores = Domain.recommended_domain_count () in
  let scenarios, serial_results, serial_s, parallel_timing, identical =
    bench_sweep ~quick ~jobs ~cores
  in
  Printf.printf "perf: commit-path grid (device x streams x policy x clients)...\n%!";
  let commit_rows, commit_identical = bench_commit_path ~quick ~jobs in
  Printf.printf "perf: journal crash sweep over nvme and multi-stream configs...\n%!";
  let journal_results = journal_cells ~quick ~jobs in
  Printf.printf "perf: fork vs journal sweep over the single-node surface...\n%!";
  let sweep_stride, fj_journal, fj_journal_s, fj_fork, fj_fork_s =
    bench_fork_sweep ~quick ~jobs
  in
  let fork_identical = fj_journal = fj_fork in
  Printf.printf "perf: per-stage metrics breakdown (%d cells)...\n%!"
    (List.length (metrics_cells ~quick));
  let metrics_rows = bench_metrics ~quick in
  let metrics_identical =
    List.for_all (fun (_, _, same, _) -> same) metrics_rows
  in
  let speedup_json, speedup_note =
    match parallel_timing with
    | Some parallel_s ->
        let speedup = serial_s /. parallel_s in
        ( [ ("parallel_seconds", Num parallel_s); ("speedup", Num speedup) ],
          Printf.sprintf "jobs=%d %.2fs (%.2fx)" jobs parallel_s speedup )
    | None ->
        ( [
            ("parallel_seconds", Null);
            ("speedup", Null);
            ( "skipped_reason",
              Str "single-core host: parallel timing would measure domain \
                   overhead, not speedup" );
          ],
          "parallel timing skipped (1 core)" )
  in
  let micro_section events_label events rate words =
    Obj
      [
        (events_label, Num (float_of_int events));
        ("events_per_sec", Num rate);
        ("minor_words_per_event", Num words);
      ]
  in

  let report =
    Obj
      [
        ("pr", Num 8.);
        ("harness", Str "perf.exe");
        ("quick", Bool quick);
        ("cores", Num (float_of_int cores));
        ("jobs", Num (float_of_int jobs));
        ("event_queue", micro_section "events" micro_events eq_rate eq_words);
        ( "wheel_vs_heap",
          Obj
            [
              ("pairs", Num (float_of_int micro_events));
              ( "wheel",
                Obj
                  [
                    ("events_per_sec", Num wheel_rate);
                    ("minor_words_per_event", Num wheel_words);
                  ] );
              ( "heap",
                Obj
                  [
                    ("events_per_sec", Num heap_rate);
                    ("minor_words_per_event", Num heap_words);
                  ] );
              ("wheel_over_heap", Num (wheel_rate /. heap_rate));
              ("order_fingerprint_equal", Bool (wheel_fp = heap_fp));
            ] );
        ("sim_step", micro_section "events" micro_events step_rate step_words);
        ("net_link", micro_section "messages" micro_events link_rate link_words);
        ("nvme_submit", micro_section "writes" micro_events nvme_rate nvme_words);
        ("log_append", micro_section "records" micro_events append_rate append_words);
        ( "commit_policy",
          micro_section "decisions" micro_events policy_rate policy_words );
        ( "sweep",
          Obj
            ([
               ("scenarios", Num (float_of_int scenarios));
               ("serial_seconds", Num serial_s);
             ]
            @ speedup_json
            @ [
                ("bit_identical", Bool identical);
                ("results", Arr (List.map steady_fingerprint serial_results));
              ]) );
        ( "commit_path",
          Obj
            [
              ("cells", Num (float_of_int (List.length commit_rows)));
              ("bit_identical", Bool commit_identical);
              ( "results",
                Arr
                  (List.map
                     (fun (cell, r) ->
                       Obj
                         [
                           ("device", Str cell.cc_device);
                           ("streams", Num (float_of_int cell.cc_streams));
                           ( "policy",
                             Str (Dbms.Commit_policy.to_string cell.cc_policy) );
                           ("clients", Num (float_of_int cell.cc_clients));
                           ("throughput", Num r.Experiment.throughput);
                           ("p50_us", Num r.Experiment.latency_p50_us);
                           ("p99_us", Num r.Experiment.latency_p99_us);
                           ( "log_writes",
                             Num (float_of_int r.Experiment.physical_log_writes)
                           );
                           ( "wal_forces",
                             Num (float_of_int r.Experiment.wal_forces) );
                         ])
                     commit_rows) );
            ] );
        ( "crash_journal",
          Arr
            (List.map
               (fun (name, (r : Crash_surface.result)) ->
                 Obj
                   [
                     ("config", Str name);
                     ("explored", Num (float_of_int r.Crash_surface.r_explored));
                     ( "contract_breaks",
                       Num (float_of_int r.Crash_surface.r_contract_breaks) );
                     ("lost_total", Num (float_of_int r.Crash_surface.r_lost_total));
                   ])
               journal_results) );
        ( "fork_sweep",
          Obj
            [
              ("stride", Num (float_of_int sweep_stride));
              ( "explored",
                Num (float_of_int fj_fork.Crash_surface.r_explored) );
              ("journal_seconds", Num fj_journal_s);
              ("fork_seconds", Num fj_fork_s);
              ("fork_over_journal", Num (fj_fork_s /. fj_journal_s));
              ("bit_identical", Bool fork_identical);
              ( "contract_breaks",
                Num (float_of_int fj_fork.Crash_surface.r_contract_breaks) );
              ( "lost_total",
                Num (float_of_int fj_fork.Crash_surface.r_lost_total) );
            ] );
        ( "metrics",
          Obj
            [
              ("bit_identical_to_uninstrumented", Bool metrics_identical);
              ( "runs",
                Arr
                  (List.map
                     (fun (label, _, same, registry) ->
                       Obj
                         [
                           ("cell", Str label);
                           ("identical_to_uninstrumented", Bool same);
                           ("registry", Metrics_report.json_of registry);
                         ])
                     metrics_rows) );
            ] );
      ]
  in
  let text = Json.to_string report in
  let oc = open_out !output in
  output_string oc text;
  close_out oc;
  Printf.printf
    "perf: queue %.2fM ev/s (%.3f words/ev) | step %.2fM ev/s (%.3f words/ev)\n"
    (eq_rate /. 1e6) eq_words (step_rate /. 1e6) step_words;
  Printf.printf
    "perf: standard mix: wheel %.2fM ev/s (%.3f words/ev) vs heap %.2fM ev/s \
     (%.2fx), order fingerprints equal: %b\n"
    (wheel_rate /. 1e6) wheel_words (heap_rate /. 1e6)
    (wheel_rate /. heap_rate) (wheel_fp = heap_fp);
  Printf.printf
    "perf: fork sweep %d points: journal %.2fs, fork %.2fs (%.2fx), \
     bit-identical: %b\n"
    fj_fork.Crash_surface.r_explored fj_journal_s fj_fork_s
    (fj_fork_s /. fj_journal_s) fork_identical;
  Printf.printf "perf: link %.2fM msg/s (%.3f words/msg)\n" (link_rate /. 1e6)
    link_words;
  Printf.printf
    "perf: nvme %.2fM wr/s (%.3f words/wr) | append %.2fM rec/s (%.3f words/rec) \
     | policy %.2fM dec/s (%.3f words/dec)\n"
    (nvme_rate /. 1e6) nvme_words (append_rate /. 1e6) append_words
    (policy_rate /. 1e6) policy_words;
  Printf.printf
    "perf: sweep %d scenarios: serial %.2fs, %s, bit-identical: %b\n"
    scenarios serial_s speedup_note identical;
  Printf.printf "perf: commit-path grid %d cells, bit-identical: %b\n"
    (List.length commit_rows) commit_identical;
  List.iter
    (fun (name, (r : Crash_surface.result)) ->
      Printf.printf
        "perf: journal sweep %s: %d boundaries, %d contract breaks, %d lost\n"
        name r.Crash_surface.r_explored r.Crash_surface.r_contract_breaks
        r.Crash_surface.r_lost_total)
    journal_results;
  Printf.printf
    "perf: metrics %d cells, bit-identical to uninstrumented: %b\n"
    (List.length metrics_rows) metrics_identical;
  Printf.printf "perf: wrote %s\n%!" !output;

  if !check then begin
    let failures = ref [] in
    let fail msg = failures := msg :: !failures in
    (match Json.of_string text with
    | exception Json.Parse_error msg ->
        fail (Printf.sprintf "report is not valid JSON: %s" msg)
    | Obj _ -> ()
    | _ -> fail "report is not a JSON object");
    if not identical then fail "parallel sweep results differ from serial";
    if not commit_identical then
      fail "parallel commit-path grid differs from serial";
    if not metrics_identical then
      fail "metrics-on steady results differ from metrics-off";
    commit_path_gate commit_rows ~fail;
    List.iter
      (fun (name, (r : Crash_surface.result)) ->
        if r.Crash_surface.r_explored < 6 then
          fail
            (Printf.sprintf "journal sweep %s explored only %d boundaries" name
               r.Crash_surface.r_explored);
        if r.Crash_surface.r_contract_breaks <> 0 then
          fail
            (Printf.sprintf "journal sweep %s: %d contract breaks (want 0)" name
               r.Crash_surface.r_contract_breaks);
        if r.Crash_surface.r_lost_total <> 0 then
          fail
            (Printf.sprintf
               "journal sweep %s: %d acknowledged commits lost (want 0)" name
               r.Crash_surface.r_lost_total))
      journal_results;
    (* Every instrumented cell must populate the commit-path stages: the
       client-visible total plus at least one stage below it. *)
    List.iter
      (fun (label, (config : Scenario.config), _, registry) ->
        let hist_count name =
          match Desim.Metrics.find registry name with
          | Some (Desim.Metrics.Histogram h) -> Desim.Metrics.Histogram.count h
          | Some _ | None -> 0
        in
        let require name =
          if hist_count name = 0 then
            fail
              (Printf.sprintf "metrics %s: stage %S has no observations" label
                 name)
        in
        require "commit.total";
        require "commit.force";
        require "wal.force_write";
        (match config.Scenario.mode with
        | Scenario.Rapilog -> require "logger.admission"
        | Scenario.Rapilog_replicated ->
            require "logger.admission";
            require "logger.replicate";
            require "net.link_delay"
        | _ -> ()))
      metrics_rows;
    let alloc_gate name words =
      if words > 0.5 then
        fail
          (Printf.sprintf "%s allocates %.3f minor words/event (want 0)" name
             words)
    in
    alloc_gate "Sim.step" step_words;
    alloc_gate "event queue" eq_words;
    alloc_gate "wheel standard mix" wheel_words;
    (* The tentpole gates: the wheel must preserve the heap's exact pop
       order on the mixed-horizon stream and must not be slower than
       the heap it replaced. *)
    if wheel_fp <> heap_fp then
      fail "wheel pop order diverges from heap on the standard mix";
    if wheel_rate < heap_rate then
      fail
        (Printf.sprintf
           "wheel %.2fM ev/s slower than heap %.2fM ev/s on the standard mix"
           (wheel_rate /. 1e6) (heap_rate /. 1e6));
    if not fork_identical then
      fail "fork sweep verdicts differ from the journal engine";
    if fj_fork.Crash_surface.r_explored < 6 then
      fail
        (Printf.sprintf "fork sweep explored only %d boundaries"
           fj_fork.Crash_surface.r_explored);
    (* Wall-clock: the fork engine does strictly less fold work; allow
       5% + 50ms of shared-machine noise before calling it a
       regression. *)
    if fj_fork_s > (fj_journal_s *. 1.05) +. 0.05 then
      fail
        (Printf.sprintf
           "fork sweep %.2fs slower than journal sweep %.2fs" fj_fork_s
           fj_journal_s);
    alloc_gate "net link" link_words;
    alloc_gate "nvme submit" nvme_words;
    alloc_gate "log append" append_words;
    alloc_gate "commit-policy decision" policy_words;
    (* Multicore bars, applied only where the hardware can provide
       them: any measured speedup must beat serial whenever a second
       core exists, and the 2x bar holds from 4 cores up. *)
    (match parallel_timing with
    | Some parallel_s when cores > 1 && jobs > 1 ->
        let speedup = serial_s /. parallel_s in
        if speedup <= 1. then
          fail
            (Printf.sprintf "parallel speedup %.2fx <= 1x on %d cores" speedup
               cores);
        if cores >= 4 && jobs >= 4 && speedup < 2. then
          fail
            (Printf.sprintf "parallel speedup %.2fx < 2x on >=4 cores" speedup)
    | Some _ | None -> ());
    match !failures with
    | [] -> print_endline "perf: check OK"
    | msgs ->
        List.iter (fun m -> Printf.eprintf "perf: CHECK FAILED: %s\n" m) msgs;
        exit 1
  end
