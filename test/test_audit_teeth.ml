(* Mutation tests: the durability audit must have teeth.

   Every safe-mode experiment passing is only meaningful if the audit
   would actually catch a broken system. Here we inject bugs — a device
   that silently drops writes, one that lies about flushes, a logger fed
   by lossy hardware — and assert the audit REPORTS the damage. *)

open Desim
open Testu

let sector = 512

(* A device whose firmware silently discards every [period]-th write but
   completes it normally. *)
let lossy_device sim ~period =
  let real = Storage.Ssd.create sim Storage.Ssd.default in
  let counter = ref 0 in
  let ops =
    {
      Storage.Block.op_read =
        (fun ~lba ~sectors -> Storage.Block.read real ~lba ~sectors);
      op_write =
        (fun ~lba ~data ~fua ->
          incr counter;
          if !counter mod period = 0 then
            (* Take the time, drop the data. *)
            Process.sleep (Time.us 300)
          else Storage.Block.write real ~fua ~lba data);
      op_flush = (fun () -> Storage.Block.flush real);
      op_power_cut = (fun () -> Storage.Block.power_cut real);
      op_durable_read =
        (fun ~lba ~sectors -> Storage.Block.durable_read real ~lba ~sectors);
      op_durable_extent = (fun () -> Storage.Block.durable_extent real);
    }
  in
  Storage.Block.make ~info:(Storage.Block.info real)
    ~stats:(Storage.Disk_stats.create ())
    ~ops ()

(* Run a small committed workload against a hand-built engine whose log
   device is [log_dev]; return (acked txids, recovery result). *)
let run_workload sim ~log_dev ~data_dev =
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.native in
  let wal = Dbms.Wal.create sim Dbms.Wal.default_config ~device:log_dev in
  let pool =
    Dbms.Buffer_pool.create sim Dbms.Buffer_pool.default_config ~device:data_dev
      ~wal_force:(fun ~page:_ lsn -> Dbms.Wal.force wal lsn)
  in
  let engine =
    Dbms.Engine.create ~vmm ~profile:Dbms.Engine_profile.postgres_like ~wal ~pool ()
  in
  let acked = ref [] in
  ignore
    (Hypervisor.Vmm.spawn_guest vmm (fun () ->
         for i = 1 to 100 do
           let r =
             Dbms.Engine.exec engine
               [ Dbms.Engine.Put { key = i; value = Printf.sprintf "v%d" i } ]
           in
           acked := r.Dbms.Engine.txid :: !acked
         done));
  Sim.run sim;
  let recovery =
    Dbms.Recovery.run ~log_device:log_dev ~data_device:data_dev
      ~wal_config:Dbms.Wal.default_config
      ~pool_config:Dbms.Buffer_pool.default_config
  in
  (!acked, recovery)

let audit_catches_silent_write_drops () =
  let sim = Sim.create () in
  let log_dev = lossy_device sim ~period:7 in
  let data_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let acked, recovery = run_workload sim ~log_dev ~data_dev in
  let report =
    Rapilog.Durability.compare_txids ~committed:acked
      ~recovered:recovery.Dbms.Recovery.committed
  in
  Alcotest.(check bool) "loss detected" false (Rapilog.Durability.holds report);
  Alcotest.(check bool) "substantial loss reported" true
    (List.length report.Rapilog.Durability.lost > 5)

let healthy_device_control () =
  (* The control: the identical workload on honest hardware audits clean
     (otherwise the mutation test above proves nothing). *)
  let sim = Sim.create () in
  let log_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let data_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let acked, recovery = run_workload sim ~log_dev ~data_dev in
  let report =
    Rapilog.Durability.compare_txids ~committed:acked
      ~recovered:recovery.Dbms.Recovery.committed
  in
  Alcotest.(check bool) "clean" true (Rapilog.Durability.holds report)

let audit_catches_lossy_drain_target () =
  (* The trusted logger's guarantee is only as good as its physical
     device: drain onto lying hardware and the audit must expose it. *)
  let sim = Sim.create () in
  let faulty = lossy_device sim ~period:3 in
  let trusted =
    Hypervisor.Domain.create sim ~name:"rl" ~kind:Hypervisor.Domain.Trusted
  in
  let logger =
    Rapilog.Trusted_logger.create sim ~domain:trusted
      Rapilog.Trusted_logger.default_config ~device:faulty
  in
  let guest = Hypervisor.Domain.create sim ~name:"g" ~kind:Hypervisor.Domain.Guest in
  let backend = Rapilog.Trusted_logger.backend logger in
  ignore
    (Hypervisor.Domain.spawn guest (fun () ->
         (* Gapped addresses defeat drain coalescing, so each write is
            its own physical drain write. *)
         for i = 0 to 63 do
           backend.Hypervisor.Virtio_blk.be_write ~lba:(i * 2)
             ~data:(String.make sector 'x') ~fua:false
         done));
  Sim.run sim;
  (* Everything was acknowledged and "drained", but sectors are missing
     from media. *)
  Alcotest.(check int) "all acked" 64 (Rapilog.Trusted_logger.acked_writes logger);
  let missing = ref 0 in
  for i = 0 to 63 do
    if
      Storage.Block.durable_read faulty ~lba:(i * 2) ~sectors:1
      = String.make sector '\000'
    then incr missing
  done;
  Alcotest.(check bool) (Printf.sprintf "media holes visible (%d)" !missing) true
    (!missing > 0)

let diff_stores_catches_value_corruption () =
  (* State-exactness must notice a flipped value even when the txid sets
     match. *)
  let sim = Sim.create () in
  let log_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let data_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let acked, recovery = run_workload sim ~log_dev ~data_dev in
  ignore acked;
  let model = Hashtbl.copy recovery.Dbms.Recovery.store in
  Hashtbl.replace model 50 "corrupted-expectation";
  let diffs =
    Rapilog.Durability.diff_stores ~expected:model
      ~actual:recovery.Dbms.Recovery.store
  in
  Alcotest.(check int) "exactly the corrupted key" 1 (List.length diffs);
  match diffs with
  | [ { Rapilog.Durability.key; _ } ] -> Alcotest.(check int) "key 50" 50 key
  | _ -> Alcotest.fail "unexpected diff shape"

let suites =
  [
    ( "audit.mutation",
      [
        case "silent write drops are detected" audit_catches_silent_write_drops;
        case "healthy control audits clean" healthy_device_control;
        case "lossy drain target exposed" audit_catches_lossy_drain_target;
        case "value corruption caught by state diff" diff_stores_catches_value_corruption;
      ] );
  ]
