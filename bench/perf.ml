(* The machine-readable performance harness: the trajectory gate that
   later PRs must not regress.

   Measures, with fixed seeds:
   - the desim core: event-queue add/pop throughput and the Sim.step
     hot path's allocation rate (Gc.minor_words per event — the
     acceptance bar is zero);
   - the experiment sweep: wall-clock for a fixed scenario grid at
     jobs=1 and jobs=N, asserting the parallel results are
     bit-identical to serial;
   - the observability layer: the same scenario with and without the
     metrics registry installed, asserting the steady results are
     bit-identical (instrumentation only reads the clock) and emitting
     the per-stage commit-latency histograms as the "metrics" section.

   Writes a JSON report (default BENCH_PR4.json). With --check it also
   self-validates: the JSON must parse, parallel must equal serial,
   metrics-on must equal metrics-off, every instrumented run must carry
   populated stage histograms, and the step path must not allocate — so
   `dune runtest` keeps this harness honest.

   Usage: perf.exe [--quick] [--check] [--jobs N] [--output PATH] *)

open Desim
open Harness
open Harness.Json

(* ---- desim microbenchmarks ----------------------------------------- *)

(* Raw queue churn: keep a standing population and cycle add+pop. *)
let bench_event_queue ~events =
  let q = Event_queue.create () in
  for i = 0 to 1023 do
    Event_queue.add q ~time:(Time.of_ns i) i
  done;
  (* warm the arrays past any growth before measuring *)
  Gc.minor ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to events - 1 do
    Event_queue.add q ~time:(Time.of_ns (1024 + i)) i;
    ignore (Event_queue.pop_min q)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  ( float_of_int events /. elapsed,
    words /. float_of_int events,
    elapsed )

(* The Sim.step hot path: one self-rescheduling closure, so every
   simulated event exercises schedule_after + step + pop with no
   per-event closure construction. The minor-words delta across the run
   is the per-event allocation of the engine itself. *)
let bench_sim_step ~events =
  let sim = Sim.create ~seed:7L () in
  let remaining = ref events in
  let rec tick () =
    if !remaining > 0 then begin
      decr remaining;
      Sim.schedule_after sim (Time.ns 100) tick
    end
  in
  Sim.schedule_now sim tick;
  (* run the first few events, then measure the steady state *)
  for _ = 1 to 8 do
    ignore (Sim.step sim)
  done;
  Gc.minor ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Sim.run sim;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  let measured = float_of_int (events - 8) in
  (measured /. elapsed, words /. measured, elapsed)

(* The Link hot path: a preallocated self-rescheduling sender, constant
   latency (no rng), zero drop probability (no rng), int payloads in the
   flat ring, the preallocated pump delivering each message. The
   minor-words delta per message is the link's own allocation. *)
let bench_net_link ~events =
  let sim = Sim.create ~seed:9L () in
  let delivered = ref 0 in
  let config =
    {
      Net.Link.latency = Net.Link.Constant (Time.ns 100);
      bandwidth = 0.;
      drop_probability = 0.;
    }
  in
  let link =
    Net.Link.create sim config ~dummy:0 ~deliver:(fun _ -> incr delivered)
  in
  let remaining = ref events in
  let rec tick () =
    if !remaining > 0 then begin
      decr remaining;
      Net.Link.send link 1;
      Sim.schedule_after sim (Time.ns 100) tick
    end
  in
  Sim.schedule_now sim tick;
  (* run the first events to warm the ring past any growth, then measure *)
  for _ = 1 to 64 do
    ignore (Sim.step sim)
  done;
  Gc.minor ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Sim.run sim;
  let elapsed = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  let measured = float_of_int (events - 33) in
  (measured /. elapsed, words /. measured, elapsed)

(* ---- sweep wall-clock at jobs=1 vs jobs=N -------------------------- *)

let sweep_grid ~quick =
  let config =
    {
      Scenario.default with
      Scenario.warmup = Time.ms 100;
      duration = (if quick then Time.ms 300 else Time.ms 800);
      seed = 4242L;
    }
  in
  let clients = if quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let modes =
    if quick then
      [ Scenario.Native_sync; Scenario.Rapilog; Scenario.Rapilog_replicated ]
    else Scenario.all_modes
  in
  List.concat_map
    (fun n -> List.map (fun mode -> { config with Scenario.mode; clients = n }) modes)
    clients

let steady_fingerprint (r : Experiment.steady_result) =
  (* Every scalar the sweep reports; identical records ⇒ identical runs. *)
  Obj
    [
      ("mode", Str (Scenario.mode_name r.Experiment.mode));
      ("clients", Num (float_of_int r.Experiment.clients));
      ("committed", Num (float_of_int r.Experiment.committed_in_window));
      ("throughput", Num r.Experiment.throughput);
      ("p50_us", Num r.Experiment.latency_p50_us);
      ("p99_us", Num r.Experiment.latency_p99_us);
      ("log_writes", Num (float_of_int r.Experiment.physical_log_writes));
      ("wal_forces", Num (float_of_int r.Experiment.wal_forces));
    ]

let bench_sweep ~quick ~jobs ~cores =
  let grid = sweep_grid ~quick in
  let t0 = Unix.gettimeofday () in
  let serial = Experiment.run_steady_batch ~jobs:1 grid in
  let serial_s = Unix.gettimeofday () -. t0 in
  (* Parallel-vs-serial is a real measurement only with real cores; on a
     single-core host it would time domain overhead, so the timing is
     skipped and the identity asserted with the serial result reused. *)
  let parallel, parallel_timing =
    if cores > 1 then begin
      let t1 = Unix.gettimeofday () in
      let parallel = Experiment.run_steady_batch ~jobs grid in
      let parallel_s = Unix.gettimeofday () -. t1 in
      (parallel, Some parallel_s)
    end
    else (Experiment.run_steady_batch ~jobs:4 grid, None)
  in
  let identical = serial = parallel in
  (List.length grid, serial, serial_s, parallel_timing, identical)

(* ---- metrics-on vs metrics-off ------------------------------------- *)

(* The two poles of the design space at low and high concurrency: the
   per-stage breakdowns EXPERIMENTS.md quotes, and the gate that
   instrumentation does not perturb the simulation. *)
let metrics_cells =
  [
    (Scenario.Native_sync, 1);
    (Scenario.Native_sync, 32);
    (Scenario.Rapilog, 1);
    (Scenario.Rapilog, 32);
    (Scenario.Rapilog_replicated, 1);
    (Scenario.Rapilog_replicated, 32);
  ]

let bench_metrics ~quick =
  let config =
    {
      Scenario.default with
      Scenario.warmup = Time.ms 100;
      duration = (if quick then Time.ms 300 else Time.ms 800);
      seed = 4242L;
    }
  in
  List.map
    (fun (mode, clients) ->
      let config = { config with Scenario.mode; clients } in
      let plain = Experiment.run_steady config in
      let instrumented, registry = Experiment.run_steady_metrics config in
      (Scenario.mode_name mode, clients, plain = instrumented, registry))
    metrics_cells

(* ---- main ----------------------------------------------------------- *)

let usage () =
  print_endline "usage: perf.exe [--quick] [--check] [--jobs N] [--output PATH]";
  exit 2

let () =
  let quick = ref false in
  let check = ref false in
  let jobs = ref (Parallel.default_jobs ()) in
  let output = ref "BENCH_PR4.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--check" :: rest -> check := true; parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | "--output" :: path :: rest -> output := path; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick and jobs = !jobs in
  let micro_events = if quick then 200_000 else 2_000_000 in

  Printf.printf "perf: event-queue microbench (%d events)...\n%!" micro_events;
  let eq_rate, eq_words, _ = bench_event_queue ~events:micro_events in
  Printf.printf "perf: sim-step microbench (%d events)...\n%!" micro_events;
  let step_rate, step_words, _ = bench_sim_step ~events:micro_events in
  Printf.printf "perf: net-link microbench (%d messages)...\n%!" micro_events;
  let link_rate, link_words, _ = bench_net_link ~events:micro_events in
  Printf.printf "perf: scenario sweep at jobs=1 then jobs=%d...\n%!" jobs;
  let cores = Domain.recommended_domain_count () in
  let scenarios, serial_results, serial_s, parallel_timing, identical =
    bench_sweep ~quick ~jobs ~cores
  in
  Printf.printf "perf: per-stage metrics breakdown (%d cells)...\n%!"
    (List.length metrics_cells);
  let metrics_rows = bench_metrics ~quick in
  let metrics_identical =
    List.for_all (fun (_, _, same, _) -> same) metrics_rows
  in
  let speedup_json, speedup_note =
    match parallel_timing with
    | Some parallel_s ->
        let speedup = serial_s /. parallel_s in
        ( [ ("parallel_seconds", Num parallel_s); ("speedup", Num speedup) ],
          Printf.sprintf "jobs=%d %.2fs (%.2fx)" jobs parallel_s speedup )
    | None ->
        ( [
            ("parallel_seconds", Null);
            ("speedup", Null);
            ( "skipped_reason",
              Str "single-core host: parallel timing would measure domain \
                   overhead, not speedup" );
          ],
          "parallel timing skipped (1 core)" )
  in

  let report =
    Obj
      [
        ("pr", Num 4.);
        ("harness", Str "perf.exe");
        ("quick", Bool quick);
        ("cores", Num (float_of_int cores));
        ("jobs", Num (float_of_int jobs));
        ( "event_queue",
          Obj
            [
              ("events", Num (float_of_int micro_events));
              ("events_per_sec", Num eq_rate);
              ("minor_words_per_event", Num eq_words);
            ] );
        ( "sim_step",
          Obj
            [
              ("events", Num (float_of_int micro_events));
              ("events_per_sec", Num step_rate);
              ("minor_words_per_event", Num step_words);
            ] );
        ( "net_link",
          Obj
            [
              ("messages", Num (float_of_int micro_events));
              ("messages_per_sec", Num link_rate);
              ("minor_words_per_message", Num link_words);
            ] );
        ( "sweep",
          Obj
            ([
               ("scenarios", Num (float_of_int scenarios));
               ("serial_seconds", Num serial_s);
             ]
            @ speedup_json
            @ [
                ("bit_identical", Bool identical);
                ("results", Arr (List.map steady_fingerprint serial_results));
              ]) );
        ( "metrics",
          Obj
            [
              ("bit_identical_to_uninstrumented", Bool metrics_identical);
              ( "runs",
                Arr
                  (List.map
                     (fun (mode, clients, same, registry) ->
                       Obj
                         [
                           ("mode", Str mode);
                           ("clients", Num (float_of_int clients));
                           ("identical_to_uninstrumented", Bool same);
                           ("registry", Metrics_report.json_of registry);
                         ])
                     metrics_rows) );
            ] );
      ]
  in
  let text = Json.to_string report in
  let oc = open_out !output in
  output_string oc text;
  close_out oc;
  Printf.printf
    "perf: queue %.2fM ev/s (%.3f words/ev) | step %.2fM ev/s (%.3f words/ev)\n"
    (eq_rate /. 1e6) eq_words (step_rate /. 1e6) step_words;
  Printf.printf "perf: link %.2fM msg/s (%.3f words/msg)\n" (link_rate /. 1e6)
    link_words;
  Printf.printf
    "perf: sweep %d scenarios: serial %.2fs, %s, bit-identical: %b\n"
    scenarios serial_s speedup_note identical;
  Printf.printf
    "perf: metrics %d cells, bit-identical to uninstrumented: %b\n"
    (List.length metrics_rows) metrics_identical;
  Printf.printf "perf: wrote %s\n%!" !output;

  if !check then begin
    let failures = ref [] in
    let fail msg = failures := msg :: !failures in
    (match Json.of_string text with
    | exception Json.Parse_error msg ->
        fail (Printf.sprintf "report is not valid JSON: %s" msg)
    | Obj _ -> ()
    | _ -> fail "report is not a JSON object");
    if not identical then fail "parallel sweep results differ from serial";
    if not metrics_identical then
      fail "metrics-on steady results differ from metrics-off";
    (* Every instrumented cell must populate the commit-path stages: the
       client-visible total plus at least one stage below it. *)
    List.iter
      (fun (mode, clients, _, registry) ->
        let hist_count name =
          match Desim.Metrics.find registry name with
          | Some (Desim.Metrics.Histogram h) -> Desim.Metrics.Histogram.count h
          | Some _ | None -> 0
        in
        let require name =
          if hist_count name = 0 then
            fail
              (Printf.sprintf "metrics %s/%d: stage %S has no observations"
                 mode clients name)
        in
        require "commit.total";
        require "commit.force";
        require "wal.force_write";
        if mode = "rapilog" then require "logger.admission";
        if mode = "rapilog-replicated" then begin
          require "logger.admission";
          require "logger.replicate";
          require "net.link_delay"
        end)
      metrics_rows;
    if step_words > 0.5 then
      fail
        (Printf.sprintf "Sim.step allocates %.3f minor words/event (want 0)"
           step_words);
    if eq_words > 0.5 then
      fail
        (Printf.sprintf "event queue allocates %.3f minor words/event (want 0)"
           eq_words);
    if link_words > 0.5 then
      fail
        (Printf.sprintf "net link allocates %.3f minor words/message (want 0)"
           link_words);
    (* The 2x bar only applies where the hardware can provide it. *)
    (match parallel_timing with
    | Some parallel_s when cores >= 4 && jobs >= 4 ->
        let speedup = serial_s /. parallel_s in
        if speedup < 2. then
          fail
            (Printf.sprintf "parallel speedup %.2fx < 2x on >=4 cores" speedup)
    | Some _ | None -> ());
    match !failures with
    | [] -> print_endline "perf: check OK"
    | msgs ->
        List.iter (fun m -> Printf.eprintf "perf: CHECK FAILED: %s\n" m) msgs;
        exit 1
  end
