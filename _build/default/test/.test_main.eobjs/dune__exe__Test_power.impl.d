test/test_power.ml: Alcotest Desim List Power Process Sim Storage String Testu Time
