bench/bench_consolidation.ml: Bench_support Dbms Desim Harness Hypervisor List Printf Rapilog Report Sim Storage Time Workload
