type t =
  | Serial
  | Fixed of int
  | Adaptive of { target_ns : int; max_batch : int }

let default = Fixed 1

let quantum_ns = 10_000
let fixed_wait_cap_ns = 200_000

(* Pure integer decision — the commit path calls this between clock
   reads and sleeps, so it must not allocate. Returns 0 to write now,
   or a sleep in nanoseconds after which the caller re-evaluates. *)
let decide policy ~ewma_ns ~pending ~waited_ns =
  match policy with
  | Serial -> 0
  | Fixed n ->
      if n <= 1 || pending >= n || waited_ns >= fixed_wait_cap_ns then 0
      else
        let remaining = fixed_wait_cap_ns - waited_ns in
        if remaining < quantum_ns then remaining else quantum_ns
  | Adaptive { target_ns; max_batch } ->
      (* The whole point: when the measured device latency is already at
         or under target, gathering a batch cannot pay for itself — ack
         immediately. Only a slow device justifies holding commits, and
         then never longer than one device write. *)
      if ewma_ns <= target_ns || pending >= max_batch || waited_ns >= ewma_ns
      then 0
      else
        let remaining = ewma_ns - waited_ns in
        if remaining < quantum_ns then remaining else quantum_ns

let ewma_update ~prev ~obs = if prev = 0 then obs else prev + ((obs - prev) asr 3)

let to_string = function
  | Serial -> "serial"
  | Fixed n -> Printf.sprintf "fixed-%d" n
  | Adaptive { target_ns; max_batch } ->
      Printf.sprintf "adaptive-%dus-max%d" (target_ns / 1000) max_batch

let pp fmt t = Format.pp_print_string fmt (to_string t)
