lib/core/invariants.ml: Desim List Printf Process Sim Time Trusted_logger
