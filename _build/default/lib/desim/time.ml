type t = int
type span = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

let span_of_float_sec s = int_of_float (Float.round (s *. 1e9))
let span_of_float_us u = int_of_float (Float.round (u *. 1e3))

let add t d = t + d
let diff a b = a - b
let add_span a b = a + b
let sub_span a b = a - b
let mul_span d k = d * k
let div_span d k = d / k
let scale_span d f = int_of_float (Float.round (float_of_int d *. f))
let zero_span = 0

let compare = Int.compare
let compare_span = Int.compare
let equal = Int.equal
let ( <= ) a b = Stdlib.( <= ) a b
let ( < ) a b = Stdlib.( < ) a b
let min = Stdlib.min
let max = Stdlib.max

let to_float_sec t = float_of_int t /. 1e9
let to_float_us t = float_of_int t /. 1e3
let to_float_ms t = float_of_int t /. 1e6
let span_to_float_sec = to_float_sec
let span_to_float_us = to_float_us
let span_to_float_ms = to_float_ms
let span_to_ns d = d

let of_ns n = n
let to_ns t = t

(* Pick the largest unit that keeps the mantissa >= 1. *)
let pp_adaptive fmt n =
  let f = float_of_int (abs n) in
  if f >= 1e9 then Format.fprintf fmt "%.3fs" (float_of_int n /. 1e9)
  else if f >= 1e6 then Format.fprintf fmt "%.3fms" (float_of_int n /. 1e6)
  else if f >= 1e3 then Format.fprintf fmt "%.3fus" (float_of_int n /. 1e3)
  else Format.fprintf fmt "%dns" n

let pp = pp_adaptive
let pp_span = pp_adaptive
