(** Runtime verification of the trusted logger.

    The paper's argument delegates the logger's correctness to formal
    verification; this module is the simulation-side analogue — a
    monitor that continuously checks the properties the proof would
    establish, so that any modelling bug surfaces as a named violation
    rather than a silently wrong experiment:

    - {b capacity}: buffered bytes never exceed the configured buffer;
    - {b monotonicity}: acknowledged and drained byte counts never go
      backwards;
    - {b conservation}: the drain never retires more bytes than were
      admitted into the ring, and nothing is acknowledged that was not
      admitted (the bound is admitted rather than acknowledged bytes
      because a replicated logger drains entries whose writers are
      still waiting on the remote ack — see {!Net.Replication});
    - {b admission closed}: after a power-fail notification, nothing
      further is ever acknowledged. *)

type violation = { at : Desim.Time.t; invariant : string; detail : string }

type t

val attach :
  Desim.Sim.t ->
  ?interval:Desim.Time.span ->
  Trusted_logger.t ->
  t
(** Spawn a monitor polling every [interval] (default 1 ms). The monitor
    runs outside any guest domain — like the property it checks, it must
    survive the guest. It reschedules itself forever: bound the
    simulation with [Sim.run ~until] or call {!stop} when done. *)

val stop : t -> unit
(** Cancel the monitor process; checks performed so far remain
    queryable. *)

val violations : t -> violation list
(** Oldest first; empty means every check passed so far. *)

val ok : t -> bool
(** No violations so far. *)

val checks_performed : t -> int
(** Number of polling rounds completed — evidence the monitor actually
    ran alongside the experiment. *)
