type entry = { lba : int; data : string }

type t = {
  sector_size : int;
  capacity_bytes : int;
  entries : entry Queue.t;
  mutable bytes : int;
  mutable pushed : int;
  mutable popped : int;
}

let create ~sector_size ~capacity_bytes =
  assert (sector_size > 0 && capacity_bytes >= sector_size);
  {
    sector_size;
    capacity_bytes;
    entries = Queue.create ();
    bytes = 0;
    pushed = 0;
    popped = 0;
  }

let capacity_bytes t = t.capacity_bytes
let bytes_used t = t.bytes
let length t = Queue.length t.entries
let is_empty t = Queue.is_empty t.entries
let fits t n = t.bytes + n <= t.capacity_bytes

let try_push t ~lba ~data =
  let len = String.length data in
  assert (len > 0 && len mod t.sector_size = 0);
  if not (fits t len) then false
  else begin
    Queue.push { lba; data } t.entries;
    t.bytes <- t.bytes + len;
    t.pushed <- t.pushed + len;
    true
  end

let account_pop t entry =
  t.bytes <- t.bytes - String.length entry.data;
  t.popped <- t.popped + String.length entry.data

let pop t =
  match Queue.take_opt t.entries with
  | None -> None
  | Some entry ->
      account_pop t entry;
      Some entry

let sectors t data = String.length data / t.sector_size

let pop_coalesced t ~max_bytes =
  match Queue.take_opt t.entries with
  | None -> None
  | Some head ->
      account_pop t head;
      let base = head.lba in
      (* Accumulate the batch as (lba, data) pieces; materialise once. *)
      let pieces = ref [ head ] in
      let end_lba = ref (base + sectors t head.data) in
      let batch_bytes = ref (String.length head.data) in
      let mergeable entry =
        entry.lba >= base
        && entry.lba <= !end_lba
        && !batch_bytes + String.length entry.data <= max_bytes
      in
      let continue = ref true in
      while !continue do
        match Queue.peek_opt t.entries with
        | Some entry when mergeable entry ->
            ignore (Queue.pop t.entries);
            account_pop t entry;
            pieces := entry :: !pieces;
            end_lba := max !end_lba (entry.lba + sectors t entry.data);
            batch_bytes := !batch_bytes + String.length entry.data
        | Some _ | None -> continue := false
      done;
      let merged = Bytes.make ((!end_lba - base) * t.sector_size) '\000' in
      List.iter
        (fun entry ->
          Bytes.blit_string entry.data 0 merged
            ((entry.lba - base) * t.sector_size)
            (String.length entry.data))
        (List.rev !pieces);
      Some { lba = base; data = Bytes.unsafe_to_string merged }

let pushed_bytes t = t.pushed
let popped_bytes t = t.popped
