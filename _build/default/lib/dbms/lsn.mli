(** Log sequence numbers.

    An LSN is a byte offset into the logical log stream; the LSN of a
    record is the offset just past its last byte, so "force up to [l]"
    means "the first [l] bytes of the stream are durable". *)

type t

val zero : t
val of_int : int -> t
val to_int : t -> int
val add : t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
