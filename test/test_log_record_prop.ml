(* Property tests for the log-record wire format.

   Recovery's entire trust in the log rests on two properties of the
   encoding: every record round-trips exactly, and corruption is
   detected — a damaged record must read as end-of-log, never as a
   *different* valid record. The second property is the one a
   hand-picked example can miss: it must hold for every single byte
   position, including the kind and length fields, which is why the CRC
   covers the whole frame and not just the body. *)

open Testu
open QCheck2

let record_gen =
  let open Gen in
  let txid = int_range 0 0xFF_FFFF in
  let key = int_range 0 0xFFFF in
  let value = string_size ~gen:printable (int_range 0 64) in
  oneof
    [
      map (fun txid -> Dbms.Log_record.Begin { txid }) txid;
      map
        (fun (txid, key, before, after) ->
          Dbms.Log_record.Update { txid; key; before; after })
        (quad txid key value value);
      map (fun txid -> Dbms.Log_record.Commit { txid }) txid;
      map (fun txid -> Dbms.Log_record.Abort { txid }) txid;
      map
        (fun lsn -> Dbms.Log_record.Checkpoint { redo_lsn = Dbms.Lsn.of_int lsn })
        (int_range 0 0xFF_FFFF);
      map (fun filler -> Dbms.Log_record.Noop { filler }) (int_range 0 64);
      map2
        (fun txid deps ->
          Dbms.Log_record.Commit_multi { txid; deps = Array.of_list deps })
        txid
        (list_size (int_range 0 8) (int_range 0 0xFF_FFFF));
      map2
        (fun txid deps ->
          Dbms.Log_record.Abort_multi { txid; deps = Array.of_list deps })
        txid
        (list_size (int_range 0 8) (int_range 0 0xFF_FFFF));
    ]

let roundtrip =
  prop "encode/decode round-trip" ~count:500 record_gen (fun record ->
      let encoded = Dbms.Log_record.encode record in
      String.length encoded = Dbms.Log_record.encoded_size record
      &&
      match Dbms.Log_record.decode encoded ~pos:0 with
      | Some (decoded, size) ->
          decoded = record && size = String.length encoded
      | None -> false)

(* The streaming encoder is the one the WAL append path uses; it must
   produce the same bytes as the one-shot [encode] — including the CRC,
   which it computes incrementally as the fields go into the buffer. *)
let encode_into_matches_encode =
  prop "encode_into is byte-identical to encode" ~count:500 record_gen
    (fun record ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf "prefix";
      Dbms.Log_record.encode_into record buf;
      Buffer.contents buf = "prefix" ^ Dbms.Log_record.encode record)

(* Flip one byte anywhere in the frame (all 256 alternative values at a
   generated position): the decoder must either reject the record or —
   never — return something other than the original. "Accept the
   original" cannot happen since the byte differs somewhere the CRC or
   magic covers; the property tolerates it only to state the real
   invariant: no *different* valid record. *)
let single_byte_flip =
  prop "single byte flip never yields a different valid record" ~count:200
    Gen.(pair record_gen (int_range 0 1000))
    (fun (record, position_seed) ->
      let encoded = Dbms.Log_record.encode record in
      let pos = position_seed mod String.length encoded in
      let original = Bytes.of_string encoded in
      let ok = ref true in
      for replacement = 0 to 255 do
        if replacement <> Char.code (Bytes.get original pos) then begin
          let corrupted = Bytes.copy original in
          Bytes.set corrupted pos (Char.chr replacement);
          match Dbms.Log_record.decode (Bytes.to_string corrupted) ~pos:0 with
          | None -> ()
          | Some (decoded, _) -> if decoded <> record then ok := false
        end
      done;
      !ok)

(* A valid record followed by garbage still decodes (framing is
   self-delimiting), and decoding at an offset inside the body fails
   rather than resynchronising on accident. *)
let trailing_garbage =
  prop "record followed by garbage still decodes" ~count:200 record_gen
    (fun record ->
      let encoded = Dbms.Log_record.encode record in
      let stream = encoded ^ String.make 16 '\xFF' in
      match Dbms.Log_record.decode stream ~pos:0 with
      | Some (decoded, size) -> decoded = record && size = String.length encoded
      | None -> false)

let truncation_rejected =
  prop "every strict prefix is rejected" ~count:100 record_gen (fun record ->
      let encoded = Dbms.Log_record.encode record in
      let ok = ref true in
      for len = 0 to String.length encoded - 1 do
        match Dbms.Log_record.decode (String.sub encoded 0 len) ~pos:0 with
        | None -> ()
        | Some _ -> ok := false
      done;
      !ok)

let suites =
  [
    ( "dbms.log_record_prop",
      [
        roundtrip;
        encode_into_matches_encode;
        single_byte_flip;
        trailing_garbage;
        truncation_rejected;
      ] );
  ]
