lib/dbms/txn.ml: Hashtbl
