(** The RapiLog trusted logger.

    This is the paper's core component: a small, isolated service running
    in its own protection domain on the verified hypervisor, interposed
    on the guest's virtual log disk. A log write is acknowledged as soon
    as it is copied into the trusted buffer; a drain process writes the
    buffered data to the physical disk asynchronously, preserving issue
    order and coalescing adjacent writes into streaming-sized I/O.

    The durability contract for an acknowledged write:
    - {b DBMS or guest-OS crash}: the buffer lives outside the guest, so
      the drain simply continues — nothing is lost (seL4's verified
      isolation is what makes "the logger itself cannot crash or be
      corrupted" a defensible assumption, modelled here by fault-contained
      domains).
    - {b power cut}: the logger is notified at the instant of the failure
      and stops admitting new writes; the already-buffered data is drained
      within the PSU hold-up window. The contract holds iff buffered
      bytes / drain bandwidth fits in the window — which is why the
      buffer is kept small and admission applies backpressure when it
      fills. {!worst_case_flush} exposes the budget check.

    When the buffer is full, {!backend} writes block (backpressure) —
    performance degrades to the device's streaming bandwidth, never to
    a durability violation. *)

type config = {
  buffer_bytes : int;
  copy_bandwidth : float;  (** guest→trusted copy, bytes/s *)
  drain_max_bytes : int;  (** largest single physical write *)
}

val default_config : config
(** 8 MiB buffer, 1 GB/s copy, 512 KiB drain writes. *)

type t

val create :
  Desim.Sim.t ->
  domain:Hypervisor.Domain.t ->
  ?trace:Desim.Trace.t ->
  config ->
  device:Storage.Block.t ->
  t
(** [domain] must be a trusted domain; the drain process lives there.
    [trace] (default discarding) receives drain, backpressure and
    power-fail events. *)

val config : t -> config

val device : t -> Storage.Block.t
(** The physical disk the drain writes to. *)

val backend : t -> Hypervisor.Virtio_blk.backend
(** The virtual-log-disk backend the guest's virtio frontend connects
    to. Writes ack from the buffer; flushes ack immediately (durability
    of acked data is the logger's contract, not the guest's problem). *)

val notify_power_fail : t -> unit
(** Stop admitting writes; the drain races the hold-up window. *)

val attach_power : t -> Power.Power_domain.t -> unit
(** Register {!notify_power_fail} with the power domain and the physical
    device for loss of power at window expiry. *)

val quiesce : t -> unit
(** Block until the buffer is fully drained; for clean shutdown and for
    OS-crash experiments (where the drain continues after the guest
    died). Must run in a process. *)

val set_replication : t -> (seq:int -> lba:int -> data:string -> unit) -> unit
(** Install the RapiLog-R replication hook (see {!Net.Replication}),
    called in the admitting writer's process at the instant an entry
    lands in the trusted ring, with the 1-based admission sequence
    number. The hook may block (replica-ack policy): the local drain is
    signalled before it runs, and the acknowledgement bookkeeping
    happens only after it returns — and never if power failed in the
    meantime. Raises [Invalid_argument] if a hook is already set. *)

val accepting : t -> bool
(** [false] once {!notify_power_fail} ran. *)

val buffered_bytes : t -> int
(** Current buffer occupancy. *)

val max_buffered_bytes : t -> int
(** High-water mark, for the hold-up budget check. *)

val acked_bytes : t -> int
(** Bytes ever acknowledged to the guest, with {!acked_writes} the
    write count; {!drained_bytes} is the total the drain has retired to
    the device. *)

val drained_bytes : t -> int
val acked_writes : t -> int

val admitted_bytes : t -> int
(** Bytes ever admitted into the ring. Admission precedes (and with
    replication can far precede) acknowledgement, so conservation is
    [drained_bytes <= admitted_bytes], not vs {!acked_bytes};
    {!admitted_writes} is the entry count (the last entry's replication
    sequence number). *)

val admitted_writes : t -> int

val drain_writes : t -> int
(** Physical writes issued: [acked_writes / drain_writes] is the
    coalescing factor. *)

val backpressure_stalls : t -> int
(** Times a writer found the buffer full and had to wait. *)

val worst_case_flush : t -> drain_bandwidth:float -> Desim.Time.span
(** Time to drain the high-water mark at the given bandwidth — compare
    against the PSU hold-up window. *)
