open Desim

type slot = {
  mutable owner : int option;
  waiters : (int * unit Process.resumer) Queue.t;
}

type t = { sim : Sim.t; slots : (int, slot) Hashtbl.t }

let create sim = { sim; slots = Hashtbl.create 1024 }

let slot_of t key =
  match Hashtbl.find_opt t.slots key with
  | Some slot -> slot
  | None ->
      let slot = { owner = None; waiters = Queue.create () } in
      Hashtbl.replace t.slots key slot;
      slot

let lock t ~txid ~key =
  let slot = slot_of t key in
  match slot.owner with
  | None -> slot.owner <- Some txid
  | Some owner when owner = txid -> ()
  | Some _ ->
      Process.suspend (fun resumer -> Queue.push (txid, resumer) slot.waiters)

let try_lock t ~txid ~key =
  let slot = slot_of t key in
  match slot.owner with
  | None ->
      slot.owner <- Some txid;
      true
  | Some owner -> owner = txid

let unlock t ~txid ~key =
  match Hashtbl.find_opt t.slots key with
  | None -> assert false
  | Some slot -> (
      assert (slot.owner = Some txid);
      match Queue.take_opt slot.waiters with
      | Some (next_txid, resumer) ->
          slot.owner <- Some next_txid;
          Sim.schedule_now t.sim (fun () -> resumer ())
      | None ->
          slot.owner <- None;
          Hashtbl.remove t.slots key)

let unlock_all t ~txid ~keys = List.iter (fun key -> unlock t ~txid ~key) keys

let owner t ~key =
  match Hashtbl.find_opt t.slots key with
  | None -> None
  | Some slot -> slot.owner

let locked_count t =
  Hashtbl.fold (fun _ slot acc -> if slot.owner = None then acc else acc + 1) t.slots 0
