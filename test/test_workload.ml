(* Tests for the workload generators and clients. *)

open Desim
open Testu
open Workload

(* -- Value_gen ---------------------------------------------------------- *)

let value_gen_length_and_tag () =
  let rng = Rng.create 1L in
  let v = Value_gen.make rng ~tag:"cu:1:" ~len:32 in
  Alcotest.(check int) "length" 32 (String.length v);
  Alcotest.(check string) "tag prefix" "cu:1:" (String.sub v 0 5)

let value_gen_tag_truncated () =
  let rng = Rng.create 1L in
  let v = Value_gen.make rng ~tag:"very-long-tag" ~len:4 in
  Alcotest.(check string) "truncated" "very" v

(* -- Key_dist ------------------------------------------------------------ *)

let key_dist_uniform_bounds () =
  let rng = Rng.create 2L in
  let dist = Key_dist.uniform ~n:50 in
  Alcotest.(check int) "n" 50 (Key_dist.n dist);
  for _ = 1 to 1000 do
    let k = Key_dist.sample rng dist in
    if k < 0 || k >= 50 then Alcotest.fail "out of range"
  done

let key_dist_zipf_skew () =
  let rng = Rng.create 3L in
  let dist = Key_dist.zipf ~n:100 ~theta:0.99 in
  let zero = ref 0 in
  for _ = 1 to 10_000 do
    if Key_dist.sample rng dist = 0 then incr zero
  done;
  Alcotest.(check bool) "head key popular" true (!zero > 300)

(* -- Microbench ----------------------------------------------------------- *)

let micro_config = { Microbench.default_config with Microbench.keys = 100 }

let micro_initial_rows () =
  let gen = Microbench.create (Rng.create 4L) micro_config in
  let rows = Microbench.initial_rows gen in
  Alcotest.(check int) "one per key" 100 (List.length rows);
  List.iter
    (fun (key, value) ->
      if key < 0 || key >= 100 then Alcotest.fail "key range";
      Alcotest.(check int) "value size" 128 (String.length value))
    rows

let micro_next_shape () =
  let gen = Microbench.create (Rng.create 5L) micro_config in
  for _ = 1 to 100 do
    match Microbench.next gen with
    | [ Dbms.Engine.Put { key; value } ] ->
        if key < 0 || key >= 100 then Alcotest.fail "key range";
        Alcotest.(check int) "value bytes" 128 (String.length value)
    | ops -> Alcotest.failf "expected one put, got %d ops" (List.length ops)
  done

let micro_multi_update () =
  let gen =
    Microbench.create (Rng.create 6L)
      { micro_config with Microbench.updates_per_txn = 4 }
  in
  Alcotest.(check int) "four updates" 4 (List.length (Microbench.next gen))

let micro_deterministic () =
  let run () =
    let gen = Microbench.create (Rng.create 7L) micro_config in
    List.init 20 (fun _ -> Microbench.next gen)
  in
  Alcotest.(check bool) "same seed, same stream" true (run () = run ())

(* -- Tpcc_lite -------------------------------------------------------------- *)

let tpcc_config = Tpcc_lite.default_config

let tpcc_initial_row_count () =
  let gen = Tpcc_lite.create (Rng.create 8L) tpcc_config in
  let c = tpcc_config in
  let expected =
    c.Tpcc_lite.warehouses
    + (c.Tpcc_lite.warehouses * 10)
    + (c.Tpcc_lite.warehouses * 10 * c.Tpcc_lite.customers_per_district)
    + (c.Tpcc_lite.warehouses * c.Tpcc_lite.items_per_warehouse)
  in
  Alcotest.(check int) "schema size" expected (List.length (Tpcc_lite.initial_rows gen))

let tpcc_initial_rows_unique_keys () =
  let gen = Tpcc_lite.create (Rng.create 9L) tpcc_config in
  let rows = Tpcc_lite.initial_rows gen in
  let keys = List.map fst rows in
  Alcotest.(check int) "no duplicates" (List.length keys)
    (List.length (List.sort_uniq Int.compare keys))

let tpcc_values_nonempty () =
  let gen = Tpcc_lite.create (Rng.create 10L) tpcc_config in
  List.iter
    (fun (_, value) ->
      Alcotest.(check int) "row size" tpcc_config.Tpcc_lite.value_bytes
        (String.length value))
    (Tpcc_lite.initial_rows gen)

let tpcc_mix_ratios () =
  let gen = Tpcc_lite.create (Rng.create 11L) tpcc_config in
  for _ = 1 to 10_000 do
    ignore (Tpcc_lite.next gen)
  done;
  let count kind =
    Option.value (List.assoc_opt kind (Tpcc_lite.mix_counts gen)) ~default:0
  in
  let no = count Tpcc_lite.New_order and pay = count Tpcc_lite.Payment in
  let ro = count Tpcc_lite.Order_status + count Tpcc_lite.Stock_level in
  Alcotest.(check bool) (Printf.sprintf "new-order ~45%% (%d)" no) true
    (no > 4100 && no < 4900);
  Alcotest.(check bool) (Printf.sprintf "payment ~43%% (%d)" pay) true
    (pay > 3900 && pay < 4700);
  Alcotest.(check bool) (Printf.sprintf "read-only ~8%% (%d)" ro) true
    (ro > 500 && ro < 1100)

let tpcc_new_order_shape () =
  let gen = Tpcc_lite.create (Rng.create 12L) tpcc_config in
  let rec find_new_order () =
    match Tpcc_lite.next gen with
    | Tpcc_lite.New_order, ops -> ops
    | _ -> find_new_order ()
  in
  let ops = find_new_order () in
  let puts = List.length (List.filter (function Dbms.Engine.Put _ -> true | Dbms.Engine.Get _ | Dbms.Engine.Delete _ -> false) ops) in
  let gets = List.length ops - puts in
  (* district + order + per line (stock + order line): 2 + 2*[5..15] *)
  Alcotest.(check bool) (Printf.sprintf "puts in range (%d)" puts) true
    (puts >= 12 && puts <= 32);
  Alcotest.(check bool) (Printf.sprintf "has reads (%d)" gets) true (gets >= 2)

let tpcc_order_status_read_only () =
  let gen = Tpcc_lite.create (Rng.create 13L) tpcc_config in
  let rec find () =
    match Tpcc_lite.next gen with
    | Tpcc_lite.Order_status, ops -> ops
    | _ -> find ()
  in
  List.iter
    (function
      | Dbms.Engine.Get _ -> ()
      | Dbms.Engine.Put _ | Dbms.Engine.Delete _ -> Alcotest.fail "order-status must be read-only")
    (find ())

let tpcc_inserts_use_fresh_keys () =
  let gen = Tpcc_lite.create (Rng.create 14L) tpcc_config in
  let schema_keys = List.map fst (Tpcc_lite.initial_rows gen) in
  let max_schema = List.fold_left max 0 schema_keys in
  let rec new_order_puts tries =
    if tries = 0 then []
    else
      match Tpcc_lite.next gen with
      | Tpcc_lite.New_order, ops ->
          List.filter_map
            (function
              | Dbms.Engine.Put { key; _ } when key >= 20_000_000 -> Some key
              | Dbms.Engine.Put _ | Dbms.Engine.Get _ | Dbms.Engine.Delete _ -> None)
            ops
      | _ -> new_order_puts (tries - 1)
  in
  let fresh = new_order_puts 100 in
  Alcotest.(check bool) "order rows beyond the schema" true
    (fresh <> [] && List.for_all (fun k -> k > max_schema) fresh)

let tpcc_kind_names () =
  Alcotest.(check string) "new-order" "new-order" (Tpcc_lite.kind_name Tpcc_lite.New_order);
  Alcotest.(check string) "delivery" "delivery" (Tpcc_lite.kind_name Tpcc_lite.Delivery)

let tpcc_deterministic () =
  let run () =
    let gen = Tpcc_lite.create (Rng.create 15L) tpcc_config in
    List.init 50 (fun _ -> snd (Tpcc_lite.next gen))
  in
  Alcotest.(check bool) "same seed, same stream" true (run () = run ())

(* -- Client ------------------------------------------------------------------- *)

let client_rig () =
  let sim = Sim.create ~seed:20L () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.native in
  let log_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let data_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let wal = Dbms.Wal.create sim Dbms.Wal.default_config ~device:log_dev in
  let pool =
    Dbms.Buffer_pool.create sim Dbms.Buffer_pool.default_config ~device:data_dev
      ~wal_force:(fun ~page:_ lsn -> Dbms.Wal.force wal lsn)
  in
  let engine =
    Dbms.Engine.create ~vmm ~profile:Dbms.Engine_profile.postgres_like ~wal ~pool ()
  in
  (sim, vmm, engine)

let clients_commit_until_stopped () =
  let sim, vmm, engine = client_rig () in
  let acks = ref 0 in
  ignore
    (Client.spawn ~vmm Client.default_config ~count:3
       ~gen:(fun ~client ->
         [ Dbms.Engine.Put { key = client; value = "x" } ])
       ~engine
       ~on_commit:(fun ~client:_ _ -> incr acks));
  Sim.schedule_after sim (Time.ms 50) (fun () -> Hypervisor.Vmm.crash_guest vmm);
  Sim.run sim;
  Alcotest.(check bool) (Printf.sprintf "many acks (%d)" !acks) true (!acks > 10)

let clients_think_time_limits_rate () =
  let run think_time =
    let sim, vmm, engine = client_rig () in
    let acks = ref 0 in
    ignore
      (Client.spawn ~vmm { Client.think_time } ~count:1
         ~gen:(fun ~client:_ -> [ Dbms.Engine.Put { key = 1; value = "x" } ])
         ~engine
         ~on_commit:(fun ~client:_ _ -> incr acks));
    Sim.schedule_after sim (Time.ms 100) (fun () -> Hypervisor.Vmm.crash_guest vmm);
    Sim.run sim;
    !acks
  in
  let eager = run Time.zero_span in
  let lazy_rate = run (Time.ms 10) in
  Alcotest.(check bool)
    (Printf.sprintf "think time throttles (%d vs %d)" lazy_rate eager)
    true
    (lazy_rate < eager / 2);
  Alcotest.(check bool) "roughly one per think period" true
    (lazy_rate >= 8 && lazy_rate <= 12)

let clients_pass_client_index () =
  let sim, vmm, engine = client_rig () in
  let seen = Hashtbl.create 8 in
  ignore
    (Client.spawn ~vmm Client.default_config ~count:4
       ~gen:(fun ~client -> [ Dbms.Engine.Put { key = client; value = "x" } ])
       ~engine
       ~on_commit:(fun ~client result ->
         List.iter
           (fun (key, _) -> Hashtbl.replace seen (client, key) ())
           result.Dbms.Engine.writes));
  Sim.schedule_after sim (Time.ms 10) (fun () -> Hypervisor.Vmm.crash_guest vmm);
  Sim.run sim;
  for client = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "client %d wrote its own key" client)
      true
      (Hashtbl.mem seen (client, client))
  done

let suites =
  [
    ( "workload.value_gen",
      [
        case "length and tag" value_gen_length_and_tag;
        case "tag truncation" value_gen_tag_truncated;
      ] );
    ( "workload.key_dist",
      [
        case "uniform bounds" key_dist_uniform_bounds;
        case "zipf skew" key_dist_zipf_skew;
      ] );
    ( "workload.microbench",
      [
        case "initial rows" micro_initial_rows;
        case "single-update transactions" micro_next_shape;
        case "multi-update configuration" micro_multi_update;
        case "deterministic by seed" micro_deterministic;
      ] );
    ( "workload.tpcc_lite",
      [
        case "initial row count matches the schema" tpcc_initial_row_count;
        case "initial keys unique" tpcc_initial_rows_unique_keys;
        case "row payload sizes" tpcc_values_nonempty;
        case "transaction mix ratios" tpcc_mix_ratios;
        case "new-order shape" tpcc_new_order_shape;
        case "order-status is read-only" tpcc_order_status_read_only;
        case "inserts allocate fresh keys" tpcc_inserts_use_fresh_keys;
        case "kind names" tpcc_kind_names;
        case "deterministic by seed" tpcc_deterministic;
      ] );
    ( "workload.client",
      [
        case "closed loop commits until stopped" clients_commit_until_stopped;
        case "think time throttles the rate" clients_think_time_limits_rate;
        case "client index reaches generator and callback" clients_pass_client_index;
      ] );
  ]

(* -- Ycsb_lite (appended) -------------------------------------------------- *)

let ycsb_config = { Ycsb_lite.default_config with Ycsb_lite.keys = 200 }

let ycsb_initial_rows () =
  let gen = Ycsb_lite.create (Rng.create 30L) ycsb_config in
  Alcotest.(check int) "one per key" 200 (List.length (Ycsb_lite.initial_rows gen))

let ycsb_read_fraction_respected () =
  let gen =
    Ycsb_lite.create (Rng.create 31L)
      { ycsb_config with Ycsb_lite.read_fraction = 0.8; ops_per_txn = 1 }
  in
  for _ = 1 to 5000 do
    ignore (Ycsb_lite.next gen)
  done;
  let reads = Ycsb_lite.reads_issued gen and updates = Ycsb_lite.updates_issued gen in
  let frac = float_of_int reads /. float_of_int (reads + updates) in
  Alcotest.(check bool) (Printf.sprintf "~80%% reads (%.2f)" frac) true
    (frac > 0.76 && frac < 0.84)

let ycsb_read_only_extreme () =
  let gen =
    Ycsb_lite.create (Rng.create 32L) { ycsb_config with Ycsb_lite.read_fraction = 1.0 }
  in
  for _ = 1 to 100 do
    List.iter
      (function
        | Dbms.Engine.Get _ -> ()
        | Dbms.Engine.Put _ | Dbms.Engine.Delete _ -> Alcotest.fail "read-only workload wrote")
      (Ycsb_lite.next gen)
  done

let ycsb_update_only_extreme () =
  let gen =
    Ycsb_lite.create (Rng.create 33L) { ycsb_config with Ycsb_lite.read_fraction = 0.0 }
  in
  for _ = 1 to 100 do
    List.iter
      (function
        | Dbms.Engine.Put { value; _ } ->
            Alcotest.(check int) "value size" 100 (String.length value)
        | Dbms.Engine.Get _ -> Alcotest.fail "update-only workload read"
        | Dbms.Engine.Delete _ -> ())
      (Ycsb_lite.next gen)
  done

let ycsb_ops_per_txn () =
  let gen =
    Ycsb_lite.create (Rng.create 34L) { ycsb_config with Ycsb_lite.ops_per_txn = 5 }
  in
  Alcotest.(check int) "five ops" 5 (List.length (Ycsb_lite.next gen))

let ycsb_suite =
  ( "workload.ycsb_lite",
    [
      case "initial rows" ycsb_initial_rows;
      case "read fraction respected" ycsb_read_fraction_respected;
      case "read-only extreme" ycsb_read_only_extreme;
      case "update-only extreme" ycsb_update_only_extreme;
      case "ops per transaction" ycsb_ops_per_txn;
    ] )

let suites = suites @ [ ycsb_suite ]
