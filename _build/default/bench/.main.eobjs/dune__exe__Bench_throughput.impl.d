bench/bench_throughput.ml: Bench_support Dbms Harness List Printf Report Scenario Storage
