lib/desim/rng.ml: Array Float Int64 Time
