(* rapilog-sharded: the multi-tenant tier's scaling table. One fixed
   open-loop load replayed over 1, 2, 4 and 8 shards. The full run's
   load exceeds one disk's streaming bandwidth for long enough to fill
   the single shard's trusted ring, so that column's p99 blows up while
   the per-tenant audit still finds nothing lost — overload costs
   latency, never durability; the quick run is a smoke-sized load where
   the columns merely tie. The machine-readable version (10k-tenant
   scale cell, noisy-neighbor, rebalance and the sharded crash sweep)
   is sharded.exe → BENCH_PR9.json. *)

open Harness
open Bench_support

let tier ~quick ~shards =
  {
    Shard.Tier.default_config with
    Shard.Tier.shards;
    tenants = 64;
    clients = (if quick then 256 else 512);
    mean_interval = (if quick then Desim.Time.ms 4 else Desim.Time.ms 1);
    payload_bytes = 256;
    horizon = (if quick then Desim.Time.ms 40 else Desim.Time.ms 150);
  }

let cell ~quick ~shards =
  Shard.Cell.run
    {
      Shard.Cell.c_name = Printf.sprintf "table-%d-shards" shards;
      c_tier = tier ~quick ~shards;
      c_seed = 90_0909L;
      c_fault = Shard.Cell.no_fault;
    }

let sharded =
  {
    id = "rapilog-sharded";
    title = "RapiLog-S: multi-tenant tier vs shard count";
    description =
      "rapilog-S multi-tenant tier: one open-loop load over 1..8 shards, per-tenant audit";
    run =
      (fun ~quick ->
        Report.section
          "RapiLog-S: sharded multi-tenant tier — one open-loop load, more \
           shards (64 tenants)";
        Report.table
          ~columns:
            [
              "shards"; "acked"; "p50 us"; "p99 us"; "tenant p99 med";
              "tenant p99 max"; "lost"; "breaks";
            ]
          ~rows:
            (List.map
               (fun shards ->
                 let r = cell ~quick ~shards in
                 let s = r.Shard.Cell.r_stats in
                 let a = r.Shard.Cell.r_audit in
                 [
                   string_of_int shards;
                   string_of_int r.Shard.Cell.r_acked;
                   Printf.sprintf "%.0f" s.Shard.Tier.st_p50_us;
                   Printf.sprintf "%.0f" s.Shard.Tier.st_p99_us;
                   Printf.sprintf "%.0f" s.Shard.Tier.st_tenant_p99_med_us;
                   Printf.sprintf "%.0f" s.Shard.Tier.st_tenant_p99_max_us;
                   string_of_int a.Shard.Recover.a_lost;
                   string_of_int a.Shard.Recover.a_breaks;
                 ])
               [ 1; 2; 4; 8 ]);
        print_newline ())
  }

let experiments = [ sharded ]
