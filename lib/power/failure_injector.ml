open Desim

(* The interval is half-open, [earliest, latest): [Rng.span] draws
   uniformly from [0, span), so [latest] itself is never chosen. The
   empty interval [earliest = latest] degenerates deterministically to
   [earliest] without consuming randomness; a reversed interval is a
   caller bug and is rejected loudly. *)
let pick_instant sim ~earliest ~latest =
  let span = Time.diff latest earliest in
  if Time.compare_span span Time.zero_span < 0 then
    invalid_arg "Failure_injector: latest is before earliest";
  if Time.compare_span span Time.zero_span = 0 then earliest
  else Time.add earliest (Rng.span (Sim.rng sim) span)

let power_cut_between sim domain ~earliest ~latest =
  let at = pick_instant sim ~earliest ~latest in
  Power_domain.cut_at domain at;
  at

let crash_at sim time action = Sim.schedule_at sim time action

let crash_between sim ~earliest ~latest action =
  let at = pick_instant sim ~earliest ~latest in
  Sim.schedule_at sim at action;
  at
