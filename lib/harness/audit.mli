(** Post-crash durability and state audit.

    The harness tracks, on the client side, the set of acknowledged
    transactions and the store state they imply. After a crash, recovery
    reconstructs state from durable media; the audit then checks:

    - {b durability}: every acknowledged transaction is among the
      recovered committed set;
    - {b state exactness}: for every key, the recovered value equals the
      client-side expectation — excluding keys written by transactions
      that committed durably but whose acknowledgement never reached a
      client (allowed, and invisible to the client-side model). *)

type t = {
  durability : Rapilog.Durability.report;
  state_exact : bool;
  diff_count : int;
  excluded_keys : int;  (** keys written by unacknowledged-but-durable txns *)
}

val check :
  model:(int, string) Hashtbl.t ->
  acked:int list ->
  recovery:Dbms.Recovery.result ->
  t

val check_sorted :
  model:(int, string) Hashtbl.t ->
  acked:int array ->
  n_acked:int ->
  recovery:Dbms.Recovery.result ->
  t
(** {!check} for an acknowledged set kept as the first [n_acked]
    elements of a strictly ascending array — the journal sweep's cursor
    representation; avoids per-point set building. *)

val pp : Format.formatter -> t -> unit
