lib/harness/scenario.mli: Dbms Desim Hypervisor Power Rapilog Storage Workload
