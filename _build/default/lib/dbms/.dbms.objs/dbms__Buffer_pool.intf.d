lib/dbms/buffer_pool.mli: Desim Hypervisor Lsn Page Storage
