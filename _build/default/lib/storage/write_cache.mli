(** Volatile on-device write cache.

    Wrapping a device with a write cache makes plain writes complete as
    soon as the data is copied into cache RAM — fast, but *unsafe*: the
    cached data is lost on power cut. This is the "enable the disk's write
    cache" configuration that databases forbid for transaction logs, and
    it serves as the unsafe upper-bound baseline in the experiments.

    A background destager drains the cache to the underlying device in
    admission order. [write ~fua:true] and {!Block.flush} retain their
    durable semantics: FUA bypasses the cache, and flush blocks until the
    cache is empty and the underlying device has flushed. When the cache
    is full, writes block until the destager frees space. *)

type config = {
  capacity_bytes : int;
  admit_bandwidth : float;  (** cache copy-in speed, bytes per second *)
}

val default : config
(** 32 MiB cache, 200 MB/s copy-in. *)

val wrap : Desim.Sim.t -> config -> Block.t -> Block.t
(** The wrapped device shares the underlying media but has its own
    stats. *)
