lib/hypervisor/domain.mli: Desim
