bench/bench_residual_energy.ml: Audit Bench_support Desim Experiment Harness Int64 List Option Power Printf Rapilog Report Scenario Storage Time
