lib/hypervisor/virtio_blk.ml: Channel Desim Domain Ipc Printf Process Sim Storage String Time
