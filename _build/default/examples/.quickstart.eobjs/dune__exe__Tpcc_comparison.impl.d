examples/tpcc_comparison.ml: Array Desim Experiment Harness List Printf Report Scenario Sys
