(** The virtual-machine monitor: guest lifecycle and CPU cost model.

    A [Vmm.t] owns the physical CPU cores (a shared resource), the guest
    domain running the DBMS and its OS, and any trusted driver domains.
    Guest CPU work is inflated by the virtualisation overhead factor;
    with {!native} the same object models a bare-metal machine (zero
    overhead, free IPC, no isolation — there is still a guest domain, it
    is just not protected from anything).

    Crashing the guest cancels exactly the guest domain's processes:
    trusted domains — and therefore RapiLog's buffered log data — are
    untouched. That is the verified-isolation property of seL4 that the
    whole design leans on. *)

type config = {
  cpu_overhead : float;
      (** fractional slowdown of guest CPU work, e.g. 0.08 for 8% *)
  ipc : Ipc.cost;
  cores : int;
}

val native : config
(** Bare metal: zero overhead, free IPC, 4 cores. *)

val default_sel4 : config
(** The paper's platform: seL4-based VMM with a measurable but modest
    virtualisation overhead (8% CPU, paravirtual I/O costs). *)

type t

val create : Desim.Sim.t -> config -> t
val sim : t -> Desim.Sim.t
val config : t -> config

val guest : t -> Domain.t

val trusted_domain : t -> name:string -> Domain.t
(** Create a trusted driver domain (e.g. for the RapiLog logger). *)

val exec : t -> Desim.Time.span -> unit
(** Perform guest CPU work: occupies one core for the inflated
    duration. Must be called from a process. *)

val exec_trusted : t -> Desim.Time.span -> unit
(** CPU work in a trusted domain: occupies a core, no virtualisation
    inflation (trusted components run natively on seL4). *)

val spawn_guest : t -> ?name:string -> (unit -> unit) -> Desim.Process.handle

val crash_guest : t -> unit
(** The guest OS (and the DBMS with it) dies now. *)

val guest_alive : t -> bool

val attach_virtio_disk : t -> ?queue_depth:int -> Virtio_blk.backend -> Storage.Block.t
(** Expose a backend to the guest through the paravirtual block path,
    with the backend workers in a trusted driver domain. *)
