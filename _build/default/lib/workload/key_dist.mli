(** Key-popularity distributions for workload generators. *)

type t

val uniform : n:int -> t
val zipf : n:int -> theta:float -> t
val n : t -> int
val sample : Desim.Rng.t -> t -> int
(** A key in [\[0, n)]. *)
