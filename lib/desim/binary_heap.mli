(** Binary min-heap priority queue of simulation events.

    The reference {!Event_queue} backend: ordered by (time, sequence
    number) with the sequence number assigned on insertion, so two
    events scheduled for the same instant fire in insertion order. The
    heap is stored as unboxed parallel arrays, so {!add}, {!pop_min} and
    {!drain_one} perform no per-event heap allocation (array growth
    amortises away); only the option-returning conveniences {!pop} and
    {!peek_time} allocate.

    Since PR 8 the production [Event_queue] is the hierarchical
    {!Timer_wheel}; this module keeps the O(log n) heap alive as the
    model-test oracle and microbench baseline, and as the wheel's
    overflow store. Unlike the wheel, the heap accepts inserts in any
    time order. *)

type 'a t

val create : unit -> 'a t
(** An empty queue; the first {!add} allocates the backing arrays. *)

val add : 'a t -> time:Time.t -> 'a -> unit
(** Insert an event payload to fire at [time]. Allocation-free except
    when the heap has to grow. *)

val add_seq : 'a t -> time_ns:int -> seq:int -> 'a -> unit
(** Insert with a caller-supplied (time in ns, tie-break sequence) key.
    Used by {!Timer_wheel}, which numbers events across its wheel and
    this overflow heap with a single counter so the global (time, seq)
    order is preserved. Mixing [add_seq] with {!add} on one queue is the
    caller's responsibility: {!add} stamps sequence numbers from the
    queue's own counter. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Events currently queued. *)

val max_length : 'a t -> int
(** High-water mark of {!length} over the queue's lifetime. *)

val scheduled : 'a t -> int
(** Total events ever inserted via {!add} (the next sequence number). *)

val min_time : 'a t -> Time.t
(** Time of the earliest event. The queue must be non-empty (checked by
    an assert); callers guard with {!is_empty}. *)

val min_time_ns : 'a t -> int
(** {!min_time} in raw nanoseconds, for key comparisons. Non-empty. *)

val min_seq : 'a t -> int
(** Sequence number of the earliest event, for (time, seq) comparisons
    against another backend's head. Non-empty. *)

val pop_min : 'a t -> 'a
(** Remove and return the earliest event's payload without boxing it.
    The queue must be non-empty (checked by an assert). *)

val drain_one : 'a t -> f:(Time.t -> 'a -> unit) -> bool
(** [drain_one q ~f] pops the earliest event and applies [f time
    payload]; [false] (and [f] not called) when empty. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty.
    Convenience form; allocates the tuple and the [Some]. *)

val peek_time : 'a t -> Time.t option
(** Time of the earliest event without removing it. *)
