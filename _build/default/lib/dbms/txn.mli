(** Transactions and their manager. *)

type status = Active | Committed | Aborted

type t

val txid : t -> int
val status : t -> status
val locked_keys : t -> int list
(** Keys this transaction holds exclusive locks on, most recent first. *)

val undo_log : t -> (int * string) list
(** (key, before-image) pairs, most recent first; used for in-memory
    rollback on abort. *)

val record_lock : t -> int -> unit
val record_update : t -> key:int -> before:string -> unit
val set_status : t -> status -> unit

module Manager : sig
  type txn := t
  type t

  val create : ?first_txid:int -> unit -> t
  (** [first_txid] (default 1) lets a restarted engine continue the txid
      sequence past a previous incarnation's. *)

  val begin_txn : t -> txn
  (** Allocates the next txid (monotonically increasing). *)

  val finish : t -> txn -> status -> unit
  (** Mark the transaction's outcome and drop it from the active set;
      [status] must not be [Active]. *)

  val active_count : t -> int
  val started : t -> int
  val committed : t -> int
  val aborted : t -> int
end
