type tenant_audit = {
  a_tenants : int;
  a_acked : int;
  a_recovered : int;
  a_lost : int;
  a_extra : int;
  a_breaks : int;
  a_min_prefix_ratio : float;
}

let pp_audit fmt a =
  Format.fprintf fmt
    "tenants=%d acked=%d recovered=%d lost=%d extra=%d breaks=%d min_prefix=%.3f"
    a.a_tenants a.a_acked a.a_recovered a.a_lost a.a_extra a.a_breaks
    a.a_min_prefix_ratio

(* The tier keeps no data pages: every key would map far past the
   devices' durable extent, so recovery's page loads all skip and the
   pass reduces to scan + analysis — which is all the audit needs. *)
let inert_pool =
  {
    Dbms.Buffer_pool.default_config with
    Dbms.Buffer_pool.data_start_lba = max_int / 2;
  }

let shard_result tier shard =
  let device = Tier.shard_physical tier shard in
  Dbms.Recovery.run ~log_device:device ~data_device:device
    ~wal_config:(Tier.wal_config tier) ~pool_config:inert_pool

let tenant_seqs results =
  let seqs = Hashtbl.create 256 in
  List.iter
    (fun result ->
      List.iter
        (fun txid ->
          if Rapilog.Tenant.is_tagged txid then begin
            let tenant = Rapilog.Tenant.tenant_of txid in
            let seq = Rapilog.Tenant.seq_of txid in
            let prev =
              match Hashtbl.find_opt seqs tenant with Some l -> l | None -> []
            in
            Hashtbl.replace seqs tenant (seq :: prev)
          end)
        result.Dbms.Recovery.committed)
    results;
  Hashtbl.iter
    (fun tenant l -> Hashtbl.replace seqs tenant (List.sort_uniq Int.compare l))
    (Hashtbl.copy seqs);
  seqs

let prefix_length seqs =
  let rec go expect = function
    | seq :: rest when seq = expect -> go (expect + 1) rest
    | _ -> expect - 1
  in
  go 1 seqs

let audit tier =
  let results =
    List.init (Tier.shard_count tier) (fun s -> shard_result tier s)
  in
  let recovered = tenant_seqs results in
  let tenants = ref 0 in
  let acked_total = ref 0 in
  let recovered_total = ref 0 in
  let lost = ref 0 in
  let extra = ref 0 in
  let breaks = ref 0 in
  let min_ratio = ref nan in
  for tenant = 1 to Tier.tenant_count tier do
    let submitted = Tier.tenant_submitted tier ~tenant in
    let seqs =
      match Hashtbl.find_opt recovered tenant with Some l -> l | None -> []
    in
    if submitted > 0 || seqs <> [] then begin
      incr tenants;
      let acked = Tier.tenant_acked_count tier ~tenant in
      acked_total := !acked_total + acked;
      recovered_total := !recovered_total + List.length seqs;
      let in_recovered = Hashtbl.create (List.length seqs) in
      List.iter (fun s -> Hashtbl.replace in_recovered s ()) seqs;
      let tenant_lost = ref 0 in
      for seq = 1 to submitted do
        let was_acked = Tier.tenant_is_acked tier ~tenant ~seq in
        let durable = Hashtbl.mem in_recovered seq in
        if was_acked && not durable then incr tenant_lost;
        if durable && not was_acked then incr extra
      done;
      lost := !lost + !tenant_lost;
      if !tenant_lost > 0 then incr breaks;
      if submitted > 0 then begin
        let ratio =
          float_of_int (prefix_length seqs) /. float_of_int submitted
        in
        if Float.is_nan !min_ratio || ratio < !min_ratio then min_ratio := ratio
      end
    end
  done;
  {
    a_tenants = !tenants;
    a_acked = !acked_total;
    a_recovered = !recovered_total;
    a_lost = !lost;
    a_extra = !extra;
    a_breaks = !breaks;
    a_min_prefix_ratio = !min_ratio;
  }
