type t = {
  id : int;
  values : (int, string) Hashtbl.t;
  mutable page_lsn : Lsn.t;
  mutable rec_lsn : Lsn.t option;
}

let magic = 0x50414745l
let header_size = 28

let create ~id =
  { id; values = Hashtbl.create 16; page_lsn = Lsn.zero; rec_lsn = None }

let keys_of_page ~keys_per_page id = (id * keys_per_page, (id + 1) * keys_per_page)
let page_of_key ~keys_per_page key = key / keys_per_page

let get t ~key = Hashtbl.find_opt t.values key

let set t ~key ~value ~lsn =
  Hashtbl.replace t.values key value;
  t.page_lsn <- Lsn.max t.page_lsn lsn

let is_dirty t = t.rec_lsn <> None

let serialize t ~page_bytes =
  let entries = Buffer.create 512 in
  let add_entry key value =
    let b = Bytes.create 12 in
    Bytes.set_int64_le b 0 (Int64.of_int key);
    Bytes.set_int32_le b 8 (Int32.of_int (String.length value));
    Buffer.add_bytes entries b;
    Buffer.add_string entries value
  in
  (* Deterministic image: entries in key order. *)
  let keys = List.sort Int.compare (List.of_seq (Hashtbl.to_seq_keys t.values)) in
  List.iter (fun key -> add_entry key (Hashtbl.find t.values key)) keys;
  let body = Buffer.contents entries in
  if header_size + String.length body > page_bytes then
    invalid_arg "Page.serialize: contents exceed page size";
  let image = Bytes.make page_bytes '\000' in
  Bytes.set_int32_le image 0 magic;
  Bytes.set_int64_le image 4 (Int64.of_int t.id);
  Bytes.set_int64_le image 12 (Int64.of_int (Lsn.to_int t.page_lsn));
  Bytes.set_int32_le image 20 (Int32.of_int (List.length keys));
  Bytes.set_int32_le image 24 (Crc32.digest_string body);
  Bytes.blit_string body 0 image header_size (String.length body);
  Bytes.unsafe_to_string image

let deserialize image =
  if String.length image < header_size then None
  else if String.get_int32_le image 0 <> magic then None
  else begin
    let id = Int64.to_int (String.get_int64_le image 4) in
    let page_lsn = Int64.to_int (String.get_int64_le image 12) in
    let count = Int32.to_int (String.get_int32_le image 20) in
    let crc = String.get_int32_le image 24 in
    if id < 0 || page_lsn < 0 || count < 0 then None
    else begin
      let t = create ~id in
      t.page_lsn <- Lsn.of_int page_lsn;
      let rec read_entry pos remaining =
        if remaining = 0 then
          (* CRC covers exactly the entries region we just walked. *)
          if Crc32.digest image ~pos:header_size ~len:(pos - header_size) = crc
          then Some t
          else None
        else if pos + 12 > String.length image then None
        else begin
          let key = Int64.to_int (String.get_int64_le image pos) in
          let len = Int32.to_int (String.get_int32_le image (pos + 8)) in
          if len < 0 || pos + 12 + len > String.length image then None
          else begin
            Hashtbl.replace t.values key (String.sub image (pos + 12) len);
            read_entry (pos + 12 + len) (remaining - 1)
          end
        end
      in
      read_entry header_size count
    end
  end
