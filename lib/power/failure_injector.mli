(** Failure injection for durability experiments. *)

val power_cut_between :
  Desim.Sim.t -> Power_domain.t -> earliest:Desim.Time.t -> latest:Desim.Time.t -> Desim.Time.t
(** Schedule a power cut at an instant drawn uniformly from the
    half-open interval [\[earliest, latest)] using the simulation's root
    generator; returns the chosen instant. [latest] itself is never
    chosen. [earliest = latest] is the degenerate interval: the cut is
    scheduled deterministically at [earliest] and no randomness is
    consumed. Raises [Invalid_argument] if [latest] is before
    [earliest]. *)

val crash_at : Desim.Sim.t -> Desim.Time.t -> (unit -> unit) -> unit
(** Run an arbitrary crash action (e.g. halting a guest OS) at a given
    instant. *)

val crash_between :
  Desim.Sim.t -> earliest:Desim.Time.t -> latest:Desim.Time.t -> (unit -> unit) -> Desim.Time.t
(** Like {!power_cut_between} for an arbitrary crash action: the same
    half-open [\[earliest, latest)] draw, the same degenerate and error
    cases. *)
