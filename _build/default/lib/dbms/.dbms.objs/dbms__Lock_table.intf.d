lib/dbms/lock_table.mli: Desim
