module Semaphore = struct
  type t = {
    sim : Sim.t;
    mutable permits : int;
    waiters : unit Process.resumer Queue.t;
  }

  let create sim n =
    assert (n >= 0);
    { sim; permits = n; waiters = Queue.create () }

  let acquire t =
    if t.permits > 0 then t.permits <- t.permits - 1
    else Process.suspend (fun resumer -> Queue.push resumer t.waiters)

  let try_acquire t =
    if t.permits > 0 then begin
      t.permits <- t.permits - 1;
      true
    end
    else false

  let release t =
    match Queue.take_opt t.waiters with
    | Some resumer -> Sim.schedule_now t.sim (fun () -> resumer ())
    | None -> t.permits <- t.permits + 1

  let available t = t.permits
  let waiting t = Queue.length t.waiters
end

module Mutex = struct
  type t = Semaphore.t

  let create sim = Semaphore.create sim 1
  let lock = Semaphore.acquire
  let unlock = Semaphore.release

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Latch = struct
  type t = {
    sim : Sim.t;
    mutable count : int;
    waiters : unit Process.resumer Queue.t;
  }

  let create sim count =
    assert (count > 0);
    { sim; count; waiters = Queue.create () }

  let count_down t =
    assert (t.count > 0);
    t.count <- t.count - 1;
    if t.count = 0 then
      Queue.iter
        (fun resumer -> Sim.schedule_now t.sim (fun () -> resumer ()))
        t.waiters

  let wait t =
    if t.count > 0 then
      Process.suspend (fun resumer -> Queue.push resumer t.waiters)

  let pending t = t.count
end

module Condition = struct
  type t = { sim : Sim.t; waiters : unit Process.resumer Queue.t }

  let create sim = { sim; waiters = Queue.create () }
  let wait t = Process.suspend (fun resumer -> Queue.push resumer t.waiters)

  let signal t =
    match Queue.take_opt t.waiters with
    | Some resumer -> Sim.schedule_now t.sim (fun () -> resumer ())
    | None -> ()

  let broadcast t =
    (* Drain the queue first so that waiters re-registering during their
       wake-up are not woken twice in the same broadcast. *)
    let woken = Queue.create () in
    Queue.transfer t.waiters woken;
    Queue.iter (fun resumer -> Sim.schedule_now t.sim (fun () -> resumer ())) woken

  let waiting t = Queue.length t.waiters
end
