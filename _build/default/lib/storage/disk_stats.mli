(** Per-device operation counters. *)

type t

val create : unit -> t

val record_read : t -> sectors:int -> service:Desim.Time.span -> unit
val record_write : t -> sectors:int -> service:Desim.Time.span -> unit
val record_flush : t -> service:Desim.Time.span -> unit

val reads : t -> int
val writes : t -> int
val flushes : t -> int
val sectors_read : t -> int
val sectors_written : t -> int

val busy : t -> Desim.Time.span
(** Total time the device spent servicing requests. *)

val write_service : t -> Desim.Stats.Sample.t
(** Per-write service times in microseconds. *)

val pp : Format.formatter -> t -> unit
