open Desim

type cost = { submit : Time.span; complete : Time.span }

let default_sel4 = { submit = Time.us 12; complete = Time.us 12 }
let free = { submit = Time.zero_span; complete = Time.zero_span }

let pay span =
  if Time.compare_span span Time.zero_span > 0 then Process.sleep span

let pay_submit cost = pay cost.submit
let pay_complete cost = pay cost.complete
let round_trip cost = Time.add_span cost.submit cost.complete
