type info = { model : string; sector_size : int; capacity_sectors : int }

type ops = {
  op_read : lba:int -> sectors:int -> string;
  op_write : lba:int -> data:string -> fua:bool -> unit;
  op_flush : unit -> unit;
  op_power_cut : unit -> unit;
  op_durable_read : lba:int -> sectors:int -> string;
  op_durable_extent : unit -> int;
}

type t = { info : info; stats : Disk_stats.t; ops : ops }

let make ~info ~stats ~ops = { info; stats; ops }
let info t = t.info
let stats t = t.stats

let check_range t ~lba ~sectors =
  assert (lba >= 0 && sectors > 0);
  assert (lba + sectors <= t.info.capacity_sectors)

let read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  t.ops.op_read ~lba ~sectors

let write t ?(fua = false) ~lba data =
  let len = String.length data in
  assert (len > 0 && len mod t.info.sector_size = 0);
  check_range t ~lba ~sectors:(len / t.info.sector_size);
  t.ops.op_write ~lba ~data ~fua

let flush t = t.ops.op_flush ()
let power_cut t = t.ops.op_power_cut ()

let durable_read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  t.ops.op_durable_read ~lba ~sectors

let durable_extent t = t.ops.op_durable_extent ()

let sectors_of_bytes t bytes =
  (bytes + t.info.sector_size - 1) / t.info.sector_size

module Media = struct
  type t = {
    sector_size : int;
    capacity_sectors : int;
    sectors : (int, string) Hashtbl.t;
    mutable extent : int;
  }

  let create ~sector_size ~capacity_sectors =
    assert (sector_size > 0 && capacity_sectors > 0);
    { sector_size; capacity_sectors; sectors = Hashtbl.create 4096; extent = 0 }

  let sector_size t = t.sector_size
  let capacity_sectors t = t.capacity_sectors

  let read t ~lba ~sectors =
    let buf = Bytes.make (sectors * t.sector_size) '\000' in
    for i = 0 to sectors - 1 do
      match Hashtbl.find_opt t.sectors (lba + i) with
      | Some s -> Bytes.blit_string s 0 buf (i * t.sector_size) t.sector_size
      | None -> ()
    done;
    Bytes.unsafe_to_string buf

  let write_sectors t ~lba ~data ~count =
    for i = 0 to count - 1 do
      Hashtbl.replace t.sectors (lba + i)
        (String.sub data (i * t.sector_size) t.sector_size)
    done;
    if lba + count > t.extent then t.extent <- lba + count

  let write t ~lba ~data =
    let len = String.length data in
    assert (len mod t.sector_size = 0);
    write_sectors t ~lba ~data ~count:(len / t.sector_size)

  let write_torn t ~rng ~lba ~data =
    let len = String.length data in
    assert (len mod t.sector_size = 0);
    let total = len / t.sector_size in
    let persisted = Desim.Rng.int rng (total + 1) in
    if persisted > 0 then write_sectors t ~lba ~data ~count:persisted

  let extent t = t.extent
  let check_range = check_range
end
