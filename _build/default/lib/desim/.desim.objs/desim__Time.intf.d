lib/desim/time.mli: Format
