type status = Active | Committed | Aborted

type t = {
  id : int;
  mutable status : status;
  mutable locks : int list;
  mutable undo : (int * string) list;
}

let txid t = t.id
let status t = t.status
let locked_keys t = t.locks
let undo_log t = t.undo
let record_lock t key = t.locks <- key :: t.locks
let record_update t ~key ~before = t.undo <- (key, before) :: t.undo
let set_status t status = t.status <- status

module Manager = struct
  type nonrec txn = t

  type t = {
    mutable next_txid : int;
    active : (int, txn) Hashtbl.t;
    mutable committed : int;
    mutable aborted : int;
  }

  let create ?(first_txid = 1) () =
    assert (first_txid >= 1);
    { next_txid = first_txid; active = Hashtbl.create 64; committed = 0; aborted = 0 }

  let begin_txn t =
    let txn = { id = t.next_txid; status = Active; locks = []; undo = [] } in
    t.next_txid <- t.next_txid + 1;
    Hashtbl.replace t.active txn.id txn;
    txn

  let finish t txn status =
    assert (status <> Active);
    txn.status <- status;
    Hashtbl.remove t.active txn.id;
    match status with
    | Committed -> t.committed <- t.committed + 1
    | Aborted -> t.aborted <- t.aborted + 1
    | Active -> assert false

  let active_count t = Hashtbl.length t.active
  let started t = t.next_txid - 1
  let committed t = t.committed
  let aborted t = t.aborted
end
