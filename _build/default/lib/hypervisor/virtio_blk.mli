(** Paravirtualised split block driver.

    The guest-side frontend presents an ordinary {!Storage.Block.t}; each
    request pays the {!Ipc} submission cost, travels over a queue to a
    pool of backend worker processes running in the backend domain, and
    the completion pays the {!Ipc} completion cost before waking the
    guest process.

    Requests already queued when the guest crashes are still serviced by
    the backend (the queue lives outside the guest); their completions
    wake nobody. This mirrors the real split-driver structure, and it is
    what lets RapiLog's trusted logger keep log data that the guest had
    already handed over. *)

type backend = {
  be_info : Storage.Block.info;
  be_read : lba:int -> sectors:int -> string;
  be_write : lba:int -> data:string -> fua:bool -> unit;
  be_flush : unit -> unit;
  be_durable_read : lba:int -> sectors:int -> string;
  be_durable_extent : unit -> int;
}

val backend_of_block : Storage.Block.t -> backend
(** Pass-through backend exposing a physical device (the plain
    virtualised-disk configuration). *)

val create :
  Desim.Sim.t ->
  ipc:Ipc.cost ->
  backend_domain:Domain.t ->
  ?queue_depth:int ->
  backend ->
  Storage.Block.t
(** [queue_depth] (default 8) backend workers service requests
    concurrently; a physical-device backend serialises internally anyway,
    while the RapiLog logger backend benefits from the concurrency. *)
