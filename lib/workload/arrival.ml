open Desim

type shape =
  | Poisson of { rate : float }
  | Flash_crowd of {
      base : float;
      mult : float;
      at : Time.span;
      decay : Time.span;
    }
  | Diurnal of { mean : float; amplitude : float; period : Time.span }

type process = Closed_loop | Open_loop of shape

let shape_name = function
  | Poisson _ -> "poisson"
  | Flash_crowd _ -> "flash-crowd"
  | Diurnal _ -> "diurnal"

let process_name = function
  | Closed_loop -> "closed-loop"
  | Open_loop shape -> shape_name shape

let pi = 4.0 *. atan 1.0

let rate_at shape t =
  let t_s = Time.span_to_float_sec t in
  match shape with
  | Poisson { rate } -> rate
  | Flash_crowd { base; mult; at; decay } ->
      let at_s = Time.span_to_float_sec at in
      if t_s < at_s then base
      else
        let decay_s = Time.span_to_float_sec decay in
        base *. (1.0 +. ((mult -. 1.0) *. exp (-.(t_s -. at_s) /. decay_s)))
  | Diurnal { mean; amplitude; period } ->
      let period_s = Time.span_to_float_sec period in
      mean *. (1.0 +. (amplitude *. sin (2.0 *. pi *. t_s /. period_s)))

let max_rate = function
  | Poisson { rate } -> rate
  | Flash_crowd { base; mult; _ } -> base *. Float.max 1.0 mult
  | Diurnal { mean; amplitude; _ } -> mean *. (1.0 +. amplitude)

let expected_arrivals shape ~until =
  let t_s = Time.span_to_float_sec until in
  match shape with
  | Poisson { rate } -> rate *. t_s
  | Flash_crowd { base; mult; at; decay } ->
      let at_s = Time.span_to_float_sec at in
      let flat = base *. Float.min t_s at_s in
      if t_s <= at_s then flat
      else
        let decay_s = Time.span_to_float_sec decay in
        let dt = t_s -. at_s in
        flat
        +. (base *. dt)
        +. (base *. (mult -. 1.0) *. decay_s *. (1.0 -. exp (-.dt /. decay_s)))
  | Diurnal { mean; amplitude; period } ->
      let period_s = Time.span_to_float_sec period in
      let w = 2.0 *. pi /. period_s in
      (mean *. t_s) +. (mean *. amplitude /. w *. (1.0 -. cos (w *. t_s)))

let validate_shape = function
  | Poisson { rate } ->
      if rate <= 0.0 then Error "poisson arrival rate must be > 0" else Ok ()
  | Flash_crowd { base; mult; at; decay } ->
      if base <= 0.0 then Error "flash-crowd base rate must be > 0"
      else if mult < 1.0 then Error "flash-crowd multiplier must be >= 1"
      else if Time.compare_span at Time.zero_span < 0 then
        Error "flash-crowd onset must be >= 0"
      else if Time.compare_span decay Time.zero_span <= 0 then
        Error "flash-crowd decay constant must be > 0"
      else Ok ()
  | Diurnal { mean; amplitude; period } ->
      if mean <= 0.0 then Error "diurnal mean rate must be > 0"
      else if amplitude < 0.0 || amplitude > 1.0 then
        Error "diurnal amplitude must be in [0, 1]"
      else if Time.compare_span period Time.zero_span <= 0 then
        Error "diurnal period must be > 0"
      else Ok ()

type t = { shape : shape; rng : Rng.t; lambda_max : float }

let create rng shape =
  (match validate_shape shape with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Arrival.create: " ^ msg));
  { shape; rng = Rng.split rng; lambda_max = max_rate shape }

(* Ogata thinning: candidate gaps from Exp(lambda_max), each kept with
   probability rate(t)/lambda_max. The candidate stream and the
   accept/reject draws come from one private split stream, so the whole
   arrival sequence is a pure function of (seed, elapsed time) — replays
   and parallel fan-outs see identical arrivals. *)
let next_gap t ~since =
  let rec candidate now =
    let gap = Rng.exponential t.rng ~mean:(1.0 /. t.lambda_max) in
    let cand = now +. gap in
    if Rng.float t.rng *. t.lambda_max
       <= rate_at t.shape (Time.span_of_float_sec cand)
    then cand
    else candidate cand
  in
  let since_s = Time.span_to_float_sec since in
  let at = candidate since_s in
  Time.sub_span (Time.span_of_float_sec at) since

let times shape ~seed ~until ~limit =
  let sampler = create (Rng.create seed) shape in
  let rec go acc since n =
    if n >= limit then List.rev acc
    else
      let at = Time.add_span since (next_gap sampler ~since) in
      if Time.compare_span at until > 0 then List.rev acc
      else go (at :: acc) at (n + 1)
  in
  go [] Time.zero_span 0
