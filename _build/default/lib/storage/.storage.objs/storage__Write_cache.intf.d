lib/storage/write_cache.mli: Block Desim
