open Desim

type tracking = {
  model : (int, string) Hashtbl.t;
  mutable acked : int list;
  mutable window_start : Time.t option;
  mutable window_end : Time.t option;
  mutable in_window : int;
  latencies : Stats.Sample.t;
}

let make_tracking () =
  {
    model = Hashtbl.create 4096;
    acked = [];
    window_start = None;
    window_end = None;
    in_window = 0;
    latencies = Stats.Sample.create ();
  }

(* Wire form of a transaction's writes inside a journal [Ack] record:
   per write an LE int64 key, an LE int64 value length (-1 = delete),
   then the value bytes. {!decode_ack_writes} inverts it. *)
let encode_ack_writes writes =
  let buf = Buffer.create 64 in
  List.iter
    (fun (key, value) ->
      Buffer.add_int64_le buf (Int64.of_int key);
      match value with
      | Some v ->
          Buffer.add_int64_le buf (Int64.of_int (String.length v));
          Buffer.add_string buf v
      | None -> Buffer.add_int64_le buf (-1L))
    writes;
  Buffer.contents buf

let decode_ack_writes encoded =
  let pos = ref 0 in
  let int64 () =
    let v = Int64.to_int (String.get_int64_le encoded !pos) in
    pos := !pos + 8;
    v
  in
  let writes = ref [] in
  while !pos < String.length encoded do
    let key = int64 () in
    let len = int64 () in
    if len < 0 then writes := (key, None) :: !writes
    else begin
      writes := (key, Some (String.sub encoded !pos len)) :: !writes;
      pos := !pos + len
    end
  done;
  List.rev !writes

let record_ack track sim (result : Dbms.Engine.txn_result) =
  if result.Dbms.Engine.writes <> [] then begin
    track.acked <- result.Dbms.Engine.txid :: track.acked;
    (match Desim.Journal.recording () with
    | Some j ->
        Desim.Journal.ack j sim ~txid:result.Dbms.Engine.txid
          ~writes:(encode_ack_writes result.Dbms.Engine.writes)
    | None -> ());
    List.iter
      (fun (key, value) ->
        match value with
        | Some v -> Hashtbl.replace track.model key v
        | None -> Hashtbl.remove track.model key)
      result.Dbms.Engine.writes
  end;
  match (track.window_start, track.window_end) with
  | Some ws, Some we ->
      let now = Sim.now sim in
      if Time.(ws <= now) && Time.(now < we) then begin
        track.in_window <- track.in_window + 1;
        Stats.Sample.add_span track.latencies result.Dbms.Engine.latency
      end
  | Some _, None | None, Some _ | None, None -> ()

let load_chunk_rows = 64

(* Populate the schema through ordinary transactions, then hand over. *)
let spawn_loader (built : Scenario.built) track ~after_load =
  let rows = built.Scenario.generator.Scenario.initial_rows in
  ignore
    (Hypervisor.Vmm.spawn_guest built.Scenario.vmm ~name:"loader" (fun () ->
         let rec load = function
           | [] -> ()
           | rows ->
               let chunk, rest =
                 let rec split i acc = function
                   | [] -> (List.rev acc, [])
                   | rows when i = load_chunk_rows -> (List.rev acc, rows)
                   | row :: rows -> split (i + 1) (row :: acc) rows
                 in
                 split 0 [] rows
               in
               let ops =
                 List.map
                   (fun (key, value) -> Dbms.Engine.Put { key; value })
                   chunk
               in
               let result = Dbms.Engine.exec built.Scenario.engine ops in
               record_ack track built.Scenario.sim result;
               load rest
         in
         load rows;
         after_load ()))

let spawn_clients (built : Scenario.built) track =
  ignore
    (Workload.Client.spawn ~vmm:built.Scenario.vmm
       { Workload.Client.think_time = built.Scenario.config.Scenario.think_time }
       ~count:built.Scenario.config.Scenario.clients
       ~gen:(fun ~client:_ -> built.Scenario.generator.Scenario.next_txn ())
       ~engine:built.Scenario.engine
       ~on_commit:(fun ~client:_ result -> record_ack track built.Scenario.sim result))
