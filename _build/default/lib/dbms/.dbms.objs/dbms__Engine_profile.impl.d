lib/dbms/engine_profile.ml: Desim Format List String Time
