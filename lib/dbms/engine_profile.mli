(** Parameter profiles standing in for the paper's database engines.

    The paper evaluates RapiLog under PostgreSQL, MySQL/InnoDB and a
    commercial engine. For the logging path those engines differ in the
    dimensions captured here: CPU cost per transaction and per row, how
    verbose their log records are, and how they batch commit flushes.
    The profiles are calibrated to plausible-era magnitudes, not to any
    specific measurement — the experiments compare shapes across
    profiles, exactly as the paper compares shapes across engines. *)

type t = {
  name : string;
  txn_base_cpu : Desim.Time.span;  (** parse/plan/network per transaction *)
  op_cpu : Desim.Time.span;  (** per row touched *)
  update_meta_bytes : int;
      (** extra log bytes per update beyond the images (headers, index
          entries, engine bookkeeping), logged as a padding record *)
  commit_policy : Commit_policy.t;
      (** how concurrent commit flushes batch into device writes; all
          default profiles use [Fixed 1] (mutex-structured group commit,
          no deliberate gather wait) *)
  commit_delay : Desim.Time.span;
      (** deliberate pre-force wait to gather a larger group (PostgreSQL's
          [commit_delay]); zero for all default profiles *)
}

val postgres_like : t
val innodb_like : t
val commercial_like : t

val all : t list

val by_name : string -> t option

val with_commit_policy : t -> Commit_policy.t -> t

val with_group_commit : t -> bool -> t
(** Compatibility shim over {!with_commit_policy}: [true] is
    [Commit_policy.Fixed 1] (the old [group_commit = true]), [false] is
    [Commit_policy.Serial] (one physical write per commit). *)

val pp : Format.formatter -> t -> unit
