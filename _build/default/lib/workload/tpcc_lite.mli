(** A TPC-C-flavoured OLTP workload.

    This is a scaled-down New-Order/Payment/Order-Status/Delivery/
    Stock-Level mix over a warehouse/district/customer/stock schema
    flattened onto the engine's key–value interface. It is not a
    conforming TPC-C implementation — it reproduces the *logging
    profile* the paper's evaluation workload exercises: a commit rate
    dominated by small transactions, each generating a few hundred bytes
    to a few KiB of log, with occasional read-only transactions that
    never touch the log device. *)

type config = {
  warehouses : int;
  items_per_warehouse : int;
  customers_per_district : int;  (** 10 districts per warehouse, fixed *)
  value_bytes : int;  (** row payload size *)
}

val default_config : config
(** 2 warehouses, 200 items, 30 customers per district, 96-byte rows. *)

type kind = New_order | Payment | Order_status | Delivery | Stock_level

val kind_name : kind -> string

type t

val create : Desim.Rng.t -> config -> t
(** The generator owns a split of the given stream. *)

val config : t -> config

val initial_rows : t -> (int * string) list
(** Every warehouse, district, customer and stock row; load these before
    the measurement phase. *)

val next : t -> kind * Dbms.Engine.op list
(** Sample a transaction from the standard-ish mix
    (45/43/4/4/4 NO/P/OS/D/SL). *)

val mix_counts : t -> (kind * int) list
(** How many of each kind {!next} has produced. *)
