(** In-memory data pages and their on-disk image.

    A page holds the values of the keys mapped to it (a fixed-size key
    range per page). The image format is
    {v
      magic     u32   0x50414745 ("PAGE")
      page_id   u64
      page_lsn  u64
      count     u32
      crc       u32   over the entries region
      entries   count * (key u64, len u32, value bytes)
      padding   zeros to the page size
    v}
    [page_lsn] is the end LSN of the last logged update applied to the
    page, and drives the redo-pass "already applied?" test. [rec_lsn] is
    in-memory only: the LSN that first dirtied the page since it was last
    clean — the checkpoint's redo-point computation needs it. *)

type t = {
  id : int;
  values : (int, string) Hashtbl.t;
  mutable page_lsn : Lsn.t;
  mutable rec_lsn : Lsn.t option;  (** [None] when clean *)
}

val create : id:int -> t

val keys_of_page : keys_per_page:int -> int -> int * int
(** [keys_of_page ~keys_per_page id] is the key range [\[lo, hi)] the
    page covers. *)

val page_of_key : keys_per_page:int -> int -> int

val get : t -> key:int -> string option
val set : t -> key:int -> value:string -> lsn:Lsn.t -> unit
(** Stores the value and advances [page_lsn]; does not touch [rec_lsn]
    (dirtiness is the buffer pool's business). *)

val is_dirty : t -> bool

val serialize : t -> page_bytes:int -> string
(** Raises if the contents do not fit; callers bound value sizes. *)

val deserialize : string -> t option
(** [None] when the image is not a valid page (unwritten or torn). *)
