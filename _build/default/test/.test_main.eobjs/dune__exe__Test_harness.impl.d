test/test_harness.ml: Alcotest Audit Dbms Desim Experiment Harness List Printf Rapilog Scenario Storage String Testu Time Workload
