(* Tests for the simulated network layer and the replicated trusted
   logger (RapiLog-R): per-link FIFO delivery, fault-model bookkeeping,
   seed-determinism of the delivery schedule, and the machine-loss
   durability asymmetry between local and replicated RapiLog. *)

open Desim
open Testu

(* -- link harness -------------------------------------------------------- *)

(* Drive one link from a sender process: [sends] is a list of
   (gap_us, bytes) pairs; message [i] is payload [i]. Returns the link
   and the delivery trace as [(payload, delivered_at_ns)] in order. *)
let run_link ?(seed = 7L) ?(setup = fun _ _ -> ()) config sends =
  let sim = Sim.create ~seed () in
  let trace = ref [] in
  let link =
    Net.Link.create sim config ~dummy:(-1) ~deliver:(fun payload ->
        trace := (payload, Time.to_ns (Sim.now sim)) :: !trace)
  in
  setup sim link;
  ignore
    (Process.spawn sim ~name:"sender" (fun () ->
         List.iteri
           (fun i (gap_us, bytes) ->
             if gap_us > 0 then Process.sleep (Time.us gap_us);
             Net.Link.send link ~bytes i)
           sends));
  Sim.run sim;
  (link, List.rev !trace)

let gen_latency =
  let open QCheck2.Gen in
  let* kind = int_range 0 2 in
  let* a = int_range 0 200 in
  let* b = int_range 0 200 in
  return
    (match kind with
    | 0 -> Net.Link.Constant (Time.us a)
    | 1 -> Net.Link.Uniform (Time.us (min a b), Time.us (max a b))
    | _ -> Net.Link.Exponential (Time.us (a + 1)))

let gen_config =
  let open QCheck2.Gen in
  let* latency = gen_latency in
  let* bandwidth = oneofl [ 0.; 1e8; 1.25e9 ] in
  let* drop_probability = oneofl [ 0.; 0.1; 0.4 ] in
  return { Net.Link.latency; bandwidth; drop_probability }

let gen_sends =
  let open QCheck2.Gen in
  list_size (int_range 1 40) (pair (int_range 0 50) (int_range 0 4096))

let gen_seed = QCheck2.Gen.(map Int64.of_int (int_range 1 1_000_000))

(* Per-link FIFO: whatever the latency draws and drops, delivered
   payloads are a strictly increasing subsequence of the send order and
   delivery times never go backwards. *)
let fifo_law (config, sends, seed) =
  let link, trace = run_link ~seed config sends in
  let rec check_mono last_id last_ns = function
    | [] -> true
    | (id, ns) :: rest ->
        id > last_id && ns >= last_ns && check_mono id ns rest
  in
  check_mono (-1) (-1) trace
  && Net.Link.sent link = List.length sends
  && Net.Link.delivered link = List.length trace
  && Net.Link.delivered link + Net.Link.dropped link = Net.Link.sent link
  && Net.Link.in_flight link = 0

(* Seed-determinism: the delivery schedule (payloads and timestamps) is
   a pure function of (seed, config, send sequence). *)
let determinism_law (config, sends, seed) =
  let _, t1 = run_link ~seed config sends in
  let _, t2 = run_link ~seed config sends in
  t1 = t2

(* Partition before any send, heal at a fixed later instant: exactly the
   non-dropped backlog arrives, all of it at or after the heal, FIFO. *)
let partition_heal_law (config, sends, seed) =
  let heal_at = Time.of_ns 500_000_000 (* beyond any send + latency *) in
  let link, trace =
    run_link ~seed config sends ~setup:(fun sim link ->
        Net.Link.partition link;
        Sim.schedule_at sim heal_at (fun () -> Net.Link.heal link))
  in
  let heal_ns = Time.to_ns heal_at in
  List.for_all (fun (_, ns) -> ns >= heal_ns) trace
  && Net.Link.delivered link = List.length sends - Net.Link.dropped link
  && trace = List.sort compare trace (* FIFO: ids increasing *)

let sever_discards () =
  let link, trace =
    run_link { Net.Link.default with drop_probability = 0. }
      [ (0, 512); (1, 512); (2, 512) ]
      ~setup:(fun sim link ->
        Net.Link.partition link;
        (* All three messages are queued behind the partition when the
           peer dies; everything must be discarded, nothing delivered. *)
        Sim.schedule_at sim (Time.of_ns 400_000_000) (fun () ->
            Net.Link.sever link))
  in
  Alcotest.(check (list (pair int int))) "nothing delivered" [] trace;
  Alcotest.(check int) "backlog counted as dropped" 3 (Net.Link.dropped link);
  Net.Link.send link 99;
  Alcotest.(check int) "post-sever send not accepted" 3 (Net.Link.sent link);
  Alcotest.(check int) "post-sever send counted dropped" 4 (Net.Link.dropped link)

(* Loss wins over partition: severing a partitioned link drops the
   partition state with the backlog, and a late heal is a no-op — it
   must not resurrect traffic to a dead peer. *)
let sever_clears_partition () =
  let link, trace =
    run_link { Net.Link.default with drop_probability = 0. }
      [ (0, 512); (1, 512) ]
      ~setup:(fun sim link ->
        Net.Link.partition link;
        Sim.schedule_at sim (Time.of_ns 400_000_000) (fun () ->
            Net.Link.sever link;
            Alcotest.(check bool) "partition state dropped at sever" false
              (Net.Link.partitioned link)))
  in
  Alcotest.(check (list (pair int int))) "nothing delivered" [] trace;
  Net.Link.heal link;
  Alcotest.(check bool) "late heal leaves the link unpartitioned" false
    (Net.Link.partitioned link);
  Alcotest.(check int) "late heal flushes nothing" 0 (Net.Link.delivered link)

let constant_latency_exact () =
  let config =
    {
      Net.Link.latency = Net.Link.Constant (Time.us 40);
      bandwidth = 0.;
      drop_probability = 0.;
    }
  in
  let _, trace = run_link config [ (0, 0) ] in
  match trace with
  | [ (0, ns) ] -> Alcotest.(check int) "delivered at latency" 40_000 ns
  | _ -> Alcotest.fail "expected exactly one delivery"

let bandwidth_serialises () =
  (* Two back-to-back 1 MB messages on a 1 GB/s link, zero propagation
     delay: the second is serialised behind the first, so deliveries are
     1 ms apart. *)
  let config =
    {
      Net.Link.latency = Net.Link.Constant Time.zero_span;
      bandwidth = 1e9;
      drop_probability = 0.;
    }
  in
  let _, trace = run_link config [ (0, 1_000_000); (0, 1_000_000) ] in
  match trace with
  | [ (0, a); (1, b) ] ->
      Alcotest.(check int) "first after its own serialisation" 1_000_000 a;
      Alcotest.(check int) "second a full serialisation later" 2_000_000 b
  | _ -> Alcotest.fail "expected exactly two deliveries"

(* -- fault scheduling ----------------------------------------------------- *)

let outage_in_bounds () =
  let sim = Sim.create ~seed:11L () in
  let cut = ref None and healed = ref None in
  let earliest = Time.of_ns 1_000_000 and latest = Time.of_ns 5_000_000 in
  let cut_at, heal_at =
    Net.Fault.outage_between sim ~earliest ~latest ~min_outage:(Time.us 10)
      ~max_outage:(Time.us 500)
      ~partition:(fun () -> cut := Some (Sim.now sim))
      ~heal:(fun () -> healed := Some (Sim.now sim))
  in
  Sim.run sim;
  Alcotest.(check bool) "cut fired at its instant" true (!cut = Some cut_at);
  Alcotest.(check bool) "heal fired at its instant" true (!healed = Some heal_at);
  Alcotest.(check bool) "cut within [earliest, latest)" true
    (Time.compare cut_at earliest >= 0 && Time.compare cut_at latest < 0);
  let outage = Time.diff heal_at cut_at in
  Alcotest.(check bool) "outage within [min, max)" true
    (Time.compare_span outage (Time.us 10) >= 0
    && Time.compare_span outage (Time.us 500) < 0)

let outage_degenerate_and_reversed () =
  let sim = Sim.create ~seed:3L () in
  let at = Time.of_ns 2_000_000 in
  let cut_at, heal_at =
    Net.Fault.outage_between sim ~earliest:at ~latest:at ~min_outage:(Time.us 7)
      ~max_outage:(Time.us 7)
      ~partition:(fun () -> ())
      ~heal:(fun () -> ())
  in
  Alcotest.(check int) "degenerate instant" (Time.to_ns at) (Time.to_ns cut_at);
  check_span "degenerate outage" (Time.us 7) (Time.diff heal_at cut_at);
  Alcotest.check_raises "reversed bounds"
    (Invalid_argument "Net.Fault: latest is before earliest") (fun () ->
      ignore
        (Net.Fault.outage_between sim
           ~earliest:(Time.of_ns 9_000_000)
           ~latest:at ~min_outage:Time.zero_span ~max_outage:Time.zero_span
           ~partition:ignore ~heal:ignore));
  Sim.run sim

(* -- replication ---------------------------------------------------------- *)

let replicated_scenario ?(policy = Net.Replication.Replica_ack) () =
  {
    Harness.Scenario.default with
    Harness.Scenario.mode = Harness.Scenario.Rapilog_replicated;
    workload =
      Harness.Scenario.Micro
        {
          Workload.Microbench.default_config with
          Workload.Microbench.keys = 64;
          value_bytes = 32;
        };
    clients = 2;
    seed = 99L;
    warmup = Time.ms 50;
    duration = Time.ms 400;
    net = { Net.Replication.default with Net.Replication.policy };
  }

(* Drive the replicated datapath directly — logger, links and replica
   wired by hand, no background scenario machinery — and check the
   counters line up end to end. *)
let replication_counters () =
  let sim = Sim.create ~seed:5L () in
  let device = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let trusted =
    Hypervisor.Domain.create sim ~name:"rapilog" ~kind:Hypervisor.Domain.Trusted
  in
  let logger =
    Rapilog.Trusted_logger.create sim ~domain:trusted
      Rapilog.Trusted_logger.default_config ~device
  in
  let backend_domain =
    Hypervisor.Domain.create sim ~name:"drv" ~kind:Hypervisor.Domain.Trusted
  in
  let frontend =
    Hypervisor.Virtio_blk.create sim ~ipc:Hypervisor.Ipc.default_sel4
      ~backend_domain
      (Rapilog.Trusted_logger.backend logger)
  in
  let replica_device = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let repl =
    Net.Replication.attach sim Net.Replication.default ~logger ~replica_device
  in
  let guest =
    Hypervisor.Domain.create sim ~name:"guest" ~kind:Hypervisor.Domain.Guest
  in
  let writes = 24 in
  ignore
    (Hypervisor.Domain.spawn guest (fun () ->
         for i = 1 to writes do
           Storage.Block.write frontend ~lba:(i * 2)
             (String.make 512 (Char.chr (64 + (i mod 26))))
         done;
         Rapilog.Trusted_logger.quiesce logger;
         Net.Replica.quiesce (Net.Replication.replica repl)));
  Sim.run sim;
  let replica = Net.Replication.replica repl in
  Alcotest.(check int) "every admission sent" writes (Net.Replication.sent repl);
  Alcotest.(check int) "every entry acked back" writes (Net.Replication.acked repl);
  Alcotest.(check int) "replica received all" writes (Net.Replica.received replica);
  Alcotest.(check int) "replica drained all" writes (Net.Replica.drained_writes replica);
  Alcotest.(check int) "nothing left on the wire" 0 (Net.Replication.wire_in_flight repl);
  Alcotest.(check int) "logger acked every write" writes
    (Rapilog.Trusted_logger.acked_writes logger);
  let seqs = List.map (fun (seq, _, _) -> seq) (Net.Replica.entries replica) in
  Alcotest.(check (list int)) "arrival order is the admission sequence"
    (List.init writes (fun i -> i + 1))
    seqs

let replicated_steady_commits () =
  List.iter
    (fun policy ->
      let r = Harness.Experiment.run_steady (replicated_scenario ~policy ()) in
      Alcotest.(check bool)
        (Net.Replication.policy_name policy ^ " commits in window")
        true
        (r.Harness.Experiment.committed_in_window > 0))
    Net.Replication.all_policies

let replicated_steady_deterministic () =
  let config = replicated_scenario () in
  let a = Harness.Experiment.run_steady config in
  let b = Harness.Experiment.run_steady config in
  Alcotest.(check bool) "rerun bit-identical" true (a = b);
  let c, _registry = Harness.Experiment.run_steady_metrics config in
  Alcotest.(check bool) "metrics recording does not perturb the run" true (a = c)

(* -- quorum scenario ------------------------------------------------------- *)

let quorum_scenario ?(replicas = 3) ?(quorum = 2) () =
  {
    (replicated_scenario ()) with
    Harness.Scenario.mode = Harness.Scenario.Rapilog_quorum;
    quorum = { Net.Quorum.default with Net.Quorum.replicas; quorum };
  }

let quorum_steady_deterministic () =
  let config = quorum_scenario () in
  let a = Harness.Experiment.run_steady config in
  Alcotest.(check bool) "commits in window" true
    (a.Harness.Experiment.committed_in_window > 0);
  let b = Harness.Experiment.run_steady config in
  Alcotest.(check bool) "rerun bit-identical" true (a = b);
  let c, _registry = Harness.Experiment.run_steady_metrics config in
  Alcotest.(check bool) "metrics recording does not perturb the run" true (a = c)

(* Partition + heal under quorum: the same seed must reproduce the
   whole delivery schedule — same audit verdict *and* the same elected
   leader at the same term. *)
let quorum_partition_heal_deterministic () =
  let sweep_config =
    {
      (Harness.Crash_surface.default (quorum_scenario ())) with
      Harness.Crash_surface.window_start = Time.ms 2;
      window_length = Time.ms 2;
      kinds = [ Harness.Crash_surface.Machine_loss ];
    }
  in
  let enum =
    Harness.Crash_surface.enumerate sweep_config Harness.Crash_surface.Machine_loss
  in
  let count = Array.length enum.Harness.Crash_surface.e_candidates in
  Alcotest.(check bool) "boundaries found" true (count >= 2);
  let first_event, first_ns = enum.Harness.Crash_surface.e_candidates.(0) in
  let _, second_ns = enum.Harness.Crash_surface.e_candidates.(count - 1) in
  let run () =
    Harness.Crash_surface.run_pair_point sweep_config
      ~schedule:Harness.Crash_surface.Partition_heal ~first_event ~first_ns
      ~second_ns ~node:1
  in
  let a = run () in
  Alcotest.(check bool) "verdict bit-identical on rerun" true (a = run ());
  Alcotest.(check bool) "an election concluded" true
    (a.Harness.Crash_surface.pv_elected >= 0);
  Alcotest.(check bool) "election quorate" true
    a.Harness.Crash_surface.pv_election_quorate;
  Alcotest.(check int) "no quorum-acked commit lost" 0
    a.Harness.Crash_surface.pv_lost;
  Alcotest.(check bool) "contract holds through partition and heal" true
    a.Harness.Crash_surface.pv_contract_ok

(* A small slice of the pair sweep: zero breaks at majority quorum, and
   the parallel sweep is bit-identical to the serial one. *)
let quorum_pair_sweep_tiny () =
  let sweep_config =
    {
      (Harness.Crash_surface.default (quorum_scenario ())) with
      Harness.Crash_surface.window_start = Time.ms 2;
      window_length = Time.ms 2;
      kinds = [ Harness.Crash_surface.Machine_loss ];
    }
  in
  let schedules =
    [
      Harness.Crash_surface.Primary_then_node;
      Harness.Crash_surface.Partition_commit;
    ]
  in
  let serial =
    Harness.Crash_surface.sweep_pairs ~jobs:1 sweep_config ~schedules ~target:3
  in
  Alcotest.(check bool) "pair points explored" true
    (serial.Harness.Crash_surface.pr_points >= 4);
  Alcotest.(check int) "zero contract breaks" 0
    serial.Harness.Crash_surface.pr_breaks;
  Alcotest.(check int) "zero quorum-acked commits lost" 0
    serial.Harness.Crash_surface.pr_lost_total;
  let parallel =
    Harness.Crash_surface.sweep_pairs ~jobs:4 sweep_config ~schedules ~target:3
  in
  Alcotest.(check bool) "jobs=1 equals jobs=4" true (serial = parallel)

let pair_schedule_names_roundtrip () =
  List.iter
    (fun schedule ->
      Alcotest.(check bool)
        (Harness.Crash_surface.pair_schedule_name schedule ^ " roundtrips")
        true
        (Harness.Crash_surface.pair_schedule_of_name
           (Harness.Crash_surface.pair_schedule_name schedule)
        = Some schedule))
    Harness.Crash_surface.all_pair_schedules

(* -- machine loss --------------------------------------------------------- *)

let local_scenario () =
  { (replicated_scenario ()) with Harness.Scenario.mode = Harness.Scenario.Rapilog }

let tiny_sweep scenario =
  {
    (Harness.Crash_surface.default scenario) with
    Harness.Crash_surface.window_start = Time.ms 2;
    window_length = Time.ms 2;
    stride = 60;
    kinds = [ Harness.Crash_surface.Machine_loss ];
  }

(* The PR's central asymmetry: at machine-loss boundaries, replica-ack
   RapiLog never breaks the durability contract while local RapiLog
   demonstrably loses buffered acknowledged commits. *)
let machine_loss_asymmetry () =
  let replicated =
    Harness.Crash_surface.sweep ~jobs:1 (tiny_sweep (replicated_scenario ()))
  in
  Alcotest.(check bool) "replicated: points explored" true
    (replicated.Harness.Crash_surface.r_explored >= 3);
  Alcotest.(check int) "replicated: zero contract breaks" 0
    replicated.Harness.Crash_surface.r_contract_breaks;
  Alcotest.(check int) "replicated: zero lost commits" 0
    replicated.Harness.Crash_surface.r_lost_total;
  let local =
    Harness.Crash_surface.sweep_journal ~jobs:1
      { (tiny_sweep (local_scenario ())) with Harness.Crash_surface.stride = 25 }
  in
  Alcotest.(check bool) "local: points explored" true
    (local.Harness.Crash_surface.r_explored >= 3);
  Alcotest.(check bool) "local rapilog loses buffered commits" true
    (local.Harness.Crash_surface.r_lost_total > 0)

(* The journal reconstruction must model machine loss exactly like the
   full replay does — same differential oracle as the three original
   kinds, media digests included. *)
let machine_loss_journal_matches_replay () =
  let config =
    {
      (tiny_sweep (local_scenario ())) with
      Harness.Crash_surface.stride = 25;
      media_digests = true;
    }
  in
  let replay = Harness.Crash_surface.sweep ~jobs:1 config in
  let journal = Harness.Crash_surface.sweep_journal ~jobs:1 config in
  Alcotest.(check bool) "summaries bit-identical" true (replay = journal)

let machine_loss_sweep_parallel_deterministic () =
  let config = tiny_sweep (replicated_scenario ()) in
  let serial = Harness.Crash_surface.sweep ~jobs:1 config in
  let parallel = Harness.Crash_surface.sweep ~jobs:4 config in
  Alcotest.(check bool) "jobs=1 equals jobs=4" true (serial = parallel)

let kind_names_roundtrip () =
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Harness.Crash_surface.kind_name kind ^ " roundtrips")
        true
        (Harness.Crash_surface.kind_of_name (Harness.Crash_surface.kind_name kind)
        = Some kind))
    Harness.Crash_surface.all_kinds;
  Alcotest.(check bool) "machine loss not in the default sweep" true
    (not
       (List.mem Harness.Crash_surface.Machine_loss
          Harness.Crash_surface.default_kinds))

let suites =
  [
    ( "net.link",
      [
        prop "fifo per link" ~count:120
          QCheck2.Gen.(triple gen_config gen_sends gen_seed)
          fifo_law;
        prop "delivery schedule is a pure function of the seed" ~count:80
          QCheck2.Gen.(triple gen_config gen_sends gen_seed)
          determinism_law;
        prop "partition+heal delivers exactly the non-dropped backlog" ~count:80
          QCheck2.Gen.(triple gen_config gen_sends gen_seed)
          partition_heal_law;
        case "sever discards backlog and future sends" sever_discards;
        case "sever drops partition state; late heal is a no-op"
          sever_clears_partition;
        case "constant latency is exact" constant_latency_exact;
        case "bandwidth serialises back-to-back sends" bandwidth_serialises;
      ] );
    ( "net.fault",
      [
        case "outage drawn within bounds" outage_in_bounds;
        case "degenerate intervals deterministic, reversed raise"
          outage_degenerate_and_reversed;
      ] );
    ( "net.replication",
      [
        case "datapath counters line up" replication_counters;
        case "all policies commit" replicated_steady_commits;
        case "replicated steady run deterministic" replicated_steady_deterministic;
      ] );
    ( "net.quorum-scenario",
      [
        case "quorum steady run deterministic" quorum_steady_deterministic;
        case "partition+heal deterministic, same elected leader"
          quorum_partition_heal_deterministic;
        case "tiny pair sweep: zero breaks, parallel bit-identical"
          quorum_pair_sweep_tiny;
        case "pair schedule names roundtrip" pair_schedule_names_roundtrip;
      ] );
    ( "net.machine-loss",
      [
        case "replica-ack survives, local rapilog loses" machine_loss_asymmetry;
        case "journal reconstruction matches full replay"
          machine_loss_journal_matches_replay;
        case "parallel sweep bit-identical" machine_loss_sweep_parallel_deterministic;
        case "kind names roundtrip; machine loss opt-in" kind_names_roundtrip;
      ] );
  ]
