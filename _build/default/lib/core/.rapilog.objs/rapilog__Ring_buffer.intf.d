lib/core/ring_buffer.mli:
