(* The exhaustive crash-surface harness: machine-readable evidence for
   the paper's claim 3 (no committed transaction is lost across guest-OS
   crashes and power failures).

   Sweeps with fixed seeds:
   - protected: the RapiLog configuration, every crash kind, via the
     PR 2 full-replay sweep. Expected contract breaks: zero.
   - baseline: the unprotected write-cache configuration under a power
     cut. Expected contract breaks: non-zero — the teeth that prove the
     sweep can actually see durability loss.
   - with [--journal]: the journal-reconstruction sweep over the same
     strided candidate set, timed against the full-replay sweep
     (old-vs-new), plus the differential oracle — both paths re-run with
     media digests enabled and every verdict, digest included, must be
     bit-identical.
   - with [--full] (implies --journal): a stride-1 journal sweep over
     {e every} enumerated boundary of every kind. This is the claim-3
     statement the sampled experiments cannot make: zero contract breaks
     at all of the tens of thousands of crash points.
   - with [--fork] (implies --journal): the PR 8 snapshot-forking
     engine timed head-to-head against the journal engine on the same
     candidates, plus its own differential oracle — both engines re-run
     with media digests on and every verdict, digest included, must be
     bit-identical; the fork engine must not be slower.

   Parallel sweeps must be bit-identical to serial — the fan-out is
   measurement machinery, not a source of nondeterminism. The identity
   is always asserted; the parallel-vs-serial {e timing} is skipped (and
   reported as null with a reason) on a single-core host, where the
   ratio would only measure domain overhead.

   Writes a JSON report (default BENCH_PR3_SWEEP.json). With --check it
   self-validates so `dune runtest` keeps the harness honest.

   Usage: crash_surface.exe [--quick] [--check] [--journal] [--full]
                            [--fork] [--jobs N] [--output PATH] *)

open Desim
open Harness
open Harness.Json

let base_scenario ~quick =
  {
    Scenario.default with
    Scenario.workload =
      Scenario.Micro
        {
          Workload.Microbench.default_config with
          Workload.Microbench.keys = 256;
          value_bytes = 64;
        };
    clients = 4;
    seed = 20_2608L;
    warmup = Time.ms 1;
    duration = (if quick then Time.ms 10 else Time.ms 50);
  }

let surface_config ~quick scenario =
  let default = Crash_surface.default scenario in
  if quick then
    {
      default with
      Crash_surface.window_start = Time.ms 2;
      window_length = Time.ms 6;
      (* Tight but sound: the budget must still cover the worst-case
         post-cut drain — an in-flight write, a seek settle, a full
         rotation (~8.3 ms at 7200 rpm) and the buffer transfer. A
         budget below that violates the logger's admission precondition
         and the sweep would rightly report losses. *)
      tight_window = Time.ms 20;
      tight_buffer_bytes = 64 * 1024;
    }
  else default

(* One enumeration replay per kind tells us how many boundaries the
   window holds; the stride is then chosen so the sweep explores about
   [target] points in total. Stride 1 (every boundary) is kept whenever
   the surface is small enough. *)
let autostride config ~target =
  let total =
    List.fold_left
      (fun acc kind ->
        acc + (Crash_surface.enumerate config kind).Crash_surface.e_boundaries)
      0 config.Crash_surface.kinds
  in
  (total, max 1 (total / target))

let kind_summary_json (k : Crash_surface.kind_summary) =
  Obj
    [
      ("kind", Str (Crash_surface.kind_name k.Crash_surface.k_kind));
      ("boundaries", Num (float_of_int k.Crash_surface.k_boundaries));
      ("explored", Num (float_of_int k.Crash_surface.k_explored));
      ("contract_breaks", Num (float_of_int k.Crash_surface.k_contract_breaks));
      ("lost", Num (float_of_int k.Crash_surface.k_lost));
    ]

let break_json (v : Crash_surface.verdict) =
  Obj
    [
      ("kind", Str (Crash_surface.kind_name v.Crash_surface.v_kind));
      ("event_index", Num (float_of_int v.Crash_surface.v_event_index));
      ("at_ns", Num (float_of_int v.Crash_surface.v_at_ns));
      ("acked", Num (float_of_int v.Crash_surface.v_acked));
      ("lost", Num (float_of_int v.Crash_surface.v_lost));
      ("extra", Num (float_of_int v.Crash_surface.v_extra));
      ("state_exact", Bool v.Crash_surface.v_state_exact);
      ("diff_count", Num (float_of_int v.Crash_surface.v_diff_count));
      ( "invariant_violations",
        Num (float_of_int v.Crash_surface.v_invariant_violations) );
      ("buffered_at_cut", Num (float_of_int v.Crash_surface.v_buffered_at_cut));
    ]

(* Breaking points are listed individually (capped) so a red protected
   sweep pinpoints the boundary to replay, and the baseline report shows
   what the teeth bit. *)
let max_breaks_listed = 20

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let sweep_json (r : Crash_surface.result) =
  let breaks =
    List.filter
      (fun v -> not v.Crash_surface.v_contract_ok)
      r.Crash_surface.r_verdicts
  in
  Obj
    [
      ("mode", Str (Scenario.mode_name r.Crash_surface.r_mode));
      ("stride", Num (float_of_int r.Crash_surface.r_stride));
      ("kinds", Arr (List.map kind_summary_json r.Crash_surface.r_kinds));
      ("total_boundaries", Num (float_of_int r.Crash_surface.r_total_boundaries));
      ("explored", Num (float_of_int r.Crash_surface.r_explored));
      ("contract_breaks", Num (float_of_int r.Crash_surface.r_contract_breaks));
      ("lost_total", Num (float_of_int r.Crash_surface.r_lost_total));
      ("breaks", Arr (List.map break_json (take max_breaks_listed breaks)));
    ]

let usage () =
  print_endline
    "usage: crash_surface.exe [--quick] [--check] [--journal] [--full] \
     [--fork] [--jobs N] [--output PATH]";
  exit 2

let () =
  let quick = ref false in
  let check = ref false in
  let journal = ref false in
  let full = ref false in
  let fork = ref false in
  let jobs = ref (Parallel.default_jobs ()) in
  let output = ref "BENCH_PR3_SWEEP.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--check" :: rest -> check := true; parse rest
    | "--journal" :: rest -> journal := true; parse rest
    | "--full" :: rest -> full := true; journal := true; parse rest
    | "--fork" :: rest -> fork := true; journal := true; parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | "--output" :: path :: rest -> output := path; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick and jobs = !jobs in
  let journal = !journal and full = !full and fork = !fork in
  let cores = Domain.recommended_domain_count () in
  let target = if quick then 24 else 600 in
  let min_explored = if quick then 12 else 500 in
  let failures = ref [] in
  let fail msg = failures := msg :: !failures in

  (* -- protected sweep: RapiLog, every crash kind, full replay --------- *)
  let protected_scenario =
    { (base_scenario ~quick) with Scenario.mode = Scenario.Rapilog }
  in
  let protected_config = surface_config ~quick protected_scenario in
  let boundaries, stride = autostride protected_config ~target in
  let protected_config = { protected_config with Crash_surface.stride } in
  Printf.printf
    "crash-surface: rapilog surface has %d boundaries, stride %d...\n%!"
    boundaries stride;
  let t0 = Unix.gettimeofday () in
  let serial = Crash_surface.sweep ~jobs:1 protected_config in
  let serial_s = Unix.gettimeofday () -. t0 in
  (* Parallel-vs-serial is a real measurement only with real cores; on a
     single-core host it would time domain overhead, so the timing is
     skipped and the identity asserted with the serial result reused. *)
  let parallel, parallel_timing =
    if cores > 1 then begin
      let t1 = Unix.gettimeofday () in
      let parallel = Crash_surface.sweep ~jobs protected_config in
      let parallel_s = Unix.gettimeofday () -. t1 in
      (parallel, Some parallel_s)
    end
    else (Crash_surface.sweep ~jobs:4 protected_config, None)
  in
  let identical =
    serial.Crash_surface.r_verdicts = parallel.Crash_surface.r_verdicts
  in
  let speedup_json, speedup_note =
    match parallel_timing with
    | Some parallel_s ->
        let speedup = serial_s /. parallel_s in
        ( [ ("parallel_seconds", Num parallel_s); ("speedup", Num speedup) ],
          Printf.sprintf "jobs=%d %.2fs (%.2fx)" jobs parallel_s speedup )
    | None ->
        ( [
            ("parallel_seconds", Null);
            ("speedup", Null);
            ( "skipped_reason",
              Str "single-core host: parallel timing would measure domain \
                   overhead, not speedup" );
          ],
          "parallel timing skipped (1 core)" )
  in
  Printf.printf
    "crash-surface: rapilog %d points: %d contract breaks | replay serial \
     %.2fs, %s, bit-identical: %b\n%!"
    parallel.Crash_surface.r_explored parallel.Crash_surface.r_contract_breaks
    serial_s speedup_note identical;

  (* -- journal sweep: same candidates, one recorded run per kind ------- *)
  let journal_section =
    if not journal then []
    else begin
      let tj0 = Unix.gettimeofday () in
      let journal_serial = Crash_surface.sweep_journal ~jobs:1 protected_config in
      let journal_s = Unix.gettimeofday () -. tj0 in
      let journal_parallel = Crash_surface.sweep_journal ~jobs:4 protected_config in
      let journal_identical =
        journal_serial.Crash_surface.r_verdicts
        = journal_parallel.Crash_surface.r_verdicts
      in
      let replay_vs_journal = serial_s /. journal_s in
      Printf.printf
        "crash-surface: journal sweep %d points in %.2fs — %.1fx over full \
         replay (%.2fs); parallel bit-identical: %b\n%!"
        journal_serial.Crash_surface.r_explored journal_s replay_vs_journal
        serial_s journal_identical;
      (* Differential oracle: both paths re-run with media digests on.
         Every strided point is oracle-checked — the verdict lists,
         including a CRC of the entire post-crash durable media, must be
         bit-identical. *)
      let oracle_config =
        { protected_config with Crash_surface.media_digests = true }
      in
      let oracle_replay = Crash_surface.sweep ~jobs:1 oracle_config in
      let oracle_journal = Crash_surface.sweep_journal ~jobs:1 oracle_config in
      let oracle_identical =
        oracle_replay.Crash_surface.r_verdicts
        = oracle_journal.Crash_surface.r_verdicts
      in
      let oracle_points = oracle_replay.Crash_surface.r_explored in
      let oracle_min_per_kind =
        List.fold_left
          (fun acc k -> min acc k.Crash_surface.k_explored)
          max_int oracle_replay.Crash_surface.r_kinds
      in
      Printf.printf
        "crash-surface: oracle: %d points (min %d per kind), digests \
         bit-identical: %b\n%!"
        oracle_points oracle_min_per_kind oracle_identical;
      if journal_serial.Crash_surface.r_contract_breaks <> 0 then
        fail "journal sweep found contract breaks (want 0)";
      if not journal_identical then
        fail "journal parallel verdicts differ from serial";
      if not oracle_identical then
        fail "journal reconstruction differs from full replay under digests";
      if (not quick) && oracle_min_per_kind < 50 then
        fail
          (Printf.sprintf "oracle covered only %d points on some kind (want \
                           >= 50)" oracle_min_per_kind);
      [
        ( "journal",
          Obj
            [
              ("sweep", sweep_json journal_serial);
              ("seconds", Num journal_s);
              ("replay_serial_seconds", Num serial_s);
              ("replay_vs_journal_speedup", Num replay_vs_journal);
              ("parallel_bit_identical", Bool journal_identical);
              ( "oracle",
                Obj
                  [
                    ("points", Num (float_of_int oracle_points));
                    ("min_per_kind", Num (float_of_int oracle_min_per_kind));
                    ("media_digests", Bool true);
                    ("bit_identical", Bool oracle_identical);
                  ] );
            ] );
      ]
    end
  in

  (* -- fork engine: snapshot forking vs per-chunk prefix replay -------- *)
  let fork_section =
    if not fork then []
    else begin
      (* Head-to-head timing on the strided candidates, measured
         back-to-back under identical conditions. *)
      let tj0 = Unix.gettimeofday () in
      let journal_run = Crash_surface.sweep_journal ~jobs protected_config in
      let journal_run_s = Unix.gettimeofday () -. tj0 in
      let tk0 = Unix.gettimeofday () in
      let fork_run = Crash_surface.sweep_fork ~jobs protected_config in
      let fork_run_s = Unix.gettimeofday () -. tk0 in
      let fork_identical =
        journal_run.Crash_surface.r_verdicts = fork_run.Crash_surface.r_verdicts
      in
      let fork_parallel = Crash_surface.sweep_fork ~jobs:4 protected_config in
      let fork_parallel_identical =
        fork_run.Crash_surface.r_verdicts
        = fork_parallel.Crash_surface.r_verdicts
      in
      (* Differential oracle: both engines with media digests on — the
         per-boundary CRCs over the entire post-crash durable media
         must agree. *)
      let oracle_config =
        { protected_config with Crash_surface.media_digests = true }
      in
      let oracle_journal = Crash_surface.sweep_journal ~jobs:1 oracle_config in
      let oracle_fork = Crash_surface.sweep_fork ~jobs:1 oracle_config in
      let oracle_identical =
        oracle_journal.Crash_surface.r_verdicts
        = oracle_fork.Crash_surface.r_verdicts
      in
      Printf.printf
        "crash-surface: fork sweep %d points in %.2fs vs journal %.2fs \
         (%.2fx); bit-identical: %b, digests bit-identical: %b\n%!"
        fork_run.Crash_surface.r_explored fork_run_s journal_run_s
        (fork_run_s /. journal_run_s)
        fork_identical oracle_identical;
      if fork_run.Crash_surface.r_contract_breaks <> 0 then
        fail "fork sweep found contract breaks (want 0)";
      if not fork_identical then
        fail "fork sweep verdicts differ from the journal engine";
      if not fork_parallel_identical then
        fail "fork parallel verdicts differ from serial";
      if not oracle_identical then
        fail "fork engine differs from journal engine under media digests";
      if fork_run_s > (journal_run_s *. 1.05) +. 0.05 then
        fail
          (Printf.sprintf
             "fork sweep %.2fs slower than journal sweep %.2fs" fork_run_s
             journal_run_s);
      [
        ( "fork",
          Obj
            [
              ("sweep", sweep_json fork_run);
              ("seconds", Num fork_run_s);
              ("journal_seconds", Num journal_run_s);
              ("fork_over_journal", Num (fork_run_s /. journal_run_s));
              ("bit_identical_to_journal", Bool fork_identical);
              ("parallel_bit_identical", Bool fork_parallel_identical);
              ( "oracle",
                Obj
                  [
                    ( "points",
                      Num (float_of_int oracle_fork.Crash_surface.r_explored) );
                    ("media_digests", Bool true);
                    ("bit_identical", Bool oracle_identical);
                  ] );
            ] );
      ]
    end
  in

  (* -- full surface: every boundary of every kind, journal path -------- *)
  let full_section =
    if not full then []
    else begin
      let full_config = { protected_config with Crash_surface.stride = 1 } in
      let tf0 = Unix.gettimeofday () in
      let exhaustive = Crash_surface.sweep_journal ~jobs full_config in
      let full_s = Unix.gettimeofday () -. tf0 in
      Printf.printf
        "crash-surface: FULL surface: %d/%d boundaries, %d kinds, %d contract \
         breaks, %d lost (%.2fs)\n%!"
        exhaustive.Crash_surface.r_explored
        exhaustive.Crash_surface.r_total_boundaries
        (List.length exhaustive.Crash_surface.r_kinds)
        exhaustive.Crash_surface.r_contract_breaks
        exhaustive.Crash_surface.r_lost_total full_s;
      if exhaustive.Crash_surface.r_contract_breaks <> 0 then
        fail "FULL sweep found contract breaks (want 0 at every boundary)";
      if exhaustive.Crash_surface.r_lost_total <> 0 then
        fail "FULL sweep lost acked commits (want 0 at every boundary)";
      if
        exhaustive.Crash_surface.r_explored
        <> exhaustive.Crash_surface.r_total_boundaries
      then
        fail
          (Printf.sprintf "FULL sweep explored %d of %d boundaries"
             exhaustive.Crash_surface.r_explored
             exhaustive.Crash_surface.r_total_boundaries);
      [ ("full", Obj [ ("sweep", sweep_json exhaustive); ("seconds", Num full_s) ]) ]
    end
  in

  (* -- baseline teeth: unprotected write cache under a power cut ------- *)
  let baseline_scenario =
    { (base_scenario ~quick) with Scenario.mode = Scenario.Unsafe_wcache }
  in
  let baseline_config =
    {
      (surface_config ~quick baseline_scenario) with
      Crash_surface.kinds = [ Crash_surface.Power_cut ];
    }
  in
  let baseline_boundaries, baseline_stride =
    autostride baseline_config ~target:(target / 3)
  in
  let baseline_config =
    { baseline_config with Crash_surface.stride = baseline_stride }
  in
  Printf.printf
    "crash-surface: unsafe-wcache surface has %d boundaries, stride %d...\n%!"
    baseline_boundaries baseline_stride;
  let t2 = Unix.gettimeofday () in
  let baseline = Crash_surface.sweep ~jobs baseline_config in
  let baseline_s = Unix.gettimeofday () -. t2 in
  Printf.printf
    "crash-surface: unsafe-wcache %d points: %d contract breaks, %d acked \
     commits lost (%.2fs)\n%!"
    baseline.Crash_surface.r_explored baseline.Crash_surface.r_contract_breaks
    baseline.Crash_surface.r_lost_total baseline_s;

  let report =
    Obj
      ([
         ("pr", Num 3.);
         ("harness", Str "crash_surface.exe");
         ("quick", Bool quick);
         ("full", Bool full);
         ("fork", Bool fork);
         ("cores", Num (float_of_int cores));
         ("jobs", Num (float_of_int jobs));
         ( "window",
           Obj
             [
               ( "start_after_load_ns",
                 Num
                   (float_of_int
                      (Time.span_to_ns protected_config.Crash_surface.window_start))
               );
               ( "length_ns",
                 Num
                   (float_of_int
                      (Time.span_to_ns protected_config.Crash_surface.window_length))
               );
               ( "tight_window_ns",
                 Num
                   (float_of_int
                      (Time.span_to_ns protected_config.Crash_surface.tight_window))
               );
               ( "tight_buffer_bytes",
                 Num
                   (float_of_int protected_config.Crash_surface.tight_buffer_bytes)
               );
             ] );
         ( "protected",
           Obj
             ([
                ("sweep", sweep_json parallel);
                ("serial_seconds", Num serial_s);
              ]
             @ speedup_json
             @ [ ("bit_identical", Bool identical) ]) );
       ]
      @ journal_section @ fork_section @ full_section
      @ [
          ( "baseline",
            Obj [ ("sweep", sweep_json baseline); ("seconds", Num baseline_s) ] );
        ])
  in
  let text = Json.to_string report in
  let oc = open_out !output in
  output_string oc text;
  close_out oc;
  Printf.printf "crash-surface: wrote %s\n%!" !output;

  if !check then begin
    (match Json.of_string text with
    | exception Json.Parse_error msg ->
        fail (Printf.sprintf "report is not valid JSON: %s" msg)
    | Obj _ -> ()
    | _ -> fail "report is not a JSON object");
    if parallel.Crash_surface.r_contract_breaks <> 0 then
      fail
        (Printf.sprintf "rapilog sweep found %d contract breaks (want 0)"
           parallel.Crash_surface.r_contract_breaks);
    if baseline.Crash_surface.r_contract_breaks < 1 then
      fail "unsafe-wcache sweep found no contract break (teeth are missing)";
    if baseline.Crash_surface.r_lost_total < 1 then
      fail "unsafe-wcache sweep lost no acked commit (teeth are missing)";
    if not identical then fail "parallel sweep verdicts differ from serial";
    if parallel.Crash_surface.r_explored < min_explored then
      fail
        (Printf.sprintf "explored only %d crash points (want >= %d)"
           parallel.Crash_surface.r_explored min_explored);
    if List.length parallel.Crash_surface.r_kinds < 2 then
      fail "fewer than two crash kinds explored";
    match !failures with
    | [] -> print_endline "crash-surface: check OK"
    | msgs ->
        List.iter
          (fun m -> Printf.eprintf "crash-surface: CHECK FAILED: %s\n" m)
          msgs;
        exit 1
  end
  else
    match !failures with
    | [] -> ()
    | msgs ->
        List.iter (fun m -> Printf.eprintf "crash-surface: FAILED: %s\n" m) msgs;
        exit 1
