lib/core/durability.ml: Format Hashtbl Int List Set String Trusted_logger
