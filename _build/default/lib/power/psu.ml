type config = { energy_joules : float; system_draw_watts : float }

let default = { energy_joules = 30.0; system_draw_watts = 100.0 }

let of_window span =
  { energy_joules = Desim.Time.span_to_float_sec span; system_draw_watts = 1.0 }

let window config =
  assert (config.energy_joules >= 0. && config.system_draw_watts > 0.);
  Desim.Time.span_of_float_sec (config.energy_joules /. config.system_draw_watts)

let flushable_bytes config ~bandwidth =
  assert (bandwidth >= 0.);
  int_of_float (Desim.Time.span_to_float_sec (window config) *. bandwidth)
