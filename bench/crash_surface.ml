(* The exhaustive crash-surface harness: machine-readable evidence for
   the paper's claim 3 (no committed transaction is lost across guest-OS
   crashes and power failures).

   Two sweeps with fixed seeds:
   - protected: the RapiLog configuration, every crash kind. Expected
     contract breaks: zero, at every enumerated boundary.
   - baseline: the unprotected write-cache configuration under a power
     cut. Expected contract breaks: non-zero — the teeth that prove the
     sweep can actually see durability loss.

   The protected sweep runs twice, at jobs=1 and jobs=N, and the two
   verdict lists must be bit-identical — the fan-out is measurement
   machinery, not a source of nondeterminism.

   Writes a JSON report (default BENCH_PR2_CRASH.json). With --check it
   self-validates so `dune runtest` keeps the harness honest.

   Usage: crash_surface.exe [--quick] [--check] [--jobs N] [--output PATH] *)

open Desim
open Harness
open Harness.Json

let base_scenario ~quick =
  {
    Scenario.default with
    Scenario.workload =
      Scenario.Micro
        {
          Workload.Microbench.default_config with
          Workload.Microbench.keys = 256;
          value_bytes = 64;
        };
    clients = 4;
    seed = 20_2608L;
    warmup = Time.ms 1;
    duration = (if quick then Time.ms 10 else Time.ms 50);
  }

let surface_config ~quick scenario =
  let default = Crash_surface.default scenario in
  if quick then
    {
      default with
      Crash_surface.window_start = Time.ms 2;
      window_length = Time.ms 6;
      (* Tight but sound: the budget must still cover the worst-case
         post-cut drain — an in-flight write, a seek settle, a full
         rotation (~8.3 ms at 7200 rpm) and the buffer transfer. A
         budget below that violates the logger's admission precondition
         and the sweep would rightly report losses. *)
      tight_window = Time.ms 20;
      tight_buffer_bytes = 64 * 1024;
    }
  else default

(* One enumeration replay per kind tells us how many boundaries the
   window holds; the stride is then chosen so the sweep explores about
   [target] points in total. Stride 1 (every boundary) is kept whenever
   the surface is small enough. *)
let autostride config ~target =
  let total =
    List.fold_left
      (fun acc kind ->
        acc + (Crash_surface.enumerate config kind).Crash_surface.e_boundaries)
      0 config.Crash_surface.kinds
  in
  (total, max 1 (total / target))

let kind_summary_json (k : Crash_surface.kind_summary) =
  Obj
    [
      ("kind", Str (Crash_surface.kind_name k.Crash_surface.k_kind));
      ("boundaries", Num (float_of_int k.Crash_surface.k_boundaries));
      ("explored", Num (float_of_int k.Crash_surface.k_explored));
      ("contract_breaks", Num (float_of_int k.Crash_surface.k_contract_breaks));
      ("lost", Num (float_of_int k.Crash_surface.k_lost));
    ]

let break_json (v : Crash_surface.verdict) =
  Obj
    [
      ("kind", Str (Crash_surface.kind_name v.Crash_surface.v_kind));
      ("event_index", Num (float_of_int v.Crash_surface.v_event_index));
      ("at_ns", Num (float_of_int v.Crash_surface.v_at_ns));
      ("acked", Num (float_of_int v.Crash_surface.v_acked));
      ("lost", Num (float_of_int v.Crash_surface.v_lost));
      ("extra", Num (float_of_int v.Crash_surface.v_extra));
      ("state_exact", Bool v.Crash_surface.v_state_exact);
      ("diff_count", Num (float_of_int v.Crash_surface.v_diff_count));
      ( "invariant_violations",
        Num (float_of_int v.Crash_surface.v_invariant_violations) );
      ("buffered_at_cut", Num (float_of_int v.Crash_surface.v_buffered_at_cut));
    ]

(* Breaking points are listed individually (capped) so a red protected
   sweep pinpoints the boundary to replay, and the baseline report shows
   what the teeth bit. *)
let max_breaks_listed = 20

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let sweep_json (r : Crash_surface.result) =
  let breaks =
    List.filter
      (fun v -> not v.Crash_surface.v_contract_ok)
      r.Crash_surface.r_verdicts
  in
  Obj
    [
      ("mode", Str (Scenario.mode_name r.Crash_surface.r_mode));
      ("stride", Num (float_of_int r.Crash_surface.r_stride));
      ("kinds", Arr (List.map kind_summary_json r.Crash_surface.r_kinds));
      ("total_boundaries", Num (float_of_int r.Crash_surface.r_total_boundaries));
      ("explored", Num (float_of_int r.Crash_surface.r_explored));
      ("contract_breaks", Num (float_of_int r.Crash_surface.r_contract_breaks));
      ("lost_total", Num (float_of_int r.Crash_surface.r_lost_total));
      ("breaks", Arr (List.map break_json (take max_breaks_listed breaks)));
    ]

let usage () =
  print_endline
    "usage: crash_surface.exe [--quick] [--check] [--jobs N] [--output PATH]";
  exit 2

let () =
  let quick = ref false in
  let check = ref false in
  let jobs = ref (Parallel.default_jobs ()) in
  let output = ref "BENCH_PR2_CRASH.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--check" :: rest -> check := true; parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | "--output" :: path :: rest -> output := path; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick and jobs = !jobs in
  let target = if quick then 24 else 600 in
  let min_explored = if quick then 12 else 500 in

  (* -- protected sweep: RapiLog, every crash kind ---------------------- *)
  let protected_scenario =
    { (base_scenario ~quick) with Scenario.mode = Scenario.Rapilog }
  in
  let protected_config = surface_config ~quick protected_scenario in
  let boundaries, stride = autostride protected_config ~target in
  let protected_config = { protected_config with Crash_surface.stride } in
  Printf.printf
    "crash-surface: rapilog surface has %d boundaries, stride %d...\n%!"
    boundaries stride;
  let t0 = Unix.gettimeofday () in
  let serial = Crash_surface.sweep ~jobs:1 protected_config in
  let serial_s = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let parallel = Crash_surface.sweep ~jobs protected_config in
  let parallel_s = Unix.gettimeofday () -. t1 in
  let identical =
    serial.Crash_surface.r_verdicts = parallel.Crash_surface.r_verdicts
  in
  let speedup = serial_s /. parallel_s in
  Printf.printf
    "crash-surface: rapilog %d points: %d contract breaks | serial %.2fs, \
     jobs=%d %.2fs (%.2fx), bit-identical: %b\n%!"
    parallel.Crash_surface.r_explored parallel.Crash_surface.r_contract_breaks
    serial_s jobs parallel_s speedup identical;

  (* -- baseline teeth: unprotected write cache under a power cut ------- *)
  let baseline_scenario =
    { (base_scenario ~quick) with Scenario.mode = Scenario.Unsafe_wcache }
  in
  let baseline_config =
    {
      (surface_config ~quick baseline_scenario) with
      Crash_surface.kinds = [ Crash_surface.Power_cut ];
    }
  in
  let baseline_boundaries, baseline_stride =
    autostride baseline_config ~target:(target / 3)
  in
  let baseline_config =
    { baseline_config with Crash_surface.stride = baseline_stride }
  in
  Printf.printf
    "crash-surface: unsafe-wcache surface has %d boundaries, stride %d...\n%!"
    baseline_boundaries baseline_stride;
  let t2 = Unix.gettimeofday () in
  let baseline = Crash_surface.sweep ~jobs baseline_config in
  let baseline_s = Unix.gettimeofday () -. t2 in
  Printf.printf
    "crash-surface: unsafe-wcache %d points: %d contract breaks, %d acked \
     commits lost (%.2fs)\n%!"
    baseline.Crash_surface.r_explored baseline.Crash_surface.r_contract_breaks
    baseline.Crash_surface.r_lost_total baseline_s;

  let report =
    Obj
      [
        ("pr", Num 2.);
        ("harness", Str "crash_surface.exe");
        ("quick", Bool quick);
        ("cores", Num (float_of_int (Domain.recommended_domain_count ())));
        ("jobs", Num (float_of_int jobs));
        ( "window",
          Obj
            [
              ( "start_after_load_ns",
                Num
                  (float_of_int
                     (Time.span_to_ns protected_config.Crash_surface.window_start))
              );
              ( "length_ns",
                Num
                  (float_of_int
                     (Time.span_to_ns protected_config.Crash_surface.window_length))
              );
              ( "tight_window_ns",
                Num
                  (float_of_int
                     (Time.span_to_ns protected_config.Crash_surface.tight_window))
              );
              ( "tight_buffer_bytes",
                Num
                  (float_of_int protected_config.Crash_surface.tight_buffer_bytes)
              );
            ] );
        ( "protected",
          Obj
            [
              ("sweep", sweep_json parallel);
              ("serial_seconds", Num serial_s);
              ("parallel_seconds", Num parallel_s);
              ("speedup", Num speedup);
              ("bit_identical", Bool identical);
            ] );
        ( "baseline",
          Obj
            [ ("sweep", sweep_json baseline); ("seconds", Num baseline_s) ] );
      ]
  in
  let text = Json.to_string report in
  let oc = open_out !output in
  output_string oc text;
  close_out oc;
  Printf.printf "crash-surface: wrote %s\n%!" !output;

  if !check then begin
    let failures = ref [] in
    let fail msg = failures := msg :: !failures in
    (match Json.of_string text with
    | exception Json.Parse_error msg ->
        fail (Printf.sprintf "report is not valid JSON: %s" msg)
    | Obj _ -> ()
    | _ -> fail "report is not a JSON object");
    if parallel.Crash_surface.r_contract_breaks <> 0 then
      fail
        (Printf.sprintf "rapilog sweep found %d contract breaks (want 0)"
           parallel.Crash_surface.r_contract_breaks);
    if baseline.Crash_surface.r_contract_breaks < 1 then
      fail "unsafe-wcache sweep found no contract break (teeth are missing)";
    if baseline.Crash_surface.r_lost_total < 1 then
      fail "unsafe-wcache sweep lost no acked commit (teeth are missing)";
    if not identical then fail "parallel sweep verdicts differ from serial";
    if parallel.Crash_surface.r_explored < min_explored then
      fail
        (Printf.sprintf "explored only %d crash points (want >= %d)"
           parallel.Crash_surface.r_explored min_explored);
    if List.length parallel.Crash_surface.r_kinds < 2 then
      fail "fewer than two crash kinds explored";
    match !failures with
    | [] -> print_endline "crash-surface: check OK"
    | msgs ->
        List.iter
          (fun m -> Printf.eprintf "crash-surface: CHECK FAILED: %s\n" m)
          msgs;
        exit 1
  end
