(* Tests for the sharded multi-tenant logger tier (RapiLog-S): the
   tenant txid packing, the registry's bucket table under rebalancing,
   the per-tenant recovery merge — including the qcheck law that
   interleaving two tenants' streams (and splitting the interleaving
   across shards) never changes either tenant's recovered prefix — and
   the tier end-to-end: a driven two-tenant interleaving through real
   shards, and a power cut landing mid-rebalance that must recover the
   source and the destination shard with no tenant entry lost. *)

open Desim
open Testu

(* -- tenant txid packing -------------------------------------------------- *)

let gen_tenant_seq =
  let open QCheck2.Gen in
  let* tenant = int_range 1 Rapilog.Tenant.max_tenant in
  let* seq = int_range 1 Rapilog.Tenant.max_seq in
  return (tenant, seq)

let pack_roundtrip_law (tenant, seq) =
  let txid = Rapilog.Tenant.pack ~tenant ~seq in
  Rapilog.Tenant.is_tagged txid
  && Rapilog.Tenant.tenant_of txid = tenant
  && Rapilog.Tenant.seq_of txid = seq

(* Plain DBMS txids — any value a sequential allocator could produce
   before the tag boundary — must never read as tenant-tagged. *)
let untagged_law plain =
  let plain = 1 + (abs plain mod Rapilog.Tenant.max_seq) in
  not (Rapilog.Tenant.is_tagged plain)

let tenant_suite =
  ( "shard.tenant",
    [
      prop "pack/unpack roundtrip, always tagged" gen_tenant_seq
        pack_roundtrip_law;
      prop "plain txids below 2^seq_bits are never tagged" QCheck2.Gen.int
        untagged_law;
      case "tag boundary" (fun () ->
          Alcotest.(check bool)
            "max_seq alone is below the tag boundary" false
            (Rapilog.Tenant.is_tagged Rapilog.Tenant.max_seq);
          Alcotest.(check bool) "2^seq_bits is tagged" true
            (Rapilog.Tenant.is_tagged (Rapilog.Tenant.max_seq + 1));
          Alcotest.(check int) "tenant 1 seq 1 packs just past the boundary"
            (Rapilog.Tenant.max_seq + 2)
            (Rapilog.Tenant.pack ~tenant:1 ~seq:1));
    ] )

(* -- registry -------------------------------------------------------------- *)

let total_owned reg =
  let sum = ref 0 in
  for s = 0 to Shard.Registry.shards reg - 1 do
    sum := !sum + Shard.Registry.owned reg s
  done;
  !sum

(* An arbitrary sequence of valid splits: buckets are conserved, every
   tenant still routes to a valid shard, its bucket never moves, and
   the epoch counts the splits. *)
let gen_splits =
  let open QCheck2.Gen in
  let* shards = int_range 2 6 in
  let* splits = list_size (int_range 0 8) (pair (int_range 0 5) (int_range 0 5)) in
  return (shards, splits)

let registry_split_law (shards, splits) =
  let reg = Shard.Registry.create ~shards ~buckets:64 () in
  let buckets = Shard.Registry.bucket_count reg in
  let tenants = List.init 40 (fun i -> i + 1) in
  let bucket0 =
    List.map (fun t -> Shard.Registry.bucket_of_tenant reg ~tenant:t) tenants
  in
  let applied = ref 0 in
  List.iter
    (fun (source, target) ->
      let source = source mod shards and target = target mod shards in
      (* epoch counts splits that moved something: repeated splits can
         drain a source to zero buckets, and a split of an empty source
         is a no-op that must not bump the epoch *)
      if source <> target && Shard.Registry.split reg ~source ~target > 0 then
        incr applied)
    splits;
  total_owned reg = buckets
  && Shard.Registry.epoch reg = !applied
  && List.for_all2
       (fun tenant b0 ->
         let shard = Shard.Registry.shard_of_tenant reg ~tenant in
         shard >= 0 && shard < shards
         && Shard.Registry.bucket_of_tenant reg ~tenant = b0)
       tenants bucket0

let registry_suite =
  ( "shard.registry",
    [
      case "round-robin creation covers every bucket" (fun () ->
          let reg = Shard.Registry.create ~shards:4 () in
          Alcotest.(check int) "buckets" 1024 (Shard.Registry.bucket_count reg);
          Alcotest.(check int) "all owned" 1024 (total_owned reg);
          for s = 0 to 3 do
            Alcotest.(check int) "even share" 256 (Shard.Registry.owned reg s)
          done);
      case "split moves half the source's buckets" (fun () ->
          let reg = Shard.Registry.create ~shards:2 ~buckets:64 () in
          let moved = Shard.Registry.split reg ~source:0 ~target:1 in
          Alcotest.(check int) "half of 32" 16 moved;
          Alcotest.(check int) "source keeps half" 16 (Shard.Registry.owned reg 0);
          Alcotest.(check int) "target gains" 48 (Shard.Registry.owned reg 1);
          Alcotest.(check int) "moves counted" 16 (Shard.Registry.moves reg));
      prop "splits conserve buckets and never move a tenant's bucket"
        gen_splits registry_split_law;
    ] )

(* -- the recovery merge: interleaving invariance --------------------------- *)

(* A fabricated recovery result carrying only committed txids — all the
   merge reads. *)
let fake_result committed =
  {
    Dbms.Recovery.store = Hashtbl.create 1;
    records = [];
    parities = Hashtbl.create 1;
    committed;
    aborted = [];
    losers = [];
    durable_records = 0;
    durable_end = Dbms.Lsn.zero;
    redo_start = Dbms.Lsn.zero;
    redo_applied = 0;
    undo_applied = 0;
    pages_loaded = 0;
  }

let shuffle key l =
  List.mapi (fun i x -> (((i + 1) * 1103515245) + key, x)) l
  |> List.sort compare |> List.map snd

let recovered_prefix results ~tenant =
  let seqs = Shard.Recover.tenant_seqs results in
  let l = match Hashtbl.find_opt seqs tenant with Some l -> l | None -> [] in
  Shard.Recover.prefix_length l

(* The ISSUE's law: two tenants' streams, interleaved any way at all,
   diluted with plain DBMS txids, split at an arbitrary point across
   two shards' recovery results (a rebalance leaves exactly this shape)
   with an arbitrary overlap re-reported by both shards — neither
   tenant's recovered prefix moves. *)
let gen_interleaving =
  let open QCheck2.Gen in
  let* n1 = int_range 0 60 in
  let* n2 = int_range 0 60 in
  let* noise = int_range 0 20 in
  let* key = int_range 0 1_000_000 in
  let* cut = int_range 0 (n1 + n2 + noise) in
  let* overlap = int_range 0 10 in
  return (n1, n2, noise, key, cut, overlap)

let interleave_invariance_law (n1, n2, noise, key, cut, overlap) =
  let t1 = List.init n1 (fun i -> Rapilog.Tenant.pack ~tenant:7 ~seq:(i + 1)) in
  let t2 = List.init n2 (fun i -> Rapilog.Tenant.pack ~tenant:9 ~seq:(i + 1)) in
  let dbms = List.init noise (fun i -> i + 1) in
  let stream = shuffle key (t1 @ t2 @ dbms) in
  (* One shard holding everything... *)
  let whole = [ fake_result stream ] in
  (* ...versus the stream cut across two shards, the boundary region
     double-reported (an in-flight append can land durably on the
     source while the registry already routes the tenant to the
     destination). *)
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  let rec drop n = function
    | _ :: rest when n > 0 -> drop (n - 1) rest
    | l -> l
  in
  let split =
    [
      fake_result (take (min (List.length stream) (cut + overlap)) stream);
      fake_result (drop (max 0 (cut - overlap)) stream);
    ]
  in
  List.for_all
    (fun (tenant, n) ->
      recovered_prefix whole ~tenant = n
      && recovered_prefix split ~tenant = n)
    [ (7, n1); (9, n2) ]

let recover_suite =
  ( "shard.recover",
    [
      case "prefix_length" (fun () ->
          Alcotest.(check int) "empty" 0 (Shard.Recover.prefix_length []);
          Alcotest.(check int) "full" 4 (Shard.Recover.prefix_length [ 1; 2; 3; 4 ]);
          Alcotest.(check int) "gap stops the prefix" 2
            (Shard.Recover.prefix_length [ 1; 2; 4; 5 ]);
          Alcotest.(check int) "no 1" 0 (Shard.Recover.prefix_length [ 2; 3 ]));
      prop "interleaving two tenants' streams never changes either prefix"
        ~count:300 gen_interleaving interleave_invariance_law;
    ] )

(* -- the tier end-to-end ---------------------------------------------------- *)

(* Drive a real two-tenant tier with a generated interleaving (no
   open-loop clients), quiesce, and audit: every submission of both
   tenants must be acknowledged, recovered, and form a complete
   per-tenant prefix — whatever the interleaving order. *)
let driven_tier_law order =
  let sim = Sim.create ~seed:77L () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let power = Power.Power_domain.create sim Power.Psu.default in
  let tier =
    Shard.Tier.attach sim ~vmm ~power
      ~config:
        {
          Shard.Tier.default_config with
          Shard.Tier.shards = 2;
          tenants = 2;
          clients = 0;
          payload_bytes = 64;
          horizon = Time.ms 50;
        }
      ~make_device:(fun () -> Storage.Hdd.create sim Storage.Hdd.default_7200rpm)
      ()
  in
  ignore
    (Process.spawn sim ~name:"driver" (fun () ->
         List.iter
           (fun first ->
             Shard.Tier.submit tier ~tenant:(if first then 1 else 2);
             Process.sleep (Time.us 120))
           order;
         Shard.Tier.quiesce tier));
  Sim.run sim;
  let n1 = List.length (List.filter Fun.id order) in
  let n2 = List.length order - n1 in
  let audit = Shard.Recover.audit tier in
  let results =
    [ Shard.Recover.shard_result tier 0; Shard.Recover.shard_result tier 1 ]
  in
  Shard.Tier.acked tier = List.length order
  && Shard.Tier.tenant_acked_count tier ~tenant:1 = n1
  && Shard.Tier.tenant_acked_count tier ~tenant:2 = n2
  && recovered_prefix results ~tenant:1 = n1
  && recovered_prefix results ~tenant:2 = n2
  && audit.Shard.Recover.a_lost = 0
  && audit.Shard.Recover.a_breaks = 0

let gen_order = QCheck2.Gen.(list_size (int_range 0 50) bool)

(* The ISSUE's rebalance unit test: a split lands mid-run and mains
   power dies shortly after, while traffic is flowing — so moved
   tenants have appends durable on the source *and* the destination.
   Recovery must read both shards and lose nothing acknowledged. *)
let mid_rebalance_crash () =
  let sim = Sim.create ~seed:90_1104L () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let power = Power.Power_domain.create sim Power.Psu.default in
  let tier =
    Shard.Tier.attach sim ~vmm ~power
      ~config:
        {
          Shard.Tier.default_config with
          Shard.Tier.shards = 2;
          tenants = 32;
          clients = 64;
          mean_interval = Time.ms 1;
          payload_bytes = 96;
          horizon = Time.ms 40;
        }
      ~make_device:(fun () -> Storage.Hdd.create sim Storage.Hdd.default_7200rpm)
      ()
  in
  let moved = ref 0 in
  Sim.schedule_at sim (Time.of_ns 15_000_000) (fun () ->
      moved := Shard.Tier.split_shard tier ~source:0 ~target:1);
  Power.Power_domain.cut_at power (Time.of_ns 20_000_000);
  Sim.run sim;
  Alcotest.(check bool) "the split moved buckets" true (!moved > 0);
  Alcotest.(check bool) "the cut stopped the tier" true
    (Shard.Tier.stopped tier);
  Alcotest.(check bool) "tenants were acknowledged" true
    (Shard.Tier.acked tier > 0);
  (* Some moved tenant's history must genuinely straddle the shards —
     otherwise this test is not exercising the mid-rebalance shape. *)
  let seqs_of shard =
    Shard.Recover.tenant_seqs [ Shard.Recover.shard_result tier shard ]
  in
  let on0 = seqs_of 0 and on1 = seqs_of 1 in
  let straddlers =
    Hashtbl.fold
      (fun tenant _ acc -> if Hashtbl.mem on1 tenant then acc + 1 else acc)
      on0 0
  in
  Alcotest.(check bool) "a tenant's history spans source and destination" true
    (straddlers > 0);
  let audit = Shard.Recover.audit tier in
  Alcotest.(check int) "no acknowledged entry lost" 0
    audit.Shard.Recover.a_lost;
  Alcotest.(check int) "no tenant broken" 0 audit.Shard.Recover.a_breaks

(* Same cell config, run twice through [Cell.run]: bit-identical
   digests — the determinism the bench's jobs=1 ≡ jobs=N gate rests
   on, pinned as a unit test. *)
let cell_deterministic () =
  let config =
    {
      Shard.Cell.c_name = "det";
      c_tier =
        {
          Shard.Tier.default_config with
          Shard.Tier.shards = 2;
          tenants = 8;
          clients = 16;
          mean_interval = Time.ms 2;
          horizon = Time.ms 30;
        };
      c_seed = 4242L;
      c_fault =
        {
          Shard.Cell.f_cut_at = None;
          f_split_at = Some (Time.ms 15, 0, 1);
        };
    }
  in
  let a = Shard.Cell.run config and b = Shard.Cell.run config in
  Alcotest.(check string) "digest" (Shard.Cell.digest a) (Shard.Cell.digest b);
  Alcotest.(check bool) "split happened" true (a.Shard.Cell.r_buckets_moved > 0);
  Alcotest.(check int) "clean audit" 0 a.Shard.Cell.r_audit.Shard.Recover.a_lost

let tier_suite =
  ( "shard.tier",
    [
      prop "driven two-tenant interleavings recover complete prefixes"
        ~count:15 gen_order driven_tier_law;
      case "mid-rebalance power cut recovers both shards" mid_rebalance_crash;
      case "cell runs are deterministic" cell_deterministic;
    ] )

let suites = [ tenant_suite; registry_suite; recover_suite; tier_suite ]
