lib/power/power_domain.ml: Desim List Psu Sim Storage Time
