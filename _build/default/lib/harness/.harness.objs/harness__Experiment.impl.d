lib/harness/experiment.ml: Audit Dbms Desim Hashtbl Hypervisor List Option Power Process Rapilog Scenario Sim Stats Storage Time Workload
