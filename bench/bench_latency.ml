(* fig4-latency: commit latency under the update microbenchmark. One
   small update per transaction, nothing to amortise the log force:
   ack-on-media pays the rotational wait, ack-on-buffer pays IPC plus a
   memory copy. *)

open Harness
open Bench_support

let fig4 =
  {
    id = "fig4-latency";
    title = "Fig 4: commit latency, update microbenchmark, 8 clients, disk";
    description =
      "commit-latency distribution on the update microbenchmark at 8 clients";
    run =
      (fun ~quick ->
        Report.section
          "Fig 4: commit latency (us), update microbenchmark, 8 clients, 7200 rpm disk";
        let config =
          {
            (base_config ~quick) with
            Scenario.clients = 8;
            workload = Scenario.Micro Workload.Microbench.default_config;
          }
        in
        print_config_line config;
        let rows =
          List.map
            (fun mode ->
              let r = steady { config with Scenario.mode } in
              [
                Scenario.mode_name mode;
                Report.float_cell r.Experiment.latency_mean_us;
                Report.float_cell r.Experiment.latency_p50_us;
                Report.float_cell r.Experiment.latency_p95_us;
                Report.float_cell r.Experiment.latency_p99_us;
                Report.float_cell r.Experiment.throughput;
              ])
            all_modes
        in
        Report.table
          ~columns:[ "config"; "mean"; "p50"; "p95"; "p99"; "txn/s" ]
          ~rows;
        Report.note
          "shape target: sync p50 ~ one rotation (8300us); rapilog p50 well under 1ms");
  }

let experiments = [ fig4 ]
