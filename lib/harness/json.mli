(** A minimal JSON writer and validating reader (no external deps).

    The machine-readable bench harnesses ([perf.exe],
    [crash_surface.exe]) serialise their reports with this, and their
    [--check] modes re-parse the emitted text to assert well-formedness.
    It supports exactly the JSON the reports need: objects, arrays,
    strings, numbers, booleans and [null] (used by bench reports to
    mark measurements that were skipped as meaningless, e.g. a
    parallel-vs-serial speedup on a single-core machine). *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

val to_string : t -> string
(** Serialise, followed by a trailing newline. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document; raises {!Parse_error} on malformed
    input or trailing garbage. *)

val member : string -> t -> t option
(** [member key json] is the value of [key] when [json] is an object
    that binds it. *)

val to_num : t -> float option
val to_bool : t -> bool option
