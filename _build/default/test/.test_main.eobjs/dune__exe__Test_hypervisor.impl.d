test/test_hypervisor.ml: Alcotest Desim Hypervisor Process Sim Storage String Testu Time
