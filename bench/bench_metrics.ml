(* metrics-breakdown: where the milliseconds go. Runs the update
   microbenchmark with the metrics registry installed and prints the
   per-stage commit-path latency histograms — client-visible total,
   engine exec/force, WAL force write, virtio service, trusted-logger
   admission/copy/ring-wait/drain, physical device write — for the two
   poles of the design space (sync on disk vs RapiLog) at low and high
   concurrency. Stage names and the matching JSON schema are documented
   in docs/OBSERVABILITY.md. *)

open Harness
open Bench_support

let cells = [ (Scenario.Native_sync, 1); (Scenario.Native_sync, 32);
              (Scenario.Rapilog, 1); (Scenario.Rapilog, 32) ]

let breakdown =
  {
    id = "metrics-breakdown";
    title = "Per-stage commit-latency breakdown, sync-disk vs rapilog";
    description =
      "per-stage commit-path latency spans (queue, copy, ring, device) sync vs rapilog";
    run =
      (fun ~quick ->
        Report.section
          "Per-stage commit-latency breakdown (us), update microbenchmark";
        let config =
          {
            (base_config ~quick) with
            Scenario.workload = Scenario.Micro Workload.Microbench.default_config;
          }
        in
        print_config_line config;
        List.iter
          (fun (mode, clients) ->
            let config = { config with Scenario.mode; clients } in
            Report.subsection
              (Printf.sprintf "%s, %d client%s" (Scenario.mode_name mode)
                 clients (if clients = 1 then "" else "s"));
            let result, registry = Experiment.run_steady_metrics config in
            Report.kvf "throughput" "%.0f txn/s" result.Experiment.throughput;
            Report.kvf "client latency p50/p99" "%s / %s us"
              (Report.float_cell result.Experiment.latency_p50_us)
              (Report.float_cell result.Experiment.latency_p99_us);
            Metrics_report.print registry)
          cells;
        Report.note
          "stage latencies are simulated time; commit.total ~ commit.exec + \
           commit.force per transaction");
  }

let experiments = [ breakdown ]
