lib/dbms/lsn.ml: Format Int Stdlib
