(** ARIES-style crash recovery.

    Given the *durable* (post-crash media) contents of the log and data
    devices, recovery rebuilds the database state that the committed
    transactions define:

    + {b scan} — read the durable log region and decode records until the
      first invalid one (the CRC cuts off a torn tail);
    + {b analysis} — classify transactions into committed / aborted /
      losers (no outcome record in the durable log);
    + {b redo} — repeating history from the master block's redo point:
      re-apply every update whose LSN is beyond the containing page's
      [page_lsn];
    + {b undo} — roll back the losers' updates in reverse LSN order using
      the logged before-images (strict 2PL guarantees a loser's update is
      the last durable-logged write of its key, so reverse application is
      exact).

    The result also reports what was scanned and applied, which the
    durability audit and the recovery experiments inspect. *)

type result = {
  store : (int, string) Hashtbl.t;  (** recovered key → value *)
  records : (Log_record.t * Lsn.t) list;
      (** the decoded durable log, for audits that need per-transaction
          write sets *)
  parities : (int, int) Hashtbl.t;
      (** for each page with an intact on-device image: which of its two
          slots holds the newest one (the restart path's flushes must
          avoid overwriting it) *)
  committed : int list;  (** txids with a durable commit record, ascending *)
  aborted : int list;
  losers : int list;
  durable_records : int;  (** records decoded before the log ended *)
  durable_end : Lsn.t;  (** LSN of the durable log prefix *)
  redo_start : Lsn.t;
  redo_applied : int;
  undo_applied : int;
  pages_loaded : int;
}

type replay_stats = {
  s_durable_records : int;
  s_durable_bytes : int;  (** LSN of the durable log prefix *)
  s_committed : int;
  s_aborted : int;
  s_losers : int;
  s_redo_applied : int;
  s_undo_applied : int;
  s_pages_loaded : int;
  s_store_keys : int;
}
(** A flat scalar summary of one recovery pass — what the crash-surface
    sweep records per crash point, and what two runs over the same media
    must reproduce identically (recovery is a pure function of durable
    media). *)

val stats : result -> replay_stats

val pp_stats : Format.formatter -> replay_stats -> unit

val run :
  log_device:Storage.Block.t ->
  data_device:Storage.Block.t ->
  wal_config:Wal.config ->
  pool_config:Buffer_pool.config ->
  result
(** Pure inspection of durable media: callable from any context and at
    any simulated time (normally after a crash). *)

val read_durable_log : log_device:Storage.Block.t -> wal_config:Wal.config -> string
(** The raw durable log stream bytes; exposed for tests. *)

val scan_records :
  log_device:Storage.Block.t -> wal_config:Wal.config -> (Log_record.t * Lsn.t) list
(** Chunked scan of the durable log: decodes records incrementally and
    stops at the first invalid one, reading only slightly past the valid
    log even when the device's written extent is much larger (the
    single-disk layout). This is what {!run} uses. *)
