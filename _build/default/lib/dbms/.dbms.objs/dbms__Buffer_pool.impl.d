lib/dbms/buffer_pool.ml: Desim Hashtbl Hypervisor Int List Lsn Page Process Resource Sim Storage String Time
