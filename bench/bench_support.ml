(* Shared plumbing for the experiment benches. *)

open Desim
open Harness

type experiment = {
  id : string;
  title : string;
  description : string;
      (* one line for [--list]: what the experiment measures and why *)
  run : quick:bool -> unit;
}

let base_config ~quick =
  Scen.Builder.(
    start ()
    |> warmup (if quick then Time.ms 200 else Time.ms 400)
    |> duration (if quick then Time.ms 800 else Time.sec 2)
    |> build)

let client_sweep ~quick = if quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32; 64 ]

let failure_trials ~quick = if quick then 5 else 20

let all_modes = Scenario.all_modes

let mode_columns = List.map Scenario.mode_name all_modes

let steady config = Experiment.run_steady config

(* Throughput of every mode at each client count, as a printable series.
   The cells are independent simulations, so they fan out across the
   RAPILOG_JOBS worker pool. *)
let throughput_sweep ~config ~clients ~modes =
  List.map
    (fun (n, row) ->
      (float_of_int n, List.map (fun r -> r.Experiment.throughput) row))
    (Experiment.sweep ~config ~clients ~modes ())

let print_config_line (config : Scenario.config) =
  Report.kv "engine" config.Scenario.profile.Dbms.Engine_profile.name;
  Report.kv "device" (Scenario.device_name config.Scenario.device);
  Report.kv "workload"
    (match config.Scenario.workload with
    | Scenario.Tpcc _ -> "tpcc-lite"
    | Scenario.Micro _ -> "microbench"
    | Scenario.Ycsb _ -> "ycsb-lite");
  Report.kvf "seed" "%Ld" config.Scenario.seed

let bool_cell b = if b then "yes" else "NO"
