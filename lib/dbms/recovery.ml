type result = {
  store : (int, string) Hashtbl.t;
  records : (Log_record.t * Lsn.t) list;
  parities : (int, int) Hashtbl.t;
  committed : int list;
  aborted : int list;
  losers : int list;
  durable_records : int;
  durable_end : Lsn.t;
  redo_start : Lsn.t;
  redo_applied : int;
  undo_applied : int;
  pages_loaded : int;
}

type replay_stats = {
  s_durable_records : int;
  s_durable_bytes : int;
  s_committed : int;
  s_aborted : int;
  s_losers : int;
  s_redo_applied : int;
  s_undo_applied : int;
  s_pages_loaded : int;
  s_store_keys : int;
}

let stats result =
  {
    s_durable_records = result.durable_records;
    s_durable_bytes = Lsn.to_int result.durable_end;
    s_committed = List.length result.committed;
    s_aborted = List.length result.aborted;
    s_losers = List.length result.losers;
    s_redo_applied = result.redo_applied;
    s_undo_applied = result.undo_applied;
    s_pages_loaded = result.pages_loaded;
    s_store_keys = Hashtbl.length result.store;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "records=%d bytes=%d committed=%d aborted=%d losers=%d redo=%d undo=%d \
     pages=%d keys=%d"
    s.s_durable_records s.s_durable_bytes s.s_committed s.s_aborted s.s_losers
    s.s_redo_applied s.s_undo_applied s.s_pages_loaded s.s_store_keys

let read_durable_log ~log_device ~wal_config =
  let extent = Storage.Block.durable_extent log_device in
  let start = wal_config.Wal.log_start_lba in
  if extent <= start then ""
  else Storage.Block.durable_read log_device ~lba:start ~sectors:(extent - start)

(* Chunked scan: read the log region incrementally and decode as we go,
   stopping at the first definitively-invalid record. This keeps memory
   proportional to the valid log even when the device's written extent is
   dominated by something else (the single-disk layout puts data pages on
   the same device, far past the log region). *)
let scan_chunk_sectors = 4096

let scan_records ~log_device ~wal_config =
  let sector_size = (Storage.Block.info log_device).Storage.Block.sector_size in
  let extent = Storage.Block.durable_extent log_device in
  let start = wal_config.Wal.log_start_lba in
  let buf = Buffer.create (scan_chunk_sectors * sector_size) in
  let records = ref [] in
  let pos = ref 0 in
  let finished = ref false in
  let next_lba = ref start in
  while not !finished do
    if !next_lba >= extent then finished := true
    else begin
      let sectors = min scan_chunk_sectors (extent - !next_lba) in
      Buffer.add_string buf
        (Storage.Block.durable_read log_device ~lba:!next_lba ~sectors);
      next_lba := !next_lba + sectors;
      let contents = Buffer.contents buf in
      let progressing = ref true in
      while !progressing do
        match Log_record.decode contents ~pos:!pos with
        | Some (record, size) ->
            pos := !pos + size;
            records := (record, Lsn.of_int !pos) :: !records
        | None -> progressing := false
      done;
      (* If decoding stalled with more than a maximal record still
         unread, the next bytes are not a truncated record — they are
         the end of the log. *)
      if String.length contents - !pos > Log_record.max_body + 64 then
        finished := true
    end
  done;
  List.rev !records

type outcome = Won | Lost

let analyse records =
  let outcomes = Hashtbl.create 256 in
  let seen = Hashtbl.create 256 in
  let aborted = Hashtbl.create 16 in
  let note_seen txid = Hashtbl.replace seen txid () in
  List.iter
    (fun (record, _lsn) ->
      match record with
      | Log_record.Begin { txid } -> note_seen txid
      | Log_record.Update { txid; _ } -> note_seen txid
      | Log_record.Commit { txid } ->
          note_seen txid;
          Hashtbl.replace outcomes txid Won
      | Log_record.Abort { txid } ->
          note_seen txid;
          Hashtbl.replace outcomes txid Lost;
          Hashtbl.replace aborted txid ()
      | Log_record.Checkpoint _ | Log_record.Noop _ -> ())
    records;
  let committed = ref [] and aborted_list = ref [] and losers = ref [] in
  Hashtbl.iter
    (fun txid () ->
      match Hashtbl.find_opt outcomes txid with
      | Some Won -> committed := txid :: !committed
      | Some Lost -> aborted_list := txid :: !aborted_list
      | None -> losers := txid :: !losers)
    seen;
  ( List.sort Int.compare !committed,
    List.sort Int.compare !aborted_list,
    List.sort Int.compare !losers )

(* Candidate pages: the on-media log is append-only (only the in-guest
   WAL memory is ever truncated), so every key that ever reached a page
   image appears in some durable update record — the distinct pages of
   those keys are exactly the slots worth reading. This keeps recovery
   proportional to the touched working set instead of the (sparse)
   key-space extent. *)
let candidate_page_ids ~pool_config records =
  let keys_per_page = pool_config.Buffer_pool.keys_per_page in
  let ids = Hashtbl.create 1024 in
  List.iter
    (fun (record, _lsn) ->
      match record with
      | Log_record.Update { key; _ } ->
          Hashtbl.replace ids (Page.page_of_key ~keys_per_page key) ()
      | Log_record.Begin _ | Log_record.Commit _ | Log_record.Abort _
      | Log_record.Checkpoint _ | Log_record.Noop _ ->
          ())
    records;
  ids

(* Each page owns a pair of slots (ping-pong torn-page protection); the
   newest slot with an intact CRC wins, and its parity is reported so a
   restart's flushes keep avoiding the winner. *)
let load_pages ~data_device ~pool_config records =
  let sector_size = (Storage.Block.info data_device).Storage.Block.sector_size in
  let sectors_per_page = pool_config.Buffer_pool.page_bytes / sector_size in
  let extent = Storage.Block.durable_extent data_device in
  let pages = Hashtbl.create 256 in
  let parities = Hashtbl.create 256 in
  Hashtbl.iter
    (fun id () ->
      let lba = Buffer_pool.lba_of_page pool_config ~sector_size id in
      if lba < extent then begin
        let best = ref None in
        for parity = 0 to Buffer_pool.slot_count - 1 do
          let image =
            Storage.Block.durable_read data_device
              ~lba:(lba + (parity * sectors_per_page))
              ~sectors:sectors_per_page
          in
          match Page.deserialize image with
          | Some page when page.Page.id = id -> (
              match !best with
              | Some (_, chosen)
                when Lsn.(page.Page.page_lsn <= chosen.Page.page_lsn) ->
                  ()
              | Some _ | None -> best := Some (parity, page))
          | Some _ | None -> ()  (* unwritten slot, or torn by the crash *)
        done;
        match !best with
        | Some (parity, page) ->
            Hashtbl.replace pages id page;
            Hashtbl.replace parities id parity
        | None -> ()
      end)
    (candidate_page_ids ~pool_config records);
  (pages, parities)

let run ~log_device ~data_device ~wal_config ~pool_config =
  let records = scan_records ~log_device ~wal_config in
  let committed, aborted, losers = analyse records in
  let loser_set = Hashtbl.create 16 in
  List.iter (fun txid -> Hashtbl.replace loser_set txid ()) losers;
  let redo_start =
    match Wal.read_master wal_config ~device:log_device with
    | Some lsn -> lsn
    | None -> Lsn.zero
  in
  let pages, parities = load_pages ~data_device ~pool_config records in
  let keys_per_page = pool_config.Buffer_pool.keys_per_page in
  let page_of_key key =
    let id = Page.page_of_key ~keys_per_page key in
    match Hashtbl.find_opt pages id with
    | Some page -> page
    | None ->
        let page = Page.create ~id in
        Hashtbl.replace pages id page;
        page
  in
  (* Redo: repeating history from the redo point, guarded by page LSNs. *)
  let redo_applied = ref 0 in
  List.iter
    (fun (record, lsn) ->
      match record with
      | Log_record.Update { key; after; _ } when Lsn.(redo_start < lsn) ->
          let page = page_of_key key in
          if Lsn.(page.Page.page_lsn < lsn) then begin
            (* An empty after-image (from a compensating update whose key
               did not exist before the transaction) encodes a delete. *)
            if String.length after = 0 then begin
              Hashtbl.remove page.Page.values key;
              page.Page.page_lsn <- lsn
            end
            else Page.set page ~key ~value:after ~lsn;
            incr redo_applied
          end
      | Log_record.Update _ | Log_record.Begin _ | Log_record.Commit _
      | Log_record.Abort _ | Log_record.Checkpoint _ | Log_record.Noop _ ->
          ())
    records;
  (* Undo the losers, newest first. An empty before-image encodes "key did
     not exist". *)
  let undo_applied = ref 0 in
  List.iter
    (fun (record, _lsn) ->
      match record with
      | Log_record.Update { txid; key; before; _ }
        when Hashtbl.mem loser_set txid ->
          let page = page_of_key key in
          if String.length before = 0 then Hashtbl.remove page.Page.values key
          else Hashtbl.replace page.Page.values key before;
          incr undo_applied
      | Log_record.Update _ | Log_record.Begin _ | Log_record.Commit _
      | Log_record.Abort _ | Log_record.Checkpoint _ | Log_record.Noop _ ->
          ())
    (List.rev records);
  let store = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun _id page ->
      Hashtbl.iter (fun key value -> Hashtbl.replace store key value) page.Page.values)
    pages;
  {
    store;
    records;
    parities;
    committed;
    aborted;
    losers;
    durable_records = List.length records;
    durable_end =
      (match List.rev records with [] -> Lsn.zero | (_, lsn) :: _ -> lsn);
    redo_start;
    redo_applied = !redo_applied;
    undo_applied = !undo_applied;
    pages_loaded = Hashtbl.length pages;
  }
