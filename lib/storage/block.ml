type info = { model : string; sector_size : int; capacity_sectors : int }

type ops = {
  op_read : lba:int -> sectors:int -> string;
  op_write : lba:int -> data:string -> fua:bool -> unit;
  op_flush : unit -> unit;
  op_power_cut : unit -> unit;
  op_durable_read : lba:int -> sectors:int -> string;
  op_durable_extent : unit -> int;
}

type t = { info : info; stats : Disk_stats.t; ops : ops; journal_id : int }

let make ?(journal_id = -1) ~info ~stats ~ops () =
  { info; stats; ops; journal_id }

let info t = t.info
let stats t = t.stats
let journal_id t = t.journal_id

let check_range t ~lba ~sectors =
  assert (lba >= 0 && sectors > 0);
  assert (lba + sectors <= t.info.capacity_sectors)

let read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  t.ops.op_read ~lba ~sectors

let write t ?(fua = false) ~lba data =
  let len = String.length data in
  assert (len > 0 && len mod t.info.sector_size = 0);
  check_range t ~lba ~sectors:(len / t.info.sector_size);
  t.ops.op_write ~lba ~data ~fua

let flush t = t.ops.op_flush ()
let power_cut t = t.ops.op_power_cut ()

let durable_read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  t.ops.op_durable_read ~lba ~sectors

let durable_extent t = t.ops.op_durable_extent ()

let sectors_of_bytes t bytes =
  (bytes + t.info.sector_size - 1) / t.info.sector_size

module Media = struct
  (* Page-level copy-on-write store (PR 8). Sectors group into pages of
     [page_sectors]; a page is a flat [Bytes.t] plus the epoch token of
     the media that owns it. A media may mutate a page in place only
     while the page's epoch is physically its own current epoch; any
     other page is shared — with a {!fork} sibling or a pre-fork
     ancestor image — and the first write copies it. {!fork} is
     therefore O(pages-in-table): copy the table, hand BOTH sides fresh
     epoch tokens (every pre-fork page becomes shared), and let
     subsequent writes diverge page by page. Shared pages are replaced,
     never mutated, so a fork can be handed to another domain while the
     parent keeps writing — the crash sweep's fork engine does exactly
     that.

     Compared to the PR 3 sector-granular table this also removes the
     String.sub-per-sector allocation from every write: steady-state
     writes blit into an owned page and allocate nothing, which benefits
     every live replay — the pair sweep's full replays most of all. *)

  let page_sectors = 8

  type page = { data : Bytes.t; epoch : unit ref }

  type t = {
    sector_size : int;
    capacity_sectors : int;
    pages : (int, page) Hashtbl.t;
    mutable epoch : unit ref;
        (* pages stamped with this exact token are exclusively ours *)
    mutable extent : int;
    base : t option;
        (* an overlay reads through to [base] where it has no page of
           its own; see {!overlay} *)
  }

  let create ~sector_size ~capacity_sectors =
    assert (sector_size > 0 && capacity_sectors > 0);
    {
      sector_size;
      capacity_sectors;
      pages = Hashtbl.create 1024;
      epoch = ref ();
      extent = 0;
      base = None;
    }

  let overlay base =
    {
      sector_size = base.sector_size;
      capacity_sectors = base.capacity_sectors;
      pages = Hashtbl.create 64;
      epoch = ref ();
      extent = base.extent;
      base = Some base;
    }

  let fork t =
    if t.base <> None then
      invalid_arg "Media.fork: fork a root image, not an overlay";
    let child = { t with pages = Hashtbl.copy t.pages; epoch = ref () } in
    (* the parent's own epoch is retired too: every pre-fork page is now
       shared with the child, so the parent must also copy-on-write *)
    t.epoch <- ref ();
    child

  let sector_size t = t.sector_size
  let capacity_sectors t = t.capacity_sectors

  let rec find_page t pidx =
    match Hashtbl.find_opt t.pages pidx with
    | Some _ as hit -> hit
    | None -> (
        match t.base with Some base -> find_page base pidx | None -> None)

  let read t ~lba ~sectors =
    let ss = t.sector_size in
    let buf = Bytes.make (sectors * ss) '\000' in
    let i = ref 0 in
    while !i < sectors do
      let s = lba + !i in
      let pidx = s / page_sectors in
      let off = s mod page_sectors in
      let n = min (page_sectors - off) (sectors - !i) in
      (match find_page t pidx with
      | Some p -> Bytes.blit p.data (off * ss) buf (!i * ss) (n * ss)
      | None -> ());
      i := !i + n
    done;
    Bytes.unsafe_to_string buf

  (* The page [pidx] as in-place-writable bytes: an owned page directly;
     a shared or read-through page via copy-up (read-modify-write at
     page granularity); an absent page as zeroes. *)
  let writable_page t pidx =
    match Hashtbl.find_opt t.pages pidx with
    | Some p when p.epoch == t.epoch -> p.data
    | Some p ->
        let data = Bytes.copy p.data in
        Hashtbl.replace t.pages pidx { data; epoch = t.epoch };
        data
    | None ->
        let data =
          match t.base with
          | Some base -> (
              match find_page base pidx with
              | Some p -> Bytes.copy p.data
              | None -> Bytes.make (page_sectors * t.sector_size) '\000')
          | None -> Bytes.make (page_sectors * t.sector_size) '\000'
        in
        Hashtbl.replace t.pages pidx { data; epoch = t.epoch };
        data

  let write_sectors t ~lba ~data ~count =
    let ss = t.sector_size in
    let i = ref 0 in
    while !i < count do
      let s = lba + !i in
      let pidx = s / page_sectors in
      let off = s mod page_sectors in
      let n = min (page_sectors - off) (count - !i) in
      let page = writable_page t pidx in
      Bytes.blit_string data (!i * ss) page (off * ss) (n * ss);
      i := !i + n
    done;
    if lba + count > t.extent then t.extent <- lba + count

  let write t ~lba ~data =
    let len = String.length data in
    assert (len mod t.sector_size = 0);
    write_sectors t ~lba ~data ~count:(len / t.sector_size)

  let write_torn t ~rng ~lba ~data =
    let len = String.length data in
    assert (len mod t.sector_size = 0);
    let total = len / t.sector_size in
    let persisted = Desim.Rng.int rng (total + 1) in
    if persisted > 0 then write_sectors t ~lba ~data ~count:persisted

  let write_prefix t ~lba ~data ~sectors =
    assert (String.length data mod t.sector_size = 0);
    assert (sectors >= 0 && sectors * t.sector_size <= String.length data);
    if sectors > 0 then write_sectors t ~lba ~data ~count:sectors

  let extent t = t.extent
  let check_range = check_range
end

(* A frozen device over a media image: only the durable (untimed) side
   exists. The crash-surface reconstruction hands these to {!Dbms}
   recovery, which by design touches nothing but [durable_read] and
   [durable_extent] of a post-crash device. *)
let of_media ?(model = "frozen") media =
  let frozen op = fun _ -> failwith ("Block.of_media: " ^ op ^ " on frozen device") in
  make
    ~info:
      {
        model;
        sector_size = Media.sector_size media;
        capacity_sectors = Media.capacity_sectors media;
      }
    ~stats:(Disk_stats.create ())
    ~ops:
      {
        op_read = (fun ~lba ~sectors -> Media.read media ~lba ~sectors);
        op_write = (fun ~lba:_ ~data:_ ~fua:_ -> frozen "write" ());
        op_flush = (fun () -> frozen "flush" ());
        op_power_cut = (fun () -> ());
        op_durable_read = (fun ~lba ~sectors -> Media.read media ~lba ~sectors);
        op_durable_extent = (fun () -> Media.extent media);
      }
    ()
