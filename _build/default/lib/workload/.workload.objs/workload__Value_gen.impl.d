lib/workload/value_gen.ml: Bytes Desim Rng String
