open Desim

type config = {
  keys : int;
  value_bytes : int;
  zipf_theta : float;
  read_fraction : float;
  ops_per_txn : int;
}

let default_config =
  { keys = 10_000; value_bytes = 100; zipf_theta = 0.99; read_fraction = 0.5; ops_per_txn = 2 }

let workload_a = default_config
let workload_b = { default_config with read_fraction = 0.95 }

type t = {
  config : config;
  rng : Rng.t;
  dist : Key_dist.t;
  mutable reads : int;
  mutable updates : int;
}

let create rng config =
  assert (config.keys > 0 && config.ops_per_txn > 0);
  assert (config.read_fraction >= 0. && config.read_fraction <= 1.);
  let dist =
    if config.zipf_theta = 0. then Key_dist.uniform ~n:config.keys
    else Key_dist.zipf ~n:config.keys ~theta:config.zipf_theta
  in
  { config; rng = Rng.split rng; dist; reads = 0; updates = 0 }

let config t = t.config

let initial_rows t =
  List.init t.config.keys (fun key ->
      (key, Value_gen.make t.rng ~tag:(Printf.sprintf "y%d:" key) ~len:t.config.value_bytes))

let next t =
  List.init t.config.ops_per_txn (fun _ ->
      let key = Key_dist.sample t.rng t.dist in
      if Rng.float t.rng < t.config.read_fraction then begin
        t.reads <- t.reads + 1;
        Dbms.Engine.Get { key }
      end
      else begin
        t.updates <- t.updates + 1;
        Dbms.Engine.Put
          {
            key;
            value = Value_gen.make t.rng ~tag:(Printf.sprintf "y%d:" key) ~len:t.config.value_bytes;
          }
      end)

let reads_issued t = t.reads
let updates_issued t = t.updates
