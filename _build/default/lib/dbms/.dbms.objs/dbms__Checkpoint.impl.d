lib/dbms/checkpoint.ml: Buffer_pool Desim Hypervisor List Log_record Process Time Wal
