(** RapiLog-Q: the trusted logger replicated to [n] nodes with a
    quorum-ack commit rule and an explicit leader-election protocol.

    Two layers live here, deliberately:

    {b The protocol} ({!Protocol}) is a pure message-level state machine
    — messages [Append], [Ack], [Elect], [Adopt] over per-node mailboxes
    — small enough for [test_model_check.ml] to explore exhaustively.
    Its safety invariant is {e committed-prefix monotonicity}: once an
    entry is quorum-acked (committed), no later schedule of deliveries,
    losses or elections may lose it or replace it, as long as at most
    the tolerated number of nodes die (the leader plus [k - 1]
    replicas). The invariant is checkable after every step via
    {!Protocol.check}.

    {b The runtime} ([t] below) is the simulated deployment of the same
    rules: [n] {!Replica}s behind per-node FIFO {!Link} pairs, a commit
    hook at {!Rapilog.Trusted_logger} admission that parks the writer
    until [k] acks arrive, and a recovery path that runs the election
    over the live nodes' watermarks and merges their longest durable
    prefixes. The runtime election is executed {e by} the protocol state
    machine ({!handoff} seeds a {!Protocol.t} from the live cluster and
    runs campaign/adopt to completion), so the thing the model checker
    proves is the thing the simulator runs.

    Why the merge is safe: links are FIFO, so each replica holds a
    consecutive prefix [1..m] of the admitted stream. A quorum-acked
    seq [s] has been received by at least [k] replicas, each therefore
    holding all of [1..s]. Losing the primary and any [k - 1] replicas
    leaves at least one live replica whose prefix covers [s], and
    {!merge_prefix} (max over live consecutive prefixes) retains it. *)

open Desim

(** The message-level state machine, exhaustively checkable.

    One distinguished primary plus [replicas] numbered replicas. The
    leader (primary at first, an elected replica after handoff) appends
    entries to its log and sends [Append] to every live replica; a
    replica acks what it accepts; the leader commits an entry once [k]
    distinct replica acks for it arrive (the leader's own copy rides
    free). On leader death a replica campaigns: it needs [n - k + 1]
    adoptions (counting its own), which intersects every commit quorum,
    and a replica refuses to adopt a candidate whose [(term, seq)]
    watermark is behind its own — so no candidate missing a committed
    entry can win. A new leader re-establishes prefix matching wholesale
    by replaying its full log on fresh channels (the wire is not a
    durability domain: every channel is cleared when a leadership
    dies). *)
module Protocol : sig
  type entry = { e_term : int; e_seq : int }

  type msg =
    | Append of { lterm : int; entry : entry }
        (** leader → replica: accept [entry]; [lterm] is the leader's
            term *)
    | Ack of { acker : int; aterm : int; seq : int }
        (** replica → leader: [seq] accepted under term [aterm] *)
    | Elect of { cterm : int; candidate : int; wm_term : int; wm_seq : int }
        (** candidate → replica: adopt me for term [cterm]; my log
            watermark is [(wm_term, wm_seq)] *)
    | Adopt of { adopter : int; aterm : int }
        (** replica → candidate: adopted for term [aterm] *)

  type lead =
    | Primary  (** the original primary machine leads *)
    | Replica_leader of int  (** an elected replica leads *)
    | Candidate of int  (** an election is in flight *)
    | No_leader  (** the leadership died; nobody campaigned yet *)

  type t

  val create : replicas:int -> quorum:int -> t
  (** Fresh cluster: primary leading with an empty log, all replicas
      alive and empty, term 1. Requires
      [1 <= quorum <= replicas]. *)

  val copy : t -> t
  (** Independent snapshot, for model-check backtracking. *)

  val seed :
    t -> primary_len:int -> prefixes:int array -> committed:int -> term:int -> unit
  (** Overwrite the state with a mid-flight cluster: the primary holds
      entries [1..primary_len], replica [r] the prefix
      [1..prefixes.(r)], entries [1..committed] are quorum-acked, all
      under a single term. Used by the runtime to hand a live cluster's
      watermarks to the protocol for election. *)

  (** {2 Observers} *)

  val lead : t -> lead
  val term : t -> int

  val commit_watermark : t -> int
  (** Highest committed seq; monotone — the invariant under test. *)

  val committed : t -> entry list
  (** The committed prefix (oldest first) — a ghost variable: the
      checker's record of what was quorum-acked, never rewritten. *)

  val adopts : t -> int
  (** Adoptions the current candidate holds (counting itself). *)

  val adoption_quorum : t -> int
  (** [n - k + 1] — adoptions needed to take leadership. *)

  val primary_alive : t -> bool
  val node_alive : t -> int -> bool
  val node_term : t -> int -> int

  val node_log : t -> int -> entry list
  (** Replica [r]'s log, oldest first. *)

  val watermark : t -> int -> int * int
  (** Replica [r]'s [(term of last entry, log length)] — the quantity
      compared lexicographically by the vote rule. *)

  val inbox : t -> int -> msg list
  (** Replica [r]'s pending inbound messages, oldest first. *)

  val outbox : t -> int -> msg list
  (** Replica [r]'s pending responses (acks/adoptions), oldest first —
      in flight towards the leader/candidate. *)

  val best_candidate : t -> int option
  (** The live replica with the maximal watermark (lowest id on ties) —
      the candidate the runtime lets campaign. [None] if no replica is
      alive. *)

  (** {2 Operations}

      Each operation is guarded by a [can_] predicate; applying a
      disabled operation raises [Invalid_argument]. The model checker
      enumerates exactly the enabled operations at each state. *)

  val can_append : t -> bool
  val append : t -> entry
  (** The leader appends the next entry to its log and sends [Append]
      to every live replica. *)

  val can_deliver : t -> int -> bool
  val deliver : t -> int -> unit
  (** Replica [r] processes its oldest inbound message. [Append]:
      accept (extending, deduplicating, or truncate-and-replacing a
      conflicting suffix) and queue an [Ack]; stale terms are dropped.
      [Elect]: adopt iff the candidate's term is newer and its
      watermark is not behind [r]'s, else drop. *)

  val can_collect : t -> int -> bool
  val collect : t -> int -> unit
  (** The leader/candidate processes replica [r]'s oldest response.
      [Ack]: count towards commit; on the [k]-th distinct ack the
      committed watermark advances (prefix-closed by per-link FIFO).
      [Adopt]: count towards adoption; on the [n - k + 1]-th the
      candidate becomes leader, clears every channel and replays its
      full log to all live replicas. *)

  val can_lose_primary : t -> bool
  val lose_primary : t -> unit
  (** Machine loss of the primary: every channel is cleared (the wire
      is severed, not durable); if it led, leadership becomes
      {!No_leader}. *)

  val can_lose : t -> int -> bool
  val lose : t -> int -> unit
  (** Machine loss of replica [r]: its channels clear; if it led or was
      campaigning, leadership becomes {!No_leader} and every channel
      clears. *)

  val can_campaign : t -> int -> bool
  val campaign : t -> int -> unit
  (** Live replica [r] campaigns for the next term (max over live
      terms, plus one): every channel clears, [r] adopts itself and
      sends [Elect] to every live replica. With [k = n] the adoption
      quorum is 1 and [r] leads immediately. *)

  val check : t -> string list
  (** All invariant violations observable now, plus any recorded along
      the way (a committed entry truncated or rewritten): a committed
      entry held by no live node, or missing from an established
      leader's log. Empty ⇔ the committed prefix is intact. *)
end

(** {1 The simulated runtime} *)

type config = {
  replicas : int;  (** number of replica nodes, [>= 1] *)
  quorum : int;  (** acks required to commit, [1 <= quorum <= replicas] *)
  links : Link.config list;
      (** per-replica one-way link shape (used for both the data and
          ack direction of node [i], cycling if shorter than
          [replicas]); empty means {!Link.default} everywhere.
          Asymmetric lists model fast/slow replicas — the teeth of the
          under-replicated control cell. *)
}

val default : config
(** 3 replicas, majority quorum (2), default links. *)

val majority : int -> int
(** [majority n] = [n / 2 + 1]. *)

val merge_prefix :
  (int * int * string) list list -> (int * int * string) list
(** [merge_prefix per_node_entries] — each inner list a node's received
    [(seq, lba, data)] stream — takes each node's longest consecutive
    prefix [1..m] and unions them by seq, yielding the cluster's
    longest recoverable prefix in seq order. Idempotent and insensitive
    to the order of the node lists; the result covers every seq held by
    any node's consecutive prefix, hence every quorum-acked seq as long
    as one covering node is in the list. *)

type election = {
  el_term : int;  (** term the election concluded (or stalled) at *)
  el_leader : int;  (** elected replica id, [-1] if none was live *)
  el_adopters : int;  (** adoptions collected, counting the candidate *)
  el_quorum : bool;
      (** the adoption quorum [n - k + 1] was reached — recovery merged
          a prefix guaranteed to cover every quorum-acked commit. When
          false, recovery still merges best-effort (this is where an
          under-replicated cell loses). *)
}

type t

val attach :
  Sim.t ->
  config ->
  logger:Rapilog.Trusted_logger.t ->
  make_device:(int -> Storage.Block.t) ->
  t
(** Wire the quorum cluster into [logger]'s admission path: every
    admitted entry is sent on all live data links and the admitting
    writer parks until [quorum] acks arrive. [make_device i] builds
    replica [i]'s log device (a separate failure domain — do not
    register it with the primary's power domain).

    With {!Desim.Metrics} recording on, the hook observes
    ["logger.replicate"] (whole hook) and ["logger.quorum_wait"] (park
    time until the k-th ack). *)

val config : t -> config
val node_replica : t -> int -> Replica.t
val live_nodes : t -> int list

val commit_seq : t -> int
(** Highest quorum-acked seq. *)

val sent : t -> int
(** Entries pushed into the replication hook. *)

val acks : t -> int
(** Total acks delivered back (across all nodes and seqs). *)

val wire_in_flight : t -> int

val primary_lost : t -> unit
(** Machine loss of the primary: {e every} link in the cluster is
    severed — in-flight appends and acks die with the wire. Parked
    writers never resume (their machine is gone). *)

val node_lost : t -> int -> unit
(** Machine loss of replica [i]: its links sever (dropping any held
    partition backlog — loss wins over partition, see {!Link.sever});
    its acks no longer count toward quorums. *)

val partition_node : t -> int -> unit
(** Partition replica [i] off: both its links hold traffic. *)

val heal_node : t -> int -> unit
(** Heal replica [i]'s partition; the held backlog flushes in order. *)

val node_partitioned : t -> int -> bool

val handoff : t -> election
(** Elect a new leader among the live replicas by running the
    {!Protocol} state machine seeded with the cluster's current
    watermarks: the best candidate campaigns, live replicas vote by the
    watermark rule, and the result is recorded as {!last_election}.
    Re-runnable: each handoff bumps the term, so a second election
    (e.g. the elected leader dies too) concludes at a strictly higher
    term. Raises if a quorate election's protocol run ends with a
    violated invariant (it cannot, and we want to hear about it if it
    does). *)

val last_election : t -> election option

val recovery_log_device : t -> primary:Storage.Block.t -> Storage.Block.t
(** The recovered log: the primary's frozen durable media overlaid with
    {!merge_prefix} of the live nodes' received entries. If the primary
    is dead, runs {!handoff} first so the election verdict is on
    record; the merge itself is the same either way (and with the
    primary alive the overlay can only add entries the primary already
    admitted). *)
