(** RapiLog-R: the primary's trusted logger streaming admitted log
    entries to a remote {!Replica} over a pair of {!Link}s.

    The datapath hooks {!Rapilog.Trusted_logger.set_replication}: at the
    instant an entry is admitted into the trusted ring (the point where
    the local logger would acknowledge), it is also sent down the data
    link. The replica acknowledges on receipt — its buffer is its
    durability domain — over the ack link. Three policies govern what
    the commit waits for:

    - [Local]: the hook is not installed at all; byte-identical to the
      single-machine logger. The baseline.
    - [Replica_ack]: the admitting writer blocks until the replica's ack
      returns, so every {e acknowledged} commit exists on two machines.
      Survives losing the whole primary — buffer, PSU residual energy
      and all — at the price of one RTT of commit latency.
    - [Async_replica]: the entry is sent but the commit does not wait.
      The local durability contract (OS crash, power cut) is unchanged;
      machine loss can eat the entries still on the wire.

    [Replica_ack] assumes lossless links (the model has no retransmit;
    a dropped entry or ack would stall that commit forever). Use drops
    only with [Async_replica] or in raw link tests.

    Metrics (when recording): ["logger.replicate"] spans the full hook
    (send → return, including any ack wait), ["logger.replica_ack_wait"]
    just the wait for the remote ack, plus the links' ["net.link_delay"]
    and the replica's ["replica.drain"]. *)

open Desim

type policy = Local | Replica_ack | Async_replica

val policy_name : policy -> string
val policy_of_name : string -> policy option
val all_policies : policy list

type config = {
  policy : policy;
  data_link : Link.config;  (** primary → replica, carries log entries *)
  ack_link : Link.config;  (** replica → primary, carries acks *)
}

val default : config
(** [Replica_ack] over two {!Link.default} links (50 µs RTT, 10 GbE). *)

type t

val attach :
  Sim.t -> config -> logger:Rapilog.Trusted_logger.t -> replica_device:Storage.Block.t -> t
(** Build the replica node and both links, and (unless the policy is
    [Local]) install the replication hook on [logger]. [replica_device]
    must belong to the replica's failure domain — do {e not} register it
    with the primary's power domain. *)

val config : t -> config
val replica : t -> Replica.t

val wire_in_flight : t -> int
(** Entries + acks currently on either link. *)

val primary_lost : t -> unit
(** Machine loss on the primary: sever both links (entries already on
    the wire to the replica still count — they left the machine — but
    nothing further will). The replica keeps running. *)

val sent : t -> int
(** Entries handed to the data link. *)

val acked : t -> int
(** Replica acks that made it back to the primary. *)

val recovery_log_device : t -> primary:Storage.Block.t -> Storage.Block.t
(** The merged post-crash view of the log: a frozen copy of the
    primary's durable media with the replica's entries — the longest
    consecutive sequence prefix, in order — applied on top. Recovery
    reads this instead of the bare primary device; entries the replica
    holds beyond the primary's durable tail become durable-but-unacked
    extras at worst, which the audit already tolerates. *)
