open Desim

type t = {
  sim : Sim.t;
  members : Block.t array;
  chunk_sectors : int;
  sector_size : int;
}

type segment = { member : int; member_lba : int; global_off : int; sectors : int }

(* Split a global sector range into per-member segments at chunk
   boundaries. Pure in the geometry: the crash-surface journal
   reconstruction uses the same plan to map journaled volume-level
   submissions onto the member writes the run produced. *)
let plan ~members ~chunk_sectors ~lba ~sectors =
  assert (members > 0 && chunk_sectors > 0);
  let rec split lba remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let stripe = lba / chunk_sectors in
      let within = lba mod chunk_sectors in
      let here = min remaining (chunk_sectors - within) in
      let segment =
        {
          member = stripe mod members;
          member_lba = ((stripe / members) * chunk_sectors) + within;
          global_off = lba;
          sectors = here;
        }
      in
      split (lba + here) (remaining - here) (segment :: acc)
    end
  in
  split lba sectors []

let segments t ~lba ~sectors =
  plan ~members:(Array.length t.members) ~chunk_sectors:t.chunk_sectors ~lba
    ~sectors

(* Issue one operation per segment concurrently; blocks until all
   complete. *)
let fan_out t segs run_segment =
  match segs with
  | [] -> ()
  | [ only ] -> run_segment only
  | segs ->
      let latch = Resource.Latch.create t.sim (List.length segs) in
      List.iter
        (fun seg ->
          ignore
            (Process.spawn t.sim ~name:"stripe-io" (fun () ->
                 run_segment seg;
                 Resource.Latch.count_down latch)))
        segs;
      Resource.Latch.wait latch

let stripe_read t ~lba ~sectors =
  let buf = Bytes.make (sectors * t.sector_size) '\000' in
  let base = lba in
  fan_out t (segments t ~lba ~sectors) (fun seg ->
      let data =
        Block.read t.members.(seg.member) ~lba:seg.member_lba ~sectors:seg.sectors
      in
      Bytes.blit_string data 0 buf
        ((seg.global_off - base) * t.sector_size)
        (String.length data));
  Bytes.unsafe_to_string buf

let stripe_write t ~lba ~data ~fua =
  let base = lba in
  fan_out t
    (segments t ~lba ~sectors:(String.length data / t.sector_size))
    (fun seg ->
      let slice =
        String.sub data ((seg.global_off - base) * t.sector_size)
          (seg.sectors * t.sector_size)
      in
      Block.write t.members.(seg.member) ~fua ~lba:seg.member_lba slice)

let stripe_flush t =
  fan_out t
    (Array.to_list
       (Array.mapi
          (fun member _ -> { member; member_lba = 0; global_off = 0; sectors = 1 })
          t.members))
    (fun seg -> Block.flush t.members.(seg.member))

let durable_read t ~lba ~sectors =
  let buf = Bytes.make (sectors * t.sector_size) '\000' in
  List.iter
    (fun seg ->
      let data =
        Block.durable_read t.members.(seg.member) ~lba:seg.member_lba
          ~sectors:seg.sectors
      in
      Bytes.blit_string data 0 buf ((seg.global_off - lba) * t.sector_size)
        (String.length data))
    (segments t ~lba ~sectors);
  Bytes.unsafe_to_string buf

let durable_extent t =
  (* Conservative upper bound: if some member holds data through local
     stripe k, the volume may hold data through global stripe k*n+n-1. *)
  let n = Array.length t.members in
  Array.fold_left
    (fun acc member ->
      let local = Block.durable_extent member in
      let local_stripes = (local + t.chunk_sectors - 1) / t.chunk_sectors in
      max acc (local_stripes * n * t.chunk_sectors))
    0 t.members

let create sim ?(model = "stripe") ~chunk_sectors members =
  assert (Array.length members > 0 && chunk_sectors > 0);
  let sector_size = (Block.info members.(0)).Block.sector_size in
  Array.iter
    (fun member -> assert ((Block.info member).Block.sector_size = sector_size))
    members;
  let min_capacity =
    Array.fold_left
      (fun acc member -> min acc (Block.info member).Block.capacity_sectors)
      max_int members
  in
  let capacity =
    min_capacity / chunk_sectors * chunk_sectors * Array.length members
  in
  let t = { sim; members; chunk_sectors; sector_size } in
  let stats = Disk_stats.create () in
  (* Volume-level write service: the slowest member segment of the
     fan-out, as the caller sees it. *)
  let m_write =
    Option.map
      (fun reg -> Metrics.histogram reg ("stripe.write:" ^ model))
      (Metrics.recording ())
  in
  let ops =
    {
      Block.op_read =
        (fun ~lba ~sectors ->
          let started = Sim.now sim in
          let data = stripe_read t ~lba ~sectors in
          Disk_stats.record_read stats ~sectors
            ~service:(Time.diff (Sim.now sim) started);
          data);
      op_write =
        (fun ~lba ~data ~fua ->
          let started = Sim.now sim in
          stripe_write t ~lba ~data ~fua;
          let service = Time.diff (Sim.now sim) started in
          (match m_write with
          | Some h -> Metrics.Histogram.observe_span h service
          | None -> ());
          Disk_stats.record_write stats
            ~sectors:(String.length data / sector_size)
            ~service);
      op_flush =
        (fun () ->
          let started = Sim.now sim in
          stripe_flush t;
          Disk_stats.record_flush stats ~service:(Time.diff (Sim.now sim) started));
      op_power_cut = (fun () -> Array.iter Block.power_cut t.members);
      op_durable_read = (fun ~lba ~sectors -> durable_read t ~lba ~sectors);
      op_durable_extent = (fun () -> durable_extent t);
    }
  in
  Block.make
    ~info:
      {
        Block.model = Printf.sprintf "%s[%dx %s]" model (Array.length members)
            (Block.info members.(0)).Block.model;
        sector_size;
        capacity_sectors = capacity;
      }
    ~stats ~ops ()
