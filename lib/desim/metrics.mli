(** The observability registry: named counters, gauges and log-linear
    latency histograms, plus span helpers for the commit-path
    instrumentation.

    Every instrumented component (event queue, trusted logger, virtio
    frontend, WAL, engine, devices) consults {!recording} at creation
    time; when a registry is installed it resolves its metric handles
    once and observes into them on the hot path. Observing allocates
    nothing on the minor heap — counts live in flat int arrays and the
    scalar accumulators in unboxed float arrays — and instrumentation
    never reads the rng or schedules events, so a run's simulated
    history is bit-identical with metrics on or off. With no registry
    installed the instrumented paths cost a single branch.

    All histogram values are in {b microseconds}: the repository's
    latency unit. See [docs/OBSERVABILITY.md] for the stage names the
    commit path emits and the JSON schema reports use. *)

(** {1 Log-linear bucket layout}

    HDR-style bucketing over integer nanoseconds: exact 1 ns buckets
    below 16 ns, then each octave [[2^e, 2^(e+1))] split into 16 linear
    sub-buckets — a 6.25% relative bucket width over the whole range
    (1 ns to ~2^62 ns) in {!num_buckets} flat slots. The layout helpers
    are exposed for the property tests (bucket-boundary monotonicity,
    quantile-vs-oracle). *)

val num_buckets : int

val bucket_index_us : float -> int
(** The bucket a microsecond value lands in; non-positive values land in
    bucket 0. *)

val bucket_lower_us : int -> float
(** Inclusive lower bound of a bucket, in microseconds. Raises
    [Invalid_argument] outside [[0, num_buckets)]. *)

val bucket_upper_us : int -> float
(** Exclusive upper bound of a bucket, in microseconds. *)

module Histogram : sig
  (** A latency histogram over the log-linear layout above. *)

  type t

  val create : unit -> t
  (** An empty histogram (all {!num_buckets} slots preallocated). *)

  val observe : t -> float -> unit
  (** Record a value in microseconds; allocation-free. Non-positive
      values land in the lowest bucket. *)

  val observe_span : t -> Time.span -> unit
  (** Record a simulated duration. *)

  val count : t -> int

  val sum : t -> float
  (** Sum of observed values in microseconds; [0.] when empty. *)

  val mean : t -> float
  (** [nan] when empty, like {!min} and {!max}. *)

  val min : t -> float
  val max : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [[0, 1]]: linear interpolation inside
      the bucket containing the rank, so the result is within one bucket
      width (≤ 6.25% relative) of the exact order statistic. [nan] when
      empty. *)

  val merge_into : into:t -> t -> unit
  (** [merge_into ~into src] adds [src]'s buckets and accumulators into
      [into]; equivalent (bucket-for-bucket) to observing the
      concatenation of both observation streams into one histogram. *)

  val nonempty_buckets : t -> (float * float * int) list
  (** Non-empty buckets in ascending order as
      [(lower_us, upper_us, count)]. *)
end

module Counter : sig
  (** A monotonically growing event count. *)

  type t

  val create : unit -> t
  val incr : t -> unit

  val add : t -> int -> unit
  (** Add an increment (e.g. a byte count). *)

  val get : t -> int
end

module Gauge : sig
  (** An instantaneous level with a high-water mark (e.g. trusted-buffer
      occupancy in bytes). *)

  type t

  val create : unit -> t

  val set : t -> float -> unit
  (** Set the current value; the high-water mark follows the maximum
      ever set. *)

  val add : t -> float -> unit
  (** Adjust the current value by a delta (through {!set}). *)

  val get : t -> float

  val high_water : t -> float
  (** The largest value ever set; 0. if never set. *)
end

(** {1 The registry} *)

type t
(** A registry: a name-keyed table of metrics. *)

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

val create : unit -> t
(** An empty registry. *)

val counter : t -> string -> Counter.t
(** Find-or-create by name. Raises [Invalid_argument] when the name is
    already registered as a different kind — as do {!gauge} and
    {!histogram}. *)

val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

val names : t -> string list
(** All registered names, sorted — the stable iteration order reports
    use. *)

val find : t -> string -> metric option

val fold : t -> ('acc -> string -> metric -> 'acc) -> 'acc -> 'acc
(** Fold over the registry in {!names} order. *)

(** {1 Ambient enablement}

    The {!Journal} pattern: instrumented components consult
    {!recording} at creation time and keep resolved handles if a
    registry is active. Recording is only ever enabled around a single
    serial run (and must be cleared before any worker domain is
    spawned — {!Harness.Parallel} fan-outs never see it set). *)

val recording : unit -> t option
(** The ambient registry, if one is installed. *)

val start_recording : t -> unit
val stop_recording : unit -> unit

val with_recording : t -> (unit -> 'a) -> 'a
(** [with_recording t f] installs [t], runs [f], and uninstalls the
    registry even if [f] raises. *)

(** {1 Spans}

    A span is just the start instant as an integer nanosecond stamp — no
    allocation, no context object — finished by observing the elapsed
    simulated time into a stage histogram. *)

module Span : sig
  val start : Sim.t -> int
  (** The current instant as a nanosecond stamp. *)

  val finish : Histogram.t -> Sim.t -> int -> unit
  (** [finish h sim started] observes [now - started] (µs) into [h]. *)
end
