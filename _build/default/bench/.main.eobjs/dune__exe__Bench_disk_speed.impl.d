bench/bench_disk_speed.ml: Bench_support Desim Experiment Float Harness List Printf Report Scenario Storage String
