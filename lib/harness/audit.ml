type t = {
  durability : Rapilog.Durability.report;
  state_exact : bool;
  diff_count : int;
  excluded_keys : int;
}

module Int_set = Set.Make (Int)

let keys_written_by recovery txids =
  if txids = [] then Int_set.empty
  else
  let txid_set = Int_set.of_list txids in
  List.fold_left
    (fun keys (record, _lsn) ->
      match record with
      | Dbms.Log_record.Update { txid; key; _ } when Int_set.mem txid txid_set ->
          Int_set.add key keys
      | Dbms.Log_record.Update _ | Dbms.Log_record.Begin _
      | Dbms.Log_record.Commit _ | Dbms.Log_record.Abort _
      | Dbms.Log_record.Commit_multi _ | Dbms.Log_record.Abort_multi _
      | Dbms.Log_record.Checkpoint _ | Dbms.Log_record.Noop _ ->
          keys)
    Int_set.empty recovery.Dbms.Recovery.records

let without_keys table excluded =
  let copy = Hashtbl.create (Hashtbl.length table) in
  Hashtbl.iter
    (fun key value -> if not (Int_set.mem key excluded) then Hashtbl.replace copy key value)
    table;
  copy

(* Durable-but-unacknowledged commits (and, under a lost-ack race,
   aborted-after-ack ones) legitimately diverge from the client-side
   model on exactly the keys they wrote. *)
let check_with ~model ~durability ~recovery =
  let excluded = keys_written_by recovery durability.Rapilog.Durability.extra in
  let diffs =
    if Int_set.is_empty excluded then
      Rapilog.Durability.diff_stores ~expected:model
        ~actual:recovery.Dbms.Recovery.store
    else
      Rapilog.Durability.diff_stores
        ~expected:(without_keys model excluded)
        ~actual:(without_keys recovery.Dbms.Recovery.store excluded)
  in
  {
    durability;
    state_exact = diffs = [] && Rapilog.Durability.holds durability;
    diff_count = List.length diffs;
    excluded_keys = Int_set.cardinal excluded;
  }

let check ~model ~acked ~recovery =
  check_with ~model ~recovery
    ~durability:
      (Rapilog.Durability.compare_txids ~committed:acked
         ~recovered:recovery.Dbms.Recovery.committed)

let check_sorted ~model ~acked ~n_acked ~recovery =
  check_with ~model ~recovery
    ~durability:
      (Rapilog.Durability.compare_sorted ~committed:acked ~n:n_acked
         ~recovered:recovery.Dbms.Recovery.committed)

let pp fmt t =
  Format.fprintf fmt "%a state-exact=%b diffs=%d excluded=%d"
    Rapilog.Durability.pp_report t.durability t.state_exact t.diff_count
    t.excluded_keys
