bench/bench_failures.ml: Audit Bench_support Desim Experiment Harness Int64 List Power Printf Rapilog Report Scenario Time
