examples/power_failure.ml: Audit Desim Experiment Harness Int64 List Rapilog Report Scenario
