let tail_bytes ~log_device ~wal_config ~durable_end =
  let ss = (Storage.Block.info log_device).Storage.Block.sector_size in
  let flushed_b = Lsn.to_int durable_end in
  let partial = flushed_b mod ss in
  if partial = 0 then ""
  else begin
    let sector =
      Storage.Block.durable_read log_device
        ~lba:(wal_config.Wal.log_start_lba + (flushed_b / ss))
        ~sectors:1
    in
    String.sub sector 0 partial
  end

(* Compensate every loser in the durable log: redoing the log then ends
   in the undone state, and the abort records retire the transactions
   from any future analysis pass. *)
let neutralise_losers wal (recovery : Recovery.result) =
  let loser_set = Hashtbl.create 8 in
  List.iter (fun txid -> Hashtbl.replace loser_set txid ()) recovery.Recovery.losers;
  if Hashtbl.length loser_set > 0 then begin
    List.iter
      (fun (record, _lsn) ->
        match record with
        | Log_record.Update { txid; key; before; after }
          when Hashtbl.mem loser_set txid ->
            ignore
              (Wal.append wal
                 (Log_record.Update { txid; key; before = after; after = before }))
        | Log_record.Update _ | Log_record.Begin _ | Log_record.Commit _
        | Log_record.Abort _ | Log_record.Commit_multi _
        | Log_record.Abort_multi _ | Log_record.Checkpoint _
        | Log_record.Noop _ ->
            ())
      (List.rev recovery.Recovery.records);
    Hashtbl.iter
      (fun txid () -> ignore (Wal.append wal (Log_record.Abort { txid })))
      loser_set;
    Wal.force wal (Wal.end_lsn wal)
  end

let seed_pool pool pool_config (recovery : Recovery.result) =
  let keys_per_page = pool_config.Buffer_pool.keys_per_page in
  let pages = Hashtbl.create 256 in
  Hashtbl.iter
    (fun key value ->
      let id = Page.page_of_key ~keys_per_page key in
      let page =
        match Hashtbl.find_opt pages id with
        | Some page -> page
        | None ->
            let page = Page.create ~id in
            Hashtbl.replace pages id page;
            page
      in
      (* The recovered value reflects every durable record, so the page
         LSN is the durable log end. *)
      Page.set page ~key ~value ~lsn:recovery.Recovery.durable_end)
    recovery.Recovery.store;
  Hashtbl.iter
    (fun id page ->
      Buffer_pool.install pool page
        ~dirty_at:(Some recovery.Recovery.durable_end)
        ~parity:(Hashtbl.find_opt recovery.Recovery.parities id))
    pages

let max_seen_txid (recovery : Recovery.result) =
  let max_of = List.fold_left max 0 in
  max (max_of recovery.Recovery.committed)
    (max (max_of recovery.Recovery.aborted) (max_of recovery.Recovery.losers))

let restart ~vmm ~profile ?async_commit ~log_device ~data_device ~wal_config
    ~pool_config () =
  let sim = Hypervisor.Vmm.sim vmm in
  let recovery = Recovery.run ~log_device ~data_device ~wal_config ~pool_config in
  let wal =
    Wal.create_resumed sim wal_config ~device:log_device
      ~flushed:recovery.Recovery.durable_end
      ~tail:
        (tail_bytes ~log_device ~wal_config
           ~durable_end:recovery.Recovery.durable_end)
  in
  neutralise_losers wal recovery;
  let pool =
    Buffer_pool.create sim pool_config ~device:data_device
      ~wal_force:(fun ~page:_ lsn -> Wal.force wal lsn)
  in
  seed_pool pool pool_config recovery;
  let engine =
    Engine.create ~vmm ~profile ?async_commit
      ~first_txid:(max_seen_txid recovery + 1)
      ~wal ~pool ()
  in
  (engine, recovery)
