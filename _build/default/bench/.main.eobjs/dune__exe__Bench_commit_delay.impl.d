bench/bench_commit_delay.ml: Bench_support Dbms Desim Experiment Harness List Printf Report Scenario Time
