(** Network fault injection, in the {!Power.Failure_injector} idiom:
    instants drawn uniformly from half-open intervals off the
    simulation's root generator, so fault schedules are a pure function
    of the seed. *)

open Desim

val outage_between :
  Sim.t ->
  earliest:Time.t ->
  latest:Time.t ->
  min_outage:Time.span ->
  max_outage:Time.span ->
  partition:(unit -> unit) ->
  heal:(unit -> unit) ->
  Time.t * Time.t
(** Schedule a partition/heal pair: the partition instant is drawn from
    [\[earliest, latest)], the outage length from
    [\[min_outage, max_outage)] (both degenerate deterministically when
    empty; reversed bounds raise [Invalid_argument]). [partition] and
    [heal] typically call {!Link.partition} / {!Link.heal} on the links
    crossing the cut. Returns [(partition_at, heal_at)].

    Machine loss inside an active outage: if the peer behind the cut is
    lost ({!Link.sever}) before [heal] fires, loss wins — the severed
    link drops its partition state along with the held backlog, and the
    late [heal] callback is a harmless no-op on a dead link. Fault
    schedules therefore never resurrect traffic to a lost machine. *)

val machine_loss_at : Sim.t -> Power.Power_domain.t -> at:Time.t -> unit
(** Schedule {!Power.Power_domain.lose} — the whole machine vanishing,
    with no residual-energy window — at the given instant. *)

val machine_loss_between :
  Sim.t -> Power.Power_domain.t -> earliest:Time.t -> latest:Time.t -> Time.t
(** Draw the loss instant from the half-open interval, like
    {!Power.Failure_injector.power_cut_between}; returns it. *)
