(** Update-only microbenchmark: one small write per transaction.

    This is the commit-latency stress: nothing amortises the log force,
    so the gap between ack-on-media and ack-on-buffer shows up
    undiluted. *)

type config = {
  keys : int;
  value_bytes : int;
  zipf_theta : float;  (** 0. = uniform *)
  updates_per_txn : int;
  delete_fraction : float;  (** probability an operation deletes instead *)
}

val default_config : config
(** 10k keys, 128-byte values, uniform, 1 update/txn, no deletes. *)

type t

val create : Desim.Rng.t -> config -> t
val config : t -> config

val initial_rows : t -> (int * string) list
(** One row per key. *)

val next : t -> Dbms.Engine.op list
