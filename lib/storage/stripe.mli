(** RAID-0 striping across block devices.

    Chunks of [chunk_sectors] rotate round-robin over the members, so
    independent requests land on independent actuators and large
    requests split across them. This models the multi-spindle data
    volume of a paper-era database testbed; it adds bandwidth and
    request parallelism, not redundancy (this is RAID-0 — member loss is
    volume loss, which a durability experiment never relies on
    surviving).

    All members must share a sector size; the volume capacity is the
    smallest member capacity times the member count (in whole stripes). *)

val create :
  Desim.Sim.t -> ?model:string -> chunk_sectors:int -> Block.t array -> Block.t
(** Requires at least one member and [chunk_sectors > 0]. Requests
    spanning several chunks are issued to the members concurrently and
    complete when the slowest segment does. [power_cut] propagates to
    every member. *)

type segment = { member : int; member_lba : int; global_off : int; sectors : int }

val plan : members:int -> chunk_sectors:int -> lba:int -> sectors:int -> segment list
(** The per-member segments a volume-level request splits into, in issue
    order. Pure in the geometry — the crash-surface journal
    reconstruction uses this to attribute journaled member writes to the
    volume submissions that caused them. *)
