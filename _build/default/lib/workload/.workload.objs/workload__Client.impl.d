lib/workload/client.ml: Dbms Desim Hypervisor List Printf Process Time
