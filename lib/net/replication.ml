open Desim

type policy = Local | Replica_ack | Async_replica

let policy_name = function
  | Local -> "local"
  | Replica_ack -> "replica-ack"
  | Async_replica -> "async-replica"

let all_policies = [ Local; Replica_ack; Async_replica ]

let policy_of_name name =
  List.find_opt (fun p -> policy_name p = name) all_policies

type config = {
  policy : policy;
  data_link : Link.config;
  ack_link : Link.config;
}

let default =
  { policy = Replica_ack; data_link = Link.default; ack_link = Link.default }

type message = { seq : int; lba : int; data : string }

(* On-wire framing overhead charged against link bandwidth. *)
let header_bytes = 24
let ack_bytes = 16

type t = {
  sim : Sim.t;
  config : config;
  replica : Replica.t;
  data_link : message Link.t;
  ack_link : int Link.t;
  (* Writers parked in [Replica_ack] until their seq's ack returns. *)
  waiters : (int, unit Process.resumer) Hashtbl.t;
  mutable n_sent : int;
  mutable n_acked : int;
  m_replicate : Metrics.Histogram.t option;
  m_ack_wait : Metrics.Histogram.t option;
}

let on_ack t seq =
  t.n_acked <- t.n_acked + 1;
  match Hashtbl.find_opt t.waiters seq with
  | Some resume ->
      Hashtbl.remove t.waiters seq;
      resume ()
  | None -> ()

let on_data t msg =
  Replica.receive t.replica ~seq:msg.seq ~lba:msg.lba ~data:msg.data;
  (* The replica's buffer is its durability domain: ack on receipt,
     off the replica's own drain path. *)
  Link.send t.ack_link ~bytes:ack_bytes msg.seq

(* Runs in the admitting writer's process, straight after the ring push
   (the entry is already locally durable-in-buffer). The send itself
   never blocks; [Replica_ack] parks the writer until the ack returns.
   A link pump event cannot fire between the send and the suspend —
   both happen in this process without yielding — so the ack cannot be
   lost to a missing waiter. *)
let replicate_hook t ~seq ~lba ~data =
  let started =
    match t.m_replicate with Some _ -> Metrics.Span.start t.sim | None -> 0
  in
  t.n_sent <- t.n_sent + 1;
  Link.send t.data_link
    ~bytes:(String.length data + header_bytes)
    { seq; lba; data };
  (match t.config.policy with
  | Replica_ack ->
      let wait_started =
        match t.m_ack_wait with Some _ -> Metrics.Span.start t.sim | None -> 0
      in
      Process.suspend (fun resume -> Hashtbl.replace t.waiters seq resume);
      (match t.m_ack_wait with
      | Some hist -> Metrics.Span.finish hist t.sim wait_started
      | None -> ())
  | Local | Async_replica -> ());
  match t.m_replicate with
  | Some hist -> Metrics.Span.finish hist t.sim started
  | None -> ()

let attach sim (config : config) ~logger ~replica_device =
  let replica = Replica.create sim ~device:replica_device () in
  let self = ref None in
  let the t = match !t with Some t -> t | None -> assert false in
  (* The ack link first: its rng split order is fixed by construction
     order, part of the deterministic schedule. *)
  let ack_link =
    Link.create sim ~name:"replica-ack" config.ack_link ~dummy:0
      ~deliver:(fun seq -> on_ack (the self) seq)
  in
  let dummy_message = { seq = 0; lba = 0; data = "" } in
  let data_link =
    Link.create sim ~name:"replica-data" config.data_link ~dummy:dummy_message
      ~deliver:(fun msg -> on_data (the self) msg)
  in
  let metrics = Metrics.recording () in
  let t =
    {
      sim;
      config;
      replica;
      data_link;
      ack_link;
      waiters = Hashtbl.create 64;
      n_sent = 0;
      n_acked = 0;
      m_replicate =
        Option.map (fun reg -> Metrics.histogram reg "logger.replicate") metrics;
      m_ack_wait =
        Option.map
          (fun reg -> Metrics.histogram reg "logger.replica_ack_wait")
          metrics;
    }
  in
  self := Some t;
  (match config.policy with
  | Local -> ()
  | Replica_ack | Async_replica ->
      Rapilog.Trusted_logger.set_replication logger (replicate_hook t));
  t

let config t = t.config
let replica t = t.replica
let wire_in_flight t = Link.in_flight t.data_link + Link.in_flight t.ack_link

let primary_lost t =
  Link.sever t.data_link;
  Link.sever t.ack_link

let sent t = t.n_sent
let acked t = t.n_acked

let recovery_log_device t ~primary =
  let info = Storage.Block.info primary in
  let media =
    Storage.Block.Media.create ~sector_size:info.Storage.Block.sector_size
      ~capacity_sectors:info.Storage.Block.capacity_sectors
  in
  (* Frozen copy of the primary's durable media, chunked. *)
  let extent = Storage.Block.durable_extent primary in
  let chunk = 256 in
  let lba = ref 0 in
  while !lba < extent do
    let sectors = min chunk (extent - !lba) in
    Storage.Block.Media.write media ~lba:!lba
      ~data:(Storage.Block.durable_read primary ~lba:!lba ~sectors);
    lba := !lba + sectors
  done;
  (* Overlay the replica's entries: the longest consecutive sequence
     prefix (admission order, seq from 1), applied in order so a later
     rewrite of the same sectors wins, exactly as on the primary. Links
     are FIFO so a gap means loss; anything after a gap cannot be
     trusted to reflect a prefix of the admitted stream. The one-replica
     case is the quorum merge over a singleton cluster. *)
  List.iter
    (fun (_seq, lba, data) -> Storage.Block.Media.write media ~lba ~data)
    (Quorum.merge_prefix [ Replica.entries t.replica ]);
  Storage.Block.of_media ~model:"replicated-log" media
