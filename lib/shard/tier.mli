(** RapiLog-S: the sharded multi-tenant logger tier.

    One tier is [S] independent trusted loggers ({!Rapilog.attach}),
    each over its own device — or a RAID-0 stripe of
    [devices_per_shard] devices — with a per-shard multi-stream WAL
    ({!Dbms.Wal}) laid out one region {e above} the layout a
    co-resident single-tenant DBMS uses, so shard 0's device can host
    both without ambiguity. Tenants hash-partition across shards
    through the {!Registry}; within a shard a tenant's appends always
    ride one WAL stream, so the tenant's device order is its sequence
    order and its durable prefix is well-defined.

    The datapath is BtrLog-style per-stream batching: {!submit} only
    enqueues the append (callable from any context); one writer
    process per (shard, stream) drains its queue in bounded batches —
    encode {!Dbms.Log_record.Update}[/]{!Dbms.Log_record.Commit} pairs
    tagged with {!Rapilog.Tenant} txids, one {!Dbms.Wal.force}, then
    acknowledge every entry of the batch. An acknowledgement therefore
    implies the trusted logger admitted the batch, and the logger's
    contract makes it durable across OS crashes and power cuts within
    the PSU window — the same contract the single-tenant scenarios
    sweep, now auditable {e per tenant} ({!Recover.audit}).

    On power failure the tier stops submitting and the writers park;
    whatever was acknowledged before the cut is the durability
    obligation. Open-loop arrival clients ([clients] many, tenant
    [1 + c mod tenants] each, exponential think times from split rng
    streams) stop at [horizon], so a simulation embedding a tier
    always drains. *)

type config = {
  shards : int;  (** S logger domains *)
  devices_per_shard : int;
      (** D devices under each shard's logger; striped when > 1 *)
  streams_per_shard : int;  (** parallel WAL streams per shard *)
  buckets : int;  (** registry bucket-table size (power of two) *)
  tenants : int;  (** tenant ids 1..tenants *)
  clients : int;  (** open-loop arrival clients *)
  mean_interval : Desim.Time.span;
      (** mean exponential inter-arrival time per client *)
  payload_bytes : int;  (** append payload size *)
  horizon : Desim.Time.span;  (** arrivals stop at this simulated time *)
  batch_max_bytes : int;
      (** upper bound on one writer batch's encoded bytes — keeps a
          backlogged stream's force well under the trusted ring's
          capacity *)
  logger : Rapilog.Trusted_logger.config;  (** per-shard logger config *)
  hot_tenant : int;
      (** noisy-neighbor axis: extra clients hammer this tenant
          (0 = none) *)
  hot_clients : int;  (** how many extra clients the hot tenant gets *)
  hot_interval : Desim.Time.span;  (** their mean inter-arrival time *)
  chunk_sectors : int;  (** stripe chunk when [devices_per_shard > 1] *)
}

val default_config : config
(** 2 shards × 1 device, 1 stream each, 1024 buckets, 16 tenants,
    32 clients at 20 ms mean think, 128-byte payloads, 1 s horizon,
    64 KiB batches, default logger, no hot tenant. *)

type t

val attach :
  Desim.Sim.t ->
  vmm:Hypervisor.Vmm.t ->
  power:Power.Power_domain.t ->
  config:config ->
  ?first_device:Storage.Block.t ->
  make_device:(unit -> Storage.Block.t) ->
  unit ->
  t
(** Build the whole tier: per-shard devices (shard 0's first member is
    [first_device] when given — how a scenario shares its log device
    with the tier), loggers, WALs, writer processes and arrival
    clients. The loggers register their devices with [power]
    themselves; the tier additionally registers a power-fail hook that
    stops submissions at the cut instant. *)

val config : t -> config
val registry : t -> Registry.t

val wal_config : t -> Dbms.Wal.config
(** The per-shard WAL layout (identical for every shard): master block
    and streams one {!Dbms.Wal.default_config} region above the
    default layout. Recovery of any shard's device uses exactly this
    config ({!Recover.shard_result}). *)

val shard_count : t -> int

val shard_physical : t -> int -> Storage.Block.t
(** The shard's raw device (the stripe when [devices_per_shard > 1]) —
    what post-crash recovery reads. *)

val shard_frontend : t -> int -> Storage.Block.t
(** The paravirtual frontend the shard's WAL writes through. *)

val shard_members : t -> int -> Storage.Block.t array
(** The physical devices under the shard: the stripe members when
    [devices_per_shard > 1], else the single device. *)

val shard_logger : t -> int -> Rapilog.Trusted_logger.t

val loggers : t -> Rapilog.Trusted_logger.t list
(** Every shard's trusted logger, shard order — what a crash sweep
    attaches invariant monitors to and quiesces after an OS crash. *)

val submit : t -> tenant:int -> unit
(** Enqueue one append for the tenant: allocate the next sequence
    number, route through the registry, and signal the stream's
    writer. Callable from any context; a no-op once the tier has
    stopped (power failure) or for out-of-range tenants. *)

val split_shard : t -> source:int -> target:int -> int
(** Rebalance: move the upper half of [source]'s buckets to [target]
    ({!Registry.split}). Returns the number of buckets moved. Safe
    while traffic is flowing — see the rebalance protocol in
    [docs/SHARDING.md]. *)

val stopped : t -> bool
(** The tier saw a power failure and stopped accepting submissions. *)

val pending : t -> int
(** Appends enqueued or in flight but not yet acknowledged. *)

val quiesce : t -> unit
(** Wait until every queue has drained and every shard logger's buffer
    is empty — after this, every acknowledged append is on durable
    media. Must run in a process; returns immediately if the tier has
    stopped (a cut tier can never drain). *)

val submitted : t -> int
(** Appends accepted by {!submit} over the whole run. *)

val acked : t -> int
(** Appends acknowledged (durable per the logger contract). *)

val tenant_count : t -> int
(** The configured number of tenants. *)

val tenant_submitted : t -> tenant:int -> int
(** Appends the tenant ever submitted (= its last allocated seq). *)

val tenant_acked_count : t -> tenant:int -> int

val tenant_is_acked : t -> tenant:int -> seq:int -> bool
(** Whether the tenant's append [seq] was acknowledged — the durability
    obligation {!Recover.audit} checks per sequence number. *)

val tenant_percentile : t -> tenant:int -> p:float -> float
(** Exact percentile ([p] in 0..100) of the tenant's acknowledged
    append latencies in µs; [nan] if it has none. *)

type stats = {
  st_submitted : int;
  st_acked : int;
  st_p50_us : float;  (** aggregate ack latency, all tenants *)
  st_p99_us : float;
  st_shard_acked : int array;
  st_shard_p99_us : float array;
  st_active_tenants : int;  (** tenants with at least one ack *)
  st_tenant_p99_med_us : float;  (** median of per-tenant p99s *)
  st_tenant_p99_max_us : float;  (** worst per-tenant p99 *)
}

val stats : t -> stats
(** Aggregate and per-tenant latency summary. When a {!Desim.Metrics}
    registry was ambient at {!attach} time, the same numbers also live
    there ([shard.append_us], [shard.submitted], [shard.acked],
    [shard.<i>.append_us]) and this call additionally folds every
    per-tenant p99 into the registry's [shard.tenant_p99_us]
    histogram. *)
