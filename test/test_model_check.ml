(* Exhaustive small-scope model checking of the trusted ring buffer.

   The buffer is the component whose correctness the paper buys with
   verification, so it gets more than example-based tests: we enumerate
   *every* sequence of operations up to a bounded depth over a small
   alphabet, and after each sequence check the implementation against a
   reference model (writes applied in order to a flat sector array) and
   its internal invariants. Small-scope exhaustiveness catches the
   ordering/accounting interactions random testing tends to miss. *)

open Desim
open Testu

let sector = 512

type op =
  | Push of { lba : int; sectors : int }
  | Drain_one  (* pop_coalesced with a small batch limit *)
  | Drain_all

let alphabet =
  [
    Push { lba = 0; sectors = 1 };
    Push { lba = 1; sectors = 2 };
    Push { lba = 3; sectors = 1 };
    Drain_one;
    Drain_all;
  ]

let max_depth = 6
let media_sectors = 16
let capacity_bytes = 5 * sector

(* Reference model: writes applied strictly in order. *)
type model = {
  media : bytes;  (* one byte per sector: the fill character *)
  mutable queued : (int * int * char) list;  (* lba, sectors, fill; oldest first *)
}

let fill_char step = Char.chr (97 + (step mod 26))

let model_apply model (lba, sectors, fill) =
  for s = lba to lba + sectors - 1 do
    Bytes.set model.media s fill
  done

let model_push model ~lba ~sectors ~fill ~accepted =
  if accepted then model.queued <- model.queued @ [ (lba, sectors, fill) ]

let model_bytes model =
  List.fold_left (fun acc (_, sectors, _) -> acc + (sectors * sector)) 0 model.queued

(* Drain one coalesced batch from the model: start at the head, take
   followers that begin within or adjacent to the accumulated range and
   fit the byte budget. Entries outside the range are *skipped over*
   (they stay queued, in order) rather than ending the batch — that is
   the region-aware drain — but a later entry overlapping a skipped
   one is never taken, so writes to any given sector stay in push
   order. An in-range entry over the byte budget ends the batch —
   mirroring [Ring_buffer.pop_coalesced]. *)
let model_drain_batch model ~max_bytes =
  match model.queued with
  | [] -> false
  | (lba0, sectors0, fill0) :: rest ->
      model_apply model (lba0, sectors0, fill0);
      let base = lba0 in
      let end_lba = ref (lba0 + sectors0) in
      let budget = ref (sectors0 * sector) in
      let skipped = ref [] in
      let overlaps_skipped lba stop =
        List.exists (fun (lo, hi) -> lba < hi && lo < stop) !skipped
      in
      let stopped = ref false in
      let kept = ref [] in
      List.iter
        (fun ((lba, sectors, _) as entry) ->
          let stop = lba + sectors in
          if
            (not !stopped)
            && lba >= base && lba <= !end_lba
            && not (overlaps_skipped lba stop)
          then
            if !budget + (sectors * sector) <= max_bytes then begin
              model_apply model entry;
              end_lba := max !end_lba stop;
              budget := !budget + (sectors * sector)
            end
            else begin
              stopped := true;
              kept := entry :: !kept
            end
          else begin
            skipped := (lba, stop) :: !skipped;
            kept := entry :: !kept
          end)
        rest;
      model.queued <- List.rev !kept;
      true

let media_of_impl impl_media =
  (* Reduce the implementation's sector store to fill characters. *)
  Bytes.init media_sectors (fun s ->
      (Storage.Block.Media.read impl_media ~lba:s ~sectors:1).[0])

let check_equivalence sequence =
  let ring = Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes in
  let impl_media =
    Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:media_sectors
  in
  let model = { media = Bytes.make media_sectors '\000'; queued = [] } in
  let drain_one () =
    let max_bytes = 3 * sector in
    match Rapilog.Ring_buffer.pop_coalesced ring ~max_bytes with
    | Some { Rapilog.Ring_buffer.lba; data } ->
        Storage.Block.Media.write impl_media ~lba ~data;
        let model_had = model_drain_batch model ~max_bytes in
        if not model_had then Alcotest.fail "impl drained, model empty"
    | None -> if model.queued <> [] then Alcotest.fail "model queued, impl empty"
  in
  List.iteri
    (fun step op ->
      (match op with
      | Push { lba; sectors } ->
          let fill = fill_char step in
          let data = String.make (sectors * sector) fill in
          let accepted = Rapilog.Ring_buffer.try_push ring ~lba ~data in
          let model_fits = model_bytes model + (sectors * sector) <= capacity_bytes in
          if accepted <> model_fits then
            Alcotest.failf "admission mismatch at step %d" step;
          model_push model ~lba ~sectors ~fill ~accepted
      | Drain_one -> drain_one ()
      | Drain_all ->
          while not (Rapilog.Ring_buffer.is_empty ring) do
            drain_one ()
          done);
      (* Invariants after every operation. *)
      if Rapilog.Ring_buffer.bytes_used ring <> model_bytes model then
        Alcotest.failf "byte accounting diverged at step %d" step;
      if Rapilog.Ring_buffer.length ring <> List.length model.queued then
        Alcotest.failf "queue length diverged at step %d" step)
    sequence;
  (* Final: drain everything and compare media images. *)
  while not (Rapilog.Ring_buffer.is_empty ring) do
    drain_one ()
  done;
  if not (Bytes.equal (media_of_impl impl_media) model.media) then
    Alcotest.fail "media contents diverged"

let enumerate depth visit =
  let count = ref 0 in
  let rec go prefix remaining =
    if remaining = 0 then begin
      incr count;
      visit (List.rev prefix)
    end
    else
      List.iter (fun op -> go (op :: prefix) (remaining - 1)) alphabet
  in
  go [] depth;
  !count

let exhaustive_up_to_depth () =
  let total = ref 0 in
  for depth = 1 to max_depth do
    total := !total + enumerate depth check_equivalence
  done;
  (* 5 + 25 + ... + 5^6 sequences, each fully checked. *)
  Alcotest.(check int) "sequences explored" 19530 !total

let suites =
  [
    ( "rapilog.model_check",
      [ case "ring buffer vs reference model, exhaustive to depth 6" exhaustive_up_to_depth ] );
  ]

(* Random deep sequences complement the exhaustive shallow ones: depth 40
   over a wider alphabet, sampled. *)
let random_deep_sequences =
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map2 (fun lba sectors -> Push { lba; sectors }) (int_range 0 10) (int_range 1 3);
          return Drain_one;
          return Drain_all;
        ])
  in
  prop "ring buffer vs model, random depth-40 sequences" ~count:300
    QCheck2.Gen.(list_size (return 40) op_gen)
    (fun sequence ->
      match check_equivalence sequence with
      | () -> true
      | exception Alcotest.Test_error -> false)

(* -- Post-power-cut regime, exhaustive ------------------------------------

   The ring-buffer checks above cover the data path; this second model
   check covers the *admission state machine* around a power failure.
   For every sequence of {write, big write, cut, wait} up to a bounded
   depth, run the real trusted logger (tiny buffer, slow guest copy, a
   real disk drain) and assert the post-cut regime:
   - no write is acknowledged at or after the cut instant — admission
     closes atomically with the notification, including for writers
     already blocked in backpressure or mid-copy;
   - every write acknowledged before the cut is durable on the physical
     device once the simulation settles (the drain finishes what was
     admitted);
   - the buffer always drains to empty (conservation), cut or no cut.

   The deliberately tight configuration — a 4-sector buffer over a slow
   copy path — parks writers at every blocking point, so sequences
   exercise cut-while-blocked, cut-mid-copy and cut-with-full-buffer
   interleavings that example tests would have to hand-craft. *)

type pc_op = Pc_write | Pc_write_big | Pc_cut | Pc_wait

let pc_alphabet = [ Pc_write; Pc_write_big; Pc_cut; Pc_wait ]
let pc_max_depth = 4
let pc_spacing = Time.us 400

let pc_check_sequence sequence =
  let sim = Sim.create ~seed:5L () in
  let device = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let trusted =
    Hypervisor.Domain.create sim ~name:"rapilog" ~kind:Hypervisor.Domain.Trusted
  in
  let logger =
    Rapilog.Trusted_logger.create sim ~domain:trusted
      {
        Rapilog.Trusted_logger.buffer_bytes = 4 * sector;
        copy_bandwidth = 1e6;  (* 512 us per sector: copies straddle ops *)
        drain_max_bytes = 2 * sector;
      }
      ~device
  in
  let backend_domain =
    Hypervisor.Domain.create sim ~name:"drv" ~kind:Hypervisor.Domain.Trusted
  in
  let frontend =
    Hypervisor.Virtio_blk.create sim ~ipc:Hypervisor.Ipc.default_sel4
      ~backend_domain
      (Rapilog.Trusted_logger.backend logger)
  in
  let guest =
    Hypervisor.Domain.create sim ~name:"guest" ~kind:Hypervisor.Domain.Guest
  in
  let cut_at = ref None in
  (* Per write: lba, fill data, ack instant (None = never acknowledged). *)
  let writes = ref [] in
  List.iteri
    (fun step op ->
      let at = Time.add Time.zero (Time.mul_span pc_spacing step) in
      match op with
      | Pc_write | Pc_write_big ->
          let sectors = if op = Pc_write then 1 else 4 in
          let lba = step * 4 in
          let data = String.make (sectors * sector) (fill_char step) in
          let acked = ref None in
          writes := (lba, data, acked) :: !writes;
          Sim.schedule_at sim at (fun () ->
              ignore
                (Hypervisor.Domain.spawn guest (fun () ->
                     Storage.Block.write frontend ~lba data;
                     acked := Some (Sim.now sim))))
      | Pc_cut ->
          Sim.schedule_at sim at (fun () ->
              (if !cut_at = None then cut_at := Some (Sim.now sim));
              Rapilog.Trusted_logger.notify_power_fail logger)
      | Pc_wait -> ())
    sequence;
  Sim.run sim;
  (* Admission closed: nothing acknowledged at or after the cut. *)
  (match !cut_at with
  | Some cut ->
      if Rapilog.Trusted_logger.accepting logger then
        Alcotest.fail "still accepting after power-fail notification";
      List.iter
        (fun (_, _, acked) ->
          match !acked with
          | Some at when Time.(cut <= at) ->
              Alcotest.failf "write acknowledged %dns after the cut"
                (Time.span_to_ns (Time.diff at cut))
          | _ -> ())
        !writes
  | None -> ());
  (* Conservation: the buffer always drains to empty. *)
  if not (Rapilog.Durability.logger_conservation logger) then
    Alcotest.failf "buffer not drained: %d bytes left"
      (Rapilog.Trusted_logger.buffered_bytes logger);
  (* Everything acknowledged is durable on the physical device. *)
  List.iter
    (fun (lba, data, acked) ->
      if !acked <> None then
        let sectors = String.length data / sector in
        let durable = Storage.Block.durable_read device ~lba ~sectors in
        if durable <> data then
          Alcotest.failf "acked write at lba %d not durable" lba)
    !writes

let pc_exhaustive () =
  let count = ref 0 in
  let rec go prefix remaining =
    if remaining = 0 then begin
      incr count;
      pc_check_sequence (List.rev prefix)
    end
    else List.iter (fun op -> go (op :: prefix) (remaining - 1)) pc_alphabet
  in
  for depth = 1 to pc_max_depth do
    go [] depth
  done;
  (* 4 + 16 + 64 + 256 sequences, each against the real logger. *)
  Alcotest.(check int) "sequences explored" 340 !count

(* -- Quorum replication protocol, exhaustive ------------------------------

   RapiLog-Q's commit/election state machine (Net.Quorum.Protocol) is
   the component whose safety argument carries the multi-node claim, so
   it gets the same treatment as the ring buffer: exhaustive enumeration
   of every operation interleaving up to a bounded depth, checking
   committed-prefix monotonicity after every step. The fault envelope is
   the protocol's own contract — the primary plus at most k - 1 replicas
   may die. Two cells share the same envelope (one replica loss):

   - quorum 2 of 3 must show zero violations over the whole space —
     a quorum-acked entry survives the primary plus one replica, through
     any election;
   - quorum 1 of 3 must show violations — one acked copy plus the
     primary is the entire durability domain, and the checker's job is
     to prove it can find that hole (the teeth check for the checker).

   Deliver is composed eagerly with the leader's collect of that node's
   responses: each [Q_deliver r] processes one inbound message and then
   drains [r]'s outbox. Per-link FIFO cannot produce the response
   interleavings this collapses, so no reachable commit/adoption
   ordering is lost, and the state space stays tractable. *)

module QP = Net.Quorum.Protocol

type q_op =
  | Q_append
  | Q_deliver of int
  | Q_lose_primary
  | Q_lose of int
  | Q_campaign of int

let q_replicas = 3
let q_max_depth = 11
let q_max_appends = 3
let q_max_campaigns = 2
let q_max_replica_losses = 1  (* the k = 2 envelope: primary + k - 1 *)

let q_apply t = function
  | Q_append -> ignore (QP.append t)
  | Q_deliver r ->
      QP.deliver t r;
      while QP.can_collect t r do
        QP.collect t r
      done
  | Q_lose_primary -> QP.lose_primary t
  | Q_lose r -> QP.lose t r
  | Q_campaign r -> QP.campaign t r

let q_enabled t ~appends ~rlosses ~campaigns =
  let ops = ref [] in
  let add op = ops := op :: !ops in
  if campaigns < q_max_campaigns then
    for r = q_replicas - 1 downto 0 do
      if QP.can_campaign t r then add (Q_campaign r)
    done;
  if rlosses < q_max_replica_losses then
    for r = q_replicas - 1 downto 0 do
      if QP.can_lose t r then add (Q_lose r)
    done;
  if QP.can_lose_primary t then add Q_lose_primary;
  for r = q_replicas - 1 downto 0 do
    if QP.can_deliver t r then add (Q_deliver r)
  done;
  if appends < q_max_appends && QP.can_append t then add Q_append;
  !ops

(* Explore every schedule; returns (states visited, violating states). *)
let q_explore ~quorum =
  let states = ref 0 and violations = ref 0 in
  let rec go t depth appends rlosses campaigns =
    incr states;
    if QP.check t <> [] then incr violations;
    if depth < q_max_depth then
      List.iter
        (fun op ->
          let t' = QP.copy t in
          let commit_before = QP.commit_watermark t' in
          q_apply t' op;
          if QP.commit_watermark t' < commit_before then begin
            (* Monotonicity is also what [check] defends, but assert the
               watermark itself so a regression cannot hide behind a
               log-presence argument. *)
            incr violations
          end;
          go t' (depth + 1)
            (appends + match op with Q_append -> 1 | _ -> 0)
            (rlosses + match op with Q_lose _ -> 1 | _ -> 0)
            (campaigns + match op with Q_campaign _ -> 1 | _ -> 0))
        (q_enabled t ~appends ~rlosses ~campaigns)
  in
  go (QP.create ~replicas:q_replicas ~quorum) 0 0 0 0;
  (!states, !violations)

let q_exhaustive_majority () =
  let states, violations = q_explore ~quorum:2 in
  Alcotest.(check int) "no state violates committed-prefix monotonicity" 0
    violations;
  Alcotest.(check int) "states explored" 940664 states

let q_exhaustive_quorum_one () =
  let _, violations = q_explore ~quorum:1 in
  Alcotest.(check bool) "quorum 1 demonstrably loses committed entries" true
    (violations > 0)

let suites =
  suites
  @ [
      ("rapilog.model_check_random", [ random_deep_sequences ]);
      ( "rapilog.model_check_power",
        [ case "post-cut regime, exhaustive to depth 4" pc_exhaustive ] );
      ( "rapilog.model_check_quorum",
        [
          case "committed prefix monotone, exhaustive to depth 11"
            q_exhaustive_majority;
          case "quorum of one violates within the same envelope"
            q_exhaustive_quorum_one;
        ] );
    ]
