open Desim

type mode =
  | Native_sync
  | Virt_sync
  | Rapilog
  | Rapilog_replicated
  | Rapilog_quorum
  | Rapilog_sharded
  | Wcache_flush
  | Unsafe_wcache
  | Async_commit

let mode_name = function
  | Native_sync -> "native-sync"
  | Virt_sync -> "virt-sync"
  | Rapilog -> "rapilog"
  | Rapilog_replicated -> "rapilog-replicated"
  | Rapilog_quorum -> "rapilog-quorum"
  | Rapilog_sharded -> "rapilog-sharded"
  | Wcache_flush -> "wcache-flush"
  | Unsafe_wcache -> "unsafe-wcache"
  | Async_commit -> "async-commit"

let all_modes =
  [
    Native_sync;
    Virt_sync;
    Rapilog;
    Rapilog_replicated;
    Rapilog_quorum;
    Rapilog_sharded;
    Wcache_flush;
    Unsafe_wcache;
    Async_commit;
  ]

let mode_of_name name =
  List.find_opt (fun mode -> String.equal (mode_name mode) name) all_modes

let mode_is_durable = function
  | Native_sync | Virt_sync | Rapilog | Rapilog_sharded | Wcache_flush -> `Always
  | Rapilog_replicated -> `Machine_loss_too
  | Rapilog_quorum -> `Minority_loss_too
  | Unsafe_wcache -> `Os_crash_only
  | Async_commit -> `Never

type device_kind =
  | Disk of Storage.Hdd.config
  | Flash of Storage.Ssd.config
  | Nvme of Storage.Nvme.config

let device_name = function
  | Disk config -> Printf.sprintf "hdd-%drpm" config.Storage.Hdd.rpm
  | Flash _ -> "ssd"
  | Nvme _ -> "nvme"

type workload_kind =
  | Tpcc of Workload.Tpcc_lite.config
  | Micro of Workload.Microbench.config
  | Ycsb of Workload.Ycsb_lite.config

type config = {
  mode : mode;
  device : device_kind;
  single_disk : bool;
  data_spindles : int;
  profile : Dbms.Engine_profile.t;
  clients : int;
  think_time : Time.span;
  workload : workload_kind;
  arrival : Workload.Arrival.process;
  churn : Workload.Churn.schedule option;
  warmup : Time.span;
  duration : Time.span;
  seed : int64;
  logger : Rapilog.Trusted_logger.config;
  net : Net.Replication.config;
  quorum : Net.Quorum.config;
  psu : Power.Psu.config;
  checkpoint_interval : Time.span option;
  pool : Dbms.Buffer_pool.config;
  wal_writer_interval : Time.span;
  log_streams : int;
  shard : Shard.Tier.config;
}

let default =
  {
    mode = Rapilog;
    device = Disk Storage.Hdd.default_7200rpm;
    single_disk = false;
    data_spindles = 4;
    profile = Dbms.Engine_profile.postgres_like;
    clients = 8;
    think_time = Time.zero_span;
    workload = Tpcc Workload.Tpcc_lite.default_config;
    arrival = Workload.Arrival.Closed_loop;
    churn = None;
    warmup = Time.ms 500;
    duration = Time.sec 3;
    seed = 42L;
    logger = Rapilog.Trusted_logger.default_config;
    net = Net.Replication.default;
    quorum = Net.Quorum.default;
    psu = Power.Psu.default;
    checkpoint_interval = Some Time.(sec 1);
    pool = { Dbms.Buffer_pool.default_config with capacity_pages = 4096 };
    wal_writer_interval = Time.ms 10;
    log_streams = 1;
    shard = Shard.Tier.default_config;
  }

type generator = {
  initial_rows : (int * string) list;
  next_txn : unit -> Dbms.Engine.op list;
}

type built = {
  config : config;
  sim : Sim.t;
  vmm : Hypervisor.Vmm.t;
  power : Power.Power_domain.t;
  engine : Dbms.Engine.t;
  wal : Dbms.Wal.t;
  wal_config : Dbms.Wal.config;
  pool : Dbms.Buffer_pool.t;
  log_physical : Storage.Block.t;
  log_attached : Storage.Block.t;
  data_physical : Storage.Block.t;
  data_attached : Storage.Block.t;
  data_members : Storage.Block.t array;
  data_chunk_sectors : int;
  logger : Rapilog.Trusted_logger.t option;
  replication : Net.Replication.t option;
  quorum : Net.Quorum.t option;
  shard : Shard.Tier.t option;
  generator : generator;
}

let make_device sim = function
  | Disk config -> Storage.Hdd.create sim config
  | Flash config -> Storage.Ssd.create sim config
  | Nvme config -> Storage.Nvme.create sim config

let make_generator sim config =
  match config.workload with
  | Tpcc tpcc_config ->
      let gen = Workload.Tpcc_lite.create (Sim.rng sim) tpcc_config in
      {
        initial_rows = Workload.Tpcc_lite.initial_rows gen;
        next_txn = (fun () -> snd (Workload.Tpcc_lite.next gen));
      }
  | Micro micro_config ->
      let gen = Workload.Microbench.create (Sim.rng sim) micro_config in
      {
        initial_rows = Workload.Microbench.initial_rows gen;
        next_txn = (fun () -> Workload.Microbench.next gen);
      }
  | Ycsb ycsb_config ->
      let gen = Workload.Ycsb_lite.create (Sim.rng sim) ycsb_config in
      {
        initial_rows = Workload.Ycsb_lite.initial_rows gen;
        next_txn = (fun () -> Workload.Ycsb_lite.next gen);
      }

let hdd_streaming_bandwidth config =
  let period = Time.span_to_float_sec (Storage.Hdd.rotation_period config) in
  float_of_int (config.Storage.Hdd.sectors_per_track * config.Storage.Hdd.sector_size)
  /. period

(* The single-disk layout keeps the log at the low addresses and the data
   pages half a gigabyte up: far enough that alternating between them
   costs real seeks, as it would on one spindle. *)
let single_disk_data_start_lba = 1_048_576

let build config =
  assert (config.clients > 0);
  let sim = Sim.create ~seed:config.seed () in
  let vmm_config =
    match config.mode with
    | Native_sync | Wcache_flush | Unsafe_wcache | Async_commit -> Hypervisor.Vmm.native
    | Virt_sync | Rapilog | Rapilog_replicated | Rapilog_quorum | Rapilog_sharded ->
        Hypervisor.Vmm.default_sel4
  in
  let vmm = Hypervisor.Vmm.create sim vmm_config in
  let power = Power.Power_domain.create sim config.psu in
  assert (config.data_spindles >= 1);
  let log_physical = make_device sim config.device in
  let data_physical, data_members, data_chunk_sectors =
    if config.single_disk then (log_physical, [| log_physical |], 0)
    else if config.data_spindles = 1 then
      let device = make_device sim config.device in
      (device, [| device |], 0)
    else
      (* The data volume of a real testbed: several spindles striped. *)
      let members =
        Array.init config.data_spindles (fun _ -> make_device sim config.device)
      in
      (Storage.Stripe.create sim ~chunk_sectors:64 members, members, 64)
  in
  let config =
    if config.single_disk then
      {
        config with
        pool =
          {
            config.pool with
            Dbms.Buffer_pool.data_start_lba =
              max config.pool.Dbms.Buffer_pool.data_start_lba
                single_disk_data_start_lba;
          };
      }
    else config
  in
  if not config.single_disk then
    Power.Power_domain.register_device power data_physical;
  let virtio_of device =
    Hypervisor.Vmm.attach_virtio_disk vmm (Hypervisor.Virtio_blk.backend_of_block device)
  in
  let log_attached, data_attached, logger, replication, quorum, shard_tier =
    match config.mode with
    | Native_sync | Async_commit ->
        Power.Power_domain.register_device power log_physical;
        (log_physical, data_physical, None, None, None, None)
    | Virt_sync ->
        Power.Power_domain.register_device power log_physical;
        (virtio_of log_physical, virtio_of data_physical, None, None, None, None)
    | Rapilog_sharded ->
        (* A multi-tenant logger tier shares the machine with the
           benchmark's embedded DBMS: shard 0's first device doubles as
           the DBMS log device. The tier's WAL regions sit above the
           embedded layout, so the two sets of streams are mutually
           invisible to recovery. *)
        assert (not config.single_disk);
        assert (config.log_streams = 1);
        let tier_config =
          {
            config.shard with
            Shard.Tier.logger = config.logger;
            horizon = Time.add_span config.warmup config.duration;
          }
        in
        let tier =
          Shard.Tier.attach sim ~vmm ~power ~config:tier_config
            ~first_device:log_physical
            ~make_device:(fun () -> make_device sim config.device)
            ()
        in
        ( Shard.Tier.shard_frontend tier 0,
          virtio_of data_physical,
          Some (Shard.Tier.shard_logger tier 0),
          None,
          None,
          Some tier )
    | Rapilog | Rapilog_replicated | Rapilog_quorum ->
        (* The logger registers the physical device itself. *)
        let frontend, logger =
          Rapilog.attach ~vmm ~power ~config:config.logger ~device:log_physical ()
        in
        let replication =
          if config.mode = Rapilog_replicated then
            (* The replica is a second machine: its log device belongs
               to a different failure domain and is deliberately NOT
               registered with the primary's power domain. *)
            let replica_device = make_device sim config.device in
            Some (Net.Replication.attach sim config.net ~logger ~replica_device)
          else None
        in
        let quorum =
          if config.mode = Rapilog_quorum then
            (* Each replica is its own machine, its own failure domain:
               none of the replica devices join the primary's power
               domain. *)
            Some
              (Net.Quorum.attach sim config.quorum ~logger
                 ~make_device:(fun _ -> make_device sim config.device))
          else None
        in
        (frontend, virtio_of data_physical, Some logger, replication, quorum, None)
    | Wcache_flush | Unsafe_wcache ->
        (* Same hardware; the modes differ in whether the WAL issues a
           flush barrier after every force (safe) or trusts the volatile
           cache (fast and lossy on power cuts). *)
        let cached = Storage.Write_cache.wrap sim Storage.Write_cache.default log_physical in
        Power.Power_domain.register_device power cached;
        (cached, data_physical, None, None, None, None)
  in
  (* With devices_per_shard > 1 the tier stripes shard 0 across members;
     recovery must read the striped view, not the bare first member. *)
  let log_physical =
    match shard_tier with
    | Some tier -> Shard.Tier.shard_physical tier 0
    | None -> log_physical
  in
  assert (config.log_streams >= 1);
  (* The single-disk layout reserves the low addresses for one log
     region; parallel streams need the dedicated-log-device layout. *)
  assert (not (config.single_disk && config.log_streams > 1));
  let wal_config =
    {
      Dbms.Wal.default_config with
      Dbms.Wal.flush_after_write = (config.mode = Wcache_flush);
      streams = config.log_streams;
    }
  in
  let wal = Dbms.Wal.create sim wal_config ~device:log_attached in
  let pool =
    (* A dirty page's flush forces the page's own log stream: the engine
       routes a page's updates to stream [page mod streams], and page
       LSNs are offsets within that stream. *)
    Dbms.Buffer_pool.create sim config.pool ~device:data_attached
      ~wal_force:(fun ~page lsn ->
        Dbms.Wal.force ~stream:(page mod config.log_streams) wal lsn)
  in
  let async_commit = config.mode = Async_commit in
  let engine =
    Dbms.Engine.create ~vmm ~profile:config.profile ~async_commit ~wal ~pool ()
  in
  if async_commit then
    ignore
      (Dbms.Engine.spawn_wal_writer engine (Hypervisor.Vmm.guest vmm)
         ~interval:config.wal_writer_interval);
  (* Checkpointing (master block + truncation) is single-stream: with
     parallel streams there is no one redo LSN, so recovery repeats
     history from each stream's start instead. *)
  (match config.checkpoint_interval with
  | Some interval when config.log_streams = 1 ->
      ignore
        (Dbms.Checkpoint.start_in_domain (Hypervisor.Vmm.guest vmm)
           { Dbms.Checkpoint.interval } ~wal ~pool)
  | Some _ | None -> ());
  (* Background writer: keeps clean eviction victims available so page
     misses rarely stall behind a data-device write. *)
  ignore
    (Dbms.Buffer_pool.spawn_cleaner pool (Hypervisor.Vmm.guest vmm)
       ~interval:(Time.ms 20) ~batch:16);
  {
    config;
    sim;
    vmm;
    power;
    engine;
    wal;
    wal_config;
    pool;
    log_physical;
    log_attached;
    data_physical;
    data_attached;
    data_members;
    data_chunk_sectors;
    logger;
    replication;
    quorum;
    shard = shard_tier;
    generator = make_generator sim config;
  }

(* Every trusted logger on the machine: one for the plain rapilog
   modes, one per shard for the tier, none for the native modes.
   Crash-surface monitors and quiesce walk this list so the sharded
   mode gets the same scrutiny per logger as the single-logger modes. *)
let all_loggers built =
  match built.shard with
  | Some tier -> Shard.Tier.loggers tier
  | None -> Option.to_list built.logger

(* What recovery reads after a crash: the bare log device, or — when a
   replica exists — the primary's durable media merged with the
   replica's received prefix. The merge is what turns machine loss from
   fatal to survivable; for single-machine crash kinds it only ever
   adds durable-but-unacked extras, which the audit tolerates. *)
let recovery_log_device built =
  match (built.quorum, built.replication) with
  | Some quorum, _ ->
      Net.Quorum.recovery_log_device quorum ~primary:built.log_physical
  | None, Some replication ->
      Net.Replication.recovery_log_device replication ~primary:built.log_physical
  | None, None -> built.log_physical
