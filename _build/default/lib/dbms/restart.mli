(** Restart: bring an engine back up from durable media after a crash.

    The sequence a real DBMS performs on startup:
    + run {!Recovery} over the durable log and data devices;
    + {b neutralise the losers}: for every transaction that was in flight
      at the crash, append compensating updates (reversing its effects)
      and an abort record, and force them — after this, no future
      recovery ever needs to treat those transactions as losers, so new
      transactions can safely overwrite their keys;
    + resume the WAL at the durable log end (including the partial tail
      sector) and seed the buffer pool with the recovered pages, marked
      dirty so the next checkpoint persists the recovered state;
    + hand out an engine whose transaction ids continue the sequence.

    Restarting is an offline step: call it from a process before
    spawning clients on the returned engine. *)

val restart :
  vmm:Hypervisor.Vmm.t ->
  profile:Engine_profile.t ->
  ?async_commit:bool ->
  log_device:Storage.Block.t ->
  data_device:Storage.Block.t ->
  wal_config:Wal.config ->
  pool_config:Buffer_pool.config ->
  unit ->
  Engine.t * Recovery.result
(** Must run in a process (it forces the loser-neutralisation records).
    The devices are the *physical* ones recovery reads — pass the same
    attached paths the new engine should write through if they differ
    (they coincide for the native configurations; for RapiLog, restart
    through the logger path works too since its durable reads see the
    physical media). *)
