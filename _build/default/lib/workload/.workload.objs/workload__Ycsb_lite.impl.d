lib/workload/ycsb_lite.ml: Dbms Desim Key_dist List Printf Rng Value_gen
