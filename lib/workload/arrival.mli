(** Open-loop arrival processes.

    The closed-loop clients the harness always had issue the next
    transaction the instant the previous acknowledgement returns —
    offered load tracks service capacity, so queueing never shows. An
    {e open-loop} process offers work on its own clock: transactions
    arrive when the arrival process says so whether or not the system
    kept up, which is what exposes latency cliffs under bursts.

    Arrivals are an inhomogeneous Poisson process with intensity
    [rate_at shape t] (arrivals per second, [t] relative to the start of
    the process), sampled by Ogata thinning against {!max_rate}. The
    sampler draws from one private split of the simulation's seeded rng
    stream, so the whole arrival sequence is a pure function of
    (seed, time): replays, the crash-surface sweep and the parallel
    fan-out all see bit-identical arrival instants. *)

type shape =
  | Poisson of { rate : float }
      (** homogeneous: constant [rate] arrivals per second *)
  | Flash_crowd of {
      base : float;  (** steady rate before the crowd, arrivals/s *)
      mult : float;  (** rate steps to [base * mult] at onset, [>= 1] *)
      at : Desim.Time.span;  (** onset, relative to process start *)
      decay : Desim.Time.span;
          (** exponential decay constant of the burst back to [base] *)
    }
      (** a flash crowd: rate step [x mult] at [at], then
          [rate(t) = base * (1 + (mult-1) * exp (-(t-at)/decay))] *)
  | Diurnal of { mean : float; amplitude : float; period : Desim.Time.span }
      (** sinusoidal day/night load:
          [rate(t) = mean * (1 + amplitude * sin (2 pi t / period))],
          [amplitude] in [\[0, 1\]] *)

type process = Closed_loop | Open_loop of shape
(** How a scenario's clients offer load: the legacy closed loop, or an
    open-loop dispatcher driven by [shape] feeding a worker pool. *)

val shape_name : shape -> string
val process_name : process -> string

val rate_at : shape -> Desim.Time.span -> float
(** Closed-form intensity at elapsed time [t], arrivals per second. *)

val max_rate : shape -> float
(** A tight upper bound on {!rate_at} over all [t] — the thinning
    envelope. *)

val expected_arrivals : shape -> until:Desim.Time.span -> float
(** Closed-form [integral of rate_at over [0, until]] — the expected
    arrival count, which the property tests hold the sampler to. *)

val validate_shape : shape -> (unit, string) result
(** Parameter sanity (positive rates, multiplier [>= 1], amplitude in
    [\[0, 1\]], positive time constants) with an actionable message. *)

type t
(** A sampler owning a private split of the given rng stream. *)

val create : Desim.Rng.t -> shape -> t
(** Raises [Invalid_argument] when {!validate_shape} rejects. *)

val next_gap : t -> since:Desim.Time.span -> Desim.Time.span
(** Gap from elapsed time [since] to the next arrival ([>= 0]). The
    dispatcher calls this once per arrival with its own elapsed clock. *)

val times : shape -> seed:int64 -> until:Desim.Time.span -> limit:int -> Desim.Time.span list
(** The arrival instants in [\[0, until\]] (at most [limit] of them)
    from a fresh sampler seeded with [seed] — the reference stream the
    determinism and empirical-rate properties check. *)
