(* Property tests for parallel WAL streams.

   The multi-stream commit protocol rests on three claims:

   - {b merge correctness}: recovery over the full durable media of a
     multi-stream run reconstructs exactly the state the engine held in
     memory — the per-stream logs, merged under the dependency rule,
     lose nothing and invent nothing;
   - {b prefix atomicity}: recovery over arbitrary per-stream durable
     prefixes (each stream cut independently at a sector boundary, as a
     crash would) yields a transaction-atomic state — every transaction
     is either fully present or fully absent, even though its updates
     and its commit record straddle streams that were cut at unrelated
     points;
   - {b LSN discipline}: under concurrent committers, each stream's
     records tile its byte sequence gap-free and monotonically — the
     per-stream LSNs recovery binary-searches over are sound.

   These are the properties the crash-surface sweep then re-checks at
   every boundary of full simulated runs; here they get cheap randomised
   coverage over many small workloads. *)

open Testu
open Desim
open Dbms
open QCheck2

type mrig = {
  sim : Sim.t;
  vmm : Hypervisor.Vmm.t;
  engine : Engine.t;
  wal : Wal.t;
  wal_config : Wal.config;
  log_dev : Storage.Block.t;
  data_dev : Storage.Block.t;
}

let make_mrig ?(seed = 1L) ?(policy = Commit_policy.Fixed 1) ~streams () =
  let sim = Sim.create ~seed () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.native in
  let log_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let data_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let wal_config = { Wal.default_config with streams } in
  let wal = Wal.create sim wal_config ~device:log_dev in
  let profile =
    Engine_profile.with_commit_policy Engine_profile.postgres_like policy
  in
  let pool =
    Buffer_pool.create sim Buffer_pool.default_config ~device:data_dev
      ~wal_force:(fun ~page lsn -> Wal.force ~stream:(page mod streams) wal lsn)
  in
  let engine = Engine.create ~vmm ~profile ~wal ~pool () in
  { sim; vmm; engine; wal; wal_config; log_dev; data_dev }

let force_all rig =
  for s = 0 to Wal.stream_count rig.wal - 1 do
    Wal.force ~stream:s rig.wal (Wal.end_lsn ~stream:s rig.wal)
  done

let recover_m rig =
  Recovery.run ~log_device:rig.log_dev ~data_device:rig.data_dev
    ~wal_config:rig.wal_config ~pool_config:Buffer_pool.default_config

(* {2 Workload generator} *)

type gen_txn = { abort : bool; ops : (int * string) list }

let txn_gen =
  let open Gen in
  let op = pair (int_range 0 199) (string_size ~gen:printable (int_range 1 8)) in
  map2
    (fun abort ops -> { abort; ops })
    (map (fun roll -> roll = 0) (int_range 0 7))
    (list_size (int_range 1 5) op)

let workload_gen = Gen.(list_size (int_range 10 40) txn_gen)

let run_workload rig ~clients txns =
  let per_client = Array.make clients [] in
  List.iteri
    (fun i txn -> per_client.(i mod clients) <- txn :: per_client.(i mod clients))
    txns;
  Array.iter
    (fun own ->
      ignore
        (Hypervisor.Vmm.spawn_guest rig.vmm (fun () ->
             List.iter
               (fun txn ->
                 let ops =
                   List.map
                     (fun (key, value) -> Engine.Put { key; value })
                     txn.ops
                 in
                 if txn.abort then ignore (Engine.exec_abort rig.engine ops)
                 else ignore (Engine.exec rig.engine ops))
               (List.rev own))))
    per_client;
  Sim.run rig.sim

(* The engine's own view of every key, read through an ordinary
   transaction once the writers are done. The reader is read-only, so
   it leaves only a Begin record — it shows up as the single tolerated
   loser when the sweep's final force makes that record durable. *)
let in_memory_state rig keys =
  let result = ref [] and reader = ref (-1) in
  ignore
    (Hypervisor.Vmm.spawn_guest rig.vmm (fun () ->
         let r =
           Engine.exec rig.engine
             (List.map (fun key -> Engine.Get { key }) keys)
         in
         result := r.Engine.reads;
         reader := r.Engine.txid;
         force_all rig));
  Sim.run rig.sim;
  (!result, !reader)

(* {2 Property: full-media recovery = in-memory state} *)

let merge_matches_memory streams policy =
  prop
    (Printf.sprintf "S=%d %s: full-media recovery = in-memory state" streams
       (Commit_policy.to_string policy))
    ~count:12 workload_gen
    (fun txns ->
      let rig = make_mrig ~streams ~policy () in
      run_workload rig ~clients:4 txns;
      let keys = List.init 200 (fun k -> k) in
      let memory, reader = in_memory_state rig keys in
      let r = recover_m rig in
      List.for_all (fun txid -> txid = reader) r.Recovery.losers
      && List.for_all
           (fun (key, expected) ->
             Hashtbl.find_opt r.Recovery.store key = expected)
           memory)

(* {2 Property: independent per-stream prefix cuts are atomic} *)

(* Each transaction owns a disjoint key range spanning several pages (so
   its updates land on several streams); the value tags the owner. After
   cutting every stream's region at an independent random sector
   boundary, a key must be present iff its owner is in the recovered
   committed set — the dependency rule may not tear a transaction. *)
let keys_per_txn = 48 (* 3 pages at 16 keys/page *)
let txn_count = 24

let cut_media rig ~cuts =
  let info = Storage.Block.info rig.log_dev in
  let media =
    Storage.Block.Media.create ~sector_size:info.Storage.Block.sector_size
      ~capacity_sectors:info.Storage.Block.capacity_sectors
  in
  let extent = Storage.Block.durable_extent rig.log_dev in
  Array.iteri
    (fun s cut ->
      let start = Wal.stream_start_lba rig.wal_config s in
      let region_end =
        min extent (start + rig.wal_config.Wal.stream_stride_sectors)
      in
      let sectors = min cut (max 0 (region_end - start)) in
      if sectors > 0 then
        Storage.Block.Media.write media ~lba:start
          ~data:(Storage.Block.durable_read rig.log_dev ~lba:start ~sectors))
    cuts;
  Storage.Block.of_media ~model:"cut-log" media

let empty_data rig =
  let info = Storage.Block.info rig.data_dev in
  Storage.Block.of_media ~model:"cut-data"
    (Storage.Block.Media.create ~sector_size:info.Storage.Block.sector_size
       ~capacity_sectors:info.Storage.Block.capacity_sectors)

let prefix_cuts_atomic streams =
  prop
    (Printf.sprintf "S=%d: per-stream prefix cuts recover atomically" streams)
    ~count:10
    Gen.(list_size (pure streams) (int_range 0 80))
    (fun cut_list ->
      let rig = make_mrig ~streams () in
      let txns =
        List.init txn_count (fun i ->
            {
              abort = false;
              ops =
                List.init keys_per_txn (fun j ->
                    ((i * keys_per_txn) + j, Printf.sprintf "txn-%d" i));
            })
      in
      run_workload rig ~clients:6 txns;
      let log_device = cut_media rig ~cuts:(Array.of_list cut_list) in
      let r =
        Recovery.run ~log_device ~data_device:(empty_data rig)
          ~wal_config:rig.wal_config ~pool_config:Buffer_pool.default_config
      in
      let committed = Hashtbl.create 16 in
      List.iter (fun txid -> Hashtbl.replace committed txid ()) r.Recovery.committed;
      (* Which txid wrote key range i? txids are assigned in execution
         order, so recover the mapping from the store values instead of
         guessing: every present key must carry its owner's tag, and the
         owner group must be all-present or all-absent. *)
      let ok = ref true in
      for i = 0 to txn_count - 1 do
        let present =
          List.filter_map
            (fun j -> Hashtbl.find_opt r.Recovery.store ((i * keys_per_txn) + j))
            (List.init keys_per_txn (fun j -> j))
        in
        let tag = Printf.sprintf "txn-%d" i in
        let n = List.length present in
        if not (n = 0 || n = keys_per_txn) then ok := false;
        if not (List.for_all (String.equal tag) present) then ok := false
      done;
      (* Every recovered winner's keys are all present. *)
      !ok
      && Hashtbl.length committed = List.length r.Recovery.committed)

(* {2 Property: per-stream LSNs tile the stream gap-free} *)

let lsns_tile_streams streams =
  prop
    (Printf.sprintf "S=%d: records tile each stream gap-free" streams)
    ~count:12 workload_gen
    (fun txns ->
      let rig = make_mrig ~streams () in
      run_workload rig ~clients:4 txns;
      let ok = ref true in
      for s = 0 to streams - 1 do
        let contents = Wal.stream_contents ~stream:s rig.wal in
        let records = Log_record.decode_stream contents in
        let last =
          List.fold_left
            (fun prev (record, end_lsn) ->
              let e = Lsn.to_int end_lsn in
              if e - Log_record.encoded_size record <> prev then ok := false;
              if e <= prev then ok := false;
              e)
            0 records
        in
        if last <> Lsn.to_int (Wal.end_lsn ~stream:s rig.wal) then ok := false
      done;
      !ok)

let suites =
  [
    ( "dbms.stream_merge",
      [
        merge_matches_memory 1 (Commit_policy.Fixed 1);
        merge_matches_memory 2 (Commit_policy.Fixed 1);
        merge_matches_memory 4 (Commit_policy.Fixed 1);
        merge_matches_memory 2
          (Commit_policy.Adaptive { target_ns = 1; max_batch = 4 });
        merge_matches_memory 4 Commit_policy.Serial;
        prefix_cuts_atomic 2;
        prefix_cuts_atomic 4;
        lsns_tile_streams 2;
        lsns_tile_streams 4;
      ] );
  ]
