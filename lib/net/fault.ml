open Desim

(* Same contract as Failure_injector.pick_instant: half-open, degenerate
   intervals deterministic, reversed intervals loud. *)
let pick_instant sim ~earliest ~latest =
  let span = Time.diff latest earliest in
  if Time.compare_span span Time.zero_span < 0 then
    invalid_arg "Net.Fault: latest is before earliest";
  if Time.compare_span span Time.zero_span = 0 then earliest
  else Time.add earliest (Rng.span (Sim.rng sim) span)

let pick_span sim ~min_outage ~max_outage =
  if Time.compare_span max_outage min_outage < 0 then
    invalid_arg "Net.Fault: max_outage is before min_outage";
  if Time.compare_span max_outage min_outage = 0 then min_outage
  else
    let width = Time.ns (Time.span_to_ns max_outage - Time.span_to_ns min_outage) in
    Time.add_span min_outage (Rng.span (Sim.rng sim) width)

let outage_between sim ~earliest ~latest ~min_outage ~max_outage ~partition
    ~heal =
  let cut_at = pick_instant sim ~earliest ~latest in
  let outage = pick_span sim ~min_outage ~max_outage in
  let heal_at = Time.add cut_at outage in
  Sim.schedule_at sim cut_at partition;
  Sim.schedule_at sim heal_at heal;
  (cut_at, heal_at)

let machine_loss_at sim power ~at =
  Sim.schedule_at sim at (fun () -> Power.Power_domain.lose power)

let machine_loss_between sim power ~earliest ~latest =
  let at = pick_instant sim ~earliest ~latest in
  machine_loss_at sim power ~at;
  at
