lib/dbms/txn.mli:
