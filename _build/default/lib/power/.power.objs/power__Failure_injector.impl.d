lib/power/failure_injector.ml: Desim Power_domain Rng Sim Time
