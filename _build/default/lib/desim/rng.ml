type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: used only to expand a 64-bit seed into xoshiro state. *)
let splitmix_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref seed in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create (bits64 t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* 53 high bits give a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t n =
  assert (n > 0);
  (* Rejection sampling over the positive-int range avoids modulo bias. *)
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let bound = v mod n in
    if v - bound + (n - 1) < 0 then draw () else bound
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let exponential t ~mean =
  let u = float t in
  -.mean *. log1p (-.u)

let normal t ~mu ~sigma =
  let rec nonzero () =
    let u = float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let span t d =
  let n = Time.span_to_ns d in
  assert (n > 0);
  Time.ns (int t n)

let exponential_span t ~mean =
  Time.span_of_float_sec (exponential t ~mean:(Time.span_to_float_sec mean))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

module Zipf = struct
  type dist = { cdf : float array }

  let create ~n ~theta =
    assert (n > 0 && theta >= 0.);
    let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (weights.(i) /. total);
      cdf.(i) <- !acc
    done;
    cdf.(n - 1) <- 1.0;
    { cdf }

  let sample t { cdf } =
    let u = float t in
    (* First index whose cumulative weight exceeds u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then search (mid + 1) hi else search lo mid
    in
    search 0 (Array.length cdf - 1)
end
