bench/bench_recovery.ml: Audit Bench_support Desim Experiment Harness Int64 List Printf Rapilog Report Scenario Stats Storage Time Workload
