(** Block-device abstraction.

    A device is a record of operations over an addressable array of
    sectors. Timed operations ({!read}, {!write}, {!flush}) are
    process-blocking: they must be called from inside a {!Desim.Process}
    and return when the device completes the request. {!durable_read}
    bypasses timing and the volatile cache — it answers "what is on the
    non-volatile media right now", and is what crash-recovery and the
    durability audit use.

    A plain {!write} is durable on completion only if the device has no
    volatile write cache (or the write bypasses it); [write ~fua:true]
    always hits media before completing. *)

type info = { model : string; sector_size : int; capacity_sectors : int }

type ops = {
  op_read : lba:int -> sectors:int -> string;
  op_write : lba:int -> data:string -> fua:bool -> unit;
  op_flush : unit -> unit;
  op_power_cut : unit -> unit;
  op_durable_read : lba:int -> sectors:int -> string;
  op_durable_extent : unit -> int;
}

type t

val make :
  ?journal_id:int -> info:info -> stats:Disk_stats.t -> ops:ops -> unit -> t
(** Device constructors in {!Hdd}, {!Ssd} and {!Write_cache} use this.
    [journal_id] is the endpoint id the device registered with an active
    {!Desim.Journal} at creation ([-1], the default, when none was
    recording). *)

val info : t -> info
val stats : t -> Disk_stats.t

val journal_id : t -> int
(** The {!Desim.Journal} endpoint id this device or frontend registered
    at creation, or [-1] if created without recording. *)

val read : t -> lba:int -> sectors:int -> string
(** Blocking read of [sectors] sectors; requires the range to be within
    the device capacity. *)

val write : t -> ?fua:bool -> lba:int -> string -> unit
(** [write t ~lba data] is a blocking write; [String.length data] must be
    a positive multiple of the sector size. [fua] defaults to [false]. *)

val flush : t -> unit
(** Blocks until all volatile-cached writes are on media. *)

val power_cut : t -> unit
(** Electrical power is gone this instant: volatile state is dropped and
    any in-flight write may be torn. Callable from any context. *)

val durable_read : t -> lba:int -> sectors:int -> string
(** Untimed read of the non-volatile media, callable from any context. *)

val durable_extent : t -> int
(** One past the highest sector ever written to media; bounds how far a
    post-crash scan needs to read. *)

val sectors_of_bytes : t -> int -> int
(** Number of sectors needed to hold the given byte count. *)

module Media : sig
  (** Non-volatile sector store shared by the device implementations.

      Since PR 8 the store is page-granular copy-on-write: sectors group
      into pages of {!page_sectors}, each page carries the epoch token
      of the media that owns it, and a write mutates a page in place
      only when the writer owns it — otherwise the page is shared (with
      a {!fork} sibling or an {!overlay} base) and is copied first.
      Steady-state writes into owned pages allocate nothing. *)

  type device := t
  type t

  val page_sectors : int
  (** Sectors per copy-on-write page (8 — 4 KiB at 512-byte sectors):
      the copy granularity of {!fork} divergence and of read-throughs
      materialised by {!overlay} writes. *)

  val create : sector_size:int -> capacity_sectors:int -> t
  val sector_size : t -> int
  val capacity_sectors : t -> int

  val read : t -> lba:int -> sectors:int -> string
  (** Unwritten sectors read as zero bytes. *)

  val write : t -> lba:int -> data:string -> unit

  val write_torn : t -> rng:Desim.Rng.t -> lba:int -> data:string -> unit
  (** Persist a uniformly random prefix of the sectors, modelling a write
      interrupted by power loss. *)

  val write_prefix : t -> lba:int -> data:string -> sectors:int -> unit
  (** Persist exactly the first [sectors] sectors of [data] — the
      deterministic form of {!write_torn} used when replaying a journaled
      tear with a known draw. *)

  val extent : t -> int
  (** One past the highest sector ever written. *)

  val overlay : t -> t
  (** A copy-on-write view: reads fall through to the underlying media
      where the overlay has no page of its own, writes stay in the
      overlay (copying the underlying page up first). The view is live —
      it sees later writes to the base where it has not diverged. The
      crash-surface sweeps layer per-crash-point deltas over one
      evolving base image with this. *)

  val fork : t -> t
  (** An O(pages) snapshot fork: the child shares every current page
      with the parent, and {e both} sides copy a shared page on first
      write, so parent and child diverge independently from the fork
      point — unlike {!overlay}, the child never sees post-fork parent
      writes. Because shared pages are replaced rather than mutated, a
      fork may be handed to a {!Harness.Parallel} worker domain while
      the parent keeps evolving; the fork-based crash sweep snapshots
      its cursor this way at every chunk boundary. Raises
      [Invalid_argument] on an overlay: fork the root image. *)

  val check_range : device -> lba:int -> sectors:int -> unit
  (** Asserts the range lies within the device. *)
end

val of_media : ?model:string -> Media.t -> t
(** A frozen device over a media image: durable reads work, timed
    operations raise. Recovery after a reconstructed crash runs against
    these. *)
