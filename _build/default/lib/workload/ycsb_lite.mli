(** A YCSB-flavoured key–value workload.

    Each transaction performs [ops_per_txn] operations over a fixed key
    space with Zipf popularity; each operation is a read with probability
    [read_fraction], otherwise an update. Sweeping [read_fraction]
    reproduces the YCSB workload family (A = 0.5, B = 0.95, C = 1.0) and
    shows how RapiLog's advantage scales with the commit rate: read-only
    transactions never touch the log device. *)

type config = {
  keys : int;
  value_bytes : int;
  zipf_theta : float;
  read_fraction : float;  (** in [\[0, 1\]] *)
  ops_per_txn : int;
}

val default_config : config
(** Workload A: 10k keys, 100-byte values, theta 0.99, 50% reads,
    2 ops per transaction. *)

val workload_a : config
val workload_b : config
(** 95% reads. *)

type t

val create : Desim.Rng.t -> config -> t
val config : t -> config

val initial_rows : t -> (int * string) list
val next : t -> Dbms.Engine.op list
val reads_issued : t -> int
val updates_issued : t -> int
