type result = {
  store : (int, string) Hashtbl.t;
  records : (Log_record.t * Lsn.t) list;
  parities : (int, int) Hashtbl.t;
  committed : int list;
  aborted : int list;
  losers : int list;
  durable_records : int;
  durable_end : Lsn.t;
  redo_start : Lsn.t;
  redo_applied : int;
  undo_applied : int;
  pages_loaded : int;
}

type replay_stats = {
  s_durable_records : int;
  s_durable_bytes : int;
  s_committed : int;
  s_aborted : int;
  s_losers : int;
  s_redo_applied : int;
  s_undo_applied : int;
  s_pages_loaded : int;
  s_store_keys : int;
}

let stats result =
  {
    s_durable_records = result.durable_records;
    s_durable_bytes = Lsn.to_int result.durable_end;
    s_committed = List.length result.committed;
    s_aborted = List.length result.aborted;
    s_losers = List.length result.losers;
    s_redo_applied = result.redo_applied;
    s_undo_applied = result.undo_applied;
    s_pages_loaded = result.pages_loaded;
    s_store_keys = Hashtbl.length result.store;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "records=%d bytes=%d committed=%d aborted=%d losers=%d redo=%d undo=%d \
     pages=%d keys=%d"
    s.s_durable_records s.s_durable_bytes s.s_committed s.s_aborted s.s_losers
    s.s_redo_applied s.s_undo_applied s.s_pages_loaded s.s_store_keys

let read_durable_log ~log_device ~wal_config =
  let extent = Storage.Block.durable_extent log_device in
  let start = wal_config.Wal.log_start_lba in
  if extent <= start then ""
  else Storage.Block.durable_read log_device ~lba:start ~sectors:(extent - start)

(* Chunked scan: read the log region incrementally and decode as we go,
   stopping at the first definitively-invalid record. This keeps memory
   proportional to the valid log even when the device's written extent is
   dominated by something else (the single-disk layout puts data pages on
   the same device, far past the log region). *)
let scan_chunk_sectors = 4096

let scan_records_region ~log_device ~start ~limit_lba =
  let sector_size = (Storage.Block.info log_device).Storage.Block.sector_size in
  let extent = min (Storage.Block.durable_extent log_device) limit_lba in
  let buf = Buffer.create (scan_chunk_sectors * sector_size) in
  let records = ref [] in
  let pos = ref 0 in
  let finished = ref false in
  let next_lba = ref start in
  while not !finished do
    if !next_lba >= extent then finished := true
    else begin
      let sectors = min scan_chunk_sectors (extent - !next_lba) in
      Buffer.add_string buf
        (Storage.Block.durable_read log_device ~lba:!next_lba ~sectors);
      next_lba := !next_lba + sectors;
      let contents = Buffer.contents buf in
      let progressing = ref true in
      while !progressing do
        match Log_record.decode contents ~pos:!pos with
        | Some (record, size) ->
            pos := !pos + size;
            records := (record, Lsn.of_int !pos) :: !records
        | None -> progressing := false
      done;
      (* If decoding stalled with more than a maximal record still
         unread, the next bytes are not a truncated record — they are
         the end of the log. *)
      if String.length contents - !pos > Log_record.max_body + 64 then
        finished := true
    end
  done;
  List.rev !records

let scan_records ~log_device ~wal_config =
  scan_records_region ~log_device ~start:wal_config.Wal.log_start_lba
    ~limit_lba:max_int

type outcome = Won | Lost

let analyse records =
  let outcomes = Hashtbl.create 256 in
  let seen = Hashtbl.create 256 in
  let aborted = Hashtbl.create 16 in
  let note_seen txid = Hashtbl.replace seen txid () in
  List.iter
    (fun (record, _lsn) ->
      match record with
      | Log_record.Begin { txid } -> note_seen txid
      | Log_record.Update { txid; _ } -> note_seen txid
      | Log_record.Commit { txid } ->
          note_seen txid;
          Hashtbl.replace outcomes txid Won
      | Log_record.Abort { txid } ->
          note_seen txid;
          Hashtbl.replace outcomes txid Lost;
          Hashtbl.replace aborted txid ()
      (* Multi-stream outcome records only appear in multi-stream logs,
         which {!run_multi} analyses with the dependency-validity rule;
         in a single-stream scan they read as their plain counterparts. *)
      | Log_record.Commit_multi { txid; _ } ->
          note_seen txid;
          Hashtbl.replace outcomes txid Won
      | Log_record.Abort_multi { txid; _ } ->
          note_seen txid;
          Hashtbl.replace outcomes txid Lost;
          Hashtbl.replace aborted txid ()
      | Log_record.Checkpoint _ | Log_record.Noop _ -> ())
    records;
  let committed = ref [] and aborted_list = ref [] and losers = ref [] in
  Hashtbl.iter
    (fun txid () ->
      match Hashtbl.find_opt outcomes txid with
      | Some Won -> committed := txid :: !committed
      | Some Lost -> aborted_list := txid :: !aborted_list
      | None -> losers := txid :: !losers)
    seen;
  ( List.sort Int.compare !committed,
    List.sort Int.compare !aborted_list,
    List.sort Int.compare !losers )

(* Candidate pages: the on-media log is append-only (only the in-guest
   WAL memory is ever truncated), so every key that ever reached a page
   image appears in some durable update record — the distinct pages of
   those keys are exactly the slots worth reading. This keeps recovery
   proportional to the touched working set instead of the (sparse)
   key-space extent. *)
let candidate_page_ids ~pool_config records =
  let keys_per_page = pool_config.Buffer_pool.keys_per_page in
  let ids = Hashtbl.create 1024 in
  List.iter
    (fun (record, _lsn) ->
      match record with
      | Log_record.Update { key; _ } ->
          Hashtbl.replace ids (Page.page_of_key ~keys_per_page key) ()
      | Log_record.Begin _ | Log_record.Commit _ | Log_record.Abort _
      | Log_record.Commit_multi _ | Log_record.Abort_multi _
      | Log_record.Checkpoint _ | Log_record.Noop _ ->
          ())
    records;
  ids

(* Each page owns a pair of slots (ping-pong torn-page protection); the
   newest slot with an intact CRC wins, and its parity is reported so a
   restart's flushes keep avoiding the winner. *)
let load_page_slots ~data_device ~pool_config id =
  let sector_size = (Storage.Block.info data_device).Storage.Block.sector_size in
  let sectors_per_page = pool_config.Buffer_pool.page_bytes / sector_size in
  let extent = Storage.Block.durable_extent data_device in
  let lba = Buffer_pool.lba_of_page pool_config ~sector_size id in
  if lba >= extent then None
  else begin
    let best = ref None in
    for parity = 0 to Buffer_pool.slot_count - 1 do
      let image =
        Storage.Block.durable_read data_device
          ~lba:(lba + (parity * sectors_per_page))
          ~sectors:sectors_per_page
      in
      match Page.deserialize image with
      | Some page when page.Page.id = id -> (
          match !best with
          | Some (_, chosen) when Lsn.(page.Page.page_lsn <= chosen.Page.page_lsn)
            ->
              ()
          | Some _ | None -> best := Some (parity, page))
      | Some _ | None -> ()  (* unwritten slot, or torn by the crash *)
    done;
    !best
  end

let load_pages ~data_device ~pool_config records =
  let pages = Hashtbl.create 256 in
  let parities = Hashtbl.create 256 in
  Hashtbl.iter
    (fun id () ->
      match load_page_slots ~data_device ~pool_config id with
      | Some (parity, page) ->
          Hashtbl.replace pages id page;
          Hashtbl.replace parities id parity
      | None -> ())
    (candidate_page_ids ~pool_config records);
  (pages, parities)

(* The redo and undo passes plus the final store projection, shared
   between {!run} and the incremental engine's from-scratch fallback so
   the two are identical by construction. Mutates [pages] in place. *)
let redo_undo_store ~pool_config ~records ~losers ~redo_start ~pages =
  let loser_set = Hashtbl.create 16 in
  List.iter (fun txid -> Hashtbl.replace loser_set txid ()) losers;
  let keys_per_page = pool_config.Buffer_pool.keys_per_page in
  let page_of_key key =
    let id = Page.page_of_key ~keys_per_page key in
    match Hashtbl.find_opt pages id with
    | Some page -> page
    | None ->
        let page = Page.create ~id in
        Hashtbl.replace pages id page;
        page
  in
  (* Redo: repeating history from the redo point, guarded by page LSNs. *)
  let redo_applied = ref 0 in
  List.iter
    (fun (record, lsn) ->
      match record with
      | Log_record.Update { key; after; _ } when Lsn.(redo_start < lsn) ->
          let page = page_of_key key in
          if Lsn.(page.Page.page_lsn < lsn) then begin
            (* An empty after-image (from a compensating update whose key
               did not exist before the transaction) encodes a delete. *)
            if String.length after = 0 then begin
              Hashtbl.remove page.Page.values key;
              page.Page.page_lsn <- lsn
            end
            else Page.set page ~key ~value:after ~lsn;
            incr redo_applied
          end
      | Log_record.Update _ | Log_record.Begin _ | Log_record.Commit _
      | Log_record.Abort _ | Log_record.Commit_multi _ | Log_record.Abort_multi _
      | Log_record.Checkpoint _ | Log_record.Noop _ ->
          ())
    records;
  (* Undo the losers, newest first. An empty before-image encodes "key did
     not exist". *)
  let undo_applied = ref 0 in
  List.iter
    (fun (record, _lsn) ->
      match record with
      | Log_record.Update { txid; key; before; _ }
        when Hashtbl.mem loser_set txid ->
          let page = page_of_key key in
          if String.length before = 0 then Hashtbl.remove page.Page.values key
          else Hashtbl.replace page.Page.values key before;
          incr undo_applied
      | Log_record.Update _ | Log_record.Begin _ | Log_record.Commit _
      | Log_record.Abort _ | Log_record.Commit_multi _ | Log_record.Abort_multi _
      | Log_record.Checkpoint _ | Log_record.Noop _ ->
          ())
    (List.rev records);
  let store = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun _id page ->
      Hashtbl.iter (fun key value -> Hashtbl.replace store key value) page.Page.values)
    pages;
  (!redo_applied, !undo_applied, store)

(* Recovery is pure in the media images (no simulation handle), so the
   stage counters resolve against the ambient registry per run rather
   than at a create point. *)
let note_metrics result =
  (match Desim.Metrics.recording () with
  | Some reg ->
      Desim.Metrics.Counter.incr (Desim.Metrics.counter reg "recovery.runs");
      Desim.Metrics.Counter.add
        (Desim.Metrics.counter reg "recovery.durable_records")
        result.durable_records;
      Desim.Metrics.Counter.add
        (Desim.Metrics.counter reg "recovery.redo_applied")
        result.redo_applied;
      Desim.Metrics.Counter.add
        (Desim.Metrics.counter reg "recovery.undo_applied")
        result.undo_applied
  | None -> ());
  result

(* {2 Multi-stream recovery}

   With [Wal.streams > 1] every stream is an independent byte sequence
   in its own device region, so the scan runs per stream (region-bounded
   — a later stream's bytes must not read as stream [s]'s tail) and a
   transaction's fate follows the dependency rule documented on
   {!Log_record.Commit_multi}: the outcome counts only if, for every
   stream, the recorded dependency is inside that stream's durable
   decoded prefix. Because commit vectors fold in the WAL's cross-stream
   watermark, the valid commits are closed under the commit order — an
   invalid commit can never be depended on by a valid one. *)

let analyse_multi per_stream ~durable_ends =
  let streams = Array.length durable_ends in
  let valid deps =
    Array.length deps = streams
    && begin
         let ok = ref true in
         Array.iteri (fun s d -> if d > durable_ends.(s) then ok := false) deps;
         !ok
       end
  in
  let outcomes = Hashtbl.create 256 in
  let seen = Hashtbl.create 256 in
  let note_seen txid = Hashtbl.replace seen txid () in
  Array.iter
    (List.iter (fun (record, _lsn) ->
         match record with
         | Log_record.Begin { txid } -> note_seen txid
         | Log_record.Update { txid; _ } -> note_seen txid
         | Log_record.Commit { txid } ->
             note_seen txid;
             Hashtbl.replace outcomes txid Won
         | Log_record.Abort { txid } ->
             note_seen txid;
             Hashtbl.replace outcomes txid Lost
         | Log_record.Commit_multi { txid; deps } ->
             note_seen txid;
             if valid deps then Hashtbl.replace outcomes txid Won
         | Log_record.Abort_multi { txid; deps } ->
             note_seen txid;
             if valid deps then Hashtbl.replace outcomes txid Lost
         | Log_record.Checkpoint _ | Log_record.Noop _ -> ()))
    per_stream;
  let committed = ref [] and aborted_list = ref [] and losers = ref [] in
  Hashtbl.iter
    (fun txid () ->
      match Hashtbl.find_opt outcomes txid with
      | Some Won -> committed := txid :: !committed
      | Some Lost -> aborted_list := txid :: !aborted_list
      | None -> losers := txid :: !losers)
    seen;
  ( List.sort Int.compare !committed,
    List.sort Int.compare !aborted_list,
    List.sort Int.compare !losers )

let run_multi ~log_device ~data_device ~wal_config ~pool_config =
  let streams = wal_config.Wal.streams in
  let per_stream =
    Array.init streams (fun s ->
        let start = Wal.stream_start_lba wal_config s in
        scan_records_region ~log_device ~start
          ~limit_lba:(start + wal_config.Wal.stream_stride_sectors))
  in
  let durable_ends =
    Array.map
      (fun records ->
        match List.rev records with [] -> 0 | (_, lsn) :: _ -> Lsn.to_int lsn)
      per_stream
  in
  let committed, aborted, losers = analyse_multi per_stream ~durable_ends in
  let all_records = List.concat (Array.to_list per_stream) in
  let pages, parities = load_pages ~data_device ~pool_config all_records in
  let keys_per_page = pool_config.Buffer_pool.keys_per_page in
  let page_of_key key =
    let id = Page.page_of_key ~keys_per_page key in
    match Hashtbl.find_opt pages id with
    | Some page -> page
    | None ->
        let page = Page.create ~id in
        Hashtbl.replace pages id page;
        page
  in
  (* Redo: repeating history per stream, in stream order, from the log
     start (multi-stream configurations run without checkpoints). Pages
     are partitioned across streams — every update to a page lives on
     one stream — so the page-LSN guard compares LSNs of one sequence,
     exactly as in the single-stream pass. *)
  let redo_applied = ref 0 in
  Array.iter
    (List.iter (fun (record, lsn) ->
         match record with
         | Log_record.Update { key; after; _ } ->
             let page = page_of_key key in
             if Lsn.(page.Page.page_lsn < lsn) then begin
               (if String.length after = 0 then begin
                  Hashtbl.remove page.Page.values key;
                  page.Page.page_lsn <- lsn
                end
                else Page.set page ~key ~value:after ~lsn);
               incr redo_applied
             end
         | _ -> ()))
    per_stream;
  (* Undo: roll the losers back per stream, newest first. One wrinkle
     the single log never shows: a key a loser updated may carry a later
     update by a *valid committed* winner. Under strict 2PL the winner
     can only have locked the key after the loser's in-memory rollback
     completed — but the loser's abort record may have missed the
     durable prefix of its home stream even though the winner's commit
     made its own (the streams' prefixes are independent). Restoring the
     loser's before-image would clobber the winner, so a loser's update
     is skipped when a valid winner touched the key {e later} (per-key
     LSNs are comparable — a page's updates all live on one stream):
     the loser's durable update/compensation pair nets to the value the
     winner started from, which redo already superseded. A loser update
     {e after} the last winner update is the newest durable state of the
     key and must still be rolled back — strict 2PL puts every record of
     an earlier loser before the winner's, so the guard never slices the
     middle of one loser's update/compensation sequence. *)
  let loser_set = Hashtbl.create 16 in
  List.iter (fun txid -> Hashtbl.replace loser_set txid ()) losers;
  let winner_set = Hashtbl.create 64 in
  List.iter (fun txid -> Hashtbl.replace winner_set txid ()) committed;
  let winner_latest = Hashtbl.create 256 in
  Array.iter
    (List.iter (fun (record, lsn) ->
         match record with
         | Log_record.Update { txid; key; _ } when Hashtbl.mem winner_set txid ->
             let prev =
               match Hashtbl.find_opt winner_latest key with
               | Some prev -> prev
               | None -> Lsn.zero
             in
             Hashtbl.replace winner_latest key (Lsn.max prev lsn)
         | _ -> ()))
    per_stream;
  let superseded key lsn =
    match Hashtbl.find_opt winner_latest key with
    | Some w -> Lsn.(lsn < w)
    | None -> false
  in
  let undo_applied = ref 0 in
  Array.iter
    (fun records ->
      List.iter
        (fun (record, lsn) ->
          match record with
          | Log_record.Update { txid; key; before; _ }
            when Hashtbl.mem loser_set txid && not (superseded key lsn) ->
              let page = page_of_key key in
              if String.length before = 0 then Hashtbl.remove page.Page.values key
              else Hashtbl.replace page.Page.values key before;
              incr undo_applied
          | _ -> ())
        (List.rev records))
    per_stream;
  let store = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun _id page ->
      Hashtbl.iter (fun key value -> Hashtbl.replace store key value) page.Page.values)
    pages;
  note_metrics
    {
      store;
      records = all_records;
      parities;
      committed;
      aborted;
      losers;
      durable_records = List.length all_records;
      durable_end = Lsn.of_int (Array.fold_left ( + ) 0 durable_ends);
      redo_start = Lsn.zero;
      redo_applied = !redo_applied;
      undo_applied = !undo_applied;
      pages_loaded = Hashtbl.length pages;
    }

let run_single ~log_device ~data_device ~wal_config ~pool_config =
  let records = scan_records ~log_device ~wal_config in
  let committed, aborted, losers = analyse records in
  let redo_start =
    match Wal.read_master wal_config ~device:log_device with
    | Some lsn -> lsn
    | None -> Lsn.zero
  in
  let pages, parities = load_pages ~data_device ~pool_config records in
  let redo_applied, undo_applied, store =
    redo_undo_store ~pool_config ~records ~losers ~redo_start ~pages
  in
  note_metrics
  {
    store;
    records;
    parities;
    committed;
    aborted;
    losers;
    durable_records = List.length records;
    durable_end =
      (match List.rev records with [] -> Lsn.zero | (_, lsn) :: _ -> lsn);
    redo_start;
    redo_applied;
    undo_applied;
    pages_loaded = Hashtbl.length pages;
  }

let run ~log_device ~data_device ~wal_config ~pool_config =
  if wal_config.Wal.streams > 1 then
    run_multi ~log_device ~data_device ~wal_config ~pool_config
  else run_single ~log_device ~data_device ~wal_config ~pool_config


(* {2 Incremental recovery}

   The journal-based crash sweep runs recovery at thousands of
   boundaries over media images that differ only by a small suffix: the
   evolving base image grows monotonically as the sweep's cursor folds
   in durable writes, and each boundary adds a per-point overlay (the
   in-flight writes synthesized for that crash instant). Re-running the
   sequential pass per point would redo work proportional to the whole
   log at every boundary; this engine amortizes it in two layers.

   {b Shared per reference run} ({!Incremental.prepare}): the sweep
   knows, before reconstructing a single point, every byte the run will
   ever push at the log — the "future stream" [f]: each log push blitted
   at its stream offset, latest version winning. Decoding [f] once
   yields the record array every point's durable log is a prefix of,
   plus indexes over it (per-transaction first-appearance / outcome /
   update positions, per-page update positions). A point whose durable
   stream equals [f] on its first [L] bytes decodes exactly the records
   ending within [L] — decoding is deterministic and record-local — so
   that point's scan and analysis reduce to binary searches.

   {b Shared per cursor} ({!Incremental.create}): two byte watermarks
   certify the prefix property without per-point comparisons.
   [push_ok] is maintained by {!note_push}: each push is compared
   against [f] once, as the cursor folds it in; [base_ok] does the same
   for completed base log writes. A point's overlay writes that replay
   buffered pushes are trusted below [push_ok] outright; the rare
   overlay write carrying a recorded device batch (whose tail sector
   may be staler than [f]) is compared directly. The segments trusted
   by watermark or comparison, overlaid in application order over the
   trusted base prefix, give the point's verified stream length — and
   any divergence simply lowers the split point: records below it come
   from [f], the remainder (typically under a sector) is re-read from
   the point's media and decoded per point, exactly as the sequential
   scan would read it.

   The cursor also repeats redo history once, against the evolving base
   data volume, up to the deepest split point seen so far. Per point,
   the shared page table is copied and patched at page granularity:
   pages whose sectors the point's data overlay touches, and pages the
   shared state has redone past the point's split, are reloaded from
   the point's device and replayed from the per-page position index —
   the per-page effect of redo is position-local, so replaying one
   page's positions below the split reproduces the sequential
   interleaving exactly. {!note_data_write} invalidates base pages by
   the same sector-to-page arithmetic when the base volume itself
   advances.

   Every guard, application order and counter reproduces {!run} on the
   same media exactly — the crash sweep's differential oracle compares
   the two bit-for-bit, media digest included. *)

module Incremental = struct
  type shared = {
    s_wal : Wal.config;
    s_pool : Buffer_pool.config;
    s_ss : int;  (* log-device sector size *)
    f_str : string;  (* the future stream *)
    f_len : int;
    f_recs : Log_record.t array;  (* maximal valid decode of [f_str] *)
    f_ends : int array;  (* strictly increasing record end offsets *)
    f_pairs : (Log_record.t * Lsn.t) array;  (* preshared (record, LSN) *)
    f_n : int;
    (* Transaction index, one slot per distinct txid, ascending. *)
    x_txids : int array;
    x_first : int array;  (* first record position mentioning the txid *)
    x_opos : int array array;  (* outcome record positions, ascending *)
    x_oval : outcome array array;
    x_upd : int array array;  (* update record positions, ascending *)
    p_upd : (int, int array) Hashtbl.t;  (* page id -> update positions *)
  }

  let dummy_record = Log_record.Noop { filler = 0 }

  (* Count of elements <= x (upper) / < x (lower) in ascending arr[0..n). *)
  let upper_bound arr n x =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid) <= x then lo := mid + 1 else hi := mid
    done;
    !lo

  let lower_bound arr n x =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo

  let find_txid sh txid =
    let n = Array.length sh.x_txids in
    let i = lower_bound sh.x_txids n txid in
    if i < n && sh.x_txids.(i) = txid then i else -1

  let prepare ~wal_config ~pool_config ~log_sector_size ~future =
    let f_len = String.length future in
    let entries = ref [] and n = ref 0 and pos = ref 0 in
    let progressing = ref true in
    while !progressing do
      match Log_record.decode future ~pos:!pos with
      | Some (record, size) ->
          pos := !pos + size;
          entries := (record, !pos) :: !entries;
          incr n
      | None -> progressing := false
    done;
    let f_n = !n in
    let f_recs = Array.make f_n dummy_record and f_ends = Array.make f_n 0 in
    List.iteri
      (fun j (r, e) ->
        f_recs.(f_n - 1 - j) <- r;
        f_ends.(f_n - 1 - j) <- e)
      !entries;
    let f_pairs = Array.init f_n (fun i -> (f_recs.(i), Lsn.of_int f_ends.(i))) in
    let first = Hashtbl.create 256 in
    let opos = Hashtbl.create 64 in  (* txid -> (pos, outcome), newest-first *)
    let upd = Hashtbl.create 256 in  (* txid -> positions, newest-first *)
    let pupd = Hashtbl.create 256 in  (* page id -> positions, newest-first *)
    let keys_per_page = pool_config.Buffer_pool.keys_per_page in
    let note_first txid i =
      if not (Hashtbl.mem first txid) then Hashtbl.replace first txid i
    in
    for i = 0 to f_n - 1 do
      match f_recs.(i) with
      | Log_record.Begin { txid } -> note_first txid i
      | Log_record.Update { txid; key; _ } ->
          note_first txid i;
          Hashtbl.replace upd txid
            (i :: Option.value ~default:[] (Hashtbl.find_opt upd txid));
          let id = Page.page_of_key ~keys_per_page key in
          Hashtbl.replace pupd id
            (i :: Option.value ~default:[] (Hashtbl.find_opt pupd id))
      | Log_record.Commit { txid } ->
          note_first txid i;
          Hashtbl.replace opos txid
            ((i, Won) :: Option.value ~default:[] (Hashtbl.find_opt opos txid))
      | Log_record.Abort { txid } ->
          note_first txid i;
          Hashtbl.replace opos txid
            ((i, Lost) :: Option.value ~default:[] (Hashtbl.find_opt opos txid))
      (* The incremental engine only serves single-stream sweeps (the
         multi-stream path falls back to the sequential {!run}); a
         multi-stream outcome record reads as its plain counterpart. *)
      | Log_record.Commit_multi { txid; _ } ->
          note_first txid i;
          Hashtbl.replace opos txid
            ((i, Won) :: Option.value ~default:[] (Hashtbl.find_opt opos txid))
      | Log_record.Abort_multi { txid; _ } ->
          note_first txid i;
          Hashtbl.replace opos txid
            ((i, Lost) :: Option.value ~default:[] (Hashtbl.find_opt opos txid))
      | Log_record.Checkpoint _ | Log_record.Noop _ -> ()
    done;
    let x_txids =
      Array.of_list
        (List.sort Int.compare (Hashtbl.fold (fun t _ acc -> t :: acc) first []))
    in
    let nt = Array.length x_txids in
    let x_first = Array.map (fun t -> Hashtbl.find first t) x_txids in
    let x_opos = Array.make nt [||] in
    let x_oval = Array.make nt [||] in
    let x_upd = Array.make nt [||] in
    Array.iteri
      (fun xi t ->
        (match Hashtbl.find_opt opos t with
        | Some l ->
            let l = List.rev l in
            x_opos.(xi) <- Array.of_list (List.map fst l);
            x_oval.(xi) <- Array.of_list (List.map snd l)
        | None -> ());
        match Hashtbl.find_opt upd t with
        | Some l -> x_upd.(xi) <- Array.of_list (List.rev l)
        | None -> ())
      x_txids;
    let p_upd = Hashtbl.create (max 16 (Hashtbl.length pupd)) in
    Hashtbl.iter
      (fun id l -> Hashtbl.replace p_upd id (Array.of_list (List.rev l)))
      pupd;
    {
      s_wal = wal_config;
      s_pool = pool_config;
      s_ss = log_sector_size;
      f_str = future;
      f_len;
      f_recs;
      f_ends;
      f_pairs;
      f_n;
      x_txids;
      x_first;
      x_opos;
      x_oval;
      x_upd;
      p_upd;
    }

  type t = {
    sh : shared;
    data_base : Storage.Block.t;
    data_ss : int;
    (* Watermarks: base log bytes [0, base_ok) are durable and equal to
       the future stream; future bytes [0, push_ok) were confirmed by
       folded-in pushes. *)
    mutable base_ok : int;
    mutable push_ok : int;
    (* Redo state over f_recs[0..redone), valid for one master LSN. *)
    mutable redo_valid : bool;
    mutable redo_master : Lsn.t;
    mutable redone : int;
    mutable base_redo_applied : int;
    r_pages : (int, Page.t) Hashtbl.t;
    r_parities : (int, int) Hashtbl.t;
    r_seen : (int, unit) Hashtbl.t;  (* candidate ids already probed *)
    r_counts : (int, int) Hashtbl.t;  (* id -> redo applications on it *)
    pending_invalid : (int, unit) Hashtbl.t;
    mutable rebuild_count : int;
  }

  let create sh ~data_base =
    {
      sh;
      data_base;
      data_ss = (Storage.Block.info data_base).Storage.Block.sector_size;
      base_ok = 0;
      push_ok = 0;
      redo_valid = false;
      redo_master = Lsn.zero;
      redone = 0;
      base_redo_applied = 0;
      r_pages = Hashtbl.create 64;
      r_parities = Hashtbl.create 64;
      r_seen = Hashtbl.create 64;
      r_counts = Hashtbl.create 64;
      pending_invalid = Hashtbl.create 16;
      rebuild_count = 0;
    }

  let rebuilds t = t.rebuild_count

  (* A cursor snapshot for the fork-based sweep: deep-copy every
     mutable table so the fork and the advancing original never alias.
     Cached pages are themselves mutable (redo patches [values] and
     [page_lsn] in place), so each gets a fresh record with its own
     value table. [sh] is immutable and stays shared; [data_base] is
     the fork's own frozen view of the media snapshot. *)
  let fork t ~data_base =
    let pages = Hashtbl.create (max 16 (Hashtbl.length t.r_pages)) in
    Hashtbl.iter
      (fun id p ->
        Hashtbl.replace pages id
          { p with Page.values = Hashtbl.copy p.Page.values })
      t.r_pages;
    {
      t with
      data_base;
      r_pages = pages;
      r_parities = Hashtbl.copy t.r_parities;
      r_seen = Hashtbl.copy t.r_seen;
      r_counts = Hashtbl.copy t.r_counts;
      pending_invalid = Hashtbl.copy t.pending_invalid;
    }


  (* First index where [data] differs from the future stream at [off]
     (bytes past the stream's end differ by definition); [len] if none. *)
  let first_diff sh ~off data ~len =
    let lim = if off >= sh.f_len then 0 else min len (sh.f_len - off) in
    let s = sh.f_str in
    let i = ref 0 in
    while
      !i + 8 <= lim
      && Int64.equal (String.get_int64_ne data !i)
           (String.get_int64_ne s (off + !i))
    do
      i := !i + 8
    done;
    while !i < lim && String.unsafe_get data !i = String.unsafe_get s (off + !i)
    do
      incr i
    done;
    !i

  let note_push t ~lba ~data =
    let start = t.sh.s_wal.Wal.log_start_lba in
    assert (lba >= start);
    let off = (lba - start) * t.sh.s_ss in
    let len = String.length data in
    if off <= t.push_ok then begin
      let fd = first_diff t.sh ~off data ~len in
      if fd = len then t.push_ok <- max t.push_ok (off + len)
      else
        (* [off <= push_ok]: bytes [off, off+fd) match and are contiguous
           with the confirmed prefix; bytes beyond were just overwritten
           with diverging content. Both cases land on [off + fd]. *)
        t.push_ok <- off + fd
    end
  (* A push beyond the confirmed prefix (the WAL appends contiguously,
     so this does not arise) simply fails to extend the watermark. *)

  let note_log_write t ~lba ~data =
    let start = t.sh.s_wal.Wal.log_start_lba in
    let len = String.length data in
    if lba >= start then begin
      let off = (lba - start) * t.sh.s_ss in
      if off <= t.base_ok then begin
        let fd = first_diff t.sh ~off data ~len in
        if fd = len then t.base_ok <- max t.base_ok (off + len)
        else t.base_ok <- off + fd
      end
    end
    else
      (* A master-block write: below the stream, never straddling it. *)
      assert (lba + (len / t.sh.s_ss) <= start)

  (* Page ids whose slot pairs intersect [lba, lba + sectors) of the
     data volume. *)
  let iter_range_ids t ~lba ~sectors f =
    if sectors > 0 then begin
      let pool = t.sh.s_pool in
      let sectors_per_page = pool.Buffer_pool.page_bytes / t.data_ss in
      let pair = Buffer_pool.slot_count * sectors_per_page in
      let rel_lo = lba - pool.Buffer_pool.data_start_lba in
      let rel_hi = rel_lo + sectors - 1 in
      if rel_hi >= 0 then
        for id = max 0 rel_lo / pair to rel_hi / pair do
          f id
        done
    end

  let note_data_write t ~lba ~sectors =
    iter_range_ids t ~lba ~sectors (fun id ->
        if Hashtbl.mem t.r_seen id then begin
          Hashtbl.remove t.r_seen id;
          Hashtbl.remove t.r_pages id;
          Hashtbl.remove t.r_parities id;
          (match Hashtbl.find_opt t.r_counts id with
          | Some c ->
              t.base_redo_applied <- t.base_redo_applied - c;
              Hashtbl.remove t.r_counts id
          | None -> ());
          Hashtbl.replace t.pending_invalid id ()
        end)

  let find_or_create pages id =
    match Hashtbl.find_opt pages id with
    | Some page -> page
    | None ->
        let page = Page.create ~id in
        Hashtbl.replace pages id page;
        page

  (* Re-apply page [id]'s history below position [bound] onto [pages],
     returning the application count. Identical per-page effect to the
     in-order global redo pass: the LSN guards are page-local. *)
  let replay_page sh ~redo_start ~pages id ~bound =
    match Hashtbl.find_opt sh.p_upd id with
    | None -> 0
    | Some poss ->
        let applied = ref 0 in
        let nn = lower_bound poss (Array.length poss) bound in
        for q = 0 to nn - 1 do
          let i = poss.(q) in
          match sh.f_recs.(i) with
          | Log_record.Update { key; after; _ } ->
              let lsn = Lsn.of_int sh.f_ends.(i) in
              if Lsn.(redo_start < lsn) then begin
                let page = find_or_create pages id in
                if Lsn.(page.Page.page_lsn < lsn) then begin
                  (if String.length after = 0 then begin
                     Hashtbl.remove page.Page.values key;
                     page.Page.page_lsn <- lsn
                   end
                   else Page.set page ~key ~value:after ~lsn);
                  incr applied
                end
              end
          | _ -> assert false
        done;
        !applied

  (* Probe a candidate page's slots on the base volume and catch its
     history up to [bound], once per (probe, invalidation) generation. *)
  let ensure_base_loaded t ~redo_start ~bound id =
    if not (Hashtbl.mem t.r_seen id) then begin
      Hashtbl.replace t.r_seen id ();
      (match load_page_slots ~data_device:t.data_base ~pool_config:t.sh.s_pool id with
      | Some (parity, page) ->
          Hashtbl.replace t.r_pages id page;
          Hashtbl.replace t.r_parities id parity
      | None -> ());
      let applied = replay_page t.sh ~redo_start ~pages:t.r_pages id ~bound in
      if applied > 0 then begin
        Hashtbl.replace t.r_counts id applied;
        t.base_redo_applied <- t.base_redo_applied + applied
      end
    end

  (* Advance the shared redo state through the first [k] records —
     never backwards: a point below the deepest split seen so far
     patches the over-advanced pages on its own copy instead. This
     interleaves candidate-page loads with redo where the sequential
     pass loads everything first — equivalent, because loading reads
     only media, which redo never touches. *)
  let advance_redo t ~redo_start k =
    if not (t.redo_valid && Lsn.equal t.redo_master redo_start) then begin
      Hashtbl.reset t.r_pages;
      Hashtbl.reset t.r_parities;
      Hashtbl.reset t.r_seen;
      Hashtbl.reset t.r_counts;
      Hashtbl.reset t.pending_invalid;
      t.redone <- 0;
      t.base_redo_applied <- 0;
      t.redo_master <- redo_start;
      if t.redo_valid then t.rebuild_count <- t.rebuild_count + 1;
      t.redo_valid <- true
    end;
    let keys_per_page = t.sh.s_pool.Buffer_pool.keys_per_page in
    while t.redone < k do
      let i = t.redone in
      (match t.sh.f_recs.(i) with
      | Log_record.Update { key; after; _ } ->
          let id = Page.page_of_key ~keys_per_page key in
          ensure_base_loaded t ~redo_start ~bound:i id;
          let lsn = Lsn.of_int t.sh.f_ends.(i) in
          if Lsn.(redo_start < lsn) then begin
            let page = find_or_create t.r_pages id in
            if Lsn.(page.Page.page_lsn < lsn) then begin
              (if String.length after = 0 then begin
                 Hashtbl.remove page.Page.values key;
                 page.Page.page_lsn <- lsn
               end
               else Page.set page ~key ~value:after ~lsn);
              t.base_redo_applied <- t.base_redo_applied + 1;
              Hashtbl.replace t.r_counts id
                (1 + Option.value ~default:0 (Hashtbl.find_opt t.r_counts id))
            end
          end
      | Log_record.Begin _ | Log_record.Commit _ | Log_record.Abort _
      | Log_record.Commit_multi _ | Log_record.Abort_multi _
      | Log_record.Checkpoint _ | Log_record.Noop _ ->
          ());
      t.redone <- i + 1
    done;
    (* Re-probe pages whose base image changed under already-repeated
       history. *)
    if Hashtbl.length t.pending_invalid > 0 then begin
      let ids = Hashtbl.fold (fun id () acc -> id :: acc) t.pending_invalid [] in
      Hashtbl.reset t.pending_invalid;
      List.iter
        (fun id ->
          match Hashtbl.find_opt t.sh.p_upd id with
          | Some poss when Array.length poss > 0 && poss.(0) < t.redone ->
              ensure_base_loaded t ~redo_start ~bound:t.redone id
          | Some _ | None -> ())
        ids
    end

  let copy_page page =
    {
      Page.id = page.Page.id;
      values = Hashtbl.copy page.Page.values;
      page_lsn = page.Page.page_lsn;
      rec_lsn = page.Page.rec_lsn;
    }

  let run t ~log_overlay ~data_overlay ~log_device ~data_device =
    let sh = t.sh in
    let start = sh.s_wal.Wal.log_start_lba in
    let ss = sh.s_ss in
    let extent = Storage.Block.durable_extent log_device in
    let stream_len = max 0 ((extent - start) * ss) in
    (* --- Verified stream length: overlay writes shadow the trusted
       base prefix in application order; each contributes the bytes it
       is trusted for (by watermark, or by direct comparison against
       the future stream). The segments stay sorted and disjoint. *)
    let segs = ref [ (0, t.base_ok) ] in
    let shadow_add s e tr =
      let rec cut = function
        | [] -> []
        | (a, b) :: rest ->
            if b <= s then (a, b) :: cut rest
            else if a >= e then (a, b) :: rest
            else begin
              let rest' = cut rest in
              let rest' = if b > e then (e, b) :: rest' else rest' in
              if a < s then (a, s) :: rest' else rest'
            end
      in
      let l = cut !segs in
      let te = s + tr in
      segs :=
        (if te > s then
           let rec ins = function
             | [] -> [ (s, te) ]
             | (a, b) :: rest when a < s -> (a, b) :: ins rest
             | rest -> (s, te) :: rest
           in
           ins l
         else l)
    in
    List.iter
      (fun (lba, data, persisted, push_derived) ->
        if persisted > 0 && lba >= start then begin
          let off = (lba - start) * ss in
          let plen = persisted * ss in
          let tr =
            if push_derived && off + plen <= t.push_ok then plen
            else first_diff sh ~off data ~len:plen
          in
          shadow_add off (off + plen) tr
        end)
      log_overlay;
    let rec trusted_prefix cur = function
      | [] -> cur
      | (a, b) :: rest -> if a > cur then cur else trusted_prefix (max cur b) rest
    in
    let d = min (trusted_prefix 0 !segs) stream_len in
    let m = upper_bound sh.f_ends sh.f_n d in
    (* --- The unverified remainder, decoded from the point's actual
       bytes — picking up exactly where the shared prefix's last record
       ends, as the sequential scan's decode loop would. *)
    let p0 = if m > 0 then sh.f_ends.(m - 1) else 0 in
    let odd_recs, odd_ends =
      if d >= stream_len || stream_len <= p0 then ([||], [||])
      else begin
        let lba0 = start + (p0 / ss) in
        let base_off = (lba0 - start) * ss in
        let raw =
          Storage.Block.durable_read log_device ~lba:lba0 ~sectors:(extent - lba0)
        in
        let entries = ref [] and n = ref 0 and pos = ref (p0 - base_off) in
        let progressing = ref true in
        while !progressing do
          match Log_record.decode raw ~pos:!pos with
          | Some (record, size) ->
              pos := !pos + size;
              entries := (record, base_off + !pos) :: !entries;
              incr n
          | None -> progressing := false
        done;
        let recs = Array.make !n dummy_record and ends = Array.make !n 0 in
        List.iteri
          (fun j (r, e) ->
            recs.(!n - 1 - j) <- r;
            ends.(!n - 1 - j) <- e)
          !entries;
        (recs, ends)
      end
    in
    let n_odd = Array.length odd_recs in
    let durable_records = m + n_odd in
    let durable_end =
      Lsn.of_int
        (if n_odd > 0 then odd_ends.(n_odd - 1)
         else if m > 0 then sh.f_ends.(m - 1)
         else 0)
    in
    let records =
      let l = ref [] in
      for j = n_odd - 1 downto 0 do
        l := (odd_recs.(j), Lsn.of_int odd_ends.(j)) :: !l
      done;
      for i = m - 1 downto 0 do
        l := sh.f_pairs.(i) :: !l
      done;
      !l
    in
    (* --- Classification straight off the transaction index: a txid is
       in scope if it appears below the split or in the odd tail; its
       outcome is the last one below the split, shadowed by any odd
       outcome — exactly the sequential analysis's last-replace-wins. *)
    let keys_per_page = sh.s_pool.Buffer_pool.keys_per_page in
    let t_outcomes = Hashtbl.create 8 in
    let t_seen = Hashtbl.create 8 in
    let t_upd = Hashtbl.create 8 in  (* txid -> odd positions, newest-first *)
    let odd_touched = Hashtbl.create 8 in  (* page ids with odd updates *)
    for j = 0 to n_odd - 1 do
      match odd_recs.(j) with
      | Log_record.Begin { txid } -> Hashtbl.replace t_seen txid ()
      | Log_record.Update { txid; key; _ } ->
          Hashtbl.replace t_seen txid ();
          Hashtbl.replace t_upd txid
            ((m + j) :: Option.value ~default:[] (Hashtbl.find_opt t_upd txid));
          Hashtbl.replace odd_touched (Page.page_of_key ~keys_per_page key) ()
      | Log_record.Commit { txid } ->
          Hashtbl.replace t_seen txid ();
          Hashtbl.replace t_outcomes txid Won
      | Log_record.Abort { txid } ->
          Hashtbl.replace t_seen txid ();
          Hashtbl.replace t_outcomes txid Lost
      | Log_record.Commit_multi { txid; _ } ->
          Hashtbl.replace t_seen txid ();
          Hashtbl.replace t_outcomes txid Won
      | Log_record.Abort_multi { txid; _ } ->
          Hashtbl.replace t_seen txid ();
          Hashtbl.replace t_outcomes txid Lost
      | Log_record.Checkpoint _ | Log_record.Noop _ -> ()
    done;
    let committed = ref [] and aborted = ref [] and losers = ref [] in
    let base_outcome xi =
      if xi < 0 then None
      else begin
        let opos = sh.x_opos.(xi) in
        let j = ref (Array.length opos) in
        while !j > 0 && opos.(!j - 1) >= m do
          decr j
        done;
        if !j = 0 then None else Some sh.x_oval.(xi).(!j - 1)
      end
    in
    let classify txid xi =
      match
        match Hashtbl.find_opt t_outcomes txid with
        | Some _ as odd -> odd
        | None -> base_outcome xi
      with
      | Some Won -> committed := txid :: !committed
      | Some Lost -> aborted := txid :: !aborted
      | None -> losers := txid :: !losers
    in
    if n_odd = 0 then
      (* Descending scan, consing: the lists come out ascending with no
         per-point sort. *)
      for xi = Array.length sh.x_txids - 1 downto 0 do
        if sh.x_first.(xi) < m then classify sh.x_txids.(xi) xi
      done
    else begin
      for xi = Array.length sh.x_txids - 1 downto 0 do
        if sh.x_first.(xi) < m then classify sh.x_txids.(xi) xi
      done;
      Hashtbl.iter
        (fun txid () ->
          let xi = find_txid sh txid in
          if not (xi >= 0 && sh.x_first.(xi) < m) then classify txid xi)
        t_seen;
      committed := List.sort Int.compare !committed;
      aborted := List.sort Int.compare !aborted;
      losers := List.sort Int.compare !losers
    end;
    let committed = !committed and aborted = !aborted and losers = !losers in
    let redo_start =
      match Wal.read_master sh.s_wal ~device:log_device with
      | Some lsn -> lsn
      | None -> Lsn.zero
    in
    advance_redo t ~redo_start m;
    (* --- Point page table: copy the shared pages, then patch at page
       granularity everything the shared state does not describe for
       this point — pages under the point's data overlay, and pages
       redone past this point's split. A patched page reloads from the
       point's device and replays its own positions below the split. *)
    let pages = Hashtbl.create (max 16 (2 * Hashtbl.length t.r_pages)) in
    Hashtbl.iter (fun id page -> Hashtbl.replace pages id (copy_page page)) t.r_pages;
    let parities = Hashtbl.copy t.r_parities in
    let point_redo = ref t.base_redo_applied in
    let affected = Hashtbl.create 8 in
    List.iter
      (fun (lba, sectors) ->
        iter_range_ids t ~lba ~sectors (fun id -> Hashtbl.replace affected id ()))
      data_overlay;
    if t.redone > m then
      for i = m to t.redone - 1 do
        match sh.f_recs.(i) with
        | Log_record.Update { key; _ } ->
            Hashtbl.replace affected (Page.page_of_key ~keys_per_page key) ()
        | _ -> ()
      done;
    Hashtbl.iter
      (fun id () ->
        if Hashtbl.mem t.r_seen id then begin
          Hashtbl.remove pages id;
          Hashtbl.remove parities id;
          (match Hashtbl.find_opt t.r_counts id with
          | Some c -> point_redo := !point_redo - c
          | None -> ());
          let candidate =
            (match Hashtbl.find_opt sh.p_upd id with
            | Some poss -> Array.length poss > 0 && poss.(0) < m
            | None -> false)
            || Hashtbl.mem odd_touched id
          in
          if candidate then begin
            (match load_page_slots ~data_device ~pool_config:sh.s_pool id with
            | Some (parity, page) ->
                Hashtbl.replace pages id page;
                Hashtbl.replace parities id parity
            | None -> ());
            point_redo := !point_redo + replay_page sh ~redo_start ~pages id ~bound:m
          end
        end)
      affected;
    let point_seen = Hashtbl.create 8 in
    (* An odd candidate the base cache never probed loads from the
       point device — the sequential pass probes every candidate before
       redo, and probing reads only media, so the order is immaterial. *)
    let ensure_point_loaded id =
      if not (Hashtbl.mem t.r_seen id || Hashtbl.mem point_seen id) then begin
        Hashtbl.replace point_seen id ();
        match load_page_slots ~data_device ~pool_config:sh.s_pool id with
        | Some (parity, page) ->
            Hashtbl.replace pages id page;
            Hashtbl.replace parities id parity
        | None -> ()
      end
    in
    let page_of_key key = find_or_create pages (Page.page_of_key ~keys_per_page key) in
    for j = 0 to n_odd - 1 do
      match odd_recs.(j) with
      | Log_record.Update { key; after; _ } ->
          ensure_point_loaded (Page.page_of_key ~keys_per_page key);
          let lsn = Lsn.of_int odd_ends.(j) in
          if Lsn.(redo_start < lsn) then begin
            let page = page_of_key key in
            if Lsn.(page.Page.page_lsn < lsn) then begin
              (if String.length after = 0 then begin
                 Hashtbl.remove page.Page.values key;
                 page.Page.page_lsn <- lsn
               end
               else Page.set page ~key ~value:after ~lsn);
              incr point_redo
            end
          end
      | Log_record.Begin _ | Log_record.Commit _ | Log_record.Abort _
      | Log_record.Commit_multi _ | Log_record.Abort_multi _
      | Log_record.Checkpoint _ | Log_record.Noop _ ->
          ()
    done;
    (* --- Undo the losers newest-first across both parts, positions
       straight from the per-transaction index. *)
    let positions = ref [] in
    List.iter
      (fun txid ->
        (match find_txid sh txid with
        | -1 -> ()
        | xi ->
            let arr = sh.x_upd.(xi) in
            let nn = lower_bound arr (Array.length arr) m in
            for q = 0 to nn - 1 do
              positions := arr.(q) :: !positions
            done);
        match Hashtbl.find_opt t_upd txid with
        | Some l -> positions := List.rev_append l !positions
        | None -> ())
      losers;
    let positions = List.sort (fun a b -> Int.compare b a) !positions in
    let undo_applied = ref 0 in
    List.iter
      (fun i ->
        match (if i < m then sh.f_recs.(i) else odd_recs.(i - m)) with
        | Log_record.Update { key; before; _ } ->
            let page = page_of_key key in
            if String.length before = 0 then Hashtbl.remove page.Page.values key
            else Hashtbl.replace page.Page.values key before;
            incr undo_applied
        | _ -> assert false)
      positions;
    let store = Hashtbl.create 1024 in
    Hashtbl.iter
      (fun _id page ->
        Hashtbl.iter (fun key value -> Hashtbl.replace store key value) page.Page.values)
      pages;
    note_metrics
      {
        store;
        records;
        parities;
        committed;
        aborted;
        losers;
        durable_records;
        durable_end;
        redo_start;
        redo_applied = !point_redo;
        undo_applied = !undo_applied;
        pages_loaded = Hashtbl.length pages;
      }
end
