open Desim

let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

let make rng ~tag ~len =
  assert (len >= 1);
  let buf = Bytes.make len '.' in
  let tag_len = min (String.length tag) len in
  Bytes.blit_string tag 0 buf 0 tag_len;
  for i = tag_len to len - 1 do
    Bytes.set buf i alphabet.[Rng.int rng (String.length alphabet)]
  done;
  Bytes.unsafe_to_string buf
