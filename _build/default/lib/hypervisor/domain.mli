(** Protection domains.

    The property the paper buys from seL4's formal verification is fault
    containment: the trusted logger lives in its own protection domain, so
    no failure of the guest (the DBMS and its whole OS) can corrupt it. We
    model a domain as a named set of processes with a fault flag; crashing
    a domain cancels exactly its own processes and nothing else. Tests
    exercise the containment property directly. *)

type kind = Trusted | Guest

type t

val create : Desim.Sim.t -> name:string -> kind:kind -> t
val name : t -> string
val kind : t -> kind

val spawn : t -> ?name:string -> (unit -> unit) -> Desim.Process.handle
(** Spawn a process owned by this domain. Spawning in a faulted domain is
    a no-op returning a dead handle. *)

val crash : t -> unit
(** Fault the domain: every owned process is cancelled and future spawns
    are refused. Idempotent. *)

val is_faulted : t -> bool

val live_processes : t -> int
(** Owned processes that have neither finished nor been cancelled. *)
