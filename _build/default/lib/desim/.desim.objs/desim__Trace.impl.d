lib/desim/trace.ml: Format List Queue Sim Time
