open Desim

type schedule = {
  period : Time.span;
  active_fraction : float;
  staggered : bool;
}

let default = { period = Time.ms 500; active_fraction = 0.5; staggered = true }

let validate { period; active_fraction; staggered = _ } =
  if Time.compare_span period Time.zero_span <= 0 then
    Error "churn period must be > 0"
  else if active_fraction <= 0.0 || active_fraction > 1.0 then
    Error "churn active fraction must be in (0, 1]"
  else Ok ()

(* All schedule arithmetic is exact integer nanoseconds: client [i]'s
   cycle is the global period shifted by [i * period / clients] (when
   staggered), and the client is joined for the first
   [active_fraction * period] of each of its cycles. Pure in
   (schedule, clients, client, now) — no rng, so replays and the crash
   sweep see identical join/leave instants. *)
let phase_ns schedule ~clients ~client ~now =
  let period = Time.span_to_ns schedule.period in
  let offset =
    if schedule.staggered && clients > 0 then client * period / clients else 0
  in
  let t = Time.span_to_ns now + offset in
  (t mod period, period)

let active_ns schedule period =
  let on = int_of_float (Float.round (schedule.active_fraction *. float_of_int period)) in
  max 1 (min period on)

let active schedule ~clients ~client ~now =
  let phase, period = phase_ns schedule ~clients ~client ~now in
  phase < active_ns schedule period

let until_change schedule ~clients ~client ~now =
  let phase, period = phase_ns schedule ~clients ~client ~now in
  let on = active_ns schedule period in
  let gap = if phase < on then on - phase else period - phase in
  Time.ns (max 1 gap)
