open Desim

type latency =
  | Constant of Time.span
  | Uniform of Time.span * Time.span
  | Exponential of Time.span

type config = {
  latency : latency;
  bandwidth : float;
  drop_probability : float;
}

let default =
  { latency = Constant (Time.us 25); bandwidth = 1.25e9; drop_probability = 0. }

(* Latency kinds pre-resolved to ints/floats so sampling never touches
   the constructor. *)
let k_constant = 0
let k_uniform = 1
let k_exponential = 2

type 'a t = {
  sim : Sim.t;
  trace_name : string;
  rng : Rng.t;
  deliver : 'a -> unit;
  dummy : 'a;
  lat_kind : int;
  lat_a : int;  (* constant ns | uniform lo ns *)
  lat_b : int;  (* uniform width ns (>= 0) *)
  lat_mean : float;  (* exponential mean, ns *)
  ns_per_byte : float;  (* 0. = unlimited bandwidth *)
  drop_probability : float;
  (* FIFO wire queue over parallel ring arrays: [payloads.(i)] becomes
     deliverable at [ready_ns.(i)]; [sent_ns.(i)] stamps the send for
     the delay histogram. Capacity is a power of two ([mask]). *)
  mutable payloads : 'a array;
  mutable ready_ns : int array;
  mutable sent_ns : int array;
  mutable mask : int;
  mutable head : int;
  mutable count : int;
  (* Serialisation cursor: the wire is busy until here. *)
  mutable tx_end_ns : int;
  (* FIFO floor: no message may become ready before the previous one. *)
  mutable last_ready_ns : int;
  (* At most one pump event is outstanding, at this instant (-1: none).
     last_ready_ns is monotone, so one event always suffices. *)
  mutable pump_at_ns : int;
  mutable pump : unit -> unit;
  mutable is_partitioned : bool;
  mutable severed : bool;
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
  m_delay : Metrics.Histogram.t option;
}

let initial_capacity = 64

let sample_latency_ns t =
  if t.lat_kind = k_constant then t.lat_a
  else if t.lat_kind = k_uniform then
    if t.lat_b = 0 then t.lat_a else t.lat_a + Rng.int t.rng t.lat_b
  else
    int_of_float (Rng.exponential t.rng ~mean:t.lat_mean)

let grow t =
  let old_cap = t.mask + 1 in
  let cap = old_cap * 2 in
  let payloads = Array.make cap t.dummy in
  let ready_ns = Array.make cap 0 in
  let sent_ns = Array.make cap 0 in
  for i = 0 to t.count - 1 do
    let j = (t.head + i) land t.mask in
    payloads.(i) <- t.payloads.(j);
    ready_ns.(i) <- t.ready_ns.(j);
    sent_ns.(i) <- t.sent_ns.(j)
  done;
  t.payloads <- payloads;
  t.ready_ns <- ready_ns;
  t.sent_ns <- sent_ns;
  t.mask <- cap - 1;
  t.head <- 0

let schedule_pump t at_ns =
  if t.pump_at_ns < 0 then begin
    let now_ns = Time.to_ns (Sim.now t.sim) in
    let at_ns = if at_ns < now_ns then now_ns else at_ns in
    t.pump_at_ns <- at_ns;
    Sim.schedule_at t.sim (Time.of_ns at_ns) t.pump
  end

(* Deliver everything whose ready time has passed, in queue order, then
   re-arm for the head of what remains. Runs as a plain event; [deliver]
   must not block. *)
let pump_now t =
  t.pump_at_ns <- -1;
  if not (t.is_partitioned || t.severed) then begin
    let now_ns = Time.to_ns (Sim.now t.sim) in
    let continue = ref true in
    while !continue && t.count > 0 do
      let h = t.head in
      if t.ready_ns.(h) <= now_ns then begin
        let payload = t.payloads.(h) in
        t.payloads.(h) <- t.dummy;
        t.head <- (h + 1) land t.mask;
        t.count <- t.count - 1;
        t.n_delivered <- t.n_delivered + 1;
        (match t.m_delay with
        | Some hist ->
            Metrics.Histogram.observe hist
              (float_of_int (now_ns - t.sent_ns.(h)) /. 1_000.)
        | None -> ());
        t.deliver payload
      end
      else continue := false
    done;
    if t.count > 0 then schedule_pump t t.ready_ns.(t.head)
  end

let create sim ?(name = "link") config ~dummy ~deliver =
  (match config.latency with
  | Constant d -> assert (Time.compare_span d Time.zero_span >= 0)
  | Uniform (lo, hi) ->
      assert (Time.compare_span lo Time.zero_span >= 0);
      assert (Time.compare_span lo hi <= 0)
  | Exponential mean -> assert (Time.compare_span mean Time.zero_span > 0));
  assert (config.drop_probability >= 0. && config.drop_probability <= 1.);
  assert (config.bandwidth >= 0.);
  let t =
    {
      sim;
      trace_name = name;
      rng = Rng.split (Sim.rng sim);
      deliver;
      dummy;
      lat_kind =
        (match config.latency with
        | Constant _ -> k_constant
        | Uniform _ -> k_uniform
        | Exponential _ -> k_exponential);
      lat_a =
        (match config.latency with
        | Constant d | Uniform (d, _) -> Time.span_to_ns d
        | Exponential _ -> 0);
      lat_b =
        (match config.latency with
        | Uniform (lo, hi) -> Time.span_to_ns hi - Time.span_to_ns lo
        | Constant _ | Exponential _ -> 0);
      lat_mean =
        (match config.latency with
        | Exponential mean -> float_of_int (Time.span_to_ns mean)
        | Constant _ | Uniform _ -> 0.);
      ns_per_byte =
        (if config.bandwidth = 0. || config.bandwidth = infinity then 0.
         else 1e9 /. config.bandwidth);
      drop_probability = config.drop_probability;
      payloads = Array.make initial_capacity dummy;
      ready_ns = Array.make initial_capacity 0;
      sent_ns = Array.make initial_capacity 0;
      mask = initial_capacity - 1;
      head = 0;
      count = 0;
      tx_end_ns = 0;
      last_ready_ns = 0;
      pump_at_ns = -1;
      pump = (fun () -> ());
      is_partitioned = false;
      severed = false;
      n_sent = 0;
      n_delivered = 0;
      n_dropped = 0;
      m_delay =
        Option.map
          (fun reg -> Metrics.histogram reg "net.link_delay")
          (Metrics.recording ());
    }
  in
  t.pump <- (fun () -> pump_now t);
  t

let send t ?(bytes = 0) payload =
  if t.severed then t.n_dropped <- t.n_dropped + 1
  else begin
    t.n_sent <- t.n_sent + 1;
    if t.drop_probability > 0. && Rng.float t.rng < t.drop_probability then
      t.n_dropped <- t.n_dropped + 1
    else begin
      let now_ns = Time.to_ns (Sim.now t.sim) in
      (* Serialisation: the wire transmits one message at a time. *)
      let tx_start = if t.tx_end_ns > now_ns then t.tx_end_ns else now_ns in
      let tx_ns =
        if t.ns_per_byte = 0. || bytes <= 0 then 0
        else int_of_float (t.ns_per_byte *. float_of_int bytes)
      in
      t.tx_end_ns <- tx_start + tx_ns;
      let arrive_ns = t.tx_end_ns + sample_latency_ns t in
      (* FIFO clamp: never overtake the previous message on this link. *)
      let ready = if arrive_ns > t.last_ready_ns then arrive_ns else t.last_ready_ns in
      t.last_ready_ns <- ready;
      if t.count > t.mask then grow t;
      let slot = (t.head + t.count) land t.mask in
      t.payloads.(slot) <- payload;
      t.ready_ns.(slot) <- ready;
      t.sent_ns.(slot) <- now_ns;
      t.count <- t.count + 1;
      if not (t.is_partitioned || t.severed) then schedule_pump t ready
    end
  end

let partition t = t.is_partitioned <- true

let heal t =
  if t.is_partitioned then begin
    t.is_partitioned <- false;
    (* Flush any backlog whose delivery times already passed. *)
    if t.count > 0 then schedule_pump t t.ready_ns.(t.head)
  end

let partitioned t = t.is_partitioned

let sever t =
  if not t.severed then begin
    t.severed <- true;
    (* Loss wins over partition: a dead peer has no held backlog waiting
       for a heal, so the partition state is dropped with the queue. A
       heal scheduled before the loss was known finds nothing to flush
       and [partitioned] reports false from here on. *)
    t.is_partitioned <- false;
    t.n_dropped <- t.n_dropped + t.count;
    (* Release payload references for the collector. *)
    for i = 0 to t.count - 1 do
      t.payloads.((t.head + i) land t.mask) <- t.dummy
    done;
    t.count <- 0
  end

let name t = t.trace_name
let sent t = t.n_sent
let delivered t = t.n_delivered
let dropped t = t.n_dropped
let in_flight t = t.count
