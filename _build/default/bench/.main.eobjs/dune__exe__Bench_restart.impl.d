bench/bench_restart.ml: Audit Bench_support Dbms Desim Harness Hashtbl Hypervisor List Printf Process Rapilog Report Sim Storage Time Workload
