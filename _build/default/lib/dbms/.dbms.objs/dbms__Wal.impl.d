lib/dbms/wal.ml: Buffer Bytes Crc32 Desim Int64 Log_record Lsn Resource Stats Storage String
