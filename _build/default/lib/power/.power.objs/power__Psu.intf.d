lib/power/psu.mli: Desim
