(* Tests for the database engine substrate: log records, WAL, locks,
   buffer pool, checkpointing, and crash recovery. *)

open Desim
open Testu
open Dbms

(* -- Crc32 ------------------------------------------------------------- *)

let crc32_known_vector () =
  (* The classic check value for CRC-32/ISO-HDLC. *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Crc32.digest_string "123456789")

let crc32_empty () = Alcotest.(check int32) "empty" 0l (Crc32.digest_string "")

let crc32_slice_consistency () =
  let s = "hello, durable world" in
  Alcotest.(check int32) "slice = sub"
    (Crc32.digest s ~pos:7 ~len:7)
    (Crc32.digest_string (String.sub s 7 7))

let crc32_detects_bitflip () =
  let a = Crc32.digest_string "log record payload" in
  let b = Crc32.digest_string "log recOrd payload" in
  Alcotest.(check bool) "differs" true (a <> b)

(* -- Lsn ---------------------------------------------------------------- *)

let lsn_ops () =
  let l = Lsn.of_int 100 in
  Alcotest.(check int) "add" 164 (Lsn.to_int (Lsn.add l 64));
  Alcotest.(check bool) "lt" true Lsn.(Lsn.zero < l);
  Alcotest.(check bool) "le self" true Lsn.(l <= l);
  Alcotest.(check int) "max" 100 (Lsn.to_int (Lsn.max l (Lsn.of_int 50)));
  Alcotest.(check int) "min" 50 (Lsn.to_int (Lsn.min l (Lsn.of_int 50)))

(* -- Log_record ---------------------------------------------------------- *)

let all_record_kinds =
  [
    Log_record.Begin { txid = 7 };
    Log_record.Update { txid = 7; key = 42; before = "old"; after = "new-value" };
    Log_record.Update { txid = 8; key = 0; before = ""; after = "first-touch" };
    Log_record.Commit { txid = 7 };
    Log_record.Abort { txid = 9 };
    Log_record.Checkpoint { redo_lsn = Lsn.of_int 12345 };
    Log_record.Noop { filler = 100 };
  ]

let record_roundtrip_all_kinds () =
  List.iter
    (fun record ->
      let encoded = Log_record.encode record in
      Alcotest.(check int) "size matches" (Log_record.encoded_size record)
        (String.length encoded);
      match Log_record.decode encoded ~pos:0 with
      | Some (decoded, size) ->
          Alcotest.(check int) "consumed all" (String.length encoded) size;
          if decoded <> record then
            Alcotest.failf "roundtrip mismatch for %s"
              (Format.asprintf "%a" Log_record.pp record)
      | None -> Alcotest.failf "failed to decode %s" (Format.asprintf "%a" Log_record.pp record))
    all_record_kinds

let record_roundtrip_prop =
  prop "update records roundtrip for arbitrary payloads"
    QCheck2.Gen.(
      quad (int_range 0 1_000_000) (int_range 0 1_000_000)
        (string_size (int_range 0 300))
        (string_size (int_range 0 300)))
    (fun (txid, key, before, after) ->
      let record = Log_record.Update { txid; key; before; after } in
      match Log_record.decode (Log_record.encode record) ~pos:0 with
      | Some (decoded, _) -> decoded = record
      | None -> false)

let record_decode_bad_magic () =
  let encoded = Bytes.of_string (Log_record.encode (Log_record.Commit { txid = 1 })) in
  Bytes.set encoded 0 '\255';
  Alcotest.(check bool) "rejected" true
    (Log_record.decode (Bytes.to_string encoded) ~pos:0 = None)

let record_decode_corrupt_body () =
  let encoded =
    Bytes.of_string
      (Log_record.encode (Log_record.Update { txid = 1; key = 2; before = "aa"; after = "bb" }))
  in
  Bytes.set encoded (Bytes.length encoded - 1) 'Z';
  Alcotest.(check bool) "crc catches corruption" true
    (Log_record.decode (Bytes.to_string encoded) ~pos:0 = None)

let record_decode_truncated () =
  let encoded = Log_record.encode (Log_record.Commit { txid = 1 }) in
  let truncated = String.sub encoded 0 (String.length encoded - 3) in
  Alcotest.(check bool) "truncation rejected" true
    (Log_record.decode truncated ~pos:0 = None)

let record_decode_at_offset () =
  let a = Log_record.encode (Log_record.Begin { txid = 1 }) in
  let b = Log_record.encode (Log_record.Commit { txid = 1 }) in
  match Log_record.decode (a ^ b) ~pos:(String.length a) with
  | Some (Log_record.Commit { txid }, _) -> Alcotest.(check int) "second record" 1 txid
  | Some _ | None -> Alcotest.fail "expected the commit record"

let stream_stops_at_torn_tail () =
  let buf = Buffer.create 256 in
  List.iter (fun r -> Log_record.encode_into r buf) all_record_kinds;
  let whole = Buffer.contents buf in
  (* Tear the last record. *)
  let torn = String.sub whole 0 (String.length whole - 5) in
  let records = Log_record.decode_stream torn in
  Alcotest.(check int) "all but the torn one"
    (List.length all_record_kinds - 1)
    (List.length records);
  (* End LSNs are cumulative sizes. *)
  let expected_end =
    List.fold_left (fun acc r -> acc + Log_record.encoded_size r) 0
      (List.filteri (fun i _ -> i < List.length all_record_kinds - 1) all_record_kinds)
  in
  match List.rev records with
  | (_, lsn) :: _ -> Alcotest.(check int) "end lsn" expected_end (Lsn.to_int lsn)
  | [] -> Alcotest.fail "no records"

let stream_stops_at_zeros () =
  let good = Log_record.encode (Log_record.Commit { txid = 3 }) in
  let padded = good ^ String.make 512 '\000' in
  Alcotest.(check int) "zero padding is end of log" 1
    (List.length (Log_record.decode_stream padded))

let record_oversized_rejected () =
  (* A header claiming a body longer than max_body must be rejected. *)
  let buf = Bytes.make 32 '\000' in
  Bytes.set_uint16_le buf 0 0xA55A;
  Bytes.set_uint8 buf 2 6;
  Bytes.set_int32_le buf 3 (Int32.of_int (Log_record.max_body + 1));
  Alcotest.(check bool) "rejected" true
    (Log_record.decode (Bytes.to_string buf) ~pos:0 = None)

(* -- Page ----------------------------------------------------------------- *)

let page_roundtrip () =
  let page = Page.create ~id:3 in
  Page.set page ~key:48 ~value:"hello" ~lsn:(Lsn.of_int 10);
  Page.set page ~key:49 ~value:"world" ~lsn:(Lsn.of_int 20);
  let image = Page.serialize page ~page_bytes:8192 in
  Alcotest.(check int) "image padded to page size" 8192 (String.length image);
  match Page.deserialize image with
  | Some decoded ->
      Alcotest.(check int) "id" 3 decoded.Page.id;
      Alcotest.(check int) "page_lsn" 20 (Lsn.to_int decoded.Page.page_lsn);
      Alcotest.(check (option string)) "value" (Some "hello") (Page.get decoded ~key:48);
      Alcotest.(check bool) "clean after load" false (Page.is_dirty decoded)
  | None -> Alcotest.fail "deserialize failed"

let page_roundtrip_prop =
  prop "pages roundtrip arbitrary contents"
    QCheck2.Gen.(
      list_size (int_range 0 16)
        (pair (int_range 0 1000) (string_size (int_range 1 100))))
    (fun entries ->
      let page = Page.create ~id:1 in
      List.iter
        (fun (key, value) -> Page.set page ~key ~value ~lsn:(Lsn.of_int 5))
        entries;
      match Page.deserialize (Page.serialize page ~page_bytes:8192) with
      | Some decoded ->
          List.for_all
            (fun (key, _) -> Page.get decoded ~key = Page.get page ~key)
            entries
      | None -> false)

let page_torn_image_rejected () =
  let page = Page.create ~id:1 in
  Page.set page ~key:5 ~value:"payload" ~lsn:(Lsn.of_int 1);
  let image = Bytes.of_string (Page.serialize page ~page_bytes:8192) in
  Bytes.set image 40 'X';
  Alcotest.(check bool) "crc rejects" true (Page.deserialize (Bytes.to_string image) = None)

let page_unwritten_rejected () =
  Alcotest.(check bool) "zeros are not a page" true
    (Page.deserialize (String.make 8192 '\000') = None)

let page_key_mapping () =
  Alcotest.(check int) "key 0" 0 (Page.page_of_key ~keys_per_page:16 0);
  Alcotest.(check int) "key 15" 0 (Page.page_of_key ~keys_per_page:16 15);
  Alcotest.(check int) "key 16" 1 (Page.page_of_key ~keys_per_page:16 16);
  Alcotest.(check (pair int int)) "range of page 2" (32, 48)
    (Page.keys_of_page ~keys_per_page:16 2)

let page_overflow_raises () =
  let page = Page.create ~id:1 in
  for key = 0 to 15 do
    Page.set page ~key ~value:(String.make 700 'x') ~lsn:(Lsn.of_int 1)
  done;
  Alcotest.check_raises "too big"
    (Invalid_argument "Page.serialize: contents exceed page size") (fun () ->
      ignore (Page.serialize page ~page_bytes:8192))

(* -- Wal -------------------------------------------------------------------- *)

let ssd_wal sim =
  let dev = Storage.Ssd.create sim Storage.Ssd.default in
  (Wal.create sim Wal.default_config ~device:dev, dev)

let wal_append_then_force_durable () =
  run_in_sim (fun sim ->
      let wal, dev = ssd_wal sim in
      let lsn = Wal.append wal (Log_record.Begin { txid = 1 }) in
      Alcotest.(check int) "nothing durable yet" 0 (Lsn.to_int (Wal.flushed_lsn wal));
      Wal.force wal lsn;
      Alcotest.(check bool) "flushed to the append point" true
        Lsn.(lsn <= Wal.flushed_lsn wal);
      let raw = Recovery.read_durable_log ~log_device:dev ~wal_config:Wal.default_config in
      match Log_record.decode_stream raw with
      | [ (Log_record.Begin { txid }, _) ] -> Alcotest.(check int) "on media" 1 txid
      | records -> Alcotest.failf "unexpected records: %d" (List.length records))

let wal_force_is_idempotent () =
  run_in_sim (fun sim ->
      let wal, dev = ssd_wal sim in
      let lsn = Wal.append wal (Log_record.Commit { txid = 1 }) in
      Wal.force wal lsn;
      Wal.force wal lsn;
      Wal.force wal Lsn.zero;
      Alcotest.(check int) "exactly one device write" 1
        (Storage.Disk_stats.writes (Storage.Block.stats dev)))

let wal_partial_sector_rewrite () =
  run_in_sim (fun sim ->
      let wal, dev = ssd_wal sim in
      (* Two forces that share a sector: the second must rewrite the
         partial tail, and the decoded stream must contain both. *)
      let l1 = Wal.append wal (Log_record.Begin { txid = 1 }) in
      Wal.force wal l1;
      let l2 = Wal.append wal (Log_record.Commit { txid = 1 }) in
      Wal.force wal l2;
      let raw = Recovery.read_durable_log ~log_device:dev ~wal_config:Wal.default_config in
      match Log_record.decode_stream raw with
      | [ (Log_record.Begin _, _); (Log_record.Commit _, e2) ] ->
          Alcotest.(check int) "stream complete" (Lsn.to_int l2) (Lsn.to_int e2)
      | records -> Alcotest.failf "got %d records" (List.length records))

let wal_group_commit_batches () =
  let sim = Sim.create () in
  (* Use a slow disk so that concurrent committers pile up behind the
     first force. *)
  let dev = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let wal = Wal.create sim Wal.default_config ~device:dev in
  let committers = 8 in
  let done_count = ref 0 in
  for i = 1 to committers do
    ignore
      (Process.spawn sim (fun () ->
           let lsn = Wal.append wal (Log_record.Commit { txid = i }) in
           Wal.force wal lsn;
           incr done_count))
  done;
  Sim.run sim;
  Alcotest.(check int) "all committed" committers !done_count;
  Alcotest.(check bool)
    (Printf.sprintf "fewer forces than committers (%d)" (Wal.forces wal))
    true
    (Wal.forces wal < committers)

let wal_master_block_roundtrip () =
  run_in_sim (fun sim ->
      let wal, dev = ssd_wal sim in
      Wal.write_master wal (Lsn.of_int 9876);
      Alcotest.(check (option int)) "read back" (Some 9876)
        (Option.map Lsn.to_int (Wal.read_master Wal.default_config ~device:dev)))

let wal_master_absent () =
  run_in_sim (fun sim ->
      let _, dev = ssd_wal sim in
      Alcotest.(check bool) "no master yet" true
        (Wal.read_master Wal.default_config ~device:dev = None))

let wal_master_corrupt () =
  run_in_sim (fun sim ->
      let wal, dev = ssd_wal sim in
      Wal.write_master wal (Lsn.of_int 1);
      (* Overwrite the master sector with garbage. *)
      Storage.Block.write dev ~lba:Wal.default_config.Wal.master_lba
        (String.make 512 'g');
      Alcotest.(check bool) "rejected" true
        (Wal.read_master Wal.default_config ~device:dev = None))

let wal_force_bytes_recorded () =
  run_in_sim (fun sim ->
      let wal, _ = ssd_wal sim in
      let lsn = Wal.append wal (Log_record.Noop { filler = 2000 }) in
      Wal.force wal lsn;
      Alcotest.(check int) "one batch" 1 (Stats.Sample.count (Wal.force_bytes wal));
      check_near "sector-rounded size" 2048. (Stats.Sample.mean (Wal.force_bytes wal)))

(* -- Lock_table --------------------------------------------------------------- *)

let locks_exclusive_and_fifo () =
  let sim = Sim.create () in
  let locks = Lock_table.create sim in
  let order = ref [] in
  let contender txid delay () =
    Process.sleep delay;
    Lock_table.lock locks ~txid ~key:1;
    order := txid :: !order;
    Process.sleep (Time.ms 2);
    Lock_table.unlock locks ~txid ~key:1
  in
  ignore (Process.spawn sim (contender 1 Time.zero_span));
  ignore (Process.spawn sim (contender 2 (Time.us 10)));
  ignore (Process.spawn sim (contender 3 (Time.us 20)));
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO grants" [ 1; 2; 3 ] (List.rev !order)

let locks_reentrant () =
  run_in_sim (fun sim ->
      let locks = Lock_table.create sim in
      Lock_table.lock locks ~txid:1 ~key:5;
      Lock_table.lock locks ~txid:1 ~key:5;
      Alcotest.(check (option int)) "owner" (Some 1) (Lock_table.owner locks ~key:5))

let locks_try_lock () =
  run_in_sim (fun sim ->
      let locks = Lock_table.create sim in
      Alcotest.(check bool) "free" true (Lock_table.try_lock locks ~txid:1 ~key:2);
      Alcotest.(check bool) "held by other" false (Lock_table.try_lock locks ~txid:2 ~key:2);
      Alcotest.(check bool) "reentrant" true (Lock_table.try_lock locks ~txid:1 ~key:2))

let locks_unlock_all () =
  run_in_sim (fun sim ->
      let locks = Lock_table.create sim in
      List.iter (fun key -> Lock_table.lock locks ~txid:1 ~key) [ 1; 2; 3 ];
      Alcotest.(check int) "held" 3 (Lock_table.locked_count locks);
      Lock_table.unlock_all locks ~txid:1 ~keys:[ 1; 2; 3 ];
      Alcotest.(check int) "released" 0 (Lock_table.locked_count locks))

(* -- Txn ------------------------------------------------------------------------ *)

let txn_manager_lifecycle () =
  let mgr = Txn.Manager.create () in
  let t1 = Txn.Manager.begin_txn mgr in
  let t2 = Txn.Manager.begin_txn mgr in
  Alcotest.(check int) "ids increase" (Txn.txid t1 + 1) (Txn.txid t2);
  Alcotest.(check int) "active" 2 (Txn.Manager.active_count mgr);
  Txn.Manager.finish mgr t1 Txn.Committed;
  Txn.Manager.finish mgr t2 Txn.Aborted;
  Alcotest.(check int) "none active" 0 (Txn.Manager.active_count mgr);
  Alcotest.(check int) "committed" 1 (Txn.Manager.committed mgr);
  Alcotest.(check int) "aborted" 1 (Txn.Manager.aborted mgr);
  Alcotest.(check int) "started" 2 (Txn.Manager.started mgr)

let txn_undo_log_order () =
  let mgr = Txn.Manager.create () in
  let t = Txn.Manager.begin_txn mgr in
  Txn.record_update t ~key:1 ~before:"a";
  Txn.record_update t ~key:2 ~before:"b";
  Alcotest.(check (list (pair int string))) "newest first" [ (2, "b"); (1, "a") ]
    (Txn.undo_log t)

(* -- Buffer_pool ------------------------------------------------------------------ *)

let pool_fixture sim =
  (* The pool tests fabricate page LSNs, so the WAL-force hook is a stub;
     the WAL-before-data ordering has its own probe test below. *)
  let dev = Storage.Ssd.create sim Storage.Ssd.default in
  let config = { Buffer_pool.default_config with capacity_pages = 4 } in
  let pool = Buffer_pool.create sim config ~device:dev ~wal_force:(fun ~page:_ _ -> ()) in
  (pool, dev, ())

let pool_miss_then_hit () =
  run_in_sim (fun sim ->
      let pool, _, _ = pool_fixture sim in
      Buffer_pool.with_page pool ~key:1 (fun _ -> ());
      Buffer_pool.with_page pool ~key:2 (fun _ -> ());
      (* keys 1 and 2 share page 0 *)
      Alcotest.(check int) "one miss" 1 (Buffer_pool.misses pool);
      Alcotest.(check int) "one hit" 1 (Buffer_pool.hits pool))

let pool_capacity_bounded () =
  run_in_sim (fun sim ->
      let pool, _, _ = pool_fixture sim in
      for page = 0 to 9 do
        Buffer_pool.with_page pool ~key:(page * 16) (fun _ -> ())
      done;
      Alcotest.(check bool) "capacity respected" true (Buffer_pool.cached_pages pool <= 4);
      Alcotest.(check bool) "evictions happened" true (Buffer_pool.evictions pool > 0))

let pool_dirty_page_flushed_on_eviction () =
  run_in_sim (fun sim ->
      let pool, dev, _ = pool_fixture sim in
      Buffer_pool.with_page pool ~key:0 (fun page ->
          Page.set page ~key:0 ~value:"dirty" ~lsn:(Lsn.of_int 8);
          Buffer_pool.mark_dirty pool page ~lsn:(Lsn.of_int 8));
      (* Dirty five more pages: with everything dirty, eviction must
         write a victim back. *)
      for page = 1 to 5 do
        Buffer_pool.with_page pool ~key:(page * 16) (fun p ->
            Page.set p ~key:(page * 16) ~value:"d" ~lsn:(Lsn.of_int 9);
            Buffer_pool.mark_dirty pool p ~lsn:(Lsn.of_int 9))
      done;
      (* The dirty page reached the device... *)
      Alcotest.(check bool) "written back" true (Buffer_pool.page_writes pool >= 1);
      (* ...and reads back with its contents. *)
      Buffer_pool.with_page pool ~key:0 (fun page ->
          Alcotest.(check (option string)) "value preserved" (Some "dirty")
            (Page.get page ~key:0));
      ignore dev)

let pool_wal_before_data () =
  run_in_sim (fun sim ->
      let dev = Storage.Ssd.create sim Storage.Ssd.default in
      let forced_to = ref Lsn.zero in
      let config = { Buffer_pool.default_config with capacity_pages = 4 } in
      let pool =
        Buffer_pool.create sim config ~device:dev ~wal_force:(fun ~page:_ lsn -> forced_to := lsn)
      in
      Buffer_pool.with_page pool ~key:0 (fun page ->
          Page.set page ~key:0 ~value:"v" ~lsn:(Lsn.of_int 77);
          Buffer_pool.mark_dirty pool page ~lsn:(Lsn.of_int 77);
          Buffer_pool.flush_page pool page);
      Alcotest.(check int) "WAL forced to page LSN first" 77 (Lsn.to_int !forced_to))

let pool_flush_clean_is_noop () =
  run_in_sim (fun sim ->
      let pool, dev, _ = pool_fixture sim in
      Buffer_pool.with_page pool ~key:0 (fun page -> Buffer_pool.flush_page pool page);
      Alcotest.(check int) "no write" 0
        (Storage.Disk_stats.writes (Storage.Block.stats dev)))

let pool_min_rec_lsn () =
  run_in_sim (fun sim ->
      let pool, _, _ = pool_fixture sim in
      Alcotest.(check bool) "none when clean" true (Buffer_pool.min_rec_lsn pool = None);
      Buffer_pool.with_page pool ~key:0 (fun page ->
          Buffer_pool.mark_dirty pool page ~lsn:(Lsn.of_int 30));
      Buffer_pool.with_page pool ~key:16 (fun page ->
          Buffer_pool.mark_dirty pool page ~lsn:(Lsn.of_int 20));
      Alcotest.(check (option int)) "minimum" (Some 20)
        (Option.map Lsn.to_int (Buffer_pool.min_rec_lsn pool)))

let pool_fresh_allocation_no_read () =
  run_in_sim (fun sim ->
      let pool, dev, _ = pool_fixture sim in
      Buffer_pool.with_page pool ~key:100_000 (fun _ -> ());
      Alcotest.(check int) "no device read for a fresh page" 0
        (Storage.Disk_stats.reads (Storage.Block.stats dev)))

(* -- Engine + Checkpoint + Recovery (integration) ---------------------------------- *)

type rig = {
  sim : Sim.t;
  vmm : Hypervisor.Vmm.t;
  engine : Engine.t;
  wal : Wal.t;
  pool : Buffer_pool.t;
  log_dev : Storage.Block.t;
  data_dev : Storage.Block.t;
}

let make_rig ?(seed = 1L) ?(profile = Engine_profile.postgres_like) () =
  let sim = Sim.create ~seed () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.native in
  let log_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let data_dev = Storage.Ssd.create sim Storage.Ssd.default in
  let wal = Wal.create sim Wal.default_config ~device:log_dev in
  let pool =
    Buffer_pool.create sim Buffer_pool.default_config ~device:data_dev
      ~wal_force:(fun ~page:_ lsn -> Wal.force wal lsn)
  in
  let engine = Engine.create ~vmm ~profile ~wal ~pool () in
  { sim; vmm; engine; wal; pool; log_dev; data_dev }

let recover rig =
  Recovery.run ~log_device:rig.log_dev ~data_device:rig.data_dev
    ~wal_config:Wal.default_config ~pool_config:Buffer_pool.default_config

let in_guest rig body = ignore (Hypervisor.Vmm.spawn_guest rig.vmm body)

let engine_commit_recovers () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore
        (Engine.exec rig.engine
           [ Engine.Put { key = 1; value = "alpha" }; Engine.Put { key = 2; value = "beta" } ]));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check int) "one committed" 1 (List.length r.Recovery.committed);
  Alcotest.(check (option string)) "key 1" (Some "alpha") (Hashtbl.find_opt r.Recovery.store 1);
  Alcotest.(check (option string)) "key 2" (Some "beta") (Hashtbl.find_opt r.Recovery.store 2)

let engine_uncommitted_not_recovered () =
  let rig = make_rig () in
  (* Crash the guest before the commit record can be forced: the
     transaction must be a loser. *)
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 5; value = "committed" } ]);
      ignore (Engine.exec rig.engine [ Engine.Put { key = 5; value = "in-flight" } ]));
  (* The first txn takes ~455us of CPU+log force; kill during the second. *)
  Sim.schedule_after rig.sim (Time.us 700) (fun () ->
      Hypervisor.Vmm.crash_guest rig.vmm);
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "first value survives" (Some "committed")
    (Hashtbl.find_opt r.Recovery.store 5)

let engine_abort_leaves_no_trace () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 9; value = "keep" } ]);
      ignore (Engine.exec_abort rig.engine [ Engine.Put { key = 9; value = "discard" } ]);
      (* Force the log so the abort and its compensations are durable. *)
      Wal.force rig.wal (Wal.end_lsn rig.wal));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "value untouched" (Some "keep")
    (Hashtbl.find_opt r.Recovery.store 9);
  Alcotest.(check int) "abort recorded" 1 (List.length r.Recovery.aborted)

let engine_abort_of_fresh_key_removes_it () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec_abort rig.engine [ Engine.Put { key = 77; value = "ghost" } ]);
      Wal.force rig.wal (Wal.end_lsn rig.wal));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "no ghost key" None (Hashtbl.find_opt r.Recovery.store 77)

let engine_abort_visible_in_memory () =
  let rig = make_rig () in
  let seen = ref None in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 4; value = "original" } ]);
      ignore (Engine.exec_abort rig.engine [ Engine.Put { key = 4; value = "rolled-back" } ]);
      let r = Engine.exec rig.engine [ Engine.Get { key = 4 } ] in
      seen := List.assoc_opt 4 (List.map (fun (k, v) -> (k, v)) r.Engine.reads)
      );
  Sim.run rig.sim;
  Alcotest.(check (option (option string))) "rollback applied in memory"
    (Some (Some "original")) !seen

let engine_read_only_skips_log_device () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Get { key = 123 } ]));
  Sim.run rig.sim;
  Alcotest.(check int) "no log writes" 0
    (Storage.Disk_stats.writes (Storage.Block.stats rig.log_dev));
  Alcotest.(check int) "still counted as committed" 1 (Engine.committed_count rig.engine)

let engine_group_commit_vs_serialised () =
  let run_mode group_commit =
    let profile =
      Engine_profile.with_group_commit Engine_profile.postgres_like group_commit
    in
    let sim = Sim.create () in
    let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.native in
    let log_dev = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
    let data_dev = Storage.Ssd.create sim Storage.Ssd.default in
    let wal = Wal.create sim Wal.default_config ~device:log_dev in
    let pool =
      Buffer_pool.create sim Buffer_pool.default_config ~device:data_dev
        ~wal_force:(fun ~page:_ lsn -> Wal.force wal lsn)
    in
    let engine = Engine.create ~vmm ~profile ~wal ~pool () in
    for i = 0 to 7 do
      ignore
        (Hypervisor.Vmm.spawn_guest vmm (fun () ->
             ignore (Engine.exec engine [ Engine.Put { key = i; value = "x" } ])))
    done;
    Sim.run sim;
    Wal.forces wal
  in
  let grouped = run_mode true in
  let serialised = run_mode false in
  Alcotest.(check bool)
    (Printf.sprintf "group commit batches (%d < %d)" grouped serialised)
    true
    (grouped < serialised);
  Alcotest.(check int) "serialised = one force per txn" 8 serialised

let engine_latencies_recorded () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      for i = 1 to 5 do
        ignore (Engine.exec rig.engine [ Engine.Put { key = i; value = "v" } ])
      done);
  Sim.run rig.sim;
  Alcotest.(check int) "five samples" 5 (Stats.Sample.count (Engine.latencies rig.engine));
  Alcotest.(check bool) "positive latency" true
    (Stats.Sample.mean (Engine.latencies rig.engine) > 0.)

let engine_log_bytes_per_txn () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 1; value = "abc" } ]));
  Sim.run rig.sim;
  Alcotest.(check bool) "positive" true (Engine.log_bytes_per_txn rig.engine > 0.)

let checkpoint_roundtrip () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 3; value = "persisted" } ]);
      ignore (Checkpoint.run_once ~wal:rig.wal ~pool:rig.pool));
  Sim.run rig.sim;
  (* The checkpoint must have written the page image and the master. *)
  Alcotest.(check bool) "page image written" true
    (Storage.Disk_stats.writes (Storage.Block.stats rig.data_dev) >= 1);
  let r = recover rig in
  Alcotest.(check bool) "master set" true Lsn.(Lsn.zero < r.Recovery.redo_start);
  Alcotest.(check (option string)) "state via checkpoint + redo" (Some "persisted")
    (Hashtbl.find_opt r.Recovery.store 3)

let checkpoint_bounds_redo_work () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      for i = 1 to 20 do
        ignore (Engine.exec rig.engine [ Engine.Put { key = i; value = "pre" } ])
      done;
      ignore (Checkpoint.run_once ~wal:rig.wal ~pool:rig.pool);
      for i = 1 to 5 do
        ignore (Engine.exec rig.engine [ Engine.Put { key = i; value = "post" } ])
      done);
  Sim.run rig.sim;
  let r = recover rig in
  (* Only the 5 post-checkpoint updates (plus their meta padding) need
     redo; the 20 earlier ones are covered by page images. *)
  Alcotest.(check bool)
    (Printf.sprintf "redo bounded (%d <= 5)" r.Recovery.redo_applied)
    true
    (r.Recovery.redo_applied <= 5);
  for i = 1 to 5 do
    Alcotest.(check (option string)) "post value" (Some "post")
      (Hashtbl.find_opt r.Recovery.store i)
  done;
  for i = 6 to 20 do
    Alcotest.(check (option string)) "pre value" (Some "pre")
      (Hashtbl.find_opt r.Recovery.store i)
  done

let recovery_empty_devices () =
  let rig = make_rig () in
  let r = recover rig in
  Alcotest.(check int) "no records" 0 r.Recovery.durable_records;
  Alcotest.(check int) "empty store" 0 (Hashtbl.length r.Recovery.store);
  Alcotest.(check (list int)) "no committed" [] r.Recovery.committed

let recovery_exactness_prop =
  (* For random small workloads with a mid-run crash, recovery equals the
     acked-commit expectation exactly. *)
  prop "recovery is state-exact under random crash points" ~count:25
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 50 2_000))
    (fun (seed, crash_us) ->
      let rig = make_rig ~seed:(Int64.of_int seed) () in
      let model = Hashtbl.create 64 in
      let acked = ref [] in
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      in_guest rig (fun () ->
          for _ = 1 to 50 do
            let key = Rng.int rng 20 in
            let value = Printf.sprintf "v%d" (Rng.int rng 1000) in
            let result = Engine.exec rig.engine [ Engine.Put { key; value } ] in
            acked := result.Engine.txid :: !acked;
            Hashtbl.replace model key value
          done);
      Sim.schedule_after rig.sim (Time.us crash_us) (fun () ->
          Hypervisor.Vmm.crash_guest rig.vmm);
      Sim.run rig.sim;
      let r = recover rig in
      let report =
        Rapilog.Durability.compare_txids ~committed:!acked
          ~recovered:r.Recovery.committed
      in
      Rapilog.Durability.holds report)

(* Recovery reads the devices' durable images and must not write them:
   running it twice over the same media has to produce the identical
   result, or a first (crashed or abandoned) recovery attempt would
   change what a second one sees. *)
let recovery_is_idempotent () =
  let rig = make_rig ~seed:77L () in
  in_guest rig (fun () ->
      for i = 1 to 30 do
        ignore
          (Engine.exec rig.engine
             [ Engine.Put { key = i mod 7; value = Printf.sprintf "v%d" i } ])
      done);
  (* Crash mid-run so recovery has real work: winners, losers, undo. *)
  Sim.schedule_after rig.sim (Time.ms 5) (fun () ->
      Hypervisor.Vmm.crash_guest rig.vmm);
  Sim.run rig.sim;
  let first = recover rig in
  let second = recover rig in
  Alcotest.(check bool) "replay stats identical" true
    (Recovery.stats first = Recovery.stats second);
  Alcotest.(check (list int)) "committed identical" first.Recovery.committed
    second.Recovery.committed;
  Alcotest.(check (list int)) "aborted identical" first.Recovery.aborted
    second.Recovery.aborted;
  Alcotest.(check (list int)) "losers identical" first.Recovery.losers
    second.Recovery.losers;
  Alcotest.(check int) "store sizes identical"
    (Hashtbl.length first.Recovery.store)
    (Hashtbl.length second.Recovery.store);
  Hashtbl.iter
    (fun key value ->
      Alcotest.(check (option string))
        (Printf.sprintf "key %d identical" key)
        (Some value)
        (Hashtbl.find_opt second.Recovery.store key))
    first.Recovery.store

let suites =
  [
    ( "dbms.crc32",
      [
        case "known check value" crc32_known_vector;
        case "empty string" crc32_empty;
        case "slice consistency" crc32_slice_consistency;
        case "detects bit flips" crc32_detects_bitflip;
      ] );
    ("dbms.lsn", [ case "arithmetic and comparisons" lsn_ops ]);
    ( "dbms.log_record",
      [
        case "all kinds roundtrip" record_roundtrip_all_kinds;
        record_roundtrip_prop;
        case "bad magic rejected" record_decode_bad_magic;
        case "corrupt body rejected" record_decode_corrupt_body;
        case "truncation rejected" record_decode_truncated;
        case "decode at offset" record_decode_at_offset;
        case "stream stops at torn tail" stream_stops_at_torn_tail;
        case "stream stops at zero padding" stream_stops_at_zeros;
        case "oversized length claim rejected" record_oversized_rejected;
      ] );
    ( "dbms.page",
      [
        case "serialize/deserialize roundtrip" page_roundtrip;
        page_roundtrip_prop;
        case "torn image rejected" page_torn_image_rejected;
        case "unwritten slot rejected" page_unwritten_rejected;
        case "key to page mapping" page_key_mapping;
        case "overflow raises" page_overflow_raises;
      ] );
    ( "dbms.wal",
      [
        case "append buffers, force persists" wal_append_then_force_durable;
        case "force is idempotent" wal_force_is_idempotent;
        case "partial sector rewrite" wal_partial_sector_rewrite;
        case "group commit batches concurrent commits" wal_group_commit_batches;
        case "master block roundtrip" wal_master_block_roundtrip;
        case "master absent on fresh device" wal_master_absent;
        case "corrupt master rejected" wal_master_corrupt;
        case "force batch sizes recorded" wal_force_bytes_recorded;
      ] );
    ( "dbms.lock_table",
      [
        case "exclusive with FIFO queueing" locks_exclusive_and_fifo;
        case "reentrant for the owner" locks_reentrant;
        case "try_lock" locks_try_lock;
        case "unlock_all" locks_unlock_all;
      ] );
    ( "dbms.txn",
      [
        case "manager lifecycle" txn_manager_lifecycle;
        case "undo log is newest-first" txn_undo_log_order;
      ] );
    ( "dbms.buffer_pool",
      [
        case "miss then hit" pool_miss_then_hit;
        case "capacity bounded with eviction" pool_capacity_bounded;
        case "dirty page flushed on eviction" pool_dirty_page_flushed_on_eviction;
        case "WAL forced before data write" pool_wal_before_data;
        case "flushing a clean page is a no-op" pool_flush_clean_is_noop;
        case "min_rec_lsn over dirty set" pool_min_rec_lsn;
        case "fresh allocation does no read" pool_fresh_allocation_no_read;
      ] );
    ( "dbms.engine",
      [
        case "committed transaction recovers" engine_commit_recovers;
        case "uncommitted transaction does not" engine_uncommitted_not_recovered;
        case "abort leaves no trace" engine_abort_leaves_no_trace;
        case "abort of fresh key removes it" engine_abort_of_fresh_key_removes_it;
        case "abort rolls back in memory" engine_abort_visible_in_memory;
        case "read-only commits skip the log device" engine_read_only_skips_log_device;
        case "group commit batches, serialised does not"
          engine_group_commit_vs_serialised;
        case "latencies recorded" engine_latencies_recorded;
        case "log bytes per txn" engine_log_bytes_per_txn;
      ] );
    ( "dbms.recovery",
      [
        case "checkpoint roundtrip" checkpoint_roundtrip;
        case "checkpoint bounds redo work" checkpoint_bounds_redo_work;
        case "empty devices" recovery_empty_devices;
        recovery_exactness_prop;
        case "recovery is idempotent" recovery_is_idempotent;
      ] );
  ]

(* -- Chunked log scan (appended) --------------------------------------------- *)

let scan_matches_decode_stream () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      for i = 1 to 30 do
        ignore (Engine.exec rig.engine [ Engine.Put { key = i; value = "scan" } ])
      done);
  Sim.run rig.sim;
  let chunked = Recovery.scan_records ~log_device:rig.log_dev ~wal_config:Wal.default_config in
  let whole =
    Log_record.decode_stream
      (Recovery.read_durable_log ~log_device:rig.log_dev ~wal_config:Wal.default_config)
  in
  Alcotest.(check int) "same record count" (List.length whole) (List.length chunked);
  Alcotest.(check bool) "identical records" true (chunked = whole)

let scan_ignores_far_away_data_region () =
  (* Single-disk layout: page images live megabytes past the log. The
     chunked scan must stop at the end of the log instead of reading (or
     misparsing) the data region. *)
  let sim = Sim.create () in
  let dev = Storage.Ssd.create sim Storage.Ssd.default in
  let wal = Wal.create sim Wal.default_config ~device:dev in
  ignore
    (Process.spawn sim (fun () ->
         let lsn = Wal.append wal (Log_record.Commit { txid = 1 }) in
         Wal.force wal lsn;
         (* A page image far up the same device. *)
         let page = Page.create ~id:0 in
         Page.set page ~key:1 ~value:"data" ~lsn:(Lsn.of_int 1);
         Storage.Block.write dev ~lba:1_048_576 (Page.serialize page ~page_bytes:8192)));
  Sim.run sim;
  let records = Recovery.scan_records ~log_device:dev ~wal_config:Wal.default_config in
  Alcotest.(check int) "just the log record" 1 (List.length records)

let scan_empty_device () =
  let sim = Sim.create () in
  let dev = Storage.Ssd.create sim Storage.Ssd.default in
  Alcotest.(check int) "no records" 0
    (List.length (Recovery.scan_records ~log_device:dev ~wal_config:Wal.default_config))

let scan_suite =
  ( "dbms.log_scan",
    [
      case "chunked scan equals whole-log decode" scan_matches_decode_stream;
      case "stops before a distant data region" scan_ignores_far_away_data_region;
      case "empty device" scan_empty_device;
    ] )

let suites = suites @ [ scan_suite ]

(* -- Delete operation and WAL truncation (appended) --------------------------- *)

let delete_committed_recovers_as_absent () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 1; value = "short-lived" } ]);
      ignore (Engine.exec rig.engine [ Engine.Delete { key = 1 } ]));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "deleted key absent" None
    (Hashtbl.find_opt r.Recovery.store 1);
  Alcotest.(check int) "both committed" 2 (List.length r.Recovery.committed)

let delete_then_reinsert () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 2; value = "first" } ]);
      ignore (Engine.exec rig.engine [ Engine.Delete { key = 2 } ]);
      ignore (Engine.exec rig.engine [ Engine.Put { key = 2; value = "second" } ]));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "reinserted value" (Some "second")
    (Hashtbl.find_opt r.Recovery.store 2)

let delete_uncommitted_undone () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 3; value = "survivor" } ]);
      (* The delete never commits: the guest dies first. *)
      ignore (Engine.exec rig.engine [ Engine.Delete { key = 3 } ]));
  Sim.schedule_after rig.sim (Time.us 700) (fun () ->
      Hypervisor.Vmm.crash_guest rig.vmm);
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "delete rolled back" (Some "survivor")
    (Hashtbl.find_opt r.Recovery.store 3)

let delete_abort_restores () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 4; value = "kept" } ]);
      ignore (Engine.exec_abort rig.engine [ Engine.Delete { key = 4 } ]);
      Wal.force rig.wal (Wal.end_lsn rig.wal));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "abort restored the row" (Some "kept")
    (Hashtbl.find_opt r.Recovery.store 4)

let delete_reported_in_writes () =
  let rig = make_rig () in
  let writes = ref [] in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 5; value = "v" } ]);
      let r = Engine.exec rig.engine [ Engine.Delete { key = 5 } ] in
      writes := r.Engine.writes);
  Sim.run rig.sim;
  Alcotest.(check bool) "delete visible as None" true (!writes = [ (5, None) ])

let wal_truncate_frees_memory () =
  run_in_sim (fun sim ->
      let wal, dev = ssd_wal sim in
      for i = 1 to 50 do
        let lsn = Wal.append wal (Log_record.Commit { txid = i }) in
        Wal.force wal lsn
      done;
      let before = String.length (Wal.stream_contents wal) in
      Wal.truncate wal (Wal.flushed_lsn wal);
      let after = String.length (Wal.stream_contents wal) in
      Alcotest.(check bool)
        (Printf.sprintf "stream shrank (%d -> %d)" before after)
        true (after < before);
      Alcotest.(check bool) "truncated bytes accounted" true
        (Wal.truncated_bytes wal > 0);
      (* Appending and forcing still works across the rebased buffer. *)
      let lsn = Wal.append wal (Log_record.Commit { txid = 999 }) in
      Wal.force wal lsn;
      ignore dev)

let wal_truncate_preserves_media_log () =
  run_in_sim (fun sim ->
      let wal, dev = ssd_wal sim in
      let l1 = Wal.append wal (Log_record.Commit { txid = 1 }) in
      Wal.force wal l1;
      Wal.truncate wal l1;
      let l2 = Wal.append wal (Log_record.Commit { txid = 2 }) in
      Wal.force wal l2;
      let records = Recovery.scan_records ~log_device:dev ~wal_config:Wal.default_config in
      Alcotest.(check int) "both records on media" 2 (List.length records))

let checkpoint_truncates_wal () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      for i = 1 to 40 do
        ignore (Engine.exec rig.engine [ Engine.Put { key = i; value = "t" } ])
      done;
      ignore (Checkpoint.run_once ~wal:rig.wal ~pool:rig.pool));
  Sim.run rig.sim;
  Alcotest.(check bool) "wal memory recycled" true (Wal.truncated_bytes rig.wal > 0);
  (* And recovery is still exact. *)
  let r = recover rig in
  Alcotest.(check (option string)) "state intact" (Some "t")
    (Hashtbl.find_opt r.Recovery.store 40)

let delete_suite =
  ( "dbms.delete_and_truncate",
    [
      case "committed delete recovers as absent" delete_committed_recovers_as_absent;
      case "delete then reinsert" delete_then_reinsert;
      case "uncommitted delete undone" delete_uncommitted_undone;
      case "aborted delete restores the row" delete_abort_restores;
      case "delete reported as None in writes" delete_reported_in_writes;
      case "truncate frees stream memory" wal_truncate_frees_memory;
      case "truncate leaves the media log intact" wal_truncate_preserves_media_log;
      case "checkpoint truncates the wal" checkpoint_truncates_wal;
    ] )

let suites = suites @ [ delete_suite ]

(* -- Restart: multi-incarnation lifecycle (appended) -------------------------- *)

let restart_engine rig =
  let engine, recovery =
    Restart.restart ~vmm:rig.vmm ~profile:Engine_profile.postgres_like
      ~log_device:rig.log_dev ~data_device:rig.data_dev
      ~wal_config:Wal.default_config ~pool_config:Buffer_pool.default_config ()
  in
  (engine, recovery)

let restart_preserves_and_continues () =
  let rig = make_rig () in
  let acked = ref [] in
  (* Epoch 1: 20 commits, then the guest dies. *)
  in_guest rig (fun () ->
      for i = 1 to 20 do
        let r = Engine.exec rig.engine [ Engine.Put { key = i; value = "epoch1" } ] in
        acked := r.Engine.txid :: !acked
      done);
  Sim.schedule_after rig.sim (Time.ms 20) (fun () ->
      Hypervisor.Vmm.crash_guest rig.vmm);
  Sim.run rig.sim;
  (* Epoch 2: restart and commit 20 more (the guest domain is dead, so
     the new incarnation runs in fresh processes). *)
  let epoch2_done = ref false in
  ignore
    (Process.spawn rig.sim ~name:"epoch2" (fun () ->
         let engine, recovery = restart_engine rig in
         Alcotest.(check bool) "epoch 1 commits recovered" true
           (List.length recovery.Recovery.committed >= 20);
         for i = 21 to 40 do
           let r = Engine.exec engine [ Engine.Put { key = i; value = "epoch2" } ] in
           acked := r.Engine.txid :: !acked
         done;
         epoch2_done := true));
  Sim.run rig.sim;
  Alcotest.(check bool) "epoch 2 ran" true !epoch2_done;
  (* Final crash + recovery must see both epochs. *)
  let r = recover rig in
  let report =
    Rapilog.Durability.compare_txids ~committed:!acked
      ~recovered:r.Recovery.committed
  in
  Alcotest.(check bool) "all 40 acked commits durable" true
    (Rapilog.Durability.holds report);
  Alcotest.(check (option string)) "epoch1 value" (Some "epoch1")
    (Hashtbl.find_opt r.Recovery.store 1);
  Alcotest.(check (option string)) "epoch2 value" (Some "epoch2")
    (Hashtbl.find_opt r.Recovery.store 40)

let restart_neutralised_loser_cannot_clobber () =
  (* The dangerous interleaving: epoch 1 leaves a loser on key k; epoch 2
     commits a new value for k; a later recovery must keep epoch 2's
     value (the loser must not be re-undone over it). *)
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 7; value = "original" } ]);
      (* This one's commit record never becomes durable: crash mid-force. *)
      ignore (Engine.exec rig.engine [ Engine.Put { key = 7; value = "loser" } ]));
  Sim.schedule_after rig.sim (Time.us 700) (fun () ->
      Hypervisor.Vmm.crash_guest rig.vmm);
  Sim.run rig.sim;
  ignore
    (Process.spawn rig.sim ~name:"epoch2" (fun () ->
         let engine, recovery = restart_engine rig in
         Alcotest.(check (option string)) "loser undone at restart"
           (Some "original")
           (Hashtbl.find_opt recovery.Recovery.store 7);
         ignore (Engine.exec engine [ Engine.Put { key = 7; value = "epoch2-final" } ])));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "epoch 2 value survives re-recovery"
    (Some "epoch2-final")
    (Hashtbl.find_opt r.Recovery.store 7);
  Alcotest.(check (list int)) "no losers remain" [] r.Recovery.losers

let restart_txids_continue () =
  let rig = make_rig () in
  let last_epoch1 = ref 0 in
  in_guest rig (fun () ->
      for i = 1 to 5 do
        let r = Engine.exec rig.engine [ Engine.Put { key = i; value = "x" } ] in
        last_epoch1 := r.Engine.txid
      done);
  Sim.run rig.sim;
  let first_epoch2 = ref 0 in
  ignore
    (Process.spawn rig.sim (fun () ->
         let engine, _ = restart_engine rig in
         let r = Engine.exec engine [ Engine.Put { key = 99; value = "y" } ] in
         first_epoch2 := r.Engine.txid));
  Sim.run rig.sim;
  Alcotest.(check bool)
    (Printf.sprintf "txids continue (%d -> %d)" !last_epoch1 !first_epoch2)
    true
    (!first_epoch2 > !last_epoch1)

let restart_partial_tail_sector () =
  (* The durable log end almost never lands on a sector boundary; the
     resumed WAL must rewrite the partial tail correctly. *)
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 1; value = "pre" } ]));
  Sim.run rig.sim;
  ignore
    (Process.spawn rig.sim (fun () ->
         let engine, recovery = restart_engine rig in
         Alcotest.(check bool) "tail is partial" true
           (Lsn.to_int recovery.Recovery.durable_end mod 512 <> 0);
         ignore (Engine.exec engine [ Engine.Put { key = 2; value = "post" } ])));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "record before the seam" (Some "pre")
    (Hashtbl.find_opt r.Recovery.store 1);
  Alcotest.(check (option string)) "record after the seam" (Some "post")
    (Hashtbl.find_opt r.Recovery.store 2)

let restart_checkpoint_then_recover () =
  (* Recovered-but-unflushed state must survive: restart, checkpoint,
     crash, recover — the checkpoint must have persisted the recovered
     pages. *)
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 5; value = "kept" } ]));
  Sim.run rig.sim;
  ignore
    (Process.spawn rig.sim (fun () ->
         let engine, _ = restart_engine rig in
         ignore
           (Checkpoint.run_once ~wal:(Engine.wal engine) ~pool:(Engine.pool engine))));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string)) "value persisted via restart checkpoint"
    (Some "kept")
    (Hashtbl.find_opt r.Recovery.store 5);
  (* The checkpoint bounded redo to (almost) nothing. *)
  Alcotest.(check bool)
    (Printf.sprintf "redo bounded (%d)" r.Recovery.redo_applied)
    true (r.Recovery.redo_applied = 0)

let restart_suite =
  ( "dbms.restart",
    [
      case "preserves epoch 1 and continues" restart_preserves_and_continues;
      case "neutralised loser cannot clobber later commits"
        restart_neutralised_loser_cannot_clobber;
      case "txids continue across incarnations" restart_txids_continue;
      case "partial tail sector resumed correctly" restart_partial_tail_sector;
      case "checkpoint after restart persists recovered state"
        restart_checkpoint_then_recover;
    ] )

let suites = suites @ [ restart_suite ]

(* -- Torn-page protection: ping-pong slots (appended) -------------------------- *)

let slots_alternate_on_flush () =
  run_in_sim (fun sim ->
      let dev = Storage.Ssd.create sim Storage.Ssd.default in
      let config = Buffer_pool.default_config in
      let pool = Buffer_pool.create sim config ~device:dev ~wal_force:(fun ~page:_ _ -> ()) in
      let flush value lsn =
        Buffer_pool.with_page pool ~key:0 (fun page ->
            Page.set page ~key:0 ~value ~lsn:(Lsn.of_int lsn);
            Buffer_pool.mark_dirty pool page ~lsn:(Lsn.of_int lsn);
            Buffer_pool.flush_page pool page)
      in
      flush "v1" 10;
      flush "v2" 20;
      let ss = (Storage.Block.info dev).Storage.Block.sector_size in
      let spp = config.Buffer_pool.page_bytes / ss in
      let base = Buffer_pool.lba_of_page config ~sector_size:ss 0 in
      let slot parity =
        Page.deserialize
          (Storage.Block.durable_read dev ~lba:(base + (parity * spp)) ~sectors:spp)
      in
      (match (slot 0, slot 1) with
      | Some a, Some b ->
          let values =
            List.sort compare
              [ Option.get (Page.get a ~key:0); Option.get (Page.get b ~key:0) ]
          in
          Alcotest.(check (list string)) "both generations on device" [ "v1"; "v2" ]
            values
      | _ -> Alcotest.fail "expected two intact slot images"))

let torn_newest_slot_falls_back () =
  run_in_sim (fun sim ->
      let dev = Storage.Ssd.create sim Storage.Ssd.default in
      let log_dev = Storage.Ssd.create sim Storage.Ssd.default in
      let config = Buffer_pool.default_config in
      let wal = Wal.create sim Wal.default_config ~device:log_dev in
      let pool = Buffer_pool.create sim config ~device:dev ~wal_force:(fun ~page:_ lsn -> Wal.force wal lsn) in
      let put_and_flush value =
        let lsn =
          Wal.append wal
            (Log_record.Update { txid = 1; key = 0; before = ""; after = value })
        in
        Wal.force wal lsn;
        Buffer_pool.with_page pool ~key:0 (fun page ->
            Page.set page ~key:0 ~value ~lsn;
            Buffer_pool.mark_dirty pool page ~lsn;
            Buffer_pool.flush_page pool page)
      in
      put_and_flush "old-generation";  (* slot 0 *)
      put_and_flush "new-generation";  (* slot 1 *)
      ignore (Wal.append wal (Log_record.Commit { txid = 1 }));
      Wal.force wal (Wal.end_lsn wal);
      (* Tear the newest image: overwrite part of slot 1 with garbage,
         as a power cut mid-write would. *)
      let ss = (Storage.Block.info dev).Storage.Block.sector_size in
      let spp = config.Buffer_pool.page_bytes / ss in
      let base = Buffer_pool.lba_of_page config ~sector_size:ss 0 in
      Storage.Block.write dev ~lba:(base + spp) (String.make ss 'X');
      (* Recovery falls back to the intact older slot and repairs it by
         replaying the log on top. *)
      let result =
        Recovery.run ~log_device:log_dev ~data_device:dev
          ~wal_config:Wal.default_config ~pool_config:config
      in
      Alcotest.(check (option int)) "winner parity is the older slot" (Some 0)
        (Hashtbl.find_opt result.Recovery.parities 0);
      Alcotest.(check (option string)) "redo repairs over the fallback"
        (Some "new-generation")
        (Hashtbl.find_opt result.Recovery.store 0))

let torn_page_plus_redo_recovers_fully () =
  (* The end-to-end property the ping-pong scheme buys. The physical
     failure is a power cut *during* a page flush - which always targets
     the non-winner slot (flushes never overwrite the newest intact
     image) and always means the checkpoint that issued it did not
     complete, so the master still points at the previous redo point.
     Simulate exactly that: after two completed checkpoints, a third
     flush of the re-dirtied page is interrupted mid-write. *)
  let rig = make_rig () in
  in_guest rig (fun () ->
      ignore (Engine.exec rig.engine [ Engine.Put { key = 1; value = "first" } ]);
      ignore (Checkpoint.run_once ~wal:rig.wal ~pool:rig.pool);
      ignore (Engine.exec rig.engine [ Engine.Put { key = 1; value = "second" } ]);
      ignore (Checkpoint.run_once ~wal:rig.wal ~pool:rig.pool);
      (* The third update is logged and forced, but its page image write
         is the one that tears. *)
      ignore (Engine.exec rig.engine [ Engine.Put { key = 1; value = "third" } ]));
  Sim.run rig.sim;
  let recovery_before = recover rig in
  let winner = Hashtbl.find recovery_before.Recovery.parities 0 in
  let ss = 512 in
  let spp = Buffer_pool.default_config.Buffer_pool.page_bytes / ss in
  let base = Buffer_pool.lba_of_page Buffer_pool.default_config ~sector_size:ss 0 in
  ignore
    (Process.spawn rig.sim (fun () ->
         (* Garbage lands in the slot the interrupted flush was writing:
            the opposite of the winner. *)
         Storage.Block.write rig.data_dev
           ~lba:(base + ((1 - winner) * spp))
           (String.make ss 'X')));
  Sim.run rig.sim;
  let r = recover rig in
  Alcotest.(check (option string))
    "intact image + redo reach the exact committed state" (Some "third")
    (Hashtbl.find_opt r.Recovery.store 1)

let torn_page_suite =
  ( "dbms.torn_pages",
    [
      case "flushes alternate between the slot pair" slots_alternate_on_flush;
      case "torn newest slot falls back to the older image" torn_newest_slot_falls_back;
      case "torn image + redo recovers exact state" torn_page_plus_redo_recovers_fully;
    ] )

let suites = suites @ [ torn_page_suite ]

(* -- Background writer (appended) ---------------------------------------------- *)

let cleaner_cleans_dirty_pages () =
  let sim = Sim.create () in
  let dev = Storage.Ssd.create sim Storage.Ssd.default in
  let pool =
    Buffer_pool.create sim Buffer_pool.default_config ~device:dev
      ~wal_force:(fun ~page:_ _ -> ())
  in
  let domain = Hypervisor.Domain.create sim ~name:"g" ~kind:Hypervisor.Domain.Guest in
  ignore (Buffer_pool.spawn_cleaner pool domain ~interval:(Time.ms 5) ~batch:8);
  ignore
    (Process.spawn sim (fun () ->
         for key = 0 to 63 do
           Buffer_pool.with_page pool ~key (fun page ->
               Page.set page ~key ~value:"dirty" ~lsn:(Lsn.of_int 1);
               Buffer_pool.mark_dirty pool page ~lsn:(Lsn.of_int 1))
         done));
  Sim.run ~until:(Time.add Time.zero (Time.ms 200)) sim;
  Alcotest.(check (list reject)) "no dirty pages left" []
    (List.map ignore (Buffer_pool.dirty_pages pool));
  Alcotest.(check bool) "pages were written" true (Buffer_pool.page_writes pool >= 4);
  Hypervisor.Domain.crash domain

let cleaner_dies_with_guest () =
  let sim = Sim.create () in
  let dev = Storage.Ssd.create sim Storage.Ssd.default in
  let pool =
    Buffer_pool.create sim Buffer_pool.default_config ~device:dev
      ~wal_force:(fun ~page:_ _ -> ())
  in
  let domain = Hypervisor.Domain.create sim ~name:"g" ~kind:Hypervisor.Domain.Guest in
  ignore (Buffer_pool.spawn_cleaner pool domain ~interval:(Time.ms 5) ~batch:8);
  ignore
    (Process.spawn sim (fun () ->
         Buffer_pool.with_page pool ~key:0 (fun page ->
             Page.set page ~key:0 ~value:"d" ~lsn:(Lsn.of_int 1);
             Buffer_pool.mark_dirty pool page ~lsn:(Lsn.of_int 1))));
  Sim.schedule_after sim (Time.ms 1) (fun () -> Hypervisor.Domain.crash domain);
  Sim.run sim;
  (* The cleaner was cancelled with the guest: the page stays dirty. *)
  Alcotest.(check int) "dirty page untouched" 1
    (List.length (Buffer_pool.dirty_pages pool))

let cleaner_suite =
  ( "dbms.bgwriter",
    [
      case "cleans dirty pages in the background" cleaner_cleans_dirty_pages;
      case "dies with its guest domain" cleaner_dies_with_guest;
    ] )

let suites = suites @ [ cleaner_suite ]

(* -- WAL property: random append/force/truncate interleavings (appended) ------- *)

let wal_interleaving_prop =
  (* Whatever the interleaving of appends, forces and truncations, the
     records decodable from durable media must always be a prefix of the
     appended sequence, and after a final force, the whole of it. *)
  prop "wal: durable log is always the appended prefix" ~count:60
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 5))
    (fun choices ->
      let sim = Sim.create () in
      let dev = Storage.Ssd.create sim Storage.Ssd.default in
      let wal = Wal.create sim Wal.default_config ~device:dev in
      let appended = ref [] in
      let next_txid = ref 0 in
      let ok = ref true in
      ignore
        (Process.spawn sim (fun () ->
             let step choice =
               match choice with
               | 0 | 1 | 2 ->
                   incr next_txid;
                   let record = Log_record.Commit { txid = !next_txid } in
                   appended := record :: !appended;
                   ignore (Wal.append wal record)
               | 3 -> Wal.force wal (Wal.end_lsn wal)
               | 4 -> Wal.truncate wal (Wal.flushed_lsn wal)
               | _ ->
                   incr next_txid;
                   let record =
                     Log_record.Update
                       { txid = !next_txid; key = 1; before = "a"; after = "b" }
                   in
                   appended := record :: !appended;
                   ignore (Wal.append wal record)
             in
             List.iter
               (fun choice ->
                 step choice;
                 (* Invariant at every step: durable records form a
                    prefix of the appended list. *)
                 let durable =
                   List.map fst
                     (Recovery.scan_records ~log_device:dev
                        ~wal_config:Wal.default_config)
                 in
                 let expected_prefix =
                   List.filteri
                     (fun i _ -> i < List.length durable)
                     (List.rev !appended)
                 in
                 if durable <> expected_prefix then ok := false)
               choices;
             Wal.force wal (Wal.end_lsn wal)));
      Sim.run sim;
      let durable =
        List.map fst
          (Recovery.scan_records ~log_device:dev ~wal_config:Wal.default_config)
      in
      !ok && durable = List.rev !appended)

let wal_prop_suite = ("dbms.wal_properties", [ wal_interleaving_prop ])

let suites = suites @ [ wal_prop_suite ]

(* -- Decoder robustness: arbitrary bytes must never raise (appended) ----------- *)

let record_decoder_total_prop =
  prop "Log_record.decode never raises on arbitrary bytes" ~count:500
    QCheck2.Gen.(string_size (int_range 0 128))
    (fun junk ->
      match Log_record.decode junk ~pos:0 with
      | Some _ | None -> true
      | exception _ -> false)

let record_decoder_total_on_mutations_prop =
  (* Harder inputs: a valid record with random mutations, decoded at
     every offset. *)
  prop "decode survives mutated records at every offset" ~count:200
    QCheck2.Gen.(pair (int_range 0 50) (int_range 0 255))
    (fun (pos, byte) ->
      let valid =
        Log_record.encode
          (Log_record.Update { txid = 1; key = 2; before = "abc"; after = "defg" })
      in
      let mutated = Bytes.of_string valid in
      if pos < Bytes.length mutated then Bytes.set mutated pos (Char.chr byte);
      let s = Bytes.to_string mutated in
      let ok = ref true in
      for offset = 0 to String.length s - 1 do
        match Log_record.decode s ~pos:offset with
        | Some _ | None -> ()
        | exception _ -> ok := false
      done;
      !ok)

let page_decoder_total_prop =
  prop "Page.deserialize never raises on arbitrary bytes" ~count:300
    QCheck2.Gen.(string_size (int_range 0 8192))
    (fun junk ->
      match Page.deserialize junk with
      | Some _ | None -> true
      | exception _ -> false)

let master_decoder_total () =
  (* A garbage master sector must be rejected, not crash. *)
  run_in_sim (fun sim ->
      let dev = Storage.Ssd.create sim Storage.Ssd.default in
      Storage.Block.write dev ~lba:0 (String.init 512 (fun i -> Char.chr (i land 0xff)));
      Alcotest.(check bool) "rejected" true
        (Wal.read_master Wal.default_config ~device:dev = None))

let recovery_is_pure () =
  let rig = make_rig () in
  in_guest rig (fun () ->
      for i = 1 to 20 do
        ignore (Engine.exec rig.engine [ Engine.Put { key = i; value = "p" } ])
      done);
  Sim.run rig.sim;
  let a = recover rig and b = recover rig in
  Alcotest.(check (list int)) "same committed" a.Recovery.committed b.Recovery.committed;
  Alcotest.(check int) "same store size" (Hashtbl.length a.Recovery.store)
    (Hashtbl.length b.Recovery.store);
  Hashtbl.iter
    (fun key value ->
      Alcotest.(check (option string)) "same value" (Some value)
        (Hashtbl.find_opt b.Recovery.store key))
    a.Recovery.store

let robustness_suite =
  ( "dbms.decoder_robustness",
    [
      record_decoder_total_prop;
      record_decoder_total_on_mutations_prop;
      page_decoder_total_prop;
      case "garbage master block rejected" master_decoder_total;
      case "recovery is a pure function of media" recovery_is_pure;
    ] )

let suites = suites @ [ robustness_suite ]
