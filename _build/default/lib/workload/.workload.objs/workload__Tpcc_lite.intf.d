lib/workload/tpcc_lite.mli: Dbms Desim
