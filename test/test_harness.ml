(* Integration tests through the experiment harness: scenario wiring,
   steady-state shape properties, and the durability matrix the paper's
   headline claims rest on. These are slower than the unit suites (each
   runs a full simulated machine) so durations are kept short. *)

open Desim
open Testu
open Harness

let quick_config =
  {
    Scenario.default with
    Scenario.clients = 4;
    warmup = Time.ms 100;
    duration = Time.ms 600;
    workload =
      Scenario.Micro { Workload.Microbench.default_config with Workload.Microbench.keys = 500 };
  }

let with_mode mode = { quick_config with Scenario.mode }

(* -- Scenario wiring ------------------------------------------------------ *)

let mode_names_roundtrip () =
  List.iter
    (fun mode ->
      Alcotest.(check bool)
        (Scenario.mode_name mode)
        true
        (Scenario.mode_of_name (Scenario.mode_name mode) = Some mode))
    Scenario.all_modes;
  Alcotest.(check bool) "unknown" true (Scenario.mode_of_name "nonsense" = None)

let durability_promises () =
  Alcotest.(check bool) "rapilog always durable" true
    (Scenario.mode_is_durable Scenario.Rapilog = `Always);
  Alcotest.(check bool) "replicated rapilog survives machine loss too" true
    (Scenario.mode_is_durable Scenario.Rapilog_replicated = `Machine_loss_too);
  Alcotest.(check bool) "wcache unsafe on power" true
    (Scenario.mode_is_durable Scenario.Unsafe_wcache = `Os_crash_only);
  Alcotest.(check bool) "async never" true
    (Scenario.mode_is_durable Scenario.Async_commit = `Never)

let build_wires_rapilog () =
  let built = Scenario.build (with_mode Scenario.Rapilog) in
  Alcotest.(check bool) "logger present" true (built.Scenario.logger <> None);
  let model = (Storage.Block.info built.Scenario.log_attached).Storage.Block.model in
  Alcotest.(check bool)
    ("attached log device is the rapilog frontend: " ^ model)
    true
    (String.length model >= 14 && String.sub model 0 14 = "virtio:rapilog")

let build_wires_native () =
  let built = Scenario.build (with_mode Scenario.Native_sync) in
  Alcotest.(check bool) "no logger" true (built.Scenario.logger = None);
  Alcotest.(check bool) "wal writes the raw device" true
    (built.Scenario.log_attached == built.Scenario.log_physical)

let build_wires_wcache () =
  let built = Scenario.build (with_mode Scenario.Unsafe_wcache) in
  let model = (Storage.Block.info built.Scenario.log_attached).Storage.Block.model in
  Alcotest.(check bool) ("write cache wrapped: " ^ model) true
    (String.length model > 7
    && String.sub model (String.length model - 7) 7 = "+wcache")

let build_virt_uses_virtio () =
  let built = Scenario.build (with_mode Scenario.Virt_sync) in
  let model = (Storage.Block.info built.Scenario.log_attached).Storage.Block.model in
  Alcotest.(check bool) ("virtio path: " ^ model) true
    (String.length model >= 7 && String.sub model 0 7 = "virtio:")

let hdd_streaming_bandwidth_sane () =
  let bw = Scenario.hdd_streaming_bandwidth Storage.Hdd.default_7200rpm in
  (* 1000 sectors/track at 120 rev/s = ~61 MB/s. *)
  Alcotest.(check bool) (Printf.sprintf "%.0f B/s" bw) true (bw > 50e6 && bw < 75e6)

(* -- Steady-state shapes ---------------------------------------------------- *)

let steady_commits_something () =
  let r = Experiment.run_steady (with_mode Scenario.Rapilog) in
  Alcotest.(check bool)
    (Printf.sprintf "committed %d" r.Experiment.committed_in_window)
    true
    (r.Experiment.committed_in_window > 50);
  Alcotest.(check bool) "latency sane" true (r.Experiment.latency_p50_us > 0.)

let steady_rapilog_beats_sync_on_disk () =
  (* The headline: ack-from-buffer commits must be far faster than
     ack-from-media on a rotational disk. *)
  let rapilog = Experiment.run_steady (with_mode Scenario.Rapilog) in
  let native = Experiment.run_steady (with_mode Scenario.Native_sync) in
  Alcotest.(check bool)
    (Printf.sprintf "rapilog %.0f > 2x native %.0f" rapilog.Experiment.throughput
       native.Experiment.throughput)
    true
    (rapilog.Experiment.throughput > 2. *. native.Experiment.throughput)

let steady_rapilog_close_to_unsafe () =
  (* "Performance never degraded": RapiLog keeps pace with the unsafe
     async-commit upper bound (allow it the virtualisation overhead). *)
  let rapilog = Experiment.run_steady (with_mode Scenario.Rapilog) in
  let unsafe = Experiment.run_steady (with_mode Scenario.Async_commit) in
  Alcotest.(check bool)
    (Printf.sprintf "rapilog %.0f >= 0.6x async %.0f" rapilog.Experiment.throughput
       unsafe.Experiment.throughput)
    true
    (rapilog.Experiment.throughput >= 0.6 *. unsafe.Experiment.throughput)

let steady_sync_latency_is_rotational () =
  let native = Experiment.run_steady (with_mode Scenario.Native_sync) in
  (* Commit latency must be dominated by the ~8.3ms rotation. *)
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.0fus >= 4ms" native.Experiment.latency_p50_us)
    true
    (native.Experiment.latency_p50_us >= 4000.)

let steady_rapilog_latency_is_sub_ms () =
  let rapilog = Experiment.run_steady (with_mode Scenario.Rapilog) in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.0fus < 2ms" rapilog.Experiment.latency_p50_us)
    true
    (rapilog.Experiment.latency_p50_us < 2000.)

let steady_logger_stats_present_only_for_rapilog () =
  let rapilog = Experiment.run_steady (with_mode Scenario.Rapilog) in
  let native = Experiment.run_steady (with_mode Scenario.Native_sync) in
  Alcotest.(check bool) "rapilog has logger stats" true
    (rapilog.Experiment.logger_stats <> None);
  Alcotest.(check bool) "native does not" true (native.Experiment.logger_stats = None);
  match rapilog.Experiment.logger_stats with
  | Some stats ->
      Alcotest.(check bool) "drain coalesces" true
        (stats.Experiment.drain_writes < stats.Experiment.acked_writes)
  | None -> ()

let steady_deterministic () =
  let a = Experiment.run_steady (with_mode Scenario.Rapilog) in
  let b = Experiment.run_steady (with_mode Scenario.Rapilog) in
  Alcotest.(check int) "bit-identical reruns" a.Experiment.committed_in_window
    b.Experiment.committed_in_window

let steady_more_clients_more_sync_throughput () =
  (* Group commit: sync throughput grows with client count on a disk. *)
  let at clients =
    (Experiment.run_steady { (with_mode Scenario.Native_sync) with Scenario.clients })
      .Experiment.throughput
  in
  let one = at 1 and sixteen = at 16 in
  Alcotest.(check bool)
    (Printf.sprintf "scales with batching (%.0f -> %.0f)" one sixteen)
    true
    (sixteen > 2. *. one)

(* -- Failure matrix ----------------------------------------------------------- *)

let failure_config mode seed = { (with_mode mode) with Scenario.seed }

let run_power_cut mode seed =
  Experiment.run_failure (failure_config mode seed) ~kind:Experiment.Power_cut
    ~after:(Time.ms 300)

let run_os_crash mode seed =
  Experiment.run_failure (failure_config mode seed) ~kind:Experiment.Os_crash
    ~after:(Time.ms 300)

let power_cut_safe_modes_lose_nothing () =
  List.iter
    (fun mode ->
      List.iter
        (fun seed ->
          let r = run_power_cut mode seed in
          let lost = r.Experiment.audit.Audit.durability.Rapilog.Durability.lost in
          if lost <> [] then
            Alcotest.failf "%s lost %d acked txns on power cut (seed %Ld)"
              (Scenario.mode_name mode) (List.length lost) seed;
          Alcotest.(check bool) "state exact" true r.Experiment.audit.Audit.state_exact)
        [ 1L; 2L; 3L ])
    [
      Scenario.Native_sync;
      Scenario.Virt_sync;
      Scenario.Rapilog;
      Scenario.Wcache_flush;
    ]

let power_cut_rapilog_had_buffered_data () =
  (* The interesting case: there was data in flight, and it still made it. *)
  let r = run_power_cut Scenario.Rapilog 4L in
  Alcotest.(check bool) "acked plenty" true (r.Experiment.acked > 100);
  Alcotest.(check bool) "guarantee held" true (Experiment.durability_ok r)

let power_cut_unsafe_wcache_loses () =
  let lost_somewhere =
    List.exists
      (fun seed ->
        let r = run_power_cut Scenario.Unsafe_wcache seed in
        r.Experiment.audit.Audit.durability.Rapilog.Durability.lost <> [])
      [ 1L; 2L; 3L ]
  in
  Alcotest.(check bool) "write cache loses acked commits" true lost_somewhere

let power_cut_async_commit_loses () =
  let lost_somewhere =
    List.exists
      (fun seed ->
        let r = run_power_cut Scenario.Async_commit seed in
        r.Experiment.audit.Audit.durability.Rapilog.Durability.lost <> [])
      [ 1L; 2L; 3L ]
  in
  Alcotest.(check bool) "async commit loses acked commits" true lost_somewhere

let os_crash_matrix () =
  (* Guest-OS crash: everything except async-commit must lose nothing
     (the disk cache survives an OS crash; unforced WAL does not). *)
  List.iter
    (fun mode ->
      let r = run_os_crash mode 5L in
      let lost = r.Experiment.audit.Audit.durability.Rapilog.Durability.lost in
      if lost <> [] then
        Alcotest.failf "%s lost %d acked txns on OS crash" (Scenario.mode_name mode)
          (List.length lost))
    [
      Scenario.Native_sync;
      Scenario.Virt_sync;
      Scenario.Rapilog;
      Scenario.Wcache_flush;
      Scenario.Unsafe_wcache;
    ]

let os_crash_async_commit_loses () =
  let lost_somewhere =
    List.exists
      (fun seed ->
        let r = run_os_crash Scenario.Async_commit seed in
        r.Experiment.audit.Audit.durability.Rapilog.Durability.lost <> [])
      [ 1L; 2L; 3L ]
  in
  Alcotest.(check bool) "async commit loses on OS crash" true lost_somewhere

let rapilog_os_crash_with_tpcc () =
  (* Same containment story under the richer workload. *)
  let config =
    {
      (failure_config Scenario.Rapilog 6L) with
      Scenario.workload = Scenario.Tpcc Workload.Tpcc_lite.default_config;
    }
  in
  let r = Experiment.run_failure config ~kind:Experiment.Os_crash ~after:(Time.ms 300) in
  Alcotest.(check bool) "durability ok" true (Experiment.durability_ok r);
  Alcotest.(check bool) "state exact" true r.Experiment.audit.Audit.state_exact

let durability_ok_semantics () =
  let r = run_power_cut Scenario.Unsafe_wcache 1L in
  (* Losing is fine for a mode whose promise excludes power cuts. *)
  Alcotest.(check bool) "lossy but within its promise" true (Experiment.durability_ok r)

let failure_reports_holdup_window () =
  let r = run_power_cut Scenario.Rapilog 7L in
  match r.Experiment.holdup_window with
  | Some window -> check_span "window from psu" (Time.ms 300) window
  | None -> Alcotest.fail "power cut must report the window"

let suites =
  [
    ( "harness.scenario",
      [
        case "mode names roundtrip" mode_names_roundtrip;
        case "durability promises" durability_promises;
        case "rapilog wiring" build_wires_rapilog;
        case "native wiring" build_wires_native;
        case "write-cache wiring" build_wires_wcache;
        case "virtualised wiring" build_virt_uses_virtio;
        case "hdd streaming bandwidth" hdd_streaming_bandwidth_sane;
      ] );
    ( "harness.steady",
      [
        case "commits something" steady_commits_something;
        case "rapilog beats sync on disk" steady_rapilog_beats_sync_on_disk;
        case "rapilog close to the unsafe bound" steady_rapilog_close_to_unsafe;
        case "sync latency is rotational" steady_sync_latency_is_rotational;
        case "rapilog latency is sub-ms" steady_rapilog_latency_is_sub_ms;
        case "logger stats presence" steady_logger_stats_present_only_for_rapilog;
        case "deterministic reruns" steady_deterministic;
        case "group commit scales sync with clients"
          steady_more_clients_more_sync_throughput;
      ] );
    ( "harness.failures",
      [
        case "power cut: safe modes lose nothing" power_cut_safe_modes_lose_nothing;
        case "power cut: rapilog with buffered data" power_cut_rapilog_had_buffered_data;
        case "power cut: write cache loses" power_cut_unsafe_wcache_loses;
        case "power cut: async commit loses" power_cut_async_commit_loses;
        case "os crash: only async commit loses" os_crash_matrix;
        case "os crash: async commit loses" os_crash_async_commit_loses;
        case "os crash under TPC-C" rapilog_os_crash_with_tpcc;
        case "durability_ok matches promises" durability_ok_semantics;
        case "hold-up window reported" failure_reports_holdup_window;
      ] );
  ]

(* -- Single-disk configuration (appended) ------------------------------------ *)

let single_disk_shares_device () =
  let built =
    Scenario.build { (with_mode Scenario.Rapilog) with Scenario.single_disk = true }
  in
  Alcotest.(check bool) "one physical device" true
    (built.Scenario.log_physical == built.Scenario.data_physical);
  Alcotest.(check bool) "data region offset above the log" true
    (built.Scenario.config.Scenario.pool.Dbms.Buffer_pool.data_start_lba
    >= 1_000_000)

let single_disk_steady_runs () =
  let r =
    Experiment.run_steady
      { (with_mode Scenario.Rapilog) with Scenario.single_disk = true }
  in
  Alcotest.(check bool)
    (Printf.sprintf "commits on a shared disk (%d)" r.Experiment.committed_in_window)
    true
    (r.Experiment.committed_in_window > 50)

let single_disk_durability_after_power_cut () =
  List.iter
    (fun mode ->
      let config =
        { (failure_config mode 11L) with Scenario.single_disk = true }
      in
      let r =
        Experiment.run_failure config ~kind:Experiment.Power_cut ~after:(Time.ms 300)
      in
      let lost = r.Experiment.audit.Audit.durability.Rapilog.Durability.lost in
      if lost <> [] then
        Alcotest.failf "%s lost %d txns on a shared disk" (Scenario.mode_name mode)
          (List.length lost);
      Alcotest.(check bool) "state exact" true r.Experiment.audit.Audit.state_exact)
    [ Scenario.Native_sync; Scenario.Rapilog ]

let single_disk_os_crash_recovers () =
  let config =
    { (failure_config Scenario.Rapilog 12L) with Scenario.single_disk = true }
  in
  let r = Experiment.run_failure config ~kind:Experiment.Os_crash ~after:(Time.ms 300) in
  Alcotest.(check bool) "durability ok" true (Experiment.durability_ok r);
  Alcotest.(check bool) "state exact" true r.Experiment.audit.Audit.state_exact

let ycsb_scenario_runs () =
  let r =
    Experiment.run_steady
      {
        (with_mode Scenario.Rapilog) with
        Scenario.workload =
          Scenario.Ycsb
            { Workload.Ycsb_lite.default_config with Workload.Ycsb_lite.keys = 1000 };
      }
  in
  Alcotest.(check bool) "ycsb commits" true (r.Experiment.committed_in_window > 50)

let single_disk_suite =
  ( "harness.single_disk",
    [
      case "shares one physical device" single_disk_shares_device;
      case "steady state runs" single_disk_steady_runs;
      case "power-cut durability on a shared disk" single_disk_durability_after_power_cut;
      case "os-crash recovery on a shared disk" single_disk_os_crash_recovers;
      case "ycsb workload through the harness" ycsb_scenario_runs;
    ] )

let suites = suites @ [ single_disk_suite ]

(* -- Striped data volume wiring (appended) ------------------------------------- *)

let data_volume_is_striped_by_default () =
  let built = Scenario.build (with_mode Scenario.Rapilog) in
  let model = (Storage.Block.info built.Scenario.data_physical).Storage.Block.model in
  Alcotest.(check bool) ("data volume: " ^ model) true
    (String.length model >= 6 && String.sub model 0 6 = "stripe")

let data_volume_single_spindle_opt_out () =
  let built =
    Scenario.build { (with_mode Scenario.Rapilog) with Scenario.data_spindles = 1 }
  in
  let model = (Storage.Block.info built.Scenario.data_physical).Storage.Block.model in
  Alcotest.(check bool) ("raw device: " ^ model) true
    (String.length model < 6 || String.sub model 0 6 <> "stripe")

let striped_data_failure_audit () =
  let config =
    { (failure_config Scenario.Rapilog 21L) with Scenario.data_spindles = 4 }
  in
  let r = Experiment.run_failure config ~kind:Experiment.Power_cut ~after:(Time.ms 300) in
  Alcotest.(check bool) "durability across a striped data volume" true
    (Experiment.durability_ok r && r.Experiment.audit.Audit.state_exact)

let stripe_suite =
  ( "harness.striped_data",
    [
      case "striped by default" data_volume_is_striped_by_default;
      case "single-spindle opt-out" data_volume_single_spindle_opt_out;
      case "power-cut audit over the stripe" striped_data_failure_audit;
    ] )

let suites = suites @ [ stripe_suite ]

(* -- Parallel fan-out (appended) ---------------------------------------------- *)

let parallel_map_preserves_order () =
  let squares = Parallel.map ~jobs:4 (fun n -> n * n) (List.init 50 Fun.id) in
  Alcotest.(check (list int)) "in submission order"
    (List.init 50 (fun n -> n * n))
    squares

let parallel_map_serial_fallback () =
  (* jobs=1 must not spawn domains: it runs on the calling domain, so
     effects of the caller's context (here: plain closures) behave
     exactly as List.map. *)
  Alcotest.(check (list int)) "jobs=1 degenerates to List.map"
    (List.map succ [ 1; 2; 3 ])
    (Parallel.map ~jobs:1 succ [ 1; 2; 3 ])

let parallel_map_propagates_exceptions () =
  match Parallel.map ~jobs:3 (fun n -> if n = 7 then failwith "boom" else n)
          [ 1; 7; 9 ]
  with
  | _ -> Alcotest.fail "expected the worker failure to re-raise"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

let parallel_sweep_equals_serial () =
  (* The tentpole determinism contract: fanning a sweep out across
     domains must be bit-identical to running it serially, because each
     scenario builds its own world from its own seed. *)
  let configs =
    List.concat_map
      (fun mode ->
        List.map
          (fun clients -> { (with_mode mode) with Scenario.clients })
          [ 1; 4 ])
      [ Scenario.Native_sync; Scenario.Rapilog; Scenario.Async_commit ]
  in
  let serial = Experiment.run_steady_batch ~jobs:1 configs in
  let parallel = Experiment.run_steady_batch ~jobs:4 configs in
  Alcotest.(check bool) "bit-identical results" true (serial = parallel)

let parallel_failure_trials_equal_serial () =
  let specs =
    List.init 3 (fun i ->
        ( { (failure_config Scenario.Rapilog (Int64.of_int (31 + i))) with
            Scenario.duration = Time.ms 400 },
          Time.ms (200 + (40 * i)) ))
  in
  let project (r : Experiment.failure_result) =
    (r.Experiment.acked, r.Experiment.durable_records, r.Experiment.redo_applied,
     r.Experiment.losers, Time.to_ns r.Experiment.cut_at)
  in
  let serial =
    Experiment.run_failure_batch ~jobs:1 ~kind:Experiment.Power_cut specs
  in
  let parallel =
    Experiment.run_failure_batch ~jobs:3 ~kind:Experiment.Power_cut specs
  in
  Alcotest.(check bool) "identical failure trials" true
    (List.map project serial = List.map project parallel)

let parallel_suite =
  ( "harness.parallel",
    [
      case "map preserves order" parallel_map_preserves_order;
      case "jobs=1 serial fallback" parallel_map_serial_fallback;
      case "exceptions propagate" parallel_map_propagates_exceptions;
      case "parallel sweep equals serial" parallel_sweep_equals_serial;
      case "parallel failure trials equal serial" parallel_failure_trials_equal_serial;
    ] )

let suites = suites @ [ parallel_suite ]
