lib/storage/disk_stats.mli: Desim Format
