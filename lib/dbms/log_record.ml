type t =
  | Begin of { txid : int }
  | Update of { txid : int; key : int; before : string; after : string }
  | Commit of { txid : int }
  | Abort of { txid : int }
  | Checkpoint of { redo_lsn : Lsn.t }
  | Noop of { filler : int }

let magic = 0xA55A

(* Framing: a 7-byte prefix (magic, kind, len), the body, then a trailing
   CRC-32 of everything from the kind byte onwards. Keeping the CRC last
   makes its covered region contiguous, so no temporary buffer is needed
   to check it. [header_size] is the total framing overhead. *)
let prefix_size = 7
let trailer_size = 4
let header_size = prefix_size + trailer_size
let max_body = 1 lsl 20

let pp fmt = function
  | Begin { txid } -> Format.fprintf fmt "Begin(%d)" txid
  | Update { txid; key; before; after } ->
      Format.fprintf fmt "Update(txid=%d key=%d %dB->%dB)" txid key
        (String.length before) (String.length after)
  | Commit { txid } -> Format.fprintf fmt "Commit(%d)" txid
  | Abort { txid } -> Format.fprintf fmt "Abort(%d)" txid
  | Checkpoint { redo_lsn } -> Format.fprintf fmt "Checkpoint(%a)" Lsn.pp redo_lsn
  | Noop { filler } -> Format.fprintf fmt "Noop(%d)" filler

let kind_code = function
  | Begin _ -> 1
  | Update _ -> 2
  | Commit _ -> 3
  | Abort _ -> 4
  | Checkpoint _ -> 5
  | Noop _ -> 6

let body_size = function
  | Begin _ | Commit _ | Abort _ -> 8
  | Update { before; after; _ } -> 8 + 8 + 4 + String.length before + 4 + String.length after
  | Checkpoint _ -> 8
  | Noop { filler } -> filler

let encoded_size t = header_size + body_size t

let encode_body t body =
  let set64 pos v = Bytes.set_int64_le body pos (Int64.of_int v) in
  match t with
  | Begin { txid } | Commit { txid } | Abort { txid } -> set64 0 txid
  | Checkpoint { redo_lsn } -> set64 0 (Lsn.to_int redo_lsn)
  | Noop _ -> ()
  | Update { txid; key; before; after } ->
      set64 0 txid;
      set64 8 key;
      Bytes.set_int32_le body 16 (Int32.of_int (String.length before));
      Bytes.blit_string before 0 body 20 (String.length before);
      let after_pos = 20 + String.length before in
      Bytes.set_int32_le body after_pos (Int32.of_int (String.length after));
      Bytes.blit_string after 0 body (after_pos + 4) (String.length after)

let encode t =
  let blen = body_size t in
  assert (blen <= max_body);
  let buf = Bytes.make (header_size + blen) '\000' in
  let body = Bytes.make blen '\000' in
  encode_body t body;
  Bytes.set_uint16_le buf 0 magic;
  Bytes.set_uint8 buf 2 (kind_code t);
  Bytes.set_int32_le buf 3 (Int32.of_int blen);
  Bytes.blit body 0 buf prefix_size blen;
  Bytes.set_int32_le buf (prefix_size + blen)
    (Crc32.digest_bytes buf ~pos:2 ~len:(prefix_size - 2 + blen));
  Bytes.unsafe_to_string buf

let encode_into t buf = Buffer.add_string buf (encode t)

let u64 s pos = Int64.to_int (String.get_int64_le s pos)
let u32 s pos = Int32.to_int (String.get_int32_le s pos)

let decode_body kind s ~pos ~len =
  let fits n = len >= n in
  match kind with
  | 1 when fits 8 -> Some (Begin { txid = u64 s pos })
  | 3 when fits 8 -> Some (Commit { txid = u64 s pos })
  | 4 when fits 8 -> Some (Abort { txid = u64 s pos })
  | 5 when fits 8 -> Some (Checkpoint { redo_lsn = Lsn.of_int (u64 s pos) })
  | 6 -> Some (Noop { filler = len })
  | 2 when fits 20 ->
      let blen = u32 s (pos + 16) in
      if blen < 0 || 20 + blen + 4 > len then None
      else begin
        let alen = u32 s (pos + 20 + blen) in
        if alen < 0 || 20 + blen + 4 + alen <> len then None
        else
          Some
            (Update
               {
                 txid = u64 s pos;
                 key = u64 s (pos + 8);
                 before = String.sub s (pos + 20) blen;
                 after = String.sub s (pos + 24 + blen) alen;
               })
      end
  | _ -> None

let decode s ~pos =
  let remaining = String.length s - pos in
  if remaining < header_size then None
  else if String.get_uint16_le s pos <> magic then None
  else begin
    let kind = String.get_uint8 s (pos + 2) in
    let blen = u32 s (pos + 3) in
    if blen < 0 || blen > max_body || remaining < header_size + blen then None
    else begin
      let crc = String.get_int32_le s (pos + prefix_size + blen) in
      if Crc32.digest s ~pos:(pos + 2) ~len:(prefix_size - 2 + blen) <> crc then
        None
      else
        match decode_body kind s ~pos:(pos + prefix_size) ~len:blen with
        | Some record -> Some (record, header_size + blen)
        | None -> None
    end
  end

let decode_stream s =
  let rec scan pos acc =
    match decode s ~pos with
    | Some (record, size) ->
        scan (pos + size) ((record, Lsn.of_int (pos + size)) :: acc)
    | None -> List.rev acc
  in
  scan 0 []
