open Desim

type config = { think_time : Time.span }

let default_config = { think_time = Time.zero_span }

let client_loop config ~gate ~client ~gen ~engine ~on_commit () =
  while true do
    (match gate with Some gate -> gate ~client | None -> ());
    let ops = gen ~client in
    let result = Dbms.Engine.exec engine ops in
    on_commit ~client result;
    if Time.compare_span config.think_time Time.zero_span > 0 then
      Process.sleep config.think_time
  done

let spawn ~vmm ?gate config ~count ~gen ~engine ~on_commit =
  assert (count > 0);
  List.init count (fun client ->
      Hypervisor.Vmm.spawn_guest vmm
        ~name:(Printf.sprintf "client-%d" client)
        (client_loop config ~gate ~client ~gen ~engine ~on_commit))
