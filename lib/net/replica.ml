open Desim

type t = {
  sim : Sim.t;
  device : Storage.Block.t;
  queue : (int * string) Queue.t;  (* (lba, data) awaiting the drain *)
  mutable entries_rev : (int * int * string) list;  (* (seq, lba, data) *)
  arrived : Resource.Condition.t;
  idle : Resource.Condition.t;
  mutable writing : bool;
  mutable received : int;
  mutable received_bytes : int;
  mutable drained_writes : int;
  m_drain : Metrics.Histogram.t option;
}

let drainer t () =
  while true do
    if Queue.is_empty t.queue then begin
      t.writing <- false;
      Resource.Condition.broadcast t.idle;
      Resource.Condition.wait t.arrived
    end
    else begin
      t.writing <- true;
      let lba, data = Queue.pop t.queue in
      let started =
        match t.m_drain with Some _ -> Metrics.Span.start t.sim | None -> 0
      in
      Storage.Block.write t.device ~lba data;
      (match t.m_drain with
      | Some hist -> Metrics.Span.finish hist t.sim started
      | None -> ());
      t.drained_writes <- t.drained_writes + 1
    end
  done

let create sim ~device () =
  let t =
    {
      sim;
      device;
      queue = Queue.create ();
      entries_rev = [];
      arrived = Resource.Condition.create sim;
      idle = Resource.Condition.create sim;
      writing = false;
      received = 0;
      received_bytes = 0;
      drained_writes = 0;
      m_drain =
        Option.map
          (fun reg -> Metrics.histogram reg "replica.drain")
          (Metrics.recording ());
    }
  in
  ignore (Process.spawn sim ~name:"replica-drain" (drainer t));
  t

let device t = t.device

let receive t ~seq ~lba ~data =
  t.received <- t.received + 1;
  t.received_bytes <- t.received_bytes + String.length data;
  t.entries_rev <- (seq, lba, data) :: t.entries_rev;
  Queue.push (lba, data) t.queue;
  Resource.Condition.signal t.arrived

let entries t = List.rev t.entries_rev

let prefix t =
  (* Longest consecutive prefix 1..m of the arrived sequence numbers.
     On a FIFO data link arrivals are already in order, so this is just
     a guarded count, but the walk stays correct either way. *)
  let next = ref 1 in
  List.iter (fun (seq, _, _) -> if seq = !next then incr next) (entries t);
  !next - 1
let received t = t.received
let received_bytes t = t.received_bytes
let drained_writes t = t.drained_writes

let quiesce t =
  while not (Queue.is_empty t.queue && not t.writing) do
    Resource.Condition.wait t.idle
  done
