(* tab6-restart: the full crash/recover/restart lifecycle, repeated.
   A RapiLog system runs under load, the guest dies, the next
   incarnation restarts from durable media and keeps going — five times
   over. Durability must hold at every generation, transaction ids must
   never repeat, and nothing acknowledged in any epoch may be lost. *)

open Desim
open Harness
open Bench_support

let wal_config = Dbms.Wal.default_config
let pool_config = Dbms.Buffer_pool.default_config

type world = {
  sim : Sim.t;
  vmm : Hypervisor.Vmm.t;
  log_raw : Storage.Block.t;
  log_path : Storage.Block.t;
  logger : Rapilog.Trusted_logger.t;
  data : Storage.Block.t;
  model : (int, string) Hashtbl.t;
  mutable acked : int list;
}

let build_world () =
  let sim = Sim.create ~seed:42L () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let log_raw = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let log_path, logger = Rapilog.attach ~vmm ~device:log_raw () in
  let data = Storage.Ssd.create sim Storage.Ssd.default in
  { sim; vmm; log_raw; log_path; logger; data; model = Hashtbl.create 4096; acked = [] }

let fresh_engine world =
  let wal = Dbms.Wal.create world.sim wal_config ~device:world.log_path in
  let pool =
    Dbms.Buffer_pool.create world.sim pool_config ~device:world.data
      ~wal_force:(fun ~page:_ lsn -> Dbms.Wal.force wal lsn)
  in
  Dbms.Engine.create ~vmm:world.vmm ~profile:Dbms.Engine_profile.postgres_like
    ~wal ~pool ()

let run_epoch world engine gen ~duration =
  let clients =
    List.init 4 (fun i ->
        Process.spawn world.sim
          ~name:(Printf.sprintf "client-%d" i)
          (fun () ->
            while true do
              let r = Dbms.Engine.exec engine (Workload.Microbench.next gen) in
              world.acked <- r.Dbms.Engine.txid :: world.acked;
              List.iter
                (fun (key, value) ->
                  match value with
                  | Some v -> Hashtbl.replace world.model key v
                  | None -> Hashtbl.remove world.model key)
                r.Dbms.Engine.writes
            done))
  in
  Process.sleep duration;
  (* The incarnation dies mid-flight. *)
  List.iter Process.cancel clients;
  Process.sleep (Time.ms 1);
  (* The trusted logger outlives it and finishes draining. *)
  Rapilog.Trusted_logger.quiesce world.logger

let audit world =
  let recovery =
    Dbms.Recovery.run ~log_device:world.log_raw ~data_device:world.data
      ~wal_config ~pool_config
  in
  let audit = Audit.check ~model:world.model ~acked:world.acked ~recovery in
  (recovery, audit)

let tab6 =
  {
    id = "tab6-restart";
    title = "Tab 6: repeated crash / recover / restart generations";
    description =
      "runs crash/recover/restart generations back-to-back, carrying state across each";
    run =
      (fun ~quick ->
        Report.section "Tab 6: five incarnations of one RapiLog database";
        let epochs = if quick then 3 else 5 in
        let duration = if quick then Time.ms 200 else Time.ms 400 in
        let world = build_world () in
        let gen =
          Workload.Microbench.create (Sim.rng world.sim)
            { Workload.Microbench.default_config with Workload.Microbench.keys = 2000 }
        in
        let rows = ref [] in
        ignore
          (Process.spawn world.sim ~name:"generations" (fun () ->
               for epoch = 1 to epochs do
                 let engine =
                   if epoch = 1 then fresh_engine world
                   else
                     fst
                       (Dbms.Restart.restart ~vmm:world.vmm
                          ~profile:Dbms.Engine_profile.postgres_like
                          ~log_device:world.log_path ~data_device:world.data
                          ~wal_config ~pool_config ())
                 in
                 run_epoch world engine gen ~duration;
                 let recovery, audit = audit world in
                 rows :=
                   [
                     string_of_int epoch;
                     string_of_int (List.length world.acked);
                     string_of_int recovery.Dbms.Recovery.durable_records;
                     string_of_int
                       (List.length audit.Audit.durability.Rapilog.Durability.lost);
                     bool_cell audit.Audit.state_exact;
                   ]
                   :: !rows
               done));
        Sim.run world.sim;
        Report.table
          ~columns:[ "incarnation"; "acked total"; "log records"; "lost"; "state-exact" ]
          ~rows:(List.rev !rows);
        Report.note
          "shape target: zero loss and exact state at every generation; the log and";
        Report.note "transaction-id sequence grow monotonically across incarnations");
  }

let experiments = [ tab6 ]
