(* Tests for the scenario-builder DSL (lib/scen) and the open-loop
   workload library it drives (Workload.Arrival, Workload.Churn).

   The DSL's claims are all about identity and purity: presets must be
   digest-identical to the legacy hand-rolled records, combinators on
   distinct axes must commute, a grid must enumerate exactly the
   cartesian product of its axes, and every arrival process must be a
   pure function of (seed, time) whose empirical rate matches its
   closed form. *)

open Desim
open Testu
module B = Scen.Builder
module Scenario = Harness.Scenario

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let check_rejects name axis config =
  match Scen.validate config with
  | Ok _ -> Alcotest.failf "%s: expected rejection" name
  | Error msg ->
      if not (contains msg axis) then
        Alcotest.failf "%s: message %S does not mention %S" name msg axis

(* -- presets: DSL == legacy records ------------------------------------ *)

let presets_digest_identical () =
  Alcotest.(check int) "nine presets" 9 (List.length Scen.preset_names);
  List.iter
    (fun name ->
      let mode =
        match Scenario.mode_of_name name with
        | Some m -> m
        | None -> Alcotest.failf "preset %s is not a mode name" name
      in
      let legacy = { Scenario.default with Scenario.mode } in
      Alcotest.(check string)
        ("preset " ^ name)
        (Scen.digest legacy)
        (Scen.digest (B.build (Scen.preset name))))
    Scen.preset_names

let preset_unknown_rejected () =
  match Scen.preset "floppy-mode" with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "lists valid names" true (contains msg "rapilog")
  | _ -> Alcotest.fail "unknown preset accepted"

(* The bench modules ported to the DSL (bench_support.base_config,
   bench_throughput fig2/fig3, bench_ycsb) must keep producing the
   records they used to hand-roll. These pin the ports by digest. *)
let ported_bench_configs_identical () =
  List.iter
    (fun quick ->
      let w = if quick then Time.ms 200 else Time.ms 400 in
      let d = if quick then Time.ms 800 else Time.sec 2 in
      let legacy_base =
        { Scenario.default with Scenario.warmup = w; duration = d }
      in
      let dsl_base = B.(start () |> warmup w |> duration d |> build) in
      Alcotest.(check string)
        "base_config" (Scen.digest legacy_base) (Scen.digest dsl_base);
      Alcotest.(check string) "fig3 ssd config"
        (Scen.digest
           { legacy_base with Scenario.device = Scenario.Flash Storage.Ssd.default })
        (Scen.digest B.(start ~base:dsl_base () |> ssd |> build));
      List.iter
        (fun engine ->
          Alcotest.(check string)
            ("fig2 profile " ^ engine.Dbms.Engine_profile.name)
            (Scen.digest { legacy_base with Scenario.profile = engine })
            (Scen.digest B.(start ~base:dsl_base () |> profile engine |> build)))
        Dbms.Engine_profile.all;
      List.iter
        (fun fraction ->
          let legacy =
            {
              legacy_base with
              Scenario.mode = Scenario.Rapilog;
              clients = 8;
              workload =
                Scenario.Ycsb
                  {
                    Workload.Ycsb_lite.default_config with
                    Workload.Ycsb_lite.read_fraction = fraction;
                  };
            }
          in
          let dsl =
            B.(
              start ~base:dsl_base ()
              |> mode Scenario.Rapilog |> clients 8
              |> workload (Scenario.Ycsb Workload.Ycsb_lite.default_config)
              |> read_fraction fraction |> build)
          in
          Alcotest.(check string) "fig9 ycsb config" (Scen.digest legacy)
            (Scen.digest dsl))
        [ 0.0; 0.5; 0.95 ])
    [ true; false ]

(* -- combinator laws ---------------------------------------------------- *)

(* Combinators on distinct axes commute: applying them in any order
   yields bit-identical configs. (Combinators on the *same* axis
   overwrite, so order matters there — last write wins, checked
   separately.) *)
let combinators_commute =
  prop "distinct-axis combinators commute" ~count:100
    QCheck2.Gen.(
      tup4 (int_range 1 64) (int_range 1 200) (int_range 1 4)
        (int_range 0 1000))
    (fun (n, ms, s, sd) ->
      let fs =
        [
          B.clients n;
          B.duration (Time.ms ms);
          B.streams s;
          B.seed (Int64.of_int sd);
          B.mode Scenario.Native_sync;
          B.nvme;
        ]
      in
      let apply order =
        Scen.digest (B.peek (List.fold_left (fun b f -> f b) (B.start ()) order))
      in
      apply fs = apply (List.rev fs))

let same_axis_last_write_wins () =
  let b = B.(start () |> clients 3 |> clients 7) in
  Alcotest.(check int) "last write" 7 (B.peek b).Scenario.clients

let grid_size_is_product =
  prop "grid size = product of axis sizes" ~count:100
    QCheck2.Gen.(tup3 (int_range 1 4) (int_range 1 4) (int_range 1 4))
    (fun (a, bn, c) ->
      let axis make n = List.init n (fun i -> make (i + 1)) in
      let grid =
        B.grid
          ~axes:
            [
              axis B.clients a;
              axis (fun i -> B.seed (Int64.of_int i)) bn;
              axis B.streams c;
            ]
          (B.start ())
      in
      List.length grid = a * bn * c)

let grid_is_row_major () =
  let grid =
    B.grid
      ~axes:[ [ B.clients 1; B.clients 2 ]; [ B.seed 7L; B.seed 8L ] ]
      (B.start ())
  in
  let cells =
    List.map
      (fun b ->
        let c = B.peek b in
        (c.Scenario.clients, c.Scenario.seed))
      grid
  in
  Alcotest.(check (list (pair int int64)))
    "first axis slowest"
    [ (1, 7L); (1, 8L); (2, 7L); (2, 8L) ]
    cells

let digest_sensitive_to_every_axis () =
  let base = Scen.digest (B.peek (B.start ())) in
  List.iter
    (fun (axis, f) ->
      if Scen.digest (B.peek (f (B.start ()))) = base then
        Alcotest.failf "axis %s did not change the digest" axis)
    [
      ("clients", B.clients 9);
      ("mode", B.mode Scenario.Async_commit);
      ("device", B.nvme);
      ("seed", B.seed 43L);
      ("streams", B.streams 2);
      ("arrival", B.open_loop (Workload.Arrival.Poisson { rate = 10. }));
      ("churn", B.churn (Some Workload.Churn.default));
    ]

let builder_records_errors () =
  let b = B.(start () |> keys (Uniform_keys 64) |> device_of_name "floppy") in
  Alcotest.(check int) "two errors" 2 (List.length (B.errors b));
  (match B.build b with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "mentions keys" true (contains msg "keys");
      Alcotest.(check bool) "mentions device" true (contains msg "floppy")
  | _ -> Alcotest.fail "build accepted an erroneous pipeline");
  (* fault-schedule entries ride alongside without touching the digest *)
  let faulted =
    B.(start () |> fault ~rate:0.5 ~kind:Harness.Crash_surface.Os_crash)
  in
  Alcotest.(check string) "faults leave config alone"
    (Scen.digest (B.peek (B.start ())))
    (Scen.digest (B.peek faulted));
  Alcotest.(check int) "fault recorded" 1 (List.length (B.faults faulted))

let stride_of_rate_cases () =
  Alcotest.(check int) "rate 1.0" 1 (Scen.stride_of_rate 1.0);
  Alcotest.(check int) "rate 0.5" 2 (Scen.stride_of_rate 0.5);
  Alcotest.(check int) "rate 0.01" 100 (Scen.stride_of_rate 0.01)

(* -- the validator ------------------------------------------------------ *)

let validate_accepts_presets () =
  List.iter
    (fun name ->
      match Scen.validate (B.peek (Scen.preset name)) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "preset %s rejected: %s" name msg)
    Scen.preset_names

let validate_accepts_workload_grid () =
  List.iter
    (fun (wname, shape) ->
      List.iter
        (fun m ->
          let b = B.mode m (B.start () |> shape) in
          match Scen.validate (B.peek b) with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "%s/%s rejected: %s" wname
                           (Scenario.mode_name m) msg)
        [ Scenario.Rapilog; Scenario.Native_sync ])
    Scen.Workloads.all

let validate_rejections () =
  let d = Scenario.default in
  check_rejects "zero clients" "clients" { d with Scenario.clients = 0 };
  check_rejects "zero streams" "log-streams" { d with Scenario.log_streams = 0 };
  check_rejects "streams on single disk" "single-disk"
    { d with Scenario.single_disk = true; log_streams = 2 };
  check_rejects "streams under serial policy" "Serial"
    {
      d with
      Scenario.log_streams = 2;
      profile =
        Dbms.Engine_profile.with_commit_policy d.Scenario.profile
          Dbms.Commit_policy.Serial;
    };
  check_rejects "shard tier outside sharded mode" "rapilog-sharded"
    {
      d with
      Scenario.shard = { d.Scenario.shard with Shard.Tier.shards = 4 };
    };
  check_rejects "sharded mode on single disk" "single-disk"
    {
      d with
      Scenario.mode = Scenario.Rapilog_sharded;
      single_disk = true;
      data_spindles = 1;
    };
  check_rejects "quorum larger than cluster" "quorum"
    {
      d with
      Scenario.mode = Scenario.Rapilog_quorum;
      quorum = { d.Scenario.quorum with Net.Quorum.quorum = 5 };
    };
  check_rejects "quorum config outside quorum mode" "rapilog-quorum"
    {
      d with
      Scenario.quorum = { d.Scenario.quorum with Net.Quorum.replicas = 5; quorum = 3 };
    };
  check_rejects "replication config outside replicated mode" "rapilog-replicated"
    {
      d with
      Scenario.net =
        { d.Scenario.net with Net.Replication.policy = Net.Replication.Async_replica };
    };
  check_rejects "churn under open loop" "open-loop"
    {
      d with
      Scenario.arrival = Workload.Arrival.Open_loop (Workload.Arrival.Poisson { rate = 100. });
      churn = Some Workload.Churn.default;
    };
  check_rejects "malformed arrival shape" "arrival"
    {
      d with
      Scenario.arrival = Workload.Arrival.Open_loop (Workload.Arrival.Poisson { rate = 0. });
    };
  check_rejects "malformed churn schedule" "churn"
    {
      d with
      Scenario.churn =
        Some { Workload.Churn.default with Workload.Churn.active_fraction = 0. };
    };
  check_rejects "read fraction out of range" "read-fraction"
    {
      d with
      Scenario.workload =
        Scenario.Ycsb
          { Workload.Ycsb_lite.default_config with Workload.Ycsb_lite.read_fraction = 1.5 };
    };
  check_rejects "empty key space" "keys"
    {
      d with
      Scenario.workload =
        Scenario.Micro
          { Workload.Microbench.default_config with Workload.Microbench.keys = 0 };
    };
  check_rejects "zero-length window" "duration"
    { d with Scenario.duration = Time.zero_span };
  (* every violation is reported, not just the first *)
  match
    Scen.validate { d with Scenario.clients = 0; log_streams = 0 }
  with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error msg ->
      Alcotest.(check bool) "both violations reported" true
        (contains msg "clients" && contains msg "log-streams")

(* -- the workload library ----------------------------------------------- *)

let workloads_compose_and_build () =
  List.iter
    (fun (wname, shape) ->
      let config = B.(start () |> shape |> build) in
      match (wname, config.Scenario.arrival, config.Scenario.churn) with
      | "client-churn", Workload.Arrival.Closed_loop, Some _ -> ()
      | "client-churn", _, _ -> Alcotest.fail "churn shape lost its schedule"
      | _, Workload.Arrival.Open_loop _, None -> ()
      | _, _, _ -> Alcotest.failf "%s is not open-loop" wname)
    Scen.Workloads.all

let steady_twin_flattens_shapes () =
  let flash = B.(start () |> Scen.Workloads.flash_crowd) in
  let twin = Scen.Workloads.steady_twin flash in
  (match (B.peek twin).Scenario.arrival with
  | Workload.Arrival.Open_loop (Workload.Arrival.Poisson { rate }) ->
      check_near "twin rate is the flash base" 400.0 rate
  | _ -> Alcotest.fail "flash twin is not steady Poisson");
  let churned = B.(start () |> Scen.Workloads.client_churn) in
  Alcotest.(check bool) "churn twin drops the schedule" true
    ((B.peek (Scen.Workloads.steady_twin churned)).Scenario.churn = None);
  (* hot-key is already steady: its twin is bit-identical *)
  let hot = B.(start () |> Scen.Workloads.hot_key) in
  Alcotest.(check string) "hot-key twin identical"
    (Scen.digest (B.peek hot))
    (Scen.digest (B.peek (Scen.Workloads.steady_twin hot)))

(* -- arrival processes: determinism and closed forms -------------------- *)

let gen_shape =
  QCheck2.Gen.(
    let rate = map (fun r -> float_of_int r) (int_range 50 2000) in
    oneof
      [
        map (fun r -> Workload.Arrival.Poisson { rate = r }) rate;
        map3
          (fun r m (at, decay) ->
            Workload.Arrival.Flash_crowd
              {
                base = r;
                mult = float_of_int m;
                at = Time.ms at;
                decay = Time.ms decay;
              })
          rate (int_range 1 10)
          (pair (int_range 0 500) (int_range 10 400));
        map3
          (fun r a p ->
            Workload.Arrival.Diurnal
              {
                mean = r;
                amplitude = float_of_int a /. 10.0;
                period = Time.ms p;
              })
          rate (int_range 0 10) (int_range 50 1000);
      ])

let arrival_deterministic_in_seed =
  prop "arrival stream is a pure function of (shape, seed)" ~count:60
    QCheck2.Gen.(pair gen_shape (int_range 0 10_000))
    (fun (shape, sd) ->
      let seed = Int64.of_int sd in
      let times () =
        Workload.Arrival.times shape ~seed ~until:(Time.ms 500) ~limit:4000
      in
      List.map Time.span_to_ns (times ()) = List.map Time.span_to_ns (times ()))

let arrival_times_ordered_and_bounded =
  prop "arrival instants are ordered, distinct and inside the horizon"
    ~count:60
    QCheck2.Gen.(pair gen_shape (int_range 0 10_000))
    (fun (shape, sd) ->
      let until = Time.ms 500 in
      let ts =
        Workload.Arrival.times shape ~seed:(Int64.of_int sd) ~until ~limit:4000
      in
      let ns = List.map Time.span_to_ns ts in
      List.for_all (fun t -> t >= 0 && t <= Time.span_to_ns until) ns
      && List.sort_uniq compare ns = ns)

(* The empirical count over a horizon must match the closed-form
   integral of the intensity. The count is Poisson-distributed with
   mean [expected], so a 6-sigma band (plus slack for tiny means) makes
   the property deterministic-in-practice for any generated case. *)
let arrival_empirical_rate_matches_closed_form =
  prop "empirical arrivals match the closed-form mean" ~count:60
    QCheck2.Gen.(pair gen_shape (int_range 0 10_000))
    (fun (shape, sd) ->
      let until = Time.sec 2 in
      let expected = Workload.Arrival.expected_arrivals shape ~until in
      let ts =
        Workload.Arrival.times shape ~seed:(Int64.of_int sd) ~until
          ~limit:(int_of_float expected * 3 + 1000)
      in
      let n = float_of_int (List.length ts) in
      Float.abs (n -. expected) <= (6.0 *. sqrt expected) +. 10.0)

(* expected_arrivals is the integral of rate_at: cross-check the two
   closed forms against each other numerically. *)
let arrival_closed_forms_consistent =
  prop "expected_arrivals integrates rate_at" ~count:60 gen_shape
    (fun shape ->
      let until_ns = 1_500_000_000 in
      let steps = 3_000 in
      let dt = until_ns / steps in
      let rate_at ns = Workload.Arrival.rate_at shape (Time.ns ns) in
      let sum = ref 0.0 in
      for i = 0 to steps - 1 do
        let a = rate_at (i * dt) and b = rate_at (((i + 1) * dt) - 1) in
        sum := !sum +. ((a +. b) /. 2.0 *. (float_of_int dt /. 1e9))
      done;
      let closed =
        Workload.Arrival.expected_arrivals shape ~until:(Time.ns until_ns)
      in
      Float.abs (!sum -. closed) <= (0.02 *. closed) +. 1.0)

let arrival_max_rate_is_envelope =
  prop "max_rate bounds rate_at everywhere" ~count:60 gen_shape (fun shape ->
      let bound = Workload.Arrival.max_rate shape in
      List.for_all
        (fun ms -> Workload.Arrival.rate_at shape (Time.ms ms) <= bound +. 1e-9)
        (List.init 100 (fun i -> i * 17)))

(* -- churn schedules ---------------------------------------------------- *)

let gen_schedule =
  QCheck2.Gen.(
    map3
      (fun p f staggered ->
        {
          Workload.Churn.period = Time.ms p;
          active_fraction = float_of_int f /. 10.0;
          staggered;
        })
      (int_range 10 500) (int_range 1 10) bool)

let churn_until_change_is_next_transition =
  prop "until_change is positive and crosses no transition early" ~count:100
    QCheck2.Gen.(
      tup4 gen_schedule (int_range 1 32) (int_range 0 31) (int_range 0 2_000))
    (fun (schedule, clients, client, now_ms) ->
      let client = client mod clients in
      let now = Time.ms now_ms in
      let here = Workload.Churn.active schedule ~clients ~client ~now in
      let gap = Workload.Churn.until_change schedule ~clients ~client ~now in
      let gap_ns = Time.span_to_ns gap in
      gap_ns > 0
      && List.for_all
           (fun k ->
             let t = Time.ns (Time.span_to_ns now + (gap_ns * k / 8)) in
             Workload.Churn.active schedule ~clients ~client ~now:t = here)
           [ 0; 1; 3; 5; 7 ])

let churn_active_fraction_respected =
  prop "time-averaged activity equals the active fraction" ~count:60
    QCheck2.Gen.(pair gen_schedule (int_range 1 32))
    (fun (schedule, clients) ->
      let period_ns = Time.span_to_ns schedule.Workload.Churn.period in
      let samples = 512 in
      let active_samples = ref 0 in
      for client = 0 to clients - 1 do
        for i = 0 to samples - 1 do
          let now = Time.ns (i * period_ns / samples) in
          if Workload.Churn.active schedule ~clients ~client ~now then
            incr active_samples
        done
      done;
      let measured =
        float_of_int !active_samples /. float_of_int (samples * clients)
      in
      (* sampling a step function on a grid: allow one grid cell of slack *)
      Float.abs (measured -. schedule.Workload.Churn.active_fraction)
      <= (1.0 /. float_of_int samples *. 2.0) +. 0.01)

let suites =
  [
    ( "scen.presets",
      [
        case "nine presets digest-identical to legacy" presets_digest_identical;
        case "unknown preset rejected" preset_unknown_rejected;
        case "ported bench configs digest-identical" ported_bench_configs_identical;
      ] );
    ( "scen.builder",
      [
        combinators_commute;
        case "same-axis last write wins" same_axis_last_write_wins;
        grid_size_is_product;
        case "grid is row-major" grid_is_row_major;
        case "digest sensitive to every axis" digest_sensitive_to_every_axis;
        case "combinator errors accumulate" builder_records_errors;
        case "stride of fault rate" stride_of_rate_cases;
      ] );
    ( "scen.validate",
      [
        case "accepts the presets" validate_accepts_presets;
        case "accepts the workload grid" validate_accepts_workload_grid;
        case "rejects inconsistent axes" validate_rejections;
      ] );
    ( "scen.workloads",
      [
        case "shapes compose and build" workloads_compose_and_build;
        case "steady twins flatten the shapes" steady_twin_flattens_shapes;
      ] );
    ( "workload.arrival",
      [
        arrival_deterministic_in_seed;
        arrival_times_ordered_and_bounded;
        arrival_empirical_rate_matches_closed_form;
        arrival_closed_forms_consistent;
        arrival_max_rate_is_envelope;
      ] );
    ( "workload.churn",
      [
        churn_until_change_is_next_transition;
        churn_active_fraction_respected;
      ] );
  ]
