(* fig12-replication: the cost of the replicated durability domain.
   Throughput and commit latency of the three ack policies as the
   network round-trip grows, on the rotational disk and on flash. The
   replica-ack policy pays exactly one RTT per commit; local and
   async-replica pay nothing — the device barely matters because the
   RapiLog commit path acks from the trusted buffer either way. The
   machine-readable version of this experiment (with the machine-loss
   sweep it buys) is replication.exe → BENCH_PR5.json. *)

open Harness
open Bench_support

let rtts_us ~quick = if quick then [ 50; 1000 ] else [ 0; 50; 200; 1000; 4000 ]

let cell ~quick ~device ~policy ~rtt_us =
  let one_way =
    {
      Net.Link.default with
      Net.Link.latency = Net.Link.Constant (Desim.Time.ns (rtt_us * 1000 / 2));
    }
  in
  steady
    {
      (base_config ~quick) with
      Scenario.mode = Scenario.Rapilog_replicated;
      device;
      clients = 8;
      net = { Net.Replication.policy; data_link = one_way; ack_link = one_way };
    }

let fig12 =
  {
    id = "fig12-replication";
    title = "Fig 12: ack policies vs network RTT (RapiLog-R)";
    description =
      "rapilog-R ack policies (local, replica, quorum) against network round-trip time";
    run =
      (fun ~quick ->
        Report.section
          "Fig 12: replicated logger — throughput/latency vs link RTT (8 \
           clients, TPC-C-lite)";
        List.iter
          (fun (device_label, device) ->
            Report.kv "device" device_label;
            Report.table
              ~columns:
                [ "rtt us"; "policy"; "txn/s"; "p50 us"; "p99 us"; "vs local" ]
              ~rows:
                (List.concat_map
                   (fun rtt_us ->
                     let baseline =
                       cell ~quick ~device ~policy:Net.Replication.Local ~rtt_us
                     in
                     List.map
                       (fun policy ->
                         let r = cell ~quick ~device ~policy ~rtt_us in
                         [
                           string_of_int rtt_us;
                           Net.Replication.policy_name policy;
                           Report.float_cell r.Experiment.throughput;
                           Printf.sprintf "%.0f" r.Experiment.latency_p50_us;
                           Printf.sprintf "%.0f" r.Experiment.latency_p99_us;
                           Printf.sprintf "%.2fx"
                             (r.Experiment.throughput
                             /. baseline.Experiment.throughput);
                         ])
                       Net.Replication.all_policies)
                   (rtts_us ~quick));
            print_newline ())
          [
            ("hdd-7200rpm", Scenario.Disk Storage.Hdd.default_7200rpm);
            ("ssd", Scenario.Flash Storage.Ssd.default);
          ]);
  }

let experiments = [ fig12 ]
