(* The binary min-heap backend: three parallel arrays (times and
   sequence numbers unboxed, payloads plain), hole-based sifts, no
   per-event allocation in the steady state. This was the [Event_queue]
   implementation through PR 7; it now serves as the reference backend
   the timer wheel is model-checked and benchmarked against, and as the
   wheel's own overflow store for far-future events. Unlike the wheel it
   accepts inserts in any time order. *)

type 'a t = {
  mutable times : int array;      (* Time.to_ns of each entry *)
  mutable seqs : int array;       (* insertion order, breaks time ties *)
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
  mutable max_size : int;         (* high-water mark, for observability *)
}

(* Payload arrays cannot be pre-filled before the first element exists,
   so a queue starts at capacity zero and allocates on the first [add]. *)
let create () =
  { times = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0;
    max_size = 0 }

let lt q i tj sj = q.times.(i) < tj || (q.times.(i) = tj && q.seqs.(i) < sj)

let grow q payload =
  let cap = Array.length q.times in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let times = Array.make cap' 0 in
  let seqs = Array.make cap' 0 in
  let payloads = Array.make cap' payload in
  Array.blit q.times 0 times 0 q.size;
  Array.blit q.seqs 0 seqs 0 q.size;
  Array.blit q.payloads 0 payloads 0 q.size;
  q.times <- times;
  q.seqs <- seqs;
  q.payloads <- payloads

let set q i time seq payload =
  q.times.(i) <- time;
  q.seqs.(i) <- seq;
  q.payloads.(i) <- payload

(* Hole-based sifts: carry the displaced element in registers and write
   it exactly once, instead of swapping three arrays at every level. *)

let rec sift_up q i time seq payload =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q parent time seq then set q i time seq payload
    else begin
      set q i q.times.(parent) q.seqs.(parent) q.payloads.(parent);
      sift_up q parent time seq payload
    end
  end
  else set q i time seq payload

let rec sift_down q i time seq payload =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  if l >= q.size then set q i time seq payload
  else begin
    let smallest = if r < q.size && lt q r q.times.(l) q.seqs.(l) then r else l in
    if lt q smallest time seq then begin
      set q i q.times.(smallest) q.seqs.(smallest) q.payloads.(smallest);
      sift_down q smallest time seq payload
    end
    else set q i time seq payload
  end

(* The raw form the timer wheel's overflow store uses: the wheel assigns
   sequence numbers itself (one counter across both structures), so the
   heap must accept them verbatim rather than stamp its own. *)
let add_seq q ~time_ns ~seq payload =
  if q.size = Array.length q.times then grow q payload;
  q.size <- q.size + 1;
  if q.size > q.max_size then q.max_size <- q.size;
  sift_up q (q.size - 1) time_ns seq payload

let add q ~time payload =
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  add_seq q ~time_ns:(Time.to_ns time) ~seq payload

let length q = q.size
let max_length q = q.max_size
let scheduled q = q.next_seq
let is_empty q = q.size = 0

let min_time_ns q =
  assert (q.size > 0);
  q.times.(0)

let min_seq q =
  assert (q.size > 0);
  q.seqs.(0)

let min_time q = Time.of_ns (min_time_ns q)

(* Shared removal of the root. The freed slot is overwritten with a live
   payload so popped closures are not retained by the heap; only a fully
   drained queue keeps its final payload reachable until the next add. *)
let remove_min q =
  let root = q.payloads.(0) in
  q.size <- q.size - 1;
  let n = q.size in
  if n > 0 then begin
    let time = q.times.(n) and seq = q.seqs.(n) and payload = q.payloads.(n) in
    sift_down q 0 time seq payload;
    q.payloads.(n) <- q.payloads.(0)
  end;
  root

let pop_min q =
  assert (q.size > 0);
  remove_min q

let pop q =
  if q.size = 0 then None
  else begin
    let time = Time.of_ns q.times.(0) in
    Some (time, remove_min q)
  end

let drain_one q ~f =
  if q.size = 0 then false
  else begin
    let time = Time.of_ns q.times.(0) in
    f time (remove_min q);
    true
  end

let peek_time q = if q.size = 0 then None else Some (Time.of_ns q.times.(0))
