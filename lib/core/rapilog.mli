(** RapiLog: durable transaction logging through verification.

    This library is the paper's contribution: commit log writes are
    acknowledged from a buffer held in a trusted protection domain on a
    verified hypervisor, and reach the physical disk asynchronously —
    with durability guaranteed across DBMS crashes, guest-OS crashes and
    power cuts (within the PSU hold-up budget).

    - {!Ring_buffer} — the trusted buffer of in-order block writes;
    - {!Trusted_logger} — the logger component and its drain process;
    - {!Durability} — the guarantee, stated as checkable predicates;
    - {!Invariants} — a runtime monitor of the properties verification
      would establish;
    - {!Tenant} — tenant-tagged transaction identifiers for the sharded
      multi-tenant logger tier;
    - {!attach} — wire a logger between a guest VM and a physical disk. *)

module Ring_buffer = Ring_buffer
module Trusted_logger = Trusted_logger
module Durability = Durability
module Invariants = Invariants
module Tenant = Tenant

val attach :
  vmm:Hypervisor.Vmm.t ->
  ?power:Power.Power_domain.t ->
  ?trace:Desim.Trace.t ->
  ?config:Trusted_logger.config ->
  device:Storage.Block.t ->
  unit ->
  Storage.Block.t * Trusted_logger.t
(** Build the trusted domain, the logger with its drain process, and the
    paravirtual frontend the guest's WAL writes to. If a power domain is
    given, the logger's power-fail notification and the physical
    device's loss of power at window expiry are hooked up. The returned
    block device is the guest's log disk: writes acknowledge from the
    trusted buffer and are guaranteed to reach [device] eventually. *)
