type entry = { lba : int; data : string }

(* Entries live in two parallel circular arrays (unboxed ints for the
   LBAs, strings for the payloads) instead of a [Queue.t] of records:
   pushing writes two slots, popping reads them back, and nothing else
   is allocated. Capacity is kept a power of two so the circular index
   is a mask. *)
type t = {
  sector_size : int;
  capacity_bytes : int;
  mutable lbas : int array;
  mutable datas : string array;
  mutable stamps : int array;  (* caller-supplied push stamps (ns) *)
  mutable head : int;     (* index of the oldest entry *)
  mutable count : int;
  mutable bytes : int;
  mutable pushed : int;
  mutable popped : int;
  mutable max_bytes : int;
  mutable push_count : int;
  mutable pop_count : int;
}

let initial_slots = 64

let create ~sector_size ~capacity_bytes =
  assert (sector_size > 0 && capacity_bytes >= sector_size);
  {
    sector_size;
    capacity_bytes;
    lbas = Array.make initial_slots 0;
    datas = Array.make initial_slots "";
    stamps = Array.make initial_slots 0;
    head = 0;
    count = 0;
    bytes = 0;
    pushed = 0;
    popped = 0;
    max_bytes = 0;
    push_count = 0;
    pop_count = 0;
  }

(* A deep copy sharing nothing mutable: the slot arrays are flat ints
   and immutable strings, so three Array.copy calls capture the whole
   state. The fork-based crash sweep snapshots the logger's ring this
   way at every chunk boundary. *)
let copy t =
  {
    t with
    lbas = Array.copy t.lbas;
    datas = Array.copy t.datas;
    stamps = Array.copy t.stamps;
  }

let capacity_bytes t = t.capacity_bytes
let bytes_used t = t.bytes
let length t = t.count
let is_empty t = t.count = 0
let fits t n = t.bytes + n <= t.capacity_bytes

let slot t i = (t.head + i) land (Array.length t.lbas - 1)

let grow t =
  let cap = Array.length t.lbas in
  let lbas = Array.make (2 * cap) 0 in
  let datas = Array.make (2 * cap) "" in
  let stamps = Array.make (2 * cap) 0 in
  for i = 0 to t.count - 1 do
    let j = slot t i in
    lbas.(i) <- t.lbas.(j);
    datas.(i) <- t.datas.(j);
    stamps.(i) <- t.stamps.(j)
  done;
  t.lbas <- lbas;
  t.datas <- datas;
  t.stamps <- stamps;
  t.head <- 0

let try_push ?(stamp = 0) t ~lba ~data =
  let len = String.length data in
  assert (len > 0 && len mod t.sector_size = 0);
  if not (fits t len) then false
  else begin
    if t.count = Array.length t.lbas then grow t;
    let j = slot t t.count in
    t.lbas.(j) <- lba;
    t.datas.(j) <- data;
    t.stamps.(j) <- stamp;
    t.count <- t.count + 1;
    t.bytes <- t.bytes + len;
    t.pushed <- t.pushed + len;
    t.push_count <- t.push_count + 1;
    if t.bytes > t.max_bytes then t.max_bytes <- t.bytes;
    true
  end

(* Drop the oldest entry, clearing its slot so the string is not
   retained by the ring after it leaves. *)
let drop_head t =
  let j = t.head in
  let len = String.length t.datas.(j) in
  t.datas.(j) <- "";
  t.head <- (j + 1) land (Array.length t.lbas - 1);
  t.count <- t.count - 1;
  t.bytes <- t.bytes - len;
  t.popped <- t.popped + len;
  t.pop_count <- t.pop_count + 1

let head_stamp t = if t.count = 0 then 0 else t.stamps.(t.head)

let pop t =
  if t.count = 0 then None
  else begin
    let j = t.head in
    let e = { lba = t.lbas.(j); data = t.datas.(j) } in
    drop_head t;
    Some e
  end

let sectors t data = String.length data / t.sector_size

(* Coalescing works directly on the circular arrays: one scan decides
   which entries merge and the extent of the merged write, then the
   batch is blitted straight into the result buffer.

   The scan is region-aware: an entry whose LBA falls outside the
   accumulated run belongs to a different log region (with S parallel
   WAL streams the guest's writes interleave S regions spaced far
   apart), so it is skipped — not a barrier — and the run keeps
   growing behind it. Without this, interleaved streams defeat
   coalescing entirely and every drained entry pays a full seek.

   Skipping must never reorder writes to the same sectors: a later
   entry is only taken if it overlaps no skipped entry's extent
   (tracked in [skip_lo]/[skip_hi]), so per-sector write order — and
   with it each stream's prefix order, which recovery depends on — is
   preserved. An in-run entry that exceeds [max_bytes] still stops the
   scan, as before. *)
let pop_coalesced t ~max_bytes =
  if t.count = 0 then None
  else begin
    let base = t.lbas.(t.head) in
    let end_lba = ref (base + sectors t t.datas.(t.head)) in
    let batch_bytes = ref (String.length t.datas.(t.head)) in
    let take = Array.make t.count false in
    take.(0) <- true;
    let n = ref 1 in
    let contiguous = ref true in
    let skip_lo = Array.make t.count 0 in
    let skip_hi = Array.make t.count 0 in
    let skips = ref 0 in
    let overlaps_skipped lba stop =
      let hit = ref false in
      for k = 0 to !skips - 1 do
        if lba < skip_hi.(k) && skip_lo.(k) < stop then hit := true
      done;
      !hit
    in
    (try
       for i = 1 to t.count - 1 do
         let j = slot t i in
         let lba = t.lbas.(j) and len = String.length t.datas.(j) in
         let stop = lba + (len / t.sector_size) in
         if lba >= base && lba <= !end_lba && not (overlaps_skipped lba stop)
         then
           if !batch_bytes + len <= max_bytes then begin
             end_lba := max !end_lba stop;
             batch_bytes := !batch_bytes + len;
             take.(i) <- true;
             if i <> !n then contiguous := false;
             incr n
           end
           else raise Exit
         else begin
           skip_lo.(!skips) <- lba;
           skip_hi.(!skips) <- stop;
           incr skips
         end
       done
     with Exit -> ());
    let merged = Bytes.make ((!end_lba - base) * t.sector_size) '\000' in
    if !contiguous then
      (* The batch is a queue prefix (always the case with one stream):
         drop heads as before. *)
      for _ = 1 to !n do
        let j = t.head in
        let data = t.datas.(j) in
        Bytes.blit_string data 0 merged
          ((t.lbas.(j) - base) * t.sector_size)
          (String.length data);
        drop_head t
      done
    else begin
      (* Selected entries are interleaved with survivors from other
         regions: blit the batch in queue order, then compact the
         survivors toward the head, preserving their order. *)
      let kept = ref 0 in
      let total = t.count in
      for i = 0 to total - 1 do
        let j = slot t i in
        if take.(i) then begin
          let data = t.datas.(j) in
          Bytes.blit_string data 0 merged
            ((t.lbas.(j) - base) * t.sector_size)
            (String.length data);
          t.bytes <- t.bytes - String.length data;
          t.popped <- t.popped + String.length data;
          t.pop_count <- t.pop_count + 1
        end
        else begin
          let dst = slot t !kept in
          t.lbas.(dst) <- t.lbas.(j);
          t.datas.(dst) <- t.datas.(j);
          t.stamps.(dst) <- t.stamps.(j);
          incr kept
        end
      done;
      for i = !kept to total - 1 do
        t.datas.(slot t i) <- ""
      done;
      t.count <- !kept
    end;
    Some { lba = base; data = Bytes.unsafe_to_string merged }
  end

let iter t f =
  for i = 0 to t.count - 1 do
    let j = slot t i in
    f { lba = t.lbas.(j); data = t.datas.(j) }
  done

let pushed_bytes t = t.pushed
let popped_bytes t = t.popped
let max_bytes_used t = t.max_bytes
let pushes t = t.push_count
let pops t = t.pop_count
