(** The electrical domain tying the PSU to devices and software.

    A power cut proceeds in two phases:
    + at the instant of the cut, every power-fail handler fires (this is
      the NMI-like warning the trusted logger reacts to), receiving the
      hold-up window it has left;
    + when the window expires, every registered device loses power
      ({!Storage.Block.power_cut}), dropping volatile caches and tearing
      in-flight writes.

    Handlers registered after a cut never fire. *)

type t

val create : Desim.Sim.t -> Psu.config -> t
val psu : t -> Psu.config
val window : t -> Desim.Time.span

val on_power_fail : t -> (window:Desim.Time.span -> unit) -> unit
(** Handlers run in registration order at the instant of the cut. *)

val register_device : t -> Storage.Block.t -> unit

val cut : t -> unit
(** Cut mains power now. Idempotent. *)

val cut_at : t -> Desim.Time.t -> unit
(** Schedule a cut. *)

val lose : t -> unit
(** Machine loss: the whole box vanishes {e now}. Unlike {!cut} there
    is no residual-energy window — devices lose power at this very
    instant (tearing in-flight writes, dropping volatile caches), and
    power-fail handlers then run with [~window] zero. Durable media
    survives (it can be read back by recovery); everything volatile —
    including the trusted buffer the PSU window normally protects — is
    gone. Idempotent, and a no-op after a {!cut}. *)

val is_failing : t -> bool
(** True from the instant of the cut onwards. *)

val dead_at : t -> Desim.Time.t option
(** The instant the hold-up window expires, once a cut has happened. *)
