type report = {
  committed : int;
  recovered : int;
  lost : int list;
  extra : int list;
}

module Int_set = Set.Make (Int)

let compare_txids ~committed ~recovered =
  let committed_set = Int_set.of_list committed in
  let recovered_set = Int_set.of_list recovered in
  let lost = Int_set.elements (Int_set.diff committed_set recovered_set) in
  let extra = Int_set.elements (Int_set.diff recovered_set committed_set) in
  {
    committed = Int_set.cardinal committed_set;
    recovered = Int_set.cardinal (Int_set.inter committed_set recovered_set);
    lost;
    extra;
  }

(* The same comparison for callers that maintain the acknowledged set
   as a sorted array: one merge walk, no per-call set building. The
   crash sweep calls this once per crash point. *)
let compare_sorted ~committed ~n ~recovered =
  let lost = ref [] and extra = ref [] and inter = ref 0 in
  let i = ref 0 in
  List.iter
    (fun r ->
      while !i < n && committed.(!i) < r do
        lost := committed.(!i) :: !lost;
        incr i
      done;
      if !i < n && committed.(!i) = r then begin
        incr i;
        incr inter
      end
      else extra := r :: !extra)
    recovered;
  while !i < n do
    lost := committed.(!i) :: !lost;
    incr i
  done;
  { committed = n; recovered = !inter; lost = List.rev !lost; extra = List.rev !extra }

let holds report = report.lost = []

type store_diff = { key : int; expected : string option; actual : string option }

let diff_stores ~expected ~actual =
  let diffs = ref [] in
  Hashtbl.iter
    (fun key value ->
      match Hashtbl.find_opt actual key with
      | Some v when String.equal v value -> ()
      | actual_value ->
          diffs := { key; expected = Some value; actual = actual_value } :: !diffs)
    expected;
  Hashtbl.iter
    (fun key value ->
      if not (Hashtbl.mem expected key) then
        diffs := { key; expected = None; actual = Some value } :: !diffs)
    actual;
  List.sort (fun a b -> Int.compare a.key b.key) !diffs

(* Coalescing merges overlapping sector rewrites, so drained bytes can be
   smaller than acked bytes; conservation is "nothing acknowledged is still
   sitting in the buffer". *)
let logger_conservation logger = Trusted_logger.buffered_bytes logger = 0

let pp_report fmt report =
  Format.fprintf fmt "committed=%d recovered=%d lost=%d extra=%d" report.committed
    report.recovered (List.length report.lost) (List.length report.extra)
