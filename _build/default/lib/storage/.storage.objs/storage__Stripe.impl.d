lib/storage/stripe.ml: Array Block Bytes Desim Disk_stats List Printf Process Resource Sim String Time
