lib/core/trusted_logger.ml: Desim Hypervisor Power Process Resource Ring_buffer Sim Storage String Time Trace
