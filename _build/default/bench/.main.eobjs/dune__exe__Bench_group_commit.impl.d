bench/bench_group_commit.ml: Bench_support Dbms Experiment Harness List Report Scenario
