(* The observability registry: named counters, gauges and log-linear
   latency histograms, plus the span helpers the commit-path
   instrumentation uses.

   Storage discipline matches {!Event_queue} and {!Journal}: a
   histogram is one flat int array of bucket counts plus a 3-slot float
   array (sum/min/max — a float array so the scalar updates stay
   unboxed), a counter is a single mutable int, and a gauge is a 2-slot
   float array (value/high-water). Observing on the hot path therefore
   allocates nothing on the minor heap.

   Enablement follows the {!Journal} ambient-slot pattern: components
   consult {!recording} at creation time and keep resolved metric
   handles if a registry is active. With no registry installed the
   per-component handle is [None] and the instrumented code paths cost
   one branch — the perf smoke gate holds the hot path at zero minor
   words per event either way, and instrumentation never reads the rng
   or schedules events, so enabling metrics cannot perturb a run. *)

(* ---- log-linear histogram ------------------------------------------- *)

(* HDR-style bucketing over integer nanoseconds: values below [sub] get
   exact 1 ns buckets; every octave [2^e, 2^(e+1)) above is split into
   [sub] equal linear sub-buckets, giving a relative bucket width of
   1/sub (6.25%) over the whole range. 63-bit ints cap the exponent at
   61, so the table covers 1 ns to ~2^62 ns (~146 years) in 944 flat
   slots. The public unit is microseconds (the repo's latency unit);
   conversion happens at the observe/query boundary. *)

let sub_bits = 4
let sub = 1 lsl sub_bits
let max_exp = 61
let num_buckets = sub + ((max_exp - sub_bits + 1) * sub)

let bucket_index_ns n =
  if n < sub then if n < 0 then 0 else n
  else begin
    let e = ref sub_bits in
    while n lsr (!e + 1) > 0 do
      incr e
    done;
    let e = !e in
    sub + ((e - sub_bits) * sub) + ((n lsr (e - sub_bits)) land (sub - 1))
  end

(* Bucket bounds in nanoseconds, as floats (the top bucket's upper bound
   is 2^62, one past max_int). *)
let bucket_lower_ns i =
  if i < 0 || i >= num_buckets then invalid_arg "Metrics: bucket index";
  if i < sub then float_of_int i
  else begin
    let oct = (i - sub) / sub and s = (i - sub) mod sub in
    let e = oct + sub_bits in
    float_of_int (1 lsl e) +. (float_of_int s *. float_of_int (1 lsl (e - sub_bits)))
  end

let bucket_width_ns i =
  if i < 0 || i >= num_buckets then invalid_arg "Metrics: bucket index";
  if i < sub then 1. else float_of_int (1 lsl ((i - sub) / sub))

let bucket_upper_ns i = bucket_lower_ns i +. bucket_width_ns i

let ns_per_us = 1000.

let bucket_lower_us i = bucket_lower_ns i /. ns_per_us
let bucket_upper_us i = bucket_upper_ns i /. ns_per_us
let bucket_index_us v =
  bucket_index_ns (if v <= 0. then 0 else int_of_float (v *. ns_per_us))

module Histogram = struct
  type t = {
    buckets : int array;
    mutable count : int;
    acc : float array;  (* [| sum_us; min_us; max_us |] *)
  }

  let create () = { buckets = Array.make num_buckets 0; count = 0; acc = Array.make 3 0. }

  let observe h v =
    let n = if v <= 0. then 0 else int_of_float (v *. ns_per_us) in
    let i = bucket_index_ns n in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.count <- h.count + 1;
    h.acc.(0) <- h.acc.(0) +. v;
    if h.count = 1 then begin
      h.acc.(1) <- v;
      h.acc.(2) <- v
    end
    else begin
      if v < h.acc.(1) then h.acc.(1) <- v;
      if v > h.acc.(2) then h.acc.(2) <- v
    end

  let observe_span h span = observe h (Time.span_to_float_us span)

  let count h = h.count
  let sum h = h.acc.(0)
  let min h = if h.count = 0 then nan else h.acc.(1)
  let max h = if h.count = 0 then nan else h.acc.(2)
  let mean h = if h.count = 0 then nan else h.acc.(0) /. float_of_int h.count

  let quantile h q =
    if h.count = 0 then nan
    else begin
      let q = if q < 0. then 0. else if q > 1. then 1. else q in
      let target = Float.max 1. (q *. float_of_int h.count) in
      let rec find i cum =
        let here = h.buckets.(i) in
        let cum' = cum + here in
        if here > 0 && float_of_int cum' >= target then
          let into = (target -. float_of_int cum) /. float_of_int here in
          (bucket_lower_ns i +. (into *. bucket_width_ns i)) /. ns_per_us
        else find (i + 1) cum'
      in
      find 0 0
    end

  let merge_into ~into src =
    for i = 0 to num_buckets - 1 do
      into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
    done;
    if src.count > 0 then begin
      if into.count = 0 then begin
        into.acc.(1) <- src.acc.(1);
        into.acc.(2) <- src.acc.(2)
      end
      else begin
        if src.acc.(1) < into.acc.(1) then into.acc.(1) <- src.acc.(1);
        if src.acc.(2) > into.acc.(2) then into.acc.(2) <- src.acc.(2)
      end;
      into.count <- into.count + src.count;
      into.acc.(0) <- into.acc.(0) +. src.acc.(0)
    end

  let nonempty_buckets h =
    let rec collect i acc =
      if i < 0 then acc
      else if h.buckets.(i) = 0 then collect (i - 1) acc
      else collect (i - 1) ((bucket_lower_us i, bucket_upper_us i, h.buckets.(i)) :: acc)
    in
    collect (num_buckets - 1) []
end

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr c = c.n <- c.n + 1
  let add c d = c.n <- c.n + d
  let get c = c.n
end

module Gauge = struct
  type t = { v : float array }  (* [| value; high-water |] *)

  let create () = { v = Array.make 2 0. }

  let set g x =
    g.v.(0) <- x;
    if x > g.v.(1) then g.v.(1) <- x

  let add g dx = set g (g.v.(0) +. dx)
  let get g = g.v.(0)
  let high_water g = g.v.(1)
end

(* ---- the registry ---------------------------------------------------- *)

type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let resolve t name make match_existing =
  match Hashtbl.find_opt t.tbl name with
  | Some existing -> (
      match match_existing existing with
      | Some m -> m
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name existing)))
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl name
        (match m with
        | `C c -> Counter c
        | `G g -> Gauge g
        | `H h -> Histogram h);
      m

let counter t name =
  match
    resolve t name
      (fun () -> `C (Counter.create ()))
      (function Counter c -> Some (`C c) | _ -> None)
  with
  | `C c -> c
  | _ -> assert false

let gauge t name =
  match
    resolve t name
      (fun () -> `G (Gauge.create ()))
      (function Gauge g -> Some (`G g) | _ -> None)
  with
  | `G g -> g
  | _ -> assert false

let histogram t name =
  match
    resolve t name
      (fun () -> `H (Histogram.create ()))
      (function Histogram h -> Some (`H h) | _ -> None)
  with
  | `H h -> h
  | _ -> assert false

let names t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [])

let find t name = Hashtbl.find_opt t.tbl name

let fold t f acc =
  List.fold_left (fun acc name -> f acc name (Hashtbl.find t.tbl name)) acc (names t)

(* ---- ambient enablement ---------------------------------------------- *)

let current : t option ref = ref None

let recording () = !current
let start_recording t = current := Some t
let stop_recording () = current := None

let with_recording t f =
  start_recording t;
  Fun.protect ~finally:stop_recording f

(* ---- spans ----------------------------------------------------------- *)

module Span = struct
  let start sim = Time.to_ns (Sim.now sim)

  let finish h sim started_ns =
    Histogram.observe h
      (float_of_int (Time.to_ns (Sim.now sim) - started_ns) /. ns_per_us)
end
