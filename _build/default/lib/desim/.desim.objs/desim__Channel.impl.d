lib/desim/channel.ml: Process Queue Sim
