lib/dbms/recovery.ml: Buffer Buffer_pool Hashtbl Int List Log_record Lsn Page Storage String Wal
