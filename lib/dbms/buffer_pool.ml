open Desim

type config = {
  capacity_pages : int;
  page_bytes : int;
  keys_per_page : int;
  data_start_lba : int;
}

let default_config =
  { capacity_pages = 512; page_bytes = 8192; keys_per_page = 16; data_start_lba = 0 }

type slot = { page : Page.t; mutable stamp : int }

type t = {
  sim : Sim.t;
  config : config;
  device : Storage.Block.t;
  wal_force : page:int -> Lsn.t -> unit;
  slots : (int, slot) Hashtbl.t;  (* page id -> slot *)
  allocated : (int, unit) Hashtbl.t;  (* page ids with an on-device image *)
  winner_parity : (int, int) Hashtbl.t;
      (* page id -> slot holding the newest intact image; flushes target
         the other slot so the newest image is never overwritten *)
  initial_extent : int;  (* device extent when the pool was created *)
  fetch_mutex : Resource.Mutex.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable page_writes : int;
}

let create sim config ~device ~wal_force =
  let ss = (Storage.Block.info device).Storage.Block.sector_size in
  assert (config.page_bytes mod ss = 0);
  assert (config.capacity_pages > 0 && config.keys_per_page > 0);
  {
    sim;
    config;
    device;
    wal_force;
    slots = Hashtbl.create config.capacity_pages;
    allocated = Hashtbl.create 1024;
    winner_parity = Hashtbl.create 1024;
    initial_extent = Storage.Block.durable_extent device;
    fetch_mutex = Resource.Mutex.create sim;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    page_writes = 0;
  }

let config t = t.config
let slot_count = 2

let lba_of_page config ~sector_size id =
  config.data_start_lba + (id * slot_count * (config.page_bytes / sector_size))

let sector_size t = (Storage.Block.info t.device).Storage.Block.sector_size
let sectors_per_page t = t.config.page_bytes / sector_size t

let slot_lba t id parity =
  lba_of_page t.config ~sector_size:(sector_size t) id
  + (parity * sectors_per_page t)

let touch t slot =
  t.clock <- t.clock + 1;
  slot.stamp <- t.clock

let flush_page_locked t page =
  if Page.is_dirty page then begin
    (* Snapshot first: updates racing with the force below must not leak
       into an image whose LSN the WAL has not covered. *)
    let image = Page.serialize page ~page_bytes:t.config.page_bytes in
    let snapshot_lsn = page.Page.page_lsn in
    t.wal_force ~page:page.Page.id snapshot_lsn;
    let target =
      match Hashtbl.find_opt t.winner_parity page.Page.id with
      | Some winner -> 1 - winner
      | None -> 0
    in
    Storage.Block.write t.device ~lba:(slot_lba t page.Page.id target) image;
    Hashtbl.replace t.winner_parity page.Page.id target;
    Hashtbl.replace t.allocated page.Page.id ();
    t.page_writes <- t.page_writes + 1;
    if Lsn.equal page.Page.page_lsn snapshot_lsn then page.Page.rec_lsn <- None
    else
      (* Updated while flushing: still dirty, and redo from the snapshot
         LSN is a safe (conservative) restart point. *)
      page.Page.rec_lsn <- Some snapshot_lsn
  end

let evict_victim t =
  (* Oldest clean page if any; otherwise oldest dirty page, flushed on the
     way out. *)
  let candidate =
    Hashtbl.fold
      (fun _ slot best ->
        let better current =
          match current with
          | None -> true
          | Some chosen ->
              let clean s = not (Page.is_dirty s.page) in
              if clean slot <> clean chosen then clean slot
              else slot.stamp < chosen.stamp
        in
        if better best then Some slot else best)
      t.slots None
  in
  match candidate with
  | None -> ()
  | Some slot ->
      flush_page_locked t slot.page;
      Hashtbl.remove t.slots slot.page.Page.id;
      t.evictions <- t.evictions + 1

(* Pick the newest intact image of the two slot copies; [None] if
   neither parses. *)
let pick_newest id = function
  | [] -> None
  | images ->
      List.fold_left
        (fun best (parity, image) ->
          match Page.deserialize image with
          | Some page when page.Page.id = id -> (
              match best with
              | Some (_, chosen) when Lsn.(page.Page.page_lsn <= chosen.Page.page_lsn)
                ->
                  best
              | Some _ | None -> Some (parity, page))
          | Some _ | None -> best)
        None images

let fetch t id =
  let lba = lba_of_page t.config ~sector_size:(sector_size t) id in
  (* Only slots with an on-device image are read: pages this pool wrote
     back, plus anything on the device before the pool existed. A slot
     never written is a fresh allocation — real engines extend the file
     and materialise an empty page without I/O. *)
  let on_device = Hashtbl.mem t.allocated id || lba < t.initial_extent in
  if not on_device then Page.create ~id
  else begin
    let spp = sectors_per_page t in
    let pair = Storage.Block.read t.device ~lba ~sectors:(slot_count * spp) in
    let image parity =
      (parity, String.sub pair (parity * t.config.page_bytes) t.config.page_bytes)
    in
    match pick_newest id [ image 0; image 1 ] with
    | Some (parity, page) ->
        Hashtbl.replace t.winner_parity id parity;
        page
    | None -> Page.create ~id
  end

let install t page ~dirty_at ~parity =
  page.Page.rec_lsn <- dirty_at;
  t.clock <- t.clock + 1;
  Hashtbl.replace t.slots page.Page.id { page; stamp = t.clock };
  (* Whether or not its image is current, the slot now exists on device
     once flushed; treating it as allocated means a later eviction+refetch
     reads the image instead of fabricating an empty page. *)
  Hashtbl.replace t.allocated page.Page.id ();
  match parity with
  | Some parity -> Hashtbl.replace t.winner_parity page.Page.id parity
  | None -> ()

let with_page t ~key f =
  let id = Page.page_of_key ~keys_per_page:t.config.keys_per_page key in
  let slot =
    match Hashtbl.find_opt t.slots id with
    | Some slot ->
        t.hits <- t.hits + 1;
        slot
    | None ->
        Resource.Mutex.with_lock t.fetch_mutex (fun () ->
            (* Another process may have fetched it while we waited. *)
            match Hashtbl.find_opt t.slots id with
            | Some slot ->
                t.hits <- t.hits + 1;
                slot
            | None ->
                t.misses <- t.misses + 1;
                let page = fetch t id in
                while Hashtbl.length t.slots >= t.config.capacity_pages do
                  evict_victim t
                done;
                let slot = { page; stamp = 0 } in
                Hashtbl.replace t.slots id slot;
                slot)
  in
  touch t slot;
  f slot.page

let mark_dirty _t page ~lsn =
  match page.Page.rec_lsn with
  | None -> page.Page.rec_lsn <- Some lsn
  | Some _ -> ()

let flush_page t page = flush_page_locked t page

let oldest_dirty t ~limit =
  let dirty =
    Hashtbl.fold
      (fun _ slot acc -> if Page.is_dirty slot.page then slot :: acc else acc)
      t.slots []
  in
  let by_age = List.sort (fun a b -> Int.compare a.stamp b.stamp) dirty in
  List.filteri (fun i _ -> i < limit) by_age

let spawn_cleaner t domain ~interval ~batch =
  assert (Time.compare_span interval Time.zero_span > 0 && batch > 0);
  Hypervisor.Domain.spawn domain ~name:"bgwriter" (fun () ->
      while true do
        Process.sleep interval;
        List.iter
          (fun slot -> flush_page_locked t slot.page)
          (oldest_dirty t ~limit:batch)
      done)

let dirty_pages t =
  Hashtbl.fold
    (fun _ slot acc -> if Page.is_dirty slot.page then slot.page :: acc else acc)
    t.slots []

let flush_all t = List.iter (flush_page t) (dirty_pages t)

let min_rec_lsn t =
  Hashtbl.fold
    (fun _ slot acc ->
      match (slot.page.Page.rec_lsn, acc) with
      | None, acc -> acc
      | Some l, None -> Some l
      | Some l, Some best -> Some (Lsn.min l best))
    t.slots None

let cached_pages t = Hashtbl.length t.slots
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let page_writes t = t.page_writes
