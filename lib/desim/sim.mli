(** The simulation world: a clock and an event queue.

    Everything in a simulation — processes, devices, failure injectors —
    boils down to closures scheduled on this queue. The run loop pops
    events in (time, insertion) order and executes them; executing an event
    may schedule further events. *)

type t

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] builds an empty world whose root {!Rng.t} is seeded
    with [seed] (default [1L]). *)

val now : t -> Time.t
(** Current simulated instant. *)

val rng : t -> Rng.t
(** The world's root generator; components should {!Rng.split} it at
    construction time rather than share it at runtime. *)

val seed : t -> int64
(** The seed the world was created with; reported so a run can always be
    reproduced. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when the clock reaches [time]. [time]
    must not be in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> unit
(** [schedule_after t d f] runs [f] [d] from now; [d] must be
    non-negative. *)

val schedule_now : t -> (unit -> unit) -> unit
(** Runs [f] at the current instant, after already-queued events for this
    instant. *)

val run : ?until:Time.t -> t -> unit
(** Execute events until the queue drains or the clock would pass [until].
    When stopped by [until], the clock is left exactly at [until]. *)

val step : t -> bool
(** Execute a single event; [false] if the queue was empty. *)

val events_executed : t -> int
(** Total events executed so far. Two simulations built identically (same
    seed, same construction order) execute identical event sequences, so
    an event index names the same instant in both — this is what lets the
    crash-surface explorer enumerate event boundaries in one replay and
    stop a fresh replay at any chosen boundary. *)

val run_to_event : t -> int -> bool
(** [run_to_event t n] executes events until [events_executed t >= n] or
    the queue drains; returns whether the boundary was reached. The clock
    is left at the time of the last executed event — the caller stands
    exactly on the event boundary and may inject state changes (a power
    cut, a guest crash) before resuming with {!run} or {!step}. *)

val pending : t -> int
(** Number of queued events, for tests and debugging. *)

val max_pending : t -> int
(** High-water mark of {!pending} over the run — how many events were
    ever simultaneously outstanding. Maintained unconditionally (one
    compare per insert); the metrics report surfaces it. *)

val events_scheduled : t -> int
(** Total events ever scheduled, executed or still pending. *)
