lib/workload/key_dist.ml: Desim Rng
