lib/core/trusted_logger.mli: Desim Hypervisor Power Storage
