(** The tenant registry: who owns which tenant.

    Tenants map to shards through a fixed-size bucket table — the
    classic consistent-bucket layout: [bucket = mix64 tenant mod
    buckets] never changes for a tenant, while the bucket → shard
    assignment is the mutable part that rebalancing edits. Moving a
    bucket moves every tenant hashing into it and nothing else, so a
    {!split} is O(buckets moved) with no per-tenant state to migrate:
    per-tenant sequence numbers live with the tenant, not the shard,
    and recovery merges a tenant's appends across every shard that ever
    held its bucket ({!Recover.audit}). *)

type t

val create : shards:int -> ?buckets:int -> unit -> t
(** [create ~shards ()] assigns [buckets] (default 1024, must be a
    power of two) round-robin across [shards]; requires
    [1 <= shards <= buckets]. *)

val shards : t -> int
(** Number of shards the table was created over. *)

val bucket_count : t -> int
(** Size of the bucket table. *)

val bucket_of_tenant : t -> tenant:int -> int
(** The bucket a tenant hashes into — a pure function of the tenant id
    and table size, unaffected by rebalancing. *)

val shard_of_tenant : t -> tenant:int -> int
(** The shard currently owning the tenant's bucket. *)

val owned : t -> int -> int
(** [owned t shard] is the number of buckets the shard currently
    owns. *)

val split : t -> source:int -> target:int -> int
(** Reassign the upper half (by bucket index) of [source]'s buckets to
    [target] and return how many buckets moved. The {!epoch} is bumped
    only when at least one bucket actually moved — a split of an
    already-empty source changes nothing and is a no-op.
    In-flight appends already routed to [source] complete there; new
    arrivals for the moved tenants route to [target] with their
    sequence numbers continuing — the rebalance protocol needs no
    quiesce because per-tenant recovery takes the union of both shards'
    durable prefixes (see [docs/SHARDING.md]). *)

val epoch : t -> int
(** Rebalance epoch: 0 at creation, +1 per {!split} that moved at
    least one bucket. *)

val moves : t -> int
(** Total buckets moved by all splits so far. *)
