(** Elastic client churn: deterministic join/leave schedules.

    A churn schedule gates closed-loop clients on and off, modelling an
    elastic client population (sessions joining and leaving) rather than
    a fixed fleet. Client [i] of [clients] is {e joined} during the
    first [active_fraction] of each period of its own cycle; with
    [staggered] set, client [i]'s cycle is shifted by
    [i * period / clients] so the population ramps smoothly instead of
    breathing in lockstep.

    All schedule arithmetic is exact integer nanoseconds and pure in
    (schedule, clients, client, now) — no randomness — so replays and
    the crash-surface sweep see identical join/leave instants. *)

type schedule = {
  period : Desim.Time.span;  (** one full join/leave cycle *)
  active_fraction : float;  (** joined fraction of each cycle, [0 < f <= 1] *)
  staggered : bool;  (** shift client [i] by [i * period / clients] *)
}

val default : schedule
(** 500 ms cycles, half the fleet joined, staggered. *)

val validate : schedule -> (unit, string) result

val active : schedule -> clients:int -> client:int -> now:Desim.Time.span -> bool
(** Is [client] (of [clients]) joined at elapsed time [now]? *)

val until_change : schedule -> clients:int -> client:int -> now:Desim.Time.span -> Desim.Time.span
(** Strictly positive gap from [now] to the client's next join/leave
    transition — what a parked client sleeps. *)
