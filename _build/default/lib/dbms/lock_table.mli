(** Exclusive per-key locks (strict two-phase locking).

    Waiters are queued FIFO per key. Locks are reentrant for their owner.
    Callers avoid deadlock by acquiring keys in sorted order (the engine
    sorts each transaction's write set); the table itself does no
    deadlock detection. *)

type t

val create : Desim.Sim.t -> t

val lock : t -> txid:int -> key:int -> unit
(** Blocks the calling process until the lock is granted. *)

val try_lock : t -> txid:int -> key:int -> bool

val unlock : t -> txid:int -> key:int -> unit
(** Requires the caller to own the lock; hands it to the next waiter. *)

val unlock_all : t -> txid:int -> keys:int list -> unit

val owner : t -> key:int -> int option
val locked_count : t -> int
(** Number of currently-held locks. *)
