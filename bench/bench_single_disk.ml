(* fig8-single-disk: the cost argument. A dedicated log disk is the
   standard way to shield synchronous commits from data I/O; it is also
   an extra spindle per database. When log and data share one disk, the
   head ping-pongs between the log region and the page region — sync
   commit pays a seek on top of the rotational wait, while RapiLog's
   drain batches survive the sharing far better. *)

open Harness
open Bench_support

let fig8 =
  {
    id = "fig8-single-disk";
    title = "Fig 8: dedicated log disk vs shared single disk";
    description =
      "costs a shared log+data disk against the dedicated-log-device layout";
    run =
      (fun ~quick ->
        Report.section
          "Fig 8: dedicated log disk vs single shared disk (8 clients, TPC-C-lite)";
        let run mode single_disk =
          steady
            {
              (base_config ~quick) with
              Scenario.mode;
              clients = 8;
              single_disk;
              (* Frequent checkpoints generate the competing data I/O. *)
              checkpoint_interval = Some (Desim.Time.ms 250);
            }
        in
        let modes = [ Scenario.Native_sync; Scenario.Virt_sync; Scenario.Rapilog ] in
        let rows =
          List.map
            (fun mode ->
              let dedicated = run mode false in
              let shared = run mode true in
              [
                Scenario.mode_name mode;
                Report.float_cell dedicated.Experiment.throughput;
                Report.float_cell shared.Experiment.throughput;
                Printf.sprintf "%.0f%%"
                  (100.
                  *. (1.
                     -. (shared.Experiment.throughput
                        /. dedicated.Experiment.throughput)));
                Report.float_cell shared.Experiment.latency_p99_us;
              ])
            modes
        in
        Report.table
          ~columns:
            [ "config"; "dedicated txn/s"; "shared txn/s"; "sharing penalty"; "shared p99 us" ]
          ~rows;
        Report.note
          "shape target: sharing hurts sync configurations more than rapilog -";
        Report.note
          "rapilog removes the reason to buy a dedicated log spindle");
  }

let experiments = [ fig8 ]
