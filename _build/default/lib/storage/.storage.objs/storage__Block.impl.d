lib/storage/block.ml: Bytes Desim Disk_stats Hashtbl String
