(* Tests for the quorum-replicated trusted logger (RapiLog-Q): the
   merge of per-replica durable prefixes, the message-level election
   protocol's safety under its tolerated fault envelope, and the
   simulated runtime's handoff — counters, watermark/term monotonicity
   across successive elections, and recovery coverage of every
   quorum-acked commit. *)

open Desim
open Testu
module P = Net.Quorum.Protocol

(* -- merge_prefix --------------------------------------------------------- *)

(* A deterministic global stream: entry [seq] always carries the same
   (lba, data), as FIFO links guarantee in the real system. *)
let data_of seq = Printf.sprintf "entry-%06d" seq
let entry_of seq = (seq, seq * 2, data_of seq)

(* Longest consecutive prefix 1..m a node's stream covers. *)
let prefix_of entries =
  let next = ref 1 in
  List.iter (fun (seq, _, _) -> if seq = !next then incr next) entries;
  !next - 1

(* Per node: a consecutive prefix plus (optionally) a few entries beyond
   a gap — the shape a reordering-free link can never produce, which the
   merge must ignore rather than resurrect. *)
let gen_node_lists =
  let open QCheck2.Gen in
  list_size (int_range 1 6)
    (let* prefix = int_range 0 15 in
     let* gap_extras = int_range 0 3 in
     return
       (List.init prefix (fun i -> entry_of (i + 1))
       @ List.init gap_extras (fun i -> entry_of (prefix + 2 + i))))

(* Coverage: the merge is exactly the seqs 1..max-prefix in order, with
   the stream's own payloads — so for every quorum size k, the k-th
   largest per-node prefix (an upper bound on any quorum-acked
   watermark) is fully covered. *)
let merge_covers_law lists =
  let merged = Net.Quorum.merge_prefix lists in
  let prefixes = List.sort (fun a b -> compare b a) (List.map prefix_of lists) in
  let maxp = match prefixes with [] -> 0 | p :: _ -> p in
  let seqs = List.map (fun (seq, _, _) -> seq) merged in
  seqs = List.init maxp (fun i -> i + 1)
  && List.for_all
       (fun (seq, lba, data) -> lba = seq * 2 && data = data_of seq)
       merged
  && List.for_all (fun acked -> acked <= List.length merged) prefixes

(* Idempotence: merging the merge changes nothing, alone or alongside
   the original node lists. *)
let merge_idempotent_law lists =
  let merged = Net.Quorum.merge_prefix lists in
  Net.Quorum.merge_prefix [ merged ] = merged
  && Net.Quorum.merge_prefix (merged :: lists) = merged

let shuffle key lists =
  List.mapi (fun i l -> (((i + 1) * 1103515245) + key, l)) lists
  |> List.sort compare |> List.map snd

(* Order-insensitivity over replica permutations. *)
let merge_permutation_law (lists, key) =
  let merged = Net.Quorum.merge_prefix lists in
  Net.Quorum.merge_prefix (List.rev lists) = merged
  && Net.Quorum.merge_prefix (shuffle key lists) = merged

(* -- protocol state machine ----------------------------------------------- *)

(* Random schedules over the protocol alphabet, capped at the tolerated
   fault envelope for (n = 3, k = 2): the primary plus at most k - 1 = 1
   replica may die. Safety must hold at every step — the committed
   watermark is monotone and [check] stays empty. *)
type pop =
  | P_append
  | P_deliver of int
  | P_collect of int
  | P_lose_primary
  | P_lose of int
  | P_campaign of int

let gen_pop =
  let open QCheck2.Gen in
  let* kind = int_range 0 5 in
  let* r = int_range 0 2 in
  return
    (match kind with
    | 0 -> P_append
    | 1 -> P_deliver r
    | 2 -> P_collect r
    | 3 -> P_lose_primary
    | 4 -> P_lose r
    | _ -> P_campaign r)

let protocol_random_law ops =
  let t = P.create ~replicas:3 ~quorum:2 in
  let rlosses = ref 0 in
  let prev_commit = ref 0 in
  let ok = ref true in
  List.iter
    (fun op ->
      (match op with
      | P_append -> if P.can_append t then ignore (P.append t)
      | P_deliver r -> if P.can_deliver t r then P.deliver t r
      | P_collect r -> if P.can_collect t r then P.collect t r
      | P_lose_primary -> if P.can_lose_primary t then P.lose_primary t
      | P_lose r ->
          if !rlosses < 1 && P.can_lose t r then begin
            incr rlosses;
            P.lose t r
          end
      | P_campaign r -> if P.can_campaign t r then P.campaign t r);
      if P.commit_watermark t < !prev_commit then ok := false;
      prev_commit := P.commit_watermark t;
      if P.check t <> [] then ok := false)
    ops;
  !ok

(* The vote rule's refusal: a candidate whose watermark misses a
   committed entry is refused by every replica holding it — at least k
   of them — so it can never reach the n - k + 1 adoption quorum. *)
let behind_candidate_refused () =
  let t = P.create ~replicas:3 ~quorum:2 in
  P.seed t ~primary_len:3 ~prefixes:[| 3; 3; 1 |] ~committed:3 ~term:1;
  P.lose_primary t;
  P.campaign t 2;
  for r = 0 to 2 do
    while P.can_deliver t r do
      P.deliver t r
    done
  done;
  for r = 0 to 2 do
    while P.can_collect t r do
      P.collect t r
    done
  done;
  Alcotest.(check bool) "behind candidate stalls" true (P.lead t = P.Candidate 2);
  Alcotest.(check int) "only its own adoption" 1 (P.adopts t);
  Alcotest.(check (list string)) "committed prefix intact" [] (P.check t)

(* The best candidate wins, and its full-log catch-up re-establishes
   prefix matching on the lagging replica. *)
let best_candidate_catches_up () =
  let t = P.create ~replicas:3 ~quorum:2 in
  P.seed t ~primary_len:3 ~prefixes:[| 3; 3; 1 |] ~committed:3 ~term:1;
  P.lose_primary t;
  (match P.best_candidate t with
  | Some c -> Alcotest.(check int) "best candidate holds the watermark" 0 c
  | None -> Alcotest.fail "no candidate");
  P.campaign t 0;
  for r = 0 to 2 do
    while P.can_deliver t r do
      P.deliver t r
    done
  done;
  for r = 0 to 2 do
    while P.can_collect t r do
      P.collect t r
    done
  done;
  Alcotest.(check bool) "elected" true (P.lead t = P.Replica_leader 0);
  (* Catch-up appends land on the fresh channels; drain them. *)
  for r = 0 to 2 do
    while P.can_deliver t r do
      P.deliver t r
    done
  done;
  Alcotest.(check int) "lagging replica caught up" 3
    (List.length (P.node_log t 2));
  Alcotest.(check (list string)) "committed prefix intact" [] (P.check t)

(* A quorum of one has no intersection to lean on: one acked copy plus
   the primary is the whole durability domain, and losing both loses the
   commit. Same fault envelope the k = 2 cell survives. *)
let quorum_one_loses () =
  let t = P.create ~replicas:3 ~quorum:1 in
  ignore (P.append t);
  P.deliver t 0;
  P.collect t 0;
  Alcotest.(check int) "committed on the single ack" 1 (P.commit_watermark t);
  P.lose_primary t;
  P.lose t 0;
  Alcotest.(check bool) "committed entry lost" true (P.check t <> [])

(* -- the simulated runtime ------------------------------------------------- *)

(* Hand-wired quorum cluster: logger, per-node link pairs and replicas,
   no scenario machinery. *)
let quorum_rig ?(config = Net.Quorum.default) ?(writes = 24) ?(seed = 5L) () =
  let sim = Sim.create ~seed () in
  let device = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let trusted =
    Hypervisor.Domain.create sim ~name:"rapilog" ~kind:Hypervisor.Domain.Trusted
  in
  let logger =
    Rapilog.Trusted_logger.create sim ~domain:trusted
      Rapilog.Trusted_logger.default_config ~device
  in
  let backend_domain =
    Hypervisor.Domain.create sim ~name:"drv" ~kind:Hypervisor.Domain.Trusted
  in
  let frontend =
    Hypervisor.Virtio_blk.create sim ~ipc:Hypervisor.Ipc.default_sel4
      ~backend_domain
      (Rapilog.Trusted_logger.backend logger)
  in
  let q =
    Net.Quorum.attach sim config ~logger
      ~make_device:(fun _ -> Storage.Hdd.create sim Storage.Hdd.default_7200rpm)
  in
  let guest =
    Hypervisor.Domain.create sim ~name:"guest" ~kind:Hypervisor.Domain.Guest
  in
  ignore
    (Hypervisor.Domain.spawn guest (fun () ->
         for i = 1 to writes do
           Storage.Block.write frontend ~lba:(i * 2)
             (String.make 512 (Char.chr (64 + (i mod 26))))
         done;
         Rapilog.Trusted_logger.quiesce logger;
         for i = 0 to config.Net.Quorum.replicas - 1 do
           Net.Replica.quiesce (Net.Quorum.node_replica q i)
         done));
  Sim.run sim;
  (device, logger, q)

let quorum_counters () =
  let writes = 24 in
  let _device, logger, q = quorum_rig ~writes () in
  Alcotest.(check int) "every admission sent" writes (Net.Quorum.sent q);
  Alcotest.(check int) "acks from every replica" (writes * 3) (Net.Quorum.acks q);
  Alcotest.(check int) "every seq quorum-committed" writes (Net.Quorum.commit_seq q);
  Alcotest.(check int) "nothing left on the wire" 0 (Net.Quorum.wire_in_flight q);
  Alcotest.(check int) "logger acked every write" writes
    (Rapilog.Trusted_logger.acked_writes logger);
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d holds the full prefix" i)
      writes
      (Net.Replica.prefix (Net.Quorum.node_replica q i))
  done

(* Counter and watermark consistency over the (replicas, quorum) grid. *)
let rig_grid_law (replicas, quorum_raw, seed) =
  let quorum = 1 + (quorum_raw mod replicas) in
  let writes = 8 in
  let config =
    { Net.Quorum.default with Net.Quorum.replicas; quorum }
  in
  let _device, _logger, q =
    quorum_rig ~config ~writes ~seed:(Int64.of_int seed) ()
  in
  Net.Quorum.sent q = writes
  && Net.Quorum.acks q = writes * replicas
  && Net.Quorum.commit_seq q = writes
  && Net.Quorum.wire_in_flight q = 0
  && List.for_all
       (fun i -> Net.Replica.prefix (Net.Quorum.node_replica q i) = writes)
       (Net.Quorum.live_nodes q)

(* Successive handoffs: terms strictly increase, the quorate election
   changes leader when the incumbent dies, and the live merge keeps
   covering every quorum-acked seq — the sever-during-election surface
   driven directly. *)
let handoff_monotone () =
  let writes = 24 in
  let _device, _logger, q = quorum_rig ~writes () in
  Net.Quorum.primary_lost q;
  let e1 = Net.Quorum.handoff q in
  Alcotest.(check bool) "first election quorate" true e1.Net.Quorum.el_quorum;
  Alcotest.(check bool) "a leader was chosen" true (e1.Net.Quorum.el_leader >= 0);
  Alcotest.(check bool) "term advanced past the primary's" true
    (e1.Net.Quorum.el_term > 1);
  Net.Quorum.node_lost q e1.Net.Quorum.el_leader;
  let e2 = Net.Quorum.handoff q in
  Alcotest.(check bool) "second election quorate" true e2.Net.Quorum.el_quorum;
  Alcotest.(check bool) "term strictly monotone across handoffs" true
    (e2.Net.Quorum.el_term > e1.Net.Quorum.el_term);
  Alcotest.(check bool) "dead incumbent not re-elected" true
    (e2.Net.Quorum.el_leader <> e1.Net.Quorum.el_leader
    && e2.Net.Quorum.el_leader >= 0);
  let merged =
    Net.Quorum.merge_prefix
      (List.map
         (fun i -> Net.Replica.entries (Net.Quorum.node_replica q i))
         (Net.Quorum.live_nodes q))
  in
  Alcotest.(check bool) "merge still covers every quorum-acked seq" true
    (List.length merged >= Net.Quorum.commit_seq q)

(* End-to-end recovery: primary plus k - 1 replicas die, the recovered
   log device still holds every acknowledged write's payload. *)
let recovery_covers_acked () =
  let writes = 24 in
  let device, _logger, q = quorum_rig ~writes () in
  Net.Quorum.primary_lost q;
  Net.Quorum.node_lost q 0;
  let recovered = Net.Quorum.recovery_log_device q ~primary:device in
  (match Net.Quorum.last_election q with
  | Some e -> Alcotest.(check bool) "recovery election quorate" true e.Net.Quorum.el_quorum
  | None -> Alcotest.fail "recovery ran no election");
  for i = 1 to writes do
    let expected = String.make 512 (Char.chr (64 + (i mod 26))) in
    Alcotest.(check string)
      (Printf.sprintf "write %d recovered" i)
      expected
      (Storage.Block.durable_read recovered ~lba:(i * 2) ~sectors:1)
  done

let suites =
  [
    ( "net.quorum.merge",
      [
        prop "merge covers every quorum watermark, in order" ~count:200
          gen_node_lists merge_covers_law;
        prop "merge is idempotent" ~count:200 gen_node_lists
          merge_idempotent_law;
        prop "merge is insensitive to replica order" ~count:200
          QCheck2.Gen.(pair gen_node_lists (int_range 0 1_000_000))
          merge_permutation_law;
      ] );
    ( "net.quorum.protocol",
      [
        prop "safety holds on random schedules within the fault envelope"
          ~count:300
          QCheck2.Gen.(list_size (int_range 1 40) gen_pop)
          protocol_random_law;
        case "behind candidate refused by committed-entry holders"
          behind_candidate_refused;
        case "best candidate wins and catches the laggard up"
          best_candidate_catches_up;
        case "quorum of one loses the committed entry" quorum_one_loses;
      ] );
    ( "net.quorum.runtime",
      [
        case "datapath counters line up" quorum_counters;
        prop "counters consistent over the (replicas, quorum) grid" ~count:25
          QCheck2.Gen.(
            triple (int_range 1 4) (int_range 0 16) (int_range 1 1_000_000))
          rig_grid_law;
        case "handoff terms monotone, incumbent death re-elects"
          handoff_monotone;
        case "recovery covers every acked write after pair loss"
          recovery_covers_acked;
      ] );
  ]
