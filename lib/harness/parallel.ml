(* A Domain-based worker pool for fanning out independent scenario
   evaluations. Every task builds its own simulation world from its
   config seed, so tasks share nothing and results are bit-identical to
   a serial run; the pool only changes wall-clock time.

   Work is distributed by an atomic cursor over the input array rather
   than pre-chunking: scenario costs vary wildly (1 client vs 64), and
   stealing the next index keeps all domains busy until the tail. *)

let env_var = "RAPILOG_JOBS"

let env_jobs () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

let map ?jobs f items =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length items in
  if jobs = 1 || n <= 1 then List.map f items
  else begin
    let input = Array.of_list items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Ok (f input.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* The calling domain is worker number one; [jobs - 1] helpers join
       it, capped by the number of tasks. *)
    let helpers = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let run ?jobs thunks = map ?jobs (fun thunk -> thunk ()) thunks
