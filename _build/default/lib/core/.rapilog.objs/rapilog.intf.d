lib/core/rapilog.mli: Desim Durability Hypervisor Invariants Power Ring_buffer Storage Trusted_logger
