lib/storage/write_cache.ml: Block Bytes Desim Disk_stats Hashtbl List Process Queue Resource Sim String Time
