lib/harness/experiment.mli: Audit Desim Scenario
