open Desim

type config = { interval : Time.span }

let default_config = { interval = Time.sec 1 }

let run_once ~wal ~pool =
  List.iter (Buffer_pool.flush_page pool) (Buffer_pool.dirty_pages pool);
  (* The redo point is computed after the flush: every earlier update is
     now in a page image, and pages re-dirtied during the flush carry a
     conservative rec_lsn from {!Buffer_pool.flush_page}. *)
  let redo_lsn =
    match Buffer_pool.min_rec_lsn pool with
    | Some lsn -> lsn
    | None -> Wal.end_lsn wal
  in
  let lsn = Wal.append wal (Log_record.Checkpoint { redo_lsn }) in
  Wal.force wal lsn;
  Wal.write_master wal redo_lsn;
  (* Everything before the redo point is never needed again. *)
  Wal.truncate wal redo_lsn;
  redo_lsn

let loop config ~wal ~pool () =
  while true do
    Process.sleep config.interval;
    ignore (run_once ~wal ~pool)
  done

let start sim config ~wal ~pool =
  assert (Time.compare_span config.interval Time.zero_span > 0);
  Process.spawn sim ~name:"checkpointer" (loop config ~wal ~pool)

let start_in_domain domain config ~wal ~pool =
  assert (Time.compare_span config.interval Time.zero_span > 0);
  Hypervisor.Domain.spawn domain ~name:"checkpointer" (loop config ~wal ~pool)
