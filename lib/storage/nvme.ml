open Desim

type config = {
  queue_depth : int;
  submit_overhead : Time.span;
  program_latency : Time.span;
  read_latency : Time.span;
  page_sectors : int;
  zone_sectors : int;
  capacity_sectors : int;
  sector_size : int;
}

let default =
  {
    queue_depth = 32;
    submit_overhead = Time.us 8;
    program_latency = Time.us 12;
    read_latency = Time.us 10;
    page_sectors = 8;
    zone_sectors = 1 lsl 16;
    capacity_sectors = 1 lsl 26;
    sector_size = 512;
  }

(* The timing helpers are pure in the geometry and the clock, exactly
   like {!Hdd.write_timeline}: the live request path and the crash
   sweep's journal reconstruction share them, so post-cut drain timing
   re-derived without re-running the simulation cannot drift from what
   the live device would have done. An NVMe write has no positional
   component — service is submission overhead plus one program round per
   page — and, unlike the disk, the drive-side start instant does not
   depend on the head, so the timeline is a pure function of [now_ns]. *)

let pages_of config sectors = (sectors + config.page_sectors - 1) / config.page_sectors

let service_ns config ~sectors =
  Time.span_to_ns config.submit_overhead
  + (pages_of config sectors * Time.span_to_ns config.program_latency)

type timeline = { wt_start_ns : int; wt_complete_ns : int }

let write_timeline config ~now_ns ~sectors =
  let start_ns = now_ns + Time.span_to_ns config.submit_overhead in
  {
    wt_start_ns = start_ns;
    wt_complete_ns =
      start_ns + (pages_of config sectors * Time.span_to_ns config.program_latency);
  }

module Zones = struct
  type t = {
    write_pointers : int array;  (* per-zone, relative to the zone start *)
    zone_sectors : int;
    mutable appends : int;
    mutable rewinds : int;
  }

  let create (config : config) =
    assert (config.zone_sectors > 0 && config.capacity_sectors mod config.zone_sectors = 0);
    {
      write_pointers = Array.make (config.capacity_sectors / config.zone_sectors) 0;
      zone_sectors = config.zone_sectors;
      appends = 0;
      rewinds = 0;
    }

  (* Hot path: integer arithmetic and two field bumps, no allocation. *)
  let note_write t ~lba ~sectors =
    let zone = lba / t.zone_sectors in
    let offset = lba - (zone * t.zone_sectors) in
    let wp = Array.unsafe_get t.write_pointers zone in
    if offset < wp then begin
      (* Behind the append pointer: the zone was implicitly rewound
         (rewritten in place) — the pattern zoned namespaces forbid and
         the stat the log layout is judged by. *)
      t.rewinds <- t.rewinds + 1;
      if offset + sectors > wp then
        Array.unsafe_set t.write_pointers zone (offset + sectors)
    end
    else begin
      t.appends <- t.appends + 1;
      Array.unsafe_set t.write_pointers zone (offset + sectors)
    end

  let appends t = t.appends
  let rewinds t = t.rewinds
end

type state = {
  sim : Sim.t;
  config : config;
  media : Block.Media.t;
  rng : Rng.t;
  qd : Resource.Semaphore.t;
  zones : Zones.t;
  (* Started-but-unfinished transfers, oldest first. Unlike the disk's
     single actuator, up to [queue_depth] programs are in flight at
     once, and a power cut tears each of them — in submission order, so
     the journal reconstruction can replay the same rng draws. *)
  mutable in_flight : (int * string) list;
  mutable powered : bool;
  journal : Journal.t option;
  journal_id : int;
}

let remove_in_flight state entry =
  state.in_flight <- List.filter (fun e -> e != entry) state.in_flight

let service_read state ~lba ~sectors =
  let started = Sim.now state.sim in
  Resource.Semaphore.acquire state.qd;
  Fun.protect ~finally:(fun () -> Resource.Semaphore.release state.qd)
  @@ fun () ->
  Process.sleep state.config.submit_overhead;
  Process.sleep
    (Time.ns (pages_of state.config sectors * Time.span_to_ns state.config.read_latency));
  let data = Block.Media.read state.media ~lba ~sectors in
  (data, Time.diff (Sim.now state.sim) started)

let service_write state ~lba ~data =
  let started = Sim.now state.sim in
  let sectors = String.length data / state.config.sector_size in
  Resource.Semaphore.acquire state.qd;
  Fun.protect ~finally:(fun () -> Resource.Semaphore.release state.qd)
  @@ fun () ->
  Process.sleep state.config.submit_overhead;
  let entry = (lba, data) in
  state.in_flight <- state.in_flight @ [ entry ];
  (match state.journal with
  | Some j -> Journal.write_start j state.sim ~device:state.journal_id ~lba ~sectors
  | None -> ());
  Process.sleep
    (Time.ns (pages_of state.config sectors * Time.span_to_ns state.config.program_latency));
  remove_in_flight state entry;
  if state.powered then begin
    Zones.note_write state.zones ~lba ~sectors;
    Block.Media.write state.media ~lba ~data;
    match state.journal with
    | Some j ->
        Journal.write_complete j state.sim ~device:state.journal_id ~lba ~sectors
          ~data
    | None -> ()
  end;
  Time.diff (Sim.now state.sim) started

(* Every in-flight program tears independently; the draws come off the
   device rng in submission order, which is what the crash sweep's
   reconstruction assumes when it replays multiple concurrent tears. *)
let power_cut state =
  state.powered <- false;
  let pending = state.in_flight in
  state.in_flight <- [];
  List.iter
    (fun (lba, data) -> Block.Media.write_torn state.media ~rng:state.rng ~lba ~data)
    pending

let create sim ?(model = "nvme-zns") config =
  assert (config.queue_depth > 0 && config.page_sectors > 0);
  assert (config.capacity_sectors > 0 && config.capacity_sectors mod config.zone_sectors = 0);
  let media =
    Block.Media.create ~sector_size:config.sector_size
      ~capacity_sectors:config.capacity_sectors
  in
  let rng = Rng.split (Sim.rng sim) in
  let journal = Journal.recording () in
  let journal_id =
    match journal with
    | Some j ->
        Journal.register_device j ~model ~sector_size:config.sector_size
          ~capacity_sectors:config.capacity_sectors ~rng
    | None -> -1
  in
  let zones = Zones.create config in
  let state =
    {
      sim;
      config;
      media;
      rng;
      qd = Resource.Semaphore.create sim config.queue_depth;
      zones;
      in_flight = [];
      powered = true;
      journal;
      journal_id;
    }
  in
  let stats = Disk_stats.create () in
  let instance = Disk_stats.instance_name model in
  let m_write =
    Option.map
      (fun reg -> Metrics.histogram reg ("device.write:" ^ instance))
      (Metrics.recording ())
  in
  let m_appends, m_rewinds =
    match Metrics.recording () with
    | Some reg ->
        ( Some (Metrics.counter reg ("device.zone_appends:" ^ instance)),
          Some (Metrics.counter reg ("device.zone_rewinds:" ^ instance)) )
    | None -> (None, None)
  in
  let sync_zone_counters () =
    (match m_appends with
    | Some c -> Metrics.Counter.add c (Zones.appends zones - Metrics.Counter.get c)
    | None -> ());
    match m_rewinds with
    | Some c -> Metrics.Counter.add c (Zones.rewinds zones - Metrics.Counter.get c)
    | None -> ()
  in
  let ops =
    {
      Block.op_read =
        (fun ~lba ~sectors ->
          let data, service = service_read state ~lba ~sectors in
          Disk_stats.record_read stats ~sectors ~service;
          data);
      op_write =
        (fun ~lba ~data ~fua:_ ->
          (* No volatile write cache in this model: completion implies
             the program finished, so FUA and plain writes coincide. *)
          let service = service_write state ~lba ~data in
          let sectors = String.length data / config.sector_size in
          (match m_write with
          | Some h -> Metrics.Histogram.observe_span h service
          | None -> ());
          sync_zone_counters ();
          Disk_stats.record_write stats ~sectors ~service);
      op_flush =
        (fun () ->
          Process.sleep config.submit_overhead;
          Disk_stats.record_flush stats ~service:config.submit_overhead);
      op_power_cut = (fun () -> power_cut state);
      op_durable_read =
        (fun ~lba ~sectors -> Block.Media.read media ~lba ~sectors);
      op_durable_extent = (fun () -> Block.Media.extent media);
    }
  in
  Block.make ~journal_id
    ~info:
      {
        Block.model;
        sector_size = config.sector_size;
        capacity_sectors = config.capacity_sectors;
      }
    ~stats ~ops ()
