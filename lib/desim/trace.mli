(** Lightweight event tracing.

    Components emit tagged trace records; a trace is either discarded
    (default), printed live, or collected for inspection by tests. *)

type record = { time : Time.t; tag : string; message : string }

type t

val null : t
(** Discards everything. *)

val collector : ?capacity:int -> unit -> t
(** Keeps the most recent [capacity] (default 4096) records in memory. *)

val printer : Format.formatter -> t
(** Prints each record as it is emitted. *)

val emit : t -> Sim.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [emit t sim ~tag fmt …] records a message stamped with [Sim.now sim].
    Emitting to {!null} is free: the format arguments are consumed
    without being rendered and nothing is allocated or counted. *)

val records : t -> record list
(** Collected records, oldest first; [] for [null] and [printer]. *)

val count : t -> int
(** Total records emitted to this trace, including any evicted ones;
    always [0] for {!null}, whose emissions are skipped entirely. *)
