open Desim

type fault = {
  f_cut_at : Time.span option;
  f_split_at : (Time.span * int * int) option;
}

let no_fault = { f_cut_at = None; f_split_at = None }

type config = {
  c_name : string;
  c_tier : Tier.config;
  c_seed : int64;
  c_fault : fault;
}

type result = {
  r_name : string;
  r_seed : int64;
  r_submitted : int;
  r_acked : int;
  r_stats : Tier.stats;
  r_audit : Recover.tenant_audit;
  r_buckets_moved : int;
  r_events : int;
  r_clock_ns : int;
}

let run config =
  let sim = Sim.create ~seed:config.c_seed () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let power = Power.Power_domain.create sim Power.Psu.default in
  let tier =
    Tier.attach sim ~vmm ~power ~config:config.c_tier
      ~make_device:(fun () -> Storage.Hdd.create sim Storage.Hdd.default_7200rpm)
      ()
  in
  let moved = ref 0 in
  (match config.c_fault.f_split_at with
  | Some (at, source, target) ->
      Sim.schedule_at sim (Time.add (Sim.now sim) at) (fun () ->
          moved := Tier.split_shard tier ~source ~target)
  | None -> ());
  (match config.c_fault.f_cut_at with
  | Some at -> Power.Power_domain.cut_at power (Time.add (Sim.now sim) at)
  | None -> ());
  (* Run to quiescence: arrivals stop at the horizon, writers drain their
     queues (or park at a power cut), the loggers drain their rings. *)
  Sim.run sim;
  (* Without a cut, push the last acknowledged bytes to media before the
     audit reads it; a cut tier already drained within the PSU window or
     parked un-acknowledged. *)
  if not (Tier.stopped tier) then begin
    ignore
      (Process.spawn sim ~name:"cell-quiesce" (fun () -> Tier.quiesce tier));
    Sim.run sim
  end;
  {
    r_name = config.c_name;
    r_seed = config.c_seed;
    r_submitted = Tier.submitted tier;
    r_acked = Tier.acked tier;
    r_stats = Tier.stats tier;
    r_audit = Recover.audit tier;
    r_buckets_moved = !moved;
    r_events = Sim.events_executed sim;
    r_clock_ns = Time.to_ns (Sim.now sim);
  }

let digest r =
  let s = r.r_stats in
  let a = r.r_audit in
  Printf.sprintf
    "%s:%Ld:s%d:a%d:p50=%.3f:p99=%.3f:t99med=%.3f:t99max=%.3f:act%d:rec%d:lost%d:extra%d:breaks%d:moved%d:ev%d:ns%d"
    r.r_name r.r_seed r.r_submitted r.r_acked s.Tier.st_p50_us s.Tier.st_p99_us
    s.Tier.st_tenant_p99_med_us s.Tier.st_tenant_p99_max_us
    s.Tier.st_active_tenants a.Recover.a_recovered a.Recover.a_lost
    a.Recover.a_extra a.Recover.a_breaks r.r_buckets_moved r.r_events
    r.r_clock_ns
