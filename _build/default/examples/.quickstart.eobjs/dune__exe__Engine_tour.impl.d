examples/engine_tour.ml: Dbms Desim Hashtbl Hypervisor List Option Power Printf Process Rapilog Sim Storage Time
