lib/power/failure_injector.mli: Desim Power_domain
