lib/dbms/log_record.ml: Buffer Bytes Crc32 Format Int32 Int64 List Lsn String
