lib/workload/microbench.ml: Dbms Desim Key_dist List Printf Rng Value_gen
