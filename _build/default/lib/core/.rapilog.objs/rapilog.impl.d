lib/core/rapilog.ml: Durability Hypervisor Invariants Ring_buffer Trusted_logger
