(* The metrics registry and its log-linear histogram.

   The histogram backs every per-stage latency figure the reports
   quote, so its guarantees get property coverage: the bucket table
   must tile the range (monotone boundaries, no gaps), indexing must be
   monotone in the value, merging two histograms must be
   indistinguishable from observing the concatenated stream, and the
   interpolated quantile must stay within one bucket width (6.25%
   relative) of the exact order statistic. The integration case at the
   bottom checks the ambient-enablement contract end to end: a steady
   run with the registry installed returns a bit-identical result and
   populated commit-path stages. *)

open Desim
open Testu
open QCheck2

(* ---- bucket layout --------------------------------------------------- *)

let boundaries_tile () =
  for i = 0 to Metrics.num_buckets - 1 do
    let lower = Metrics.bucket_lower_us i and upper = Metrics.bucket_upper_us i in
    if not (lower < upper) then
      Alcotest.failf "bucket %d: lower %g >= upper %g" i lower upper;
    if i + 1 < Metrics.num_buckets then begin
      let next = Metrics.bucket_lower_us (i + 1) in
      if upper <> next then
        Alcotest.failf "bucket %d: upper %g <> next lower %g" i upper next;
      let width = upper -. lower and next_width = Metrics.bucket_upper_us (i + 1) -. next in
      (* widths are exact powers of two in ns but rounded by the /1000
         µs conversion: compare up to that rounding *)
      if next_width < width *. (1. -. 1e-9) then
        Alcotest.failf "bucket %d: width shrinks %g -> %g" i width next_width
    end
  done

(* Nanosecond-exact microsecond values, mixing the fine 1 ns region with
   the log-linear tail. *)
let us_gen =
  Gen.map
    (fun n -> float_of_int n /. 1000.)
    (Gen.oneof
       [
         Gen.int_range 0 64;  (* the exact-bucket region *)
         Gen.int_range 0 2_000_000;  (* up to 2 ms *)
         Gen.int_range 0 2_000_000_000_000;  (* up to ~33 min *)
       ])

let index_monotone =
  prop "bucket index is monotone in the value" ~count:500
    (Gen.pair us_gen us_gen)
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Metrics.bucket_index_us lo <= Metrics.bucket_index_us hi)

let index_contains =
  (* One bucket width of slack absorbs the float/int boundary rounding
     of the µs↔ns conversion. *)
  prop "indexed bucket contains the value (within one width)" ~count:500 us_gen
    (fun v ->
      let i = Metrics.bucket_index_us v in
      let lower = Metrics.bucket_lower_us i and upper = Metrics.bucket_upper_us i in
      let width = upper -. lower in
      lower -. width <= v && v <= upper +. width)

(* ---- merge ≡ concatenation ------------------------------------------ *)

let observe_all values =
  let h = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.observe h) values;
  h

let rel_close a b =
  (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let merge_is_concat =
  prop "merge_into == observing the concatenated stream" ~count:200
    (Gen.pair (Gen.list_size (Gen.int_range 0 50) us_gen)
       (Gen.list_size (Gen.int_range 0 50) us_gen))
    (fun (xs, ys) ->
      let merged = observe_all xs in
      Metrics.Histogram.merge_into ~into:merged (observe_all ys);
      let oracle = observe_all (xs @ ys) in
      Metrics.Histogram.count merged = Metrics.Histogram.count oracle
      && Metrics.Histogram.nonempty_buckets merged
         = Metrics.Histogram.nonempty_buckets oracle
      (* min/max propagate the same floats; only the sum's addition
         order differs between the two sides. *)
      && (Metrics.Histogram.count merged = 0
         || Metrics.Histogram.min merged = Metrics.Histogram.min oracle
            && Metrics.Histogram.max merged = Metrics.Histogram.max oracle)
      && rel_close (Metrics.Histogram.sum merged) (Metrics.Histogram.sum oracle))

(* ---- quantile vs sort oracle ---------------------------------------- *)

let quantile_vs_oracle =
  prop "quantile within one bucket width of the order statistic" ~count:200
    (Gen.pair
       (Gen.list_size (Gen.int_range 1 200) us_gen)
       (Gen.int_range 0 100))
    (fun (values, pct) ->
      let q = float_of_int pct /. 100. in
      let h = observe_all values in
      let sorted = List.sort Float.compare values in
      let n = List.length values in
      let rank =
        Stdlib.max 0
          (int_of_float (Float.ceil (Float.max 1. (q *. float_of_int n))) - 1)
      in
      let exact = List.nth sorted (Stdlib.min rank (n - 1)) in
      let estimate = Metrics.Histogram.quantile h q in
      (* 6.25% relative bucket width, doubled for interpolation and
         boundary rounding; 0.002 µs absolute floor covers the 1 ns
         region. *)
      Float.abs (estimate -. exact) <= Float.max 0.002 (exact /. 8.))

(* ---- registry -------------------------------------------------------- *)

let registry_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "a.count" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 2;
  (* find-or-create: the same handle comes back *)
  Metrics.Counter.incr (Metrics.counter reg "a.count");
  Alcotest.(check int) "counter accumulates" 4 (Metrics.Counter.get c);
  let g = Metrics.gauge reg "b.level" in
  Metrics.Gauge.set g 5.;
  Metrics.Gauge.set g 2.;
  Alcotest.(check (float 0.)) "gauge value" 2. (Metrics.Gauge.get g);
  Alcotest.(check (float 0.)) "gauge high water" 5. (Metrics.Gauge.high_water g);
  let h = Metrics.histogram reg "c.lat" in
  Metrics.Histogram.observe h 10.;
  Alcotest.(check int) "histogram count" 1
    (Metrics.Histogram.count (Metrics.histogram reg "c.lat"));
  Alcotest.(check (list string))
    "names sorted" [ "a.count"; "b.level"; "c.lat" ] (Metrics.names reg);
  (match Metrics.find reg "a.count" with
  | Some (Metrics.Counter _) -> ()
  | _ -> Alcotest.fail "find returns the counter");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: \"a.count\" already registered as a counter")
    (fun () -> ignore (Metrics.histogram reg "a.count"))

let ambient_recording () =
  Alcotest.(check bool) "off by default" true (Metrics.recording () = None);
  let reg = Metrics.create () in
  Metrics.with_recording reg (fun () ->
      Alcotest.(check bool) "installed" true (Metrics.recording () = Some reg));
  Alcotest.(check bool) "uninstalled after" true (Metrics.recording () = None);
  (* uninstalls on raise too *)
  (try Metrics.with_recording reg (fun () -> failwith "boom") with _ -> ());
  Alcotest.(check bool) "uninstalled after raise" true (Metrics.recording () = None)

let span_measures_sleep () =
  run_in_sim (fun sim ->
      let h = Metrics.Histogram.create () in
      let started = Metrics.Span.start sim in
      Process.sleep (Time.us 250);
      Metrics.Span.finish h sim started;
      Alcotest.(check int) "one observation" 1 (Metrics.Histogram.count h);
      check_near "span mean" ~tolerance:0.02 250. (Metrics.Histogram.mean h))

(* ---- instrumented steady run ---------------------------------------- *)

let instrumented_run_identical () =
  let config =
    {
      Harness.Scenario.default with
      Harness.Scenario.mode = Harness.Scenario.Rapilog;
      clients = 2;
      warmup = Time.ms 50;
      duration = Time.ms 200;
      seed = 99L;
    }
  in
  let plain = Harness.Experiment.run_steady config in
  let instrumented, reg = Harness.Experiment.run_steady_metrics config in
  Alcotest.(check bool) "registry cleared after run" true
    (Metrics.recording () = None);
  Alcotest.(check bool) "steady result bit-identical" true (plain = instrumented);
  let hist_count name =
    match Metrics.find reg name with
    | Some (Metrics.Histogram h) -> Metrics.Histogram.count h
    | Some _ | None -> 0
  in
  List.iter
    (fun stage ->
      if hist_count stage = 0 then Alcotest.failf "stage %s is empty" stage)
    [ "commit.total"; "commit.exec"; "commit.force"; "wal.force_write";
      "logger.admission"; "logger.drain_write" ];
  Alcotest.(check int) "commit.total counts every write commit"
    (match Metrics.find reg "engine.write_commits" with
    | Some (Metrics.Counter c) -> Metrics.Counter.get c
    | _ -> -1)
    (hist_count "commit.total")

let suites =
  [
    ( "metrics",
      [
        case "bucket boundaries tile the range" boundaries_tile;
        index_monotone;
        index_contains;
        merge_is_concat;
        quantile_vs_oracle;
        case "registry find-or-create and kinds" registry_basics;
        case "ambient recording install/uninstall" ambient_recording;
        case "span measures a simulated sleep" span_measures_sleep;
        case "instrumented steady run is bit-identical" instrumented_run_identical;
      ] );
  ]
