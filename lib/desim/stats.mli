(** Measurement utilities used by the experiment harness. *)

module Summary : sig
  (** Streaming mean / variance (Welford) with min/max tracking. *)

  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** Fold one observation into the running moments. *)

  val count : t -> int

  val mean : t -> float
  (** 0. when empty. *)

  val variance : t -> float
  (** Sample variance; 0. for fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** [nan] when empty, like {!max}. *)

  val max : t -> float
end

module Sample : sig
  (** Full-sample collector with exact percentiles. *)

  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** Append one observation (kept verbatim for exact order
      statistics). *)

  val count : t -> int

  val mean : t -> float
  (** [nan] when empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [\[0, 100\]], by linear interpolation
      between order statistics; [nan] when empty. *)

  val median : t -> float
  val to_array : t -> float array
  (** Sorted copy of the observations. *)

  val add_span : t -> Time.span -> unit
  (** Record a duration in microseconds. *)
end

module Histogram : sig
  (** Log-scale latency histogram: buckets are powers of [2^(1/4)] over
      microseconds, giving ~19% relative resolution over nine decades. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  (** Record a value in microseconds; non-positive values land in the
      underflow bucket. *)

  val add_span : t -> Time.span -> unit
  val count : t -> int
  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [\[0, 1\]]; returns the upper bound of the
      containing bucket in microseconds; [nan] when empty. *)

  val buckets : t -> (float * int) list
  (** Non-empty buckets as (upper bound in us, count). *)
end

module Counter : sig
  (** A plain mutable event count. *)

  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

val rate_per_sec : int -> Time.span -> float
(** [rate_per_sec n elapsed] is [n] events over [elapsed] as a per-second
    rate; 0. for a non-positive duration. *)
