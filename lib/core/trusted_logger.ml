open Desim

type config = {
  buffer_bytes : int;
  copy_bandwidth : float;
  drain_max_bytes : int;
}

let default_config =
  { buffer_bytes = 8 * 1024 * 1024; copy_bandwidth = 1e9; drain_max_bytes = 512 * 1024 }

(* Commit-path stage handles, resolved once against the ambient registry
   at {!create} time (the {!Desim.Metrics} discipline: [None] when
   metrics are off, so the hot path pays one branch and no allocation). *)
type logger_metrics = {
  m_admission : Metrics.Histogram.t;  (* accept_write entry -> ack *)
  m_copy : Metrics.Histogram.t;       (* guest -> trusted buffer copy *)
  m_ring_wait : Metrics.Histogram.t;  (* push -> drain pop residency *)
  m_drain_write : Metrics.Histogram.t;  (* physical write of one batch *)
  m_buffered : Metrics.Gauge.t;       (* ring occupancy, bytes *)
  m_stalls : Metrics.Counter.t;
}

type t = {
  sim : Sim.t;
  config : config;
  device : Storage.Block.t;
  trace : Trace.t;
  ring : Ring_buffer.t;
  arrived : Resource.Condition.t;
  space_freed : Resource.Condition.t;
  empty : Resource.Condition.t;
  mutable accepting : bool;
  mutable draining : bool;  (* a popped batch is being written *)
  mutable acked_bytes : int;
  mutable acked_writes : int;
  mutable drained_bytes : int;
  mutable drain_writes : int;
  mutable max_buffered : int;
  mutable stalls : int;
  (* Replication (RapiLog-R): called at the admission instant with the
     1-based admission sequence number; may block the admitting writer
     (replica-ack policy). [None] = single-machine logger, byte-identical
     to the pre-replication behaviour. *)
  mutable replicate : (seq:int -> lba:int -> data:string -> unit) option;
  mutable push_seq : int;
  mutable admitted_bytes : int;
  journal : Journal.t option;
  metrics : logger_metrics option;
}

let journal_device t = Storage.Block.journal_id t.device

let drainer t () =
  while true do
    let head_stamp = Ring_buffer.head_stamp t.ring in
    match Ring_buffer.pop_coalesced t.ring ~max_bytes:t.config.drain_max_bytes with
    | None ->
        t.draining <- false;
        if Ring_buffer.is_empty t.ring then Resource.Condition.broadcast t.empty;
        Resource.Condition.wait t.arrived
    | Some { Ring_buffer.lba; data } ->
        t.draining <- true;
        (match t.journal with
        | Some j ->
            Journal.pop j t.sim ~device:(journal_device t) ~lba
              ~bytes:(String.length data)
        | None -> ());
        (match t.metrics with
        | Some m ->
            (* Age of the batch head: push instant -> this pop. *)
            Metrics.Span.finish m.m_ring_wait t.sim head_stamp;
            Metrics.Gauge.set m.m_buffered
              (float_of_int (Ring_buffer.bytes_used t.ring))
        | None -> ());
        let write_started =
          match t.metrics with Some _ -> Metrics.Span.start t.sim | None -> 0
        in
        Storage.Block.write t.device ~lba data;
        (match t.metrics with
        | Some m -> Metrics.Span.finish m.m_drain_write t.sim write_started
        | None -> ());
        t.drained_bytes <- t.drained_bytes + String.length data;
        t.drain_writes <- t.drain_writes + 1;
        Trace.emit t.trace t.sim ~tag:"drain" "wrote %d bytes at lba %d"
          (String.length data) lba;
        Resource.Condition.broadcast t.space_freed
  done

let create sim ~domain ?(trace = Trace.null) config ~device =
  assert (config.buffer_bytes > 0 && config.copy_bandwidth > 0.);
  assert (Hypervisor.Domain.kind domain = Hypervisor.Domain.Trusted);
  let t =
    {
      sim;
      config;
      device;
      trace;
      ring =
        Ring_buffer.create
          ~sector_size:(Storage.Block.info device).Storage.Block.sector_size
          ~capacity_bytes:config.buffer_bytes;
      arrived = Resource.Condition.create sim;
      space_freed = Resource.Condition.create sim;
      empty = Resource.Condition.create sim;
      accepting = true;
      draining = false;
      acked_bytes = 0;
      acked_writes = 0;
      drained_bytes = 0;
      drain_writes = 0;
      max_buffered = 0;
      stalls = 0;
      replicate = None;
      push_seq = 0;
      admitted_bytes = 0;
      journal = Journal.recording ();
      metrics =
        Option.map
          (fun reg ->
            {
              m_admission = Metrics.histogram reg "logger.admission";
              m_copy = Metrics.histogram reg "logger.copy";
              m_ring_wait = Metrics.histogram reg "logger.ring_wait";
              m_drain_write = Metrics.histogram reg "logger.drain_write";
              m_buffered = Metrics.gauge reg "logger.buffered_bytes";
              m_stalls = Metrics.counter reg "logger.backpressure_stalls";
            })
          (Metrics.recording ());
    }
  in
  ignore (Hypervisor.Domain.spawn domain ~name:"rapilog-drain" (drainer t));
  t

let config t = t.config
let device t = t.device

let copy_span t len =
  Time.span_of_float_sec (float_of_int len /. t.config.copy_bandwidth)

let block_forever () = Process.suspend (fun (_ : unit Process.resumer) -> ())

(* Admission is re-checked after *every* blocking point: a writer that
   slept through the power-fail instant (in the copy, or stalled on a
   full buffer) must never acknowledge afterwards. Data it already
   pushed still drains — blocking only the acknowledgement is the
   conservative side of the contract. The runtime {!Invariants} monitor
   checks exactly this property, and caught the one-sided version of
   this code that checked admission only on entry. *)
let accept_write t ~lba ~data =
  if not t.accepting then
    (* Power is failing: no new durability promises. The guest is about
       to lose power anyway; its process parks here. *)
    block_forever ()
  else begin
    let entered =
      match t.metrics with Some _ -> Metrics.Span.start t.sim | None -> 0
    in
    Process.sleep (copy_span t (String.length data));
    (match t.metrics with
    | Some m -> Metrics.Span.finish m.m_copy t.sim entered
    | None -> ());
    if not t.accepting then block_forever ();
    let stamp = Time.to_ns (Sim.now t.sim) in
    while not (Ring_buffer.try_push t.ring ~stamp ~lba ~data) do
      t.stalls <- t.stalls + 1;
      (match t.metrics with
      | Some m -> Metrics.Counter.incr m.m_stalls
      | None -> ());
      Trace.emit t.trace t.sim ~tag:"backpressure" "buffer full (%d bytes)"
        (Ring_buffer.bytes_used t.ring);
      Resource.Condition.wait t.space_freed;
      if not t.accepting then block_forever ()
    done;
    if not t.accepting then block_forever ();
    (match t.journal with
    | Some j -> Journal.push j t.sim ~device:(journal_device t) ~lba ~data
    | None -> ());
    t.push_seq <- t.push_seq + 1;
    t.admitted_bytes <- t.admitted_bytes + String.length data;
    t.max_buffered <- max t.max_buffered (Ring_buffer.bytes_used t.ring);
    (match t.replicate with
    | None -> ()
    | Some hook ->
        (* The entry is in the ring: let the local drain start on it
           while this writer waits on the wire (replica-ack). If power
           failed during the wait, the copy is safe on both sides but
           the acknowledgement must not happen. *)
        Resource.Condition.signal t.arrived;
        hook ~seq:t.push_seq ~lba ~data;
        if not t.accepting then block_forever ());
    t.acked_bytes <- t.acked_bytes + String.length data;
    t.acked_writes <- t.acked_writes + 1;
    (match t.metrics with
    | Some m ->
        Metrics.Span.finish m.m_admission t.sim entered;
        Metrics.Gauge.set m.m_buffered
          (float_of_int (Ring_buffer.bytes_used t.ring))
    | None -> ());
    Resource.Condition.signal t.arrived
  end

let backend t =
  {
    Hypervisor.Virtio_blk.be_info =
      (let info = Storage.Block.info t.device in
       { info with Storage.Block.model = "rapilog:" ^ info.Storage.Block.model });
    be_read =
      (fun ~lba ~sectors ->
        (* The log region is not read back during normal operation; serve
           media contents (recovery uses durable reads instead). *)
        Storage.Block.read t.device ~lba ~sectors);
    be_write = (fun ~lba ~data ~fua:_ -> accept_write t ~lba ~data);
    be_flush = (fun () -> ());
    be_durable_read =
      (fun ~lba ~sectors -> Storage.Block.durable_read t.device ~lba ~sectors);
    be_durable_extent = (fun () -> Storage.Block.durable_extent t.device);
  }

let notify_power_fail t =
  t.accepting <- false;
  Trace.emit t.trace t.sim ~tag:"power-fail"
    "admission closed; %d bytes to drain" (Ring_buffer.bytes_used t.ring)

let attach_power t power =
  Power.Power_domain.on_power_fail power (fun ~window:_ -> notify_power_fail t);
  Power.Power_domain.register_device power t.device

let quiesce t =
  while not (Ring_buffer.is_empty t.ring && not t.draining) do
    Resource.Condition.wait t.empty
  done

let set_replication t hook =
  (match t.replicate with
  | Some _ -> invalid_arg "Trusted_logger.set_replication: hook already set"
  | None -> ());
  t.replicate <- Some hook

let accepting t = t.accepting
let buffered_bytes t = Ring_buffer.bytes_used t.ring
let admitted_bytes t = t.admitted_bytes
let admitted_writes t = t.push_seq
let max_buffered_bytes t = t.max_buffered
let acked_bytes t = t.acked_bytes
let drained_bytes t = t.drained_bytes
let acked_writes t = t.acked_writes
let drain_writes t = t.drain_writes
let backpressure_stalls t = t.stalls

let worst_case_flush t ~drain_bandwidth =
  assert (drain_bandwidth > 0.);
  Time.span_of_float_sec (float_of_int t.max_buffered /. drain_bandwidth)
