lib/workload/key_dist.mli: Desim
