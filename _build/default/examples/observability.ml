(* Watch the trusted logger work: attach a trace collector and the
   runtime invariant monitor, run a burst through a tiny buffer (so
   backpressure fires), then a power cut — and print what the logger
   was seen doing, plus the monitor's verdict.

   Run with: dune exec examples/observability.exe *)

open Desim

let () =
  let sim = Sim.create ~seed:3L () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let power = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 150)) in
  let disk = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let trace = Trace.collector ~capacity:64 () in
  let log_dev, logger =
    Rapilog.attach ~vmm ~power ~trace
      ~config:
        {
          Rapilog.Trusted_logger.default_config with
          Rapilog.Trusted_logger.buffer_bytes = 64 * 1024;
        }
      ~device:disk ()
  in
  let monitor = Rapilog.Invariants.attach sim logger in

  (* A write burst that overwhelms the 64 KiB buffer. *)
  ignore
    (Hypervisor.Vmm.spawn_guest vmm ~name:"burst" (fun () ->
         for i = 0 to 511 do
           Storage.Block.write log_dev ~lba:(i * 8) (String.make 4096 'b')
         done));
  Power.Power_domain.cut_at power (Time.add Time.zero (Time.ms 60));
  (* The monitor reschedules itself forever, so bound the run. *)
  Sim.run ~until:(Time.add Time.zero (Time.ms 400)) sim;
  Rapilog.Invariants.stop monitor;

  Printf.printf "== what the logger did ==\n";
  Printf.printf "acked writes        : %d\n" (Rapilog.Trusted_logger.acked_writes logger);
  Printf.printf "physical drains     : %d\n" (Rapilog.Trusted_logger.drain_writes logger);
  Printf.printf "backpressure stalls : %d\n"
    (Rapilog.Trusted_logger.backpressure_stalls logger);
  Printf.printf "high-water mark     : %d KiB\n"
    (Rapilog.Trusted_logger.max_buffered_bytes logger / 1024);

  Printf.printf "\n== last trace events (of %d emitted) ==\n" (Trace.count trace);
  List.iteri
    (fun i record ->
      if i < 8 then
        Printf.printf "  [%s] %-12s %s\n"
          (Format.asprintf "%a" Time.pp record.Trace.time)
          record.Trace.tag record.Trace.message)
    (Trace.records trace);

  Printf.printf "\n== invariant monitor ==\n";
  Printf.printf "checks performed : %d\n" (Rapilog.Invariants.checks_performed monitor);
  (match Rapilog.Invariants.violations monitor with
  | [] -> print_endline "violations       : none"
  | violations ->
      List.iter
        (fun v ->
          Printf.printf "VIOLATION at %s: %s (%s)\n"
            (Format.asprintf "%a" Time.pp v.Rapilog.Invariants.at)
            v.Rapilog.Invariants.invariant v.Rapilog.Invariants.detail)
        violations;
      exit 1);
  assert (Rapilog.Invariants.ok monitor)
