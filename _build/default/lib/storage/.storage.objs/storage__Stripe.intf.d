lib/storage/stripe.mli: Block Desim
