type info = { model : string; sector_size : int; capacity_sectors : int }

type ops = {
  op_read : lba:int -> sectors:int -> string;
  op_write : lba:int -> data:string -> fua:bool -> unit;
  op_flush : unit -> unit;
  op_power_cut : unit -> unit;
  op_durable_read : lba:int -> sectors:int -> string;
  op_durable_extent : unit -> int;
}

type t = { info : info; stats : Disk_stats.t; ops : ops; journal_id : int }

let make ?(journal_id = -1) ~info ~stats ~ops () =
  { info; stats; ops; journal_id }

let info t = t.info
let stats t = t.stats
let journal_id t = t.journal_id

let check_range t ~lba ~sectors =
  assert (lba >= 0 && sectors > 0);
  assert (lba + sectors <= t.info.capacity_sectors)

let read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  t.ops.op_read ~lba ~sectors

let write t ?(fua = false) ~lba data =
  let len = String.length data in
  assert (len > 0 && len mod t.info.sector_size = 0);
  check_range t ~lba ~sectors:(len / t.info.sector_size);
  t.ops.op_write ~lba ~data ~fua

let flush t = t.ops.op_flush ()
let power_cut t = t.ops.op_power_cut ()

let durable_read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  t.ops.op_durable_read ~lba ~sectors

let durable_extent t = t.ops.op_durable_extent ()

let sectors_of_bytes t bytes =
  (bytes + t.info.sector_size - 1) / t.info.sector_size

module Media = struct
  type t = {
    sector_size : int;
    capacity_sectors : int;
    sectors : (int, string) Hashtbl.t;
    mutable extent : int;
    base : t option;
        (* an overlay reads through to [base] where it has no sector of
           its own; see {!overlay} *)
  }

  let create ~sector_size ~capacity_sectors =
    assert (sector_size > 0 && capacity_sectors > 0);
    {
      sector_size;
      capacity_sectors;
      sectors = Hashtbl.create 4096;
      extent = 0;
      base = None;
    }

  let overlay base =
    {
      sector_size = base.sector_size;
      capacity_sectors = base.capacity_sectors;
      sectors = Hashtbl.create 64;
      extent = base.extent;
      base = Some base;
    }

  let sector_size t = t.sector_size
  let capacity_sectors t = t.capacity_sectors

  let rec find t lba =
    match Hashtbl.find_opt t.sectors lba with
    | Some _ as hit -> hit
    | None -> ( match t.base with Some base -> find base lba | None -> None)

  let read t ~lba ~sectors =
    let buf = Bytes.make (sectors * t.sector_size) '\000' in
    for i = 0 to sectors - 1 do
      match find t (lba + i) with
      | Some s -> Bytes.blit_string s 0 buf (i * t.sector_size) t.sector_size
      | None -> ()
    done;
    Bytes.unsafe_to_string buf

  let write_sectors t ~lba ~data ~count =
    for i = 0 to count - 1 do
      Hashtbl.replace t.sectors (lba + i)
        (String.sub data (i * t.sector_size) t.sector_size)
    done;
    if lba + count > t.extent then t.extent <- lba + count

  let write t ~lba ~data =
    let len = String.length data in
    assert (len mod t.sector_size = 0);
    write_sectors t ~lba ~data ~count:(len / t.sector_size)

  let write_torn t ~rng ~lba ~data =
    let len = String.length data in
    assert (len mod t.sector_size = 0);
    let total = len / t.sector_size in
    let persisted = Desim.Rng.int rng (total + 1) in
    if persisted > 0 then write_sectors t ~lba ~data ~count:persisted

  let write_prefix t ~lba ~data ~sectors =
    assert (String.length data mod t.sector_size = 0);
    assert (sectors >= 0 && sectors * t.sector_size <= String.length data);
    if sectors > 0 then write_sectors t ~lba ~data ~count:sectors

  let extent t = t.extent
  let check_range = check_range
end

(* A frozen device over a media image: only the durable (untimed) side
   exists. The crash-surface reconstruction hands these to {!Dbms}
   recovery, which by design touches nothing but [durable_read] and
   [durable_extent] of a post-crash device. *)
let of_media ?(model = "frozen") media =
  let frozen op = fun _ -> failwith ("Block.of_media: " ^ op ^ " on frozen device") in
  make
    ~info:
      {
        model;
        sector_size = Media.sector_size media;
        capacity_sectors = Media.capacity_sectors media;
      }
    ~stats:(Disk_stats.create ())
    ~ops:
      {
        op_read = (fun ~lba ~sectors -> Media.read media ~lba ~sectors);
        op_write = (fun ~lba:_ ~data:_ ~fua:_ -> frozen "write" ());
        op_flush = (fun () -> frozen "flush" ());
        op_power_cut = (fun () -> ());
        op_durable_read = (fun ~lba ~sectors -> Media.read media ~lba ~sectors);
        op_durable_extent = (fun () -> Media.extent media);
      }
    ()
