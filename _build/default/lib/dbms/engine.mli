(** The storage engine: transactions over the WAL, buffer pool and lock
    table.

    Transactions are executed by {!exec}: the write set is locked in key
    order (strict 2PL, deadlock-free by ordering), updates are logged
    with before/after images and applied to buffer-pool pages, and commit
    appends a commit record and forces the WAL. With the profile's group
    commit enabled, concurrent commits batch into one log write; with it
    disabled, commits serialise one flush each.

    Values must be non-empty (an empty before-image encodes "key absent"
    in the log). Aborts log compensating updates before the abort record,
    so recovery's redo-history/undo-losers scheme stays exact. *)

type op =
  | Put of { key : int; value : string }  (** value must be non-empty *)
  | Get of { key : int }
  | Delete of { key : int }

type txn_result = {
  txid : int;
  writes : (int * string option) list;
      (** committed (key, value) pairs in key order; [None] is a delete *)
  reads : (int * string option) list;
  latency : Desim.Time.span;  (** begin to commit-ack *)
}

type t

val create :
  vmm:Hypervisor.Vmm.t ->
  profile:Engine_profile.t ->
  ?async_commit:bool ->
  ?first_txid:int ->
  wal:Wal.t ->
  pool:Buffer_pool.t ->
  unit ->
  t
(** [async_commit] (default false) makes commit acknowledge without
    forcing the log — PostgreSQL's [synchronous_commit = off]. The
    caller is expected to run a background WAL writer (see
    {!spawn_wal_writer}); recently acknowledged transactions are lost on
    any crash, which is exactly the baseline's deal. *)

val spawn_wal_writer :
  t -> Hypervisor.Domain.t -> interval:Desim.Time.span -> Desim.Process.handle
(** Background process forcing the WAL every [interval] (the
    [wal_writer_delay] of the async-commit configuration). *)

val profile : t -> Engine_profile.t
val wal : t -> Wal.t
val pool : t -> Buffer_pool.t

val exec : t -> op list -> txn_result
(** Run one transaction to commit. Must run in a (guest) process.
    Within a transaction all reads execute before all writes (the write
    set is locked and applied in key order), so a [Get] observes the
    pre-transaction value even if the same list also writes the key. *)

val exec_abort : t -> op list -> int
(** Run the transaction's updates, then roll it back; returns the txid.
    For failure-path tests. *)

val committed_txids : t -> int list
(** Ascending txids of every transaction this engine committed (i.e.
    acked); the durability audit compares this against recovery. *)

val committed_count : t -> int
val aborted_count : t -> int
val latencies : t -> Desim.Stats.Sample.t
(** Commit latencies in microseconds. *)

val log_bytes_per_txn : t -> float
(** Mean log-stream bytes generated per committed transaction. *)
