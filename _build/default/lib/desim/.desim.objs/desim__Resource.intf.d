lib/desim/resource.mli: Sim
