open Desim

type config = {
  master_lba : int;
  log_start_lba : int;
  flush_after_write : bool;
  streams : int;
  stream_stride_sectors : int;
}

let default_config =
  {
    master_lba = 0;
    log_start_lba = 8;
    flush_after_write = false;
    streams = 1;
    stream_stride_sectors = 1 lsl 16;
  }

let stream_start_lba config s = config.log_start_lba + (s * config.stream_stride_sectors)

type wal_metrics = {
  wm_force_write : Metrics.Histogram.t;  (* physical write of one force *)
  wm_appends : Metrics.Counter.t;
  wm_append_bytes : Metrics.Counter.t;
}

(* One independent append stream: its own byte sequence (per-stream LSNs
   are offsets into it), its own durable prefix, its own force mutex —
   so two streams' device writes overlap in time — and its own device
   region starting at [s_start_lba]. With [streams = 1] there is exactly
   one of these over the region at [log_start_lba], and every code path
   below reduces to the single-log behaviour byte for byte. *)
type stream_state = {
  s_buf : Buffer.t;  (* log bytes from [s_base] onwards; older bytes are
                        recycled by {!truncate} *)
  mutable s_base : int;  (* stream offset of [Buffer.nth s_buf 0] *)
  mutable s_flushed : Lsn.t;
  s_mutex : Resource.Mutex.t;
  mutable s_pending : int;  (* committers inside {!force_batched} *)
  mutable s_ewma_ns : int;  (* EWMA of this stream's device write latency *)
  s_start_lba : int;
}

type t = {
  config : config;
  device : Storage.Block.t;
  sim : Sim.t;
  streams : stream_state array;
  mutable policy : Commit_policy.t;
  mutable forces : int;
  mutable truncated_bytes : int;
  force_bytes : Stats.Sample.t;
  (* Cross-stream commit-dependency watermark: slot [s] carries the
     highest per-stream LSN any committed transaction has depended on.
     The engine folds it into every commit's dependency vector (and
     publishes the vector back), which totally orders multi-stream
     commits: a commit record can only be valid after crash if every
     earlier commit's dependencies are durable too. Mutated without a
     lock — the simulation is cooperative and the read-modify-write has
     no blocking point. *)
  dep_watermark : int array;
  metrics : wal_metrics option;
}

let create sim config ~device =
  assert (config.master_lba < config.log_start_lba);
  assert (config.streams >= 1);
  if config.streams > 1 then begin
    assert (config.stream_stride_sectors > 0);
    assert (
      stream_start_lba config config.streams
      <= (Storage.Block.info device).Storage.Block.capacity_sectors)
  end;
  {
    config;
    device;
    sim;
    streams =
      Array.init config.streams (fun s ->
          {
            s_buf = Buffer.create 65536;
            s_base = 0;
            s_flushed = Lsn.zero;
            s_mutex = Resource.Mutex.create sim;
            s_pending = 0;
            s_ewma_ns = 0;
            s_start_lba = stream_start_lba config s;
          });
    policy = Commit_policy.default;
    forces = 0;
    truncated_bytes = 0;
    force_bytes = Stats.Sample.create ();
    dep_watermark = Array.make config.streams 0;
    metrics =
      Option.map
        (fun reg ->
          {
            wm_force_write = Metrics.histogram reg "wal.force_write";
            wm_appends = Metrics.counter reg "wal.appends";
            wm_append_bytes = Metrics.counter reg "wal.append_bytes";
          })
        (Metrics.recording ());
  }

let create_resumed sim (config : config) ~device ~flushed ~tail =
  assert (config.streams = 1);
  let t = create sim config ~device in
  let st = t.streams.(0) in
  let ss = (Storage.Block.info device).Storage.Block.sector_size in
  let flushed_b = Lsn.to_int flushed in
  assert (String.length tail = flushed_b mod ss);
  st.s_base <- flushed_b / ss * ss;
  Buffer.add_string st.s_buf tail;
  st.s_flushed <- flushed;
  t

let stream_count t = t.config.streams
let set_policy t policy = t.policy <- policy
let policy t = t.policy
let dep_watermark t = t.dep_watermark

let append ?(stream = 0) t record =
  let st = t.streams.(stream) in
  let before = Buffer.length st.s_buf in
  Log_record.encode_into record st.s_buf;
  (match t.metrics with
  | Some m ->
      Metrics.Counter.incr m.wm_appends;
      Metrics.Counter.add m.wm_append_bytes (Buffer.length st.s_buf - before)
  | None -> ());
  Lsn.of_int (st.s_base + Buffer.length st.s_buf)

let end_lsn ?(stream = 0) t =
  let st = t.streams.(stream) in
  Lsn.of_int (st.s_base + Buffer.length st.s_buf)

let flushed_lsn ?(stream = 0) t = t.streams.(stream).s_flushed
let ewma_ns ?(stream = 0) t = t.streams.(stream).s_ewma_ns

let sector_size t = (Storage.Block.info t.device).Storage.Block.sector_size

(* Bytes [from_b, to_b) of the stream as whole sectors, zero-padded past
   the stream end. *)
let sector_slice st ~from_b ~to_b =
  assert (from_b >= st.s_base);
  let stream_end = st.s_base + Buffer.length st.s_buf in
  let available = min to_b stream_end in
  let slice = Buffer.sub st.s_buf (from_b - st.s_base) (available - from_b) in
  if available = to_b then slice
  else slice ^ String.make (to_b - available) '\000'

let do_force t st =
  let ss = sector_size t in
  let target_end = st.s_base + Buffer.length st.s_buf in
  let from_b = Lsn.to_int st.s_flushed / ss * ss in
  let to_b = (target_end + ss - 1) / ss * ss in
  (* Nothing new, but the caller insists on a physical write (an engine
     without group commit): rewrite the tail sector. *)
  let from_b = if from_b >= to_b then max st.s_base (to_b - ss) else from_b in
  if t.config.streams > 1 then
    assert (to_b <= t.config.stream_stride_sectors * ss);
  if to_b > from_b then begin
    let data = sector_slice st ~from_b ~to_b in
    let write_started = Time.to_ns (Sim.now t.sim) in
    Storage.Block.write t.device ~lba:(st.s_start_lba + (from_b / ss)) data;
    if t.config.flush_after_write then Storage.Block.flush t.device;
    let finished = Time.to_ns (Sim.now t.sim) in
    (* The adaptive policy's latency estimate: observed unconditionally
       (pure integer state, no events, no rng) so the simulated history
       stays bit-identical whether or not any policy reads it. *)
    st.s_ewma_ns <-
      Commit_policy.ewma_update ~prev:st.s_ewma_ns ~obs:(finished - write_started);
    match t.metrics with
    | Some m ->
        Metrics.Histogram.observe m.wm_force_write
          (float_of_int (finished - write_started) /. 1e3)
    | None -> ()
  end;
  t.forces <- t.forces + 1;
  Stats.Sample.add t.force_bytes (float_of_int (to_b - from_b));
  st.s_flushed <- Lsn.of_int target_end

let force ?(stream = 0) t target =
  let st = t.streams.(stream) in
  assert (Lsn.(target <= end_lsn ~stream t));
  if Lsn.(st.s_flushed < target) then
    Resource.Mutex.with_lock st.s_mutex (fun () ->
        (* A force that completed while we waited may cover us (group
           commit); only hit the device if it did not. *)
        if Lsn.(st.s_flushed < target) then do_force t st)

(* The commit path's force: same durability contract as {!force}, plus
   the policy's gather wait. [Fixed 1] and [Serial] skip the wait
   without scheduling anything, so the default configuration's event
   history is identical to {!force}. *)
let force_batched ?(stream = 0) t target =
  let st = t.streams.(stream) in
  assert (Lsn.(target <= end_lsn ~stream t));
  if Lsn.(st.s_flushed < target) then begin
    st.s_pending <- st.s_pending + 1;
    (match t.policy with
    | Commit_policy.Serial | Commit_policy.Fixed 1 -> ()
    | policy ->
        let entered = Time.to_ns (Sim.now t.sim) in
        let rec gather () =
          if Lsn.(st.s_flushed < target) then begin
            let wait =
              Commit_policy.decide policy ~ewma_ns:st.s_ewma_ns
                ~pending:st.s_pending
                ~waited_ns:(Time.to_ns (Sim.now t.sim) - entered)
            in
            if wait > 0 then begin
              Process.sleep (Time.ns wait);
              gather ()
            end
          end
        in
        gather ());
    Resource.Mutex.with_lock st.s_mutex (fun () ->
        if Lsn.(st.s_flushed < target) then do_force t st);
    st.s_pending <- st.s_pending - 1
  end

let force_exclusive ?(stream = 0) t =
  let st = t.streams.(stream) in
  Resource.Mutex.with_lock st.s_mutex (fun () -> do_force t st)

let master_magic = 0x4D535452l (* "MSTR" *)

let encode_master t lsn =
  let ss = sector_size t in
  let buf = Bytes.make ss '\000' in
  Bytes.set_int32_le buf 0 master_magic;
  Bytes.set_int64_le buf 4 (Int64.of_int (Lsn.to_int lsn));
  Bytes.set_int32_le buf 12 (Crc32.digest_bytes buf ~pos:0 ~len:12);
  Bytes.unsafe_to_string buf

let write_master t lsn =
  Storage.Block.write t.device ~fua:true ~lba:t.config.master_lba (encode_master t lsn)

let read_master config ~device =
  let sector =
    Storage.Block.durable_read device ~lba:config.master_lba ~sectors:1
  in
  if String.get_int32_le sector 0 <> master_magic then None
  else if Crc32.digest sector ~pos:0 ~len:12 <> String.get_int32_le sector 12 then
    None
  else Some (Lsn.of_int (Int64.to_int (String.get_int64_le sector 4)))

let truncate t lsn =
  assert (t.config.streams = 1);
  let st = t.streams.(0) in
  assert (Lsn.(lsn <= st.s_flushed));
  let ss = sector_size t in
  let cut = Lsn.to_int lsn / ss * ss in
  if cut > st.s_base then begin
    let keep =
      Buffer.sub st.s_buf (cut - st.s_base) (st.s_base + Buffer.length st.s_buf - cut)
    in
    Buffer.clear st.s_buf;
    Buffer.add_string st.s_buf keep;
    t.truncated_bytes <- t.truncated_bytes + (cut - st.s_base);
    st.s_base <- cut
  end

let base_lsn ?(stream = 0) t = Lsn.of_int t.streams.(stream).s_base
let truncated_bytes t = t.truncated_bytes
let forces t = t.forces
let force_bytes t = t.force_bytes
let stream_contents ?(stream = 0) t = Buffer.contents t.streams.(stream).s_buf
