type record = { time : Time.t; tag : string; message : string }

type sink =
  | Null
  | Collect of { capacity : int; items : record Queue.t }
  | Print of Format.formatter

type t = { sink : sink; mutable emitted : int }

let null = { sink = Null; emitted = 0 }

let collector ?(capacity = 4096) () =
  assert (capacity > 0);
  { sink = Collect { capacity; items = Queue.create () }; emitted = 0 }

let printer fmt = { sink = Print fmt; emitted = 0 }

let record t time tag message =
  t.emitted <- t.emitted + 1;
  match t.sink with
  | Null -> ()
  | Collect { capacity; items } ->
      Queue.push { time; tag; message } items;
      if Queue.length items > capacity then ignore (Queue.pop items)
  | Print fmt -> Format.fprintf fmt "[%a] %-12s %s@." Time.pp time tag message

(* A [Null] sink never formats: [ikfprintf] consumes the arguments
   without rendering them, so hot-path emits (the drainer, logger
   backpressure) cost a branch instead of a formatted-and-dropped
   string. Null traces consequently do not count emissions either. *)
let emit t sim ~tag fmt =
  match t.sink with
  | Null -> Format.ikfprintf ignore Format.err_formatter fmt
  | Collect _ | Print _ ->
      Format.kasprintf (fun message -> record t (Sim.now sim) tag message) fmt

let records t =
  match t.sink with
  | Null | Print _ -> []
  | Collect { items; _ } -> List.of_seq (Queue.to_seq items)

let count t = t.emitted
