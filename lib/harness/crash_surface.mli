(** Exhaustive crash-surface exploration.

    The sampled failure experiments ({!Experiment.run_failure}) draw a
    handful of random crash instants per configuration; an ordering bug
    that only bites in a narrow window — say, between a virtio ring
    publish and trusted-logger admission — would likely never be hit.
    This module turns the sampled evidence into systematic evidence: it
    replays a fixed-seed scenario once to {b enumerate every event
    boundary} inside a time window, then re-runs the scenario once per
    boundary (or every [stride]-th), injects a failure {b exactly} at
    that boundary, recovers from post-crash media, and audits.

    Determinism is what makes this sound: two simulations built from the
    same configuration execute identical event sequences, so an event
    index names the same instant in the enumeration replay and in the
    crash replay — {!run_point} cross-checks the clock against the
    enumerated timestamp and fails loudly if replay determinism is ever
    broken. Crash points are independent simulations, so {!sweep} fans
    them out over {!Parallel} with verdicts bit-identical to a serial
    sweep.

    Four crash kinds distinguish the failure modes the paper's claim 3
    covers, plus the one it does not: a guest-OS crash (the logger's
    drain simply continues), a mains power cut (the drain races the PSU
    hold-up window), a power cut under a deliberately tight
    residual-energy budget with a correspondingly small trusted buffer
    (the budget expires mid-activity, so window-expiry effects — torn
    in-flight writes, the halt just before device death — are actually
    exercised), and {b machine loss} — the whole primary vanishing with
    no residual window at all, the failure that bounds local RapiLog's
    durability domain and that only the replicated scenario
    ([Rapilog_replicated], {!Net.Replication}) survives. *)

type kind = Os_crash | Power_cut | Power_cut_tight | Machine_loss

val kind_name : kind -> string
val kind_of_name : string -> kind option

val all_kinds : kind list
(** Every kind, including [Machine_loss]. *)

val default_kinds : kind list
(** The three single-machine kinds — what {!default} sweeps.
    [Machine_loss] is opt-in because local RapiLog is {e expected} to
    lose buffered commits to it; include it explicitly when sweeping a
    replicated scenario (or when measuring the local loss). *)

type config = {
  scenario : Scenario.config;
  window_start : Desim.Time.span;
      (** window opens this long after the load phase completes *)
  window_length : Desim.Time.span;
  stride : int;  (** explore every [stride]-th boundary; 1 = all *)
  kinds : kind list;
  tight_window : Desim.Time.span;
      (** PSU hold-up budget for [Power_cut_tight] *)
  tight_buffer_bytes : int;
      (** trusted-buffer size for [Power_cut_tight]; must fit the tight
          budget at the log device's streaming bandwidth or the
          configuration itself violates the logger's admission
          precondition *)
  media_digests : bool;
      (** compute {!verdict.v_media_crc} per point. Off by default: the
          digest walks the whole durable extent and exists to certify
          that full replay and journal reconstruction produced
          bit-identical post-crash media, not for timing runs. *)
}

val default : Scenario.config -> config
(** Window of 40 ms opening 5 ms after load, stride 1, the
    {!default_kinds}, 20 ms tight budget with a 128 KiB buffer. *)

type enumeration = {
  e_kind : kind;
  e_window_start_ns : int;
  e_window_end_ns : int;
  e_boundaries : int;  (** every event boundary inside the window *)
  e_candidates : (int * int) array;
      (** (event index, clock ns) of each boundary, already strided *)
}

val enumerate : config -> kind -> enumeration
(** One full replay of the scenario under [kind]'s effective
    configuration, recording each event boundary whose clock falls in
    [\[window_start, window_end)]. *)

type verdict = {
  v_kind : kind;
  v_event_index : int;  (** events executed when the failure was injected *)
  v_at_ns : int;  (** simulated clock at the injection boundary *)
  v_acked : int;  (** write txns acknowledged over the whole run *)
  v_lost : int;  (** acknowledged but not recovered — durability breaks *)
  v_extra : int;  (** durable but never acknowledged — always permitted *)
  v_state_exact : bool;
  v_diff_count : int;
  v_invariant_violations : int;
  v_buffered_at_cut : int;  (** trusted-buffer bytes at injection; -1 if no logger *)
  v_media_crc : int;
      (** digest of the post-crash durable media (log then data volume),
          computed through the {!Storage.Block} durable interface on
          whichever path produced the state — full replay or journal
          reconstruction; -1 when [media_digests] is off *)
  v_stats : Dbms.Recovery.replay_stats;
  v_tenant_acked : int;
      (** tenant entries acknowledged by the sharded tier over the whole
          run; 0 outside [Rapilog_sharded] mode *)
  v_tenant_lost : int;
      (** tenant entries acknowledged but absent from the merged
          per-shard recovery — per-tenant durability breaks *)
  v_tenant_extra : int;
      (** tenant entries durable but never acknowledged — permitted *)
  v_tenant_breaks : int;  (** tenants with at least one lost entry *)
  v_contract_ok : bool;
      (** the always-durable contract: nothing lost, state exact, zero
          runtime invariant violations — and, in [Rapilog_sharded] mode,
          zero tenants with lost entries. Expected true at {e every}
          point for RapiLog; expected false somewhere for the
          unprotected baselines — that asymmetry is the sweep's
          teeth. *)
}

val run_point : config -> kind -> event_index:int -> at_ns:int -> verdict
(** Re-run the scenario, stop at [event_index] executed events, verify
    the clock equals [at_ns] (replay-determinism cross-check; raises
    [Failure] otherwise), inject [kind]'s failure at that exact
    boundary, let the simulation settle, recover and audit. *)

type kind_summary = {
  k_kind : kind;
  k_boundaries : int;
  k_explored : int;
  k_contract_breaks : int;
  k_lost : int;  (** acknowledged-commit losses summed over the kind's points *)
}

type result = {
  r_mode : Scenario.mode;
  r_stride : int;
  r_kinds : kind_summary list;
  r_total_boundaries : int;
  r_explored : int;
  r_contract_breaks : int;
  r_lost_total : int;
  r_verdicts : verdict list;  (** kind-major, boundary order *)
}

val sweep : ?jobs:int -> config -> result
(** Enumerate each kind, then evaluate every candidate crash point on
    the {!Parallel} worker pool ([jobs] defaults to
    {!Parallel.default_jobs}, [RAPILOG_JOBS] overrides). Results are in
    deterministic kind-major boundary order and bit-identical to
    [~jobs:1]. *)

(** {2 Crash pairs and partition schedules}

    The quorum scenario ([Rapilog_quorum], {!Net.Quorum}) promises more
    than single-machine loss: the acknowledged prefix survives the
    primary {e plus} any [quorum - 1] replicas, partitions included. The
    pair sweep tests exactly that surface: for every (strided) ordered
    pair of boundary candidates [(t_i, t_j)] with [t_i <= t_j] and every
    schedule below, the first action lands {e exactly} at event boundary
    [i] (same replay-determinism clock cross-check as {!run_point}) and
    the second at clock instant [t_j] — time-targeted, because the first
    injection perturbs the event sequence, while the enumerated instant
    remains a well-defined point of the perturbed run. The
    killed/partitioned replica rotates over the pair grid as
    [(i + j) mod replicas]. Pair points always run as full replays: the
    journal engine reconstructs one machine's durable state and cannot
    synthesize the cluster's network. *)

type pair_schedule =
  | Primary_then_node
      (** primary machine-loss at [t_i], replica loss at [t_j] *)
  | Node_then_primary
      (** replica loss at [t_i], primary machine-loss at [t_j] *)
  | Partition_commit
      (** replica partitioned at [t_i], primary machine-loss at [t_j]
          with the partition still up — commits must have kept flowing
          through the rest of the quorum *)
  | Partition_heal
      (** replica partitioned at [t_i], healed at the midpoint, primary
          machine-loss at [t_j] — the flushed backlog must merge back
          deterministically *)

val pair_schedule_name : pair_schedule -> string
val pair_schedule_of_name : string -> pair_schedule option
val all_pair_schedules : pair_schedule list

type pair_verdict = {
  pv_schedule : pair_schedule;
  pv_first_event : int;
  pv_first_ns : int;
  pv_second_ns : int;
  pv_node : int;  (** the replica killed or partitioned *)
  pv_acked : int;
  pv_lost : int;
  pv_extra : int;
  pv_state_exact : bool;
  pv_invariant_violations : int;
  pv_elected : int;
      (** leader chosen by the recovery election; -1 if none was live *)
  pv_term : int;
  pv_election_quorate : bool;
      (** the election reached its adoption quorum — guaranteed at
          majority quorum under any single-replica loss, and exactly
          what an under-replicated cell forfeits *)
  pv_contract_ok : bool;
}

val run_pair_point :
  config ->
  schedule:pair_schedule ->
  first_event:int ->
  first_ns:int ->
  second_ns:int ->
  node:int ->
  pair_verdict
(** One pair point: replay to [first_event] (clock must equal
    [first_ns]), apply the schedule's first action there and its second
    at [second_ns], settle, recover through
    {!Scenario.recovery_log_device} (which runs the quorum election) and
    audit. Raises [Invalid_argument] unless the scenario is
    [Rapilog_quorum]. *)

type pair_summary = {
  ps_schedule : pair_schedule;
  ps_points : int;
  ps_breaks : int;
  ps_lost : int;
}

type pair_result = {
  pr_mode : Scenario.mode;
  pr_candidates : int;  (** boundary candidates on each axis *)
  pr_pairs : int;  (** ordered pairs available before pruning *)
  pr_points : int;  (** pair points actually run, all schedules *)
  pr_breaks : int;
  pr_lost_total : int;
  pr_schedules : pair_summary list;
  pr_verdicts : pair_verdict list;  (** schedule-major, grid order *)
}

val sweep_pairs :
  ?jobs:int -> config -> schedules:pair_schedule list -> target:int -> pair_result
(** Enumerate machine-loss boundaries once, form every ordered candidate
    pair, prune to ~[target] pairs by striding the flattened grid (both
    axes stay covered), and run every schedule over the same pair set on
    the {!Parallel} pool — deterministic order, bit-identical to
    [~jobs:1]. Raises [Invalid_argument] unless the scenario mode is
    [Rapilog_quorum]. *)

(** {2 Journal-based incremental sweep}

    {!sweep} costs one full scenario replay per crash point. The journal
    sweep replays each kind {e once} with {!Desim.Journal} recording
    enabled, then reconstructs every boundary's post-crash media
    incrementally from the journal — applying each durable delta exactly
    once across the whole sweep — and runs only recovery plus the audit
    per point. Soundness (determinism of the reference run, completeness
    of the journaled deltas, and the tie-break rules for writes racing
    the PSU window) is documented in the implementation and certified
    empirically by the differential oracle in the test suite and bench:
    with [media_digests] on, verdicts — including the media digest — are
    bit-identical to {!run_point}'s. *)

val journal_supported : Scenario.config -> bool
(** The journal reconstruction models the Rapilog drain path onto
    rotational devices with a dedicated log disk; other modes and
    devices fall back to {!sweep}. *)

val sweep_journal : ?jobs:int -> config -> result
(** Journal-based sweep over the same candidate set as {!sweep}, in the
    same deterministic kind-major boundary order. Raises
    [Invalid_argument] unless {!journal_supported}. Within a kind the
    candidate range is split into at most 16 contiguous chunks whose
    boundaries depend only on the candidate count, each chunk replays
    the journal prefix from scratch, so results are bit-identical at any
    [jobs]. *)

val sweep_fork : ?jobs:int -> config -> result
(** {!sweep_journal} with snapshot forking instead of per-chunk prefix
    replay: one producer cursor per kind folds the journal exactly
    once, forking its state — copy-on-write media images
    ({!Storage.Block.Media.fork}), ring replica, incremental-recovery
    cursor ({!Dbms.Recovery.Incremental.fork}) — at each chunk's first
    candidate boundary, and every worker folds only its own chunk.
    Same chunk partition, same per-point reconstruction, therefore
    verdicts (media digests included) bit-identical to {!sweep_journal}
    at any [jobs]; total journal-fold work drops from about half the
    chunk count in full passes to two. Raises [Invalid_argument]
    unless {!journal_supported}. *)
