lib/workload/ycsb_lite.mli: Dbms Desim
