lib/storage/ssd.mli: Block Desim
