(** Per-tenant recovery and the per-tenant durability audit.

    A shard's durable state recovers with the {e same} machinery the
    single-tenant DBMS uses: {!Dbms.Recovery.run} over the shard's raw
    device with the tier's WAL layout ({!Tier.wal_config}) — per-stream
    region-bounded scans, durable prefixes, dependency-valid commits.
    The committed txids then unpack through {!Rapilog.Tenant} into
    per-tenant sequence sets, and a tenant's recovered state is the
    {e union} of its sets across every shard (rebalancing may leave a
    tenant's history split across the source and destination of a
    bucket move).

    The contract audited per tenant: {b every acknowledged sequence
    number is recovered}. Gaps among {e unacknowledged} sequence
    numbers are permitted (an unacked append may or may not have
    reached media — same as the single-tenant audit's "extra"
    category); an acknowledged one missing is a durability break. *)

type tenant_audit = {
  a_tenants : int;  (** tenants that submitted anything *)
  a_acked : int;  (** acknowledged appends, all tenants *)
  a_recovered : int;  (** recovered (durably committed) appends *)
  a_lost : int;  (** acknowledged but not recovered — contract breaks *)
  a_extra : int;  (** recovered but never acknowledged — permitted *)
  a_breaks : int;  (** tenants with [a_lost > 0] *)
  a_min_prefix_ratio : float;
      (** min over active tenants of
          [recovered consecutive prefix / submitted]; 1.0 when every
          tenant's whole history survived, [nan] with no active
          tenants *)
}

val pp_audit : Format.formatter -> tenant_audit -> unit

val shard_result : Tier.t -> int -> Dbms.Recovery.result
(** Post-crash recovery of one shard's device, untimed and pure:
    {!Dbms.Recovery.run} with the tier's WAL layout and an inert pool
    config (the tier stores no data pages — the log {e is} the
    store). *)

val tenant_seqs : Dbms.Recovery.result list -> (int, int list) Hashtbl.t
(** Merge recovery results (one per shard) into tenant → sorted list
    of recovered sequence numbers. Only {!Rapilog.Tenant.is_tagged}
    txids count; a co-resident DBMS's plain txids are ignored. *)

val prefix_length : int list -> int
(** Length of the longest consecutive prefix [1, 2, ..] of an
    ascending list. *)

val audit : Tier.t -> tenant_audit
(** Recover every shard ({!shard_result}), merge ({!tenant_seqs}), and
    check each tenant's acknowledged set against its recovered set.
    Callable from any context at any simulated time — normally after a
    crash, or after {!Tier.quiesce} at the end of a steady run. *)
