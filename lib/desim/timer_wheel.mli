(** Hierarchical timer wheel — the production {!Event_queue} backend.

    Four levels of 256 slots; level 0 resolves single nanoseconds, so a
    FIFO list per slot preserves the (time, insertion-sequence) order
    exactly, and the levels together cover a [2^32] ns window around the
    wheel clock. Coarser slots cascade downward lazily as the clock
    reaches them; events beyond the window park in a {!Binary_heap}
    overflow sharing the wheel's sequence counter, and popping compares
    both heads on (time, seq), so the pop order is identical to the
    heap's — certified by the wheel-vs-heap qcheck model test and the
    [perf.exe --check] ordering fingerprint.

    {!add} and {!pop_min}/{!drain_one} are amortised O(1): an event is
    appended once and cascaded at most [levels - 1] times, all over flat
    unboxed arrays with zero steady-state allocation.

    {b Monotone-add contract}: [add ~time] requires [time] at or after
    the last popped time — slot placement is relative to the wheel
    clock, which trails the popped minimum. {!Sim} guarantees this
    ([Sim.schedule_at] refuses to schedule into the simulated past). Use
    {!Binary_heap} where inserts arrive in arbitrary time order. *)

type 'a t

val create : unit -> 'a t
(** An empty wheel with clock 0; the first {!add} allocates the pool. *)

val add : 'a t -> time:Time.t -> 'a -> unit
(** Insert an event payload to fire at [time]. Allocation-free except
    when the node pool has to grow. Raises [Invalid_argument] if [time]
    precedes the last popped time. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Events currently queued (wheel slots plus overflow). *)

val max_length : 'a t -> int
(** High-water mark of {!length} over the wheel's lifetime. *)

val scheduled : 'a t -> int
(** Total events ever inserted (the next sequence number). *)

val min_time : 'a t -> Time.t
(** Time of the earliest event. Non-empty (checked by an assert);
    callers guard with {!is_empty}. May cascade internally; the located
    minimum is cached for the following {!pop_min}. *)

val pop_min : 'a t -> 'a
(** Remove and return the earliest event's payload without boxing it.
    Non-empty (checked by an assert) — the allocation-free hot path. *)

val drain_one : 'a t -> f:(Time.t -> 'a -> unit) -> bool
(** [drain_one q ~f] pops the earliest event and applies [f time
    payload]; [false] (and [f] not called) when empty. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty.
    Convenience form; allocates the tuple and the [Some]. *)

val peek_time : 'a t -> Time.t option
(** Time of the earliest event without removing it. *)

val wheel_span : int
(** Nanoseconds covered by the wheel levels ([2^32]); events scheduled
    further than this past the clock's window take the overflow path.
    Exposed for the model tests' far-future generators. *)
