(* fig7-group-commit: the software alternative to RapiLog. Group commit
   amortises the rotational wait across concurrent committers, so sync
   throughput climbs with client count — but single-transaction latency
   stays rotational, and at low concurrency there is nothing to batch.
   RapiLog gets the low-latency behaviour at every client count without
   the tuning dance. *)

open Harness
open Bench_support

let fig7 =
  {
    id = "fig7-group-commit";
    title = "Fig 7: group commit vs RapiLog across client counts";
    description =
      "compares software group commit against rapilog across client counts";
    run =
      (fun ~quick ->
        Report.section "Fig 7: group commit vs RapiLog (7200 rpm disk, TPC-C-lite)";
        let clients = if quick then [ 1; 8; 32 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
        let run ~mode ~group_commit n =
          let config =
            {
              (base_config ~quick) with
              Scenario.mode;
              clients = n;
              profile =
                Dbms.Engine_profile.with_group_commit
                  Dbms.Engine_profile.postgres_like group_commit;
            }
          in
          steady config
        in
        let rows =
          List.map
            (fun n ->
              let nogc = run ~mode:Scenario.Native_sync ~group_commit:false n in
              let gc = run ~mode:Scenario.Native_sync ~group_commit:true n in
              let rapi = run ~mode:Scenario.Rapilog ~group_commit:true n in
              ( float_of_int n,
                [
                  nogc.Experiment.throughput;
                  gc.Experiment.throughput;
                  rapi.Experiment.throughput;
                  gc.Experiment.latency_p50_us;
                  rapi.Experiment.latency_p50_us;
                ] ))
            clients
        in
        Report.series ~title:"throughput and p50 latency" ~x_label:"clients"
          ~columns:
            [
              "sync no-gc txn/s";
              "sync gc txn/s";
              "rapilog txn/s";
              "sync gc p50us";
              "rapilog p50us";
            ]
          ~rows;
        Report.note
          "shape targets: no-gc flat at ~1/rotation regardless of clients; gc climbs with clients;";
        Report.note
          "rapilog above both everywhere, with p50 latency an order of magnitude below sync");
  }

let experiments = [ fig7 ]
