lib/harness/audit.mli: Dbms Format Hashtbl Rapilog
