open Desim

(* nan never belongs in a machine-readable report. *)
let num_or_null v = if Float.is_nan v then Json.Null else Json.Num v

let json_of_histogram h =
  let q p = num_or_null (Metrics.Histogram.quantile h p) in
  Json.Obj
    [
      ("kind", Json.Str "histogram");
      ("count", Json.Num (float_of_int (Metrics.Histogram.count h)));
      ("sum_us", Json.Num (Metrics.Histogram.sum h));
      ("min_us", num_or_null (Metrics.Histogram.min h));
      ("max_us", num_or_null (Metrics.Histogram.max h));
      ("mean_us", num_or_null (Metrics.Histogram.mean h));
      ("p50_us", q 0.5);
      ("p95_us", q 0.95);
      ("p99_us", q 0.99);
      ( "buckets",
        Json.Arr
          (List.map
             (fun (lower, upper, count) ->
               Json.Obj
                 [
                   ("lower_us", Json.Num lower);
                   ("upper_us", Json.Num upper);
                   ("count", Json.Num (float_of_int count));
                 ])
             (Metrics.Histogram.nonempty_buckets h)) );
    ]

let json_of_metric = function
  | Metrics.Counter c ->
      Json.Obj
        [
          ("kind", Json.Str "counter");
          ("value", Json.Num (float_of_int (Metrics.Counter.get c)));
        ]
  | Metrics.Gauge g ->
      Json.Obj
        [
          ("kind", Json.Str "gauge");
          ("value", Json.Num (Metrics.Gauge.get g));
          ("high_water", Json.Num (Metrics.Gauge.high_water g));
        ]
  | Metrics.Histogram h -> json_of_histogram h

let json_of reg =
  Json.Obj
    (List.rev
       (Metrics.fold reg
          (fun acc name metric -> (name, json_of_metric metric) :: acc)
          []))

let print reg =
  let histograms, scalars =
    Metrics.fold reg
      (fun (hs, ss) name metric ->
        match metric with
        | Metrics.Histogram h -> ((name, h) :: hs, ss)
        | Metrics.Counter _ | Metrics.Gauge _ -> (hs, (name, metric) :: ss))
      ([], [])
  in
  let histograms = List.rev histograms and scalars = List.rev scalars in
  if histograms <> [] then begin
    Report.subsection "stage latencies (us)";
    Report.table
      ~columns:[ "stage"; "count"; "mean"; "p50"; "p95"; "p99"; "max" ]
      ~rows:
        (List.map
           (fun (name, h) ->
             name
             :: string_of_int (Metrics.Histogram.count h)
             :: List.map Report.float_cell
                  [
                    Metrics.Histogram.mean h;
                    Metrics.Histogram.quantile h 0.5;
                    Metrics.Histogram.quantile h 0.95;
                    Metrics.Histogram.quantile h 0.99;
                    Metrics.Histogram.max h;
                  ])
           histograms)
  end;
  if scalars <> [] then begin
    Report.subsection "counters and gauges";
    List.iter
      (fun (name, metric) ->
        match metric with
        | Metrics.Counter c ->
            Report.kvf name "%d" (Metrics.Counter.get c)
        | Metrics.Gauge g ->
            Report.kvf name "%s (high water %s)"
              (Report.float_cell (Metrics.Gauge.get g))
              (Report.float_cell (Metrics.Gauge.high_water g))
        | Metrics.Histogram _ -> ())
      scalars
  end
