bench/bench_ycsb.ml: Bench_support Experiment Harness List Report Scenario Workload
