lib/desim/channel.mli: Sim
