(* Hierarchical timer wheel: the O(1)-amortised event queue behind
   [Event_queue] since PR 8.

   Layout. Four levels of 256 slots each; level [l]'s slot for an event
   at absolute nanosecond [t] is byte [l] of [t] (bits 8l..8l+7). Level
   0 therefore resolves single nanoseconds: one slot holds events for
   exactly one instant, so a FIFO list per slot reproduces the (time,
   sequence) tie-break for free — same-instant events pop in insertion
   order. Together the levels cover a 2^32 ns (~4.3 s) window around the
   wheel's clock; anything that differs from the clock above bit 31
   (far-future events, or any event scheduled across a 2^32 ns epoch
   boundary) parks in a [Binary_heap] overflow keyed by the same global
   sequence counter, and [pop] compares the wheel head against the
   overflow head on (time, seq), so order is exact across both stores.

   Placement. [cur] is the wheel clock, a lower bound on every queued
   time (it trails the last popped time). An event goes to the level of
   the highest byte in which its time differs from [cur] —
   [level_of (t lxor cur)]. Events in the current 256 ns window land in
   level 0 directly; coarser events land higher and are {e cascaded}
   down lazily: when a pop finds levels [0..l-1] empty, the lowest
   occupied slot of level [l] is the earliest pending window; [cur]
   jumps to that window's base and the slot's events redistribute (each
   strictly downward, so location terminates). Cascading a slot moves
   each of its nodes once, so an event is touched at most [levels]
   times between add and pop — amortised O(1) against the heap's
   O(log n) sift per operation.

   Storage. Slot lists are intrusive: nodes live in parallel unboxed
   arrays (time, seq, next) plus a payload array, chained through a free
   list, so steady-state add/pop allocate nothing. Slot occupancy is a
   bitmap per level (eight 32-bit words), scanned with
   find-lowest-set-bit, so "earliest occupied slot" costs a handful of
   word tests rather than a 256-slot walk.

   Contract. Adds must be monotone: [add ~time] requires [time] at or
   after the last popped time ([Invalid_argument] otherwise). [Sim]
   guarantees this — [schedule_at] asserts the target is not in the
   simulation's past — and it is what lets slot arithmetic drop absolute
   epochs. [Binary_heap] remains the backend of choice for order-free
   insertion patterns. *)

let log_w = 8
let w = 1 lsl log_w (* 256 slots per level *)
let levels = 4
let words = w / 32 (* occupancy words per level *)
let wheel_span = 1 lsl (log_w * levels) (* 2^32 ns covered by the wheel *)

type 'a t = {
  (* node pool: intrusive lists over parallel arrays *)
  mutable n_times : int array;
  mutable n_seqs : int array;
  mutable n_next : int array; (* next node in slot list or free list; -1 = end *)
  mutable n_payloads : 'a array;
  mutable free : int; (* head of the free list; -1 = pool exhausted *)
  mutable dummy : 'a array;
      (* one arbitrary payload once the pool exists; freed slots are
         overwritten with it so popped closures are not retained *)
  (* slots: [levels * w] list heads/tails, node index or -1 *)
  heads : int array;
  tails : int array;
  occ : int array; (* levels * words bitmap words, 32 slots each *)
  mutable cur : int; (* wheel clock: lower bound on every queued time *)
  mutable wheel_size : int; (* events in wheel slots (excludes overflow) *)
  overflow : 'a Binary_heap.t;
  mutable next_seq : int; (* one counter across wheel and overflow *)
  mutable max_size : int;
  mutable min_slot : int;
      (* cached level-0 slot of the wheel minimum; -1 = recompute *)
}

let create () =
  {
    n_times = [||];
    n_seqs = [||];
    n_next = [||];
    n_payloads = [||];
    free = -1;
    dummy = [||];
    heads = Array.make (levels * w) (-1);
    tails = Array.make (levels * w) (-1);
    occ = Array.make (levels * words) 0;
    cur = 0;
    wheel_size = 0;
    overflow = Binary_heap.create ();
    next_seq = 0;
    max_size = 0;
    min_slot = -1;
  }

let length q = q.wheel_size + Binary_heap.length q.overflow
let is_empty q = length q = 0
let max_length q = q.max_size
let scheduled q = q.next_seq

(* [x] must be non-negative: level = index of its highest set byte. *)
let level_of x =
  if x < 0x100 then 0
  else if x < 0x1_0000 then 1
  else if x < 0x100_0000 then 2
  else if x < 0x1_0000_0000 then 3
  else levels (* beyond the wheel span: overflow *)

(* No refs or local closures anywhere on the pop path: without flambda
   both compile to heap blocks, and this runs once per pop under the
   perf.exe zero-allocation gate. *)
let lsb_index w0 =
  let v = w0 land -w0 in
  let a = if v land 0xFFFF = 0 then 16 else 0 in
  let v = v lsr a in
  let b = if v land 0xFF = 0 then 8 else 0 in
  let v = v lsr b in
  let c = if v land 0xF = 0 then 4 else 0 in
  let v = v lsr c in
  let d = if v land 0x3 = 0 then 2 else 0 in
  let v = v lsr d in
  let e = if v land 0x1 = 0 then 1 else 0 in
  a + b + c + d + e

let set_occ q lvl slot =
  let wi = (lvl * words) + (slot lsr 5) in
  q.occ.(wi) <- q.occ.(wi) lor (1 lsl (slot land 31))

let clear_occ q lvl slot =
  let wi = (lvl * words) + (slot lsr 5) in
  q.occ.(wi) <- q.occ.(wi) land lnot (1 lsl (slot land 31))

(* Lowest occupied slot index of [lvl], or -1. Words below the clock's
   own position are provably empty (every resident sits at or above the
   clock's digit), so scanning from word 0 only skips zero words. *)
let rec scan_words q base wi =
  if wi = words then -1
  else
    let word = q.occ.(base + wi) in
    if word = 0 then scan_words q base (wi + 1)
    else (wi lsl 5) lor lsb_index word

let lowest_slot q lvl = scan_words q (lvl * words) 0

(* Lowest occupied level > 0, its slot packed into the low byte;
   [wheel_size > 0] (with level 0 empty) guarantees one exists. *)
let rec first_occupied q lvl =
  let s = lowest_slot q lvl in
  if s >= 0 then (lvl lsl log_w) lor s else first_occupied q (lvl + 1)

let grow_pool q payload =
  let cap = Array.length q.n_times in
  let cap' = if cap = 0 then 64 else 2 * cap in
  let n_times = Array.make cap' 0 in
  let n_seqs = Array.make cap' 0 in
  let n_next = Array.make cap' (-1) in
  let n_payloads = Array.make cap' payload in
  Array.blit q.n_times 0 n_times 0 cap;
  Array.blit q.n_seqs 0 n_seqs 0 cap;
  Array.blit q.n_next 0 n_next 0 cap;
  Array.blit q.n_payloads 0 n_payloads 0 cap;
  (* link the fresh tail of the pool into the free list *)
  for i = cap to cap' - 2 do
    n_next.(i) <- i + 1
  done;
  n_next.(cap' - 1) <- q.free;
  q.free <- cap;
  q.n_times <- n_times;
  q.n_seqs <- n_seqs;
  q.n_next <- n_next;
  q.n_payloads <- n_payloads;
  if Array.length q.dummy = 0 then q.dummy <- [| payload |]

let alloc_node q t seq payload =
  if q.free < 0 then grow_pool q payload;
  let n = q.free in
  q.free <- q.n_next.(n);
  q.n_times.(n) <- t;
  q.n_seqs.(n) <- seq;
  q.n_next.(n) <- -1;
  q.n_payloads.(n) <- payload;
  n

let free_node q n =
  q.n_next.(n) <- q.free;
  q.free <- n;
  if Array.length q.dummy > 0 then q.n_payloads.(n) <- q.dummy.(0)

(* Append an existing node to a slot's FIFO. Slot lists stay
   seq-ascending without sorting: direct adds carry a fresh (maximal)
   seq, and cascades preserve relative order into a level whose slots
   are empty at cascade time. *)
let append_node q lvl slot n =
  let idx = (lvl lsl log_w) lor slot in
  let tail = q.tails.(idx) in
  if tail < 0 then begin
    q.heads.(idx) <- n;
    set_occ q lvl slot
  end
  else q.n_next.(tail) <- n;
  q.tails.(idx) <- n

let add q ~time payload =
  let t = Time.to_ns time in
  if t < q.cur then
    invalid_arg "Timer_wheel.add: time precedes the last popped time";
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let lvl = level_of (t lxor q.cur) in
  if lvl >= levels then
    Binary_heap.add_seq q.overflow ~time_ns:t ~seq payload
  else begin
    let slot = (t lsr (log_w * lvl)) land (w - 1) in
    (if q.min_slot >= 0 && t < q.n_times.(q.heads.(q.min_slot)) then
       q.min_slot <- (if lvl = 0 then slot else -1));
    let n = alloc_node q t seq payload in
    append_node q lvl slot n;
    q.wheel_size <- q.wheel_size + 1
  end;
  let len = q.wheel_size + Binary_heap.length q.overflow in
  if len > q.max_size then q.max_size <- len

(* Empty slot [(lvl, slot)] and redistribute its events against the
   advanced clock. Each node lands strictly below [lvl]: its bytes above
   [lvl] equal the old clock's (placement invariant) and its byte [lvl]
   equals [slot] = the new clock's, so the xor's top byte is below
   [lvl]. *)
let rec redistribute q node =
  if node >= 0 then begin
    let next = q.n_next.(node) in
    let t = q.n_times.(node) in
    let lvl' = level_of (t lxor q.cur) in
    if lvl' >= levels then begin
      (* defensive only: redistribution always lands below the source *)
      Binary_heap.add_seq q.overflow ~time_ns:t ~seq:q.n_seqs.(node)
        q.n_payloads.(node);
      free_node q node;
      q.wheel_size <- q.wheel_size - 1
    end
    else begin
      q.n_next.(node) <- -1;
      append_node q lvl' ((t lsr (log_w * lvl')) land (w - 1)) node
    end;
    redistribute q next
  end

let cascade q lvl slot ~base =
  assert (base >= q.cur);
  let idx = (lvl lsl log_w) lor slot in
  let head = q.heads.(idx) in
  q.heads.(idx) <- -1;
  q.tails.(idx) <- -1;
  clear_occ q lvl slot;
  q.cur <- base;
  redistribute q head

(* Locate the wheel minimum, cascading coarse slots down until it sits
   in level 0. Returns the level-0 slot index; -1 when the wheel is
   empty; -2 when the overflow head precedes the earliest pending wheel
   window, in which case the cascade is skipped (advancing the clock
   past the overflow head would break the placement invariant) and the
   caller pops from overflow. *)
let rec locate q =
  if q.min_slot >= 0 then q.min_slot
  else if q.wheel_size = 0 then -1
  else begin
    let s0 = lowest_slot q 0 in
    if s0 >= 0 then begin
      q.min_slot <- s0;
      s0
    end
    else begin
      let packed = first_occupied q 1 in
      let lvl = packed lsr log_w and s = packed land (w - 1) in
      let shift = log_w * lvl in
      let base =
        q.cur land lnot ((1 lsl (shift + log_w)) - 1) lor (s lsl shift)
      in
      if
        (not (Binary_heap.is_empty q.overflow))
        && Binary_heap.min_time_ns q.overflow < base
      then -2
      else begin
        cascade q lvl s ~base;
        locate q
      end
    end
  end

let min_time_ns q =
  assert (length q > 0);
  let loc = locate q in
  if loc < 0 then Binary_heap.min_time_ns q.overflow
  else begin
    let t = q.n_times.(q.heads.(loc)) in
    if Binary_heap.is_empty q.overflow then t
    else begin
      let ot = Binary_heap.min_time_ns q.overflow in
      if ot < t then ot else t
    end
  end

let min_time q = Time.of_ns (min_time_ns q)

let pop_overflow q =
  let t = Binary_heap.min_time_ns q.overflow in
  let p = Binary_heap.pop_min q.overflow in
  (* Safe even when the wheel is non-empty: this branch is taken only
     when the overflow head precedes the earliest wheel window, so the
     clock stays within every resident's placement window. *)
  if t > q.cur then q.cur <- t;
  p

let pop_min q =
  assert (length q > 0);
  let loc = locate q in
  if loc < 0 then pop_overflow q
  else begin
    let n = q.heads.(loc) in
    let t = q.n_times.(n) in
    let overflow_first =
      (not (Binary_heap.is_empty q.overflow))
      &&
      let ot = Binary_heap.min_time_ns q.overflow in
      ot < t || (ot = t && Binary_heap.min_seq q.overflow < q.n_seqs.(n))
    in
    if overflow_first then pop_overflow q
    else begin
      let next = q.n_next.(n) in
      q.heads.(loc) <- next;
      if next < 0 then begin
        q.tails.(loc) <- -1;
        clear_occ q 0 loc;
        q.min_slot <- -1
      end;
      (* else: the slot still holds events at this exact instant, so it
         remains the wheel minimum and the cache stays valid *)
      q.wheel_size <- q.wheel_size - 1;
      let p = q.n_payloads.(n) in
      free_node q n;
      if t > q.cur then q.cur <- t;
      p
    end
  end

let drain_one q ~f =
  if length q = 0 then false
  else begin
    let tns = min_time_ns q in
    let p = pop_min q in
    f (Time.of_ns tns) p;
    true
  end

let pop q =
  if length q = 0 then None
  else begin
    let tns = min_time_ns q in
    Some (Time.of_ns tns, pop_min q)
  end

let peek_time q = if length q = 0 then None else Some (min_time q)
