(** System configurations under test.

    A scenario assembles a complete simulated machine — devices, power
    domain, (optional) hypervisor, trusted logger, database engine and
    workload generator — in one of the modes the evaluation compares:

    - [Native_sync]: bare metal, write cache off, synchronous log forces.
      The paper's safe baseline.
    - [Virt_sync]: the same DBMS virtualised on the seL4-based VMM, still
      forcing synchronously. Isolates the virtualisation overhead.
    - [Rapilog]: virtualised, log disk interposed by the trusted logger —
      commits acknowledge from the trusted buffer.
    - [Rapilog_replicated]: RapiLog-R — the trusted logger additionally
      streams admitted entries over a simulated network link to a
      replica machine ({!Net.Replication}, policy and link shape from
      {!config.net}). Under the default replica-ack policy, commits
      acknowledge only once the remote copy is held too, so even losing
      the whole primary machine loses nothing acknowledged.
    - [Rapilog_quorum]: RapiLog-Q — the trusted logger streams admitted
      entries to [n] replica machines and commits acknowledge only once
      [k] of them hold the entry ({!Net.Quorum}, cluster shape from
      {!config.quorum}). At majority quorum the acknowledged prefix
      survives losing the primary plus any minority of replicas, with
      an explicit leader election at recovery.
    - [Rapilog_sharded]: RapiLog-S — the machine additionally hosts a
      sharded multi-tenant logger tier ({!Shard.Tier}): per-tenant log
      streams hash-partitioned across several trusted-logger shards,
      each shard with its own device (or stripe) and WAL regions. The
      benchmark's embedded DBMS shares shard 0's device, so the usual
      commit-path measurements still apply while the tier absorbs the
      multi-tenant open-loop load. Per-tenant durability contracts are
      audited by {!Shard.Recover}.
    - [Wcache_flush]: bare metal with the disk's volatile write cache
      enabled and a flush barrier after every log force. Safe — and the
      barrier largely negates the cache, which is why the cache gets
      disabled instead in practice.
    - [Unsafe_wcache]: the same cache with no flushes. Fast and *not*
      durable across power cuts.
    - [Async_commit]: bare metal, commits acknowledge without forcing;
      a background WAL writer forces periodically. Fast and not durable
      across any crash. (PostgreSQL's [synchronous_commit = off].) *)

type mode =
  | Native_sync
  | Virt_sync
  | Rapilog
  | Rapilog_replicated
  | Rapilog_quorum
  | Rapilog_sharded
  | Wcache_flush
  | Unsafe_wcache
  | Async_commit

val mode_name : mode -> string
val mode_of_name : string -> mode option
val all_modes : mode list

val mode_is_durable :
  mode ->
  [ `Always | `Machine_loss_too | `Minority_loss_too | `Os_crash_only | `Never ]
(** The durability each mode promises: [`Always] covers OS crashes and
    power cuts, [`Machine_loss_too] additionally survives the whole
    primary machine vanishing (replica-ack replication — the promise
    assumes the default {!Net.Replication.config.policy}),
    [`Minority_loss_too] survives the primary plus any [quorum - 1]
    replicas vanishing, partitions included (quorum replication — the
    promise assumes [quorum] is a majority of {!Net.Quorum.config}'s
    replicas), [`Os_crash_only] survives OS crashes but not power cuts,
    [`Never] can lose acknowledged commits on any failure. *)

type device_kind =
  | Disk of Storage.Hdd.config  (** rotational disk ({!Storage.Hdd}) *)
  | Flash of Storage.Ssd.config  (** SATA-era SSD ({!Storage.Ssd}) *)
  | Nvme of Storage.Nvme.config
      (** NVMe / zoned-append drive ({!Storage.Nvme}): µs-scale writes,
          [queue_depth]-way concurrent submission *)

val device_name : device_kind -> string

type workload_kind =
  | Tpcc of Workload.Tpcc_lite.config
  | Micro of Workload.Microbench.config
  | Ycsb of Workload.Ycsb_lite.config

type config = {
  mode : mode;
  device : device_kind;
  single_disk : bool;
      (** log and data share one physical device (the log region at the
          low addresses, data pages far above) instead of the default
          dedicated log disk — the cost-saving configuration whose sync
          penalty motivates RapiLog *)
  data_spindles : int;
      (** disks striped (RAID-0) into the data volume — a testbed's data
          array; 1 for a single device, ignored for [single_disk] *)
  profile : Dbms.Engine_profile.t;
  clients : int;
      (** closed-loop client count — or, under an open-loop arrival
          process, the size of the worker pool arrivals queue onto *)
  think_time : Desim.Time.span;
  workload : workload_kind;
  arrival : Workload.Arrival.process;
      (** how clients offer load (default [Closed_loop], the legacy
          behaviour). [Open_loop shape] spawns a dispatcher driven by
          the arrival process instead: transactions arrive on the
          process's clock whether or not the system kept up, queue in
          front of the [clients]-wide worker pool, and report their
          full sojourn (queue wait included) as latency. *)
  churn : Workload.Churn.schedule option;
      (** join/leave gating of the closed-loop clients (default none —
          the fleet is always fully joined). Meaningless under an
          open-loop arrival process; {!Scen.validate} rejects the
          combination. *)
  warmup : Desim.Time.span;
  duration : Desim.Time.span;  (** measurement window *)
  seed : int64;
  logger : Rapilog.Trusted_logger.config;
  net : Net.Replication.config;
      (** replication policy and link shapes, for [Rapilog_replicated] *)
  quorum : Net.Quorum.config;
      (** cluster size, quorum and per-replica link shapes, for
          [Rapilog_quorum] *)
  psu : Power.Psu.config;
  checkpoint_interval : Desim.Time.span option;
  pool : Dbms.Buffer_pool.config;
  wal_writer_interval : Desim.Time.span;  (** for [Async_commit] *)
  log_streams : int;
      (** parallel WAL streams (default 1). With more than one, the
          engine partitions pages across streams, commits carry
          dependency vectors, and checkpointing is disabled (recovery
          repeats history from each stream's start). Requires the
          dedicated-log-device layout (not [single_disk]). *)
  shard : Shard.Tier.config;
      (** tier shape and load for [Rapilog_sharded] (shards, devices
          per shard, tenants, open-loop clients). [build] overrides the
          tier's [logger] with {!config.logger} and its [horizon] with
          [warmup + duration] so the tier's arrivals stop with the
          benchmark. [Rapilog_sharded] requires the dedicated-log-device
          layout (not [single_disk]) and [log_streams = 1]. *)
}

val default : config
(** RapiLog mode, 7200 rpm disk, pg-like profile, 8 clients, TPC-C-lite,
    0.5 s warmup, 3 s measurement, seed 42. *)

type generator = {
  initial_rows : (int * string) list;
  next_txn : unit -> Dbms.Engine.op list;
}

type built = {
  config : config;
  sim : Desim.Sim.t;
  vmm : Hypervisor.Vmm.t;
  power : Power.Power_domain.t;
  engine : Dbms.Engine.t;
  wal : Dbms.Wal.t;
  wal_config : Dbms.Wal.config;
  pool : Dbms.Buffer_pool.t;
  log_physical : Storage.Block.t;  (** raw log device: recovery reads this *)
  log_attached : Storage.Block.t;  (** what the WAL writes to *)
  data_physical : Storage.Block.t;
  data_attached : Storage.Block.t;  (** what the buffer pool writes to *)
  data_members : Storage.Block.t array;
      (** the physical devices under [data_physical]: the stripe members
          when the data volume is striped, else the single device *)
  data_chunk_sectors : int;
      (** stripe chunk size; 0 when the data volume is not striped *)
  logger : Rapilog.Trusted_logger.t option;
      (** in [Rapilog], [Rapilog_replicated], [Rapilog_quorum] and
          [Rapilog_sharded] modes (shard 0's logger for the latter) *)
  replication : Net.Replication.t option;  (** in [Rapilog_replicated] mode *)
  quorum : Net.Quorum.t option;  (** in [Rapilog_quorum] mode *)
  shard : Shard.Tier.t option;  (** in [Rapilog_sharded] mode *)
  generator : generator;
}

val build : config -> built
(** Assemble the machine; nothing is running yet except device-internal
    and logger processes. *)

val all_loggers : built -> Rapilog.Trusted_logger.t list
(** Every trusted logger on the machine: one per shard in
    [Rapilog_sharded] mode, the single logger in the other rapilog
    modes, empty for the native modes. Crash-surface monitors and
    quiesce walk this list. *)

val recovery_log_device : built -> Storage.Block.t
(** The log device recovery should read after a crash: [log_physical],
    or — when the scenario has replicas — a frozen merge of the
    primary's durable media with the replicas' received entry prefixes
    ({!Net.Quorum.recovery_log_device} for [Rapilog_quorum], which also
    runs the leader election when the primary is dead;
    {!Net.Replication.recovery_log_device} for
    [Rapilog_replicated]). *)

val hdd_streaming_bandwidth : Storage.Hdd.config -> float
(** Sequential write bandwidth in bytes/s — the drain rate available to
    the trusted logger on this disk. *)
