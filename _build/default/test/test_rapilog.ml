(* Tests for the paper's core contribution: the trusted ring buffer, the
   logger and its durability contract, and the guarantee checker. *)

open Desim
open Testu

let sector = 512
let data_of char sectors = String.make (sector * sectors) char

(* -- Ring_buffer -------------------------------------------------------- *)

let ring_fifo () =
  let ring = Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes:65536 in
  Alcotest.(check bool) "push a" true
    (Rapilog.Ring_buffer.try_push ring ~lba:0 ~data:(data_of 'a' 1));
  Alcotest.(check bool) "push b" true
    (Rapilog.Ring_buffer.try_push ring ~lba:9 ~data:(data_of 'b' 1));
  (match Rapilog.Ring_buffer.pop ring with
  | Some { Rapilog.Ring_buffer.lba; data } ->
      Alcotest.(check int) "first lba" 0 lba;
      Alcotest.(check string) "first data" (data_of 'a' 1) data
  | None -> Alcotest.fail "empty");
  match Rapilog.Ring_buffer.pop ring with
  | Some { Rapilog.Ring_buffer.lba; _ } -> Alcotest.(check int) "second lba" 9 lba
  | None -> Alcotest.fail "empty"

let ring_capacity () =
  let ring = Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes:(2 * sector) in
  Alcotest.(check bool) "fits" true (Rapilog.Ring_buffer.fits ring sector);
  Alcotest.(check bool) "first" true
    (Rapilog.Ring_buffer.try_push ring ~lba:0 ~data:(data_of 'x' 1));
  Alcotest.(check bool) "second" true
    (Rapilog.Ring_buffer.try_push ring ~lba:1 ~data:(data_of 'x' 1));
  Alcotest.(check bool) "third rejected" false
    (Rapilog.Ring_buffer.try_push ring ~lba:2 ~data:(data_of 'x' 1));
  ignore (Rapilog.Ring_buffer.pop ring);
  Alcotest.(check bool) "space reclaimed" true
    (Rapilog.Ring_buffer.try_push ring ~lba:2 ~data:(data_of 'x' 1))

let ring_accounting () =
  let ring = Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes:65536 in
  ignore (Rapilog.Ring_buffer.try_push ring ~lba:0 ~data:(data_of 'x' 3));
  Alcotest.(check int) "bytes used" (3 * sector) (Rapilog.Ring_buffer.bytes_used ring);
  Alcotest.(check int) "length" 1 (Rapilog.Ring_buffer.length ring);
  Alcotest.(check int) "pushed" (3 * sector) (Rapilog.Ring_buffer.pushed_bytes ring);
  ignore (Rapilog.Ring_buffer.pop ring);
  Alcotest.(check int) "popped" (3 * sector) (Rapilog.Ring_buffer.popped_bytes ring);
  Alcotest.(check bool) "empty" true (Rapilog.Ring_buffer.is_empty ring)

let ring_coalesce_adjacent () =
  let ring = Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes:65536 in
  ignore (Rapilog.Ring_buffer.try_push ring ~lba:0 ~data:(data_of 'a' 2));
  ignore (Rapilog.Ring_buffer.try_push ring ~lba:2 ~data:(data_of 'b' 2));
  match Rapilog.Ring_buffer.pop_coalesced ring ~max_bytes:65536 with
  | Some { Rapilog.Ring_buffer.lba; data } ->
      Alcotest.(check int) "merged base" 0 lba;
      Alcotest.(check string) "merged data" (data_of 'a' 2 ^ data_of 'b' 2) data;
      Alcotest.(check bool) "fully drained" true (Rapilog.Ring_buffer.is_empty ring)
  | None -> Alcotest.fail "empty"

let ring_coalesce_overlap_later_wins () =
  let ring = Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes:65536 in
  (* Overlapping tail-sector rewrite, as the WAL produces. *)
  ignore (Rapilog.Ring_buffer.try_push ring ~lba:0 ~data:(data_of 'a' 2));
  ignore (Rapilog.Ring_buffer.try_push ring ~lba:1 ~data:(data_of 'b' 2));
  match Rapilog.Ring_buffer.pop_coalesced ring ~max_bytes:65536 with
  | Some { Rapilog.Ring_buffer.data; _ } ->
      Alcotest.(check string) "later write wins the overlap"
        (data_of 'a' 1 ^ data_of 'b' 2)
        data
  | None -> Alcotest.fail "empty"

let ring_coalesce_respects_max_bytes () =
  let ring = Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes:65536 in
  for i = 0 to 7 do
    ignore (Rapilog.Ring_buffer.try_push ring ~lba:i ~data:(data_of 'x' 1))
  done;
  match Rapilog.Ring_buffer.pop_coalesced ring ~max_bytes:(4 * sector) with
  | Some { Rapilog.Ring_buffer.data; _ } ->
      Alcotest.(check int) "bounded" (4 * sector) (String.length data);
      Alcotest.(check int) "rest still queued" 4 (Rapilog.Ring_buffer.length ring)
  | None -> Alcotest.fail "empty"

let ring_coalesce_stops_at_gap () =
  let ring = Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes:65536 in
  ignore (Rapilog.Ring_buffer.try_push ring ~lba:0 ~data:(data_of 'a' 1));
  ignore (Rapilog.Ring_buffer.try_push ring ~lba:10 ~data:(data_of 'b' 1));
  (match Rapilog.Ring_buffer.pop_coalesced ring ~max_bytes:65536 with
  | Some { Rapilog.Ring_buffer.lba; data } ->
      Alcotest.(check int) "only the head run" sector (String.length data);
      Alcotest.(check int) "at base" 0 lba
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "gap entry left" 1 (Rapilog.Ring_buffer.length ring)

(* Property: draining with coalescing produces the same media contents as
   applying every write in order. *)
let ring_coalesce_equivalence_prop =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (pair (int_range 0 30) (int_range 1 4)))
  in
  prop "coalesced drain equals in-order application" ~count:100 gen (fun writes ->
      let apply_naive media =
        List.iteri
          (fun i (lba, sectors) ->
            Storage.Block.Media.write media ~lba
              ~data:(String.make (sectors * sector) (Char.chr (65 + (i mod 26)))))
          writes
      in
      let naive = Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:128 in
      apply_naive naive;
      let coalesced = Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:128 in
      let ring =
        Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes:(1 lsl 20)
      in
      List.iteri
        (fun i (lba, sectors) ->
          ignore
            (Rapilog.Ring_buffer.try_push ring ~lba
               ~data:(String.make (sectors * sector) (Char.chr (65 + (i mod 26))))))
        writes;
      let rec drain () =
        match Rapilog.Ring_buffer.pop_coalesced ring ~max_bytes:(8 * sector) with
        | Some { Rapilog.Ring_buffer.lba; data } ->
            Storage.Block.Media.write coalesced ~lba ~data;
            drain ()
        | None -> ()
      in
      drain ();
      let same = ref true in
      for lba = 0 to 127 do
        if
          Storage.Block.Media.read naive ~lba ~sectors:1
          <> Storage.Block.Media.read coalesced ~lba ~sectors:1
        then same := false
      done;
      !same)

(* -- Trusted_logger ------------------------------------------------------- *)

type logger_rig = {
  sim : Sim.t;
  logger : Rapilog.Trusted_logger.t;
  device : Storage.Block.t;
  frontend : Storage.Block.t;
  guest : Hypervisor.Domain.t;
}

let make_logger_rig ?(config = Rapilog.Trusted_logger.default_config) ?(seed = 1L) () =
  let sim = Sim.create ~seed () in
  let device = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let trusted = Hypervisor.Domain.create sim ~name:"rapilog" ~kind:Hypervisor.Domain.Trusted in
  let logger = Rapilog.Trusted_logger.create sim ~domain:trusted config ~device in
  let backend_domain =
    Hypervisor.Domain.create sim ~name:"drv" ~kind:Hypervisor.Domain.Trusted
  in
  let frontend =
    Hypervisor.Virtio_blk.create sim ~ipc:Hypervisor.Ipc.default_sel4 ~backend_domain
      (Rapilog.Trusted_logger.backend logger)
  in
  let guest = Hypervisor.Domain.create sim ~name:"guest" ~kind:Hypervisor.Domain.Guest in
  { sim; logger; device; frontend; guest }

let logger_ack_precedes_media () =
  let rig = make_logger_rig () in
  let ack_ns = ref 0 in
  let durable_at_ack = ref "" in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         let before = Sim.now rig.sim in
         Storage.Block.write rig.frontend ~lba:0 (data_of 'l' 1);
         ack_ns := Time.span_to_ns (Time.diff (Sim.now rig.sim) before);
         durable_at_ack := Storage.Block.durable_read rig.device ~lba:0 ~sectors:1));
  Sim.run rig.sim;
  (* Ack within IPC + copy time, far below a disk rotation. *)
  Alcotest.(check bool)
    (Printf.sprintf "fast ack (%dns)" !ack_ns)
    true (!ack_ns < 100_000);
  Alcotest.(check string) "media not yet written at ack time"
    (String.make sector '\000') !durable_at_ack;
  (* After the drain runs, the data is durable. *)
  Alcotest.(check string) "eventually durable" (data_of 'l' 1)
    (Storage.Block.durable_read rig.device ~lba:0 ~sectors:1)

let logger_quiesce_drains_everything () =
  let rig = make_logger_rig () in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         for i = 0 to 19 do
           Storage.Block.write rig.frontend ~lba:i (data_of 'q' 2)
         done));
  ignore
    (Process.spawn rig.sim (fun () ->
         Process.sleep (Time.ms 1);
         Rapilog.Trusted_logger.quiesce rig.logger;
         Alcotest.(check int) "buffer empty after quiesce" 0
           (Rapilog.Trusted_logger.buffered_bytes rig.logger)));
  Sim.run rig.sim;
  Alcotest.(check bool) "conservation" true
    (Rapilog.Durability.logger_conservation rig.logger);
  Alcotest.(check string) "all data on media" (data_of 'q' 21)
    (Storage.Block.durable_read rig.device ~lba:0 ~sectors:21)

let logger_coalesces_drain_writes () =
  let rig = make_logger_rig () in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         for i = 0 to 63 do
           Storage.Block.write rig.frontend ~lba:i (data_of 'c' 2)
         done));
  Sim.run rig.sim;
  let acked = Rapilog.Trusted_logger.acked_writes rig.logger in
  let drained = Rapilog.Trusted_logger.drain_writes rig.logger in
  Alcotest.(check int) "all acked" 64 acked;
  Alcotest.(check bool)
    (Printf.sprintf "coalesced (%d physical writes)" drained)
    true (drained < acked)

let logger_backpressure_on_tiny_buffer () =
  let config =
    {
      Rapilog.Trusted_logger.default_config with
      Rapilog.Trusted_logger.buffer_bytes = 4 * sector;
    }
  in
  let rig = make_logger_rig ~config () in
  let completed = ref 0 in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         for i = 0 to 63 do
           Storage.Block.write rig.frontend ~lba:i (data_of 'b' 1)
         done;
         completed := 64));
  Sim.run rig.sim;
  Alcotest.(check int) "all writes eventually accepted" 64 !completed;
  Alcotest.(check bool)
    (Printf.sprintf "stalled (%d)" (Rapilog.Trusted_logger.backpressure_stalls rig.logger))
    true
    (Rapilog.Trusted_logger.backpressure_stalls rig.logger > 0);
  Alcotest.(check string) "and still correct" (data_of 'b' 64)
    (Storage.Block.durable_read rig.device ~lba:0 ~sectors:64)

let logger_survives_guest_crash () =
  let rig = make_logger_rig () in
  let acked = ref 0 in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         for i = 0 to 31 do
           Storage.Block.write rig.frontend ~lba:i (data_of 's' 1);
           incr acked
         done));
  (* Crash the guest while data is buffered but not yet drained. *)
  Sim.schedule_after rig.sim (Time.us 200) (fun () ->
      Hypervisor.Domain.crash rig.guest);
  Sim.run rig.sim;
  Alcotest.(check bool) "some writes acked before the crash" true (!acked > 0);
  (* Everything acknowledged must be on media: the buffer outlives the
     guest and the drain completed. *)
  Alcotest.(check string)
    (Printf.sprintf "%d acked sectors durable" !acked)
    (String.concat "" (List.init !acked (fun _ -> data_of 's' 1)))
    (Storage.Block.durable_read rig.device ~lba:0 ~sectors:(max 1 !acked))

let logger_power_fail_stops_admission () =
  let rig = make_logger_rig () in
  let late_ack = ref false in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         Storage.Block.write rig.frontend ~lba:0 (data_of 'p' 1);
         Process.sleep (Time.ms 1);
         (* This write arrives after the power-fail notification: it must
            never be acknowledged. *)
         Storage.Block.write rig.frontend ~lba:1 (data_of 'p' 1);
         late_ack := true));
  Sim.schedule_after rig.sim (Time.us 500) (fun () ->
      Rapilog.Trusted_logger.notify_power_fail rig.logger);
  Sim.run rig.sim;
  Alcotest.(check bool) "admission closed" false
    (Rapilog.Trusted_logger.accepting rig.logger);
  Alcotest.(check bool) "no ack after power-fail" false !late_ack;
  Alcotest.(check string) "pre-fail write still drained" (data_of 'p' 1)
    (Storage.Block.durable_read rig.device ~lba:0 ~sectors:1)

let logger_worst_case_flush_budget () =
  let rig = make_logger_rig () in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         for i = 0 to 9 do
           Storage.Block.write rig.frontend ~lba:(i * 2) (data_of 'w' 2)
         done));
  Sim.run rig.sim;
  let high_water = Rapilog.Trusted_logger.max_buffered_bytes rig.logger in
  Alcotest.(check bool) "high-water positive" true (high_water > 0);
  let flush = Rapilog.Trusted_logger.worst_case_flush rig.logger ~drain_bandwidth:50e6 in
  check_near "budget math"
    (float_of_int high_water /. 50e6)
    (Time.span_to_float_sec flush)

let logger_rejects_untrusted_domain () =
  let sim = Sim.create () in
  let device = Storage.Ssd.create sim Storage.Ssd.default in
  let guest = Hypervisor.Domain.create sim ~name:"g" ~kind:Hypervisor.Domain.Guest in
  match
    Rapilog.Trusted_logger.create sim ~domain:guest
      Rapilog.Trusted_logger.default_config ~device
  with
  | exception Assert_failure _ -> ()
  | _ -> Alcotest.fail "a guest domain must be refused"

(* -- Durability checker ----------------------------------------------------- *)

let durability_all_recovered () =
  let report =
    Rapilog.Durability.compare_txids ~committed:[ 1; 2; 3 ] ~recovered:[ 1; 2; 3 ]
  in
  Alcotest.(check bool) "holds" true (Rapilog.Durability.holds report);
  Alcotest.(check int) "committed" 3 report.Rapilog.Durability.committed;
  Alcotest.(check int) "recovered" 3 report.Rapilog.Durability.recovered

let durability_loss_detected () =
  let report =
    Rapilog.Durability.compare_txids ~committed:[ 1; 2; 3 ] ~recovered:[ 1; 3 ]
  in
  Alcotest.(check bool) "violated" false (Rapilog.Durability.holds report);
  Alcotest.(check (list int)) "lost txn identified" [ 2 ] report.Rapilog.Durability.lost

let durability_extra_allowed () =
  let report =
    Rapilog.Durability.compare_txids ~committed:[ 1 ] ~recovered:[ 1; 2 ]
  in
  Alcotest.(check bool) "still holds" true (Rapilog.Durability.holds report);
  Alcotest.(check (list int)) "extra noted" [ 2 ] report.Rapilog.Durability.extra

let durability_diff_stores () =
  let expected = Hashtbl.create 8 and actual = Hashtbl.create 8 in
  Hashtbl.replace expected 1 "same";
  Hashtbl.replace actual 1 "same";
  Hashtbl.replace expected 2 "want";
  Hashtbl.replace actual 2 "got";
  Hashtbl.replace expected 3 "missing";
  Hashtbl.replace actual 4 "unexpected";
  let diffs = Rapilog.Durability.diff_stores ~expected ~actual in
  Alcotest.(check int) "three diffs" 3 (List.length diffs);
  Alcotest.(check (list int)) "sorted keys" [ 2; 3; 4 ]
    (List.map (fun d -> d.Rapilog.Durability.key) diffs)

let durability_identical_stores () =
  let expected = Hashtbl.create 8 and actual = Hashtbl.create 8 in
  Hashtbl.replace expected 1 "v";
  Hashtbl.replace actual 1 "v";
  Alcotest.(check int) "no diffs" 0
    (List.length (Rapilog.Durability.diff_stores ~expected ~actual))

(* -- attach facade ------------------------------------------------------------ *)

let attach_end_to_end () =
  let sim = Sim.create () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let device = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let frontend, logger = Rapilog.attach ~vmm ~device () in
  ignore
    (Hypervisor.Vmm.spawn_guest vmm (fun () ->
         Storage.Block.write frontend ~lba:0 (data_of 'e' 4)));
  Sim.run sim;
  Alcotest.(check int) "one write acked" 1 (Rapilog.Trusted_logger.acked_writes logger);
  Alcotest.(check string) "durable via drain" (data_of 'e' 4)
    (Storage.Block.durable_read device ~lba:0 ~sectors:4)

let attach_with_power_hooks () =
  let sim = Sim.create () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let power = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 100)) in
  let device = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let _frontend, logger = Rapilog.attach ~vmm ~power ~device () in
  Sim.schedule_after sim (Time.ms 1) (fun () -> Power.Power_domain.cut power);
  Sim.run sim;
  Alcotest.(check bool) "logger notified by the power domain" false
    (Rapilog.Trusted_logger.accepting logger)

let suites =
  [
    ( "rapilog.ring_buffer",
      [
        case "FIFO order" ring_fifo;
        case "capacity and reclamation" ring_capacity;
        case "byte accounting" ring_accounting;
        case "coalesces adjacent writes" ring_coalesce_adjacent;
        case "overlap: later write wins" ring_coalesce_overlap_later_wins;
        case "respects max batch size" ring_coalesce_respects_max_bytes;
        case "stops at address gaps" ring_coalesce_stops_at_gap;
        ring_coalesce_equivalence_prop;
      ] );
    ( "rapilog.trusted_logger",
      [
        case "ack precedes media write" logger_ack_precedes_media;
        case "quiesce drains everything" logger_quiesce_drains_everything;
        case "drain coalesces physical writes" logger_coalesces_drain_writes;
        case "tiny buffer: backpressure, not loss" logger_backpressure_on_tiny_buffer;
        case "buffered data survives guest crash" logger_survives_guest_crash;
        case "power-fail notification closes admission"
          logger_power_fail_stops_admission;
        case "worst-case flush budget" logger_worst_case_flush_budget;
        case "refuses an untrusted domain" logger_rejects_untrusted_domain;
      ] );
    ( "rapilog.durability",
      [
        case "all recovered" durability_all_recovered;
        case "loss detected" durability_loss_detected;
        case "unacknowledged durable commits allowed" durability_extra_allowed;
        case "store diffs" durability_diff_stores;
        case "identical stores" durability_identical_stores;
      ] );
    ( "rapilog.attach",
      [
        case "end to end through the VMM" attach_end_to_end;
        case "power domain hooks" attach_with_power_hooks;
      ] );
  ]

(* -- Tracing (appended) ------------------------------------------------------ *)

let logger_emits_trace_events () =
  let sim = Sim.create () in
  let trace = Trace.collector () in
  let device = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let trusted = Hypervisor.Domain.create sim ~name:"rl" ~kind:Hypervisor.Domain.Trusted in
  let logger =
    Rapilog.Trusted_logger.create sim ~domain:trusted ~trace
      Rapilog.Trusted_logger.default_config ~device
  in
  let backend_domain =
    Hypervisor.Domain.create sim ~name:"drv" ~kind:Hypervisor.Domain.Trusted
  in
  let frontend =
    Hypervisor.Virtio_blk.create sim ~ipc:Hypervisor.Ipc.free ~backend_domain
      (Rapilog.Trusted_logger.backend logger)
  in
  let guest = Hypervisor.Domain.create sim ~name:"g" ~kind:Hypervisor.Domain.Guest in
  ignore
    (Hypervisor.Domain.spawn guest (fun () ->
         Storage.Block.write frontend ~lba:0 (data_of 't' 2)));
  Sim.schedule_after sim (Time.ms 50) (fun () ->
      Rapilog.Trusted_logger.notify_power_fail logger);
  Sim.run sim;
  let tags = List.map (fun r -> r.Trace.tag) (Trace.records trace) in
  Alcotest.(check bool) "drain traced" true (List.mem "drain" tags);
  Alcotest.(check bool) "power-fail traced" true (List.mem "power-fail" tags)

let logger_traces_backpressure () =
  let sim = Sim.create () in
  let trace = Trace.collector () in
  let device = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let trusted = Hypervisor.Domain.create sim ~name:"rl" ~kind:Hypervisor.Domain.Trusted in
  let logger =
    Rapilog.Trusted_logger.create sim ~domain:trusted ~trace
      {
        Rapilog.Trusted_logger.default_config with
        Rapilog.Trusted_logger.buffer_bytes = 2 * sector;
      }
      ~device
  in
  let backend = Rapilog.Trusted_logger.backend logger in
  let guest = Hypervisor.Domain.create sim ~name:"g" ~kind:Hypervisor.Domain.Guest in
  ignore
    (Hypervisor.Domain.spawn guest (fun () ->
         for i = 0 to 15 do
           backend.Hypervisor.Virtio_blk.be_write ~lba:i ~data:(data_of 'x' 1)
             ~fua:false
         done));
  Sim.run sim;
  Alcotest.(check bool) "backpressure traced" true
    (List.exists
       (fun r -> String.equal r.Trace.tag "backpressure")
       (Trace.records trace))

let trace_suite =
  ( "rapilog.trace",
    [
      case "drain and power-fail events" logger_emits_trace_events;
      case "backpressure events" logger_traces_backpressure;
    ] )

let suites = suites @ [ trace_suite ]

(* -- Power fail under backpressure (appended) ---------------------------------- *)

let power_fail_while_stalled () =
  (* A writer blocked on a full buffer when the power fails must never
     be acknowledged, and everything already accepted must drain. *)
  let config =
    {
      Rapilog.Trusted_logger.default_config with
      Rapilog.Trusted_logger.buffer_bytes = 2 * sector;
    }
  in
  let rig = make_logger_rig ~config () in
  let acked = ref 0 in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         for i = 0 to 63 do
           Storage.Block.write rig.frontend ~lba:i (data_of 'z' 1);
           incr acked
         done));
  (* Fail while the tiny buffer has the writer stalled. *)
  Sim.schedule_after rig.sim (Time.ms 2) (fun () ->
      Rapilog.Trusted_logger.notify_power_fail rig.logger);
  Sim.run rig.sim;
  Alcotest.(check bool) "not everything was acknowledged" true (!acked < 64);
  (* Every acknowledged sector is durable. *)
  let durable = Storage.Block.durable_read rig.device ~lba:0 ~sectors:(max 1 !acked) in
  for i = 0 to !acked - 1 do
    if String.sub durable (i * sector) sector <> data_of 'z' 1 then
      Alcotest.failf "acked sector %d not durable" i
  done

let fua_treated_as_normal_write () =
  let rig = make_logger_rig () in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         Storage.Block.write rig.frontend ~fua:true ~lba:0 (data_of 'f' 1)));
  Sim.run rig.sim;
  Alcotest.(check int) "accepted" 1 (Rapilog.Trusted_logger.acked_writes rig.logger);
  Alcotest.(check string) "drained" (data_of 'f' 1)
    (Storage.Block.durable_read rig.device ~lba:0 ~sectors:1)

let stall_suite =
  ( "rapilog.power_fail_edge",
    [
      case "power fail while stalled on a full buffer" power_fail_while_stalled;
      case "FUA goes through the normal contract" fua_treated_as_normal_write;
    ] )

let suites = suites @ [ stall_suite ]

(* -- Invariant monitor (appended) ---------------------------------------------- *)

let monitor_clean_run () =
  let rig = make_logger_rig () in
  let monitor = Rapilog.Invariants.attach rig.sim rig.logger in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         for i = 0 to 31 do
           Storage.Block.write rig.frontend ~lba:i (data_of 'm' 2)
         done));
  Sim.run ~until:(Time.add Time.zero (Time.ms 100)) rig.sim;
  Alcotest.(check bool) "no violations in a healthy run" true
    (Rapilog.Invariants.ok monitor);
  Alcotest.(check bool) "monitor actually ran" true
    (Rapilog.Invariants.checks_performed monitor > 50)

let monitor_covers_power_fail () =
  let rig = make_logger_rig () in
  let monitor = Rapilog.Invariants.attach rig.sim rig.logger in
  ignore
    (Hypervisor.Domain.spawn rig.guest (fun () ->
         for i = 0 to 15 do
           Storage.Block.write rig.frontend ~lba:i (data_of 'p' 1)
         done));
  Sim.schedule_after rig.sim (Time.ms 2) (fun () ->
      Rapilog.Trusted_logger.notify_power_fail rig.logger);
  Sim.run ~until:(Time.add Time.zero (Time.ms 100)) rig.sim;
  Alcotest.(check bool) "admission-closed holds through a power fail" true
    (Rapilog.Invariants.ok monitor)

let monitor_under_durability_experiment () =
  (* Attach the monitor to a full harness run: the whole power-cut
     sequence must keep every invariant. *)
  let config =
    {
      Harness.Scenario.default with
      Harness.Scenario.clients = 4;
      duration = Time.ms 500;
    }
  in
  let built = Harness.Scenario.build config in
  let logger = Option.get built.Harness.Scenario.logger in
  let monitor = Rapilog.Invariants.attach built.Harness.Scenario.sim logger in
  let r =
    (* Run the failure path by hand: reuse the public experiment API on a
       second, independent machine is not possible (the monitor needs
       this sim), so exercise load + cut directly. *)
    let sim = built.Harness.Scenario.sim in
    ignore
      (Hypervisor.Vmm.spawn_guest built.Harness.Scenario.vmm (fun () ->
           for i = 1 to 200 do
             ignore
               (Dbms.Engine.exec built.Harness.Scenario.engine
                  [ Dbms.Engine.Put { key = i; value = "inv" } ])
           done));
    Power.Power_domain.cut_at built.Harness.Scenario.power
      (Time.add Time.zero (Time.ms 100));
    Sim.run ~until:(Time.add Time.zero (Time.sec 1)) sim;
    monitor
  in
  Alcotest.(check bool) "invariants hold through a power cut" true
    (Rapilog.Invariants.ok r);
  Alcotest.(check (list reject)) "no violations recorded" []
    (List.map ignore (Rapilog.Invariants.violations r))

let monitor_suite =
  ( "rapilog.invariants",
    [
      case "clean run has no violations" monitor_clean_run;
      case "power-fail path holds" monitor_covers_power_fail;
      case "full power-cut experiment holds" monitor_under_durability_experiment;
    ] )

let suites = suites @ [ monitor_suite ]
