(** Render a {!Desim.Metrics} registry — machine-readable JSON for the
    bench reports and a human-readable per-stage latency table.

    The JSON schema is documented in [docs/OBSERVABILITY.md]: one object
    keyed by metric name, each value tagged with its kind. Histograms
    carry [count], [sum_us], [min_us]/[max_us]/[mean_us],
    [p50_us]/[p95_us]/[p99_us] and the non-empty [buckets]; counters a
    single [value]; gauges [value] and [high_water]. *)

val json_of : Desim.Metrics.t -> Json.t
(** The full registry as a JSON object in {!Desim.Metrics.names} order.
    Empty-histogram statistics ([nan]) serialise as [null]. *)

val json_of_histogram : Desim.Metrics.Histogram.t -> Json.t
(** One histogram, same shape as its entry in {!json_of}. *)

val print : Desim.Metrics.t -> unit
(** Human-readable rendering through {!Report}: a latency table (count,
    mean, p50/p95/p99, max — all µs) over every histogram, then the
    counters and gauges as key/value lines. *)
