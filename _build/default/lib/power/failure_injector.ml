open Desim

let pick_instant sim ~earliest ~latest =
  let span = Time.diff latest earliest in
  assert (Time.compare_span span Time.zero_span > 0);
  Time.add earliest (Rng.span (Sim.rng sim) span)

let power_cut_between sim domain ~earliest ~latest =
  let at = pick_instant sim ~earliest ~latest in
  Power_domain.cut_at domain at;
  at

let crash_at sim time action = Sim.schedule_at sim time action

let crash_between sim ~earliest ~latest action =
  let at = pick_instant sim ~earliest ~latest in
  Sim.schedule_at sim at action;
  at
