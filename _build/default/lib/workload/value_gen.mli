(** Generated row contents.

    Values carry a readable prefix (useful when eyeballing recovered
    state in tests) padded with pseudo-random printable bytes to the
    requested length. *)

val make : Desim.Rng.t -> tag:string -> len:int -> string
(** Requires [len >= 1]; the tag is truncated if longer than [len]. *)
