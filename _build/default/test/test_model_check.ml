(* Exhaustive small-scope model checking of the trusted ring buffer.

   The buffer is the component whose correctness the paper buys with
   verification, so it gets more than example-based tests: we enumerate
   *every* sequence of operations up to a bounded depth over a small
   alphabet, and after each sequence check the implementation against a
   reference model (writes applied in order to a flat sector array) and
   its internal invariants. Small-scope exhaustiveness catches the
   ordering/accounting interactions random testing tends to miss. *)

open Testu

let sector = 512

type op =
  | Push of { lba : int; sectors : int }
  | Drain_one  (* pop_coalesced with a small batch limit *)
  | Drain_all

let alphabet =
  [
    Push { lba = 0; sectors = 1 };
    Push { lba = 1; sectors = 2 };
    Push { lba = 3; sectors = 1 };
    Drain_one;
    Drain_all;
  ]

let max_depth = 6
let media_sectors = 16
let capacity_bytes = 5 * sector

(* Reference model: writes applied strictly in order. *)
type model = {
  media : bytes;  (* one byte per sector: the fill character *)
  mutable queued : (int * int * char) list;  (* lba, sectors, fill; oldest first *)
}

let fill_char step = Char.chr (97 + (step mod 26))

let model_apply model (lba, sectors, fill) =
  for s = lba to lba + sectors - 1 do
    Bytes.set model.media s fill
  done

let model_push model ~lba ~sectors ~fill ~accepted =
  if accepted then model.queued <- model.queued @ [ (lba, sectors, fill) ]

let model_bytes model =
  List.fold_left (fun acc (_, sectors, _) -> acc + (sectors * sector)) 0 model.queued

(* Drain entries from the model in order while they belong to the batch
   the implementation would coalesce: start at the head, keep merging
   entries that begin within or adjacent to the accumulated range, within
   the byte budget. *)
let model_drain_batch model ~max_bytes =
  match model.queued with
  | [] -> false
  | (lba0, sectors0, fill0) :: rest ->
      (* The head is always taken; followers merge while they start
         within or adjacent to the accumulated range and fit the byte
         budget — mirroring [Ring_buffer.pop_coalesced]. *)
      model_apply model (lba0, sectors0, fill0);
      let base = lba0 in
      let end_lba = ref (lba0 + sectors0) in
      let budget = ref (sectors0 * sector) in
      let rec take_more = function
        | (lba, sectors, fill) :: rest
          when lba >= base && lba <= !end_lba
               && !budget + (sectors * sector) <= max_bytes ->
            model_apply model (lba, sectors, fill);
            end_lba := max !end_lba (lba + sectors);
            budget := !budget + (sectors * sector);
            take_more rest
        | rest -> model.queued <- rest
      in
      take_more rest;
      true

let media_of_impl impl_media =
  (* Reduce the implementation's sector store to fill characters. *)
  Bytes.init media_sectors (fun s ->
      (Storage.Block.Media.read impl_media ~lba:s ~sectors:1).[0])

let check_equivalence sequence =
  let ring = Rapilog.Ring_buffer.create ~sector_size:sector ~capacity_bytes in
  let impl_media =
    Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:media_sectors
  in
  let model = { media = Bytes.make media_sectors '\000'; queued = [] } in
  let drain_one () =
    let max_bytes = 3 * sector in
    match Rapilog.Ring_buffer.pop_coalesced ring ~max_bytes with
    | Some { Rapilog.Ring_buffer.lba; data } ->
        Storage.Block.Media.write impl_media ~lba ~data;
        let model_had = model_drain_batch model ~max_bytes in
        if not model_had then Alcotest.fail "impl drained, model empty"
    | None -> if model.queued <> [] then Alcotest.fail "model queued, impl empty"
  in
  List.iteri
    (fun step op ->
      (match op with
      | Push { lba; sectors } ->
          let fill = fill_char step in
          let data = String.make (sectors * sector) fill in
          let accepted = Rapilog.Ring_buffer.try_push ring ~lba ~data in
          let model_fits = model_bytes model + (sectors * sector) <= capacity_bytes in
          if accepted <> model_fits then
            Alcotest.failf "admission mismatch at step %d" step;
          model_push model ~lba ~sectors ~fill ~accepted
      | Drain_one -> drain_one ()
      | Drain_all ->
          while not (Rapilog.Ring_buffer.is_empty ring) do
            drain_one ()
          done);
      (* Invariants after every operation. *)
      if Rapilog.Ring_buffer.bytes_used ring <> model_bytes model then
        Alcotest.failf "byte accounting diverged at step %d" step;
      if Rapilog.Ring_buffer.length ring <> List.length model.queued then
        Alcotest.failf "queue length diverged at step %d" step)
    sequence;
  (* Final: drain everything and compare media images. *)
  while not (Rapilog.Ring_buffer.is_empty ring) do
    drain_one ()
  done;
  if not (Bytes.equal (media_of_impl impl_media) model.media) then
    Alcotest.fail "media contents diverged"

let enumerate depth visit =
  let count = ref 0 in
  let rec go prefix remaining =
    if remaining = 0 then begin
      incr count;
      visit (List.rev prefix)
    end
    else
      List.iter (fun op -> go (op :: prefix) (remaining - 1)) alphabet
  in
  go [] depth;
  !count

let exhaustive_up_to_depth () =
  let total = ref 0 in
  for depth = 1 to max_depth do
    total := !total + enumerate depth check_equivalence
  done;
  (* 5 + 25 + ... + 5^6 sequences, each fully checked. *)
  Alcotest.(check int) "sequences explored" 19530 !total

let suites =
  [
    ( "rapilog.model_check",
      [ case "ring buffer vs reference model, exhaustive to depth 6" exhaustive_up_to_depth ] );
  ]

(* Random deep sequences complement the exhaustive shallow ones: depth 40
   over a wider alphabet, sampled. *)
let random_deep_sequences =
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map2 (fun lba sectors -> Push { lba; sectors }) (int_range 0 10) (int_range 1 3);
          return Drain_one;
          return Drain_all;
        ])
  in
  prop "ring buffer vs model, random depth-40 sequences" ~count:300
    QCheck2.Gen.(list_size (return 40) op_gen)
    (fun sequence ->
      match check_equivalence sequence with
      | () -> true
      | exception Alcotest.Test_error -> false)

let suites =
  suites
  @ [ ("rapilog.model_check_random", [ random_deep_sequences ]) ]
