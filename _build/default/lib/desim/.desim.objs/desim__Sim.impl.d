lib/desim/sim.ml: Event_queue Rng Time
