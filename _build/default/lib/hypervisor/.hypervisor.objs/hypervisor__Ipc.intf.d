lib/hypervisor/ipc.mli: Desim
