type t = int

let zero = 0

let of_int n =
  assert (n >= 0);
  n

let to_int t = t
let add t n = t + n
let compare = Int.compare
let equal = Int.equal
let ( <= ) a b = Stdlib.( <= ) a b
let ( < ) a b = Stdlib.( < ) a b
let max = Stdlib.max
let min = Stdlib.min
let pp fmt t = Format.fprintf fmt "lsn:%d" t
