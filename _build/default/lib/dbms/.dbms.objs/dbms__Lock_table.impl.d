lib/dbms/lock_table.ml: Desim Hashtbl List Process Queue Sim
