bench/bench_micro.ml: Analyze Bechamel Bench_support Benchmark Char Dbms Desim Harness Hashtbl Instance List Measure Printf Rapilog Staged String Test Time Toolkit
