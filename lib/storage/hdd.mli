(** Rotational disk model.

    The model is positional: the platter rotates continuously, so the
    rotational delay of a request depends on where the head is — which is
    fully determined by the simulated clock — and on the angular position
    of the target sector. This reproduces the latency structure that
    RapiLog exploits: a stream of small synchronous log appends pays close
    to a full rotation per write (the platter has moved past the next
    sector by the time the next request arrives), whereas back-to-back
    asynchronous sequential writes pay only transfer time.

    The device services one request at a time (single actuator); queued
    requests are served FIFO. Writes reach the media when the transfer
    completes; a power cut during a transfer tears the write at sector
    granularity. After a power cut the device stops persisting anything
    (operations still "complete" so that in-flight processes do not wedge
    the event loop — by then the simulation is being shut down). *)

type config = {
  rpm : int;  (** rotational speed, e.g. 7200 *)
  sectors_per_track : int;
  tracks : int;  (** capacity = [tracks * sectors_per_track] sectors *)
  seek_settle : Desim.Time.span;  (** fixed cost of any track change *)
  seek_full_stroke : Desim.Time.span;
      (** additional cost of a full-stroke seek; a seek over distance [d]
          costs [seek_settle + seek_full_stroke * sqrt (d / tracks)] *)
  command_overhead : Desim.Time.span;  (** controller + bus cost per request *)
  sector_size : int;
}

val default_7200rpm : config
(** 7200 rpm, 500 KiB/track-ish geometry, ~8.3 ms rotation: a commodity
    SATA disk of the paper's era. *)

val config_with_rpm : config -> int -> config
(** Same geometry at a different spindle speed (for the device-latency
    sensitivity sweep). *)

val rotation_period : config -> Desim.Time.span

val create : Desim.Sim.t -> ?model:string -> config -> Block.t
(** The device derives its torn-write randomness from the simulation's
    root generator. When a {!Desim.Journal} is recording at creation,
    the device registers itself and journals every write's transfer
    start and media completion. *)

(** {2 Pure timing} — shared between the live request path and the
    crash-surface journal reconstruction, which re-derives post-cut
    drain timing without re-running the simulation. All functions are
    pure in the geometry, the clock and the head position. *)

type timeline = {
  wt_start_ns : int;  (** transfer start: a power cut from here tears *)
  wt_complete_ns : int;  (** media write instant *)
  wt_track : int;  (** head position afterwards *)
}

val write_timeline :
  config -> now_ns:int -> head_track:int -> lba:int -> sectors:int -> timeline
(** Timing of a write submitted at [now_ns] to an idle drive with the
    head at [head_track]: seek, rotational wait (pipelined with command
    overhead), then transfer. Exactly the arithmetic the live
    {!create}d device performs. *)

val track_of_lba : config -> int -> int
