(** Commit-flush batching policies.

    The WAL's force mutex already yields structural group commit: while
    one force's device write is in flight, later committers queue on the
    mutex and the next force covers all of them in one write. A policy
    decides whether a force {e leader} additionally waits before
    writing, to gather a larger batch:

    - [Serial]: no batching at all — the engine serialises commits and
      issues one physical write each (the no-group-commit baseline).
    - [Fixed n]: wait for [n] pending committers, up to a fixed cap
      ({!fixed_wait_cap_ns}). [Fixed 1] never waits and is the classic
      mutex-structured group commit — byte-identical to the behaviour
      before policies existed. A fixed batch target sized for a disk
      wastes its whole wait on a µs-latency device, which is precisely
      what the adaptive policy repairs.
    - [Adaptive {target_ns; max_batch}]: size the wait against the
      {e measured} device write latency (an EWMA maintained by the WAL).
      When the EWMA is at or below [target_ns] the device is fast enough
      that batching cannot pay — commit immediately; otherwise gather up
      to [max_batch] committers but never wait longer than one EWMA
      device write. *)

type t =
  | Serial
  | Fixed of int
  | Adaptive of { target_ns : int; max_batch : int }

val default : t
(** [Fixed 1]: mutex-structured group commit, no deliberate wait. *)

val quantum_ns : int
(** Polling granularity of a batching wait, in nanoseconds. *)

val fixed_wait_cap_ns : int
(** Upper bound on a [Fixed] policy's gather wait. *)

val decide : t -> ewma_ns:int -> pending:int -> waited_ns:int -> int
(** [decide policy ~ewma_ns ~pending ~waited_ns] is the leader's
    batching decision: [0] means issue the device write now, a positive
    value means sleep that many nanoseconds and re-evaluate. Pure
    integer arithmetic, zero allocation (gated by [bench/perf.exe]). *)

val ewma_update : prev:int -> obs:int -> int
(** One EWMA step over observed device-write latency (α = 1/8, integer
    shift); [obs] seeds the average when [prev = 0]. Allocation-free. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
