let () =
  Alcotest.run "rapilog-repro"
    (Test_desim.suites @ Test_metrics.suites @ Test_storage.suites
   @ Test_power.suites
   @ Test_hypervisor.suites @ Test_dbms.suites @ Test_log_record_prop.suites
   @ Test_stream_merge.suites
   @ Test_rapilog.suites @ Test_workload.suites @ Test_harness.suites
   @ Test_crash_surface.suites @ Test_crash_journal.suites
   @ Test_net.suites @ Test_quorum.suites @ Test_shard.suites
   @ Test_model_check.suites @ Test_audit_teeth.suites @ Test_scen.suites)
