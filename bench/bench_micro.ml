(* Bechamel microbenchmarks of the hot code paths: these measure the
   *implementation's* wall-clock cost (not simulated time), one
   Test.make per operation. *)

open Bechamel
open Toolkit

let crc_payload = String.init 4096 (fun i -> Char.chr (i land 0xff))

let test_crc32 =
  Test.make ~name:"crc32-4KiB"
    (Staged.stage (fun () -> ignore (Dbms.Crc32.digest_string crc_payload)))

let update_record =
  Dbms.Log_record.Update
    { txid = 42; key = 7; before = String.make 96 'b'; after = String.make 96 'a' }

let test_record_encode =
  Test.make ~name:"log-record-encode"
    (Staged.stage (fun () -> ignore (Dbms.Log_record.encode update_record)))

let encoded_update = Dbms.Log_record.encode update_record

let test_record_decode =
  Test.make ~name:"log-record-decode"
    (Staged.stage (fun () -> ignore (Dbms.Log_record.decode encoded_update ~pos:0)))

let test_ring_push_pop =
  let ring = Rapilog.Ring_buffer.create ~sector_size:512 ~capacity_bytes:(1 lsl 20) in
  let data = String.make 512 'r' in
  Test.make ~name:"ring-buffer-push-pop"
    (Staged.stage (fun () ->
         ignore (Rapilog.Ring_buffer.try_push ring ~lba:0 ~data);
         ignore (Rapilog.Ring_buffer.pop ring)))

let test_event_queue =
  let q = Desim.Event_queue.create () in
  let t = ref 0 in
  Test.make ~name:"event-queue-add-pop"
    (Staged.stage (fun () ->
         incr t;
         Desim.Event_queue.add q ~time:(Desim.Time.of_ns !t) ();
         ignore (Desim.Event_queue.pop_min q)))

let test_binary_heap =
  let q = Desim.Binary_heap.create () in
  let t = ref 0 in
  Test.make ~name:"binary-heap-add-pop"
    (Staged.stage (fun () ->
         incr t;
         Desim.Binary_heap.add q ~time:(Desim.Time.of_ns !t) ();
         ignore (Desim.Binary_heap.pop_min q)))

let test_rng =
  let rng = Desim.Rng.create 1L in
  Test.make ~name:"rng-bits64" (Staged.stage (fun () -> ignore (Desim.Rng.bits64 rng)))

let test_page_serialize =
  let page = Dbms.Page.create ~id:1 in
  for key = 0 to 15 do
    Dbms.Page.set page ~key ~value:(String.make 96 'v') ~lsn:(Dbms.Lsn.of_int 1)
  done;
  Test.make ~name:"page-serialize-8KiB"
    (Staged.stage (fun () -> ignore (Dbms.Page.serialize page ~page_bytes:8192)))

let test_sim_event_throughput =
  Test.make ~name:"sim-1000-sleeps"
    (Staged.stage (fun () ->
         let sim = Desim.Sim.create () in
         ignore
           (Desim.Process.spawn sim (fun () ->
                for _ = 1 to 1000 do
                  Desim.Process.sleep (Desim.Time.us 1)
                done));
         Desim.Sim.run sim))

let tests =
  [
    test_crc32;
    test_record_encode;
    test_record_decode;
    test_ring_push_pop;
    test_event_queue;
    test_binary_heap;
    test_rng;
    test_page_serialize;
    test_sim_event_throughput;
  ]

let run_all () =
  Harness.Report.section "Core-operation microbenchmarks (bechamel, wall clock)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
        let analysed = Analyze.all ols Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (ns :: _) -> Printf.sprintf "%.1f" ns
              | Some [] | None -> "-"
            in
            [ name; ns ] :: acc)
          analysed [])
      tests
    |> List.concat
  in
  Harness.Report.table ~columns:[ "operation"; "ns/op" ]
    ~rows:(List.sort compare rows)

let experiment =
  {
    Bench_support.id = "micro-core-ops";
    title = "Core-operation microbenchmarks (bechamel)";
    description =
      "bechamel microbenchmarks of event queue, sim step and logger hot paths";
    run = (fun ~quick:_ -> run_all ());
  }
