lib/dbms/log_record.mli: Buffer Format Lsn
