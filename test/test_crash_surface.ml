(* Tests for the exhaustive crash-surface explorer.

   These are deliberately tiny sweeps — a handful of points over a short
   window — because `dune runtest` also runs the bench harness's quick
   sweep. What they pin down is the machinery itself: enumeration finds
   boundaries, replay determinism holds point-for-point, the parallel
   fan-out is bit-identical to serial, and the explorer has teeth (it
   sees the losses of an unprotected configuration). *)

open Desim
open Testu
open Harness

let scenario mode =
  {
    Scenario.default with
    Scenario.mode;
    workload =
      Scenario.Micro
        {
          Workload.Microbench.default_config with
          Workload.Microbench.keys = 64;
          value_bytes = 32;
        };
    clients = 2;
    seed = 99L;
  }

let tiny mode =
  {
    (Crash_surface.default (scenario mode)) with
    Crash_surface.window_start = Time.ms 2;
    window_length = Time.ms 2;
    stride = 40;
    tight_window = Time.ms 20;
    tight_buffer_bytes = 64 * 1024;
  }

let enumeration_finds_boundaries () =
  let config = tiny Scenario.Rapilog in
  let e = Crash_surface.enumerate config Crash_surface.Power_cut in
  Alcotest.(check bool)
    (Printf.sprintf "boundaries found (%d)" e.Crash_surface.e_boundaries)
    true
    (e.Crash_surface.e_boundaries > 0);
  Alcotest.(check bool) "candidates strided" true
    (Array.length e.Crash_surface.e_candidates
    <= (e.Crash_surface.e_boundaries / config.Crash_surface.stride) + 1);
  (* Candidate clocks lie inside the window and are non-decreasing. *)
  let previous = ref 0 in
  Array.iter
    (fun (_, at_ns) ->
      Alcotest.(check bool) "inside window" true
        (e.Crash_surface.e_window_start_ns <= at_ns
        && at_ns < e.Crash_surface.e_window_end_ns);
      Alcotest.(check bool) "monotonic" true (!previous <= at_ns);
      previous := at_ns)
    e.Crash_surface.e_candidates

let enumeration_is_deterministic () =
  let config = tiny Scenario.Rapilog in
  let a = Crash_surface.enumerate config Crash_surface.Os_crash in
  let b = Crash_surface.enumerate config Crash_surface.Os_crash in
  Alcotest.(check bool) "identical enumerations" true (a = b)

let rapilog_sweep_is_clean () =
  let result = Crash_surface.sweep ~jobs:1 (tiny Scenario.Rapilog) in
  Alcotest.(check bool)
    (Printf.sprintf "points explored (%d)" result.Crash_surface.r_explored)
    true
    (result.Crash_surface.r_explored >= 3);
  Alcotest.(check int) "no contract breaks" 0
    result.Crash_surface.r_contract_breaks;
  Alcotest.(check int) "no acked commit lost" 0 result.Crash_surface.r_lost_total

let unprotected_sweep_has_teeth () =
  (* The explorer must be able to see durability loss, or a clean
     RapiLog sweep would prove nothing. *)
  let config =
    {
      (tiny Scenario.Unsafe_wcache) with
      Crash_surface.kinds = [ Crash_surface.Power_cut ];
    }
  in
  let result = Crash_surface.sweep ~jobs:1 config in
  Alcotest.(check bool)
    (Printf.sprintf "losses seen (%d)" result.Crash_surface.r_lost_total)
    true
    (result.Crash_surface.r_lost_total > 0);
  Alcotest.(check bool) "contract breaks recorded" true
    (result.Crash_surface.r_contract_breaks > 0)

let parallel_equals_serial () =
  let config =
    {
      (tiny Scenario.Rapilog) with
      Crash_surface.kinds = [ Crash_surface.Power_cut; Crash_surface.Os_crash ];
    }
  in
  let serial = Crash_surface.sweep ~jobs:1 config in
  let parallel = Crash_surface.sweep ~jobs:4 config in
  Alcotest.(check bool) "verdicts bit-identical" true
    (serial.Crash_surface.r_verdicts = parallel.Crash_surface.r_verdicts);
  Alcotest.(check bool) "summaries identical" true (serial = parallel)

let kind_names_roundtrip () =
  List.iter
    (fun kind ->
      match Crash_surface.kind_of_name (Crash_surface.kind_name kind) with
      | Some k -> Alcotest.(check bool) "roundtrip" true (k = kind)
      | None -> Alcotest.fail "kind name did not roundtrip")
    Crash_surface.all_kinds;
  Alcotest.(check bool) "unknown rejected" true
    (Crash_surface.kind_of_name "meteor-strike" = None)

let suites =
  [
    ( "harness.crash_surface",
      [
        case "enumeration finds boundaries in the window"
          enumeration_finds_boundaries;
        case "enumeration is deterministic" enumeration_is_deterministic;
        case "rapilog sweep is clean" rapilog_sweep_is_clean;
        case "unprotected sweep has teeth" unprotected_sweep_has_teeth;
        case "parallel sweep equals serial" parallel_equals_serial;
        case "kind names roundtrip" kind_names_roundtrip;
      ] );
  ]
