bench/bench_support.ml: Dbms Desim Experiment Harness List Report Scenario Time
