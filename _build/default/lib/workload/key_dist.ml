open Desim

type t = Uniform of int | Zipf of { n : int; dist : Rng.Zipf.dist }

let uniform ~n =
  assert (n > 0);
  Uniform n

let zipf ~n ~theta = Zipf { n; dist = Rng.Zipf.create ~n ~theta }

let n = function Uniform n -> n | Zipf { n; _ } -> n

let sample rng = function
  | Uniform n -> Rng.int rng n
  | Zipf { dist; _ } -> Rng.Zipf.sample rng dist
