test/test_model_check.ml: Alcotest Bytes Char List QCheck2 Rapilog Storage String Testu
