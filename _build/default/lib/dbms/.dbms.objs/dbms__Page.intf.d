lib/dbms/page.mli: Hashtbl Lsn
