(** Run scenarios and collect results.

    Every run follows the same phases: build the machine, load the
    initial rows through ordinary transactions, then launch the
    closed-loop clients. A *steady* run measures committed transactions
    inside a warmup-delimited window; a *failure* run injects a power cut
    or a guest-OS crash while the clients hammer the engine, lets the
    simulation settle (the trusted logger drains, devices lose power at
    hold-up expiry), and then audits durable media against the
    client-side expectation. *)

type steady_result = {
  mode : Scenario.mode;
  clients : int;
  committed_in_window : int;
  throughput : float;  (** committed transactions per simulated second *)
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p95_us : float;
  latency_p99_us : float;
  physical_log_writes : int;
  physical_log_sectors : int;
  wal_forces : int;
  force_mean_bytes : float;
  log_bytes_per_txn : float;
  logger_stats : logger_stats option;
  total_committed : int;
}

and logger_stats = {
  acked_writes : int;
  drain_writes : int;
  max_buffered : int;
  stalls : int;
}

val run_steady : Scenario.config -> steady_result

val run_steady_metrics :
  Scenario.config -> steady_result * Desim.Metrics.t
(** {!run_steady} with a fresh {!Desim.Metrics} registry installed
    around the whole run (world construction included, so every
    component resolves its stage handles). The steady result is
    bit-identical to an uninstrumented {!run_steady} of the same config
    — instrumentation only reads the clock. Serial only: like the
    journal, the ambient registry must not be live across a
    {!Parallel} fan-out, so this entry point is not batched. *)

type failure_kind = Power_cut | Os_crash

val failure_name : failure_kind -> string

type failure_result = {
  kind : failure_kind;
  fmode : Scenario.mode;
  acked : int;  (** write transactions acknowledged before the lights went out *)
  audit : Audit.t;
  cut_at : Desim.Time.t;
  durable_records : int;
  redo_applied : int;
  undo_applied : int;
  losers : int;
  buffered_at_cut : int option;
      (** trusted-buffer occupancy at the power-fail instant *)
  holdup_window : Desim.Time.span option;
  invariant_violations : int;
      (** reported by the {!Rapilog.Invariants} monitor attached to the
          trusted logger for the whole run; 0 when no logger exists *)
}

val run_failure :
  Scenario.config -> kind:failure_kind -> after:Desim.Time.span -> failure_result
(** [after] is measured from the end of the load phase. *)

val run_steady_batch : ?jobs:int -> Scenario.config list -> steady_result list
(** Evaluate independent steady-state scenarios on a {!Parallel} worker
    pool ([jobs] defaults to {!Parallel.default_jobs}, overridable with
    [RAPILOG_JOBS]). Results are in input order and bit-identical to
    running each config through {!run_steady} serially. *)

val run_failure_batch :
  ?jobs:int ->
  kind:failure_kind ->
  (Scenario.config * Desim.Time.span) list ->
  failure_result list
(** Failure trials, fanned out like {!run_steady_batch}; each pair is a
    config plus the [after] delay for the injected failure. *)

val sweep :
  ?jobs:int ->
  config:Scenario.config ->
  clients:int list ->
  modes:Scenario.mode list ->
  unit ->
  (int * steady_result list) list
(** The canonical throughput-sweep shape: every mode at every client
    count, evaluated in parallel, returned as one row per client count
    with the results in [modes] order. *)

val durability_ok : failure_result -> bool
(** Whether the outcome matches the mode's durability promise: safe modes
    must lose nothing; unsafe modes are allowed (expected) to lose. Any
    runtime invariant violation fails every mode. *)
