lib/workload/client.mli: Dbms Desim Hypervisor
