(** Priority queue of simulation events.

    Ordered by (time, sequence number); the sequence number is assigned
    on insertion, so two events scheduled for the same instant fire in
    insertion order — this is what makes simulation runs deterministic.

    Since PR 8 the implementation is the hierarchical {!Timer_wheel}
    (amortised O(1) add/pop over flat unboxed arrays) rather than the
    O(log n) binary heap, which survives as {!Binary_heap} — the oracle
    the wheel is model-tested against. The pop order of the two backends
    is identical by construction and by test. {!add}, {!pop_min} and
    {!drain_one} perform no per-event heap allocation (pool growth
    amortises away); only the deprecated option-returning conveniences
    {!pop} and {!peek_time} allocate.

    Inserts must be monotone — at or after the last popped time — which
    {!Sim} guarantees by construction ([Sim.schedule_at] refuses the
    simulated past). For arbitrary-order insertion use {!Binary_heap}. *)

type 'a t

val create : unit -> 'a t
(** An empty queue. *)

val add : 'a t -> time:Time.t -> 'a -> unit
(** Insert an event payload to fire at [time]. Allocation-free except
    when the backing arrays have to grow. Raises [Invalid_argument] if
    [time] precedes the last popped time (see the monotone contract
    above). *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Events currently queued. *)

val max_length : 'a t -> int
(** High-water mark of {!length} over the queue's lifetime — the
    simultaneity the run actually exercised; free to maintain and
    surfaced by the metrics report. *)

val scheduled : 'a t -> int
(** Total events ever inserted (the next sequence number). *)

val min_time : 'a t -> Time.t
(** Time of the earliest event. The queue must be non-empty (checked by
    an assert); callers guard with {!is_empty}. *)

val pop_min : 'a t -> 'a
(** Remove and return the earliest event's payload without boxing it.
    The queue must be non-empty (checked by an assert); callers guard
    with {!is_empty} — this is the allocation-free hot path used by
    [Sim.step]. *)

val drain_one : 'a t -> f:(Time.t -> 'a -> unit) -> bool
(** [drain_one q ~f] pops the earliest event and applies [f time
    payload]; [false] (and [f] not called) when empty. Exceptionless and
    allocation-free provided [f] is a pre-existing closure. *)

val pop : 'a t -> (Time.t * 'a) option
[@@deprecated "allocates a tuple and a Some per event; use drain_one"]
(** Remove and return the earliest event, or [None] if empty.
    @deprecated Allocates the tuple and the [Some] on every call; use
    {!drain_one} (or {!is_empty} + {!min_time} + {!pop_min}). *)

val peek_time : 'a t -> Time.t option
[@@deprecated "allocates a Some per call; use is_empty + min_time"]
(** Time of the earliest event without removing it.
    @deprecated Allocates the [Some] on every call; use {!is_empty} and
    {!min_time}. *)
