module Ring_buffer = Ring_buffer
module Trusted_logger = Trusted_logger
module Durability = Durability
module Invariants = Invariants
module Tenant = Tenant

let attach ~vmm ?power ?trace ?(config = Trusted_logger.default_config) ~device () =
  let sim = Hypervisor.Vmm.sim vmm in
  let domain = Hypervisor.Vmm.trusted_domain vmm ~name:"rapilog" in
  let logger = Trusted_logger.create sim ~domain ?trace config ~device in
  (match power with
  | Some power -> Trusted_logger.attach_power logger power
  | None -> ());
  let frontend = Hypervisor.Vmm.attach_virtio_disk vmm (Trusted_logger.backend logger) in
  (frontend, logger)
