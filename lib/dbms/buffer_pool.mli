(** Buffer pool: the in-memory page cache over the data device.

    The pool enforces the write-ahead rule: before a dirty page image
    goes to the data device, the WAL is forced up to that image's
    [page_lsn]. Pages are fetched on miss (a timed device read) and a
    least-recently-used *clean-preferred* victim is evicted when over
    capacity; evicting a dirty page flushes it first (a steal policy —
    uncommitted data can reach the data device, which is why recovery
    needs an undo pass).

    {b Torn-page protection.} A page image spans many sectors, and a
    power cut can tear a write at sector granularity — which would
    destroy the page's only durable copy if images were updated in
    place. Each page therefore owns a {e pair} of on-device slots and
    every flush goes to the slot the current newest image does {e not}
    occupy; readers (and recovery) take the newest slot whose CRC
    checks out. The invariant is that the newest intact image is never
    overwritten, so a torn flush only costs the work since the previous
    image — which the redo log still covers. This is the ping-pong
    variant of InnoDB's doublewrite buffer / PostgreSQL's full-page
    writes. *)

type config = {
  capacity_pages : int;
  page_bytes : int;  (** multiple of the device sector size *)
  keys_per_page : int;
  data_start_lba : int;
}

val default_config : config
(** 512-page cache, 8 KiB pages, 16 keys per page. *)

type t

val create :
  Desim.Sim.t ->
  config ->
  device:Storage.Block.t ->
  wal_force:(page:int -> Lsn.t -> unit) ->
  t
(** [wal_force] enforces the WAL rule before a dirty page flush: it must
    make the flushed page's log durable up to the given LSN. The page id
    is supplied so a multi-stream WAL can force the page's own stream —
    page LSNs are per-stream offsets, meaningless on any other stream. *)

val config : t -> config

val lba_of_page : config -> sector_size:int -> int -> int
(** Base address of the page's slot pair; slot [p] (0 or 1) lives at
    [lba_of_page … + p * page_bytes / sector_size]. *)

val slot_count : int
(** Slots per page (2). *)

val install : t -> Page.t -> dirty_at:Lsn.t option -> parity:int option -> unit
(** Seed the pool with a recovered page (restart path). [dirty_at]
    marks it dirty with the given recovery LSN — recovered state that is
    not yet on the data device must be flushed by a later checkpoint.
    [parity] is the slot holding the newest intact image (from
    {!Recovery}), so the next flush targets the other slot.
    Installation counts the page as allocated on device. *)

val with_page : t -> key:int -> (Page.t -> 'a) -> 'a
(** Run a function on the page holding [key], fetching it on a miss.
    Must run in a process. The page reference must not be retained past
    the callback (it may be evicted afterwards). *)

val mark_dirty : t -> Page.t -> lsn:Lsn.t -> unit
(** Note an update at [lsn]; sets the page's recovery LSN if it was
    clean. *)

val flush_page : t -> Page.t -> unit
(** WAL-force then write the page image; no-op on clean pages. Must run
    in a process. *)

val spawn_cleaner :
  t ->
  Hypervisor.Domain.t ->
  interval:Desim.Time.span ->
  batch:int ->
  Desim.Process.handle
(** Background writer (PostgreSQL's bgwriter): every [interval], flush
    up to [batch] of the least-recently-used dirty pages so that
    eviction usually finds a clean victim instead of stalling a page
    miss behind a device write. *)

val flush_all : t -> unit
val dirty_pages : t -> Page.t list
val min_rec_lsn : t -> Lsn.t option
(** The redo point implied by the current dirty set. *)

val cached_pages : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val page_writes : t -> int
