lib/dbms/wal.mli: Desim Log_record Lsn Storage
