(** Fuzzy checkpointing.

    A checkpoint (1) computes the redo point from the dirty-page set,
    (2) flushes the dirty pages (each flush WAL-forces first), (3) logs a
    checkpoint record and (4) persists the redo point in the master
    block. Transactions keep running throughout; the conservative redo
    point keeps recovery correct in the presence of concurrent updates.

    Checkpoints bound recovery work; they are not needed for durability
    (that is the WAL's job). *)

type config = { interval : Desim.Time.span }

val default_config : config
(** Checkpoint every simulated second. *)

val run_once : wal:Wal.t -> pool:Buffer_pool.t -> Lsn.t
(** Perform one checkpoint; returns the redo LSN it recorded. Must run
    in a process. *)

val start :
  Desim.Sim.t -> config -> wal:Wal.t -> pool:Buffer_pool.t -> Desim.Process.handle
(** Spawn the periodic checkpointer. *)

val start_in_domain :
  Hypervisor.Domain.t -> config -> wal:Wal.t -> pool:Buffer_pool.t -> Desim.Process.handle
(** Same, owned by a guest domain so a guest crash kills it. *)
