open Desim

type config = {
  rpm : int;
  sectors_per_track : int;
  tracks : int;
  seek_settle : Time.span;
  seek_full_stroke : Time.span;
  command_overhead : Time.span;
  sector_size : int;
}

let default_7200rpm =
  {
    rpm = 7200;
    sectors_per_track = 1000;
    tracks = 262144;
    seek_settle = Time.us 500;
    seek_full_stroke = Time.ms 8;
    command_overhead = Time.us 30;
    sector_size = 512;
  }

let config_with_rpm config rpm = { config with rpm }

let rotation_period config = Time.ns (60_000_000_000 / config.rpm)

type state = {
  sim : Sim.t;
  config : config;
  media : Block.Media.t;
  rng : Rng.t;
  actuator : Resource.Semaphore.t;
  mutable head_track : int;
  mutable in_flight : (int * string) option;  (* lba, data *)
  mutable powered : bool;
  journal : Journal.t option;
  journal_id : int;
}

let period_ns config = Time.span_to_ns (rotation_period config)

let sector_time_ns config = period_ns config / config.sectors_per_track

(* The timing helpers below are pure in the drive geometry, the clock
   and the head position. The live request path uses them through
   {!position}/{!transfer_span}; the crash sweep's journal
   reconstruction uses the same functions through {!write_timeline} to
   re-derive, without re-running the simulation, exactly when a drained
   log write would start transferring and complete — so the two paths
   cannot drift apart. *)

let seek_span config distance =
  if distance = 0 then Time.zero_span
  else
    let frac = sqrt (float_of_int distance /. float_of_int config.tracks) in
    Time.add_span config.seek_settle (Time.scale_span config.seek_full_stroke frac)

(* Time until the start of [target_sector]'s angular position passes under
   the head, given the platter position implied by the clock [now_ns]. *)
let rotational_wait_ns config ~now_ns target_sector =
  let period = period_ns config in
  let target_angle_ns =
    target_sector mod config.sectors_per_track * sector_time_ns config
  in
  let now_angle_ns = now_ns mod period in
  (target_angle_ns - now_angle_ns + period) mod period

(* The controller overhead is pipelined with the rotational wait (never
   under it): a request that lands exactly where the head is pays only
   the overhead — this is the drive's track buffer absorbing command
   latency, and it is what lets back-to-back sequential writes run at
   close to the media rate. *)
let position_wait_ns config ~now_ns ~head_track lba =
  let track = lba / config.sectors_per_track in
  let seek_ns = Time.span_to_ns (seek_span config (abs (track - head_track))) in
  let rot = rotational_wait_ns config ~now_ns:(now_ns + seek_ns) lba in
  let overhead = Time.span_to_ns config.command_overhead in
  (track, seek_ns, if rot >= overhead then rot else overhead)

type timeline = { wt_start_ns : int; wt_complete_ns : int; wt_track : int }

let track_of_lba config lba = lba / config.sectors_per_track

let write_timeline config ~now_ns ~head_track ~lba ~sectors =
  let track, seek_ns, wait_ns = position_wait_ns config ~now_ns ~head_track lba in
  let start_ns = now_ns + seek_ns + wait_ns in
  {
    wt_start_ns = start_ns;
    wt_complete_ns = start_ns + (sectors * sector_time_ns config);
    wt_track = track;
  }

(* Seek, then wait for the target sector. [position_wait_ns] already
   evaluates the rotational phase at the post-seek instant, so both
   sleeps are known up front. *)
let position state lba =
  let track, seek_ns, wait_ns =
    position_wait_ns state.config
      ~now_ns:(Time.to_ns (Sim.now state.sim))
      ~head_track:state.head_track lba
  in
  Process.sleep (Time.ns seek_ns);
  state.head_track <- track;
  Process.sleep (Time.ns wait_ns)

let transfer_span state sectors =
  Time.ns (sectors * sector_time_ns state.config)

let service_read state ~lba ~sectors =
  let started = Sim.now state.sim in
  Resource.Semaphore.acquire state.actuator;
  Fun.protect ~finally:(fun () -> Resource.Semaphore.release state.actuator)
  @@ fun () ->
  position state lba;
  Process.sleep (transfer_span state sectors);
  let data = Block.Media.read state.media ~lba ~sectors in
  (data, Time.diff (Sim.now state.sim) started)

let service_write state ~lba ~data =
  let started = Sim.now state.sim in
  let sectors = String.length data / state.config.sector_size in
  Resource.Semaphore.acquire state.actuator;
  Fun.protect ~finally:(fun () -> Resource.Semaphore.release state.actuator)
  @@ fun () ->
  position state lba;
  state.in_flight <- Some (lba, data);
  (match state.journal with
  | Some j -> Journal.write_start j state.sim ~device:state.journal_id ~lba ~sectors
  | None -> ());
  Process.sleep (transfer_span state sectors);
  state.in_flight <- None;
  if state.powered then begin
    Block.Media.write state.media ~lba ~data;
    match state.journal with
    | Some j ->
        Journal.write_complete j state.sim ~device:state.journal_id ~lba ~sectors
          ~data
    | None -> ()
  end;
  Time.diff (Sim.now state.sim) started

let power_cut state =
  state.powered <- false;
  match state.in_flight with
  | Some (lba, data) ->
      state.in_flight <- None;
      Block.Media.write_torn state.media ~rng:state.rng ~lba ~data
  | None -> ()

let create sim ?(model = "hdd-7200") config =
  assert (config.rpm > 0 && config.sectors_per_track > 0 && config.tracks > 0);
  let media =
    Block.Media.create ~sector_size:config.sector_size
      ~capacity_sectors:(config.tracks * config.sectors_per_track)
  in
  let rng = Rng.split (Sim.rng sim) in
  let journal = Journal.recording () in
  let journal_id =
    match journal with
    | Some j ->
        Journal.register_device j ~model ~sector_size:config.sector_size
          ~capacity_sectors:(config.tracks * config.sectors_per_track) ~rng
    | None -> -1
  in
  let state =
    {
      sim;
      config;
      media;
      rng;
      actuator = Resource.Semaphore.create sim 1;
      head_track = 0;
      in_flight = None;
      powered = true;
      journal;
      journal_id;
    }
  in
  let stats = Disk_stats.create () in
  (* Physical write service (seek + rotation + transfer), per device
     model — the bottom of every commit-path breakdown. *)
  let m_write =
    Option.map
      (fun reg ->
        Metrics.histogram reg ("device.write:" ^ Disk_stats.instance_name model))
      (Metrics.recording ())
  in
  let ops =
    {
      Block.op_read =
        (fun ~lba ~sectors ->
          let data, service = service_read state ~lba ~sectors in
          Disk_stats.record_read stats ~sectors ~service;
          data);
      op_write =
        (fun ~lba ~data ~fua:_ ->
          (* No volatile cache here, so FUA and plain writes coincide;
             a cache is added by wrapping with {!Write_cache}. *)
          let service = service_write state ~lba ~data in
          let sectors = String.length data / config.sector_size in
          (match m_write with
          | Some h -> Metrics.Histogram.observe_span h service
          | None -> ());
          Disk_stats.record_write stats ~sectors ~service);
      op_flush =
        (fun () ->
          Process.sleep config.command_overhead;
          Disk_stats.record_flush stats ~service:config.command_overhead);
      op_power_cut = (fun () -> power_cut state);
      op_durable_read =
        (fun ~lba ~sectors -> Block.Media.read media ~lba ~sectors);
      op_durable_extent = (fun () -> Block.Media.extent media);
    }
  in
  Block.make ~journal_id
    ~info:
      {
        Block.model;
        sector_size = config.sector_size;
        capacity_sectors = config.tracks * config.sectors_per_track;
      }
    ~stats ~ops ()
