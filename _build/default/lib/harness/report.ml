let out = Format.std_formatter

let rule c width =
  Format.fprintf out "%s@." (String.make width c)

let section title =
  Format.fprintf out "@.";
  rule '=' 72;
  Format.fprintf out "%s@." title;
  rule '=' 72

let subsection title =
  Format.fprintf out "@.-- %s@." title

let kv key value = Format.fprintf out "  %-28s %s@." key value
let kvf key fmt = Format.kasprintf (fun value -> kv key value) fmt

let float_cell v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e9 then
    Printf.sprintf "%.0f" v
  else if Float.abs v >= 100. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let table ~columns ~rows =
  let widths =
    List.mapi
      (fun i column ->
        List.fold_left
          (fun w row ->
            match List.nth_opt row i with
            | Some cell -> max w (String.length cell)
            | None -> w)
          (String.length column) rows)
      columns
  in
  let print_row cells =
    let padded =
      List.map2
        (fun width cell -> Printf.sprintf "%*s" width cell)
        widths
        (List.mapi (fun i _ -> match List.nth_opt cells i with Some c -> c | None -> "") columns)
    in
    Format.fprintf out "  %s@." (String.concat "  " padded)
  in
  print_row columns;
  Format.fprintf out "  %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows

let series ~title ~x_label ~columns ~rows =
  subsection title;
  table
    ~columns:(x_label :: columns)
    ~rows:
      (List.map
         (fun (x, ys) -> float_cell x :: List.map float_cell ys)
         rows)

let bars ~title ~unit_label ~rows =
  subsection title;
  let width = 40 in
  let label_width =
    List.fold_left (fun w (label, _) -> max w (String.length label)) 0 rows
  in
  let largest =
    List.fold_left
      (fun m (_, v) -> if Float.is_nan v then m else Float.max m v)
      0. rows
  in
  List.iter
    (fun (label, value) ->
      let filled =
        if largest <= 0. || Float.is_nan value || value < 0. then 0
        else int_of_float (Float.round (value /. largest *. float_of_int width))
      in
      Format.fprintf out "  %*s  %-*s %s %s@." label_width label width
        (String.make filled '#') (float_cell value) unit_label)
    rows

let note text = Format.fprintf out "  note: %s@." text
