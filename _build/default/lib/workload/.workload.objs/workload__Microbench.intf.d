lib/workload/microbench.mli: Dbms Desim
