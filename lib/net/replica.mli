(** The remote log replica: a second machine holding a copy of the
    primary's admitted log stream.

    The replica is a separate failure domain — its device is {e not}
    registered with the primary's {!Power.Power_domain}, so a primary
    power cut or machine loss leaves the replica (and everything it has
    received) intact. An entry counts as replicated the instant
    {!receive} runs: the replica's buffer is its own durability domain,
    exactly as the primary's trusted buffer is (the same seL4-isolation
    argument, one machine over). A background drain writes received
    entries to the replica's log device off the ack path.

    Entries arrive tagged with the primary's admission sequence number
    (1, 2, 3, …). Links are FIFO, so on a single data link they arrive
    in sequence order; {!entries} preserves arrival order and recovery
    applies only the longest consecutive prefix. *)

open Desim

type t

val create : Sim.t -> device:Storage.Block.t -> unit -> t
(** The drain process is spawned immediately (a plain simulation
    process: it survives guest crashes on the primary). When
    {!Desim.Metrics} recording is on, per-entry drain latency goes to
    the ["replica.drain"] histogram. *)

val device : t -> Storage.Block.t

val receive : t -> seq:int -> lba:int -> data:string -> unit
(** Accept one replicated entry; non-blocking, callable from event
    context (a link's deliver callback). *)

val entries : t -> (int * int * string) list
(** All received entries as [(seq, lba, data)] in arrival order. *)

val prefix : t -> int
(** Length [m] of the longest consecutive prefix [1..m] of the received
    sequence numbers — this replica's durable watermark, the quantity a
    quorum election compares across live nodes. *)

val received : t -> int

val received_bytes : t -> int

val drained_writes : t -> int
(** Entries the background drain has written to the replica device. *)

val quiesce : t -> unit
(** Block until the drain catches up; must run in a process. *)
