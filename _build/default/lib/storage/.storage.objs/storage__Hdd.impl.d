lib/storage/hdd.ml: Block Desim Disk_stats Fun Process Resource Rng Sim String Time
