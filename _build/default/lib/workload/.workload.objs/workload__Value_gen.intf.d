lib/workload/value_gen.mli: Desim
