(* fig10-consolidation: server consolidation, the virtualisation story
   the paper's platform enables. Two independent databases share one
   physical log disk. With synchronous logging the two log streams fight
   over the head — each force pays a seek between the log regions on top
   of the rotational wait. With RapiLog, one trusted logger absorbs both
   streams and drains them in large batches, so co-location costs
   little. *)

open Desim
open Harness
open Bench_support

type db = {
  engine : Dbms.Engine.t;
  mutable committed : int;
}

(* Each database gets its own partition; on a real disk the partitions
   sit far apart, so alternating between the two log regions costs a
   long seek. 100M sectors = ~100k tracks = ~40% of the stroke. *)
let log_region_stride = 100_000_000

(* Build [count] databases; [log_path_for i] supplies each database's
   log device (one shared path, or a dedicated one per database). *)
let build_databases sim vmm ~count ~log_path_for =
  List.init count (fun i ->
      let wal_config =
        {
          Dbms.Wal.default_config with
          master_lba = i * log_region_stride;
          log_start_lba = (i * log_region_stride) + 8;
        }
      in
      let wal = Dbms.Wal.create sim wal_config ~device:(log_path_for i) in
      let data_dev = Storage.Ssd.create sim Storage.Ssd.default in
      let pool =
        Dbms.Buffer_pool.create sim Dbms.Buffer_pool.default_config
          ~device:data_dev
          ~wal_force:(fun ~page:_ lsn -> Dbms.Wal.force wal lsn)
      in
      let engine =
        Dbms.Engine.create ~vmm ~profile:Dbms.Engine_profile.postgres_like ~wal
          ~pool ()
      in
      { engine; committed = 0 })

let run_consolidated ~rapilog ~count ~shared ~duration =
  let sim = Sim.create ~seed:42L () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  (* One trusted logger (or virtio path) per *virtual* log disk, exactly
     as the paper interposes per guest disk — when consolidated, both
     virtual disks map onto the same physical spindle. Per-disk loggers
     keep each drain stream contiguous; a single FIFO logger over both
     regions would interleave them into small seek-bound batches. *)
  let shared_disk =
    if shared then Some (Storage.Hdd.create sim Storage.Hdd.default_7200rpm)
    else None
  in
  let make_path () =
    let disk =
      match shared_disk with
      | Some disk -> disk
      | None -> Storage.Hdd.create sim Storage.Hdd.default_7200rpm
    in
    if rapilog then fst (Rapilog.attach ~vmm ~device:disk ())
    else
      Hypervisor.Vmm.attach_virtio_disk vmm
        (Hypervisor.Virtio_blk.backend_of_block disk)
  in
  let paths = List.init count (fun _ -> make_path ()) in
  let log_path_for i = List.nth paths i in
  let databases = build_databases sim vmm ~count ~log_path_for in
  let gen = Workload.Microbench.create (Sim.rng sim) Workload.Microbench.default_config in
  List.iter
    (fun db ->
      for _ = 1 to 4 do
        ignore
          (Hypervisor.Vmm.spawn_guest vmm (fun () ->
               while true do
                 ignore (Dbms.Engine.exec db.engine (Workload.Microbench.next gen));
                 db.committed <- db.committed + 1
               done))
      done)
    databases;
  Sim.run ~until:(Time.add Time.zero duration) sim;
  List.map
    (fun db -> float_of_int db.committed /. Time.span_to_float_sec duration)
    databases

let fig10 =
  {
    id = "fig10-consolidation";
    title = "Fig 10: two databases consolidated onto one log disk";
    description =
      "consolidates two databases onto one log disk and measures the interference";
    run =
      (fun ~quick ->
        Report.section
          "Fig 10: consolidation - databases sharing one 7200 rpm log disk";
        let duration = if quick then Time.ms 800 else Time.sec 2 in
        let total rates = List.fold_left ( +. ) 0. rates in
        let rows =
          List.concat_map
            (fun rapilog ->
              let label = if rapilog then "rapilog" else "virt-sync" in
              let dedicated =
                run_consolidated ~rapilog ~count:2 ~shared:false ~duration
              in
              let shared =
                run_consolidated ~rapilog ~count:2 ~shared:true ~duration
              in
              [
                [
                  label;
                  Report.float_cell (total dedicated);
                  Report.float_cell (total shared);
                  Printf.sprintf "%.0f%%"
                    (100. *. (1. -. (total shared /. total dedicated)));
                  Printf.sprintf "%.2f"
                    (match shared with
                    | [ a; b ] -> min a b /. max a b
                    | _ -> nan);
                ];
              ])
            [ false; true ]
        in
        Report.table
          ~columns:
            [
              "config";
              "2 DBs, 2 log disks";
              "2 DBs, 1 shared disk";
              "consolidation cost";
              "fairness";
            ]
          ~rows;
        Report.note
          "shape target: giving up the second spindle costs sync logging roughly half its";
        Report.note
          "aggregate commits (the shared head serves ~one force per rotation, split two";
        Report.note
          "ways); rapilog's per-disk loggers drain in large contiguous batches, so";
        Report.note
          "consolidation is nearly free and fair");
  }

let experiments = [ fig10 ]
