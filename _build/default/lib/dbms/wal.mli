(** Write-ahead log manager.

    The logical log is an append-only byte stream of encoded
    {!Log_record.t}s. {!append} only buffers in (guest) memory; {!force}
    makes the stream durable up to a target LSN by writing the not-yet
    written sector range to the log device. Because the device write is
    serialised by a mutex, committers that arrive while a force is in
    flight wait, and the next force covers all of their records in one
    device write — i.e. *group commit* falls out of the structure. A
    force that begins or ends mid-sector rewrites the partial sector
    (zero-padded at the tail), which is how real WAL implementations
    handle unaligned tails.

    What "durable" means depends on the device the WAL writes to: a raw
    disk with its write cache disabled is durable at completion; a
    write-cache device needs [flush_after_write] (and the *unsafe*
    configuration deliberately leaves it off); the RapiLog virtual log
    disk acks from the trusted buffer, and its contract makes that ack
    durable.

    On-device layout: sector [master_lba] holds the master block (the
    latest checkpoint's redo LSN); the stream's byte 0 lives at
    [log_start_lba]. *)

type config = {
  master_lba : int;
  log_start_lba : int;
  flush_after_write : bool;
      (** issue a device flush after every force — required for
          durability on volatile-cache devices *)
}

val default_config : config
(** Master at sector 0, log from sector 8, no flush-after-write. *)

type t

val create : Desim.Sim.t -> config -> device:Storage.Block.t -> t

val create_resumed :
  Desim.Sim.t ->
  config ->
  device:Storage.Block.t ->
  flushed:Lsn.t ->
  tail:string ->
  t
(** Resume logging after a restart: the stream continues at [flushed]
    (the durable log end recovery found), and [tail] supplies the bytes
    between the last sector boundary and [flushed] so that the next
    force can rewrite the partial tail sector correctly. Requires
    [String.length tail = flushed mod sector_size]. *)

val append : t -> Log_record.t -> Lsn.t
(** Buffer a record; returns its end LSN. Callable from any context. *)

val end_lsn : t -> Lsn.t
(** LSN just past the last appended record. *)

val flushed_lsn : t -> Lsn.t
(** Stream prefix known durable (per the device's contract). *)

val force : t -> Lsn.t -> unit
(** Block until [flushed_lsn t >= target]. Must run in a process. *)

val force_exclusive : t -> unit
(** Unconditionally issue a device write covering the unflushed range
    (rewriting the tail sector when there is nothing new). This is what
    an engine *without* group commit does: one physical write per
    commit, even when a concurrent committer already covered it. *)

val write_master : t -> Lsn.t -> unit
(** Persist the checkpoint redo LSN in the master block (FUA write).
    Must run in a process. *)

val read_master : config -> device:Storage.Block.t -> Lsn.t option
(** Post-crash, untimed: the redo LSN recorded by the last completed
    checkpoint, if any master block is intact on media. *)

val truncate : t -> Lsn.t -> unit
(** Release the in-memory stream before [lsn] (sector-aligned down);
    requires [lsn <= flushed_lsn t]. Checkpointing truncates to the redo
    point, bounding the WAL's memory to the since-last-checkpoint
    window. (Only guest memory is recycled: the on-media log region is
    append-only in this model, so recovery still scans from the start.) *)

val base_lsn : t -> Lsn.t
(** Oldest stream offset still held in memory. *)

val truncated_bytes : t -> int

val forces : t -> int
(** Number of device writes issued by {!force} (group-commit batches). *)

val force_bytes : t -> Desim.Stats.Sample.t
(** Batch sizes in bytes, one observation per force. *)

val stream_contents : t -> string
(** The in-memory stream from {!base_lsn} onwards; for tests. *)
