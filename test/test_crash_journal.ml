(* Differential oracle for the journal-based crash sweep.

   The journal sweep reconstructs post-crash media from one recorded
   reference run instead of re-executing the scenario per crash point.
   These tests pin the reconstruction to the full-replay semantics the
   hard way: with media digests enabled, every verdict — including a CRC
   over the entire durable extent of both the log and the data volume —
   must be bit-identical between the two paths, at every point, for all
   three crash kinds. *)

open Desim
open Testu
open Harness

let scenario =
  {
    Scenario.default with
    Scenario.mode = Scenario.Rapilog;
    workload =
      Scenario.Micro
        {
          Workload.Microbench.default_config with
          Workload.Microbench.keys = 64;
          value_bytes = 32;
        };
    clients = 2;
    seed = 99L;
  }

let tiny =
  {
    (Crash_surface.default scenario) with
    Crash_surface.window_start = Time.ms 2;
    window_length = Time.ms 2;
    stride = 25;
    tight_window = Time.ms 20;
    tight_buffer_bytes = 64 * 1024;
    media_digests = true;
  }

let show_verdict v =
  Printf.sprintf
    "%s@%d(%dns): acked=%d lost=%d extra=%d exact=%b diff=%d inv=%d buf=%d \
     crc=%d ok=%b"
    (Crash_surface.kind_name v.Crash_surface.v_kind)
    v.Crash_surface.v_event_index v.Crash_surface.v_at_ns
    v.Crash_surface.v_acked v.Crash_surface.v_lost v.Crash_surface.v_extra
    v.Crash_surface.v_state_exact v.Crash_surface.v_diff_count
    v.Crash_surface.v_invariant_violations v.Crash_surface.v_buffered_at_cut
    v.Crash_surface.v_media_crc v.Crash_surface.v_contract_ok

let check_verdicts_identical name expected actual =
  Alcotest.(check int)
    (name ^ ": point count")
    (List.length expected) (List.length actual);
  List.iter2
    (fun e a ->
      if e <> a then
        Alcotest.failf "%s: verdict mismatch\n  replay : %s\n  journal: %s" name
          (show_verdict e) (show_verdict a))
    expected actual

let check_config name config =
  let replay = Crash_surface.sweep ~jobs:1 config in
  let journal = Crash_surface.sweep_journal ~jobs:1 config in
  let fork = Crash_surface.sweep_fork ~jobs:1 config in
  Alcotest.(check bool)
    (Printf.sprintf "%s: points explored (%d)" name replay.Crash_surface.r_explored)
    true
    (replay.Crash_surface.r_explored >= 6);
  check_verdicts_identical (name ^ ": journal vs replay")
    replay.Crash_surface.r_verdicts journal.Crash_surface.r_verdicts;
  Alcotest.(check bool) (name ^ ": summaries identical") true (replay = journal);
  check_verdicts_identical (name ^ ": fork vs replay")
    replay.Crash_surface.r_verdicts fork.Crash_surface.r_verdicts;
  Alcotest.(check bool) (name ^ ": fork summary identical") true (replay = fork)

let journal_matches_replay () = check_config "hdd" tiny

(* The same oracle over the NVMe model: µs-scale drain timing, the
   queue-depth-deep data members tearing several in-flight programs per
   point, and the zoned device's sector geometry all must reconstruct
   bit-identically. *)
let journal_matches_replay_nvme () =
  check_config "nvme"
    {
      tiny with
      Crash_surface.scenario =
        { scenario with Scenario.device = Scenario.Nvme Storage.Nvme.default };
    }

(* And over parallel WAL streams: the incremental engine steps aside
   (full recovery per point), but media synthesis — including the
   multi-admission os-crash gap, one per stream — must still match the
   replay exactly. *)
let journal_matches_replay_streams () =
  check_config "hdd-s2"
    { tiny with Crash_surface.scenario = { scenario with Scenario.log_streams = 2 } }

(* The fork engine at oracle scale: every boundary in the window
   (stride 1) for each kind, media digest per point — the full-replay
   oracle would take minutes here, but the two reconstruction engines
   check each other: same candidates, same folded state per point, so
   every verdict including the media CRC must be bit-identical. *)
let fork_oracle_vs_journal () =
  let oracle = { tiny with Crash_surface.stride = 1 } in
  let journal = Crash_surface.sweep_journal ~jobs:1 oracle in
  let fork = Crash_surface.sweep_fork ~jobs:4 oracle in
  List.iter
    (fun ks ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: oracle scale (%d points)"
           (Crash_surface.kind_name ks.Crash_surface.k_kind)
           ks.Crash_surface.k_explored)
        true
        (ks.Crash_surface.k_explored >= 150))
    fork.Crash_surface.r_kinds;
  check_verdicts_identical "fork vs journal at stride 1"
    journal.Crash_surface.r_verdicts fork.Crash_surface.r_verdicts;
  Alcotest.(check bool) "results identical" true (journal = fork)

let fork_parallel_equals_serial () =
  let serial = Crash_surface.sweep_fork ~jobs:1 tiny in
  let parallel = Crash_surface.sweep_fork ~jobs:4 tiny in
  Alcotest.(check bool) "verdicts bit-identical" true
    (serial.Crash_surface.r_verdicts = parallel.Crash_surface.r_verdicts);
  Alcotest.(check bool) "results identical" true (serial = parallel)

let journal_parallel_equals_serial () =
  let serial = Crash_surface.sweep_journal ~jobs:1 tiny in
  let parallel = Crash_surface.sweep_journal ~jobs:4 tiny in
  Alcotest.(check bool) "verdicts bit-identical" true
    (serial.Crash_surface.r_verdicts = parallel.Crash_surface.r_verdicts);
  Alcotest.(check bool) "results identical" true (serial = parallel)

let journal_support_is_gated () =
  Alcotest.(check bool) "rapilog striped disk supported" true
    (Crash_surface.journal_supported scenario);
  Alcotest.(check bool) "non-rapilog unsupported" false
    (Crash_surface.journal_supported
       { scenario with Scenario.mode = Scenario.Native_sync });
  Alcotest.(check bool) "single disk unsupported" false
    (Crash_surface.journal_supported { scenario with Scenario.single_disk = true });
  match
    Crash_surface.sweep_journal ~jobs:1
      {
        tiny with
        Crash_surface.scenario =
          { scenario with Scenario.mode = Scenario.Native_sync };
      }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsupported configuration accepted"

let suites =
  [
    ( "harness.crash_journal",
      [
        case "journal sweep bit-identical to full replay" journal_matches_replay;
        case "journal sweep matches replay on nvme" journal_matches_replay_nvme;
        case "journal sweep matches replay with 2 streams"
          journal_matches_replay_streams;
        case "journal parallel equals serial" journal_parallel_equals_serial;
        case "fork sweep matches journal at every boundary"
          fork_oracle_vs_journal;
        case "fork parallel equals serial" fork_parallel_equals_serial;
        case "journal support is gated" journal_support_is_gated;
      ] );
  ]
