lib/power/power_domain.mli: Desim Psu Storage
