bench/bench_single_disk.ml: Bench_support Desim Experiment Harness List Printf Report Scenario
