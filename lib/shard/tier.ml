open Desim

type config = {
  shards : int;
  devices_per_shard : int;
  streams_per_shard : int;
  buckets : int;
  tenants : int;
  clients : int;
  mean_interval : Time.span;
  payload_bytes : int;
  horizon : Time.span;
  batch_max_bytes : int;
  logger : Rapilog.Trusted_logger.config;
  hot_tenant : int;
  hot_clients : int;
  hot_interval : Time.span;
  chunk_sectors : int;
}

let default_config =
  {
    shards = 2;
    devices_per_shard = 1;
    streams_per_shard = 1;
    buckets = 1024;
    tenants = 16;
    clients = 32;
    mean_interval = Time.ms 20;
    payload_bytes = 128;
    horizon = Time.sec 1;
    batch_max_bytes = 64 * 1024;
    logger = Rapilog.Trusted_logger.default_config;
    hot_tenant = 0;
    hot_clients = 0;
    hot_interval = Time.ms 1;
    chunk_sectors = 64;
  }

(* The tier's on-device layout: one {!Dbms.Wal.default_config} region
   above the default single-tenant layout, so shard 0's device can host
   an embedded DBMS (master at 0, log from sector 8, region 0) and the
   tier (master just past region 0, streams from there) side by side.
   Region boundaries make the two scans mutually blind: each stops at
   the first invalid record inside its own region. *)
let wal_layout (config : config) =
  let base = Dbms.Wal.default_config in
  let region = base.Dbms.Wal.stream_stride_sectors in
  {
    base with
    Dbms.Wal.master_lba = base.Dbms.Wal.log_start_lba + region;
    log_start_lba = base.Dbms.Wal.log_start_lba + region + 8;
    streams = config.streams_per_shard;
  }

type stream_state = {
  ss_queue : (int * int * int) Queue.t; (* tenant, seq, submit ns *)
  ss_cond : Resource.Condition.t;
}

type shard_state = {
  s_index : int;
  s_members : Storage.Block.t array;
  s_physical : Storage.Block.t;
  s_logger : Rapilog.Trusted_logger.t;
  s_frontend : Storage.Block.t;
  s_wal : Dbms.Wal.t;
  s_streams : stream_state array;
  mutable s_submitted : int;
  mutable s_acked : int;
  s_hist : Metrics.Histogram.t;
}

type tenant_state = {
  mutable t_next_seq : int;
  mutable t_acked : Bytes.t;
  mutable t_acked_count : int;
  t_lat : Stats.Sample.t;
}

type ambient = {
  a_hist : Metrics.Histogram.t;
  a_submitted : Metrics.Counter.t;
  a_acked : Metrics.Counter.t;
  a_tenant_p99 : Metrics.Histogram.t;
}

type t = {
  sim : Sim.t;
  config : config;
  registry : Registry.t;
  shards : shard_state array;
  tenants : tenant_state array; (* index 1..tenants *)
  wal_config : Dbms.Wal.config;
  payload : string;
  horizon : Time.t;
  mutable stopped : bool;
  mutable submitted : int;
  mutable acked : int;
  mutable pending : int;
  agg_hist : Metrics.Histogram.t;
  ambient : ambient option;
  mutable tenant_p99_folded : bool;
}

let config t = t.config
let registry t = t.registry
let wal_config t = t.wal_config
let shard_count t = Array.length t.shards
let shard_physical t i = t.shards.(i).s_physical
let shard_frontend t i = t.shards.(i).s_frontend
let shard_members t i = t.shards.(i).s_members
let shard_logger t i = t.shards.(i).s_logger
let loggers t = Array.to_list (Array.map (fun sh -> sh.s_logger) t.shards)
let stopped t = t.stopped
let pending t = t.pending
let submitted t = t.submitted
let acked t = t.acked
let tenant_count t = t.config.tenants
let tenant_submitted t ~tenant = t.tenants.(tenant).t_next_seq - 1
let tenant_acked_count t ~tenant = t.tenants.(tenant).t_acked_count

let tenant_is_acked t ~tenant ~seq =
  let ts = t.tenants.(tenant) in
  let byte = (seq - 1) lsr 3 in
  byte < Bytes.length ts.t_acked
  && Char.code (Bytes.get ts.t_acked byte) land (1 lsl ((seq - 1) land 7)) <> 0

let mark_acked_seq ts ~seq =
  let byte = (seq - 1) lsr 3 in
  let len = Bytes.length ts.t_acked in
  if byte >= len then begin
    let grown = Bytes.make (max (byte + 1) (2 * len)) '\000' in
    Bytes.blit ts.t_acked 0 grown 0 len;
    ts.t_acked <- grown
  end;
  Bytes.set ts.t_acked byte
    (Char.chr
       (Char.code (Bytes.get ts.t_acked byte) lor (1 lsl ((seq - 1) land 7))));
  ts.t_acked_count <- ts.t_acked_count + 1

let tenant_percentile t ~tenant ~p =
  let ts = t.tenants.(tenant) in
  if Stats.Sample.count ts.t_lat = 0 then nan
  else Stats.Sample.percentile ts.t_lat p

(* Routing: the tenant's bucket (stable) picks the shard (mutable, via
   the registry) and, within the shard, the WAL stream. The stream
   choice is a pure function of the bucket, so a tenant's appends ride
   one stream per shard and its device order is its sequence order. *)
let route t ~tenant =
  let shard = Registry.shard_of_tenant t.registry ~tenant in
  let bucket = Registry.bucket_of_tenant t.registry ~tenant in
  (shard, bucket mod t.config.streams_per_shard)

let submit t ~tenant =
  if (not t.stopped) && tenant >= 1 && tenant <= t.config.tenants then begin
    let ts = t.tenants.(tenant) in
    let seq = ts.t_next_seq in
    if seq <= Rapilog.Tenant.max_seq then begin
      ts.t_next_seq <- seq + 1;
      let shard, stream = route t ~tenant in
      let sh = t.shards.(shard) in
      let ss = sh.s_streams.(stream) in
      Queue.push (tenant, seq, Time.to_ns (Sim.now t.sim)) ss.ss_queue;
      sh.s_submitted <- sh.s_submitted + 1;
      t.submitted <- t.submitted + 1;
      t.pending <- t.pending + 1;
      (match t.ambient with
      | Some a -> Metrics.Counter.incr a.a_submitted
      | None -> ());
      Resource.Condition.signal ss.ss_cond
    end
  end

let ack t sh ~tenant ~seq ~lat_ns =
  let ts = t.tenants.(tenant) in
  mark_acked_seq ts ~seq;
  sh.s_acked <- sh.s_acked + 1;
  t.acked <- t.acked + 1;
  t.pending <- t.pending - 1;
  let us = float_of_int lat_ns /. 1e3 in
  Metrics.Histogram.observe t.agg_hist us;
  Metrics.Histogram.observe sh.s_hist us;
  Stats.Sample.add ts.t_lat us;
  match t.ambient with
  | Some a ->
      Metrics.Histogram.observe a.a_hist us;
      Metrics.Counter.incr a.a_acked
  | None -> ()

let park () = Process.suspend (fun (_ : unit Process.resumer) -> ())

(* One writer per (shard, stream): drain the queue in bounded batches —
   encode the batch into the WAL, one force, then acknowledge every
   entry. The force returning means the trusted logger admitted the
   covering write (or an earlier force already had), which is exactly
   the durability the ack promises. The batch bound keeps a backlogged
   stream's single force write well below the trusted ring's capacity;
   latency under overload then shows up as queue wait, i.e.
   backpressure, not as an unadmittable giant write. *)
let spawn_writer t sh stream =
  let ss = sh.s_streams.(stream) in
  let pair_bytes =
    let txid = Rapilog.Tenant.pack ~tenant:1 ~seq:1 in
    Dbms.Log_record.encoded_size
      (Dbms.Log_record.Update
         { txid; key = 1; before = ""; after = t.payload })
    + Dbms.Log_record.encoded_size (Dbms.Log_record.Commit { txid })
  in
  let batch_max = max 1 (t.config.batch_max_bytes / pair_bytes) in
  ignore
    (Process.spawn t.sim
       ~name:(Printf.sprintf "shard%d.writer%d" sh.s_index stream)
       (fun () ->
         let batch = ref [] in
         let rec loop () =
           if t.stopped then park ();
           if Queue.is_empty ss.ss_queue then begin
             Resource.Condition.wait ss.ss_cond;
             loop ()
           end
           else begin
             batch := [];
             let n = ref 0 in
             while (not (Queue.is_empty ss.ss_queue)) && !n < batch_max do
               batch := Queue.pop ss.ss_queue :: !batch;
               incr n
             done;
             let entries = List.rev !batch in
             let last_lsn =
               List.fold_left
                 (fun _ (tenant, seq, _) ->
                   let txid = Rapilog.Tenant.pack ~tenant ~seq in
                   let (_ : Dbms.Lsn.t) =
                     Dbms.Wal.append ~stream sh.s_wal
                       (Dbms.Log_record.Update
                          { txid; key = tenant; before = ""; after = t.payload })
                   in
                   Dbms.Wal.append ~stream sh.s_wal
                     (Dbms.Log_record.Commit { txid }))
                 Dbms.Lsn.zero entries
             in
             Dbms.Wal.force ~stream sh.s_wal last_lsn;
             let now_ns = Time.to_ns (Sim.now t.sim) in
             List.iter
               (fun (tenant, seq, t0) ->
                 ack t sh ~tenant ~seq ~lat_ns:(now_ns - t0))
               entries;
             loop ()
           end
         in
         loop ()))

let spawn_client t ~tenant ~interval =
  let rng = Rng.split (Sim.rng t.sim) in
  ignore
    (Process.spawn t.sim (fun () ->
         let rec loop () =
           Process.sleep (Rng.exponential_span rng ~mean:interval);
           if (not t.stopped) && Time.(Sim.now t.sim < t.horizon) then begin
             submit t ~tenant;
             loop ()
           end
         in
         loop ()))

let validate (config : config) =
  if config.shards < 1 then invalid_arg "Tier: shards must be >= 1";
  if config.devices_per_shard < 1 then
    invalid_arg "Tier: devices_per_shard must be >= 1";
  if config.streams_per_shard < 1 then
    invalid_arg "Tier: streams_per_shard must be >= 1";
  if config.tenants < 1 || config.tenants > Rapilog.Tenant.max_tenant then
    invalid_arg "Tier: tenants out of range";
  if config.clients < 0 then invalid_arg "Tier: clients must be >= 0";
  if config.payload_bytes < 0 then invalid_arg "Tier: negative payload";
  if config.batch_max_bytes < 1 then invalid_arg "Tier: batch_max_bytes";
  if
    config.hot_clients > 0
    && (config.hot_tenant < 1 || config.hot_tenant > config.tenants)
  then invalid_arg "Tier: hot_tenant out of range"

let attach sim ~vmm ~power ~(config : config) ?first_device ~make_device () =
  validate config;
  let wal_config = wal_layout config in
  let registry = Registry.create ~shards:config.shards ~buckets:config.buckets () in
  let shards =
    Array.init config.shards (fun i ->
        let members =
          Array.init config.devices_per_shard (fun d ->
              match first_device with
              | Some device when i = 0 && d = 0 -> device
              | Some _ | None -> make_device ())
        in
        let physical =
          if config.devices_per_shard = 1 then members.(0)
          else Storage.Stripe.create sim ~chunk_sectors:config.chunk_sectors members
        in
        let frontend, logger =
          Rapilog.attach ~vmm ~power ~config:config.logger ~device:physical ()
        in
        let wal = Dbms.Wal.create sim wal_config ~device:frontend in
        {
          s_index = i;
          s_members = members;
          s_physical = physical;
          s_logger = logger;
          s_frontend = frontend;
          s_wal = wal;
          s_streams =
            Array.init config.streams_per_shard (fun _ ->
                {
                  ss_queue = Queue.create ();
                  ss_cond = Resource.Condition.create sim;
                });
          s_submitted = 0;
          s_acked = 0;
          s_hist = Metrics.Histogram.create ();
        })
  in
  let ambient =
    Option.map
      (fun reg ->
        {
          a_hist = Metrics.histogram reg "shard.append_us";
          a_submitted = Metrics.counter reg "shard.submitted";
          a_acked = Metrics.counter reg "shard.acked";
          a_tenant_p99 = Metrics.histogram reg "shard.tenant_p99_us";
        })
      (Metrics.recording ())
  in
  let t =
    {
      sim;
      config;
      registry;
      shards;
      tenants =
        Array.init (config.tenants + 1) (fun _ ->
            {
              t_next_seq = 1;
              t_acked = Bytes.make 8 '\000';
              t_acked_count = 0;
              t_lat = Stats.Sample.create ();
            });
      wal_config;
      payload = String.make config.payload_bytes 's';
      horizon = Time.add (Sim.now sim) config.horizon;
      stopped = false;
      submitted = 0;
      acked = 0;
      pending = 0;
      agg_hist = Metrics.Histogram.create ();
      ambient;
      tenant_p99_folded = false;
    }
  in
  Power.Power_domain.on_power_fail power (fun ~window:_ -> t.stopped <- true);
  Array.iter
    (fun sh ->
      for s = 0 to config.streams_per_shard - 1 do
        spawn_writer t sh s
      done)
    shards;
  for c = 0 to config.clients - 1 do
    spawn_client t ~tenant:(1 + (c mod config.tenants)) ~interval:config.mean_interval
  done;
  for _ = 1 to config.hot_clients do
    spawn_client t ~tenant:config.hot_tenant ~interval:config.hot_interval
  done;
  t

let split_shard t ~source ~target = Registry.split t.registry ~source ~target

let quiesce t =
  if not t.stopped then begin
    while t.pending > 0 do
      Process.sleep (Time.ms 1)
    done;
    Array.iter (fun sh -> Rapilog.Trusted_logger.quiesce sh.s_logger) t.shards
  end

type stats = {
  st_submitted : int;
  st_acked : int;
  st_p50_us : float;
  st_p99_us : float;
  st_shard_acked : int array;
  st_shard_p99_us : float array;
  st_active_tenants : int;
  st_tenant_p99_med_us : float;
  st_tenant_p99_max_us : float;
}

let stats t =
  let p99s = ref [] in
  let active = ref 0 in
  for tenant = 1 to t.config.tenants do
    let ts = t.tenants.(tenant) in
    if Stats.Sample.count ts.t_lat > 0 then begin
      incr active;
      let p99 = Stats.Sample.percentile ts.t_lat 99. in
      p99s := p99 :: !p99s;
      match t.ambient with
      | Some a when not t.tenant_p99_folded ->
          Metrics.Histogram.observe a.a_tenant_p99 p99
      | Some _ | None -> ()
    end
  done;
  if t.ambient <> None then t.tenant_p99_folded <- true;
  let p99s = Array.of_list !p99s in
  Array.sort compare p99s;
  let med =
    if Array.length p99s = 0 then nan else p99s.(Array.length p99s / 2)
  in
  let worst =
    if Array.length p99s = 0 then nan else p99s.(Array.length p99s - 1)
  in
  let quant h q =
    if Metrics.Histogram.count h = 0 then nan else Metrics.Histogram.quantile h q
  in
  {
    st_submitted = t.submitted;
    st_acked = t.acked;
    st_p50_us = quant t.agg_hist 0.5;
    st_p99_us = quant t.agg_hist 0.99;
    st_shard_acked = Array.map (fun sh -> sh.s_acked) t.shards;
    st_shard_p99_us = Array.map (fun sh -> quant sh.s_hist 0.99) t.shards;
    st_active_tenants = !active;
    st_tenant_p99_med_us = med;
    st_tenant_p99_max_us = worst;
  }
