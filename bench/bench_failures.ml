(* tab2-power-cut and tab3-os-crash: the durability matrix. Repeatedly
   pull the plug (or crash the guest OS) under load and audit durable
   media against the client-side acknowledgement record. Safe
   configurations must never lose an acknowledged commit; the unsafe
   baselines are expected to. *)

open Desim
open Harness
open Bench_support

type tally = {
  mutable trials : int;
  mutable acked_total : int;
  mutable lost_total : int;
  mutable lossy_trials : int;
  mutable state_exact_trials : int;
  mutable violations : int;  (* losses a mode's own promise forbids *)
}

let new_tally () =
  {
    trials = 0;
    acked_total = 0;
    lost_total = 0;
    lossy_trials = 0;
    state_exact_trials = 0;
    violations = 0;
  }

let run_matrix ~quick ~kind =
  let trials = failure_trials ~quick in
  (* All modes x all trials are independent simulations: build the full
     spec list up front and fan it out across the worker pool, then
     tally per mode from the in-order results. *)
  let specs =
    List.concat_map
      (fun mode ->
        List.init trials (fun i ->
            let trial = i + 1 in
            ( {
                (base_config ~quick) with
                Scenario.mode;
                seed = Int64.of_int (1000 + trial);
                duration = Time.ms 500;
              },
              Time.ms (100 + (37 * trial mod 400)) )))
      all_modes
  in
  let results = Experiment.run_failure_batch ~kind specs in
  List.map
    (fun mode ->
      let tally = new_tally () in
      List.iter
        (fun (r : Experiment.failure_result) ->
          if r.Experiment.fmode = mode then begin
            let lost =
              List.length r.Experiment.audit.Audit.durability.Rapilog.Durability.lost
            in
            tally.trials <- tally.trials + 1;
            tally.acked_total <- tally.acked_total + r.Experiment.acked;
            tally.lost_total <- tally.lost_total + lost;
            if lost > 0 then tally.lossy_trials <- tally.lossy_trials + 1;
            if r.Experiment.audit.Audit.state_exact then
              tally.state_exact_trials <- tally.state_exact_trials + 1;
            if not (Experiment.durability_ok r) then
              tally.violations <- tally.violations + 1
          end)
        results;
      (mode, tally))
    all_modes

let print_matrix results =
  Report.table
    ~columns:
      [ "config"; "trials"; "acked"; "lost"; "lossy trials"; "state-exact"; "promise kept" ]
    ~rows:
      (List.map
         (fun (mode, t) ->
           [
             Scenario.mode_name mode;
             string_of_int t.trials;
             string_of_int t.acked_total;
             string_of_int t.lost_total;
             Printf.sprintf "%d/%d" t.lossy_trials t.trials;
             Printf.sprintf "%d/%d" t.state_exact_trials t.trials;
             bool_cell (t.violations = 0);
           ])
         results)

let tab2 =
  {
    id = "tab2-power-cut";
    title = "Tab 2: power-cut durability matrix";
    description =
      "cuts mains power mid-load in every mode and audits acked-commit durability";
    run =
      (fun ~quick ->
        Report.section "Tab 2: power-cut durability (injected mains cuts under load)";
        Report.kvf "hold-up window" "%a" Desim.Time.pp_span
          (Power.Psu.window Power.Psu.default);
        let results = run_matrix ~quick ~kind:Experiment.Power_cut in
        print_matrix results;
        Report.note
          "shape target: zero loss for every safe mode (incl. wcache-flush); unsafe-wcache and async-commit lose";
        List.iter
          (fun (mode, t) ->
            if t.violations > 0 then
              Report.note
                (Printf.sprintf "DURABILITY VIOLATION in %s" (Scenario.mode_name mode)))
          results);
  }

let tab3 =
  {
    id = "tab3-os-crash";
    title = "Tab 3: guest-OS-crash durability matrix";
    description =
      "crashes the guest OS mid-load in every mode and audits acked-commit durability";
    run =
      (fun ~quick ->
        Report.section "Tab 3: OS-crash durability (guest kernel dies under load)";
        let results = run_matrix ~quick ~kind:Experiment.Os_crash in
        print_matrix results;
        Report.note
          "shape target: only async-commit loses - the disk cache and rapilog's buffer both survive an OS crash");
  }

let experiments = [ tab2; tab3 ]
