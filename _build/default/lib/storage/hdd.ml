open Desim

type config = {
  rpm : int;
  sectors_per_track : int;
  tracks : int;
  seek_settle : Time.span;
  seek_full_stroke : Time.span;
  command_overhead : Time.span;
  sector_size : int;
}

let default_7200rpm =
  {
    rpm = 7200;
    sectors_per_track = 1000;
    tracks = 262144;
    seek_settle = Time.us 500;
    seek_full_stroke = Time.ms 8;
    command_overhead = Time.us 30;
    sector_size = 512;
  }

let config_with_rpm config rpm = { config with rpm }

let rotation_period config = Time.ns (60_000_000_000 / config.rpm)

type state = {
  sim : Sim.t;
  config : config;
  media : Block.Media.t;
  rng : Rng.t;
  actuator : Resource.Semaphore.t;
  mutable head_track : int;
  mutable in_flight : (int * string) option;  (* lba, data *)
  mutable powered : bool;
}

let period_ns config = Time.span_to_ns (rotation_period config)

let sector_time_ns config = period_ns config / config.sectors_per_track

let seek_span state distance =
  if distance = 0 then Time.zero_span
  else
    let frac = sqrt (float_of_int distance /. float_of_int state.config.tracks) in
    Time.add_span state.config.seek_settle
      (Time.scale_span state.config.seek_full_stroke frac)

(* Time until the start of [target_sector]'s angular position passes under
   the head, given the platter position implied by the current clock. *)
let rotational_wait state target_sector =
  let period = period_ns state.config in
  let target_angle_ns =
    target_sector mod state.config.sectors_per_track * sector_time_ns state.config
  in
  let now_angle_ns = Time.to_ns (Sim.now state.sim) mod period in
  Time.ns ((target_angle_ns - now_angle_ns + period) mod period)

(* Seek, then wait for the target sector. The controller overhead is
   pipelined with the rotational wait (never under it): a request that
   lands exactly where the head is pays only the overhead — this is the
   drive's track buffer absorbing command latency, and it is what lets
   back-to-back sequential writes run at close to the media rate. *)
let position state lba =
  let track = lba / state.config.sectors_per_track in
  let seek = seek_span state (abs (track - state.head_track)) in
  Process.sleep seek;
  state.head_track <- track;
  let rot = rotational_wait state lba in
  let wait =
    if Time.compare_span rot state.config.command_overhead >= 0 then rot
    else state.config.command_overhead
  in
  Process.sleep wait

let transfer_span state sectors = Time.ns (sectors * sector_time_ns state.config)

let service_read state ~lba ~sectors =
  let started = Sim.now state.sim in
  Resource.Semaphore.acquire state.actuator;
  Fun.protect ~finally:(fun () -> Resource.Semaphore.release state.actuator)
  @@ fun () ->
  position state lba;
  Process.sleep (transfer_span state sectors);
  let data = Block.Media.read state.media ~lba ~sectors in
  (data, Time.diff (Sim.now state.sim) started)

let service_write state ~lba ~data =
  let started = Sim.now state.sim in
  let sectors = String.length data / state.config.sector_size in
  Resource.Semaphore.acquire state.actuator;
  Fun.protect ~finally:(fun () -> Resource.Semaphore.release state.actuator)
  @@ fun () ->
  position state lba;
  state.in_flight <- Some (lba, data);
  Process.sleep (transfer_span state sectors);
  state.in_flight <- None;
  if state.powered then Block.Media.write state.media ~lba ~data;
  Time.diff (Sim.now state.sim) started

let power_cut state =
  state.powered <- false;
  match state.in_flight with
  | Some (lba, data) ->
      state.in_flight <- None;
      Block.Media.write_torn state.media ~rng:state.rng ~lba ~data
  | None -> ()

let create sim ?(model = "hdd-7200") config =
  assert (config.rpm > 0 && config.sectors_per_track > 0 && config.tracks > 0);
  let media =
    Block.Media.create ~sector_size:config.sector_size
      ~capacity_sectors:(config.tracks * config.sectors_per_track)
  in
  let state =
    {
      sim;
      config;
      media;
      rng = Rng.split (Sim.rng sim);
      actuator = Resource.Semaphore.create sim 1;
      head_track = 0;
      in_flight = None;
      powered = true;
    }
  in
  let stats = Disk_stats.create () in
  let ops =
    {
      Block.op_read =
        (fun ~lba ~sectors ->
          let data, service = service_read state ~lba ~sectors in
          Disk_stats.record_read stats ~sectors ~service;
          data);
      op_write =
        (fun ~lba ~data ~fua:_ ->
          (* No volatile cache here, so FUA and plain writes coincide;
             a cache is added by wrapping with {!Write_cache}. *)
          let service = service_write state ~lba ~data in
          let sectors = String.length data / config.sector_size in
          Disk_stats.record_write stats ~sectors ~service);
      op_flush =
        (fun () ->
          Process.sleep config.command_overhead;
          Disk_stats.record_flush stats ~service:config.command_overhead);
      op_power_cut = (fun () -> power_cut state);
      op_durable_read =
        (fun ~lba ~sectors -> Block.Media.read media ~lba ~sectors);
      op_durable_extent = (fun () -> Block.Media.extent media);
    }
  in
  Block.make
    ~info:
      {
        Block.model;
        sector_size = config.sector_size;
        capacity_sectors = config.tracks * config.sectors_per_track;
      }
    ~stats ~ops
