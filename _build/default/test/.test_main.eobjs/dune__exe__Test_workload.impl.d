test/test_workload.ml: Alcotest Client Dbms Desim Hashtbl Hypervisor Int Key_dist List Microbench Option Printf Rng Sim Storage String Testu Time Tpcc_lite Value_gen Workload Ycsb_lite
