(* Drive the public API directly, below the experiment harness: build a
   machine by hand, run transactions, crash the guest OS, and recover.
   This is the programmatic tour of the pieces the other examples wrap.

   Run with: dune exec examples/engine_tour.exe *)

open Desim

let () =
  let sim = Sim.create ~seed:7L () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let power = Power.Power_domain.create sim Power.Psu.default in

  (* Physical devices: a 7200 rpm log disk, an SSD for data. *)
  let log_disk = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let data_ssd = Storage.Ssd.create sim Storage.Ssd.default in
  Power.Power_domain.register_device power data_ssd;

  (* Interpose RapiLog on the log disk. *)
  let log_dev, logger = Rapilog.attach ~vmm ~power ~device:log_disk () in
  let data_dev =
    Hypervisor.Vmm.attach_virtio_disk vmm
      (Hypervisor.Virtio_blk.backend_of_block data_ssd)
  in

  (* The database engine on top. *)
  let wal_config = Dbms.Wal.default_config in
  let wal = Dbms.Wal.create sim wal_config ~device:log_dev in
  let pool_config = Dbms.Buffer_pool.default_config in
  let pool =
    Dbms.Buffer_pool.create sim pool_config ~device:data_dev
      ~wal_force:(fun ~page:_ lsn -> Dbms.Wal.force wal lsn)
  in
  let engine =
    Dbms.Engine.create ~vmm ~profile:Dbms.Engine_profile.postgres_like ~wal ~pool ()
  in

  let acked = ref [] in
  ignore
    (Hypervisor.Vmm.spawn_guest vmm ~name:"app" (fun () ->
         (* A few hand-written transactions. *)
         for i = 1 to 50 do
           let result =
             Dbms.Engine.exec engine
               [
                 Dbms.Engine.Put { key = i; value = Printf.sprintf "balance=%d" (100 * i) };
                 Dbms.Engine.Put { key = 1000 + i; value = "audit-row" };
               ]
           in
           acked := result.Dbms.Engine.txid :: !acked
         done;
         (* One transaction that rolls back: it must leave no trace. *)
         ignore
           (Dbms.Engine.exec_abort engine
              [ Dbms.Engine.Put { key = 1; value = "should-never-survive" } ])));

  (* Let it run for 100 simulated milliseconds, then crash the guest OS
     with log data still sitting in the trusted buffer. *)
  Sim.schedule_at sim (Time.add Time.zero (Time.ms 100)) (fun () ->
      Printf.printf "guest crash at t=100ms; buffered=%d bytes\n%!"
        (Rapilog.Trusted_logger.buffered_bytes logger);
      Hypervisor.Vmm.crash_guest vmm;
      ignore
        (Process.spawn sim ~name:"quiesce" (fun () ->
             Rapilog.Trusted_logger.quiesce logger)));
  Sim.run sim;

  (* The guest is dead. Recover from durable media. *)
  let recovery =
    Dbms.Recovery.run ~log_device:log_disk ~data_device:data_ssd ~wal_config
      ~pool_config
  in
  Printf.printf "acknowledged commits : %d\n" (List.length !acked);
  Printf.printf "recovered commits    : %d\n" (List.length recovery.Dbms.Recovery.committed);
  Printf.printf "value of key 1       : %s\n"
    (Option.value (Hashtbl.find_opt recovery.Dbms.Recovery.store 1) ~default:"<missing>");
  let report =
    Rapilog.Durability.compare_txids ~committed:!acked
      ~recovered:recovery.Dbms.Recovery.committed
  in
  Printf.printf "durability holds     : %b\n" (Rapilog.Durability.holds report);
  assert (Rapilog.Durability.holds report);
  assert (Hashtbl.find_opt recovery.Dbms.Recovery.store 1 = Some "balance=100")
