(* scenario-grid: the Scen DSL's open-loop workload library as a
   printable experiment — flash crowds, diurnal arrivals, client churn
   and hot-key skew against rapilog and native-sync on the disk. The
   open-loop cells report arrival-to-ack sojourn (queue wait included),
   which is where a burst against synchronous commits shows up; the
   machine-readable version with per-cell crash sweeps is
   scenarios.exe (BENCH_PR10.json). *)

open Harness
open Bench_support
module B = Scen.Builder

let experiment =
  {
    id = "scenario-grid";
    title = "Scenario grid: DSL-composed open-loop workloads";
    description =
      "DSL-built workload grid (flash-crowd/diurnal/churn/hot-key), rapilog \
       vs native-sync";
    run =
      (fun ~quick ->
        Report.section
          "Scenario grid: open-loop workload library, 7200 rpm disk (Scen DSL)";
        let modes = [ Scenario.Rapilog; Scenario.Native_sync ] in
        let cells =
          List.concat_map
            (fun (name, shape) ->
              List.map
                (fun m ->
                  ( name,
                    m,
                    B.(start ~base:(base_config ~quick) () |> shape |> mode m |> build)
                  ))
                modes)
            Scen.Workloads.all
        in
        let results =
          Experiment.run_steady_batch (List.map (fun (_, _, c) -> c) cells)
        in
        Report.table
          ~columns:[ "workload"; "mode"; "txn/s"; "p50 us"; "p99 us" ]
          ~rows:
            (List.map2
               (fun (name, m, _) (r : Experiment.steady_result) ->
                 [
                   name;
                   Scenario.mode_name m;
                   Report.float_cell r.Experiment.throughput;
                   Report.float_cell r.Experiment.latency_p50_us;
                   Report.float_cell r.Experiment.latency_p99_us;
                 ])
               cells results);
        Report.note
          "open-loop latency is arrival-to-ack sojourn: bursts queue against \
           native-sync's commit latency but are absorbed by rapilog's \
           trusted buffer (crash-sweep evidence: scenarios.exe --check)");
  }
