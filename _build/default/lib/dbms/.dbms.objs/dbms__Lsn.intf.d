lib/dbms/lsn.mli: Format
