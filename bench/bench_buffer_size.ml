(* fig5-buffer-size: how big does the trusted buffer need to be?

   Two forces pull in opposite directions: a larger buffer absorbs
   longer bursts before backpressure throttles commits, but everything
   buffered must drain within the PSU hold-up window after a power
   cut. The sweep reports throughput, backpressure stalls, the observed
   high-water mark, and the worst-case flush time against the window. *)

open Desim
open Harness
open Bench_support

let sizes ~quick =
  if quick then [ 64 * 1024; 1024 * 1024; 16 * 1024 * 1024 ]
  else
    [
      64 * 1024;
      256 * 1024;
      1024 * 1024;
      4 * 1024 * 1024;
      16 * 1024 * 1024;
      64 * 1024 * 1024;
    ]

let fig5 =
  {
    id = "fig5-buffer-size";
    title = "Fig 5: trusted buffer size vs throughput and flush budget";
    description =
      "sweeps the trusted-logger ring size against throughput and the worst-case flush budget";
    run =
      (fun ~quick ->
        Report.section "Fig 5: trusted-buffer sizing (throughput vs hold-up safety)";
        let drain_bw =
          match Scenario.default.Scenario.device with
          | Scenario.Disk hdd -> Scenario.hdd_streaming_bandwidth hdd /. 2.
          | Scenario.Flash _ -> 100e6
          | Scenario.Nvme _ -> 300e6
        in
        let window = Power.Psu.window Power.Psu.default in
        Report.kvf "hold-up window" "%a" Time.pp_span window;
        Report.kvf "drain bandwidth (positioning-degraded)" "%.0f MB/s" (drain_bw /. 1e6);
        let rows =
          List.map
            (fun buffer_bytes ->
              let config =
                {
                  (base_config ~quick) with
                  Scenario.mode = Scenario.Rapilog;
                  clients = 16;
                  logger =
                    {
                      Rapilog.Trusted_logger.default_config with
                      Rapilog.Trusted_logger.buffer_bytes;
                    };
                }
              in
              let r = steady config in
              let stats = Option.get r.Experiment.logger_stats in
              let flush =
                float_of_int stats.Experiment.max_buffered /. drain_bw *. 1e3
              in
              [
                Printf.sprintf "%dKiB" (buffer_bytes / 1024);
                Report.float_cell r.Experiment.throughput;
                string_of_int stats.Experiment.stalls;
                Printf.sprintf "%dKiB" (stats.Experiment.max_buffered / 1024);
                Printf.sprintf "%.1fms" flush;
                bool_cell (flush <= Time.span_to_float_ms window);
              ])
            (sizes ~quick)
        in
        Report.table
          ~columns:
            [ "buffer"; "txn/s"; "stalls"; "high water"; "worst flush"; "fits window" ]
          ~rows;
        Report.note
          "shape target: small buffers stall (throughput dips) but always fit the window;";
        Report.note
          "beyond the workload's burst size, extra buffer buys nothing - the high-water mark plateaus");
  }

let experiments = [ fig5 ]
