(** Transaction-log records and their binary encoding.

    Wire format of one record:
    {v
      magic   u16   0xA55A
      kind    u8
      len     u32   body length in bytes
      body    len bytes
      crc     u32   CRC-32 of kind, len and body
    v}

    Decoding is defensive: a record whose magic, kind, length or CRC does
    not check out is treated as end-of-log. The CRC covers the kind and
    length fields as well as the body, so no single corrupted byte
    (outside the magic, whose corruption is detected directly) can turn
    one valid record into a different valid record — a flipped kind byte
    must not reinterpret a [Begin] as a [Commit]. Together with the fact
    that devices tear writes only at sector granularity, this ensures a
    torn tail is cleanly cut off rather than misparsed — which is exactly
    the property recovery relies on. *)

type t =
  | Begin of { txid : int }
  | Update of { txid : int; key : int; before : string; after : string }
  | Commit of { txid : int }
  | Abort of { txid : int }
  | Checkpoint of { redo_lsn : Lsn.t }
  | Noop of { filler : int }  (** padding; [filler] body bytes of zeros *)
  | Commit_multi of { txid : int; deps : int array }
      (** multi-stream commit: the transaction is committed iff, for
          every stream [s], [deps.(s)] is within stream [s]'s durable
          prefix. The vector folds in the WAL's cross-stream watermark,
          so validity of a later commit implies validity of every
          earlier one. Fixed-width in the stream count, so the record's
          end LSN (its own home-stream dependency) is computable before
          appending. *)
  | Abort_multi of { txid : int; deps : int array }
      (** multi-stream abort: durable-and-valid (all compensating
          updates durable) means the transaction rolled back before the
          crash and recovery must not undo it again; an invalid one
          leaves the transaction a loser, undone from its images. *)

val pp : Format.formatter -> t -> unit

val encoded_size : t -> int
(** Total on-stream size, header included. *)

val encode : t -> string

val encode_into : t -> Buffer.t -> unit
(** Appends the encoding; equivalent to
    [Buffer.add_string buf (encode t)] without the intermediate copy. *)

val decode : string -> pos:int -> (t * int) option
(** [decode s ~pos] parses one record starting at [pos]; returns the
    record and its total encoded size, or [None] if the bytes at [pos]
    are not a valid record (truncated, torn, or garbage). *)

val decode_stream : string -> (t * Lsn.t) list
(** Parse records from offset 0 until the first invalid record; each
    record is paired with its end LSN (the stream offset just past it). *)

val max_body : int
(** Upper bound on accepted body length; larger claims are rejected as
    corruption. *)
