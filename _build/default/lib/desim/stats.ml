module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; mn = nan; mx = nan }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.n = 1 then begin
      t.mn <- x;
      t.mx <- x
    end
    else begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x
    end

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
end

module Sample = struct
  type t = {
    mutable data : float array;
    mutable n : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 256 0.; n = 0; sorted = true }

  let add t x =
    if t.n = Array.length t.data then begin
      let bigger = Array.make (2 * t.n) 0. in
      Array.blit t.data 0 bigger 0 t.n;
      t.data <- bigger
    end;
    t.data.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let count t = t.n

  let mean t =
    if t.n = 0 then 0.
    else begin
      let total = ref 0. in
      for i = 0 to t.n - 1 do
        total := !total +. t.data.(i)
      done;
      !total /. float_of_int t.n
    end

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.data 0 t.n in
      Array.sort Float.compare live;
      Array.blit live 0 t.data 0 t.n;
      t.sorted <- true
    end

  let percentile t p =
    assert (p >= 0. && p <= 100.);
    if t.n = 0 then nan
    else begin
      ensure_sorted t;
      let rank = p /. 100. *. float_of_int (t.n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      (t.data.(lo) *. (1. -. frac)) +. (t.data.(hi) *. frac)
    end

  let median t = percentile t 50.

  let to_array t =
    ensure_sorted t;
    Array.sub t.data 0 t.n

  let add_span t d = add t (Time.span_to_float_us d)
end

module Histogram = struct
  (* Bucket i covers (base^(i-1), base^i] microseconds with base = 2^(1/4);
     bucket 0 is the underflow bucket for values <= 1us. *)
  let base = Float.pow 2.0 0.25
  let log_base = log base
  let nbuckets = 128

  type t = { counts : int array; mutable total : int }

  let create () = { counts = Array.make nbuckets 0; total = 0 }

  let bucket_of x =
    if x <= 1.0 then 0
    else
      let i = 1 + int_of_float (Float.ceil (log x /. log_base)) in
      Stdlib.min i (nbuckets - 1)

  let upper_bound i = if i = 0 then 1.0 else Float.pow base (float_of_int (i - 1))

  let add t x =
    let i = bucket_of x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let add_span t d = add t (Time.span_to_float_us d)
  let count t = t.total

  let quantile t q =
    assert (q >= 0. && q <= 1.);
    if t.total = 0 then nan
    else begin
      let target = int_of_float (Float.ceil (q *. float_of_int t.total)) in
      let target = Stdlib.max target 1 in
      let rec scan i acc =
        if i >= nbuckets then upper_bound (nbuckets - 1)
        else
          let acc = acc + t.counts.(i) in
          if acc >= target then upper_bound i else scan (i + 1) acc
      in
      scan 0 0
    end

  let buckets t =
    let rec collect i acc =
      if i < 0 then acc
      else if t.counts.(i) = 0 then collect (i - 1) acc
      else collect (i - 1) ((upper_bound i, t.counts.(i)) :: acc)
    in
    collect (nbuckets - 1) []
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let get t = t.v
  let reset t = t.v <- 0
end

let rate_per_sec n elapsed =
  let s = Time.span_to_float_sec elapsed in
  if s <= 0. then 0. else float_of_int n /. s
