type t = {
  table : int array; (* bucket -> shard *)
  shard_count : int;
  mutable epoch : int;
  mutable moves : int;
}

(* splitmix64 finalizer: a well-mixed, seedless hash of the tenant id.
   Deterministic across runs and domains — the mapping is part of the
   tier's on-media contract, so it must never depend on runtime
   hashing. *)
let mix64 x =
  let open Int64 in
  let z = add (of_int x) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logxor z (shift_right_logical z 31))

let create ~shards ?(buckets = 1024) () =
  if buckets <= 0 || buckets land (buckets - 1) <> 0 then
    invalid_arg "Registry.create: buckets must be a positive power of two";
  if shards < 1 || shards > buckets then
    invalid_arg "Registry.create: need 1 <= shards <= buckets";
  {
    table = Array.init buckets (fun b -> b mod shards);
    shard_count = shards;
    epoch = 0;
    moves = 0;
  }

let shards t = t.shard_count
let bucket_count t = Array.length t.table

let bucket_of_tenant t ~tenant =
  mix64 tenant land (Array.length t.table - 1)

let shard_of_tenant t ~tenant = t.table.(bucket_of_tenant t ~tenant)

let owned t shard =
  Array.fold_left (fun acc s -> if s = shard then acc + 1 else acc) 0 t.table

let split t ~source ~target =
  let n = t.shard_count in
  if source < 0 || source >= n || target < 0 || target >= n || source = target
  then invalid_arg "Registry.split: bad shard index";
  let mine = ref [] in
  Array.iteri (fun b s -> if s = source then mine := b :: !mine) t.table;
  let mine = Array.of_list (List.rev !mine) in
  let keep = Array.length mine / 2 in
  let moved = Array.length mine - keep in
  for i = keep to Array.length mine - 1 do
    t.table.(mine.(i)) <- target
  done;
  if moved > 0 then begin
    t.epoch <- t.epoch + 1;
    t.moves <- t.moves + moved
  end;
  moved

let epoch t = t.epoch
let moves t = t.moves
