type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 64 None; size = 0; next_seq = 0 }

let entry_lt a b =
  match Time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let get q i =
  match q.heap.(i) with
  | Some e -> e
  | None -> assert false

let grow q =
  let heap = Array.make (2 * Array.length q.heap) None in
  Array.blit q.heap 0 heap 0 q.size;
  q.heap <- heap

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get q i) (get q parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < q.size && entry_lt (get q l) (get q i) then l else i in
  let smallest =
    if r < q.size && entry_lt (get q r) (get q smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(smallest);
    q.heap.(smallest) <- tmp;
    sift_down q smallest
  end

let add q ~time payload =
  if q.size = Array.length q.heap then grow q;
  let e = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  q.heap.(q.size) <- Some e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let root = get q 0 in
    q.size <- q.size - 1;
    q.heap.(0) <- q.heap.(q.size);
    q.heap.(q.size) <- None;
    if q.size > 0 then sift_down q 0;
    Some (root.time, root.payload)
  end

let peek_time q = if q.size = 0 then None else Some (get q 0).time
let length q = q.size
let is_empty q = q.size = 0
