bench/bench_latency.ml: Bench_support Experiment Harness List Report Scenario Workload
