(* Shared helpers for the test suite. *)

open Desim

let case name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

(* Run a body inside a process in a fresh simulation; returns its result
   once the event queue drains. *)
let run_in_sim ?(seed = 1L) body =
  let sim = Sim.create ~seed () in
  let result = ref None in
  ignore (Process.spawn sim ~name:"test" (fun () -> result := Some (body sim)));
  Sim.run sim;
  match !result with
  | Some value -> value
  | None -> Alcotest.fail "test process did not complete"

(* Like [run_in_sim] but also hands the simulation to the caller first
   (for spawning auxiliary processes). *)
let with_sim ?(seed = 1L) setup =
  let sim = Sim.create ~seed () in
  let check = setup sim in
  Sim.run sim;
  check ()

let span_us = Time.us
let near ?(tolerance = 1e-6) expected actual = Float.abs (expected -. actual) <= tolerance

let check_near name ?(tolerance = 1e-6) expected actual =
  if not (near ~tolerance expected actual) then
    Alcotest.failf "%s: expected %g within %g, got %g" name expected tolerance actual

let check_span name expected actual =
  Alcotest.(check int) name (Time.span_to_ns expected) (Time.span_to_ns actual)
