lib/desim/time.ml: Float Format Int Stdlib
