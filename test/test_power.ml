(* Tests for the power-supply model and failure injection. *)

open Desim
open Testu

let psu_window_math () =
  let config = { Power.Psu.energy_joules = 30.0; system_draw_watts = 100.0 } in
  check_span "30J at 100W = 300ms" (Time.ms 300) (Power.Psu.window config)

let psu_of_window () =
  check_span "roundtrip" (Time.ms 150)
    (Power.Psu.window (Power.Psu.of_window (Time.ms 150)))

let psu_flushable_bytes () =
  let config = Power.Psu.of_window (Time.ms 200) in
  Alcotest.(check int) "200ms at 50MB/s" 10_000_000
    (Power.Psu.flushable_bytes config ~bandwidth:50e6)

let psu_more_draw_shorter_window () =
  let base = { Power.Psu.energy_joules = 30.0; system_draw_watts = 100.0 } in
  let loaded = { base with Power.Psu.system_draw_watts = 200.0 } in
  Alcotest.(check bool) "halved" true
    (Time.compare_span (Power.Psu.window loaded) (Power.Psu.window base) < 0)

let domain_handlers_fire_in_order_with_window () =
  let sim = Sim.create () in
  let domain = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 100)) in
  let log = ref [] in
  Power.Power_domain.on_power_fail domain (fun ~window ->
      log := ("first", window) :: !log);
  Power.Power_domain.on_power_fail domain (fun ~window ->
      log := ("second", window) :: !log);
  Sim.schedule_after sim (Time.ms 5) (fun () -> Power.Power_domain.cut domain);
  Sim.run sim;
  match List.rev !log with
  | [ ("first", w1); ("second", w2) ] ->
      check_span "window reported" (Time.ms 100) w1;
      check_span "same for all" (Time.ms 100) w2
  | _ -> Alcotest.fail "handlers did not fire in order"

let domain_devices_lose_power_at_window_expiry () =
  let sim = Sim.create () in
  let domain = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 50)) in
  let dev = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  Power.Power_domain.register_device domain dev;
  Power.Power_domain.cut_at domain (Time.add Time.zero (Time.ms 10));
  (* A write completing inside the hold-up window persists... *)
  ignore
    (Process.spawn sim (fun () ->
         Process.sleep (Time.ms 11);
         Storage.Block.write dev ~lba:0 (String.make 512 'a')));
  (* ...one completing after it does not. *)
  ignore
    (Process.spawn sim (fun () ->
         Process.sleep (Time.ms 70);
         Storage.Block.write dev ~lba:1 (String.make 512 'b')));
  Sim.run sim;
  Alcotest.(check string) "within window persisted" (String.make 512 'a')
    (Storage.Block.durable_read dev ~lba:0 ~sectors:1);
  Alcotest.(check string) "after window lost" (String.make 512 '\000')
    (Storage.Block.durable_read dev ~lba:1 ~sectors:1)

let domain_cut_is_idempotent () =
  let sim = Sim.create () in
  let domain = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 10)) in
  let fires = ref 0 in
  Power.Power_domain.on_power_fail domain (fun ~window:_ -> incr fires);
  Sim.schedule_after sim (Time.ms 1) (fun () ->
      Power.Power_domain.cut domain;
      Power.Power_domain.cut domain);
  Sim.run sim;
  Alcotest.(check int) "handler fired once" 1 !fires

let domain_is_failing_and_dead_at () =
  let sim = Sim.create () in
  let domain = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 20)) in
  Alcotest.(check bool) "initially fine" false (Power.Power_domain.is_failing domain);
  Alcotest.(check bool) "no dead_at yet" true
    (Power.Power_domain.dead_at domain = None);
  Sim.schedule_after sim (Time.ms 5) (fun () -> Power.Power_domain.cut domain);
  Sim.run sim;
  Alcotest.(check bool) "failing after cut" true (Power.Power_domain.is_failing domain);
  match Power.Power_domain.dead_at domain with
  | Some dead ->
      Alcotest.(check int) "dead at cut + window"
        (Time.to_ns (Time.add Time.zero (Time.ms 25)))
        (Time.to_ns dead)
  | None -> Alcotest.fail "dead_at unset"

let domain_handler_registered_after_cut_never_fires () =
  let sim = Sim.create () in
  let domain = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 10)) in
  let fired = ref false in
  Sim.schedule_after sim (Time.ms 1) (fun () ->
      Power.Power_domain.cut domain;
      Power.Power_domain.on_power_fail domain (fun ~window:_ -> fired := true));
  Sim.run sim;
  Alcotest.(check bool) "late handler silent" false !fired

let injector_power_cut_in_range () =
  let sim = Sim.create ~seed:3L () in
  let domain = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 10)) in
  let earliest = Time.add Time.zero (Time.ms 100) in
  let latest = Time.add Time.zero (Time.ms 200) in
  let at = Power.Failure_injector.power_cut_between sim domain ~earliest ~latest in
  Alcotest.(check bool) "within range" true Time.(earliest <= at && at < latest);
  Sim.run sim;
  Alcotest.(check bool) "cut happened" true (Power.Power_domain.is_failing domain)

let injector_deterministic_by_seed () =
  let choose () =
    let sim = Sim.create ~seed:9L () in
    let domain = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 10)) in
    Power.Failure_injector.power_cut_between sim domain
      ~earliest:(Time.add Time.zero (Time.ms 1))
      ~latest:(Time.add Time.zero (Time.sec 1))
  in
  Alcotest.(check int) "same seed, same instant" (Time.to_ns (choose ()))
    (Time.to_ns (choose ()))

let injector_crash_at () =
  let sim = Sim.create () in
  let fired_at = ref Time.zero in
  Power.Failure_injector.crash_at sim
    (Time.add Time.zero (Time.ms 42))
    (fun () -> fired_at := Sim.now sim);
  Sim.run sim;
  check_span "at requested instant" (Time.ms 42) (Time.diff !fired_at Time.zero)

let injector_crash_between () =
  let sim = Sim.create ~seed:5L () in
  let fired_at = ref None in
  let earliest = Time.add Time.zero (Time.ms 10) in
  let latest = Time.add Time.zero (Time.ms 20) in
  let chosen =
    Power.Failure_injector.crash_between sim ~earliest ~latest (fun () ->
        fired_at := Some (Sim.now sim))
  in
  Sim.run sim;
  match !fired_at with
  | Some at ->
      Alcotest.(check int) "fired at chosen instant" (Time.to_ns chosen) (Time.to_ns at);
      Alcotest.(check bool) "in range" true Time.(earliest <= at && at < latest)
  | None -> Alcotest.fail "crash action did not run"

(* The interval contract, pinned: [earliest, latest) is half-open, the
   empty interval degenerates deterministically to [earliest], and a
   reversed interval is a caller bug, not a silent clamp. *)

let injector_interval_is_half_open () =
  (* A 2ns-wide interval can only ever produce earliest or earliest+1;
     latest itself must never be chosen, whatever the seed. *)
  let earliest = Time.add Time.zero (Time.ms 10) in
  let latest = Time.add earliest (Time.ns 2) in
  for seed = 1 to 500 do
    let sim = Sim.create ~seed:(Int64.of_int seed) () in
    let chosen =
      Power.Failure_injector.crash_between sim ~earliest ~latest (fun () -> ())
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d in [earliest, latest)" seed)
      true
      Time.(earliest <= chosen && chosen < latest)
  done

let injector_empty_interval_degenerates () =
  let at = Time.add Time.zero (Time.ms 7) in
  let sim = Sim.create ~seed:11L () in
  let chosen = Power.Failure_injector.crash_between sim ~earliest:at ~latest:at (fun () -> ()) in
  Alcotest.(check int) "earliest itself" (Time.to_ns at) (Time.to_ns chosen);
  (* The degenerate case consumes no randomness: a subsequent draw must
     match a fresh simulation with the same seed that never made the
     degenerate pick. *)
  let control = Sim.create ~seed:11L () in
  Alcotest.(check int) "rng untouched"
    (Time.span_to_ns (Rng.span (Sim.rng control) (Time.ms 1)))
    (Time.span_to_ns (Rng.span (Sim.rng sim) (Time.ms 1)))

let injector_reversed_interval_rejected () =
  let sim = Sim.create ~seed:2L () in
  let earliest = Time.add Time.zero (Time.ms 20) in
  let latest = Time.add Time.zero (Time.ms 10) in
  Alcotest.check_raises "reversed interval"
    (Invalid_argument "Failure_injector: latest is before earliest")
    (fun () ->
      ignore
        (Power.Failure_injector.crash_between sim ~earliest ~latest (fun () -> ())))

let suites =
  [
    ( "power.psu",
      [
        case "window arithmetic" psu_window_math;
        case "of_window roundtrip" psu_of_window;
        case "flushable bytes budget" psu_flushable_bytes;
        case "higher draw shrinks the window" psu_more_draw_shorter_window;
      ] );
    ( "power.domain",
      [
        case "handlers fire in order with the window" domain_handlers_fire_in_order_with_window;
        case "devices lose power at window expiry"
          domain_devices_lose_power_at_window_expiry;
        case "cut is idempotent" domain_cut_is_idempotent;
        case "is_failing and dead_at" domain_is_failing_and_dead_at;
        case "handler registered after cut never fires"
          domain_handler_registered_after_cut_never_fires;
      ] );
    ( "power.injector",
      [
        case "power cut lands in range" injector_power_cut_in_range;
        case "deterministic by seed" injector_deterministic_by_seed;
        case "crash_at fires on time" injector_crash_at;
        case "crash_between fires at chosen instant" injector_crash_between;
        case "interval is half-open" injector_interval_is_half_open;
        case "empty interval degenerates to earliest"
          injector_empty_interval_degenerates;
        case "reversed interval rejected" injector_reversed_interval_rejected;
      ] );
  ]
