lib/core/durability.mli: Format Hashtbl Trusted_logger
